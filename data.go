package pebble

import (
	"io"

	"pebble/internal/nested"
)

// Value is one nested value: a constant, a data item (ordered
// attribute/value list), a bag, or a set (Def. 4.1).
type Value = nested.Value

// Field is one attribute/value pair of a data item.
type Field = nested.Field

// Kind enumerates the building blocks of the nested data model.
type Kind = nested.Kind

// Type is the recursive type of a value (items, collections, constants).
type Type = nested.Type

// The value kinds.
const (
	KindNull   = nested.KindNull
	KindInt    = nested.KindInt
	KindDouble = nested.KindDouble
	KindString = nested.KindString
	KindBool   = nested.KindBool
	KindItem   = nested.KindItem
	KindBag    = nested.KindBag
	KindSet    = nested.KindSet
)

// Null returns the null value.
func Null() Value { return nested.Null() }

// Int returns an integer constant.
func Int(v int64) Value { return nested.Int(v) }

// Double returns a floating-point constant.
func Double(v float64) Value { return nested.Double(v) }

// String returns a string constant.
func String(v string) Value { return nested.StringVal(v) }

// Bool returns a boolean constant.
func Bool(v bool) Value { return nested.Bool(v) }

// Item returns a data item with the given fields, in order.
func Item(fields ...Field) Value { return nested.Item(fields...) }

// F builds a Field.
func F(name string, v Value) Field { return nested.F(name, v) }

// Bag returns an ordered collection that may contain duplicates.
func Bag(elems ...Value) Value { return nested.Bag(elems...) }

// Set returns an ordered collection without duplicates.
func Set(elems ...Value) Value { return nested.Set(elems...) }

// ParseJSON decodes one JSON document into a Value, preserving object
// attribute order.
func ParseJSON(data []byte) (Value, error) { return nested.ParseJSON(data) }

// ParseJSONLines decodes newline-delimited JSON documents.
func ParseJSONLines(data []byte) ([]Value, error) { return nested.ParseJSONLines(data) }

// EncodeJSONLines writes one JSON document per value.
func EncodeJSONLines(w io.Writer, values []Value) error {
	return nested.EncodeJSONLines(w, values)
}

// Equal reports deep structural equality of two values.
func Equal(a, b Value) bool { return nested.Equal(a, b) }
