// Persistence: capture structural provenance during a pipeline run, persist
// it next to the results, and answer a provenance question from the stored
// provenance much later — the deployment mode auditing needs (the breach
// investigation happens long after the query ran).
//
// Run with:
//
//	go run ./examples/persistence
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"pebble"
	"pebble/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "pebble-prov")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	provPath := filepath.Join(dir, "run.pblp")

	// Day 0: the pipeline runs with capture; provenance goes to disk.
	session := pebble.NewSession(pebble.WithPartitions(2))
	cap, err := session.Capture(workload.ExamplePipeline(), workload.ExampleInput(2))
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(provPath)
	if err != nil {
		log.Fatal(err)
	}
	n, err := cap.Provenance.WriteTo(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured provenance persisted: %s (%d bytes)\n", provPath, n)

	// Day N: the auditor loads the stored provenance and traces a result
	// item without re-running anything.
	g, err := os.Open(provPath)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	run, err := pebble.ReadProvenance(g)
	if err != nil {
		log.Fatal(err)
	}
	pattern := pebble.NewPattern(
		pebble.Desc("id_str").WithEq(pebble.String("lp")),
		pebble.Child("tweets",
			pebble.Child("text").WithEq(pebble.String("Hello World")).WithCount(2, 2),
		),
	)
	// The result dataset (and its annotations) would likewise be stored; here
	// it is still in memory.
	b := pattern.Match(cap.Result.Output)
	sinkOp, ok := run.OpByID(pebble.OpID(cap.Pipeline.Sink().ID()))
	if !ok {
		log.Fatal("sink operator missing from reloaded provenance")
	}
	traced, err := pebble.TraceFrom(run, sinkOp, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntraced from the reloaded provenance:")
	oids := make([]int, 0, len(traced.BySource))
	for oid := range traced.BySource {
		oids = append(oids, oid)
	}
	sort.Ints(oids)
	for _, oid := range oids {
		s := traced.BySource[oid]
		for _, it := range s.Items {
			row, _ := cap.Result.Sources[oid].FindByID(it.ID)
			text, _ := row.Value.Get("text")
			fmt.Printf("  read %d, input item %d: %s\n", oid, it.ID, text)
		}
	}
}
