// Service walkthrough: run pebble as a daemon and drive it entirely through
// the Go SDK — the provenance-as-a-service shape (DESIGN.md §12).
//
// The example boots an in-process pebbled server on an ephemeral port (in
// production you would `go run ./cmd/pebbled -addr :7077` once and point
// many clients at it), then walks the full remote lifecycle:
//
//  1. create a named session (the remote pebble.NewSession),
//  2. upload a dataset as JSON lines,
//  3. submit a pipeline over it as an asynchronous job (a corpus spec on
//     the wire) and follow its streamed progress events,
//  4. ask a provenance question as a trace job against the completed run's
//     persisted artifact,
//  5. read the session's metric aggregates from /stats.
//
// Run with:
//
//	go run ./examples/service
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	"pebble/internal/corpus"
	"pebble/internal/server"
	"pebble/pkg/sdk"
)

func main() {
	// --- Boot a daemon (stand-in for a long-running pebbled process). ---
	dir, err := os.MkdirTemp("", "pebble-service")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	srv, err := server.New(server.Config{DataDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // closed below
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("pebbled serving at %s (artifacts in %s)\n\n", base, dir)

	ctx := context.Background()
	c := sdk.New(base)

	// --- 1. A named session: the remote form of pebble.NewSession. ---
	// Partitioning is fixed per session, so identifiers — and with them
	// captured provenance — are deterministic no matter which runner
	// goroutine executes the job.
	sess, err := c.CreateSession(ctx, sdk.SessionSpec{Name: "demo", Partitions: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %q: %d partitions\n", sess.Name, sess.Partitions)

	// --- 2. Upload a dataset as JSON lines. ---
	orders := strings.Join([]string{
		`{"order": "o1", "customer": "alice", "total": 70}`,
		`{"order": "o2", "customer": "bob", "total": 249}`,
		`{"order": "o3", "customer": "alice", "total": 82}`,
		`{"order": "o4", "customer": "carol", "total": 50}`,
		`{"order": "o5", "customer": "bob", "total": 12}`,
	}, "\n")
	ds, err := c.UploadDataset(ctx, "demo", "orders", 0, strings.NewReader(orders))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %q: %d rows in %d partitions\n\n", ds.Name, ds.Rows, ds.Partitions)

	// --- 3. A pipeline job: a corpus spec on the wire, sources resolved
	// against the session's uploaded datasets. Submission is asynchronous —
	// the job queues behind admission control and runs with provenance
	// capture on a per-job metric recorder.
	spec := corpus.Spec{
		Steps: []corpus.Step{
			{Op: corpus.StepSource, In: -1, In2: -1, Dataset: "orders"},
			{Op: corpus.StepFilter, In: 0, In2: -1, Pred: &corpus.Pred{Col: "total", Op: "gt", Int: 60}},
		},
		Sink: 1,
	}
	specJSON, err := json.Marshal(&spec)
	if err != nil {
		log.Fatal(err)
	}
	job, err := c.SubmitJob(ctx, "demo", sdk.SubmitJobRequest{Kind: sdk.KindPipeline, Spec: specJSON})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline job %s submitted; streaming progress:\n", job.ID)
	err = c.StreamEvents(ctx, "demo", job.ID, func(e sdk.JobEvent) error {
		switch e.Kind {
		case "status":
			fmt.Printf("  [%d] %s\n", e.Seq, e.Status)
		case "phase_end":
			fmt.Printf("  [%d] phase %s (%.2fms)\n", e.Seq, e.Span, e.ElapsedMS)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	info, err := c.WaitJob(ctx, "demo", job.ID)
	if err != nil {
		log.Fatal(err)
	}
	if info.Status != sdk.StatusDone {
		log.Fatalf("job %s: %s (%s)", job.ID, info.Status, info.Error)
	}
	fmt.Printf("job %s done: %d result rows, %d provenance bytes persisted\n\n",
		job.ID, info.ResultRows, info.ProvBytes)

	// --- 4. A provenance question as a trace job. The daemon reloads the
	// persisted artifact lazily (index sidecar included) — this works even
	// if the capturing process restarted in between.
	trace, err := c.SubmitJob(ctx, "demo", sdk.SubmitJobRequest{
		Kind: sdk.KindTrace, TargetJob: job.ID,
		PatternText: `//customer == "alice"`,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.WaitJob(ctx, "demo", trace.ID); err != nil {
		log.Fatal(err)
	}
	out, err := c.TraceResult(ctx, "demo", trace.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace job %s matched %d result item(s):\n%s\n", trace.ID, out.Matched, out.Report)

	// --- 5. Session aggregates from the per-job recorders. ---
	stats, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range stats.Sessions {
		if s.Name != "demo" {
			continue
		}
		fmt.Printf("session %q aggregates: rows_in=%d rows_out=%d prov_bytes=%d\n",
			s.Name, s.Counters["rows_in"], s.Counters["rows_out"], s.Counters["prov_bytes"])
	}
}
