// Debugging: the paper's running example (Sec. 2). The pipeline of Fig. 1
// produces a duplicate "Hello World" text for user lp (Tab. 2); tracing the
// duplicates back with structural provenance pinpoints exactly the two input
// tweets that cause it (the dark-green items of Tab. 1), while a
// lineage-style answer would return every tweet involving lp.
//
// Run with:
//
//	go run ./examples/debugging
package main

import (
	"fmt"
	"log"
	"sort"

	"pebble"
	"pebble/internal/engine"
	"pebble/internal/lineage"
	"pebble/internal/workload"
)

func main() {
	inputs := workload.ExampleInput(2)
	pipe := workload.ExamplePipeline()
	session := pebble.NewSession(pebble.WithPartitions(2))

	cap, err := session.Capture(pipe, inputs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pipeline result (Tab. 2):")
	for _, row := range cap.Result.Output.Rows() {
		fmt.Printf("  %s\n", row.Value)
	}

	// The provenance question of Fig. 4: user lp with "Hello World"
	// occurring exactly twice in the nested tweets.
	pattern := pebble.NewPattern(
		pebble.Desc("id_str").WithEq(pebble.String("lp")),
		pebble.Child("tweets",
			pebble.Child("text").WithEq(pebble.String("Hello World")).WithCount(2, 2),
		),
	)
	fmt.Printf("\ntree-pattern question (Fig. 4):%s\n", pattern)

	q, err := cap.Query(pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstructural provenance (the trees of Fig. 2):")
	fmt.Print(q.Report())

	// Contrast with a Titian-style lineage answer over the same pipeline.
	lres, lrun, err := lineage.Capture(workload.ExamplePipeline(), workload.ExampleInput(2),
		engine.Options{Partitions: 2})
	if err != nil {
		log.Fatal(err)
	}
	var lpID int64
	for _, row := range lres.Output.Rows() {
		u, _ := row.Value.Get("user")
		id, _ := u.Get("id_str")
		if s, _ := id.AsString(); s == "lp" {
			lpID = row.ID
		}
	}
	traced, err := lrun.Trace(9, []int64{lpID})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("lineage-style answer (whole tweets only, Sec. 2's light-grey items):")
	oids := make([]int, 0, len(traced))
	for oid := range traced {
		oids = append(oids, oid)
	}
	sort.Ints(oids)
	for _, oid := range oids {
		for _, id := range traced[oid] {
			row, _ := lres.Sources[oid].FindByID(id)
			text, _ := row.Value.Get("text")
			fmt.Printf("  read %d: %s\n", oid, text)
		}
	}
	fmt.Println("\nlineage returns every lp tweet; structural provenance isolated the two duplicates.")
}
