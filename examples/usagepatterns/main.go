// Usage patterns: the data-layout use-case of Sec. 7.3.5 / Fig. 10. Merging
// structural provenance over a query workload reveals hot and cold items
// (horizontal partitioning), hot and cold attributes (vertical
// partitioning), and attribute pairs that are frequently processed together
// (co-location).
//
// Run with:
//
//	go run ./examples/usagepatterns
package main

import (
	"fmt"
	"log"

	"pebble/internal/core"
	"pebble/internal/usage"
	"pebble/internal/workload"
)

func main() {
	scale := workload.Scale{SimGB: 1, RecordsPerGB: 400, Seed: 42}
	session := core.NewSession(core.WithPartitions(4))
	analysis := usage.NewAnalysis()
	for _, sc := range workload.DBLPScenarios() {
		cap, err := session.Capture(sc.Build(), sc.Input(scale, 4))
		if err != nil {
			log.Fatalf("%s: %v", sc.Name, err)
		}
		q, err := cap.QueryAll()
		if err != nil {
			log.Fatalf("%s: %v", sc.Name, err)
		}
		analysis.AddQuery(q, cap.Provenance)
	}

	inputs := workload.DBLPInput(scale, 1)
	var universe []int64
	for _, r := range inputs["dblp.json"].Rows() {
		rt, _ := r.Value.Get("record_type")
		if s, _ := rt.AsString(); s == "inproceedings" {
			universe = append(universe, r.ID)
		}
	}
	schema := []string{"key", "record_type", "title", "authors", "year", "crossref", "pages", "ee"}

	// Fig. 10: heatmap of 25 randomly selected inproceedings after D1-D5.
	items := usage.SampleItems(universe, 25, 42)
	fmt.Println("heatmap of 25 random inproceedings after D1-D5 (Fig. 10)")
	fmt.Println("(cells: contribution count, ~n influence-only, . cold)")
	fmt.Print(analysis.Heatmap(items, schema))

	rep := analysis.Audit(universe, schema)
	fmt.Printf("\nhorizontal partitioning: %d of %d items are hot — row-based\n",
		len(rep.LeakedItems), len(universe))
	fmt.Println("partitioning of hot and cold items would not help much (cf. Sec. 7.3.5).")
	fmt.Printf("\nvertical partitioning: hot attributes %v vs cold %v —\n",
		rep.LeakedAttrs, rep.ColdAttrs)
	fmt.Println("column-based partitioning separates the cold columns profitably.")
	fmt.Printf("\nattribute pairs frequently contributing together: %v\n", analysis.TopPairs(5))
	fmt.Println("storing these next to each other improves locality.")

	fmt.Println("\nsuggested vertical partitioning (hot groups first, cold last):")
	for i, g := range analysis.SuggestColumnGroups(universe, schema) {
		kind := "hot "
		if !g.Hot {
			kind = "cold"
		}
		fmt.Printf("  group %d (%s): %v\n", i+1, kind, g.Attrs)
	}
}
