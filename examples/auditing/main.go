// Auditing: the GDPR use-case of Sec. 7.3.5. An insider ran the query
// workload D1–D5 over the DBLP dataset and leaked the results. Structural
// provenance identifies (i) which records were exposed, (ii) which of their
// attributes are actually in the leak, and (iii) which attributes were only
// accessed — not exposed, but relevant for assessing reconstruction attacks
// (the year attribute in the paper's example).
//
// Run with:
//
//	go run ./examples/auditing
package main

import (
	"fmt"
	"log"

	"pebble/internal/core"
	"pebble/internal/nested"
	"pebble/internal/path"
	"pebble/internal/usage"
	"pebble/internal/workload"
)

func main() {
	scale := workload.Scale{SimGB: 1, RecordsPerGB: 400, Seed: 42}
	session := core.NewSession(core.WithPartitions(4))
	analysis := usage.NewAnalysis()

	fmt.Println("replaying leaked workload D1-D5 with provenance capture...")
	for _, sc := range workload.DBLPScenarios() {
		cap, err := session.Capture(sc.Build(), sc.Input(scale, 4))
		if err != nil {
			log.Fatalf("%s: %v", sc.Name, err)
		}
		q, err := cap.QueryAll()
		if err != nil {
			log.Fatalf("%s: %v", sc.Name, err)
		}
		analysis.AddQuery(q, cap.Provenance)
		fmt.Printf("  %s: %d result items traced\n", sc.Name, cap.Result.Output.Len())
	}

	// Audit the inproceedings records (the dataset of Fig. 10).
	inputs := workload.DBLPInput(scale, 1)
	var universe []int64
	for _, r := range inputs["dblp.json"].Rows() {
		rt, _ := r.Value.Get("record_type")
		if s, _ := rt.AsString(); s == "inproceedings" {
			universe = append(universe, r.ID)
		}
	}
	schema := []string{"key", "record_type", "title", "authors", "year", "crossref", "pages", "ee"}
	rep := analysis.Audit(universe, schema)

	fmt.Printf("\naudit of %d inproceedings records:\n", len(universe))
	fmt.Printf("  leaked records:              %d\n", len(rep.LeakedItems))
	fmt.Printf("  influenced-only records:     %d\n", len(rep.InfluencedItems))
	fmt.Printf("  untouched records:           %d\n", len(rep.ColdItems))
	fmt.Printf("  leaked attributes:           %v\n", rep.LeakedAttrs)
	fmt.Printf("  influencing-only attributes: %v   <- reconstruction-attack risk\n", rep.InfluencingAttrs)
	fmt.Printf("  untouched attributes:        %v   <- no notification needed\n", rep.ColdAttrs)
	fmt.Println("\nA lineage solution would have marked every attribute of every traced")
	fmt.Println("record as leaked; structural provenance confines the breach to the")
	fmt.Println("attributes above and additionally flags the accessed-only ones.")

	// Remediation: redact exactly the leaked cells of a sample record —
	// everything else may be retained as-is.
	if len(rep.LeakedItems) > 0 {
		row, _ := inputs["dblp.json"].FindByID(rep.LeakedItems[0])
		var leakedPaths []path.Path
		for _, attr := range rep.LeakedAttrs {
			leakedPaths = append(leakedPaths, path.New(attr))
		}
		masked := path.Redact(row.Value, leakedPaths, nested.StringVal("<redacted>"))
		fmt.Println("\nsample record with exactly the leaked attributes masked:")
		fmt.Printf("  %s\n", masked)
	}
}
