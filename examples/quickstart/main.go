// Quickstart: build a small nested dataset, run a pipeline with structural
// provenance capture, and ask a provenance question about a result item.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pebble"
)

func main() {
	// A handful of orders with nested line items.
	orders := []pebble.Value{
		order("o1", "alice", 0, item("keyboard", 2, 49.9), item("mouse", 1, 19.9)),
		order("o2", "bob", 1, item("monitor", 1, 249.0)),
		order("o3", "alice", 0, item("mouse", 3, 19.9), item("cable", 5, 4.5)),
		order("o4", "carol", 0, item("keyboard", 1, 49.9)),
	}
	// The session fixes partitioning (and with it identifier assignment);
	// datasets built through it inherit the partition count, so the two
	// can never drift apart.
	session := pebble.NewSession(pebble.WithPartitions(2))
	inputs := map[string]*pebble.Dataset{
		"orders": session.NewDataset("orders", orders, 0),
	}

	// Pipeline: keep non-returned orders, explode line items, and collect
	// the products each customer bought.
	p := pebble.NewPipeline()
	src := p.Source("orders")
	kept := p.Filter(src, pebble.Eq(pebble.Col("returned"), pebble.LitInt(0)))
	flat := p.Flatten(kept, "items", "line")
	sel := p.Select(flat,
		pebble.Column("customer", "customer"),
		pebble.StructField("product",
			pebble.Column("name", "line.product"),
			pebble.Column("qty", "line.qty"),
		),
	)
	p.Aggregate(sel,
		[]pebble.GroupKey{pebble.Key("customer")},
		[]pebble.AggSpec{pebble.Agg(pebble.AggCollectList, "product", "products")},
	)

	// Execute with structural provenance capture.
	cap, err := session.Capture(p, inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result:")
	for _, row := range cap.Result.Output.Rows() {
		fmt.Printf("  %s\n", row.Value)
	}

	// Provenance question: which parts of which orders produced alice's
	// mouse purchases?
	pattern := pebble.NewPattern(
		pebble.Child("customer").WithEq(pebble.String("alice")),
		pebble.Child("products",
			pebble.Child("name").WithEq(pebble.String("mouse")),
		),
	)
	q, err := cap.Query(pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprovenance of alice's mouse purchases:")
	fmt.Print(q.Report())
}

func order(id, customer string, returned int64, items ...pebble.Value) pebble.Value {
	return pebble.Item(
		pebble.F("order_id", pebble.String(id)),
		pebble.F("customer", pebble.String(customer)),
		pebble.F("items", pebble.Bag(items...)),
		pebble.F("returned", pebble.Int(returned)),
	)
}

func item(product string, qty int64, price float64) pebble.Value {
	return pebble.Item(
		pebble.F("product", pebble.String(product)),
		pebble.F("qty", pebble.Int(qty)),
		pebble.F("price", pebble.Double(price)),
	)
}
