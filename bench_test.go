// Benchmarks regenerating the paper's tables and figures (Sec. 7.3), one
// benchmark family per figure. Compare the /spark vs /pebble (or /eager vs
// /lazy, /titian vs /pebble) timings of the same scenario to read off the
// relative overheads the paper plots; Fig. 8's sizes are emitted as
// benchmark metrics. cmd/benchrunner prints the same experiments as
// paper-style tables, including the 100–500 GB sweeps.
package pebble_test

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"pebble"

	"pebble/internal/backtrace"
	"pebble/internal/engine"
	"pebble/internal/experiments"
	"pebble/internal/lazy"
	"pebble/internal/lineage"
	"pebble/internal/provenance"
	"pebble/internal/workload"
)

// benchGB is the simulated dataset size used by the benchmarks; small enough
// for `go test -bench=.` to finish quickly, large enough to dominate setup.
const benchGB = 5

var (
	inputsMu    sync.Mutex
	inputsCache = map[string]map[string]*engine.Dataset{}
)

// benchInputs generates (and caches) the input datasets for a scenario.
func benchInputs(b *testing.B, sc workload.Scenario) map[string]*engine.Dataset {
	b.Helper()
	inputsMu.Lock()
	defer inputsMu.Unlock()
	if in, ok := inputsCache[sc.Dataset]; ok {
		return in
	}
	in := sc.Input(workload.DefaultScale(benchGB), 4)
	inputsCache[sc.Dataset] = in
	return in
}

func benchRun(b *testing.B, sc workload.Scenario, capture bool) {
	b.Helper()
	inputs := benchInputs(b, sc)
	opts := engine.Options{Partitions: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if capture {
			_, _, err = provenance.Capture(sc.Build(), inputs, opts)
		} else {
			_, err = engine.Run(sc.Build(), inputs, opts)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchCaptureOverhead(b *testing.B, scenarios []workload.Scenario) {
	for _, sc := range scenarios {
		sc := sc
		b.Run(sc.Name+"/spark", func(b *testing.B) { benchRun(b, sc, false) })
		b.Run(sc.Name+"/pebble", func(b *testing.B) { benchRun(b, sc, true) })
	}
}

// BenchmarkFig6CaptureOverheadTwitter regenerates Fig. 6: execution time of
// T1–T5 without (spark) and with (pebble) structural provenance capture.
func BenchmarkFig6CaptureOverheadTwitter(b *testing.B) {
	benchCaptureOverhead(b, workload.TwitterScenarios())
}

// BenchmarkFig7CaptureOverheadDBLP regenerates Fig. 7 for D1–D5.
func BenchmarkFig7CaptureOverheadDBLP(b *testing.B) {
	benchCaptureOverhead(b, workload.DBLPScenarios())
}

func benchSizes(b *testing.B, scenarios []workload.Scenario) {
	for _, sc := range scenarios {
		sc := sc
		b.Run(sc.Name, func(b *testing.B) {
			inputs := benchInputs(b, sc)
			var sizes provenance.Sizes
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, run, err := provenance.Capture(sc.Build(), inputs, engine.Options{Partitions: 4})
				if err != nil {
					b.Fatal(err)
				}
				sizes = run.Sizes()
			}
			b.ReportMetric(float64(sizes.LineageBytes)/1024, "lineage_KB")
			b.ReportMetric(float64(sizes.StructuralExtra)/1024, "structural_extra_KB")
		})
	}
}

// BenchmarkFig8aProvenanceSizeTwitter regenerates Fig. 8(a): the size of the
// captured provenance for T1–T5, split into the lineage share and the
// structural extra (reported as benchmark metrics).
func BenchmarkFig8aProvenanceSizeTwitter(b *testing.B) {
	benchSizes(b, workload.TwitterScenarios())
}

// BenchmarkFig8bProvenanceSizeDBLP regenerates Fig. 8(b) for D1–D5.
func BenchmarkFig8bProvenanceSizeDBLP(b *testing.B) {
	benchSizes(b, workload.DBLPScenarios())
}

func benchQueries(b *testing.B, scenarios []workload.Scenario) {
	for _, sc := range scenarios {
		sc := sc
		b.Run(sc.Name+"/eager", func(b *testing.B) {
			inputs := benchInputs(b, sc)
			pipe := sc.Build()
			res, run, err := provenance.Capture(pipe, inputs, engine.Options{Partitions: 4})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bs := sc.Pattern.Match(res.Output)
				if _, err := backtrace.Trace(run, pipe.Sink().ID(), bs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sc.Name+"/lazy", func(b *testing.B) {
			inputs := benchInputs(b, sc)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := lazy.Query(sc.Build, inputs, sc.Pattern, engine.Options{Partitions: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9aQueryTwitter regenerates Fig. 9(a): structural provenance
// query time for T1–T5, eager (holistic: match + backtrace over captured
// provenance) vs fully lazy (PROVision-style re-execution per input).
func BenchmarkFig9aQueryTwitter(b *testing.B) {
	benchQueries(b, workload.TwitterScenarios())
}

// BenchmarkFig9bQueryDBLP regenerates Fig. 9(b) for D1–D5.
func BenchmarkFig9bQueryDBLP(b *testing.B) {
	benchQueries(b, workload.DBLPScenarios())
}

// BenchmarkTitianComparison regenerates Sec. 7.3.4: the flat-data workload
// (filter "2015", union of articles and inproceedings) without capture, with
// Titian-style lineage capture, and with Pebble's structural capture.
func BenchmarkTitianComparison(b *testing.B) {
	scale := workload.DefaultScale(benchGB)
	inputs := experiments.FlatDBLPInputs(scale, 4)
	build := experiments.FlatPipeline
	opts := engine.Options{Partitions: 4}
	b.Run("base", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(build(), inputs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("titian", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := lineage.Capture(build(), inputs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pebble", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := provenance.Capture(build(), inputs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPerOperatorOverhead regenerates the per-operator analysis of
// Sec. 7.3.1: each operator in isolation, without and with capture.
func BenchmarkPerOperatorOverhead(b *testing.B) {
	scale := workload.DefaultScale(benchGB)
	inputs := workload.TwitterInput(scale, 4)
	opts := engine.Options{Partitions: 4}
	for _, m := range experiments.MicroPipelines() {
		m := m
		b.Run(m.Name+"/spark", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Run(m.Build(), inputs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(m.Name+"/pebble", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := provenance.Capture(m.Build(), inputs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBacktraceRunningExample measures the core query path on the
// paper's running example (Fig. 2's backtrace), isolating the backtracing
// algorithms from workload noise.
func BenchmarkBacktraceRunningExample(b *testing.B) {
	res, run, err := provenance.Capture(workload.ExamplePipeline(), workload.ExampleInput(2),
		engine.Options{Partitions: 2})
	if err != nil {
		b.Fatal(err)
	}
	pattern := fig4Pattern()
	bs := pattern.Match(res.Output)
	if bs.Len() != 1 {
		b.Fatalf("pattern matched %d items", bs.Len())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := backtrace.Trace(run, 9, bs.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

// fig4Pattern builds the Fig. 4 tree pattern through the public API.
func fig4Pattern() *pebble.Pattern {
	return pebble.NewPattern(
		pebble.Desc("id_str").WithEq(pebble.String("lp")),
		pebble.Child("tweets",
			pebble.Child("text").WithEq(pebble.String("Hello World")).WithCount(2, 2),
		),
	)
}

// --- Ablations: the design choices DESIGN.md calls out ---

// BenchmarkAblationCaptureMode isolates what each capture level costs on the
// running-example pipeline (T3): no capture, Titian-style lineage (ids
// only), and full structural provenance (ids + positions + schema paths).
func BenchmarkAblationCaptureMode(b *testing.B) {
	sc, err := workload.ByName("T3")
	if err != nil {
		b.Fatal(err)
	}
	inputs := benchInputs(b, sc)
	opts := engine.Options{Partitions: 4}
	b.Run("none", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(sc.Build(), inputs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lineage", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := lineage.Capture(sc.Build(), inputs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("structural", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := provenance.Capture(sc.Build(), inputs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationTracerReuse quantifies the query-side optimisation of a
// shared Tracer (cached association indexes) against rebuilding the indexes
// on every query — the paper's "optimize provenance querying" future work.
func BenchmarkAblationTracerReuse(b *testing.B) {
	sc, err := workload.ByName("T1")
	if err != nil {
		b.Fatal(err)
	}
	inputs := benchInputs(b, sc)
	pipe := sc.Build()
	res, run, err := provenance.Capture(pipe, inputs, engine.Options{Partitions: 4})
	if err != nil {
		b.Fatal(err)
	}
	bs := sc.Pattern.Match(res.Output)
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := backtrace.NewTracer(run).Trace(pipe.Sink().ID(), bs.Clone()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		tr := backtrace.NewTracer(run)
		if _, err := tr.Trace(pipe.Sink().ID(), bs.Clone()); err != nil {
			b.Fatal(err) // build the indexes once
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tr.Trace(pipe.Sink().ID(), bs.Clone()); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Concurrent queries against one shared tracer: with per-operator index
	// builds they no longer serialize on a tracer-wide lock.
	b.Run("parallel", func(b *testing.B) {
		tr := backtrace.NewTracer(run)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := tr.Trace(pipe.Sink().ID(), bs.Clone()); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	// Fresh tracer per iteration, queried concurrently — exercises the
	// concurrent first-build path (sync.Once per operator).
	b.Run("parallel-fresh", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := backtrace.NewTracer(run).Trace(pipe.Sink().ID(), bs.Clone()); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkAblationPartitions shows how the engine and its capture scale
// with the partition count (the paper's cluster scales over worker cores).
func BenchmarkAblationPartitions(b *testing.B) {
	sc, err := workload.ByName("T2")
	if err != nil {
		b.Fatal(err)
	}
	for _, parts := range []int{1, 2, 4, 8} {
		parts := parts
		inputs := sc.Input(workload.DefaultScale(benchGB), parts)
		b.Run(fmt.Sprintf("parts=%d/capture", parts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := provenance.Capture(sc.Build(), inputs, engine.Options{Partitions: parts}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalingWorkers measures wall time of capture as the physical
// worker count grows while the logical partitioning stays fixed — the
// logical/physical split of schedule.go. cmd/benchrunner -exp scaling prints
// the same sweep as a table.
func BenchmarkScalingWorkers(b *testing.B) {
	sc, err := workload.ByName("T2")
	if err != nil {
		b.Fatal(err)
	}
	inputs := benchInputs(b, sc)
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := engine.Options{Partitions: engine.DefaultPartitions, Workers: workers}
			for i := 0; i < b.N; i++ {
				if _, _, err := provenance.Capture(sc.Build(), inputs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProvenanceCodec measures persistence of a captured run.
func BenchmarkProvenanceCodec(b *testing.B) {
	sc, err := workload.ByName("T3")
	if err != nil {
		b.Fatal(err)
	}
	inputs := benchInputs(b, sc)
	_, run, err := provenance.Capture(sc.Build(), inputs, engine.Options{Partitions: 4})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := run.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if _, err := run.WriteTo(&w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := provenance.ReadRun(bytes.NewReader(buf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(buf.Len()), "bytes")
}

// BenchmarkExecRowVsVector is the executor twin (PR 7): every scenario run
// plain and under eager capture through both the vectorized (columnar
// batch) executor and the legacy row-at-a-time path. Compare /vector vs
// /row of the same scenario to read off the vectorization speedup;
// `benchrunner -exp vectors` prints the interleaved-pair version with the
// byte-identity cross-check. In -short mode only T1 runs, as a smoke guard
// that both executor paths stay alive and correct.
func BenchmarkExecRowVsVector(b *testing.B) {
	scenarios := workload.AllScenarios()
	if testing.Short() {
		scenarios = scenarios[:1]
	}
	for _, sc := range scenarios {
		sc := sc
		inputs := benchInputs(b, sc)
		for _, mode := range []struct {
			name    string
			rowExec bool
			capture bool
		}{
			{"vector", false, false},
			{"row", true, false},
			{"vector-capture", false, true},
			{"row-capture", true, true},
		} {
			b.Run(sc.Name+"/"+mode.name, func(b *testing.B) {
				opts := engine.Options{Partitions: 4, ScalarFallback: mode.rowExec}
				for i := 0; i < b.N; i++ {
					var err error
					if mode.capture {
						_, _, err = provenance.Capture(sc.Build(), inputs, opts)
					} else {
						_, err = engine.Run(sc.Build(), inputs, opts)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
