// Package pebble is a Go reproduction of Pebble, the structural provenance
// system for nested data in big data analytics of Diestelkämper & Herschel,
// "Tracing nested data with structural provenance for big data analytics"
// (EDBT 2020).
//
// Pebble traces *structural provenance*: in addition to which top-level
// input items contribute to which result items (lineage), it records — on
// schema level, at negligible cost — which attribute paths each operator
// accesses and which it structurally manipulates. At query time a
// tree-pattern selects result items (including individual elements of nested
// collections) and the backtracing algorithm walks the captured operator
// provenance back to the inputs, returning per input item a backtracing
// tree that distinguishes contributing attributes (needed to reproduce the
// queried result) from influencing attributes (accessed during processing
// but not part of the result).
//
// The package bundles everything the paper builds on: a nested data model,
// a partitioned dataflow engine with filter, select, map, join, union,
// flatten, and grouping/aggregation operators, the lightweight capture, the
// tree-pattern matcher, and the backtracing algorithms.
//
// A minimal session looks like this:
//
//	p := pebble.NewPipeline()
//	src := p.Source("tweets.json")
//	filt := p.Filter(src, pebble.Eq(pebble.Col("retweet_cnt"), pebble.LitInt(0)))
//	...
//	session := pebble.NewSession(pebble.WithPartitions(4))
//	cap, err := session.Capture(p, inputs)
//	q, err := cap.Query(pebble.NewPattern(
//	    pebble.Desc("id_str").WithEq(pebble.String("lp")),
//	))
//	fmt.Println(q.Report())
//
// Attach a Recorder (pebble.WithRecorder(pebble.NewRecorder())) to collect
// per-operator execution metrics and query timing spans; read them back via
// cap.Stats().
package pebble

import (
	"context"
	"fmt"
	"io"

	"pebble/internal/backtrace"
	"pebble/internal/core"
	"pebble/internal/engine"
	"pebble/internal/obs"
	"pebble/internal/provenance"
	"pebble/internal/treepattern"
)

// Session configures pipeline executions; see core.Session.
type Session = core.Session

// Option configures a Session built with NewSession.
type Option = core.Option

// NewSession builds a session from functional options; NewSession() with no
// options is a ready-to-use default session. The struct-literal form
// (pebble.Session{Partitions: 4}) remains supported.
func NewSession(opts ...Option) Session { return core.NewSession(opts...) }

// WithPartitions sets the logical data parallelism (identifier assignment
// and result order; default engine partition count).
func WithPartitions(n int) Option { return core.WithPartitions(n) }

// WithWorkers sets the physical worker-goroutine count (0 = NumCPU);
// results are byte-identical for every value.
func WithWorkers(n int) Option { return core.WithWorkers(n) }

// WithSequential disables goroutine parallelism.
func WithSequential() Option { return core.WithSequential() }

// WithAnalyzeFirst type-checks plans against input schemas before running.
func WithAnalyzeFirst() Option { return core.WithAnalyzeFirst() }

// WithRecorder attaches an observability recorder to the session; every run
// reports per-operator counters and timing spans into it.
func WithRecorder(rec *Recorder) Option { return core.WithRecorder(rec) }

// Recorder collects per-operator execution metrics and timing spans; create
// one with NewRecorder, attach it via WithRecorder (or Session.Recorder),
// and read it with Snapshot or Captured.Stats. A nil *Recorder disables all
// collection at near-zero cost.
type Recorder = obs.Recorder

// NewRecorder returns an empty metrics recorder.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// Stats is a merged snapshot of recorded metrics; render it with Render or
// inspect per-operator OpStat entries.
type Stats = obs.Stats

// OpStat is the merged per-operator counter row of a Stats snapshot.
type OpStat = obs.OpStat

// Captured is an executed pipeline with its structural provenance.
type Captured = core.Captured

// QueryResult is the answer to a structural provenance question.
type QueryResult = core.QueryResult

// SourceItem pairs one traced input item with its resolved source row.
type SourceItem = core.SourceItem

// Pipeline is a DAG of dataflow operators; build it with NewPipeline and the
// builder methods Source, Filter, Select, Map, Join, Union, Flatten, and
// Aggregate.
type Pipeline = engine.Pipeline

// Op is one operator node of a pipeline.
type Op = engine.Op

// Dataset is a partitioned collection of provenance-annotated nested items.
type Dataset = engine.Dataset

// Row is one top-level item with its provenance identifier.
type Row = engine.Row

// Result is the outcome of a pipeline execution.
type Result = engine.Result

// Tree is a backtracing tree distinguishing contributing from influencing
// attributes (Def. 6.3).
type Tree = backtrace.Tree

// TreeNode is one node of a backtracing tree.
type TreeNode = backtrace.Node

// Structure is a backtracing structure: provenance identifiers paired with
// backtracing trees (Def. 6.2).
type Structure = backtrace.Structure

// TraceResult maps source operators to their backtraced structures.
type TraceResult = backtrace.Result

// NewPipeline returns an empty pipeline.
func NewPipeline() *Pipeline { return engine.NewPipeline() }

// NewDataset partitions values into parts partitions, assigning each row a
// unique provenance identifier. parts <= 0 means the engine default
// partition count, matching a default Session — for a dataset that should
// follow a specific session's partitioning, prefer Session.NewDataset
// (precedence: explicit positive parts > session partitions > engine
// default). Sessions and datasets must agree on the partition count for
// byte-identical reproducible runs.
func NewDataset(name string, values []Value, parts int) *Dataset {
	if parts <= 0 {
		parts = engine.DefaultPartitions
	}
	return engine.NewDataset(name, values, parts, engine.NewIDGen(1))
}

// Pattern is a tree-pattern provenance query (Sec. 6.1).
type Pattern = treepattern.Pattern

// PatternNode is one node of a tree pattern.
type PatternNode = treepattern.Node

// NewPattern returns a tree pattern whose implicit root is the top-level
// result item.
func NewPattern(children ...*PatternNode) *Pattern { return treepattern.New(children...) }

// Child returns a parent-child pattern node.
func Child(attr string, children ...*PatternNode) *PatternNode {
	return treepattern.Child(attr, children...)
}

// Desc returns an ancestor-descendant pattern node.
func Desc(attr string, children ...*PatternNode) *PatternNode {
	return treepattern.Desc(attr, children...)
}

// TreeFromValue builds a full-coverage backtracing tree for a result value;
// use it to query the complete provenance of an item.
func TreeFromValue(v Value) *Tree { return core.TreeFromValue(v) }

// NewStructure returns an empty backtracing structure for hand-built
// provenance questions.
func NewStructure() *Structure { return backtrace.NewStructure() }

// ProvenanceRun is the captured structural provenance of one execution; it
// can be persisted with WriteTo and reloaded with ReadProvenance so queries
// can run long after the pipeline did (e.g. during a breach investigation).
type ProvenanceRun = provenance.Run

// ReadProvenance loads a provenance run persisted with (*ProvenanceRun).WriteTo.
func ReadProvenance(r io.Reader) (*ProvenanceRun, error) { return provenance.ReadRun(r) }

// ReadProvenanceLazy loads a run from its encoded bytes with on-demand
// association decode: the stream is validated and indexed up front, but an
// operator's association columns materialise only when a trace first touches
// them — a backtrace visiting three operators of a large run decodes three
// column regions. The run also carries a content hash pairing it with a
// persisted index sidecar (Tracer.WriteIndexes / Tracer.LoadIndexes).
func ReadProvenanceLazy(data []byte) (*ProvenanceRun, error) { return provenance.ReadRunLazy(data) }

// Tracer answers provenance queries over one captured or reloaded run,
// building per-operator association indexes on first use and reusing them
// across queries. Persist the indexes with WriteIndexes and install them on
// a fresh tracer with LoadIndexes to skip construction after a reload.
type Tracer = backtrace.Tracer

// NewTracer returns a tracer over the run. For query-heavy reload paths,
// load the run with ReadProvenanceLazy and install a sidecar via
// (*Tracer).LoadIndexes.
func NewTracer(run *ProvenanceRun) *Tracer { return backtrace.NewTracer(run) }

// CompiledPattern is the executable form of a tree pattern (see
// (*Pattern).Compile); it is immutable and safe for concurrent matching.
type CompiledPattern = treepattern.Compiled

// OpID identifies an operator within a pipeline and its captured provenance
// run; it is stable across serialisation, so an OpID noted at capture time
// still addresses the same operator after ReadProvenance.
type OpID = provenance.OpID

// ProvOperator is one operator's captured provenance within a run; resolve
// it with (*ProvenanceRun).OpByID and trace from it with TraceFrom or
// Captured.TraceAt.
type ProvOperator = provenance.Operator

// TraceFrom answers a provenance question over a (possibly reloaded)
// provenance run without a Session: it backtraces the structure from the
// given captured operator. Resolve the operator with run.OpByID or
// run.Operators(). (The former pebble.Trace, which took a raw operator id,
// is gone — the typed form catches stale identifiers at resolution time
// rather than deep inside the walk.)
func TraceFrom(run *ProvenanceRun, op *ProvOperator, b *Structure) (*TraceResult, error) {
	return backtrace.TraceOp(run, op, b)
}

// TraceFromContext is TraceFrom with cooperative cancellation: the context
// is checked at every operator step of the backtracing walk, so a cancelled
// provenance query (e.g. a pebbled trace job whose client went away) stops
// promptly instead of building further association indexes.
func TraceFromContext(ctx context.Context, run *ProvenanceRun, op *ProvOperator, b *Structure) (*TraceResult, error) {
	if op == nil {
		return nil, fmt.Errorf("pebble: TraceFromContext on nil operator")
	}
	return backtrace.NewTracer(run).TraceContext(ctx, op.OID, b)
}

// ParsePattern builds a tree-pattern query from its textual form, e.g. the
// paper's Fig. 4 question: `//id_str == "lp", tweets(text == "Hello World" #[2,2])`.
// See treepattern.Parse for the grammar.
func ParsePattern(query string) (*Pattern, error) { return treepattern.Parse(query) }

// Optimize applies provenance-safe plan rewrites (filter merging and
// pushdown below select/flatten/union) and returns the rewritten pipeline
// with a log of applied rules. Structural provenance is captured on whatever
// plan executes, so optimization never changes the backtraced input items.
func Optimize(p *Pipeline) (*Pipeline, []string, error) { return engine.Optimize(p) }

// Analyze type-checks the pipeline against declared input item types before
// running it, catching unknown columns, flattening of scalars, union type
// mismatches, join collisions, and ill-typed aggregations at plan time.
// It returns each operator's inferred output type.
func Analyze(p *Pipeline, inputTypes map[string]Type) (map[int]Type, error) {
	return engine.Analyze(p, inputTypes)
}

// InferInputTypes derives input types from datasets by merging the types of
// sampled rows (semi-structured inputs yield the union of attributes).
func InferInputTypes(inputs map[string]*Dataset) map[string]Type {
	return engine.InferInputTypes(inputs)
}
