package backtrace

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"pebble/internal/engine"
	"pebble/internal/obs"
	"pebble/internal/path"
	"pebble/internal/provenance"
)

// Result maps each reached source operator (read) to the backtracing
// structure over that source's annotated rows: which top-level input items
// the queried result items trace back to, and — per item — the backtracing
// tree distinguishing contributing from influencing attributes.
type Result struct {
	BySource map[int]*Structure
}

// Structure returns the backtracing structure for a source operator (empty
// when the trace never reached it).
func (r *Result) Structure(sourceOID int) *Structure {
	if s, ok := r.BySource[sourceOID]; ok {
		return s
	}
	return NewStructure()
}

// ContributingIDs returns the identifiers of all contributing input items
// across all sources, keyed by source operator.
func (r *Result) ContributingIDs() map[int][]int64 {
	out := make(map[int][]int64, len(r.BySource))
	for oid, s := range r.BySource {
		out[oid] = s.IDs()
	}
	return out
}

// Trace implements Alg. 1: starting from the backtracing structure b over
// the output of operator startOID, it recursively steps backward through the
// captured operator provenance until every path reaches a source operator,
// and returns the per-source backtracing structures.
func Trace(run *provenance.Run, startOID int, b *Structure) (*Result, error) {
	return NewTracer(run).Trace(startOID, b)
}

// TraceOp backtraces from a specific captured operator — the typed
// counterpart of Trace for callers that resolved the operator through
// provenance.Run.OpByID.
func TraceOp(run *provenance.Run, op *provenance.Operator, b *Structure) (*Result, error) {
	if op == nil {
		return nil, fmt.Errorf("backtrace: nil operator")
	}
	return Trace(run, op.OID, b)
}

// Tracer answers provenance queries over one captured run. It builds the
// association indexes (output id → association rows) lazily, once per
// operator, and reuses them across queries — the query-side optimisation the
// paper lists as future work. A Tracer is safe for concurrent queries, and
// index construction is sharded per operator: each operator's index is built
// exactly once under its own sync.Once, so concurrent queries touching
// different operators build in parallel instead of serializing on one
// tracer-wide lock, and queries arriving after the build proceed lock-free.
type Tracer struct {
	run *provenance.Run
	idx sync.Map // operator id -> *opIndex

	// rec receives the backtrace-walk span of every query; set it with
	// Observe before querying (not guarded — written only while idle).
	rec *obs.Recorder
}

// Observe attaches a recorder: every Trace reports its walk duration as
// obs.SpanBacktrace. A nil recorder is fine. Returns the tracer for
// chaining.
func (t *Tracer) Observe(rec *obs.Recorder) *Tracer {
	t.rec = rec
	return t
}

// opIndex holds one operator's association indexes, built once on first use
// (or installed wholesale from a persisted sidecar, see sidecar.go). The
// indexes are flat sorted-array structures — columnar keys with offset-sliced
// value runs — rather than maps: they build with O(1) allocations, look up
// by binary search, and serialize verbatim.
type opIndex struct {
	once sync.Once
	// side is the operator's column region of a validated sidecar, installed
	// by LoadIndexes; nil means build from the operator's associations. The
	// region decodes on first use (see decodeSide).
	side    []byte
	unary   pairIdx
	binary  binIdx
	flatten flatIdx
	agg     pairIdx
}

// pairIdx maps an output identifier to its associated input identifiers:
// keys is sorted ascending (unique), and key i owns vals[offs[i]:offs[i+1]]
// in association-row order.
type pairIdx struct {
	keys []int64
	offs []int32
	vals []int64
}

// lookup returns the values of one key (nil when absent).
func (x *pairIdx) lookup(id int64) []int64 {
	i, ok := findKey(x.keys, id)
	if !ok {
		return nil
	}
	return x.vals[x.offs[i]:x.offs[i+1]]
}

// binIdx maps an output identifier to its (left, right) input pairs; key i
// owns lefts/rights[offs[i]:offs[i+1]].
type binIdx struct {
	keys   []int64
	offs   []int32
	lefts  []int64
	rights []int64
}

// lookup returns the parallel left/right runs of one key (nil when absent).
func (x *binIdx) lookup(id int64) ([]int64, []int64) {
	i, ok := findKey(x.keys, id)
	if !ok {
		return nil, nil
	}
	return x.lefts[x.offs[i]:x.offs[i+1]], x.rights[x.offs[i]:x.offs[i+1]]
}

// flatIdx maps a flattened output identifier to its single (in, pos) origin.
type flatIdx struct {
	keys []int64
	ins  []int64
	poss []int64
}

// lookup returns the origin of one key.
func (x *flatIdx) lookup(id int64) (flatSrc, bool) {
	i, ok := findKey(x.keys, id)
	if !ok {
		return flatSrc{}, false
	}
	return flatSrc{in: x.ins[i], pos: int(x.poss[i])}, true
}

// findKey binary-searches the sorted key column.
func findKey(keys []int64, id int64) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && keys[lo] == id
}

type flatSrc struct {
	in  int64
	pos int
}

// NewTracer returns a tracer over the captured run.
func NewTracer(run *provenance.Run) *Tracer {
	return &Tracer{run: run}
}

// Trace runs one provenance query (Alg. 1) against the captured run.
func (t *Tracer) Trace(startOID int, b *Structure) (*Result, error) {
	return t.TraceContext(context.Background(), startOID, b)
}

// TraceContext is Trace with cooperative cancellation: the context is
// checked at every operator step of the backtracing walk (a walk visits each
// pipeline operator at most a handful of times), so a cancelled provenance
// query stops before building further association indexes.
func (t *Tracer) TraceContext(ctx context.Context, startOID int, b *Structure) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	defer t.rec.StartSpan(obs.SpanBacktrace)()
	q := &tracer{t: t, ctx: ctx, run: t.run, out: &Result{BySource: make(map[int]*Structure)}}
	if err := q.trace(startOID, b); err != nil {
		return nil, err
	}
	return q.out, nil
}

// BuildIndexes eagerly builds the association indexes of every captured
// operator — the rebuild counterpart of LoadIndexes for a freshly loaded
// run, and the warm-up for query serving. On a lazily loaded run it
// materialises every association bag.
func (t *Tracer) BuildIndexes() {
	for _, op := range t.run.Operators() {
		t.indexFor(op)
	}
}

// indexFor returns the operator's indexes, building them on first use. Only
// the association kind the operator actually captured is built — on a lazily
// loaded run this is also the only bag that materialises.
func (t *Tracer) indexFor(op *provenance.Operator) *opIndex {
	v, ok := t.idx.Load(op.OID)
	if !ok {
		v, _ = t.idx.LoadOrStore(op.OID, &opIndex{})
	}
	ix := v.(*opIndex)
	ix.once.Do(func() {
		defer t.rec.StartSpan(obs.SpanIndexBuild)()
		if ix.side == nil || !ix.decodeSide(op.AssocKind()) {
			ix.build(op)
		}
	})
	return ix
}

// build constructs the flat index for the operator's association kind.
func (ix *opIndex) build(op *provenance.Operator) {
	switch op.AssocKind() {
	case provenance.AssocUnary:
		a := op.UnaryAssocs()
		ix.unary = buildPairs(len(a),
			func(i int) int64 { return a[i].Out },
			func(i int) int64 { return a[i].In })
	case provenance.AssocBinary:
		ix.binary = buildBin(op.BinaryAssocs())
	case provenance.AssocFlatten:
		ix.flatten = buildFlat(op.FlattenAssocs())
	case provenance.AssocAgg:
		ix.agg = buildAgg(op.AggAssocs())
	}
}

// orderByKey returns association-row indexes ordered by key, preserving row
// order within equal keys; nil when the rows are already sorted — the common
// case, since identifiers grow with partition-concatenated row order.
func orderByKey(n int, key func(int) int64) []int {
	sorted := true
	for i := 1; i < n; i++ {
		if key(i) < key(i-1) {
			sorted = false
			break
		}
	}
	if sorted {
		return nil
	}
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(a, b int) bool { return key(ord[a]) < key(ord[b]) })
	return ord
}

// at resolves the i-th row under an optional reorder.
func at(ord []int, i int) int {
	if ord == nil {
		return i
	}
	return ord[i]
}

// countKeys counts distinct keys in ordered traversal, so the key and offset
// columns allocate exactly once.
func countKeys(n int, ord []int, key func(int) int64) int {
	u := 0
	for i := 0; i < n; i++ {
		if i == 0 || key(at(ord, i)) != key(at(ord, i-1)) {
			u++
		}
	}
	return u
}

// buildPairs groups (key, val) association rows into a pairIdx with exactly
// three allocations: count first, allocate once, fill.
func buildPairs(n int, key, val func(int) int64) pairIdx {
	ord := orderByKey(n, key)
	u := countKeys(n, ord, key)
	x := pairIdx{
		keys: make([]int64, 0, u),
		offs: make([]int32, 0, u+1),
		vals: make([]int64, n),
	}
	for i := 0; i < n; i++ {
		r := at(ord, i)
		k := key(r)
		if len(x.keys) == 0 || k != x.keys[len(x.keys)-1] {
			x.keys = append(x.keys, k)
			x.offs = append(x.offs, int32(i))
		}
		x.vals[i] = val(r)
	}
	x.offs = append(x.offs, int32(n))
	return x
}

// buildBin groups binary associations by Out into parallel left/right runs.
func buildBin(a []provenance.BinaryAssoc) binIdx {
	n := len(a)
	ord := orderByKey(n, func(i int) int64 { return a[i].Out })
	u := countKeys(n, ord, func(i int) int64 { return a[i].Out })
	x := binIdx{
		keys:   make([]int64, 0, u),
		offs:   make([]int32, 0, u+1),
		lefts:  make([]int64, n),
		rights: make([]int64, n),
	}
	for i := 0; i < n; i++ {
		r := at(ord, i)
		k := a[r].Out
		if len(x.keys) == 0 || k != x.keys[len(x.keys)-1] {
			x.keys = append(x.keys, k)
			x.offs = append(x.offs, int32(i))
		}
		x.lefts[i] = a[r].Left
		x.rights[i] = a[r].Right
	}
	x.offs = append(x.offs, int32(n))
	return x
}

// buildFlat indexes flatten associations by Out. Outputs are unique by
// construction; should a duplicate ever appear, the last association row
// wins, matching the previous map-based build.
func buildFlat(a []provenance.FlattenAssoc) flatIdx {
	n := len(a)
	ord := orderByKey(n, func(i int) int64 { return a[i].Out })
	u := countKeys(n, ord, func(i int) int64 { return a[i].Out })
	x := flatIdx{
		keys: make([]int64, 0, u),
		ins:  make([]int64, 0, u),
		poss: make([]int64, 0, u),
	}
	for i := 0; i < n; i++ {
		r := at(ord, i)
		k := a[r].Out
		if len(x.keys) > 0 && k == x.keys[len(x.keys)-1] {
			x.ins[len(x.ins)-1] = a[r].In
			x.poss[len(x.poss)-1] = int64(a[r].Pos)
			continue
		}
		x.keys = append(x.keys, k)
		x.ins = append(x.ins, a[r].In)
		x.poss = append(x.poss, int64(a[r].Pos))
	}
	return x
}

// buildAgg flattens aggregation groups into one pairIdx: group Outs as keys,
// the concatenated Ins as values, so an input's 1-based group position p_P
// is its offset within the key's value run plus one. The nested per-element
// append of the previous build is gone — the Ins column is counted first and
// allocated once.
func buildAgg(a []provenance.AggAssoc) pairIdx {
	n := len(a)
	ord := orderByKey(n, func(i int) int64 { return a[i].Out })
	u := countKeys(n, ord, func(i int) int64 { return a[i].Out })
	total := 0
	for i := range a {
		total += len(a[i].Ins)
	}
	x := pairIdx{
		keys: make([]int64, 0, u),
		offs: make([]int32, 0, u+1),
		vals: make([]int64, 0, total),
	}
	for i := 0; i < n; i++ {
		r := at(ord, i)
		k := a[r].Out
		if len(x.keys) == 0 || k != x.keys[len(x.keys)-1] {
			x.keys = append(x.keys, k)
			x.offs = append(x.offs, int32(len(x.vals)))
		}
		x.vals = append(x.vals, a[r].Ins...)
	}
	x.offs = append(x.offs, int32(len(x.vals)))
	return x
}

// tracer is the per-query state.
type tracer struct {
	t   *Tracer
	ctx context.Context
	run *provenance.Run
	out *Result
}

func (tr *tracer) trace(oid int, b *Structure) error {
	if err := tr.ctx.Err(); err != nil {
		return err
	}
	if b.Len() == 0 {
		return nil
	}
	op, ok := tr.run.Op(oid)
	if !ok {
		return fmt.Errorf("backtrace: no captured provenance for operator %d", oid)
	}
	switch op.Type {
	case engine.OpSource:
		if existing, ok := tr.out.BySource[oid]; ok {
			merged := &Structure{Items: append(existing.Items, b.Items...)}
			tr.out.BySource[oid] = merged.MergeByID()
		} else {
			tr.out.BySource[oid] = b.MergeByID()
		}
		return nil
	case engine.OpFilter, engine.OpSelect, engine.OpMap,
		engine.OpDistinct, engine.OpOrderBy, engine.OpLimit:
		next := tr.backtraceUnary(op, b)
		return tr.trace(op.Inputs[0].Pred, next)
	case engine.OpFlatten:
		next := tr.backtraceFlatten(op, b)
		return tr.trace(op.Inputs[0].Pred, next)
	case engine.OpAggregate:
		next := tr.backtraceAggregation(op, b)
		return tr.trace(op.Inputs[0].Pred, next)
	case engine.OpJoin:
		left, right := tr.backtraceJoin(op, b)
		if err := tr.trace(op.Inputs[0].Pred, left); err != nil {
			return err
		}
		return tr.trace(op.Inputs[1].Pred, right)
	case engine.OpUnion:
		left, right := tr.backtraceUnion(op, b)
		if err := tr.trace(op.Inputs[0].Pred, left); err != nil {
			return err
		}
		return tr.trace(op.Inputs[1].Pred, right)
	}
	return fmt.Errorf("backtrace: unsupported operator type %q", op.Type)
}

// mappings converts the captured manipulation mapping; keysOnly selects
// either the group-key mappings or the remaining ones.
func mappings(op *provenance.Operator, keys bool) []Mapping {
	var out []Mapping
	for _, m := range op.Manipulated {
		if m.GroupKey == keys {
			out = append(out, Mapping{In: m.In, Out: m.Out})
		}
	}
	return out
}

// applyStatic undoes the operator's manipulations and records its accesses
// on every tree of b (the second phase of Alg. 3, ll. 2–6).
func applyStatic(op *provenance.Operator, b *Structure, inputIdx int) {
	in := op.Inputs[inputIdx]
	for _, it := range b.Items {
		if op.ManipUndefined {
			// Map operator: no structural information; mark everything as
			// manipulated and flag the tree opaque (Sec. 6.3).
			it.Tree.Opaque = true
			it.Tree.MarkAllManip(op.OID)
		} else {
			it.Tree.ApplyMappings(mappings(op, false), op.OID)
		}
		if !in.AccessUndefined {
			for _, a := range in.Accessed {
				it.Tree.AccessPath(a, op.OID)
			}
		}
	}
}

// backtraceUnary is Alg. 3 for filter, select, and map: join b's ids against
// the ⟨id_i, id_o⟩ associations, then undo manipulations and record accesses.
func (tr *tracer) backtraceUnary(op *provenance.Operator, b *Structure) *Structure {
	idx := tr.t.indexFor(op)
	next := &Structure{}
	for _, it := range b.Items {
		for _, in := range idx.unary.lookup(it.ID) {
			next.Items = append(next.Items, &Item{ID: in, Tree: it.Tree.Clone()})
		}
	}
	applyStatic(op, next, 0)
	return next.MergeByID()
}

// backtraceFlatten is Alg. 2: the generic step rewrites the exploded
// attribute back to a_col[pos] with an unresolved placeholder; the merge
// step substitutes each item's concrete position and merges the trees of
// items originating from the same input item.
func (tr *tracer) backtraceFlatten(op *provenance.Operator, b *Structure) *Structure {
	idx := tr.t.indexFor(op)
	next := &Structure{}
	for _, it := range b.Items {
		a, ok := idx.flatten.lookup(it.ID)
		if !ok {
			continue
		}
		next.Items = append(next.Items, &Item{ID: a.in, Tree: it.Tree.Clone(), pos: a.pos})
	}
	applyStatic(op, next, 0)
	// Merge step: resolve placeholders per item, then γ_id + mergeTrees.
	var colPath path.Path
	if ms := mappings(op, false); len(ms) > 0 {
		colPath = ms[0].In
	}
	for _, it := range next.Items {
		if colPath != nil {
			it.Tree.SubstitutePlaceholder(colPath, it.pos)
		}
	}
	return next.MergeByID()
}

// backtraceAggregation is Alg. 4, tracing aggregation and nesting back to
// the input of the preceding grouping.
func (tr *tracer) backtraceAggregation(op *provenance.Operator, b *Structure) *Structure {
	idx := tr.t.indexFor(op)
	aggMs := mappings(op, false)
	keyMs := mappings(op, true)
	next := &Structure{}
	for _, it := range b.Items {
		for j, in := range idx.agg.lookup(it.ID) {
			pP := j + 1 // 1-based position within the group (= nested collection)
			t := it.Tree.Clone()
			inProv := false
			for _, m := range aggMs {
				out := m.Out
				if out.HasPlaceholder() {
					// Bag nesting: this input contributes exactly to the
					// element at its own position p_P (Alg. 4, l. 7).
					out = substitutePos(out, pP)
					if len(t.Find(out)) == 0 {
						// A query may address the whole nested collection
						// rather than individual positions; then every group
						// member contributes to it.
						if wholeCollectionAddressed(t, stripIndex(m.Out)) {
							out = stripIndex(m.Out)
						}
					}
				}
				if len(t.Find(out)) > 0 {
					inProv = true
					if len(m.In) == 0 {
						// count(*): the result value depends on the item but
						// maps to no input attribute.
						t.RemoveAt(out)
					} else {
						t.ApplyMappings([]Mapping{{In: m.In, Out: out}}, op.OID)
					}
				}
				if m.Out.HasPlaceholder() {
					// Remove the collection node and any other positions —
					// they describe other group members (Alg. 4, l. 13).
					t.RemoveAt(stripIndex(m.Out))
				}
			}
			if !inProv {
				continue
			}
			t.ApplyMappings(keyMs, op.OID)
			for _, a := range op.Inputs[0].Accessed {
				t.AccessPath(a, op.OID)
			}
			next.Items = append(next.Items, &Item{ID: in, Tree: t})
		}
	}
	return next.MergeByID()
}

// wholeCollectionAddressed reports whether the tree addresses the collection
// attribute at p as a whole (a node without position children).
func wholeCollectionAddressed(t *Tree, p path.Path) bool {
	for _, n := range t.Find(p) {
		if len(n.posChildren()) == 0 {
			return true
		}
	}
	return false
}

// substitutePos replaces the [pos] placeholder in p with the concrete
// position.
func substitutePos(p path.Path, pos int) path.Path {
	out := p.Clone()
	for i := range out {
		if out[i].Index == path.Pos {
			out[i].Index = pos
		}
	}
	return out
}

// stripIndex removes the positional index of the last step, yielding the
// path of the collection attribute itself.
func stripIndex(p path.Path) path.Path {
	out := p.Clone()
	if len(out) > 0 {
		out[len(out)-1].Index = path.NoIndex
	}
	return out
}

// backtraceJoin splits b toward the two join inputs: each side receives the
// item ids of its input, with tree nodes of the other side's schema removed
// and the side's join-key paths marked as accessed.
func (tr *tracer) backtraceJoin(op *provenance.Operator, b *Structure) (*Structure, *Structure) {
	idx := tr.t.indexFor(op)
	left, right := &Structure{}, &Structure{}
	for _, it := range b.Items {
		lefts, rights := idx.binary.lookup(it.ID)
		for k := range lefts {
			if lefts[k] != -1 {
				lt := it.Tree.Clone()
				lt.PruneToSchema(op.Inputs[0].Schema)
				left.Items = append(left.Items, &Item{ID: lefts[k], Tree: lt})
			}
			if rights[k] != -1 {
				rt := it.Tree.Clone()
				rt.PruneToSchema(op.Inputs[1].Schema)
				right.Items = append(right.Items, &Item{ID: rights[k], Tree: rt})
			}
		}
	}
	for i, s := range []*Structure{left, right} {
		for _, it := range s.Items {
			for _, a := range op.Inputs[i].Accessed {
				it.Tree.AccessPath(a, op.OID)
			}
		}
	}
	return left.MergeByID(), right.MergeByID()
}

// backtraceUnion splits b toward the two union inputs: items whose recorded
// identifier for the chosen side is undefined (-1) originate from the other
// input and are filtered out.
func (tr *tracer) backtraceUnion(op *provenance.Operator, b *Structure) (*Structure, *Structure) {
	idx := tr.t.indexFor(op)
	left, right := &Structure{}, &Structure{}
	for _, it := range b.Items {
		lefts, rights := idx.binary.lookup(it.ID)
		for k := range lefts {
			if lefts[k] != -1 {
				left.Items = append(left.Items, &Item{ID: lefts[k], Tree: it.Tree.Clone()})
			}
			if rights[k] != -1 {
				right.Items = append(right.Items, &Item{ID: rights[k], Tree: it.Tree.Clone()})
			}
		}
	}
	return left.MergeByID(), right.MergeByID()
}
