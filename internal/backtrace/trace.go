package backtrace

import (
	"fmt"
	"sync"

	"pebble/internal/engine"
	"pebble/internal/obs"
	"pebble/internal/path"
	"pebble/internal/provenance"
)

// Result maps each reached source operator (read) to the backtracing
// structure over that source's annotated rows: which top-level input items
// the queried result items trace back to, and — per item — the backtracing
// tree distinguishing contributing from influencing attributes.
type Result struct {
	BySource map[int]*Structure
}

// Structure returns the backtracing structure for a source operator (empty
// when the trace never reached it).
func (r *Result) Structure(sourceOID int) *Structure {
	if s, ok := r.BySource[sourceOID]; ok {
		return s
	}
	return NewStructure()
}

// ContributingIDs returns the identifiers of all contributing input items
// across all sources, keyed by source operator.
func (r *Result) ContributingIDs() map[int][]int64 {
	out := make(map[int][]int64, len(r.BySource))
	for oid, s := range r.BySource {
		out[oid] = s.IDs()
	}
	return out
}

// Trace implements Alg. 1: starting from the backtracing structure b over
// the output of operator startOID, it recursively steps backward through the
// captured operator provenance until every path reaches a source operator,
// and returns the per-source backtracing structures.
func Trace(run *provenance.Run, startOID int, b *Structure) (*Result, error) {
	return NewTracer(run).Trace(startOID, b)
}

// TraceOp backtraces from a specific captured operator — the typed
// counterpart of Trace for callers that resolved the operator through
// provenance.Run.OpByID.
func TraceOp(run *provenance.Run, op *provenance.Operator, b *Structure) (*Result, error) {
	if op == nil {
		return nil, fmt.Errorf("backtrace: nil operator")
	}
	return Trace(run, op.OID, b)
}

// Tracer answers provenance queries over one captured run. It builds the
// association indexes (output id → association rows) lazily, once per
// operator, and reuses them across queries — the query-side optimisation the
// paper lists as future work. A Tracer is safe for concurrent queries, and
// index construction is sharded per operator: each operator's index is built
// exactly once under its own sync.Once, so concurrent queries touching
// different operators build in parallel instead of serializing on one
// tracer-wide lock, and queries arriving after the build proceed lock-free.
type Tracer struct {
	run *provenance.Run
	idx sync.Map // operator id -> *opIndex

	// rec receives the backtrace-walk span of every query; set it with
	// Observe before querying (not guarded — written only while idle).
	rec *obs.Recorder
}

// Observe attaches a recorder: every Trace reports its walk duration as
// obs.SpanBacktrace. A nil recorder is fine. Returns the tracer for
// chaining.
func (t *Tracer) Observe(rec *obs.Recorder) *Tracer {
	t.rec = rec
	return t
}

// opIndex holds one operator's association indexes, built once on first use.
type opIndex struct {
	once    sync.Once
	unary   map[int64][]int64
	binary  map[int64][]provenance.BinaryAssoc
	flatten map[int64]flatSrc
	agg     map[int64][]aggEntry
}

type flatSrc struct {
	in  int64
	pos int
}

type aggEntry struct {
	in int64
	pP int // 1-based position within the group (= nested collection)
}

// NewTracer returns a tracer over the captured run.
func NewTracer(run *provenance.Run) *Tracer {
	return &Tracer{run: run}
}

// Trace runs one provenance query (Alg. 1) against the captured run.
func (t *Tracer) Trace(startOID int, b *Structure) (*Result, error) {
	defer t.rec.StartSpan(obs.SpanBacktrace)()
	q := &tracer{t: t, run: t.run, out: &Result{BySource: make(map[int]*Structure)}}
	if err := q.trace(startOID, b); err != nil {
		return nil, err
	}
	return q.out, nil
}

// indexFor returns the operator's indexes, building them on first use. Only
// the association kinds the operator actually captured allocate entries, so
// the unused maps stay empty.
func (t *Tracer) indexFor(op *provenance.Operator) *opIndex {
	v, ok := t.idx.Load(op.OID)
	if !ok {
		v, _ = t.idx.LoadOrStore(op.OID, &opIndex{})
	}
	ix := v.(*opIndex)
	ix.once.Do(func() {
		ix.unary = make(map[int64][]int64, len(op.Unary))
		for _, a := range op.Unary {
			ix.unary[a.Out] = append(ix.unary[a.Out], a.In)
		}
		ix.binary = make(map[int64][]provenance.BinaryAssoc, len(op.Binary))
		for _, a := range op.Binary {
			ix.binary[a.Out] = append(ix.binary[a.Out], a)
		}
		ix.flatten = make(map[int64]flatSrc, len(op.Flatten))
		for _, a := range op.Flatten {
			ix.flatten[a.Out] = flatSrc{in: a.In, pos: a.Pos}
		}
		ix.agg = make(map[int64][]aggEntry, len(op.Agg))
		for _, a := range op.Agg {
			for i, in := range a.Ins {
				ix.agg[a.Out] = append(ix.agg[a.Out], aggEntry{in: in, pP: i + 1})
			}
		}
	})
	return ix
}

func (t *Tracer) unary(op *provenance.Operator) map[int64][]int64 {
	return t.indexFor(op).unary
}

func (t *Tracer) binary(op *provenance.Operator) map[int64][]provenance.BinaryAssoc {
	return t.indexFor(op).binary
}

func (t *Tracer) flatten(op *provenance.Operator) map[int64]flatSrc {
	return t.indexFor(op).flatten
}

func (t *Tracer) agg(op *provenance.Operator) map[int64][]aggEntry {
	return t.indexFor(op).agg
}

// tracer is the per-query state.
type tracer struct {
	t   *Tracer
	run *provenance.Run
	out *Result
}

func (tr *tracer) trace(oid int, b *Structure) error {
	if b.Len() == 0 {
		return nil
	}
	op, ok := tr.run.Op(oid)
	if !ok {
		return fmt.Errorf("backtrace: no captured provenance for operator %d", oid)
	}
	switch op.Type {
	case engine.OpSource:
		if existing, ok := tr.out.BySource[oid]; ok {
			merged := &Structure{Items: append(existing.Items, b.Items...)}
			tr.out.BySource[oid] = merged.MergeByID()
		} else {
			tr.out.BySource[oid] = b.MergeByID()
		}
		return nil
	case engine.OpFilter, engine.OpSelect, engine.OpMap,
		engine.OpDistinct, engine.OpOrderBy, engine.OpLimit:
		next := tr.backtraceUnary(op, b)
		return tr.trace(op.Inputs[0].Pred, next)
	case engine.OpFlatten:
		next := tr.backtraceFlatten(op, b)
		return tr.trace(op.Inputs[0].Pred, next)
	case engine.OpAggregate:
		next := tr.backtraceAggregation(op, b)
		return tr.trace(op.Inputs[0].Pred, next)
	case engine.OpJoin:
		left, right := tr.backtraceJoin(op, b)
		if err := tr.trace(op.Inputs[0].Pred, left); err != nil {
			return err
		}
		return tr.trace(op.Inputs[1].Pred, right)
	case engine.OpUnion:
		left, right := tr.backtraceUnion(op, b)
		if err := tr.trace(op.Inputs[0].Pred, left); err != nil {
			return err
		}
		return tr.trace(op.Inputs[1].Pred, right)
	}
	return fmt.Errorf("backtrace: unsupported operator type %q", op.Type)
}

// mappings converts the captured manipulation mapping; keysOnly selects
// either the group-key mappings or the remaining ones.
func mappings(op *provenance.Operator, keys bool) []Mapping {
	var out []Mapping
	for _, m := range op.Manipulated {
		if m.GroupKey == keys {
			out = append(out, Mapping{In: m.In, Out: m.Out})
		}
	}
	return out
}

// applyStatic undoes the operator's manipulations and records its accesses
// on every tree of b (the second phase of Alg. 3, ll. 2–6).
func applyStatic(op *provenance.Operator, b *Structure, inputIdx int) {
	in := op.Inputs[inputIdx]
	for _, it := range b.Items {
		if op.ManipUndefined {
			// Map operator: no structural information; mark everything as
			// manipulated and flag the tree opaque (Sec. 6.3).
			it.Tree.Opaque = true
			it.Tree.MarkAllManip(op.OID)
		} else {
			it.Tree.ApplyMappings(mappings(op, false), op.OID)
		}
		if !in.AccessUndefined {
			for _, a := range in.Accessed {
				it.Tree.AccessPath(a, op.OID)
			}
		}
	}
}

// backtraceUnary is Alg. 3 for filter, select, and map: join b's ids against
// the ⟨id_i, id_o⟩ associations, then undo manipulations and record accesses.
func (tr *tracer) backtraceUnary(op *provenance.Operator, b *Structure) *Structure {
	idx := tr.t.unary(op)
	next := &Structure{}
	for _, it := range b.Items {
		for _, in := range idx[it.ID] {
			next.Items = append(next.Items, &Item{ID: in, Tree: it.Tree.Clone()})
		}
	}
	applyStatic(op, next, 0)
	return next.MergeByID()
}

// backtraceFlatten is Alg. 2: the generic step rewrites the exploded
// attribute back to a_col[pos] with an unresolved placeholder; the merge
// step substitutes each item's concrete position and merges the trees of
// items originating from the same input item.
func (tr *tracer) backtraceFlatten(op *provenance.Operator, b *Structure) *Structure {
	idx := tr.t.flatten(op)
	next := &Structure{}
	for _, it := range b.Items {
		a, ok := idx[it.ID]
		if !ok {
			continue
		}
		next.Items = append(next.Items, &Item{ID: a.in, Tree: it.Tree.Clone(), pos: a.pos})
	}
	applyStatic(op, next, 0)
	// Merge step: resolve placeholders per item, then γ_id + mergeTrees.
	var colPath path.Path
	if ms := mappings(op, false); len(ms) > 0 {
		colPath = ms[0].In
	}
	for _, it := range next.Items {
		if colPath != nil {
			it.Tree.SubstitutePlaceholder(colPath, it.pos)
		}
	}
	return next.MergeByID()
}

// backtraceAggregation is Alg. 4, tracing aggregation and nesting back to
// the input of the preceding grouping.
func (tr *tracer) backtraceAggregation(op *provenance.Operator, b *Structure) *Structure {
	idx := tr.t.agg(op)
	aggMs := mappings(op, false)
	keyMs := mappings(op, true)
	next := &Structure{}
	for _, it := range b.Items {
		for _, en := range idx[it.ID] {
			t := it.Tree.Clone()
			inProv := false
			for _, m := range aggMs {
				out := m.Out
				if out.HasPlaceholder() {
					// Bag nesting: this input contributes exactly to the
					// element at its own position p_P (Alg. 4, l. 7).
					out = substitutePos(out, en.pP)
					if len(t.Find(out)) == 0 {
						// A query may address the whole nested collection
						// rather than individual positions; then every group
						// member contributes to it.
						if wholeCollectionAddressed(t, stripIndex(m.Out)) {
							out = stripIndex(m.Out)
						}
					}
				}
				if len(t.Find(out)) > 0 {
					inProv = true
					if len(m.In) == 0 {
						// count(*): the result value depends on the item but
						// maps to no input attribute.
						t.RemoveAt(out)
					} else {
						t.ApplyMappings([]Mapping{{In: m.In, Out: out}}, op.OID)
					}
				}
				if m.Out.HasPlaceholder() {
					// Remove the collection node and any other positions —
					// they describe other group members (Alg. 4, l. 13).
					t.RemoveAt(stripIndex(m.Out))
				}
			}
			if !inProv {
				continue
			}
			t.ApplyMappings(keyMs, op.OID)
			for _, a := range op.Inputs[0].Accessed {
				t.AccessPath(a, op.OID)
			}
			next.Items = append(next.Items, &Item{ID: en.in, Tree: t})
		}
	}
	return next.MergeByID()
}

// wholeCollectionAddressed reports whether the tree addresses the collection
// attribute at p as a whole (a node without position children).
func wholeCollectionAddressed(t *Tree, p path.Path) bool {
	for _, n := range t.Find(p) {
		if len(n.posChildren()) == 0 {
			return true
		}
	}
	return false
}

// substitutePos replaces the [pos] placeholder in p with the concrete
// position.
func substitutePos(p path.Path, pos int) path.Path {
	out := p.Clone()
	for i := range out {
		if out[i].Index == path.Pos {
			out[i].Index = pos
		}
	}
	return out
}

// stripIndex removes the positional index of the last step, yielding the
// path of the collection attribute itself.
func stripIndex(p path.Path) path.Path {
	out := p.Clone()
	if len(out) > 0 {
		out[len(out)-1].Index = path.NoIndex
	}
	return out
}

// backtraceJoin splits b toward the two join inputs: each side receives the
// item ids of its input, with tree nodes of the other side's schema removed
// and the side's join-key paths marked as accessed.
func (tr *tracer) backtraceJoin(op *provenance.Operator, b *Structure) (*Structure, *Structure) {
	idx := tr.t.binary(op)
	left, right := &Structure{}, &Structure{}
	for _, it := range b.Items {
		for _, a := range idx[it.ID] {
			if a.Left != -1 {
				lt := it.Tree.Clone()
				lt.PruneToSchema(op.Inputs[0].Schema)
				left.Items = append(left.Items, &Item{ID: a.Left, Tree: lt})
			}
			if a.Right != -1 {
				rt := it.Tree.Clone()
				rt.PruneToSchema(op.Inputs[1].Schema)
				right.Items = append(right.Items, &Item{ID: a.Right, Tree: rt})
			}
		}
	}
	for i, s := range []*Structure{left, right} {
		for _, it := range s.Items {
			for _, a := range op.Inputs[i].Accessed {
				it.Tree.AccessPath(a, op.OID)
			}
		}
	}
	return left.MergeByID(), right.MergeByID()
}

// backtraceUnion splits b toward the two union inputs: items whose recorded
// identifier for the chosen side is undefined (-1) originate from the other
// input and are filtered out.
func (tr *tracer) backtraceUnion(op *provenance.Operator, b *Structure) (*Structure, *Structure) {
	idx := tr.t.binary(op)
	left, right := &Structure{}, &Structure{}
	for _, it := range b.Items {
		for _, a := range idx[it.ID] {
			if a.Left != -1 {
				left.Items = append(left.Items, &Item{ID: a.Left, Tree: it.Tree.Clone()})
			}
			if a.Right != -1 {
				right.Items = append(right.Items, &Item{ID: a.Right, Tree: it.Tree.Clone()})
			}
		}
	}
	return left.MergeByID(), right.MergeByID()
}
