package backtrace

import (
	"fmt"
	"sort"
	"strings"
)

// Item is one entry ⟨id, T⟩ of the backtracing structure: a top-level data
// item identifier with the backtracing tree describing the queried (and
// influencing) parts of its schema.
type Item struct {
	ID   int64
	Tree *Tree
	// pos is the scratch position column used while backtracing flatten and
	// aggregation operators (pos / p_P in Algs. 2 and 4).
	pos int
}

// Structure is the backtracing structure B = {{⟨id, T⟩}} of Def. 6.2.
type Structure struct {
	Items []*Item
}

// NewStructure returns an empty backtracing structure.
func NewStructure() *Structure { return &Structure{} }

// Add appends an item.
func (b *Structure) Add(id int64, t *Tree) {
	b.Items = append(b.Items, &Item{ID: id, Tree: t})
}

// Len returns the number of items.
func (b *Structure) Len() int { return len(b.Items) }

// IDs returns the item identifiers in ascending order.
func (b *Structure) IDs() []int64 {
	out := make([]int64, len(b.Items))
	for i, it := range b.Items {
		out[i] = it.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy.
func (b *Structure) Clone() *Structure {
	out := &Structure{Items: make([]*Item, len(b.Items))}
	for i, it := range b.Items {
		out.Items[i] = &Item{ID: it.ID, Tree: it.Tree.Clone(), pos: it.pos}
	}
	return out
}

// MergeByID merges items sharing the same identifier into one item whose
// tree is the union of the merged trees, preserving first-seen order.
func (b *Structure) MergeByID() *Structure {
	byID := make(map[int64]*Item)
	out := &Structure{}
	for _, it := range b.Items {
		if existing, ok := byID[it.ID]; ok {
			existing.Tree.Merge(it.Tree)
			continue
		}
		merged := &Item{ID: it.ID, Tree: it.Tree, pos: it.pos}
		byID[it.ID] = merged
		out.Items = append(out.Items, merged)
	}
	return out
}

// String renders the structure, one item per block.
func (b *Structure) String() string {
	var sb strings.Builder
	items := append([]*Item(nil), b.Items...)
	sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
	for _, it := range items {
		fmt.Fprintf(&sb, "item %d\n", it.ID)
		for _, line := range strings.Split(strings.TrimRight(it.Tree.String(), "\n"), "\n") {
			if line != "" {
				sb.WriteString("  " + line + "\n")
			}
		}
	}
	return sb.String()
}

// ContributingPaths returns, per item, the paths of the contributing leaf
// nodes — the where-provenance-style view of the trace: the "cells" the
// queried result values were copied from. The paper's Sec. 2 discusses why
// this flat cell list is weaker than the full backtracing trees (it loses
// the common context binding the cells together); it is still the right
// granularity for cell-level redaction or masking.
func (b *Structure) ContributingPaths() map[int64][]string {
	out := make(map[int64][]string, len(b.Items))
	for _, it := range b.Items {
		var cells []string
		it.Tree.Walk(func(n *Node) {
			if n.Parent == nil || !n.Contributing || len(n.Children) > 0 {
				return
			}
			cells = append(cells, n.PathString())
		})
		sort.Strings(cells)
		out[it.ID] = cells
	}
	return out
}
