package backtrace_test

import (
	"testing"

	"pebble/internal/backtrace"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/path"
	"pebble/internal/provenance"
)

// TestBacktraceDistinct: tracing a distinct output returns every collapsed
// duplicate (all witnesses).
func TestBacktraceDistinct(t *testing.T) {
	values := []nested.Value{
		nested.Item(nested.F("k", nested.StringVal("a"))),
		nested.Item(nested.F("k", nested.StringVal("b"))),
		nested.Item(nested.F("k", nested.StringVal("a"))),
		nested.Item(nested.F("k", nested.StringVal("a"))),
	}
	p := engine.NewPipeline()
	src := p.Source("in")
	p.Distinct(src)
	gen := engine.NewIDGen(1)
	inputs := map[string]*engine.Dataset{"in": engine.NewDataset("in", values, 2, gen)}
	res, run, err := provenance.Capture(p, inputs, engine.Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	var aRow engine.Row
	for _, r := range res.Output.Rows() {
		if k, _ := r.Value.Get("k"); func() bool { s, _ := k.AsString(); return s == "a" }() {
			aRow = r
		}
	}
	b := backtrace.NewStructure()
	tr := backtrace.NewTree()
	tr.EnsureContributing(path.MustParse("k"))
	b.Add(aRow.ID, tr)
	traced, err := backtrace.Trace(run, p.Sink().ID(), b)
	if err != nil {
		t.Fatal(err)
	}
	if got := traced.Structure(src.ID()).Len(); got != 3 {
		t.Errorf("distinct trace returned %d witnesses, want 3", got)
	}
}

// TestBacktraceOrderByLimit: top-n tracing returns exactly the surviving
// items, with the sort key marked as accessed.
func TestBacktraceOrderByLimit(t *testing.T) {
	var values []nested.Value
	for i := 0; i < 10; i++ {
		values = append(values, nested.Item(
			nested.F("name", nested.StringVal(string(rune('a'+i)))),
			nested.F("score", nested.Int(int64(i))),
		))
	}
	p := engine.NewPipeline()
	src := p.Source("in")
	ord := p.OrderBy(src, true, engine.Col("score"))
	p.Limit(ord, 2)
	gen := engine.NewIDGen(1)
	inputs := map[string]*engine.Dataset{"in": engine.NewDataset("in", values, 3, gen)}
	res, run, err := provenance.Capture(p, inputs, engine.Options{Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Len() != 2 {
		t.Fatalf("top-2 has %d rows", res.Output.Len())
	}
	b := backtrace.NewStructure()
	for _, r := range res.Output.Rows() {
		tr := backtrace.NewTree()
		tr.EnsureContributing(path.MustParse("name"))
		b.Add(r.ID, tr)
	}
	traced, err := backtrace.Trace(run, p.Sink().ID(), b)
	if err != nil {
		t.Fatal(err)
	}
	s := traced.Structure(src.ID())
	if s.Len() != 2 {
		t.Fatalf("traced %d input items, want 2", s.Len())
	}
	for _, it := range s.Items {
		row, _ := res.Sources[src.ID()].FindByID(it.ID)
		sc, _ := row.Value.Get("score")
		if v, _ := sc.AsInt(); v < 8 {
			t.Errorf("traced non-top item with score %d", v)
		}
		key := it.Tree.Find(path.MustParse("score"))
		if len(key) != 1 || key[0].Contributing || len(key[0].Access) == 0 {
			t.Errorf("sort key should be influencing with access marks:\n%s", it.Tree)
		}
	}
}
