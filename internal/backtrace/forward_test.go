package backtrace_test

import (
	"testing"

	"pebble/internal/backtrace"
	"pebble/internal/core"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/provenance"
)

// TestForwardTraceRunningExample: the "Hello World" tweet 12 affects exactly
// the lp result item; the retweeted tweet 29 affects lp only through the
// lower branch (it is filtered from the upper one).
func TestForwardTraceRunningExample(t *testing.T) {
	res, run := runExample(t, 2)
	sinkOID := 9

	// Locate the source ids of the Hello World tweets in read 1.
	src1 := res.Sources[1]
	var hwIDs []int64
	for _, r := range src1.Rows() {
		if s, _ := mustGet(t, r.Value, "text").AsString(); s == "Hello World" {
			hwIDs = append(hwIDs, r.ID)
		}
	}
	if len(hwIDs) != 2 {
		t.Fatalf("found %d Hello World rows", len(hwIDs))
	}
	fwd, err := backtrace.TraceForward(run, 1, hwIDs)
	if err != nil {
		t.Fatal(err)
	}
	affected := fwd.AffectedIDs(sinkOID)
	if len(affected) != 1 {
		t.Fatalf("Hello World tweets affect %d result items, want 1 (lp)", len(affected))
	}
	row, _ := res.Output.FindByID(affected[0])
	u, _ := row.Value.Get("user")
	if id, _ := mustGet(t, u, "id_str").AsString(); id != "lp" {
		t.Errorf("affected user = %q, want lp", id)
	}

	// Tweet 1 (authored by lp, mentioning ls, jm, ls) affects all three
	// result users via authoring and mentions... but through read 1 only the
	// upper branch applies, so it affects lp only.
	var tweet1 int64 = -1
	for _, r := range src1.Rows() {
		if s, _ := mustGet(t, r.Value, "text").AsString(); s == "Hello @ls @jm @ls" {
			tweet1 = r.ID
		}
	}
	fwd1, err := backtrace.TraceForward(run, 1, []int64{tweet1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(fwd1.AffectedIDs(sinkOID)); got != 1 {
		t.Errorf("tweet 1 via read 1 affects %d results, want 1", got)
	}
	// Via read 4 (the flatten branch) the same tweet affects ls and jm.
	src4 := res.Sources[4]
	for _, r := range src4.Rows() {
		if s, _ := mustGet(t, r.Value, "text").AsString(); s == "Hello @ls @jm @ls" {
			tweet1 = r.ID
		}
	}
	fwd4, err := backtrace.TraceForward(run, 4, []int64{tweet1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(fwd4.AffectedIDs(sinkOID)); got != 2 {
		t.Errorf("tweet 1 via read 4 affects %d results, want 2 (ls, jm)", got)
	}
}

// TestForwardBackwardRoundTrip: forward tracing an input and backtracing the
// affected results must come back to that input.
func TestForwardBackwardRoundTrip(t *testing.T) {
	res, run := runExample(t, 3)
	src := res.Sources[1]
	probe := src.Rows()[0]
	fwd, err := backtrace.TraceForward(run, 1, []int64{probe.ID})
	if err != nil {
		t.Fatal(err)
	}
	affected := fwd.AffectedIDs(9)
	if len(affected) == 0 {
		t.Skip("probe row filtered everywhere")
	}
	b := backtrace.NewStructure()
	for _, id := range affected {
		row, _ := res.Output.FindByID(id)
		b.Add(id, core.TreeFromValue(row.Value))
	}
	traced, err := backtrace.Trace(run, 9, b)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, it := range traced.Structure(1).Items {
		if it.ID == probe.ID {
			found = true
		}
	}
	if !found {
		t.Error("backtrace of forward-affected results misses the probe input")
	}
}

func TestForwardTraceErrors(t *testing.T) {
	_, run := runExample(t, 1)
	if _, err := backtrace.TraceForward(run, 99, []int64{1}); err == nil {
		t.Error("unknown operator accepted")
	}
	if _, err := backtrace.TraceForward(run, 2, []int64{1}); err == nil {
		t.Error("non-source operator accepted")
	}
	fwd, err := backtrace.TraceForward(run, 1, nil)
	if err != nil || len(fwd.ByOperator[9]) != 0 {
		t.Errorf("empty forward trace: %v %v", fwd, err)
	}
}

// TestForwardThroughExtensionOps covers distinct forward mapping: any of
// the duplicates affects the one collapsed output.
func TestForwardThroughExtensionOps(t *testing.T) {
	values := []nested.Value{
		nested.Item(nested.F("k", nested.StringVal("a"))),
		nested.Item(nested.F("k", nested.StringVal("a"))),
		nested.Item(nested.F("k", nested.StringVal("b"))),
	}
	p := engine.NewPipeline()
	src := p.Source("in")
	dst := p.Distinct(src)
	p.OrderBy(dst, false, engine.Col("k"))
	gen := engine.NewIDGen(1)
	inputs := map[string]*engine.Dataset{"in": engine.NewDataset("in", values, 2, gen)}
	res, run, err := provenance.Capture(p, inputs, engine.Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The second duplicate of "a".
	var dup int64 = -1
	count := 0
	for _, r := range res.Sources[src.ID()].Rows() {
		if s, _ := mustGet(t, r.Value, "k").AsString(); s == "a" {
			count++
			if count == 2 {
				dup = r.ID
			}
		}
	}
	fwd, err := backtrace.TraceForward(run, src.ID(), []int64{dup})
	if err != nil {
		t.Fatal(err)
	}
	affected := fwd.AffectedIDs(p.Sink().ID())
	if len(affected) != 1 {
		t.Fatalf("duplicate affects %d results, want 1", len(affected))
	}
	row, _ := res.Output.FindByID(affected[0])
	if s, _ := mustGet(t, row.Value, "k").AsString(); s != "a" {
		t.Errorf("affected row = %s", row.Value)
	}
}
