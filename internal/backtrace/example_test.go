package backtrace_test

import (
	"sort"
	"testing"

	"pebble/internal/backtrace"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/path"
	"pebble/internal/provenance"
	"pebble/internal/workload"
)

// runExample executes the Fig. 1 pipeline with capture and returns the
// execution result and provenance run.
func runExample(t *testing.T, parts int) (*engine.Result, *provenance.Run) {
	t.Helper()
	res, run, err := provenance.Capture(workload.ExamplePipeline(), workload.ExampleInput(parts),
		engine.Options{Partitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	return res, run
}

// findResultUser returns the output row for the given user id.
func findResultUser(t *testing.T, res *engine.Result, id string) engine.Row {
	t.Helper()
	for _, r := range res.Output.Rows() {
		u, _ := r.Value.Get("user")
		if s, _ := mustGet(t, u, "id_str").AsString(); s == id {
			return r
		}
	}
	t.Fatalf("result user %q not found", id)
	return engine.Row{}
}

func mustGet(t *testing.T, v nested.Value, name string) nested.Value {
	t.Helper()
	out, ok := v.Get(name)
	if !ok {
		t.Fatalf("attribute %q missing in %s", name, v)
	}
	return out
}

// helloWorldPositions returns the 1-based positions of "Hello World" in the
// result item's tweets collection.
func helloWorldPositions(t *testing.T, row engine.Row) []int {
	t.Helper()
	tweets := mustGet(t, row.Value, "tweets")
	var out []int
	for i, e := range tweets.Elems() {
		if s, _ := mustGet(t, e, "text").AsString(); s == "Hello World" {
			out = append(out, i+1)
		}
	}
	return out
}

// buildExampleQuery builds the backtracing structure of Fig. 2 (right tree):
// item 102 with user.id_str and the duplicate Hello World texts.
func buildExampleQuery(t *testing.T, res *engine.Result) *backtrace.Structure {
	t.Helper()
	row := findResultUser(t, res, "lp")
	positions := helloWorldPositions(t, row)
	if len(positions) != 2 {
		t.Fatalf("expected duplicate Hello World, found positions %v", positions)
	}
	tree := backtrace.NewTree()
	tree.EnsureContributing(path.MustParse("user.id_str"))
	for _, pos := range positions {
		tree.EnsureContributing(path.Path{
			{Attr: "tweets", Index: pos},
			{Attr: "text", Index: path.NoIndex},
		})
	}
	b := backtrace.NewStructure()
	b.Add(row.ID, tree)
	return b
}

// sourceRowText returns the text attribute of the source row with the given
// provenance identifier.
func sourceRowText(t *testing.T, src *engine.Dataset, id int64) string {
	t.Helper()
	row, ok := src.FindByID(id)
	if !ok {
		t.Fatalf("source row %d not found", id)
	}
	s, _ := mustGet(t, row.Value, "text").AsString()
	return s
}

// TestRunningExampleBacktrace reproduces the paper's Sec. 2 / Fig. 2 result:
// backtracing the duplicate "Hello World" texts in the context of user lp
// returns exactly the two input tweets 12 and 17 (dark-green contributing
// data), with retweet_cnt and name as influencing attributes (medium-green),
// name manipulated by operators 3 and 8 and accessed by the grouping 9, and
// retweet_cnt accessed by the filter 2.
func TestRunningExampleBacktrace(t *testing.T) {
	for _, parts := range []int{1, 2, 3} {
		res, run := runExample(t, parts)
		b := buildExampleQuery(t, res)
		traced, err := backtrace.Trace(run, 9, b)
		if err != nil {
			t.Fatal(err)
		}
		// All provenance comes from the upper branch (read operator 1); the
		// lower branch (read 4) contributes nothing to the duplicate texts.
		upper := traced.Structure(1)
		lower := traced.Structure(4)
		if lower.Len() != 0 {
			t.Errorf("parts=%d: lower branch should be empty, got %d items:\n%s", parts, lower.Len(), lower)
		}
		if upper.Len() != 2 {
			t.Fatalf("parts=%d: upper branch items = %d, want 2 (tweets 12 and 17):\n%s", parts, upper.Len(), upper)
		}
		src := res.Sources[1]
		for _, it := range upper.Items {
			if text := sourceRowText(t, src, it.ID); text != "Hello World" {
				t.Errorf("parts=%d: traced wrong tweet %q", parts, text)
			}
			assertExampleTree(t, it.Tree)
		}
	}
}

// assertExampleTree checks one of the two left trees of Fig. 2.
func assertExampleTree(t *testing.T, tree *backtrace.Tree) {
	t.Helper()
	find := func(p string) *backtrace.Node {
		nodes := tree.Find(path.MustParse(p))
		if len(nodes) != 1 {
			t.Fatalf("node %s: found %d, want 1\n%s", p, len(nodes), tree)
		}
		return nodes[0]
	}
	// Contributing (dark-green): text and user.id_str.
	text := find("text")
	if !text.Contributing {
		t.Errorf("text must contribute:\n%s", tree)
	}
	if !containsInt(text.Manip, 8) {
		t.Errorf("text manipulated by select 8, got %v", text.Manip)
	}
	user := find("user")
	if !user.Contributing {
		t.Errorf("user must contribute (path to id_str)")
	}
	idStr := find("user.id_str")
	if !idStr.Contributing {
		t.Errorf("user.id_str must contribute")
	}
	if !containsInt(idStr.Manip, 3) || !containsInt(idStr.Manip, 8) {
		t.Errorf("id_str manipulated by 3 and 8, got %v", idStr.Manip)
	}
	// Influencing (medium-green): user.name and retweet_cnt.
	name := find("user.name")
	if name.Contributing {
		t.Errorf("user.name must be influencing, not contributing")
	}
	if !containsInt(name.Manip, 3) || !containsInt(name.Manip, 8) {
		t.Errorf("name manipulated by operators 3 and 8 (Fig. 2), got %v", name.Manip)
	}
	if !containsInt(name.Access, 9) {
		t.Errorf("name accessed by grouping 9 (Fig. 2), got %v", name.Access)
	}
	rc := find("retweet_cnt")
	if rc.Contributing {
		t.Errorf("retweet_cnt must be influencing")
	}
	if !containsInt(rc.Access, 2) {
		t.Errorf("retweet_cnt accessed by filter 2, got %v", rc.Access)
	}
	// Nothing else at the top level: the tree conforms to the input schema.
	for _, c := range tree.Root.Children {
		switch c.Name {
		case "text", "user", "retweet_cnt":
		default:
			t.Errorf("unexpected top-level node %q:\n%s", c.Name, tree)
		}
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// TestBacktraceFullResult traces the whole result item of user lp (all four
// nested texts plus the user) and verifies all four source tweets of the
// upper and lower branches are reached.
func TestBacktraceFullResult(t *testing.T) {
	res, run := runExample(t, 2)
	row := findResultUser(t, res, "lp")
	tweets := mustGet(t, row.Value, "tweets")
	tree := backtrace.NewTree()
	tree.EnsureContributing(path.MustParse("user.id_str"))
	tree.EnsureContributing(path.MustParse("user.name"))
	for i := 1; i <= tweets.Len(); i++ {
		tree.EnsureContributing(path.Path{
			{Attr: "tweets", Index: i},
			{Attr: "text", Index: path.NoIndex},
		})
	}
	b := backtrace.NewStructure()
	b.Add(row.ID, tree)
	traced, err := backtrace.Trace(run, 9, b)
	if err != nil {
		t.Fatal(err)
	}
	// Upper branch: the three lp-authored tweets with retweet_cnt == 0.
	upper := traced.Structure(1)
	var upperTexts []string
	for _, it := range upper.Items {
		upperTexts = append(upperTexts, sourceRowText(t, res.Sources[1], it.ID))
	}
	if len(upperTexts) != 3 {
		t.Errorf("upper branch items = %v, want 3 lp tweets", upperTexts)
	}
	// Lower branch: the tweet mentioning lp (tweet 29).
	lowerItems := traced.Structure(4)
	if lowerItems.Len() != 1 {
		t.Fatalf("lower branch items = %d, want 1:\n%s", lowerItems.Len(), lowerItems)
	}
	it := lowerItems.Items[0]
	if text := sourceRowText(t, res.Sources[4], it.ID); text != "Hello @lp" {
		t.Errorf("lower branch traced %q, want Hello @lp", text)
	}
	// The mention sits at user_mentions[1]: flatten backtracing must have
	// produced a concrete position node.
	mention := it.Tree.Find(path.MustParse("user_mentions[1].id_str"))
	if len(mention) != 1 || !mention[0].Contributing {
		t.Errorf("user_mentions[1].id_str missing or not contributing:\n%s", it.Tree)
	}
}

// TestBacktraceKeyOnlyQueryIsEmpty documents the Alg. 4 semantics: a query
// that addresses only grouping attributes matches no aggregated value, so no
// group member is marked relevant (cf. Ex. 6.6's removal of id 95).
func TestBacktraceKeyOnlyQueryIsEmpty(t *testing.T) {
	res, run := runExample(t, 2)
	row := findResultUser(t, res, "lp")
	tree := backtrace.NewTree()
	tree.EnsureContributing(path.MustParse("user.id_str"))
	b := backtrace.NewStructure()
	b.Add(row.ID, tree)
	traced, err := backtrace.Trace(run, 9, b)
	if err != nil {
		t.Fatal(err)
	}
	if n := traced.Structure(1).Len() + traced.Structure(4).Len(); n != 0 {
		t.Errorf("key-only query returned %d items, want 0 per Alg. 4", n)
	}
}

// TestBacktraceThroughMap verifies the conservative map semantics: the trace
// still reaches the correct input items but trees are flagged opaque.
func TestBacktraceThroughMap(t *testing.T) {
	p := engine.NewPipeline()
	src := p.Source("in")
	mapped := p.Map(src, engine.MapFunc{Name: "rename", Fn: func(v nested.Value) (nested.Value, error) {
		txt, _ := v.Get("text")
		return nested.Item(nested.F("content", txt)), nil
	}})
	p.Filter(mapped, engine.Contains(engine.Col("content"), engine.LitString("World")))
	inputs := workload.ExampleInput(2)
	inputs["in"] = inputs["tweets.json"]
	res, run, err := provenance.Capture(p, inputs, engine.Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Len() != 2 {
		t.Fatalf("filtered rows = %d, want 2", res.Output.Len())
	}
	b := backtrace.NewStructure()
	for _, r := range res.Output.Rows() {
		tr := backtrace.NewTree()
		tr.EnsureContributing(path.MustParse("content"))
		b.Add(r.ID, tr)
	}
	traced, err := backtrace.Trace(run, p.Sink().ID(), b)
	if err != nil {
		t.Fatal(err)
	}
	srcStruct := traced.Structure(src.ID())
	if srcStruct.Len() != 2 {
		t.Fatalf("map trace items = %d, want 2", srcStruct.Len())
	}
	for _, it := range srcStruct.Items {
		if !it.Tree.Opaque {
			t.Error("tree must be flagged opaque after crossing a map")
		}
		if text := sourceRowText(t, res.Sources[src.ID()], it.ID); text != "Hello World" {
			t.Errorf("map trace reached wrong tweet %q", text)
		}
	}
}

// TestBacktraceJoinPrunesSides verifies join backtracing: each side receives
// only its own schema's nodes plus its join-key access marks.
func TestBacktraceJoinPrunesSides(t *testing.T) {
	users := []nested.Value{
		nested.Item(nested.F("uid", nested.StringVal("lp")), nested.F("uname", nested.StringVal("Lisa"))),
	}
	tweets := []nested.Value{
		nested.Item(nested.F("author", nested.StringVal("lp")), nested.F("txt", nested.StringVal("hi"))),
	}
	p := engine.NewPipeline()
	l := p.Source("users")
	r := p.Source("tweets")
	p.Join(l, r, engine.Col("uid"), engine.Col("author"))
	gen := engine.NewIDGen(1)
	inputs := map[string]*engine.Dataset{
		"users":  engine.NewDataset("users", users, 1, gen),
		"tweets": engine.NewDataset("tweets", tweets, 1, gen),
	}
	res, run, err := provenance.Capture(p, inputs, engine.Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := backtrace.NewTree()
	tr.EnsureContributing(path.MustParse("uname"))
	tr.EnsureContributing(path.MustParse("txt"))
	b := backtrace.NewStructure()
	b.Add(res.Output.Rows()[0].ID, tr)
	traced, err := backtrace.Trace(run, p.Sink().ID(), b)
	if err != nil {
		t.Fatal(err)
	}
	uside := traced.Structure(l.ID())
	tside := traced.Structure(r.ID())
	if uside.Len() != 1 || tside.Len() != 1 {
		t.Fatalf("join sides = %d, %d, want 1, 1", uside.Len(), tside.Len())
	}
	ut := uside.Items[0].Tree
	if len(ut.Find(path.MustParse("uname"))) != 1 || len(ut.Find(path.MustParse("txt"))) != 0 {
		t.Errorf("user side pruning wrong:\n%s", ut)
	}
	key := ut.Find(path.MustParse("uid"))
	if len(key) != 1 || key[0].Contributing || !containsInt(key[0].Access, 3) {
		t.Errorf("join key uid should be influencing with access mark:\n%s", ut)
	}
	tt := tside.Items[0].Tree
	if len(tt.Find(path.MustParse("txt"))) != 1 || len(tt.Find(path.MustParse("uname"))) != 0 {
		t.Errorf("tweet side pruning wrong:\n%s", tt)
	}
}

// TestOptimizedPlanTracesSameInputs: optimizing the running example must not
// change which input items the Fig. 4 question traces to.
func TestOptimizedPlanTracesSameInputs(t *testing.T) {
	res, run := runExample(t, 2)
	b := buildExampleQuery(t, res)
	traced, err := backtrace.Trace(run, 9, b)
	if err != nil {
		t.Fatal(err)
	}
	origTexts := tracedTexts(t, traced, res)

	opt, _, err := engine.Optimize(workload.ExamplePipeline())
	if err != nil {
		t.Fatal(err)
	}
	optRes, optRun, err := provenance.Capture(opt, workload.ExampleInput(2), engine.Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	ob := buildExampleQuery(t, optRes)
	optTraced, err := backtrace.Trace(optRun, opt.Sink().ID(), ob)
	if err != nil {
		t.Fatal(err)
	}
	optTexts := tracedTexts(t, optTraced, optRes)
	if len(origTexts) != len(optTexts) {
		t.Fatalf("traced counts differ: %v vs %v", origTexts, optTexts)
	}
	for i := range origTexts {
		if origTexts[i] != optTexts[i] {
			t.Errorf("traced item %d differs: %q vs %q", i, origTexts[i], optTexts[i])
		}
	}
}

// tracedTexts resolves every traced item to its text attribute, sorted.
func tracedTexts(t *testing.T, traced *backtrace.Result, res *engine.Result) []string {
	t.Helper()
	var out []string
	for oid, s := range traced.BySource {
		src := res.Sources[oid]
		for _, it := range s.Items {
			out = append(out, sourceRowText(t, src, it.ID))
		}
	}
	sort.Strings(out)
	return out
}
