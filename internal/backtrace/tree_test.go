package backtrace

import (
	"strings"
	"testing"

	"pebble/internal/path"
)

func mp(s string) path.Path { return path.MustParse(s) }

func TestEnsureAndFind(t *testing.T) {
	tr := NewTree()
	n := tr.EnsureContributing(mp("user.id_str"))
	if n.Name != "id_str" || !n.Contributing {
		t.Fatalf("EnsureContributing leaf = %+v", n)
	}
	if u := tr.Root.child("user"); u == nil || !u.Contributing {
		t.Fatal("intermediate node missing or not contributing")
	}
	// Position expansion: tweets[2].text -> tweets / #2 / text.
	tr.EnsureContributing(mp("tweets[2].text"))
	tw := tr.Root.child("user")
	_ = tw
	found := tr.Find(mp("tweets[2].text"))
	if len(found) != 1 || found[0].Name != "text" {
		t.Fatalf("Find(tweets[2].text) = %v", found)
	}
	// [pos] matches all position children.
	tr.EnsureContributing(mp("tweets[3].text"))
	if got := len(tr.Find(mp("tweets[pos].text"))); got != 2 {
		t.Errorf("Find with [pos] matched %d nodes, want 2", got)
	}
	if got := len(tr.Find(mp("tweets[9].text"))); got != 0 {
		t.Errorf("Find with absent position matched %d nodes", got)
	}
	if tr.Find(mp("nosuch")) != nil {
		t.Error("Find of absent attribute should be nil")
	}
	// Ensure does not downgrade existing contributing flags.
	tr2 := NewTree()
	tr2.EnsureContributing(mp("a.b"))
	tr2.Ensure(mp("a.c"), false)
	if !tr2.Root.child("a").Contributing {
		t.Error("Ensure downgraded existing node")
	}
	if tr2.Find(mp("a.c"))[0].Contributing {
		t.Error("Ensure created node should have the given flag")
	}
}

func TestAccessPath(t *testing.T) {
	tr := NewTree()
	tr.EnsureContributing(mp("user.id_str"))
	// Case 1: all nodes exist — mark every node along the path.
	tr.AccessPath(mp("user.id_str"), 9)
	u := tr.Root.child("user")
	if len(u.Access) != 1 || u.Access[0] != 9 {
		t.Errorf("user access = %v", u.Access)
	}
	if got := tr.Find(mp("user.id_str"))[0].Access; len(got) != 1 || got[0] != 9 {
		t.Errorf("id_str access = %v", got)
	}
	// Case 2: nodes missing — created with c = false.
	tr.AccessPath(mp("user.name"), 9)
	name := tr.Find(mp("user.name"))
	if len(name) != 1 || name[0].Contributing || name[0].Access[0] != 9 {
		t.Errorf("influencing node wrong: %+v", name)
	}
	// Access through [pos] marks all existing positions.
	tr.EnsureContributing(mp("tweets[1].text"))
	tr.EnsureContributing(mp("tweets[2].text"))
	tr.AccessPath(mp("tweets[pos].text"), 5)
	for _, n := range tr.Find(mp("tweets[pos].text")) {
		if len(n.Access) != 1 || n.Access[0] != 5 {
			t.Errorf("positioned access mark missing: %+v", n)
		}
	}
	// Duplicate marks are not recorded twice.
	tr.AccessPath(mp("user.id_str"), 9)
	if got := tr.Find(mp("user.id_str"))[0].Access; len(got) != 1 {
		t.Errorf("duplicate access recorded: %v", got)
	}
}

func TestApplyMappingsRename(t *testing.T) {
	tr := NewTree()
	tr.EnsureContributing(mp("id_str"))
	tr.ApplyMappings([]Mapping{{In: mp("user.id_str"), Out: mp("id_str")}}, 3)
	n := tr.Find(mp("user.id_str"))
	if len(n) != 1 {
		t.Fatalf("transform failed: %s", tr)
	}
	if len(n[0].Manip) != 1 || n[0].Manip[0] != 3 {
		t.Errorf("manip mark = %v", n[0].Manip)
	}
	if !tr.Root.child("user").Contributing {
		t.Error("created ancestor should inherit contributing")
	}
	if tr.Root.child("id_str") != nil {
		t.Error("old node still present")
	}
}

func TestApplyMappingsIdentityLeavesNoMark(t *testing.T) {
	tr := NewTree()
	tr.EnsureContributing(mp("text"))
	tr.ApplyMappings([]Mapping{{In: mp("text"), Out: mp("text")}}, 3)
	n := tr.Find(mp("text"))[0]
	if len(n.Manip) != 0 {
		t.Errorf("identity mapping must not mark manipulation: %v", n.Manip)
	}
}

func TestApplyMappingsSwapIsSimultaneous(t *testing.T) {
	tr := NewTree()
	tr.EnsureContributing(mp("a"))
	tr.EnsureContributing(mp("b"))
	tr.Find(mp("a"))[0].MarkAccess(1)
	tr.Find(mp("b"))[0].MarkAccess(2)
	tr.ApplyMappings([]Mapping{
		{In: mp("b"), Out: mp("a")},
		{In: mp("a"), Out: mp("b")},
	}, 7)
	// a's annotations must now be under b and vice versa.
	if got := tr.Find(mp("b"))[0].Access; len(got) != 1 || got[0] != 1 {
		t.Errorf("swap lost a's marks: %v", got)
	}
	if got := tr.Find(mp("a"))[0].Access; len(got) != 1 || got[0] != 2 {
		t.Errorf("swap lost b's marks: %v", got)
	}
}

func TestApplyMappingsFoldsEmptyShells(t *testing.T) {
	// A struct whose fields all map back must disappear, folding its marks
	// into the moved children.
	tr := NewTree()
	tr.EnsureContributing(mp("user.id_str"))
	tr.EnsureContributing(mp("user.name"))
	tr.Root.child("user").MarkAccess(9)
	tr.ApplyMappings([]Mapping{
		{In: mp("id_str"), Out: mp("user.id_str")},
		{In: mp("name"), Out: mp("user.name")},
	}, 8)
	if tr.Root.child("user") != nil {
		t.Fatalf("empty shell survived:\n%s", tr)
	}
	for _, attr := range []string{"id_str", "name"} {
		n := tr.Find(mp(attr))
		if len(n) != 1 {
			t.Fatalf("moved node %s missing", attr)
		}
		if !containsInt(n[0].Access, 9) {
			t.Errorf("%s lost folded shell mark: %v", attr, n[0].Access)
		}
		if !containsInt(n[0].Manip, 8) {
			t.Errorf("%s missing manip mark: %v", attr, n[0].Manip)
		}
	}
}

func TestApplyMappingsWithPlaceholderTarget(t *testing.T) {
	// Flatten reversal: m_user.id_str becomes user_mentions[pos].id_str with
	// an unresolved placeholder, later substituted by position.
	tr := NewTree()
	tr.EnsureContributing(mp("m_user.id_str"))
	tr.ApplyMappings([]Mapping{{In: mp("user_mentions[pos]"), Out: mp("m_user")}}, 5)
	if got := len(tr.Find(mp("user_mentions[pos].id_str"))); got != 1 {
		t.Fatalf("placeholder transform failed:\n%s", tr)
	}
	tr.SubstitutePlaceholder(mp("user_mentions[pos]"), 2)
	if got := len(tr.Find(mp("user_mentions[2].id_str"))); got != 1 {
		t.Fatalf("placeholder substitution failed:\n%s", tr)
	}
}

func TestSubstituteMergesWithExistingPosition(t *testing.T) {
	tr := NewTree()
	tr.EnsureContributing(mp("ms[2].a"))
	tr.Ensure(mp("ms[pos].b"), false)
	tr.SubstitutePlaceholder(mp("ms[pos]"), 2)
	if got := len(tr.Find(mp("ms[2]"))); got != 1 {
		t.Fatalf("positions not merged:\n%s", tr)
	}
	if len(tr.Find(mp("ms[2].a"))) != 1 || len(tr.Find(mp("ms[2].b"))) != 1 {
		t.Errorf("merged position lost children:\n%s", tr)
	}
}

func TestRemoveAtAndPrune(t *testing.T) {
	tr := NewTree()
	tr.EnsureContributing(mp("tweets[2].text"))
	tr.EnsureContributing(mp("tweets[3].text"))
	tr.EnsureContributing(mp("user.id_str"))
	tr.RemoveAt(mp("tweets"))
	if tr.Root.child("tweets") != nil {
		t.Error("RemoveAt left the node")
	}
	if len(tr.Find(mp("user.id_str"))) != 1 {
		t.Error("RemoveAt removed unrelated nodes")
	}
}

func TestMergeTrees(t *testing.T) {
	a := NewTree()
	a.EnsureContributing(mp("x.y"))
	a.Find(mp("x.y"))[0].MarkManip(1)
	b := NewTree()
	b.Ensure(mp("x.z"), false)
	b.Find(mp("x.z"))[0].MarkAccess(2)
	a.Merge(b)
	if len(a.Find(mp("x.y"))) != 1 || len(a.Find(mp("x.z"))) != 1 {
		t.Fatalf("merge lost nodes:\n%s", a)
	}
	if !a.Root.child("x").Contributing {
		t.Error("merge must not downgrade contributing")
	}
	// b unchanged by the merge.
	if len(b.Find(mp("x.y"))) != 0 {
		t.Error("merge mutated the source tree")
	}
}

func TestPruneToSchema(t *testing.T) {
	tr := NewTree()
	tr.EnsureContributing(mp("a.x"))
	tr.EnsureContributing(mp("b"))
	tr.EnsureContributing(mp("c"))
	tr.PruneToSchema([]string{"a", "c"})
	if tr.Root.child("b") != nil || tr.Root.child("a") == nil || tr.Root.child("c") == nil {
		t.Errorf("prune wrong:\n%s", tr)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	tr := NewTree()
	tr.EnsureContributing(mp("a.b"))
	cl := tr.Clone()
	cl.EnsureContributing(mp("a.c"))
	cl.Find(mp("a.b"))[0].MarkAccess(1)
	if len(tr.Find(mp("a.c"))) != 0 {
		t.Error("clone shares children")
	}
	if len(tr.Find(mp("a.b"))[0].Access) != 0 {
		t.Error("clone shares mark slices")
	}
}

func TestTreeStringRendering(t *testing.T) {
	tr := NewTree()
	tr.EnsureContributing(mp("user.id_str"))
	tr.AccessPath(mp("retweet_cnt"), 2)
	s := tr.String()
	for _, want := range []string{"user (contributing)", "id_str (contributing)", "retweet_cnt (influencing) accessed:[2]"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
	tr.Opaque = true
	if !strings.Contains(tr.String(), "opaque") {
		t.Error("opaque flag not rendered")
	}
}

func TestPathString(t *testing.T) {
	tr := NewTree()
	n := tr.EnsureContributing(mp("tweets[2].text"))
	if got := n.PathString(); got != "tweets[2].text" {
		t.Errorf("PathString = %q", got)
	}
	leaves := tr.Leaves()
	if _, ok := leaves["tweets[2].text"]; !ok || len(leaves) != 1 {
		t.Errorf("Leaves = %v", leaves)
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
