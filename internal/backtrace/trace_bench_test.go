package backtrace_test

import (
	"sort"
	"testing"

	"pebble/internal/backtrace"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/provenance"
)

// aggRun captures a run whose aggregation operator carries a large
// association bag: rows groups folded into keys lists.
func aggRun(b *testing.B, rows, keys int) *provenance.Run {
	b.Helper()
	var vals []nested.Value
	for i := 0; i < rows; i++ {
		vals = append(vals, nested.Item(
			nested.F("k", nested.Int(int64(i%keys))),
			nested.F("v", nested.Int(int64(i))),
		))
	}
	p := engine.NewPipeline()
	src := p.Source("in")
	p.Aggregate(src,
		[]engine.GroupKey{engine.Key("k")},
		[]engine.AggSpec{engine.Agg(engine.AggCollectList, "v", "vs")},
	)
	gen := engine.NewIDGen(1)
	inputs := map[string]*engine.Dataset{"in": engine.NewDataset("in", vals, 4, gen)}
	_, run, err := provenance.Capture(p, inputs, engine.Options{Partitions: 4})
	if err != nil {
		b.Fatal(err)
	}
	return run
}

// BenchmarkTracerIndexBuild pins the counted-first flat index build against
// the nested-map build it replaced (kept below as legacyAggIndex): the flat
// build allocates three exact-size columns where the map grew per-key
// buckets and rehashed along the way.
func BenchmarkTracerIndexBuild(b *testing.B) {
	run := aggRun(b, 40000, 500)
	var agg *provenance.Operator
	for _, op := range run.Operators() {
		if op.AssocKind() == provenance.AssocAgg {
			agg = op
		}
	}
	if agg == nil {
		b.Fatal("no aggregation operator captured")
	}

	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			backtrace.NewTracer(run).BuildIndexes()
		}
	})
	b.Run("legacy-map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			legacyAggIndex(agg.AggAssocs())
		}
	})
}

// legacyAggIndex is the pre-flattening index shape: a per-output map of
// grown value slices plus a sorted key slice for deterministic iteration.
func legacyAggIndex(assocs []provenance.AggAssoc) (map[int64][]int64, []int64) {
	m := make(map[int64][]int64)
	for _, a := range assocs {
		m[a.Out] = append(m[a.Out], a.Ins...)
	}
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return m, keys
}
