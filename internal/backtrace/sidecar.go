package backtrace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"pebble/internal/obs"
	"pebble/internal/provenance"
)

// Index sidecar: the tracer's per-operator association indexes serialized
// next to a persisted run, so a reloaded session skips index construction
// entirely — query latency decoupled from capture volume. The sidecar is
// validated against the run it was built from via the run's content hash
// (provenance.HashStream over the encoded stream) plus its own payload
// checksum; a stale or corrupt sidecar is rejected with an error and the
// caller falls back to the ordinary lazy rebuild — never wrong answers.
//
// Wire format (see DESIGN.md §9 for the byte-by-byte walk):
//
//	magic "PBLI" | u16 version=1 | u64 runHash | u64 payloadHash
//	payload:
//	  uvarint #ops
//	  per op (run order): uvarint oid | u8 kind
//	    kind 2 (unary), 5 (agg):
//	      uvarint #keys | #keys×Δ(key) | uvarint #vals |
//	      #keys×uvarint runLen | #vals×Δ(val)
//	    kind 3 (binary):
//	      uvarint #keys | #keys×Δ(key) | uvarint #vals |
//	      #keys×uvarint runLen | #vals×Δ(left) | #vals×Δ(right)
//	    kind 4 (flatten):
//	      uvarint #keys | #keys×Δ(key) | #keys×Δ(in) | #keys×uvarint pos
//	    kind 0 (none), 1 (source): no columns
//
// Δ columns are zigzag(v − prev) uvarints with prev starting at 0 per
// column. Key columns are sorted, so their deltas are non-negative and tiny;
// the whole sidecar is a pure function of the run and byte-identical across
// worker counts.
const (
	sidecarMagic   = "PBLI"
	sidecarVersion = 1
	// sidecarHeaderLen is magic + version + runHash + payloadHash.
	sidecarHeaderLen = 4 + 2 + 8 + 8
	// maxSidecarCount caps declared element counts before any allocation
	// commits to them, mirroring the codec's maxV2Count.
	maxSidecarCount = 1 << 32
)

// Sentinel errors callers can test with errors.Is to distinguish "this
// sidecar belongs to a different run" from "this sidecar is damaged"; both
// mean: rebuild the indexes from the run.
var (
	// ErrSidecarStale marks a sidecar whose recorded run hash does not match
	// the loaded run.
	ErrSidecarStale = errors.New("backtrace: index sidecar does not match run")
	// ErrSidecarCorrupt marks a structurally damaged sidecar.
	ErrSidecarCorrupt = errors.New("backtrace: index sidecar corrupt")
)

// WriteIndexes builds every operator's association index and serializes the
// set as a sidecar. The run must carry a content hash (i.e. it was loaded
// from bytes via provenance.ReadRunLazy), since the hash is what pairs the
// sidecar with its run at load time.
func (t *Tracer) WriteIndexes(w io.Writer) (int64, error) {
	runHash, ok := t.run.ContentHash()
	if !ok {
		return 0, fmt.Errorf("backtrace: run has no content hash (reload it from bytes with provenance.ReadRunLazy before persisting indexes)")
	}
	ops := t.run.Operators()
	payload := binary.AppendUvarint(nil, uint64(len(ops)))
	for _, op := range ops {
		ix := t.indexFor(op)
		payload = binary.AppendUvarint(payload, uint64(op.OID))
		kind := op.AssocKind()
		payload = append(payload, byte(kind))
		switch kind {
		case provenance.AssocUnary:
			payload = appendPairIdx(payload, &ix.unary)
		case provenance.AssocAgg:
			payload = appendPairIdx(payload, &ix.agg)
		case provenance.AssocBinary:
			payload = binary.AppendUvarint(payload, uint64(len(ix.binary.keys)))
			payload = appendDeltaCol(payload, ix.binary.keys)
			payload = binary.AppendUvarint(payload, uint64(len(ix.binary.lefts)))
			payload = appendRunLens(payload, ix.binary.offs)
			payload = appendDeltaCol(payload, ix.binary.lefts)
			payload = appendDeltaCol(payload, ix.binary.rights)
		case provenance.AssocFlatten:
			payload = binary.AppendUvarint(payload, uint64(len(ix.flatten.keys)))
			payload = appendDeltaCol(payload, ix.flatten.keys)
			payload = appendDeltaCol(payload, ix.flatten.ins)
			for _, p := range ix.flatten.poss {
				payload = binary.AppendUvarint(payload, uint64(p))
			}
		}
	}
	buf := make([]byte, 0, sidecarHeaderLen+len(payload))
	buf = append(buf, sidecarMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, sidecarVersion)
	buf = binary.LittleEndian.AppendUint64(buf, runHash)
	buf = binary.LittleEndian.AppendUint64(buf, provenance.HashStream(payload))
	buf = append(buf, payload...)
	n, err := w.Write(buf)
	if err != nil {
		return int64(n), fmt.Errorf("backtrace: writing index sidecar: %w", err)
	}
	return int64(n), nil
}

// appendPairIdx serializes a pairIdx: keys, value count, per-key run
// lengths, values.
func appendPairIdx(buf []byte, x *pairIdx) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(x.keys)))
	buf = appendDeltaCol(buf, x.keys)
	buf = binary.AppendUvarint(buf, uint64(len(x.vals)))
	buf = appendRunLens(buf, x.offs)
	return appendDeltaCol(buf, x.vals)
}

// appendDeltaCol appends a zigzag-delta varint column.
func appendDeltaCol(buf []byte, col []int64) []byte {
	prev := int64(0)
	for _, v := range col {
		d := v - prev
		prev = v
		buf = binary.AppendUvarint(buf, uint64(d<<1)^uint64(d>>63))
	}
	return buf
}

// appendRunLens appends the per-key run lengths derived from an offset
// column.
func appendRunLens(buf []byte, offs []int32) []byte {
	for i := 0; i+1 < len(offs); i++ {
		buf = binary.AppendUvarint(buf, uint64(offs[i+1]-offs[i]))
	}
	return buf
}

// LoadIndexes validates a sidecar written by WriteIndexes and installs its
// per-operator column regions into the tracer, so queries skip index
// construction. Validation is all-or-nothing and happens before anything is
// installed: magic, version, run hash, payload checksum, and a structural
// skip-scan pinning each operator's identity, association kind, and column
// region boundaries. The columns themselves decode on first index use (the
// sidecar analogue of the run's lazy association decode); a region that then
// proves internally inconsistent — unreachable for a sidecar WriteIndexes
// produced, since the checksum covers every payload byte — is discarded and
// the index is rebuilt from the operator, so a sidecar can accelerate
// answers but never change them. On error the tracer is left unchanged and
// the caller should fall back to the ordinary rebuild. Operators whose
// index was already built keep the built one. The tracer retains data;
// callers must not mutate it afterwards.
func (t *Tracer) LoadIndexes(data []byte) error {
	defer t.rec.StartSpan(obs.SpanIndexBuild)()
	runHash, ok := t.run.ContentHash()
	if !ok {
		return fmt.Errorf("backtrace: run has no content hash to validate the sidecar against: %w", ErrSidecarStale)
	}
	if len(data) < sidecarHeaderLen {
		return fmt.Errorf("backtrace: sidecar truncated at %d bytes: %w", len(data), ErrSidecarCorrupt)
	}
	if string(data[:4]) != sidecarMagic {
		return fmt.Errorf("backtrace: bad sidecar magic %q: %w", data[:4], ErrSidecarCorrupt)
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != sidecarVersion {
		return fmt.Errorf("backtrace: unsupported sidecar version %d: %w", v, ErrSidecarCorrupt)
	}
	if got := binary.LittleEndian.Uint64(data[6:14]); got != runHash {
		return fmt.Errorf("backtrace: sidecar was built for run %016x, this run is %016x: %w", got, runHash, ErrSidecarStale)
	}
	payload := data[sidecarHeaderLen:]
	if got := binary.LittleEndian.Uint64(data[14:22]); got != provenance.HashStream(payload) {
		return fmt.Errorf("backtrace: sidecar payload checksum mismatch: %w", ErrSidecarCorrupt)
	}
	ops := t.run.Operators()
	d := &sideReader{data: payload}
	nOps := d.count()
	if d.err == nil && nOps != len(ops) {
		return fmt.Errorf("backtrace: sidecar covers %d operators, run has %d: %w", nOps, len(ops), ErrSidecarStale)
	}
	// Skip-scan: pin operator identities and column region boundaries without
	// decoding the columns.
	regions := make([][]byte, len(ops))
	for i, op := range ops {
		oid := int(d.uvarint())
		kind := provenance.AssocKind(d.byte())
		if d.err != nil {
			break
		}
		if oid != op.OID || kind != op.AssocKind() {
			return fmt.Errorf("backtrace: sidecar operator %d kind %d does not match run operator %d kind %d: %w",
				oid, kind, op.OID, op.AssocKind(), ErrSidecarStale)
		}
		start := d.pos
		switch kind {
		case provenance.AssocUnary, provenance.AssocAgg:
			nKeys := d.count()
			d.skip(nKeys) // Δkeys
			nVals := d.count()
			d.skip(nKeys) // run lengths
			d.skip(nVals) // Δvals
		case provenance.AssocBinary:
			nKeys := d.count()
			d.skip(nKeys) // Δkeys
			nVals := d.count()
			d.skip(nKeys)     // run lengths
			d.skip(2 * nVals) // Δlefts, Δrights
		case provenance.AssocFlatten:
			nKeys := d.count()
			d.skip(3 * nKeys) // Δkeys, Δins, positions
		}
		if d.err != nil {
			break
		}
		regions[i] = payload[start:d.pos:d.pos]
	}
	if d.err != nil {
		return fmt.Errorf("backtrace: parsing sidecar: %v: %w", d.err, ErrSidecarCorrupt)
	}
	if d.pos != len(payload) {
		return fmt.Errorf("backtrace: %d trailing bytes after sidecar payload: %w", len(payload)-d.pos, ErrSidecarCorrupt)
	}
	for i, op := range ops {
		t.idx.LoadOrStore(op.OID, &opIndex{side: regions[i]})
	}
	return nil
}

// decodeSide materialises an index from the sidecar region LoadIndexes
// recorded, returning false when the region is internally inconsistent
// (non-ascending keys, run lengths that do not sum to the value count). The
// payload checksum makes that unreachable for a genuine sidecar, but a
// fabricated checksum-colliding one must still never yield wrong answers —
// the caller falls back to building from the operator.
func (ix *opIndex) decodeSide(kind provenance.AssocKind) bool {
	d := &sideReader{data: ix.side}
	switch kind {
	case provenance.AssocUnary:
		ix.unary = d.readPairIdx()
	case provenance.AssocAgg:
		ix.agg = d.readPairIdx()
	case provenance.AssocBinary:
		nKeys := d.count()
		keys := d.deltaCol(nKeys)
		nVals := d.count()
		offs := d.runOffs(nKeys, nVals)
		lefts := d.deltaCol(nVals)
		rights := d.deltaCol(nVals)
		d.checkSorted(keys)
		ix.binary = binIdx{keys: keys, offs: offs, lefts: lefts, rights: rights}
	case provenance.AssocFlatten:
		nKeys := d.count()
		keys := d.deltaCol(nKeys)
		ins := d.deltaCol(nKeys)
		poss := make([]int64, 0, capCount(nKeys))
		for i := 0; i < nKeys && d.err == nil; i++ {
			poss = append(poss, int64(d.uvarint()))
		}
		d.checkSorted(keys)
		ix.flatten = flatIdx{keys: keys, ins: ins, poss: poss}
	}
	if d.err != nil || d.pos != len(ix.side) {
		ix.unary, ix.binary, ix.flatten, ix.agg = pairIdx{}, binIdx{}, flatIdx{}, pairIdx{}
		return false
	}
	return true
}

// readPairIdx parses one pairIdx and validates its structure.
func (d *sideReader) readPairIdx() pairIdx {
	nKeys := d.count()
	keys := d.deltaCol(nKeys)
	nVals := d.count()
	offs := d.runOffs(nKeys, nVals)
	vals := d.deltaCol(nVals)
	d.checkSorted(keys)
	return pairIdx{keys: keys, offs: offs, vals: vals}
}

// sideReader reads varint primitives from the sidecar payload, remembering
// the first error.
type sideReader struct {
	data []byte
	pos  int
	err  error
}

func (d *sideReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	// Fast path: most deltas are a single byte.
	if d.pos < len(d.data) {
		if b := d.data[d.pos]; b < 0x80 {
			d.pos++
			return uint64(b)
		}
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.err = fmt.Errorf("truncated or overlong varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

// skip advances past n varints without decoding their values, for the
// structural skip-scan in LoadIndexes.
func (d *sideReader) skip(n int) {
	for i := 0; i < n && d.err == nil; i++ {
		for {
			if d.pos >= len(d.data) {
				d.err = io.ErrUnexpectedEOF
				return
			}
			b := d.data[d.pos]
			d.pos++
			if b < 0x80 {
				break
			}
		}
	}
}

func (d *sideReader) byte() uint8 {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.data) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *sideReader) count() int {
	v := d.uvarint()
	if d.err == nil && v > maxSidecarCount {
		d.err = fmt.Errorf("count %d exceeds limit", v)
		return 0
	}
	return int(v)
}

// deltaCol reads n zigzag-delta varints with bounded-growth allocation, so a
// lying count runs into EOF instead of forcing a huge allocation.
func (d *sideReader) deltaCol(n int) []int64 {
	out := make([]int64, 0, capCount(n))
	var prev int64
	for i := 0; i < n && d.err == nil; i++ {
		u := d.uvarint()
		prev += int64(u>>1) ^ -int64(u&1)
		out = append(out, prev)
	}
	return out
}

// runOffs reads nKeys run lengths and folds them into the offset column,
// requiring the lengths to sum exactly to nVals.
func (d *sideReader) runOffs(nKeys, nVals int) []int32 {
	offs := make([]int32, 0, capCount(nKeys)+1)
	offs = append(offs, 0)
	total := 0
	for i := 0; i < nKeys && d.err == nil; i++ {
		l := d.uvarint()
		if l > maxSidecarCount || total+int(l) < total {
			d.err = fmt.Errorf("run length %d exceeds limit", l)
			return offs
		}
		total += int(l)
		offs = append(offs, int32(total))
	}
	if d.err == nil && total != nVals {
		d.err = fmt.Errorf("run lengths sum to %d, want %d values", total, nVals)
	}
	return offs
}

// checkSorted rejects key columns that are not strictly ascending — lookups
// binary-search them.
func (d *sideReader) checkSorted(keys []int64) {
	if d.err != nil {
		return
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			d.err = fmt.Errorf("key column not strictly ascending at %d", i)
			return
		}
	}
}

// capCount bounds initial slice capacities against lying counts.
func capCount(n int) int {
	const max = 1 << 16
	if n < 0 {
		return 0
	}
	if n > max {
		return max
	}
	return n
}
