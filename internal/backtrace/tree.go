// Package backtrace implements the provenance query side of the paper: the
// backtracing structure and backtracing trees of Sec. 6.2 and the
// backtracing algorithms 1–4 of Sec. 6.3, which step a set of queried result
// items backward through the captured lightweight operator provenance until
// the source datasets are reached.
package backtrace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pebble/internal/path"
)

// Node is one node of a backtracing tree (Def. 6.3): it references an
// attribute (or a position within a nested collection), the operators that
// accessed and manipulated it, and whether it contributes to the queried
// items (c = true) or merely influences them (c = false).
type Node struct {
	// Name is the attribute name; empty for position nodes.
	Name string
	// Pos is 0 for attribute nodes, a 1-based position for position nodes,
	// or path.Pos for the unresolved [pos] placeholder.
	Pos int
	// Parent is nil for the root.
	Parent *Node
	// Children, in insertion order.
	Children []*Node
	// Access lists operators that accessed the attribute (A of Def. 6.3).
	Access []int
	// Manip lists operators that structurally manipulated it (M of Def. 6.3).
	Manip []int
	// Contributing is the c flag: true when the attribute is needed to
	// reproduce the queried items, false when it only influences them.
	Contributing bool
}

// Tree is a backtracing tree T = ⟨root, N⟩. The root stands for the
// top-level data item itself.
type Tree struct {
	Root *Node
	// Opaque is set once the trace crosses a map operator: the opaque λ
	// hides structural information, so attribute-level precision below the
	// top-level item is no longer guaranteed (Sec. 6.3: map "marks all nodes
	// in the input schema as manipulated by default").
	Opaque bool
}

// NewTree returns a tree with only a root node.
func NewTree() *Tree {
	return &Tree{Root: &Node{}}
}

// key identifies a node among its siblings. It is the rendered form used by
// PathString and the tree printer; the tree-walking paths compare nkey pairs
// instead so that lookups never format strings.
func (n *Node) key() string {
	if n.Name != "" {
		return n.Name
	}
	if n.Pos == path.Pos {
		return "#pos"
	}
	return fmt.Sprintf("#%d", n.Pos)
}

// nkey is the structural identity of a node among its siblings: an attribute
// name, or — when the name is empty — a 1-based position (path.Pos for the
// unresolved [pos] placeholder).
type nkey struct {
	name string
	pos  int
}

// isPos reports whether the key identifies a position node.
func (k nkey) isPos() bool { return k.name == "" }

// newNode returns a fresh unattached node with this identity.
func (k nkey) newNode() *Node { return &Node{Name: k.name, Pos: k.pos} }

// keyToNKey parses the rendered key form back into its structural identity.
func keyToNKey(key string) nkey {
	if strings.HasPrefix(key, "#") {
		if key == "#pos" {
			return nkey{pos: path.Pos}
		}
		pos, _ := strconv.Atoi(key[1:])
		return nkey{pos: pos}
	}
	return nkey{name: key}
}

// child returns the child with the given rendered key.
func (n *Node) child(key string) *Node {
	return n.childK(keyToNKey(key))
}

// childK returns the child with the given structural identity.
func (n *Node) childK(k nkey) *Node {
	for _, c := range n.Children {
		if c.Name == k.name && (k.name != "" || c.Pos == k.pos) {
			return c
		}
	}
	return nil
}

// posChildren returns all position-node children.
func (n *Node) posChildren() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Name == "" {
			out = append(out, c)
		}
	}
	return out
}

func (n *Node) addChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

func (n *Node) removeChild(c *Node) {
	for i, cur := range n.Children {
		if cur == c {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			c.Parent = nil
			return
		}
	}
}

// hasMarks reports whether the node carries any access or manipulation
// operator annotations.
func (n *Node) hasMarks() bool { return len(n.Access) > 0 || len(n.Manip) > 0 }

func addMark(marks []int, oid int) []int {
	for _, m := range marks {
		if m == oid {
			return marks
		}
	}
	return append(marks, oid)
}

// MarkAccess records that oid accessed the node.
func (n *Node) MarkAccess(oid int) { n.Access = addMark(n.Access, oid) }

// MarkManip records that oid structurally manipulated the node.
func (n *Node) MarkManip(oid int) { n.Manip = addMark(n.Manip, oid) }

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	return &Tree{Root: t.Root.clone(nil), Opaque: t.Opaque}
}

func (n *Node) clone(parent *Node) *Node {
	c := &Node{
		Name:         n.Name,
		Pos:          n.Pos,
		Parent:       parent,
		Access:       append([]int(nil), n.Access...),
		Manip:        append([]int(nil), n.Manip...),
		Contributing: n.Contributing,
	}
	for _, ch := range n.Children {
		c.Children = append(c.Children, ch.clone(c))
	}
	return c
}

// Walk visits every node in depth-first pre-order, starting at the root.
func (t *Tree) Walk(f func(*Node)) { t.Root.walk(f) }

func (n *Node) walk(f func(*Node)) {
	f(n)
	for _, c := range n.Children {
		c.walk(f)
	}
}

// IsEmpty reports whether the tree has no nodes besides the root.
func (t *Tree) IsEmpty() bool { return len(t.Root.Children) == 0 }

// pathNKeys expands a path into per-level structural node keys: a step a[2]
// expands into the attribute key "a" followed by the position key 2.
func pathNKeys(p path.Path) []nkey {
	keys := make([]nkey, 0, len(p))
	for _, s := range p {
		if s.Attr != "" {
			keys = append(keys, nkey{name: s.Attr})
		}
		if s.Index != path.NoIndex {
			keys = append(keys, nkey{pos: s.Index})
		}
	}
	return keys
}

// Ensure creates (or finds) the node at path p. Newly created nodes get the
// given contributing flag; existing nodes are left unchanged.
func (t *Tree) Ensure(p path.Path, contributing bool) *Node {
	cur := t.Root
	for _, s := range p {
		if s.Attr != "" {
			cur = cur.ensureChild(nkey{name: s.Attr}, contributing)
		}
		if s.Index != path.NoIndex {
			cur = cur.ensureChild(nkey{pos: s.Index}, contributing)
		}
	}
	return cur
}

// ensureChild finds or creates the child with identity k; a created node
// gets the given contributing flag.
func (n *Node) ensureChild(k nkey, contributing bool) *Node {
	next := n.childK(k)
	if next == nil {
		next = k.newNode()
		next.Contributing = contributing
		n.addChild(next)
	}
	return next
}

// EnsureContributing creates the node at path p and marks every node along
// the path as contributing (used when building the query tree).
func (t *Tree) EnsureContributing(p path.Path) *Node {
	cur := t.Root
	for _, s := range p {
		if s.Attr != "" {
			cur = cur.ensureChild(nkey{name: s.Attr}, true)
			cur.Contributing = true
		}
		if s.Index != path.NoIndex {
			cur = cur.ensureChild(nkey{pos: s.Index}, true)
			cur.Contributing = true
		}
	}
	return cur
}

// Find returns the nodes matched by path p. A [pos] step matches every
// position child (including an unresolved placeholder); a concrete position
// matches only that position node. An attribute step without index matches
// the attribute node itself.
func (t *Tree) Find(p path.Path) []*Node {
	nodes := []*Node{t.Root}
	for _, k := range pathNKeys(p) {
		var next []*Node
		for _, n := range nodes {
			if k.isPos() && k.pos == path.Pos {
				next = append(next, n.posChildren()...)
				continue
			}
			if c := n.childK(k); c != nil {
				next = append(next, c)
			}
			// A concrete position also matches an unresolved placeholder.
			if k.isPos() {
				if c := n.childK(nkey{pos: path.Pos}); c != nil {
					next = append(next, c)
				}
			}
		}
		if len(next) == 0 {
			return nil
		}
		nodes = next
	}
	return nodes
}

// AccessPath implements the accessPath method of Sec. 6.2: when the nodes of
// path a exist, the operator id is added to each node's access collection;
// otherwise the missing nodes are created with c = false (they influence the
// queried items but are not needed to reproduce them) and marked likewise.
func (t *Tree) AccessPath(a path.Path, oid int) {
	t.accessWalk(t.Root, pathNKeys(a), oid)
}

func (t *Tree) accessWalk(cur *Node, keys []nkey, oid int) {
	if len(keys) == 0 {
		return
	}
	k := keys[0]
	if k.isPos() && k.pos == path.Pos {
		existing := cur.posChildren()
		if len(existing) == 0 {
			c := k.newNode()
			cur.addChild(c)
			existing = []*Node{c}
		}
		for _, c := range existing {
			c.MarkAccess(oid)
			t.accessWalk(c, keys[1:], oid)
		}
		return
	}
	next := cur.ensureChild(k, false)
	next.MarkAccess(oid)
	t.accessWalk(next, keys[1:], oid)
}

// Mapping is the backtracing view of one manipulation ⟨in, out⟩.
type Mapping struct {
	In  path.Path
	Out path.Path
}

// ApplyMappings implements the manipulatePath method of Sec. 6.2 for a set
// of mappings applied simultaneously: every output path that exists in the
// tree is transformed back to its input path, and the manipulating operator
// is recorded on the transplanted nodes (identity mappings transform nothing
// and leave no mark). Detached structural shells without annotations are
// pruned.
func (t *Tree) ApplyMappings(ms []Mapping, oid int) {
	type move struct {
		node *Node
		in   path.Path
	}
	var moves []move
	for _, m := range ms {
		if m.In.Equal(m.Out) {
			continue // identity: no structural manipulation
		}
		for _, n := range t.Find(m.Out) {
			moves = append(moves, move{node: n, in: m.In})
		}
	}
	// Detach all matched nodes first so that mappings cannot observe each
	// other's results (e.g. swapping renames a→b, b→a).
	byParent := make(map[*Node][]*Node)
	var parentOrder []*Node // iteration order: first-detach wins, not map order
	for _, mv := range moves {
		parent := mv.node.Parent
		if parent == nil {
			continue // root or already detached
		}
		parent.removeChild(mv.node)
		if _, ok := byParent[parent]; !ok {
			parentOrder = append(parentOrder, parent)
		}
		byParent[parent] = append(byParent[parent], mv.node)
	}
	// Structural shells emptied by the transplants (e.g. a struct created by
	// a select whose fields all map back) do not exist in the input schema:
	// fold their annotations into the moved children and prune them.
	for _, parent := range parentOrder {
		movedKids := byParent[parent]
		n := parent
		for n != nil && n != t.Root && len(n.Children) == 0 {
			for _, k := range movedKids {
				for _, a := range n.Access {
					k.MarkAccess(a)
				}
				for _, m := range n.Manip {
					k.MarkManip(m)
				}
			}
			p := n.Parent
			if p == nil {
				break
			}
			p.removeChild(n)
			n = p
		}
	}
	for _, mv := range moves {
		t.attach(mv.node, mv.in, oid)
	}
}

// attach places a detached node at the given input path, renaming it to the
// path's last component and merging with any existing node there.
func (t *Tree) attach(n *Node, in path.Path, oid int) {
	keys := pathNKeys(in)
	if len(keys) == 0 {
		return
	}
	last := keys[len(keys)-1]
	parent := t.Root
	for _, k := range keys[:len(keys)-1] {
		next := parent.childK(k)
		if next == nil {
			next = k.newNode()
			next.Contributing = n.Contributing
			parent.addChild(next)
		} else if n.Contributing {
			next.Contributing = true
		}
		parent = next
	}
	// Rename the node to the destination key.
	n.Name, n.Pos = last.name, last.pos
	n.MarkManip(oid)
	if existing := parent.childK(last); existing != nil {
		existing.mergeFrom(n)
		return
	}
	parent.addChild(n)
}

// mergeFrom merges another node's annotations and children into n.
func (n *Node) mergeFrom(o *Node) {
	for _, oid := range o.Access {
		n.MarkAccess(oid)
	}
	for _, oid := range o.Manip {
		n.MarkManip(oid)
	}
	n.Contributing = n.Contributing || o.Contributing
	for _, oc := range o.Children {
		if existing := n.childK(nkey{name: oc.Name, pos: oc.Pos}); existing != nil {
			existing.mergeFrom(oc)
		} else {
			oc.Parent = nil
			n.addChild(oc)
		}
	}
}

// pruneShells removes n and its now-empty ancestors when they carry no
// children, no annotations, and are not themselves queried (contributing
// empty leaves stay: they are queried values).
func (t *Tree) pruneShells(n *Node) {
	for n != nil && n != t.Root && len(n.Children) == 0 && !n.hasMarks() && !n.Contributing {
		parent := n.Parent
		parent.removeChild(n)
		n = parent
	}
}

// RemoveAt removes every node matched by p (Alg. 4's removeNodes).
func (t *Tree) RemoveAt(p path.Path) {
	for _, n := range t.Find(p) {
		if n.Parent != nil {
			parent := n.Parent
			parent.removeChild(n)
			t.pruneShells(parent)
		}
	}
}

// SubstitutePlaceholder resolves the [pos] placeholder child under the
// attribute at prefix to the concrete position pos, merging with an existing
// node of that position (Alg. 2's merge step for flatten).
func (t *Tree) SubstitutePlaceholder(prefix path.Path, pos int) {
	attr := prefix.Clone()
	if len(attr) > 0 && attr[len(attr)-1].Index != path.NoIndex {
		attr[len(attr)-1].Index = path.NoIndex
	}
	for _, n := range t.Find(attr) {
		ph := n.childK(nkey{pos: path.Pos})
		if ph == nil {
			continue
		}
		n.removeChild(ph)
		ph.Pos = pos
		if existing := n.childK(nkey{pos: ph.Pos}); existing != nil {
			existing.mergeFrom(ph)
		} else {
			n.addChild(ph)
		}
	}
}

// MarkAllManip marks every node (except the root) as manipulated by oid —
// the conservative treatment of the opaque map operator.
func (t *Tree) MarkAllManip(oid int) {
	t.Walk(func(n *Node) {
		if n != t.Root {
			n.MarkManip(oid)
		}
	})
}

// Merge merges another tree into this one.
func (t *Tree) Merge(o *Tree) {
	t.Opaque = t.Opaque || o.Opaque
	t.Root.mergeFrom(o.Root.clone(nil))
}

// PruneToSchema keeps only the top-level children whose attribute name is in
// the given schema — join backtracing removes the other input's attributes.
func (t *Tree) PruneToSchema(schema []string) {
	keep := make(map[string]bool, len(schema))
	for _, a := range schema {
		keep[a] = true
	}
	var kept []*Node
	for _, c := range t.Root.Children {
		if keep[c.Name] {
			kept = append(kept, c)
		} else {
			c.Parent = nil
		}
	}
	t.Root.Children = kept
}

// Leaves returns the paths of all leaf nodes together with the leaves.
func (t *Tree) Leaves() map[string]*Node {
	out := make(map[string]*Node)
	t.Walk(func(n *Node) {
		if len(n.Children) == 0 && n != t.Root {
			out[n.PathString()] = n
		}
	})
	return out
}

// PathString renders the path from the root to the node.
func (n *Node) PathString() string {
	var keys []string
	for cur := n; cur != nil && cur.Parent != nil; cur = cur.Parent {
		k := cur.key()
		if strings.HasPrefix(k, "#") {
			k = "[" + strings.TrimPrefix(k, "#") + "]"
		}
		keys = append(keys, k)
	}
	// Reverse and join; positions attach to the preceding attribute.
	var sb strings.Builder
	for i := len(keys) - 1; i >= 0; i-- {
		k := keys[i]
		if strings.HasPrefix(k, "[") {
			sb.WriteString(k)
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte('.')
		}
		sb.WriteString(k)
	}
	return sb.String()
}

// String renders the tree with one node per line, children indented, with
// contributing/influencing flags and access/manipulation marks — the textual
// form of Fig. 2's trees.
func (t *Tree) String() string {
	var sb strings.Builder
	if t.Opaque {
		sb.WriteString("(opaque: crossed a map operator)\n")
	}
	var render func(n *Node, depth int)
	render = func(n *Node, depth int) {
		if n != t.Root {
			sb.WriteString(strings.Repeat("  ", depth-1))
			label := n.key()
			if strings.HasPrefix(label, "#") {
				label = "[" + strings.TrimPrefix(label, "#") + "]"
			}
			sb.WriteString(label)
			if n.Contributing {
				sb.WriteString(" (contributing)")
			} else {
				sb.WriteString(" (influencing)")
			}
			if len(n.Access) > 0 {
				fmt.Fprintf(&sb, " accessed:%v", sortedInts(n.Access))
			}
			if len(n.Manip) > 0 {
				fmt.Fprintf(&sb, " manipulated:%v", sortedInts(n.Manip))
			}
			sb.WriteByte('\n')
		}
		for _, c := range n.Children {
			render(c, depth+1)
		}
	}
	render(t.Root, 0)
	return sb.String()
}

func sortedInts(in []int) []int {
	out := append([]int(nil), in...)
	sort.Ints(out)
	return out
}

// treeJSON is the serialisable view of a node.
type treeJSON struct {
	Name         string     `json:"name,omitempty"`
	Pos          int        `json:"pos,omitempty"`
	Contributing bool       `json:"contributing"`
	Access       []int      `json:"accessed,omitempty"`
	Manip        []int      `json:"manipulated,omitempty"`
	Children     []treeJSON `json:"children,omitempty"`
}

// MarshalJSON encodes the tree for machine consumption (front-ends,
// notebooks): nodes carry their attribute name or 1-based position, the
// contributing flag, and the accessing/manipulating operator ids.
func (t *Tree) MarshalJSON() ([]byte, error) {
	root := nodeJSON(t.Root)
	out := struct {
		Opaque   bool       `json:"opaque,omitempty"`
		Children []treeJSON `json:"children,omitempty"`
	}{Opaque: t.Opaque, Children: root.Children}
	return json.Marshal(out)
}

func nodeJSON(n *Node) treeJSON {
	out := treeJSON{
		Name:         n.Name,
		Contributing: n.Contributing,
		Access:       sortedInts(n.Access),
		Manip:        sortedInts(n.Manip),
	}
	if n.Pos > 0 {
		out.Pos = n.Pos
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, nodeJSON(c))
	}
	return out
}
