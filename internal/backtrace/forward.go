package backtrace

import (
	"fmt"
	"sort"

	"pebble/internal/engine"
	"pebble/internal/provenance"
)

// ForwardResult maps each terminal operator (usually the pipeline sink) to
// the identifiers of result items affected by the traced input items.
type ForwardResult struct {
	ByOperator map[int][]int64
}

// AffectedIDs returns the affected result identifiers of the given operator.
func (r *ForwardResult) AffectedIDs(oid int) []int64 { return r.ByOperator[oid] }

// TraceForward follows the captured associations forward: given input items
// of a source operator, it computes which items of every downstream operator
// — in particular the pipeline result — are derived from them. This is the
// impact-analysis complement to backtracing: an auditor asks "which query
// results contain customer X's data?" before tracing those results back at
// attribute level. Identifiers are the source operator's output ids (the
// values recorded in its SourceAssoc rows).
func TraceForward(run *provenance.Run, sourceOID int, ids []int64) (*ForwardResult, error) {
	op, ok := run.Op(sourceOID)
	if !ok {
		return nil, fmt.Errorf("backtrace: no captured provenance for operator %d", sourceOID)
	}
	if op.Type != engine.OpSource {
		return nil, fmt.Errorf("backtrace: operator %d is %s, want a source", sourceOID, op.Type)
	}
	// successors[oid] lists (consumer, inputIdx) pairs.
	type edge struct {
		consumer *provenance.Operator
		inputIdx int
	}
	successors := make(map[int][]edge)
	for _, o := range run.Operators() {
		for idx, in := range o.Inputs {
			if in.Pred != 0 {
				successors[in.Pred] = append(successors[in.Pred], edge{consumer: o, inputIdx: idx})
			}
		}
	}
	current := map[int]map[int64]bool{sourceOID: toSet(ids)}
	result := &ForwardResult{ByOperator: make(map[int][]int64)}
	// The captured operator order is topological (execution order), so one
	// pass suffices.
	for _, o := range run.Operators() {
		inIDs := current[o.OID]
		if len(inIDs) == 0 {
			continue
		}
		edges := successors[o.OID]
		if len(edges) == 0 {
			// Terminal operator: report its affected items.
			result.ByOperator[o.OID] = setToSorted(inIDs)
			continue
		}
		for _, e := range edges {
			out := forwardThrough(e.consumer, e.inputIdx, inIDs)
			dst := current[e.consumer.OID]
			if dst == nil {
				dst = make(map[int64]bool)
				current[e.consumer.OID] = dst
			}
			for id := range out {
				dst[id] = true
			}
		}
	}
	return result, nil
}

// forwardThrough maps input ids arriving at the consumer's inputIdx to the
// consumer's output ids, using the operator's association layout.
func forwardThrough(op *provenance.Operator, inputIdx int, in map[int64]bool) map[int64]bool {
	out := make(map[int64]bool)
	switch op.AssocKind() {
	case provenance.AssocUnary:
		for _, a := range op.UnaryAssocs() {
			if in[a.In] {
				out[a.Out] = true
			}
		}
	case provenance.AssocFlatten:
		for _, a := range op.FlattenAssocs() {
			if in[a.In] {
				out[a.Out] = true
			}
		}
	case provenance.AssocBinary:
		for _, a := range op.BinaryAssocs() {
			side := a.Left
			if inputIdx == 1 {
				side = a.Right
			}
			if side != -1 && in[side] {
				out[a.Out] = true
			}
		}
	case provenance.AssocAgg:
		for _, a := range op.AggAssocs() {
			for _, id := range a.Ins {
				if in[id] {
					out[a.Out] = true
					break
				}
			}
		}
	}
	return out
}

func toSet(ids []int64) map[int64]bool {
	s := make(map[int64]bool, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

func setToSorted(s map[int64]bool) []int64 {
	out := make([]int64, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
