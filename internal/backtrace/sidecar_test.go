package backtrace_test

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"pebble/internal/backtrace"
	"pebble/internal/core"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/provenance"
	"pebble/internal/workload"
)

// joinPipeline exercises binary associations (the one kind ExamplePipeline
// lacks): two selects joined on a shared key.
func joinPipeline() (*engine.Pipeline, map[string]*engine.Dataset) {
	p := engine.NewPipeline()
	l := p.Source("l")
	sl := p.Select(l, engine.Column("k", "k"), engine.Column("a", "a"))
	r := p.Source("r")
	sr := p.Select(r, engine.Column("k2", "k"), engine.Column("b", "b"))
	p.Join(sl, sr, engine.Col("k"), engine.Col("k2"))
	gen := engine.NewIDGen(1)
	mk := func(name string, field string, n int) *engine.Dataset {
		var vals []nested.Value
		for i := 0; i < n; i++ {
			vals = append(vals, nested.Item(
				nested.F("k", nested.Int(int64(i%4))),
				nested.F(field, nested.Int(int64(i))),
			))
		}
		return engine.NewDataset(name, vals, 2, gen)
	}
	return p, map[string]*engine.Dataset{"l": mk("l", "a", 10), "r": mk("r", "b", 8)}
}

// sidecarFixture captures a pipeline, serializes it, reloads it lazily, and
// writes its index sidecar.
type sidecarFixture struct {
	stream  []byte
	sidecar []byte
	sink    int
	// question addresses every result row in full.
	question *backtrace.Structure
}

func makeFixture(t testing.TB, pipe *engine.Pipeline, inputs map[string]*engine.Dataset) *sidecarFixture {
	t.Helper()
	res, run, err := provenance.Capture(pipe, inputs, engine.Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	if _, err := run.WriteTo(&stream); err != nil {
		t.Fatal(err)
	}
	lazyRun, err := provenance.ReadRunLazy(stream.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var sidecar bytes.Buffer
	if _, err := backtrace.NewTracer(lazyRun).WriteIndexes(&sidecar); err != nil {
		t.Fatal(err)
	}
	q := backtrace.NewStructure()
	for _, row := range res.Output.Rows() {
		q.Add(row.ID, core.TreeFromValue(row.Value))
	}
	return &sidecarFixture{
		stream:   stream.Bytes(),
		sidecar:  sidecar.Bytes(),
		sink:     pipe.Sink().ID(),
		question: q,
	}
}

func (f *sidecarFixture) lazyTracer(t testing.TB) *backtrace.Tracer {
	t.Helper()
	run, err := provenance.ReadRunLazy(f.stream)
	if err != nil {
		t.Fatal(err)
	}
	return backtrace.NewTracer(run)
}

// render stringifies a trace result deterministically.
func render(r *backtrace.Result) string {
	var oids []int
	for oid := range r.BySource {
		oids = append(oids, oid)
	}
	sort.Ints(oids)
	var sb strings.Builder
	for _, oid := range oids {
		fmt.Fprintf(&sb, "source %d\n%s", oid, r.BySource[oid].String())
	}
	return sb.String()
}

func (f *sidecarFixture) traceVia(t testing.TB, tr *backtrace.Tracer) string {
	t.Helper()
	traced, err := tr.Trace(f.sink, f.question.Clone())
	if err != nil {
		t.Fatal(err)
	}
	return render(traced)
}

func fixtures(t testing.TB) map[string]*sidecarFixture {
	jp, ji := joinPipeline()
	return map[string]*sidecarFixture{
		"example": makeFixture(t, workload.ExamplePipeline(), workload.ExampleInput(2)),
		"join":    makeFixture(t, jp, ji),
	}
}

// TestSidecarRoundTrip: loading a persisted sidecar must answer every trace
// exactly like a rebuilt tracer, and re-serializing the loaded indexes must
// reproduce the sidecar byte for byte (the regions decode lazily, so this
// also proves decode∘encode is the identity).
func TestSidecarRoundTrip(t *testing.T) {
	for name, f := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			rebuilt := f.traceVia(t, f.lazyTracer(t))

			tr := f.lazyTracer(t)
			if err := tr.LoadIndexes(f.sidecar); err != nil {
				t.Fatalf("LoadIndexes: %v", err)
			}
			if got := f.traceVia(t, tr); got != rebuilt {
				t.Errorf("sidecar trace differs from rebuild:\n%s\nwant\n%s", got, rebuilt)
			}

			var again bytes.Buffer
			if _, err := tr.WriteIndexes(&again); err != nil {
				t.Fatalf("re-write: %v", err)
			}
			if !bytes.Equal(again.Bytes(), f.sidecar) {
				t.Errorf("re-serialized sidecar differs: %d vs %d bytes", again.Len(), len(f.sidecar))
			}
		})
	}
}

// TestSidecarEveryByteFlipRejected: the header pins magic, version, and run
// hash; the checksum covers every payload byte. So any single-byte
// corruption must be rejected — and the tracer must still answer correctly
// by rebuilding.
func TestSidecarEveryByteFlipRejected(t *testing.T) {
	f := fixtures(t)["example"]
	rebuilt := f.traceVia(t, f.lazyTracer(t))
	for i := range f.sidecar {
		mut := append([]byte(nil), f.sidecar...)
		mut[i] ^= 0x40
		tr := f.lazyTracer(t)
		err := tr.LoadIndexes(mut)
		if err == nil {
			t.Fatalf("byte %d flipped: LoadIndexes accepted a corrupt sidecar", i)
		}
		if !errors.Is(err, backtrace.ErrSidecarCorrupt) && !errors.Is(err, backtrace.ErrSidecarStale) {
			t.Fatalf("byte %d flipped: error %v is neither corrupt nor stale", i, err)
		}
		if i < 64 { // spot-check the fallback on a sample, full traces are not free
			if got := f.traceVia(t, tr); got != rebuilt {
				t.Fatalf("byte %d flipped: rejected sidecar left tracer wrong", i)
			}
		}
	}
}

// TestSidecarTruncations: every strict prefix must be rejected.
func TestSidecarTruncations(t *testing.T) {
	f := fixtures(t)["join"]
	for n := 0; n < len(f.sidecar); n++ {
		err := f.lazyTracer(t).LoadIndexes(f.sidecar[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", n, len(f.sidecar))
		}
		if !errors.Is(err, backtrace.ErrSidecarCorrupt) && !errors.Is(err, backtrace.ErrSidecarStale) {
			t.Fatalf("prefix of %d bytes: error %v is neither corrupt nor stale", n, err)
		}
	}
}

// TestSidecarWrongRun: a valid sidecar of a different run must be detected
// as stale via the run content hash.
func TestSidecarWrongRun(t *testing.T) {
	fs := fixtures(t)
	err := fs["example"].lazyTracer(t).LoadIndexes(fs["join"].sidecar)
	if !errors.Is(err, backtrace.ErrSidecarStale) {
		t.Fatalf("foreign sidecar: got %v, want ErrSidecarStale", err)
	}
}

// TestSidecarNeedsContentHash: in-memory captures have no content hash, so
// they can neither write nor validate sidecars.
func TestSidecarNeedsContentHash(t *testing.T) {
	_, run, err := provenance.Capture(workload.ExamplePipeline(), workload.ExampleInput(2),
		engine.Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := backtrace.NewTracer(run).WriteIndexes(&bytes.Buffer{}); err == nil {
		t.Error("WriteIndexes on an in-memory run must fail")
	}
	f := fixtures(t)["example"]
	if err := backtrace.NewTracer(run).LoadIndexes(f.sidecar); !errors.Is(err, backtrace.ErrSidecarStale) {
		t.Errorf("LoadIndexes on an in-memory run: got %v, want ErrSidecarStale", err)
	}
}

// TestSidecarPrebuiltIndexWins: operators whose index was already built keep
// it — LoadIndexes only fills the gaps.
func TestSidecarPrebuiltIndexWins(t *testing.T) {
	f := fixtures(t)["example"]
	rebuilt := f.traceVia(t, f.lazyTracer(t))
	tr := f.lazyTracer(t)
	tr.BuildIndexes() // everything pre-built
	if err := tr.LoadIndexes(f.sidecar); err != nil {
		t.Fatalf("LoadIndexes after BuildIndexes: %v", err)
	}
	if got := f.traceVia(t, tr); got != rebuilt {
		t.Errorf("sidecar over pre-built indexes changed answers:\n%s\nwant\n%s", got, rebuilt)
	}
}

// FuzzSidecar: arbitrary bytes must never panic the loader, and whenever a
// load is accepted the tracer must answer exactly like a rebuild — the
// fallback contract (a sidecar can accelerate answers, never change them).
func FuzzSidecar(f *testing.F) {
	fx := fixtures(f)["join"]
	rebuilt := fx.traceVia(f, fx.lazyTracer(f))
	f.Add(fx.sidecar)
	f.Add(fx.sidecar[:len(fx.sidecar)/2])
	f.Add([]byte("PBLI"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := fx.lazyTracer(t)
		if err := tr.LoadIndexes(data); err != nil {
			return
		}
		traced, err := tr.Trace(fx.sink, fx.question.Clone())
		if err != nil {
			t.Fatalf("accepted sidecar, then trace failed: %v", err)
		}
		if got := render(traced); got != rebuilt {
			t.Fatalf("accepted sidecar changed answers:\n%s\nwant\n%s", got, rebuilt)
		}
	})
}
