package backtrace

import (
	"strings"
	"testing"
)

func TestStructureAddLenIDs(t *testing.T) {
	b := NewStructure()
	if b.Len() != 0 {
		t.Fatal("fresh structure not empty")
	}
	t1 := NewTree()
	t1.EnsureContributing(mp("a"))
	b.Add(7, t1)
	b.Add(3, NewTree())
	if b.Len() != 2 {
		t.Errorf("Len = %d", b.Len())
	}
	ids := b.IDs()
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 7 {
		t.Errorf("IDs = %v, want sorted [3 7]", ids)
	}
}

func TestStructureMergeByID(t *testing.T) {
	b := NewStructure()
	t1 := NewTree()
	t1.EnsureContributing(mp("a"))
	t2 := NewTree()
	t2.Ensure(mp("b"), false)
	t2.Find(mp("b"))[0].MarkAccess(4)
	b.Add(5, t1)
	b.Add(5, t2)
	b.Add(9, NewTree())
	merged := b.MergeByID()
	if merged.Len() != 2 {
		t.Fatalf("merged Len = %d, want 2", merged.Len())
	}
	var five *Item
	for _, it := range merged.Items {
		if it.ID == 5 {
			five = it
		}
	}
	if five == nil {
		t.Fatal("item 5 missing after merge")
	}
	if len(five.Tree.Find(mp("a"))) != 1 || len(five.Tree.Find(mp("b"))) != 1 {
		t.Errorf("merged tree lost nodes:\n%s", five.Tree)
	}
	if got := five.Tree.Find(mp("b"))[0].Access; len(got) != 1 || got[0] != 4 {
		t.Errorf("merged tree lost marks: %v", got)
	}
	// First-seen order is preserved.
	if merged.Items[0].ID != 5 || merged.Items[1].ID != 9 {
		t.Errorf("merge order changed: %v", merged.IDs())
	}
}

func TestStructureCloneIndependent(t *testing.T) {
	b := NewStructure()
	tr := NewTree()
	tr.EnsureContributing(mp("a"))
	b.Add(1, tr)
	c := b.Clone()
	c.Items[0].Tree.EnsureContributing(mp("zz"))
	c.Add(2, NewTree())
	if b.Len() != 1 {
		t.Error("clone shares item slice")
	}
	if len(b.Items[0].Tree.Find(mp("zz"))) != 0 {
		t.Error("clone shares trees")
	}
}

func TestStructureString(t *testing.T) {
	b := NewStructure()
	tr := NewTree()
	tr.EnsureContributing(mp("user.id_str"))
	b.Add(42, tr)
	s := b.String()
	for _, want := range []string{"item 42", "user (contributing)", "id_str"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{BySource: map[int]*Structure{}}
	if r.Structure(9).Len() != 0 {
		t.Error("missing source should yield empty structure")
	}
	b := NewStructure()
	b.Add(4, NewTree())
	b.Add(2, NewTree())
	r.BySource[1] = b
	ids := r.ContributingIDs()
	if got := ids[1]; len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("ContributingIDs = %v", ids)
	}
}

func TestContributingPaths(t *testing.T) {
	b := NewStructure()
	tr := NewTree()
	tr.EnsureContributing(mp("user.id_str"))
	tr.EnsureContributing(mp("text"))
	tr.AccessPath(mp("retweet_cnt"), 2) // influencing: not a cell
	b.Add(12, tr)
	cells := b.ContributingPaths()
	got := cells[12]
	if len(got) != 2 || got[0] != "text" || got[1] != "user.id_str" {
		t.Errorf("cells = %v, want [text user.id_str]", got)
	}
}
