package server

import (
	"context"
	"sync"
	"time"

	"pebble/internal/engine"
	"pebble/internal/obs"
	"pebble/pkg/sdk"
)

// job is one asynchronous unit of daemon work: a pipeline execution under
// provenance capture, or a backtracing query over a completed one. Its
// lifecycle is the sdk status machine (queued → running → done | failed |
// cancelled, with cancellation also possible while queued); every
// transition and every observability event is appended to an in-memory
// event log that any number of watchers can follow concurrently.
type job struct {
	id   string
	kind string
	sess *session
	req  sdk.SubmitJobRequest

	// ctx is cancelled by the cancel endpoint (or server shutdown); the
	// engine observes it at every morsel boundary, the backtracer at every
	// operator step.
	ctx    context.Context
	cancel context.CancelFunc

	// rec is the job's private metric recorder. Runs must not share
	// recorders (operator registration races), so isolation per job is a
	// correctness requirement, not just bookkeeping; session-level /stats
	// aggregates fold finished jobs' snapshots instead.
	rec *obs.Recorder

	mu       sync.Mutex
	cond     *sync.Cond // broadcast on event append / status change
	status   string
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
	events   []sdk.JobEvent

	// pipeline-job outputs. result stays in memory for later pattern
	// matching; the provenance itself lives only in the .pbl/.idx artifacts
	// once persisted, so completed captures cost disk, not heap.
	pipeline  *engine.Pipeline
	result    *engine.Result
	provPath  string
	idxPath   string
	provBytes int64

	// trace-job output.
	trace *sdk.TraceOutput
}

func newJob(id, kind string, sess *session, req sdk.SubmitJobRequest) *job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id: id, kind: kind, sess: sess, req: req,
		ctx: ctx, cancel: cancel,
		rec:     obs.NewRecorder(),
		status:  sdk.StatusQueued,
		created: time.Now(),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// event appends one event, stamping sequence and time, and wakes watchers.
func (j *job) event(ev sdk.JobEvent) {
	j.mu.Lock()
	j.appendEventLocked(ev)
	j.mu.Unlock()
}

func (j *job) appendEventLocked(ev sdk.JobEvent) {
	ev.Seq = len(j.events)
	ev.Time = time.Now()
	j.events = append(j.events, ev)
	j.cond.Broadcast()
}

// start transitions queued → running and installs the observability tap
// that turns recorder events into job events. Returns false when the job
// was cancelled before a runner picked it up.
func (j *job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != sdk.StatusQueued {
		return false
	}
	j.status = sdk.StatusRunning
	j.started = time.Now()
	j.appendEventLocked(sdk.JobEvent{Kind: "status", Status: sdk.StatusRunning})
	j.rec.SetTap(func(ev obs.Event) {
		je := sdk.JobEvent{OID: ev.OID, OpType: ev.Type, Span: ev.Span}
		switch ev.Kind {
		case "op":
			je.Kind = "op"
		case "span_start":
			je.Kind = "phase_start"
		case "span_end":
			je.Kind = "phase_end"
			je.ElapsedMS = float64(ev.Elapsed.Nanoseconds()) / 1e6
		default:
			return
		}
		j.event(je)
	})
	return true
}

// finish moves the job to a terminal status (idempotent: the first
// terminal transition wins) and stops tap delivery.
func (j *job) finish(status, errMsg string) {
	j.rec.SetTap(nil)
	j.mu.Lock()
	defer j.mu.Unlock()
	if sdk.TerminalStatus(j.status) {
		return
	}
	j.status = status
	j.errMsg = errMsg
	j.finished = time.Now()
	ev := sdk.JobEvent{Kind: "status", Status: status}
	if errMsg != "" {
		ev.Message = errMsg
	}
	j.appendEventLocked(ev)
}

// info snapshots the job for the wire.
func (j *job) info() sdk.JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := sdk.JobInfo{
		ID:      j.id,
		Session: j.sess.name,
		Kind:    j.kind,
		Status:  j.status,
		Error:   j.errMsg,
		Created: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		info.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		info.Finished = &t
	}
	if j.result != nil {
		info.ResultRows = j.result.Output.Len()
	}
	info.ProvBytes = j.provBytes
	if j.trace != nil {
		info.Matched = j.trace.Matched
	}
	return info
}

// eventsFrom returns the events at index >= from plus whether the job has
// reached a terminal status (watchers drain the log, then stop).
func (j *job) eventsFrom(from int) ([]sdk.JobEvent, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var evs []sdk.JobEvent
	if from < len(j.events) {
		evs = append(evs, j.events[from:]...)
	}
	return evs, sdk.TerminalStatus(j.status)
}

// waitEvents blocks until the log grows past from, the job terminates, or
// wake is closed (the watcher's way out when its client disconnects).
func (j *job) waitEvents(from int, wake <-chan struct{}) {
	// A helper goroutine converts the channel signal into a cond broadcast;
	// it exits as soon as either side fires.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-wake:
			j.mu.Lock()
			j.cond.Broadcast()
			j.mu.Unlock()
		case <-done:
		}
	}()
	j.mu.Lock()
	defer j.mu.Unlock()
	for from >= len(j.events) && !sdk.TerminalStatus(j.status) {
		select {
		case <-wake:
			return
		default:
		}
		j.cond.Wait()
	}
}
