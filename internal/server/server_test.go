package server_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pebble/internal/corpus"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/server"
	"pebble/pkg/sdk"
)

// startDaemon boots an in-process daemon over httptest and returns an SDK
// client bound to it. Cleanup order matters: the server closes first (which
// cancels and finishes every job, releasing event-stream watchers), then
// the HTTP listener.
func startDaemon(t *testing.T, cfg server.Config) *sdk.Client {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})
	return sdk.New(ts.URL)
}

// gate coordinates tests with pipelines executing inside the daemon: the
// pipeline's map operator reports entry (once per job, tagged) and then
// blocks until the gate opens.
type gate struct {
	entered chan string
	release chan struct{}
	once    sync.Once
}

func newGate() *gate {
	return &gate{entered: make(chan string, 64), release: make(chan struct{})}
}

// open releases every blocked pipeline; safe to call repeatedly.
func (g *gate) open() { g.once.Do(func() { close(g.release) }) }

// await waits for one tagged pipeline to start executing.
func (g *gate) await(t *testing.T) string {
	t.Helper()
	select {
	case tag := <-g.entered:
		return tag
	case <-time.After(30 * time.Second):
		t.Fatal("no pipeline entered the gate within 30s")
		return ""
	}
}

// gatedFactory registers a pipeline whose map blocks on the gate.
func gatedFactory(g *gate, tag string, rows int) server.Factory {
	return server.Factory{
		Build: func() (*engine.Pipeline, error) {
			p := engine.NewPipeline()
			src := p.Source("in")
			var once sync.Once
			p.Map(src, engine.MapFunc{Name: "gate", Fn: func(v nested.Value) (nested.Value, error) {
				once.Do(func() { g.entered <- tag })
				<-g.release
				return v, nil
			}})
			return p, nil
		},
		Inputs: func(_, partitions int) (map[string]*engine.Dataset, error) {
			return map[string]*engine.Dataset{"in": intDataset(rows, partitions)}, nil
		},
	}
}

func intDataset(rows, partitions int) *engine.Dataset {
	vals := make([]nested.Value, rows)
	for i := range vals {
		vals[i] = nested.Item(nested.F("n", nested.Int(int64(i))))
	}
	return engine.NewDataset("in", vals, partitions, engine.NewIDGen(1))
}

func mustSession(t *testing.T, c *sdk.Client, spec sdk.SessionSpec) {
	t.Helper()
	if _, err := c.CreateSession(context.Background(), spec); err != nil {
		t.Fatalf("create session %q: %v", spec.Name, err)
	}
}

func submit(t *testing.T, c *sdk.Client, sess string, req sdk.SubmitJobRequest) sdk.JobInfo {
	t.Helper()
	info, err := c.SubmitJob(context.Background(), sess, req)
	if err != nil {
		t.Fatalf("submit to %q: %v", sess, err)
	}
	return info
}

func waitStatus(t *testing.T, c *sdk.Client, sess, id, want string) sdk.JobInfo {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	info, err := c.WaitJob(ctx, sess, id)
	if err != nil {
		t.Fatalf("wait job %s/%s: %v", sess, id, err)
	}
	if info.Status != want {
		t.Fatalf("job %s/%s finished %s (%s), want %s", sess, id, info.Status, info.Error, want)
	}
	return info
}

// TestCancelWhileQueued pins the queued→cancelled transition: with the
// single runner occupied, a queued job cancelled before dispatch must go
// terminal immediately, never start, and leave a queued→cancelled event
// trail.
func TestCancelWhileQueued(t *testing.T) {
	g := newGate()
	defer g.open()
	c := startDaemon(t, server.Config{
		Runners: 1, SessionCap: 1, QueueDepth: 8,
		Pipelines: map[string]server.Factory{"block": gatedFactory(g, "b", 8)},
	})
	ctx := context.Background()
	mustSession(t, c, sdk.SessionSpec{Name: "s", Partitions: 4})

	j1 := submit(t, c, "s", sdk.SubmitJobRequest{Kind: sdk.KindPipeline, Scenario: "block"})
	g.await(t) // runner is now provably inside j1

	j2 := submit(t, c, "s", sdk.SubmitJobRequest{Kind: sdk.KindPipeline, Scenario: "block"})
	info, err := c.CancelJob(ctx, "s", j2.ID)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if info.Status != sdk.StatusCancelled {
		t.Errorf("cancel-while-queued returned status %s, want cancelled immediately", info.Status)
	}
	info = waitStatus(t, c, "s", j2.ID, sdk.StatusCancelled)
	if info.Started != nil {
		t.Errorf("cancelled-while-queued job has a start time %v; it must never have run", info.Started)
	}

	var events []sdk.JobEvent
	if err := c.StreamEvents(ctx, "s", j2.ID, func(ev sdk.JobEvent) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatalf("stream events: %v", err)
	}
	var statuses []string
	for _, ev := range events {
		if ev.Kind == "status" {
			statuses = append(statuses, ev.Status)
		}
	}
	if got := strings.Join(statuses, ","); got != "queued,cancelled" {
		t.Errorf("status trail = %s, want queued,cancelled", got)
	}

	g.open()
	waitStatus(t, c, "s", j1.ID, sdk.StatusDone)
}

// TestCancelMidRun pins that cancelling a running job really stops morsel
// scheduling: the cancelled session's recorded rows_in (via /stats, backed
// by the obs counters) stays strictly below an identical uncancelled run.
func TestCancelMidRun(t *testing.T) {
	g := newGate()
	defer g.open()
	const rows = 64
	c := startDaemon(t, server.Config{
		Runners: 1, SessionCap: 1, QueueDepth: 8,
		Pipelines: map[string]server.Factory{"block": gatedFactory(g, "m", rows)},
	})
	ctx := context.Background()
	mustSession(t, c, sdk.SessionSpec{Name: "cut", Partitions: 16, Workers: 2})
	mustSession(t, c, sdk.SessionSpec{Name: "full", Partitions: 16, Workers: 2})

	j := submit(t, c, "cut", sdk.SubmitJobRequest{Kind: sdk.KindPipeline, Scenario: "block"})
	g.await(t) // first morsel provably executing
	if _, err := c.CancelJob(ctx, "cut", j.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	g.open() // let the in-flight morsels drain; no new ones may start
	info := waitStatus(t, c, "cut", j.ID, sdk.StatusCancelled)
	if !strings.Contains(info.Error, "context canceled") {
		t.Errorf("cancelled job error = %q, want context cancellation surfaced", info.Error)
	}

	// Reference: same pipeline, gate already open, runs to completion.
	ref := submit(t, c, "full", sdk.SubmitJobRequest{Kind: sdk.KindPipeline, Scenario: "block"})
	waitStatus(t, c, "full", ref.ID, sdk.StatusDone)

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	rowsIn := map[string]int64{}
	for _, ss := range stats.Sessions {
		rowsIn[ss.Name] = ss.Counters["rows_in"]
	}
	if rowsIn["cut"] == 0 {
		t.Error("cancelled run recorded no rows_in at all; gate never executed?")
	}
	if rowsIn["cut"] >= rowsIn["full"] {
		t.Errorf("cancelled run consumed rows_in=%d, not below the full run's %d: cancellation did not stop morsel scheduling",
			rowsIn["cut"], rowsIn["full"])
	}
	if stats.Jobs[sdk.StatusCancelled] != 1 || stats.Jobs[sdk.StatusDone] != 1 {
		t.Errorf("server job tallies = %v, want 1 cancelled and 1 done", stats.Jobs)
	}
}

// TestQueueFull429 pins admission control: with the runner blocked and the
// queue at depth, a further submission is rejected with HTTP 429 and a
// Retry-After hint, and the rejected job never runs.
func TestQueueFull429(t *testing.T) {
	g := newGate()
	defer g.open()
	c := startDaemon(t, server.Config{
		Runners: 1, SessionCap: 1, QueueDepth: 1,
		Pipelines: map[string]server.Factory{"block": gatedFactory(g, "q", 8)},
	})
	ctx := context.Background()
	mustSession(t, c, sdk.SessionSpec{Name: "s", Partitions: 4})

	j1 := submit(t, c, "s", sdk.SubmitJobRequest{Kind: sdk.KindPipeline, Scenario: "block"})
	g.await(t)
	j2 := submit(t, c, "s", sdk.SubmitJobRequest{Kind: sdk.KindPipeline, Scenario: "block"})

	_, err := c.SubmitJob(ctx, "s", sdk.SubmitJobRequest{Kind: sdk.KindPipeline, Scenario: "block"})
	ae, full := sdk.IsQueueFull(err)
	if !full {
		t.Fatalf("third submission: got err %v, want 429 queue-full", err)
	}
	if ae.RetryAfter <= 0 {
		t.Errorf("429 carried Retry-After %v, want a positive hint", ae.RetryAfter)
	}

	g.open()
	waitStatus(t, c, "s", j1.ID, sdk.StatusDone)
	waitStatus(t, c, "s", j2.ID, sdk.StatusDone)
	jobs, err := c.ListJobs(ctx, "s")
	if err != nil {
		t.Fatalf("list jobs: %v", err)
	}
	// The rejected submission is recorded as failed, never queued/run.
	var failed int
	for _, ji := range jobs {
		if ji.Status == sdk.StatusFailed {
			failed++
			if ji.Started != nil {
				t.Errorf("rejected job %s has a start time; it must never run", ji.ID)
			}
		}
	}
	if failed != 1 {
		t.Errorf("%d failed jobs, want exactly the rejected one", failed)
	}
}

// TestSessionCapFairness pins FIFO-with-skip dispatch: a session at its
// running cap is skipped and the next session's older-than-nothing job runs
// instead, so one chatty session cannot monopolise the runner pool.
func TestSessionCapFairness(t *testing.T) {
	g := newGate()
	defer g.open()
	c := startDaemon(t, server.Config{
		Runners: 2, SessionCap: 1, QueueDepth: 8,
		Pipelines: map[string]server.Factory{
			"a1": gatedFactory(g, "a1", 8),
			"a2": gatedFactory(g, "a2", 8),
			"b1": gatedFactory(g, "b1", 8),
		},
	})
	mustSession(t, c, sdk.SessionSpec{Name: "a", Partitions: 4})
	mustSession(t, c, sdk.SessionSpec{Name: "b", Partitions: 4})

	// Session a submits twice before b submits once. Despite strict FIFO
	// order a1,a2,b1, the two runners must pick a1 and b1 — a2 is held by
	// the session cap.
	ja1 := submit(t, c, "a", sdk.SubmitJobRequest{Kind: sdk.KindPipeline, Scenario: "a1"})
	ja2 := submit(t, c, "a", sdk.SubmitJobRequest{Kind: sdk.KindPipeline, Scenario: "a2"})
	jb1 := submit(t, c, "b", sdk.SubmitJobRequest{Kind: sdk.KindPipeline, Scenario: "b1"})

	running := map[string]bool{g.await(t): true}
	running[g.await(t)] = true
	if !running["a1"] || !running["b1"] {
		t.Fatalf("running set = %v, want {a1, b1}: the session cap must skip a2 in favour of b1", running)
	}
	info, err := c.GetJob(context.Background(), "a", ja2.ID)
	if err != nil {
		t.Fatalf("get a2: %v", err)
	}
	if info.Status != sdk.StatusQueued {
		t.Errorf("a2 status = %s, want still queued while a1 runs (cap 1)", info.Status)
	}

	g.open()
	waitStatus(t, c, "a", ja1.ID, sdk.StatusDone)
	waitStatus(t, c, "a", ja2.ID, sdk.StatusDone)
	waitStatus(t, c, "b", jb1.ID, sdk.StatusDone)
}

// TestEventStreamShape pins the live progress contract on a real scenario
// job: status queued→running→done in order, operator registrations, and
// phase spans (schedule, collector_finish) fed from the obs tap.
func TestEventStreamShape(t *testing.T) {
	c := startDaemon(t, server.Config{})
	ctx := context.Background()
	mustSession(t, c, sdk.SessionSpec{Name: "s"})
	j := submit(t, c, "s", sdk.SubmitJobRequest{Kind: sdk.KindPipeline, Scenario: "T3", SimGB: 1})

	var events []sdk.JobEvent
	if err := c.StreamEvents(ctx, "s", j.ID, func(ev sdk.JobEvent) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatalf("stream: %v", err)
	}
	var statuses []string
	phases := map[string]bool{}
	ops := 0
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d: stream must be gapless and ordered", i, ev.Seq)
		}
		switch ev.Kind {
		case "status":
			statuses = append(statuses, ev.Status)
		case "phase_end":
			phases[ev.Span] = true
			if ev.ElapsedMS < 0 {
				t.Errorf("phase_end %s with negative elapsed %v", ev.Span, ev.ElapsedMS)
			}
		case "op":
			ops++
		}
	}
	if got := strings.Join(statuses, ","); got != "queued,running,done" {
		t.Errorf("status trail = %s, want queued,running,done", got)
	}
	if !phases["schedule"] || !phases["collector_finish"] {
		t.Errorf("phases seen = %v, want schedule and collector_finish from the obs tap", phases)
	}
	if ops == 0 {
		t.Error("no operator registration events streamed")
	}
}

// TestSpecJobOverUploadedDataset drives the declarative path: upload a
// dataset as JSON lines, run a corpus.Spec pipeline whose source resolves
// against it, and trace the full result back through the daemon.
func TestSpecJobOverUploadedDataset(t *testing.T) {
	c := startDaemon(t, server.Config{})
	ctx := context.Background()
	mustSession(t, c, sdk.SessionSpec{Name: "s", Partitions: 4})

	lines := strings.NewReader(`{"n": 1}` + "\n" + `{"n": 3}` + "\n" + `{"n": 5}` + "\n" + `{"n": 7}` + "\n" + `{"n": 9}` + "\n")
	ds, err := c.UploadDataset(ctx, "s", "mydata", 0, lines)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	if ds.Rows != 5 || ds.Partitions != 4 {
		t.Errorf("dataset = %+v, want 5 rows in 4 partitions (session inheritance)", ds)
	}
	// Duplicate registration must be refused, not silently replaced.
	if _, err := c.UploadDataset(ctx, "s", "mydata", 0, strings.NewReader(`{"n": 0}`+"\n")); err == nil {
		t.Error("duplicate dataset upload accepted; want conflict")
	}

	spec := corpus.Spec{
		Steps: []corpus.Step{
			{Op: corpus.StepSource, In: -1, In2: -1, Dataset: "mydata"},
			{Op: corpus.StepFilter, In: 0, In2: -1, Pred: &corpus.Pred{Col: "n", Op: "gt", Int: 2}},
		},
		Sink: 1,
	}
	specJSON, err := json.Marshal(&spec)
	if err != nil {
		t.Fatal(err)
	}
	j := submit(t, c, "s", sdk.SubmitJobRequest{Kind: sdk.KindPipeline, Spec: specJSON})
	info := waitStatus(t, c, "s", j.ID, sdk.StatusDone)
	if info.ResultRows != 4 {
		t.Errorf("result rows = %d, want 4 (n in {3,5,7,9})", info.ResultRows)
	}
	if info.ProvBytes <= 0 {
		t.Errorf("prov bytes = %d, want a persisted artifact", info.ProvBytes)
	}

	tj := submit(t, c, "s", sdk.SubmitJobRequest{Kind: sdk.KindTrace, TargetJob: j.ID, TraceAll: true})
	waitStatus(t, c, "s", tj.ID, sdk.StatusDone)
	out, err := c.TraceResult(ctx, "s", tj.ID)
	if err != nil {
		t.Fatalf("trace result: %v", err)
	}
	if out.Matched != 4 {
		t.Errorf("trace matched %d items, want 4", out.Matched)
	}
	if !strings.Contains(out.Report, "source operator") {
		t.Errorf("trace report carries no source section:\n%s", out.Report)
	}
	var decoded struct {
		Matched int `json:"matched"`
		Sources []struct {
			Dataset string `json:"dataset"`
		} `json:"sources"`
	}
	if err := json.Unmarshal(out.Result, &decoded); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if decoded.Matched != 4 || len(decoded.Sources) != 1 || decoded.Sources[0].Dataset != "mydata" {
		t.Errorf("trace JSON = %+v, want 4 matches traced to dataset mydata", decoded)
	}
}

// TestRequestValidation pins the 4xx surface: unknown sessions, duplicate
// sessions, malformed job kinds, and results demanded before completion.
func TestRequestValidation(t *testing.T) {
	g := newGate()
	defer g.open()
	c := startDaemon(t, server.Config{
		Runners: 1, SessionCap: 1, QueueDepth: 4,
		Pipelines: map[string]server.Factory{"block": gatedFactory(g, "v", 8)},
	})
	ctx := context.Background()
	mustSession(t, c, sdk.SessionSpec{Name: "s", Partitions: 4})

	if _, err := c.CreateSession(ctx, sdk.SessionSpec{Name: "s"}); err == nil {
		t.Error("duplicate session accepted")
	}
	if _, err := c.GetSession(ctx, "ghost"); err == nil {
		t.Error("unknown session returned")
	}
	if _, err := c.SubmitJob(ctx, "s", sdk.SubmitJobRequest{Kind: "mystery"}); err == nil {
		t.Error("unknown job kind accepted")
	}
	if _, err := c.SubmitJob(ctx, "s", sdk.SubmitJobRequest{Kind: sdk.KindPipeline}); err == nil {
		t.Error("pipeline job without scenario or spec accepted")
	}
	if _, err := c.SubmitJob(ctx, "s", sdk.SubmitJobRequest{Kind: sdk.KindTrace, TargetJob: "j9"}); err == nil {
		t.Error("trace job without a question accepted")
	}

	j := submit(t, c, "s", sdk.SubmitJobRequest{Kind: sdk.KindPipeline, Scenario: "block"})
	g.await(t)
	if _, err := c.Provenance(ctx, "s", j.ID); err == nil {
		t.Error("provenance of a running job served; want conflict until done")
	}
	// Tracing a not-yet-done target must fail the trace job, not hang.
	tj := submit(t, c, "s", sdk.SubmitJobRequest{Kind: sdk.KindTrace, TargetJob: j.ID, TraceAll: true})
	g.open()
	waitStatus(t, c, "s", j.ID, sdk.StatusDone)
	// The trace may have raced the pipeline's completion; both outcomes are
	// legal, but it must terminate.
	ctx2, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	tinfo, err := c.WaitJob(ctx2, "s", tj.ID)
	if err != nil {
		t.Fatalf("wait trace: %v", err)
	}
	if tinfo.Status != sdk.StatusDone && tinfo.Status != sdk.StatusFailed {
		t.Errorf("trace against racing target finished %s, want done or failed", tinfo.Status)
	}
}
