package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"pebble/internal/core"
	"pebble/internal/server"
	"pebble/internal/workload"
	"pebble/pkg/sdk"
)

// TestDaemonMatchesLibrary is the SDK-vs-library differential: every paper
// scenario submitted through a live daemon must yield byte-identical
// serialized provenance and an identical trace report compared to direct
// library execution, for Workers 1 and Workers NumCPU. This is the
// service-layer extension of the oracle harness: the daemon may add
// queueing, persistence, and reload between capture and query, but never
// semantics.
func TestDaemonMatchesLibrary(t *testing.T) {
	c := startDaemon(t, server.Config{Runners: 2, SessionCap: 2, QueueDepth: 64})
	ctx := context.Background()
	workersList := []int{1, runtime.NumCPU()}
	for _, w := range workersList {
		mustSession(t, c, sdk.SessionSpec{Name: fmt.Sprintf("w%d", w), Workers: w})
	}

	for _, sc := range workload.AllScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			// Library reference execution (default session).
			lib := core.NewSession()
			cap, err := lib.Capture(sc.Build(), sc.Input(workload.DefaultScale(1), lib.ResolvePartitions(0)))
			if err != nil {
				t.Fatalf("library capture: %v", err)
			}
			var wantProv bytes.Buffer
			if _, err := cap.Provenance.WriteTo(&wantProv); err != nil {
				t.Fatal(err)
			}
			q, err := cap.Query(sc.Pattern)
			if err != nil {
				t.Fatalf("library query: %v", err)
			}
			wantReport := q.Report()
			patJSON, err := json.Marshal(sc.Pattern)
			if err != nil {
				t.Fatalf("pattern to wire form: %v", err)
			}

			for _, w := range workersList {
				sess := fmt.Sprintf("w%d", w)
				j := submit(t, c, sess, sdk.SubmitJobRequest{
					Kind: sdk.KindPipeline, Scenario: sc.Name, SimGB: 1,
				})
				info := waitStatus(t, c, sess, j.ID, sdk.StatusDone)
				remote, err := c.Provenance(ctx, sess, j.ID)
				if err != nil {
					t.Fatalf("download provenance: %v", err)
				}
				if !bytes.Equal(remote, wantProv.Bytes()) {
					t.Errorf("workers=%d: daemon provenance differs from library (%d vs %d bytes)",
						w, len(remote), wantProv.Len())
				}
				if info.ProvBytes != int64(len(remote)) {
					t.Errorf("workers=%d: job reports %d prov bytes, artifact has %d",
						w, info.ProvBytes, len(remote))
				}

				tj := submit(t, c, sess, sdk.SubmitJobRequest{
					Kind: sdk.KindTrace, TargetJob: j.ID, Pattern: patJSON,
				})
				waitStatus(t, c, sess, tj.ID, sdk.StatusDone)
				out, err := c.TraceResult(ctx, sess, tj.ID)
				if err != nil {
					t.Fatalf("trace result: %v", err)
				}
				if out.Report != wantReport {
					t.Errorf("workers=%d: daemon trace report differs from library:\n-- daemon --\n%s\n-- library --\n%s",
						w, out.Report, wantReport)
				}
			}
		})
	}
}

// TestPatternTextOverWire drives the textual pattern grammar through the
// daemon: the same question phrased as pattern_text must trace identically
// to the compiled pattern object.
func TestPatternTextOverWire(t *testing.T) {
	c := startDaemon(t, server.Config{})
	ctx := context.Background()
	mustSession(t, c, sdk.SessionSpec{Name: "s"})

	j := submit(t, c, "s", sdk.SubmitJobRequest{Kind: sdk.KindPipeline, Scenario: "T3", SimGB: 1})
	waitStatus(t, c, "s", j.ID, sdk.StatusDone)

	sc, err := workload.ByName("T3")
	if err != nil {
		t.Fatal(err)
	}
	patJSON, err := json.Marshal(sc.Pattern)
	if err != nil {
		t.Fatal(err)
	}
	viaJSON := submit(t, c, "s", sdk.SubmitJobRequest{Kind: sdk.KindTrace, TargetJob: j.ID, Pattern: patJSON})
	viaText := submit(t, c, "s", sdk.SubmitJobRequest{
		Kind: sdk.KindTrace, TargetJob: j.ID,
		PatternText: fmt.Sprintf(`//id_str == %q, tweets(text)`, workload.HotUserID),
	})
	waitStatus(t, c, "s", viaJSON.ID, sdk.StatusDone)
	waitStatus(t, c, "s", viaText.ID, sdk.StatusDone)
	a, err := c.TraceResult(ctx, "s", viaJSON.ID)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.TraceResult(ctx, "s", viaText.ID)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report != b.Report {
		t.Errorf("JSON-pattern and text-pattern traces differ:\n%s\nvs\n%s", a.Report, b.Report)
	}
}
