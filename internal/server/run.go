package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"pebble/internal/backtrace"
	"pebble/internal/core"
	"pebble/internal/corpus"
	"pebble/internal/engine"
	"pebble/internal/provenance"
	"pebble/internal/treepattern"
	"pebble/internal/workload"
	"pebble/pkg/sdk"
)

// runJob is the runner-pool entry point: it drives one job through its
// terminal status and folds its metrics into the session aggregates.
func (s *Server) runJob(j *job) {
	if !j.start() {
		// Finished before dispatch (shutdown drained the queue).
		return
	}
	var err error
	switch j.kind {
	case sdk.KindPipeline:
		err = s.runPipeline(j)
	case sdk.KindTrace:
		err = s.runTrace(j)
	default:
		err = fmt.Errorf("unknown job kind %q", j.kind)
	}
	switch {
	case err == nil:
		j.finish(sdk.StatusDone, "")
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.finish(sdk.StatusCancelled, err.Error())
	default:
		j.finish(sdk.StatusFailed, err.Error())
	}
	j.sess.absorb(j)
}

// resolvePipeline turns a pipeline-job request into an executable plan and
// its inputs. Scenario names resolve against the operator-registered
// factories first, then the built-in paper scenarios; spec submissions are
// corpus.Spec JSON whose source steps prefer the session's registered
// datasets over the spec's inline rows.
func (s *Server) resolvePipeline(j *job) (*engine.Pipeline, map[string]*engine.Dataset, error) {
	parts := j.sess.base.ResolvePartitions(0)
	if name := j.req.Scenario; name != "" {
		if f, ok := s.cfg.Pipelines[name]; ok {
			p, err := f.Build()
			if err != nil {
				return nil, nil, fmt.Errorf("build pipeline %q: %w", name, err)
			}
			inputs, err := f.Inputs(j.req.SimGB, parts)
			if err != nil {
				return nil, nil, fmt.Errorf("inputs for %q: %w", name, err)
			}
			return p, inputs, nil
		}
		sc, err := workload.ByName(name)
		if err != nil {
			return nil, nil, fmt.Errorf("unknown pipeline %q (not a registered factory or paper scenario)", name)
		}
		simGB := j.req.SimGB
		if simGB <= 0 {
			simGB = 1
		}
		return sc.Build(), sc.Input(workload.DefaultScale(simGB), parts), nil
	}
	var spec corpus.Spec
	if err := json.Unmarshal(j.req.Spec, &spec); err != nil {
		return nil, nil, fmt.Errorf("decode pipeline spec: %w", err)
	}
	p, err := spec.Build()
	if err != nil {
		return nil, nil, err
	}
	inputs := spec.Inputs(parts)
	for _, st := range spec.Steps {
		if st.Op != corpus.StepSource {
			continue
		}
		if ds, ok := j.sess.dataset(st.Dataset); ok {
			inputs[st.Dataset] = ds
		} else if _, inline := inputs[st.Dataset]; !inline {
			return nil, nil, fmt.Errorf("source %q: dataset neither registered in session nor inline in spec", st.Dataset)
		}
	}
	return p, inputs, nil
}

// runPipeline executes a pipeline job under the session configuration with
// the job's recorder and context. Captured provenance is persisted as a
// .pbl artifact plus a .idx index sidecar and then dropped from memory:
// the execution result stays resident for pattern matching, the provenance
// reloads lazily when a trace job needs it.
func (s *Server) runPipeline(j *job) error {
	p, inputs, err := s.resolvePipeline(j)
	if err != nil {
		return err
	}
	cfg := j.sess.exec(j.rec)
	if j.req.Capture != nil && !*j.req.Capture {
		res, err := cfg.RunContext(j.ctx, p, inputs)
		if err != nil {
			return err
		}
		j.mu.Lock()
		j.pipeline, j.result = p, res
		j.mu.Unlock()
		return nil
	}
	cap, err := cfg.CaptureContext(j.ctx, p, inputs)
	if err != nil {
		return err
	}
	provPath, idxPath, n, err := s.persistArtifacts(j, cap)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.pipeline, j.result = p, cap.Result
	j.provPath, j.idxPath, j.provBytes = provPath, idxPath, n
	j.mu.Unlock()
	return nil
}

// persistArtifacts serializes the capture's provenance (.pbl) and its
// association-index sidecar (.idx). The sidecar is keyed by the run's
// content hash, which only byte-loaded runs carry, so the run round-trips
// through its own serialized form before indexing — also re-verifying that
// what was written decodes.
func (s *Server) persistArtifacts(j *job, cap *core.Captured) (provPath, idxPath string, n int64, err error) {
	provPath = s.artifactPath(j.sess, j, ".pbl")
	idxPath = s.artifactPath(j.sess, j, ".idx")
	cleanup := func() {
		os.Remove(provPath) //nolint:errcheck // best-effort cleanup
		os.Remove(idxPath)  //nolint:errcheck // best-effort cleanup
	}
	f, err := os.Create(provPath)
	if err != nil {
		return "", "", 0, fmt.Errorf("create provenance artifact: %w", err)
	}
	n, werr := cap.Provenance.WriteToObserved(f, j.rec)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		cleanup()
		return "", "", 0, fmt.Errorf("write provenance artifact: %w", errors.Join(werr, cerr))
	}
	data, err := os.ReadFile(provPath)
	if err != nil {
		cleanup()
		return "", "", 0, fmt.Errorf("reload provenance artifact: %w", err)
	}
	run, err := provenance.ReadRunLazy(data)
	if err != nil {
		cleanup()
		return "", "", 0, fmt.Errorf("verify provenance artifact: %w", err)
	}
	fi, err := os.Create(idxPath)
	if err != nil {
		cleanup()
		return "", "", 0, fmt.Errorf("create index sidecar: %w", err)
	}
	_, werr = backtrace.NewTracer(run).WriteIndexes(fi)
	cerr = fi.Close()
	if werr != nil || cerr != nil {
		cleanup()
		return "", "", 0, fmt.Errorf("write index sidecar: %w", errors.Join(werr, cerr))
	}
	return provPath, idxPath, n, nil
}

// runTrace executes a trace job: it reloads the target pipeline job's
// persisted provenance lazily, installs the index sidecar (falling back to
// an in-memory rebuild if the sidecar is stale or damaged), builds the
// backtracing structure from the requested pattern, and walks the
// provenance back to the sources.
func (s *Server) runTrace(j *job) error {
	target, ok := j.sess.job(j.req.TargetJob)
	if !ok {
		return fmt.Errorf("target job %q not found", j.req.TargetJob)
	}
	tinfo := target.info()
	if target.kind != sdk.KindPipeline || tinfo.Status != sdk.StatusDone {
		return fmt.Errorf("target job %s is %s %s; need a done pipeline job", target.id, tinfo.Status, target.kind)
	}
	target.mu.Lock()
	provPath, idxPath := target.provPath, target.idxPath
	pipeline, result := target.pipeline, target.result
	target.mu.Unlock()
	if provPath == "" {
		return fmt.Errorf("target job %s captured no provenance (capture=false)", target.id)
	}
	data, err := os.ReadFile(provPath)
	if err != nil {
		return fmt.Errorf("read provenance artifact: %w", err)
	}
	run, err := provenance.ReadRunLazyObserved(data, j.rec)
	if err != nil {
		return fmt.Errorf("load provenance artifact: %w", err)
	}
	tr := backtrace.NewTracer(run)
	if idxData, rerr := os.ReadFile(idxPath); rerr == nil {
		if lerr := tr.LoadIndexes(idxData); lerr != nil {
			// Stale or corrupt sidecar: never wrong answers — rebuild.
			j.event(sdk.JobEvent{Kind: "note", Message: fmt.Sprintf("index sidecar rejected (%v); rebuilding indexes", lerr)})
		}
	}
	cap := core.Reattached(pipeline, result, run, tr, j.rec)

	b, err := j.buildStructure(result)
	if err != nil {
		return err
	}
	startID := j.req.StartOp
	if startID <= 0 {
		startID = pipeline.Sink().ID()
	}
	op, ok := run.OpByID(provenance.OpID(startID))
	if !ok {
		return fmt.Errorf("operator %d not present in captured provenance", startID)
	}
	qr, err := cap.TraceAtContext(j.ctx, op, b)
	if err != nil {
		return err
	}
	js, err := qr.JSON()
	if err != nil {
		return fmt.Errorf("encode trace result: %w", err)
	}
	out := &sdk.TraceOutput{Matched: b.Len(), Report: qr.Report(), Result: js}
	j.mu.Lock()
	j.trace = out
	j.mu.Unlock()
	return nil
}

// buildStructure turns the trace request's question into a backtracing
// structure over the target's result.
func (j *job) buildStructure(result *engine.Result) (*backtrace.Structure, error) {
	switch {
	case j.req.TraceAll:
		b := backtrace.NewStructure()
		for _, row := range result.Output.Rows() {
			b.Add(row.ID, core.TreeFromValue(row.Value))
		}
		return b, nil
	case j.req.PatternText != "":
		pat, err := treepattern.Parse(j.req.PatternText)
		if err != nil {
			return nil, fmt.Errorf("parse pattern: %w", err)
		}
		return pat.MatchObserved(result.Output, j.rec), nil
	default:
		pat := &treepattern.Pattern{}
		if err := json.Unmarshal(j.req.Pattern, pat); err != nil {
			return nil, fmt.Errorf("decode pattern: %w", err)
		}
		return pat.MatchObserved(result.Output, j.rec), nil
	}
}
