// Package server implements pebbled, the provenance-as-a-service daemon: an
// HTTP/JSON facade over the library's Session API. Clients create named
// sessions, register datasets, and submit pipeline executions and
// backtracing queries as asynchronous jobs with cancellation and streamed
// progress events; completed captures persist as .pbl/.idx artifacts so
// provenance outlives the run that produced it. Admission control is a
// bounded job queue with backpressure (429 + Retry-After) and a per-session
// running cap (see queue.go).
//
// The daemon adds *no* execution semantics of its own: every job funnels
// into core.Session.CaptureContext / RunContext and the backtrace tracer,
// so a capture through pebbled is byte-identical to the same capture
// through the library (pinned by the differential tests and the serve-smoke
// CI gate).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/pkg/sdk"
)

// Factory builds a named pipeline and its inputs server-side. Registered
// factories let operators (and tests) expose pipelines that cannot travel
// over the wire — Go closures, generated workloads — under a stable name.
type Factory struct {
	// Build constructs a fresh pipeline per job.
	Build func() (*engine.Pipeline, error)
	// Inputs generates the input datasets; simGB is the client-requested
	// scale (0 = smallest) and partitions the session's logical partition
	// count. Deterministic inputs are the factory's responsibility — the
	// byte-identity guarantee only holds when the same name and scale
	// yield the same data on every call.
	Inputs func(simGB, partitions int) (map[string]*engine.Dataset, error)
}

// Config parameterises a daemon instance.
type Config struct {
	// DataDir is where job artifacts (.pbl provenance, .idx sidecars) are
	// persisted. Required.
	DataDir string
	// QueueDepth bounds the number of queued (admitted, not yet running)
	// jobs; submissions beyond it get 429 + Retry-After. Default 64.
	QueueDepth int
	// Runners is the size of the job-runner pool. Default 2.
	Runners int
	// SessionCap is the maximum number of concurrently *running* jobs per
	// session. Default 1 (a session is a serial execution context; cross-
	// session jobs still run in parallel up to Runners).
	SessionCap int
	// MaxUploadBytes bounds one dataset upload. Default 64 MiB.
	MaxUploadBytes int64
	// RetryAfter is the backpressure hint returned with 429. Default 1s.
	RetryAfter time.Duration
	// Pipelines are extra named pipeline factories; the ten paper
	// scenarios (T1–T5, D1–D5) are always available under their names.
	Pipelines map[string]Factory
}

func (c *Config) fill() error {
	if c.DataDir == "" {
		return fmt.Errorf("server: Config.DataDir is required")
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Runners <= 0 {
		c.Runners = 2
	}
	if c.SessionCap <= 0 {
		c.SessionCap = 1
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 64 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return nil
}

// Server is one pebbled instance. Create with New, mount Handler on an
// http.Server (or httptest), and Close on shutdown.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	queue *queue
	start time.Time

	mu       sync.Mutex
	sessions map[string]*session
}

// New builds a daemon and starts its runner pool.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: create data dir: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		queue:    newQueue(cfg.QueueDepth, cfg.SessionCap),
		start:    time.Now(),
		sessions: make(map[string]*session),
	}
	s.routes()
	s.queue.start(cfg.Runners, s.runJob)
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops admission, cancels queued and running jobs, and waits for
// the runner pool to drain.
func (s *Server) Close() {
	s.mu.Lock()
	names := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	var running []*job
	for _, name := range names {
		sess := s.sessions[name]
		sess.mu.Lock()
		for _, id := range sess.jobOrder {
			running = append(running, sess.jobs[id])
		}
		sess.mu.Unlock()
	}
	s.mu.Unlock()
	for _, j := range running {
		j.cancel()
	}
	s.queue.close()
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	s.mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	s.mux.HandleFunc("GET /v1/sessions/{name}", s.withSession(s.handleGetSession))
	s.mux.HandleFunc("POST /v1/sessions/{name}/datasets", s.withSession(s.handleUploadDataset))
	s.mux.HandleFunc("GET /v1/sessions/{name}/datasets", s.withSession(s.handleListDatasets))
	s.mux.HandleFunc("POST /v1/sessions/{name}/jobs", s.withSession(s.handleSubmitJob))
	s.mux.HandleFunc("GET /v1/sessions/{name}/jobs", s.withSession(s.handleListJobs))
	s.mux.HandleFunc("GET /v1/sessions/{name}/jobs/{id}", s.withJob(s.handleGetJob))
	s.mux.HandleFunc("POST /v1/sessions/{name}/jobs/{id}/cancel", s.withJob(s.handleCancelJob))
	s.mux.HandleFunc("GET /v1/sessions/{name}/jobs/{id}/events", s.withJob(s.handleJobEvents))
	s.mux.HandleFunc("GET /v1/sessions/{name}/jobs/{id}/result", s.withJob(s.handleJobResult))
	s.mux.HandleFunc("GET /v1/sessions/{name}/jobs/{id}/provenance", s.withJob(s.handleJobProvenance))
}

// --- plumbing ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) session(name string) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[name]
	return sess, ok
}

func (s *Server) withSession(h func(http.ResponseWriter, *http.Request, *session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sess, ok := s.session(r.PathValue("name"))
		if !ok {
			writeErr(w, http.StatusNotFound, "unknown session %q", r.PathValue("name"))
			return
		}
		h(w, r, sess)
	}
}

func (s *Server) withJob(h func(http.ResponseWriter, *http.Request, *session, *job)) http.HandlerFunc {
	return s.withSession(func(w http.ResponseWriter, r *http.Request, sess *session) {
		j, ok := sess.job(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
			return
		}
		h(w, r, sess, j)
	})
}

// --- handlers ---

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, sdk.HealthInfo{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	queued, running := s.queue.gauges()
	st := sdk.ServerStats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Queued:        queued,
		Running:       running,
		QueueDepth:    s.cfg.QueueDepth,
		SessionCap:    s.cfg.SessionCap,
		Jobs:          make(map[string]int),
	}
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	sort.Slice(sessions, func(i, k int) bool { return sessions[i].name < sessions[k].name })
	for _, sess := range sessions {
		ss := sess.stats()
		st.Sessions = append(st.Sessions, ss)
		for k, v := range ss.Jobs {
			st.Jobs[k] += v
		}
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var spec sdk.SessionSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "decode session spec: %v", err)
		return
	}
	if spec.Name == "" || strings.ContainsAny(spec.Name, "/\\") {
		writeErr(w, http.StatusBadRequest, "invalid session name %q", spec.Name)
		return
	}
	sess := newSession(spec)
	s.mu.Lock()
	if _, dup := s.sessions[spec.Name]; dup {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, "session %q already exists", spec.Name)
		return
	}
	s.sessions[spec.Name] = sess
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, sess.info())
}

func (s *Server) handleListSessions(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	sort.Slice(sessions, func(i, k int) bool { return sessions[i].name < sessions[k].name })
	out := make([]sdk.SessionInfo, 0, len(sessions))
	for _, sess := range sessions {
		out = append(out, sess.info())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetSession(w http.ResponseWriter, _ *http.Request, sess *session) {
	writeJSON(w, http.StatusOK, sess.info())
}

func (s *Server) handleUploadDataset(w http.ResponseWriter, r *http.Request, sess *session) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, "missing dataset name")
		return
	}
	parts := 0
	if p := r.URL.Query().Get("parts"); p != "" {
		n, err := strconv.Atoi(p)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "invalid parts %q", p)
			return
		}
		parts = n
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxUploadBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read upload: %v", err)
		return
	}
	if int64(len(data)) > s.cfg.MaxUploadBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", s.cfg.MaxUploadBytes)
		return
	}
	vals, err := nested.ParseJSONLines(data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "parse JSON lines: %v", err)
		return
	}
	ds := sess.base.NewDataset(name, vals, parts)
	info, err := sess.addDataset(name, ds, int64(len(data)))
	if err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request, sess *session) {
	writeJSON(w, http.StatusOK, sess.listDatasets())
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request, sess *session) {
	var req sdk.SubmitJobRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, s.cfg.MaxUploadBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decode job request: %v", err)
		return
	}
	switch req.Kind {
	case sdk.KindPipeline:
		if req.Scenario == "" && len(req.Spec) == 0 {
			writeErr(w, http.StatusBadRequest, "pipeline job needs scenario or spec")
			return
		}
	case sdk.KindTrace:
		if req.TargetJob == "" {
			writeErr(w, http.StatusBadRequest, "trace job needs target_job")
			return
		}
		if len(req.Pattern) == 0 && req.PatternText == "" && !req.TraceAll {
			writeErr(w, http.StatusBadRequest, "trace job needs pattern, pattern_text, or trace_all")
			return
		}
	default:
		writeErr(w, http.StatusBadRequest, "unknown job kind %q", req.Kind)
		return
	}
	j := sess.newJob(req.Kind, req)
	j.event(sdk.JobEvent{Kind: "status", Status: sdk.StatusQueued})
	if err := s.queue.submit(j); err != nil {
		// Admission refused: the job dies without ever being schedulable.
		j.cancel()
		j.finish(sdk.StatusFailed, err.Error())
		sess.absorb(j)
		if errors.Is(err, errQueueFull) {
			w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())))
			writeErr(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.info())
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request, sess *session) {
	writeJSON(w, http.StatusOK, sess.listJobs())
}

func (s *Server) handleGetJob(w http.ResponseWriter, _ *http.Request, _ *session, j *job) {
	writeJSON(w, http.StatusOK, j.info())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, _ *http.Request, sess *session, j *job) {
	j.mu.Lock()
	status := j.status
	j.mu.Unlock()
	switch status {
	case sdk.StatusQueued:
		j.cancel()
		if s.queue.remove(j) {
			// Never dispatched: finish it here and account for it.
			j.finish(sdk.StatusCancelled, "cancelled while queued")
			sess.absorb(j)
		}
		// Lost the race with a runner: the cancelled context fails the run
		// immediately and the runner finishes the job as cancelled.
	case sdk.StatusRunning:
		// The engine observes the context at every morsel boundary; the
		// runner transitions the job when the run unwinds.
		j.cancel()
	}
	writeJSON(w, http.StatusOK, j.info())
}

// handleJobEvents streams the job's event log as chunked JSON lines,
// starting from the beginning and following live until the job terminates
// or the client disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request, _ *session, j *job) {
	w.Header().Set("Content-Type", "application/jsonl")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		evs, terminal := j.eventsFrom(next)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		next += len(evs)
		if len(evs) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			// Drain any events appended between eventsFrom and now on the
			// next loop; terminal status means the log can only grow by the
			// final transition, which eventsFrom already saw.
			if evs, _ = j.eventsFrom(next); len(evs) == 0 {
				return
			}
			continue
		}
		if r.Context().Err() != nil {
			return
		}
		j.waitEvents(next, r.Context().Done())
	}
}

func (s *Server) handleJobResult(w http.ResponseWriter, _ *http.Request, _ *session, j *job) {
	info := j.info()
	if info.Status != sdk.StatusDone {
		writeErr(w, http.StatusConflict, "job %s is %s, not done", j.id, info.Status)
		return
	}
	switch j.kind {
	case sdk.KindTrace:
		j.mu.Lock()
		out := j.trace
		j.mu.Unlock()
		writeJSON(w, http.StatusOK, out)
	default:
		writeJSON(w, http.StatusOK, info)
	}
}

// handleJobProvenance serves the persisted .pbl artifact verbatim — the
// exact bytes the capture serialized, so clients can byte-compare daemon
// captures against local library runs.
func (s *Server) handleJobProvenance(w http.ResponseWriter, r *http.Request, _ *session, j *job) {
	info := j.info()
	if info.Status != sdk.StatusDone {
		writeErr(w, http.StatusConflict, "job %s is %s, not done", j.id, info.Status)
		return
	}
	j.mu.Lock()
	path := j.provPath
	j.mu.Unlock()
	if path == "" {
		writeErr(w, http.StatusNotFound, "job %s has no provenance artifact (capture disabled or trace job)", j.id)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "open artifact: %v", err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	io.Copy(w, f) //nolint:errcheck // client gone; nothing to do
}

// artifactPath returns the path of one job artifact file.
func (s *Server) artifactPath(sess *session, j *job, ext string) string {
	return filepath.Join(s.cfg.DataDir, fmt.Sprintf("%s-%s%s", sess.name, j.id, ext))
}
