package server

import (
	"fmt"
	"sync"
	"time"

	"pebble/internal/core"
	"pebble/internal/engine"
	"pebble/internal/obs"
	"pebble/pkg/sdk"
)

// session is one named daemon session: a core.Session configuration plus
// the datasets registered for it and the jobs submitted to it. Jobs run
// with a per-job recorder; on completion their metric snapshots fold into
// the session's running aggregates, which back /stats.
type session struct {
	name    string
	base    core.Session // configuration template; never carries a recorder
	created time.Time

	mu       sync.Mutex
	datasets map[string]*engine.Dataset
	dsBytes  map[string]int64
	dsOrder  []string
	jobs     map[string]*job
	jobOrder []string
	nextJob  int

	// /stats aggregates over finished jobs.
	jobsByStatus map[string]int
	counters     map[string]int64
	spansMS      map[string]float64
}

func newSession(spec sdk.SessionSpec) *session {
	base := core.Session{
		Partitions: spec.Partitions,
		Workers:    spec.Workers,
		Sequential: spec.Sequential,
	}
	return &session{
		name:         spec.Name,
		base:         base,
		created:      time.Now(),
		datasets:     make(map[string]*engine.Dataset),
		dsBytes:      make(map[string]int64),
		jobs:         make(map[string]*job),
		jobsByStatus: make(map[string]int),
		counters:     make(map[string]int64),
		spansMS:      make(map[string]float64),
	}
}

// exec returns the session configuration wired to a job's recorder.
func (s *session) exec(rec *obs.Recorder) core.Session {
	cfg := s.base
	cfg.Recorder = rec
	return cfg
}

func (s *session) info() sdk.SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sdk.SessionInfo{
		Name:       s.name,
		Partitions: s.base.ResolvePartitions(0),
		Workers:    s.base.Workers,
		Sequential: s.base.Sequential,
		Created:    s.created,
		Datasets:   len(s.datasets),
		Jobs:       len(s.jobs),
	}
}

// addDataset registers a dataset built from uploaded values. Duplicate
// names are rejected: jobs may already reference the existing data, and
// silent replacement would make provenance non-reproducible.
func (s *session) addDataset(name string, ds *engine.Dataset, rawBytes int64) (sdk.DatasetInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.datasets[name]; ok {
		return sdk.DatasetInfo{}, fmt.Errorf("dataset %q already registered", name)
	}
	s.datasets[name] = ds
	s.dsBytes[name] = rawBytes
	s.dsOrder = append(s.dsOrder, name)
	return sdk.DatasetInfo{Name: name, Rows: ds.Len(), Partitions: len(ds.Partitions), Bytes: rawBytes}, nil
}

func (s *session) dataset(name string) (*engine.Dataset, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ds, ok := s.datasets[name]
	return ds, ok
}

func (s *session) listDatasets() []sdk.DatasetInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]sdk.DatasetInfo, 0, len(s.dsOrder))
	for _, name := range s.dsOrder {
		ds := s.datasets[name]
		out = append(out, sdk.DatasetInfo{Name: name, Rows: ds.Len(), Partitions: len(ds.Partitions), Bytes: s.dsBytes[name]})
	}
	return out
}

// newJob mints a job with a session-scoped sequential id and registers it.
func (s *session) newJob(kind string, req sdk.SubmitJobRequest) *job {
	s.mu.Lock()
	s.nextJob++
	id := fmt.Sprintf("j%d", s.nextJob)
	s.mu.Unlock()
	j := newJob(id, kind, s, req)
	s.mu.Lock()
	s.jobs[id] = j
	s.jobOrder = append(s.jobOrder, id)
	s.mu.Unlock()
	return j
}

func (s *session) job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *session) listJobs() []sdk.JobInfo {
	s.mu.Lock()
	order := append([]string(nil), s.jobOrder...)
	jobs := make([]*job, 0, len(order))
	for _, id := range order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]sdk.JobInfo, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.info())
	}
	return out
}

// absorb folds a finished job's metrics into the session aggregates.
func (s *session) absorb(j *job) {
	snap := j.rec.Snapshot()
	info := j.info()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobsByStatus[info.Status]++
	for _, op := range snap.Ops {
		for c := obs.Counter(0); c < obs.NumCounters; c++ {
			if n := op.Counters[c]; n != 0 {
				s.counters[c.String()] += n
			}
		}
	}
	for _, sp := range snap.Spans {
		s.spansMS[sp.Span.String()] += float64(sp.Total.Nanoseconds()) / 1e6
	}
}

// stats snapshots the session aggregates for /stats.
func (s *session) stats() sdk.SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := sdk.SessionStats{
		Name:     s.name,
		Datasets: len(s.datasets),
		Jobs:     make(map[string]int, len(s.jobsByStatus)+2),
		Counters: make(map[string]int64, len(s.counters)),
		SpansMS:  make(map[string]float64, len(s.spansMS)),
	}
	for k, v := range s.jobsByStatus {
		st.Jobs[k] = v
	}
	for k, v := range s.counters {
		st.Counters[k] = v
	}
	for k, v := range s.spansMS {
		st.SpansMS[k] = v
	}
	// Queued/running jobs are not yet absorbed; count them live, walking
	// jobOrder so the traversal (and any lock interleaving) is deterministic.
	for _, id := range s.jobOrder {
		j := s.jobs[id]
		j.mu.Lock()
		status := j.status
		j.mu.Unlock()
		if !sdk.TerminalStatus(status) {
			st.Jobs[status]++
		}
	}
	return st
}
