package server_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pebble/internal/engine"
	"pebble/internal/server"
	"pebble/pkg/sdk"
)

// tinyFactory is a fast, gate-free pipeline for load tests.
func tinyFactory(rows int) server.Factory {
	return server.Factory{
		Build: func() (*engine.Pipeline, error) {
			p := engine.NewPipeline()
			src := p.Source("in")
			p.Filter(src, engine.Gt(engine.Col("n"), engine.LitInt(2)))
			return p, nil
		},
		Inputs: func(_, partitions int) (map[string]*engine.Dataset, error) {
			return map[string]*engine.Dataset{"in": intDataset(rows, partitions)}, nil
		},
	}
}

// TestHammer100Clients floods one daemon with 100 concurrent clients
// against a tiny queue. The contract under load: every submission either
// lands (and then reaches a terminal status) or is refused with the 429
// backpressure signal — no hangs, no lost jobs, and the bounded queue keeps
// admitted work at a size the daemon can hold. Run with -race, this is also
// the concurrency audit of the whole job/queue/session path.
func TestHammer100Clients(t *testing.T) {
	const clients = 100
	c := startDaemon(t, server.Config{
		Runners: 2, SessionCap: 2, QueueDepth: 4,
		Pipelines: map[string]server.Factory{"tiny": tinyFactory(32)},
	})
	mustSession(t, c, sdk.SessionSpec{Name: "h", Partitions: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var accepted, rejected, completed, otherErr atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			info, err := c.SubmitJob(ctx, "h", sdk.SubmitJobRequest{Kind: sdk.KindPipeline, Scenario: "tiny"})
			if err != nil {
				if _, full := sdk.IsQueueFull(err); full {
					rejected.Add(1)
					return
				}
				otherErr.Add(1)
				t.Errorf("submit: %v", err)
				return
			}
			accepted.Add(1)
			final, err := c.WaitJob(ctx, "h", info.ID)
			if err != nil {
				otherErr.Add(1)
				t.Errorf("wait %s: %v", info.ID, err)
				return
			}
			if final.Status == sdk.StatusDone {
				completed.Add(1)
			} else {
				t.Errorf("job %s finished %s (%s), want done", info.ID, final.Status, final.Error)
			}
			// Exercise the read paths concurrently too.
			if _, err := c.Provenance(ctx, "h", info.ID); err != nil {
				t.Errorf("provenance %s: %v", info.ID, err)
			}
		}()
	}
	wg.Wait()

	t.Logf("accepted=%d rejected=%d completed=%d", accepted.Load(), rejected.Load(), completed.Load())
	if accepted.Load()+rejected.Load() != clients || otherErr.Load() != 0 {
		t.Errorf("accounting broken: accepted %d + rejected %d != %d (other errors %d)",
			accepted.Load(), rejected.Load(), clients, otherErr.Load())
	}
	if rejected.Load() == 0 {
		t.Error("100 clients against queue depth 4 produced no 429s; admission control is not engaging")
	}
	if completed.Load() != accepted.Load() {
		t.Errorf("%d accepted but only %d completed: jobs were lost", accepted.Load(), completed.Load())
	}

	// The daemon must still be coherent after the storm.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats after hammer: %v", err)
	}
	if got := int64(stats.Jobs[sdk.StatusDone]); got != completed.Load() {
		t.Errorf("stats count %d done jobs, clients observed %d", got, completed.Load())
	}
	if stats.Queued != 0 || stats.Running != 0 {
		t.Errorf("queue not drained after hammer: queued=%d running=%d", stats.Queued, stats.Running)
	}
}
