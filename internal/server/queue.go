package server

import (
	"errors"
	"sync"

	"pebble/pkg/sdk"
)

// Admission-control errors.
var (
	// errQueueFull is the backpressure signal: the daemon's bounded queue
	// is at capacity and the client must retry later (HTTP 429).
	errQueueFull = errors.New("server: job queue full")
	// errClosed rejects submissions during shutdown.
	errClosed = errors.New("server: shutting down")
)

// queue is the daemon's admission control: a bounded global FIFO of queued
// jobs drained by a fixed pool of runner goroutines, with a per-session cap
// on concurrently running jobs. The cap is enforced at dispatch, not at
// submission — a session may queue many jobs, but runners skip over a
// session already at its cap and pick the oldest eligible job from another,
// so one chatty session cannot starve the rest (FIFO-with-skip fairness).
type queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []*job
	depth   int            // max queued jobs (backpressure bound)
	cap     int            // max running jobs per session
	running map[string]int // session name → running count
	closed  bool
	wg      sync.WaitGroup
}

func newQueue(depth, perSessionCap int) *queue {
	q := &queue{depth: depth, cap: perSessionCap, running: make(map[string]int)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// start launches n runner goroutines, each executing jobs via run.
func (q *queue) start(n int, run func(*job)) {
	for i := 0; i < n; i++ {
		q.wg.Add(1)
		go q.runner(run)
	}
}

// submit enqueues a job, failing fast with errQueueFull at capacity.
func (q *queue) submit(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errClosed
	}
	if len(q.items) >= q.depth {
		return errQueueFull
	}
	q.items = append(q.items, j)
	q.cond.Broadcast()
	return nil
}

// remove takes a still-queued job out of the queue (cancellation before
// dispatch). Returns false when a runner already claimed it.
func (q *queue) remove(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, it := range q.items {
		if it == j {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// gauges reports the queued and running counts for /stats.
func (q *queue) gauges() (queued, running int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	queued = len(q.items)
	for _, n := range q.running {
		running += n
	}
	return queued, running
}

// close stops admission, cancels every still-queued job, and waits for the
// runners (in-flight jobs observe their cancelled contexts and unwind).
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	pending := q.items
	q.items = nil
	q.cond.Broadcast()
	q.mu.Unlock()
	for _, j := range pending {
		j.cancel()
		j.finish(sdk.StatusCancelled, "server shutting down")
	}
	q.wg.Wait()
}

// pickLocked pops the oldest job whose session is under its running cap.
func (q *queue) pickLocked() *job {
	for i, j := range q.items {
		if q.running[j.sess.name] < q.cap {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return j
		}
	}
	return nil
}

func (q *queue) runner(run func(*job)) {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		var j *job
		for {
			if q.closed && len(q.items) == 0 {
				q.mu.Unlock()
				return
			}
			if j = q.pickLocked(); j != nil {
				break
			}
			q.cond.Wait()
		}
		q.running[j.sess.name]++
		q.mu.Unlock()

		run(j)

		q.mu.Lock()
		q.running[j.sess.name]--
		// A finished job may unblock a same-session job that skip-fairness
		// held back; wake the runners to re-scan.
		q.cond.Broadcast()
		q.mu.Unlock()
	}
}
