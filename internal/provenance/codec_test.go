package provenance_test

import (
	"bytes"
	"reflect"
	"testing"

	"pebble/internal/backtrace"
	"pebble/internal/core"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/provenance"
	"pebble/internal/workload"
)

func TestCodecRoundTrip(t *testing.T) {
	_, run := captureExample(t, 3)
	var buf bytes.Buffer
	n, err := run.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	back, err := provenance.ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	origOps := run.Operators()
	backOps := back.Operators()
	if len(origOps) != len(backOps) {
		t.Fatalf("op count %d vs %d", len(origOps), len(backOps))
	}
	for i := range origOps {
		o, b := origOps[i], backOps[i]
		if o.OID != b.OID || o.Type != b.Type || o.ManipUndefined != b.ManipUndefined {
			t.Errorf("op %d header mismatch: %+v vs %+v", o.OID, o, b)
		}
		if len(o.Inputs) != len(b.Inputs) {
			t.Fatalf("op %d inputs %d vs %d", o.OID, len(o.Inputs), len(b.Inputs))
		}
		for j := range o.Inputs {
			oi, bi := o.Inputs[j], b.Inputs[j]
			if oi.Pred != bi.Pred || oi.SourceName != bi.SourceName || oi.AccessUndefined != bi.AccessUndefined {
				t.Errorf("op %d input %d mismatch", o.OID, j)
			}
			if len(oi.Accessed) != len(bi.Accessed) {
				t.Fatalf("op %d accessed %d vs %d", o.OID, len(oi.Accessed), len(bi.Accessed))
			}
			for k := range oi.Accessed {
				if oi.Accessed[k].String() != bi.Accessed[k].String() {
					t.Errorf("op %d accessed[%d] %s vs %s", o.OID, k, oi.Accessed[k], bi.Accessed[k])
				}
			}
			if !reflect.DeepEqual(oi.Schema, bi.Schema) {
				t.Errorf("op %d schema %v vs %v", o.OID, oi.Schema, bi.Schema)
			}
		}
		if len(o.Manipulated) != len(b.Manipulated) {
			t.Fatalf("op %d manipulated %d vs %d", o.OID, len(o.Manipulated), len(b.Manipulated))
		}
		for j := range o.Manipulated {
			om, bm := o.Manipulated[j], b.Manipulated[j]
			if om.In.String() != bm.In.String() || om.Out.String() != bm.Out.String() || om.GroupKey != bm.GroupKey {
				t.Errorf("op %d mapping %d mismatch: %v vs %v", o.OID, j, om, bm)
			}
		}
		if !reflect.DeepEqual(o.Unary, b.Unary) || !reflect.DeepEqual(o.Binary, b.Binary) ||
			!reflect.DeepEqual(o.Flatten, b.Flatten) || !reflect.DeepEqual(o.Agg, b.Agg) ||
			!reflect.DeepEqual(o.SourceIDs, b.SourceIDs) {
			t.Errorf("op %d associations mismatch", o.OID)
		}
	}
}

// TestQueryAfterReload: a query over a deserialised run gives the same
// answer as over the in-memory run — capture now, audit much later.
func TestQueryAfterReload(t *testing.T) {
	res, run := captureExample(t, 2)
	var buf bytes.Buffer
	if _, err := run.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := provenance.ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := backtrace.NewStructure()
	for _, row := range res.Output.Rows() {
		b.Add(row.ID, core.TreeFromValue(row.Value))
	}
	t1, err := backtrace.Trace(run, 9, b.Clone())
	if err != nil {
		t.Fatal(err)
	}
	t2, err := backtrace.Trace(reloaded, 9, b.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for oid := range t1.BySource {
		a, bIDs := t1.Structure(oid).IDs(), t2.Structure(oid).IDs()
		if !reflect.DeepEqual(a, bIDs) {
			t.Errorf("source %d ids differ after reload: %v vs %v", oid, a, bIDs)
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("PB"),
		[]byte("XXXX\x01\x00\x00\x00\x00\x00"),
		[]byte("PBLP\x63\x00\x00\x00\x00\x00"), // bad version
	}
	for i, data := range cases {
		if _, err := provenance.ReadRun(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Truncated valid stream.
	_, run := captureExample(t, 1)
	var buf bytes.Buffer
	if _, err := run.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := provenance.ReadRun(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestCodecHandlesMapAndJoin(t *testing.T) {
	// A pipeline covering map (A=M=⊥) and join (schemas) round-trips too.
	p := engine.NewPipeline()
	l := p.Source("in")
	m := p.Map(l, engine.MapFunc{Name: "wrap", Fn: func(v nested.Value) (nested.Value, error) {
		return v, nil
	}})
	sel := p.Select(m, engine.Column("a1", "text"))
	r := p.Source("in")
	sel2 := p.Select(r, engine.Column("a2", "text"))
	p.Join(sel, sel2, engine.Col("a1"), engine.Col("a2"))
	inputs := workload.ExampleInput(2)
	inputs["in"] = inputs["tweets.json"]
	_, run, err := provenance.Capture(p, inputs, engine.Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := run.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := provenance.ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	mo, _ := back.Op(m.ID())
	if !mo.ManipUndefined || !mo.Inputs[0].AccessUndefined {
		t.Error("map ⊥ flags lost in round trip")
	}
	jo, _ := back.Op(p.Sink().ID())
	if len(jo.Inputs[0].Schema) == 0 || len(jo.Inputs[1].Schema) == 0 {
		t.Error("join schemas lost in round trip")
	}
}
