package provenance_test

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"pebble/internal/backtrace"
	"pebble/internal/core"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/provenance"
	"pebble/internal/workload"
)

func TestCodecRoundTrip(t *testing.T) {
	_, run := captureExample(t, 3)
	var buf bytes.Buffer
	n, err := run.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	back, err := provenance.ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	origOps := run.Operators()
	backOps := back.Operators()
	if len(origOps) != len(backOps) {
		t.Fatalf("op count %d vs %d", len(origOps), len(backOps))
	}
	for i := range origOps {
		o, b := origOps[i], backOps[i]
		if o.OID != b.OID || o.Type != b.Type || o.ManipUndefined != b.ManipUndefined {
			t.Errorf("op %d header mismatch: %+v vs %+v", o.OID, o, b)
		}
		if len(o.Inputs) != len(b.Inputs) {
			t.Fatalf("op %d inputs %d vs %d", o.OID, len(o.Inputs), len(b.Inputs))
		}
		for j := range o.Inputs {
			oi, bi := o.Inputs[j], b.Inputs[j]
			if oi.Pred != bi.Pred || oi.SourceName != bi.SourceName || oi.AccessUndefined != bi.AccessUndefined {
				t.Errorf("op %d input %d mismatch", o.OID, j)
			}
			if len(oi.Accessed) != len(bi.Accessed) {
				t.Fatalf("op %d accessed %d vs %d", o.OID, len(oi.Accessed), len(bi.Accessed))
			}
			for k := range oi.Accessed {
				if oi.Accessed[k].String() != bi.Accessed[k].String() {
					t.Errorf("op %d accessed[%d] %s vs %s", o.OID, k, oi.Accessed[k], bi.Accessed[k])
				}
			}
			if !reflect.DeepEqual(oi.Schema, bi.Schema) {
				t.Errorf("op %d schema %v vs %v", o.OID, oi.Schema, bi.Schema)
			}
		}
		if len(o.Manipulated) != len(b.Manipulated) {
			t.Fatalf("op %d manipulated %d vs %d", o.OID, len(o.Manipulated), len(b.Manipulated))
		}
		for j := range o.Manipulated {
			om, bm := o.Manipulated[j], b.Manipulated[j]
			if om.In.String() != bm.In.String() || om.Out.String() != bm.Out.String() || om.GroupKey != bm.GroupKey {
				t.Errorf("op %d mapping %d mismatch: %v vs %v", o.OID, j, om, bm)
			}
		}
		if !reflect.DeepEqual(o.Unary, b.Unary) || !reflect.DeepEqual(o.Binary, b.Binary) ||
			!reflect.DeepEqual(o.Flatten, b.Flatten) || !reflect.DeepEqual(o.Agg, b.Agg) ||
			!reflect.DeepEqual(o.SourceIDs, b.SourceIDs) {
			t.Errorf("op %d associations mismatch", o.OID)
		}
	}
}

// TestQueryAfterReload: a query over a deserialised run gives the same
// answer as over the in-memory run — capture now, audit much later.
func TestQueryAfterReload(t *testing.T) {
	res, run := captureExample(t, 2)
	var buf bytes.Buffer
	if _, err := run.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := provenance.ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := backtrace.NewStructure()
	for _, row := range res.Output.Rows() {
		b.Add(row.ID, core.TreeFromValue(row.Value))
	}
	t1, err := backtrace.Trace(run, 9, b.Clone())
	if err != nil {
		t.Fatal(err)
	}
	t2, err := backtrace.Trace(reloaded, 9, b.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for oid := range t1.BySource {
		a, bIDs := t1.Structure(oid).IDs(), t2.Structure(oid).IDs()
		if !reflect.DeepEqual(a, bIDs) {
			t.Errorf("source %d ids differ after reload: %v vs %v", oid, a, bIDs)
		}
	}
}

// rawStream hand-assembles a codec stream from primitives so
// malformed-input cases can corrupt precisely one field.
type rawStream struct{ bytes.Buffer }

func (s *rawStream) u8(v uint8)    { s.WriteByte(v) }
func (s *rawStream) u16(v uint16)  { s.Write(binary.LittleEndian.AppendUint16(nil, v)) }
func (s *rawStream) u32(v uint32)  { s.Write(binary.LittleEndian.AppendUint32(nil, v)) }
func (s *rawStream) str(v string)  { s.u32(uint32(len(v))); s.WriteString(v) }
func (s *rawStream) uv(v uint64)   { s.Write(binary.AppendUvarint(nil, v)) }
func (s *rawStream) dstr(v string) { s.uv(uint64(len(v))); s.WriteString(v) }

// header writes a valid magic + version + op count prefix.
func (s *rawStream) header(nOps uint32) *rawStream {
	s.WriteString("PBLP")
	s.u16(1)
	s.u32(nOps)
	return s
}

// headerV2 writes a valid v2 magic + version + dictionary prefix.
func (s *rawStream) headerV2(dict ...string) *rawStream {
	s.WriteString("PBLP")
	s.u16(2)
	s.uv(uint64(len(dict)))
	for _, e := range dict {
		s.dstr(e)
	}
	return s
}

// TestCodecRejectsGarbage feeds the decoder a table of corrupted streams —
// damaged headers plus field-precise corruptions of an otherwise valid
// operator record — and then every strict prefix of a real captured stream.
// All must return an error rather than a silently wrong Run.
func TestCodecRejectsGarbage(t *testing.T) {
	_, run := captureExample(t, 1)
	var buf bytes.Buffer
	if _, err := run.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// corrupt returns a copy of the valid stream with one byte overwritten.
	corrupt := func(off int, b byte) []byte {
		cp := append([]byte(nil), valid...)
		cp[off] = b
		return cp
	}
	unknownTag := new(rawStream).header(1)
	unknownTag.u32(7)        // OID
	unknownTag.str("filter") // type
	unknownTag.u8(0)         // ManipUndefined
	unknownTag.u32(0)        // no inputs
	unknownTag.u32(0)        // no mappings
	unknownTag.u8(9)         // association tag 9 does not exist
	hugeString := new(rawStream).header(1)
	hugeString.u32(7)
	hugeString.u32(1 << 21) // type-string length above the decoder's limit

	// v2-specific corruptions: the columnar path has its own failure modes —
	// dictionary references, declared counts, and its own tag byte.
	v2op := func(body func(s *rawStream)) []byte {
		s := new(rawStream).headerV2("filter")
		s.uv(1) // one operator
		body(s)
		return s.Bytes()
	}
	v2UnknownTag := v2op(func(s *rawStream) {
		s.uv(7) // OID
		s.uv(0) // type ref → "filter"
		s.u8(0) // ManipUndefined
		s.uv(0) // no inputs
		s.uv(0) // no mappings
		s.u8(9) // association tag 9 does not exist
	})
	v2DictRefOutOfRange := v2op(func(s *rawStream) {
		s.uv(7)
		s.uv(5) // type ref 5, but the dictionary has one entry
	})
	v2HugeDict := new(rawStream)
	v2HugeDict.WriteString("PBLP")
	v2HugeDict.u16(2)
	v2HugeDict.uv(1)
	v2HugeDict.uv(1 << 21) // dictionary string above the decoder's limit
	v2HugeCount := new(rawStream)
	v2HugeCount.WriteString("PBLP")
	v2HugeCount.u16(2)
	v2HugeCount.uv(1 << 33) // dictionary count above the sanity cap
	v2EmptyOutPath := new(rawStream).headerV2("")
	v2EmptyOutPath.uv(1) // one operator
	v2EmptyOutPath.uv(7)
	v2EmptyOutPath.uv(0) // type "" (allowed — opaque string)
	v2EmptyOutPath.u8(0)
	v2EmptyOutPath.uv(0) // no inputs
	v2EmptyOutPath.uv(1) // one mapping
	v2EmptyOutPath.uv(0) // In "" → nil, fine
	v2EmptyOutPath.uv(0) // Out "" → path.Parse rejects the empty path

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short magic", []byte("PB")},
		{"wrong magic", corrupt(0, 'X')},
		{"wrong magic last byte", corrupt(3, 'X')},
		{"future version", corrupt(4, 0x63)},
		{"header only", new(rawStream).header(3).Bytes()},
		{"unknown association tag", unknownTag.Bytes()},
		{"oversized string length", hugeString.Bytes()},
		{"v2 header only", new(rawStream).headerV2("filter").Bytes()},
		{"v2 unknown association tag", v2UnknownTag},
		{"v2 dictionary ref out of range", v2DictRefOutOfRange},
		{"v2 oversized dictionary string", v2HugeDict.Bytes()},
		{"v2 oversized count", v2HugeCount.Bytes()},
		{"v2 empty mapping output path", v2EmptyOutPath.Bytes()},
	}
	for _, c := range cases {
		if _, err := provenance.ReadRun(bytes.NewReader(c.data)); err == nil {
			t.Errorf("%s: corrupted stream accepted", c.name)
		}
	}

	// Every strict prefix of a valid stream truncates some field or record
	// and must be rejected — neither format has an optional trailer. The
	// default WriteTo stream covers v2; the explicit v1 stream keeps the
	// legacy fixed-width path honest.
	var v1buf bytes.Buffer
	if _, err := run.WriteToVersion(&v1buf, 1); err != nil {
		t.Fatal(err)
	}
	for _, stream := range [][]byte{valid, v1buf.Bytes()} {
		for n := 0; n < len(stream); n++ {
			if _, err := provenance.ReadRun(bytes.NewReader(stream[:n])); err == nil {
				t.Fatalf("truncated stream of %d/%d bytes accepted", n, len(stream))
			}
		}
	}
}

func TestCodecHandlesMapAndJoin(t *testing.T) {
	// A pipeline covering map (A=M=⊥) and join (schemas) round-trips too.
	p := engine.NewPipeline()
	l := p.Source("in")
	m := p.Map(l, engine.MapFunc{Name: "wrap", Fn: func(v nested.Value) (nested.Value, error) {
		return v, nil
	}})
	sel := p.Select(m, engine.Column("a1", "text"))
	r := p.Source("in")
	sel2 := p.Select(r, engine.Column("a2", "text"))
	p.Join(sel, sel2, engine.Col("a1"), engine.Col("a2"))
	inputs := workload.ExampleInput(2)
	inputs["in"] = inputs["tweets.json"]
	_, run, err := provenance.Capture(p, inputs, engine.Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := run.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := provenance.ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	mo, _ := back.Op(m.ID())
	if !mo.ManipUndefined || !mo.Inputs[0].AccessUndefined {
		t.Error("map ⊥ flags lost in round trip")
	}
	jo, _ := back.Op(p.Sink().ID())
	if len(jo.Inputs[0].Schema) == 0 || len(jo.Inputs[1].Schema) == 0 {
		t.Error("join schemas lost in round trip")
	}
}
