package provenance

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"pebble/internal/engine"
	"pebble/internal/obs"
	"pebble/internal/path"
)

// Lazy decoding: ReadRunLazy returns a Run whose association columns stay
// encoded until an operator's bag is first touched. A backtrace visits only
// the operators on its walk — typically a handful out of a large run — so
// the load phase should not pay for materialising every column.
//
// The v2 wire format is unchanged (it has no optional trailer; every strict
// prefix of a stream is invalid, and the codec tests pin that). Instead of a
// serialized directory, ReadRunLazy derives a per-operator offset directory
// with a validating skip-scan: the static parts (dictionary, operator
// headers, paths, mappings) decode eagerly exactly like ReadRun, and each
// association block is structurally validated — count caps, varint
// boundaries, aggregate length sums — and recorded as a byte region of the
// backing slice. Because the scan proves every region well-formed up front,
// materialisation is infallible and corrupt streams fail at load time, just
// like the eager path.

// AssocKind enumerates the association bag layouts of Tab. 6; the values
// coincide with the codec's wire tags.
type AssocKind uint8

const (
	// AssocNone marks an operator that captured no association bag.
	AssocNone AssocKind = iota
	// AssocSource is the ⟨id, orig_id⟩ layout of source operators.
	AssocSource
	// AssocUnary is the ⟨id_i, id_o⟩ layout of map, select, and filter.
	AssocUnary
	// AssocBinary is the ⟨id_i1, id_i2, id_o⟩ layout of join and union.
	AssocBinary
	// AssocFlatten is the ⟨id_i, pos, id_o⟩ layout of flatten.
	AssocFlatten
	// AssocAgg is the ⟨ids_i, id_o⟩ layout of grouping/aggregation.
	AssocAgg
)

// lazyStream is the shared backing state of one lazily loaded run: the raw
// encoded bytes plus the materialisation accounting the query sweep reports.
type lazyStream struct {
	data    []byte
	total   int64        // bytes of all association regions
	decoded atomic.Int64 // bytes of regions materialised so far
}

// lazyAssoc defers one operator's association columns: a validated byte
// region of the stream plus the counts the scan already proved consistent.
type lazyAssoc struct {
	src      *lazyStream
	once     sync.Once
	tag      AssocKind
	n        int // association rows
	totalIns int // AssocAgg only: total Ins elements across all groups
	off, end int // region [off, end): count varint + columns
}

// materialize decodes the operator's association columns on first touch.
func (o *Operator) materialize() {
	if o.lazy == nil {
		return
	}
	o.lazy.once.Do(func() { o.lazy.decode(o) })
}

// AssocKind returns the layout of the operator's association bag without
// materialising it.
func (o *Operator) AssocKind() AssocKind {
	if o.lazy != nil {
		return o.lazy.tag
	}
	switch {
	case o.SourceIDs != nil:
		return AssocSource
	case o.Unary != nil:
		return AssocUnary
	case o.Binary != nil:
		return AssocBinary
	case o.Flatten != nil:
		return AssocFlatten
	case o.Agg != nil:
		return AssocAgg
	}
	return AssocNone
}

// UnaryAssocs returns the ⟨id_i, id_o⟩ bag, decoding it on first touch for
// lazily loaded runs. All query-side consumers go through these accessors;
// the exported fields stay valid for eagerly built or decoded runs.
func (o *Operator) UnaryAssocs() []UnaryAssoc {
	o.materialize()
	return o.Unary
}

// BinaryAssocs returns the ⟨id_i1, id_i2, id_o⟩ bag, decoding on first touch.
func (o *Operator) BinaryAssocs() []BinaryAssoc {
	o.materialize()
	return o.Binary
}

// FlattenAssocs returns the ⟨id_i, pos, id_o⟩ bag, decoding on first touch.
func (o *Operator) FlattenAssocs() []FlattenAssoc {
	o.materialize()
	return o.Flatten
}

// AggAssocs returns the ⟨ids_i, id_o⟩ bag, decoding on first touch.
func (o *Operator) AggAssocs() []AggAssoc {
	o.materialize()
	return o.Agg
}

// SourceAssocs returns the ⟨id, orig_id⟩ bag, decoding on first touch.
func (o *Operator) SourceAssocs() []SourceAssoc {
	o.materialize()
	return o.SourceIDs
}

// ContentHash returns the FNV-1a hash of the encoded stream the run was
// loaded from, used to pair a run with its persisted index sidecar. Only
// byte-loaded runs (ReadRunLazy) carry a hash; ok is false otherwise.
func (r *Run) ContentHash() (uint64, bool) { return r.hash, r.hasHash }

// AssocBytesTotal returns the encoded size of all association regions of a
// lazily loaded v2 run (0 for eager or in-memory runs) — the bytes an eager
// decode materialises unconditionally.
func (r *Run) AssocBytesTotal() int64 {
	if r.lazy == nil {
		return 0
	}
	return r.lazy.total
}

// AssocBytesDecoded returns how many association-region bytes have been
// materialised so far; a trace that visits few operators keeps this far
// below AssocBytesTotal.
func (r *Run) AssocBytesDecoded() int64 {
	if r.lazy == nil {
		return 0
	}
	return r.lazy.decoded.Load()
}

// HashStream fingerprints an encoded stream — the content hash sidecars are
// validated against. It is the FNV-1a mixing step folded over the length and
// 8-byte little-endian words (tail bytes fold individually), so hashing runs
// at word speed: reload paths hash every stream and sidecar they open, and a
// byte-at-a-time hash would rival the decode it guards.
func HashStream(data []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := (uint64(offset64) ^ uint64(len(data))) * prime64
	for len(data) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(data)) * prime64
		data = data[8:]
	}
	for _, b := range data {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}

// ReadRunLazy loads a run from its encoded bytes, deferring association
// column decode until an operator's bag is first touched. The stream is
// fully validated up front (a corrupt or truncated stream errors here, never
// later), so the accessors are infallible. v1 streams have no columnar
// layout and decode fully; they still carry the content hash.
func ReadRunLazy(data []byte) (*Run, error) {
	prefix := len(codecMagic) + 2
	if len(data) < prefix {
		return nil, io.ErrUnexpectedEOF
	}
	if string(data[:len(codecMagic)]) != codecMagic {
		return nil, fmt.Errorf("provenance: bad magic %q", data[:len(codecMagic)])
	}
	switch v := binary.LittleEndian.Uint16(data[len(codecMagic):prefix]); v {
	case codecVersionV1:
		run, err := ReadRun(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		run.hash, run.hasHash = HashStream(data), true
		return run, nil
	case codecVersionV2:
		return scanRunV2(data, prefix)
	default:
		return nil, fmt.Errorf("provenance: unsupported version %d", v)
	}
}

// ReadRunLazyObserved loads like ReadRunLazy and reports the load duration
// as obs.SpanRunLoad (a nil recorder is fine).
func ReadRunLazyObserved(data []byte, rec *obs.Recorder) (*Run, error) {
	defer rec.StartSpan(obs.SpanRunLoad)()
	return ReadRunLazy(data)
}

// ReadRunObserved loads eagerly like ReadRun and reports the load duration
// as obs.SpanRunLoad.
func ReadRunObserved(r io.Reader, rec *obs.Recorder) (*Run, error) {
	defer rec.StartSpan(obs.SpanRunLoad)()
	return ReadRun(r)
}

// scanRunV2 performs the validating skip-scan over a v2 stream: static parts
// decode eagerly, association blocks are verified and recorded as lazy
// regions.
func scanRunV2(data []byte, pos int) (*Run, error) {
	d := &sdecoder{data: data, pos: pos}
	nDict := d.scount("dictionary")
	d.dict = make([]string, 0, capHint(nDict))
	for i := 0; i < nDict && d.err == nil; i++ {
		d.dict = append(d.dict, d.rawString())
	}
	nOps := d.scount("operator")
	if d.err != nil {
		return nil, d.err
	}
	ls := &lazyStream{data: data}
	run := &Run{ops: make(map[int]*Operator, capHint(nOps))}
	for i := 0; i < nOps; i++ {
		op := d.scanOp(ls)
		if d.err != nil {
			return nil, d.err
		}
		run.ops[op.OID] = op
		run.order = append(run.order, op.OID)
	}
	run.lazy = ls
	run.hash, run.hasHash = HashStream(data), true
	return run, nil
}

var errVarintOverflow = errors.New("provenance: varint overflows a 64-bit integer")

// sdecoder reads varint primitives from a byte slice, remembering the first
// error — the slice-backed sibling of v2decoder.
type sdecoder struct {
	data []byte
	pos  int
	dict []string
	err  error
}

func (d *sdecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	// Single-byte fast path: identifier deltas are tiny, so the vast majority
	// of varints in a stream are one byte.
	if d.pos < len(d.data) {
		if b := d.data[d.pos]; b < 0x80 {
			d.pos++
			return uint64(b)
		}
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		if n == 0 {
			d.err = io.ErrUnexpectedEOF
		} else {
			d.err = errVarintOverflow
		}
		return 0
	}
	d.pos += n
	return v
}

func (d *sdecoder) scount(what string) int {
	v := d.uvarint()
	if d.err == nil && v > maxV2Count {
		d.err = fmt.Errorf("provenance: %s count %d exceeds limit", what, v)
		return 0
	}
	return int(v)
}

func (d *sdecoder) byte() uint8 {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.data) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *sdecoder) bool() bool { return d.byte() != 0 }

func (d *sdecoder) rawString() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	const maxStr = 1 << 20
	if n > maxStr {
		d.err = fmt.Errorf("provenance: string length %d exceeds limit", n)
		return ""
	}
	if d.pos+int(n) > len(d.data) {
		d.err = io.ErrUnexpectedEOF
		return ""
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

func (d *sdecoder) ref(what string) string {
	i := d.uvarint()
	if d.err != nil {
		return ""
	}
	if i >= uint64(len(d.dict)) {
		d.err = fmt.Errorf("provenance: %s dictionary reference %d out of range (dictionary has %d entries)", what, i, len(d.dict))
		return ""
	}
	return d.dict[i]
}

func (d *sdecoder) path(what string) path.Path {
	s := d.ref(what)
	if d.err != nil {
		return nil
	}
	return d.parse(s)
}

func (d *sdecoder) parse(s string) path.Path {
	p, err := path.Parse(s)
	if err != nil && d.err == nil {
		d.err = err
	}
	return p
}

// skipVarints advances past n varints without decoding their values,
// rejecting truncation and overlong encodings exactly like binary.ReadUvarint
// would.
func (d *sdecoder) skipVarints(n int) {
	if d.err != nil {
		return
	}
	data, p := d.data, d.pos
	for i := 0; i < n; i++ {
		for j := 0; ; j++ {
			if p >= len(data) {
				d.err = io.ErrUnexpectedEOF
				d.pos = p
				return
			}
			b := data[p]
			p++
			if b < 0x80 {
				if j == binary.MaxVarintLen64-1 && b > 1 {
					d.err = errVarintOverflow
					d.pos = p
					return
				}
				break
			}
			if j == binary.MaxVarintLen64-1 {
				d.err = errVarintOverflow
				d.pos = p
				return
			}
		}
	}
	d.pos = p
}

// scanOp decodes one operator's static part and validates its association
// block into a lazy region.
func (d *sdecoder) scanOp(ls *lazyStream) *Operator {
	op := &Operator{}
	op.OID = int(d.uvarint())
	op.Type = engine.OpType(d.ref("operator type"))
	op.ManipUndefined = d.bool()
	nIn := d.scount("input")
	for j := 0; j < nIn && d.err == nil; j++ {
		var in engine.InputInfo
		in.Pred = int(d.uvarint())
		in.SourceName = d.ref("source name")
		in.AccessUndefined = d.bool()
		nAcc := d.scount("accessed path")
		for k := 0; k < nAcc && d.err == nil; k++ {
			in.Accessed = append(in.Accessed, d.path("accessed path"))
		}
		nSchema := d.scount("schema string")
		for k := 0; k < nSchema && d.err == nil; k++ {
			in.Schema = append(in.Schema, d.ref("schema string"))
		}
		op.Inputs = append(op.Inputs, in)
	}
	nManip := d.scount("mapping")
	for j := 0; j < nManip && d.err == nil; j++ {
		var m engine.Mapping
		if in := d.ref("mapping input path"); in != "" && d.err == nil {
			m.In = d.parse(in)
		}
		m.Out = d.path("mapping output path")
		m.GroupKey = d.bool()
		op.Manipulated = append(op.Manipulated, m)
	}
	d.scanAssocs(op, ls)
	return op
}

// scanAssocs validates one association block and records it as a lazy
// region instead of materialising the columns.
func (d *sdecoder) scanAssocs(op *Operator, ls *lazyStream) {
	tag := d.byte()
	if d.err != nil {
		return
	}
	start := d.pos
	var n, totalIns int
	switch AssocKind(tag) {
	case AssocNone:
		return
	case AssocSource:
		n = d.scount("source association")
		d.skipVarints(2 * n)
	case AssocUnary:
		n = d.scount("unary association")
		d.skipVarints(2 * n)
	case AssocBinary:
		n = d.scount("binary association")
		d.skipVarints(3 * n)
	case AssocFlatten:
		n = d.scount("flatten association")
		d.skipVarints(3 * n)
	case AssocAgg:
		n = d.scount("aggregate association")
		d.skipVarints(n) // Δ(Out) column
		for i := 0; i < n && d.err == nil; i++ {
			l := d.uvarint()
			if d.err == nil && (l > maxV2Count || totalIns+int(l) < totalIns) {
				d.err = fmt.Errorf("provenance: aggregate input count %d exceeds limit", l)
			}
			totalIns += int(l)
		}
		d.skipVarints(totalIns)
	default:
		d.err = fmt.Errorf("provenance: unknown association tag %d", tag)
		return
	}
	if d.err != nil {
		return
	}
	op.lazy = &lazyAssoc{src: ls, tag: AssocKind(tag), n: n, totalIns: totalIns, off: start, end: d.pos}
	ls.total += int64(d.pos - start)
}

// decode materialises the deferred columns. The load-time scan proved the
// region well-formed, so a decode failure here is a bug, not an input error
// — it panics rather than silently returning partial provenance.
func (l *lazyAssoc) decode(op *Operator) {
	d := &sdecoder{data: l.src.data[:l.end], pos: l.off}
	switch l.tag {
	case AssocSource:
		n := d.scount("source association")
		ids := d.lazyDeltaColumn(n)
		origs := d.lazyDeltaColumn(n)
		op.SourceIDs = make([]SourceAssoc, n)
		for j := range op.SourceIDs {
			op.SourceIDs[j] = SourceAssoc{ID: ids[j], OrigID: origs[j]}
		}
	case AssocUnary:
		n := d.scount("unary association")
		ins := d.lazyDeltaColumn(n)
		outs := d.lazyDeltaColumn(n)
		op.Unary = make([]UnaryAssoc, n)
		for j := range op.Unary {
			op.Unary[j] = UnaryAssoc{In: ins[j], Out: outs[j]}
		}
	case AssocBinary:
		n := d.scount("binary association")
		lefts := d.lazyDeltaColumn(n)
		rights := d.lazyDeltaColumn(n)
		outs := d.lazyDeltaColumn(n)
		op.Binary = make([]BinaryAssoc, n)
		for j := range op.Binary {
			op.Binary[j] = BinaryAssoc{Left: lefts[j], Right: rights[j], Out: outs[j]}
		}
	case AssocFlatten:
		n := d.scount("flatten association")
		ins := d.lazyDeltaColumn(n)
		poss := make([]uint64, n)
		for j := 0; j < n && d.err == nil; j++ {
			poss[j] = d.uvarint()
		}
		outs := d.lazyDeltaColumn(n)
		op.Flatten = make([]FlattenAssoc, n)
		for j := range op.Flatten {
			op.Flatten[j] = FlattenAssoc{In: ins[j], Pos: int(poss[j]), Out: outs[j]}
		}
	case AssocAgg:
		n := d.scount("aggregate association")
		outs := d.lazyDeltaColumn(n)
		lens := make([]int, n)
		for j := 0; j < n && d.err == nil; j++ {
			lens[j] = int(d.uvarint())
		}
		flat := d.lazyDeltaColumn(l.totalIns)
		op.Agg = make([]AggAssoc, n)
		off := 0
		for j := range op.Agg {
			op.Agg[j] = AggAssoc{Out: outs[j], Ins: flat[off : off+lens[j] : off+lens[j]]}
			off += lens[j]
		}
	}
	if d.err != nil || d.pos != l.end {
		panic(fmt.Sprintf("provenance: lazy association decode diverged from validated scan (err=%v pos=%d end=%d)", d.err, d.pos, l.end))
	}
	l.src.decoded.Add(int64(l.end - l.off))
}

// lazyDeltaColumn decodes n zigzag-delta varints from a validated region;
// n is trusted because the scan bounded it by actual region bytes.
func (d *sdecoder) lazyDeltaColumn(n int) []int64 {
	out := make([]int64, n)
	var prev int64
	for i := 0; i < n && d.err == nil; i++ {
		u := d.uvarint()
		prev += int64(u>>1) ^ -int64(u&1)
		out[i] = prev
	}
	return out
}
