// Package provenance holds the lightweight structural provenance model of
// Sec. 5.1: for every operator a 5-tuple P = ⟨oid, type, I, M, P⟩ whose
// static part (accessed paths I.A and manipulation mapping M, both on schema
// level) is recorded once per operator, and whose association bag P records
// per-item top-level identifiers in the operator-dependent layouts of Tab. 6.
package provenance

import (
	"fmt"
	"strings"

	"pebble/internal/engine"
)

// UnaryAssoc is ⟨id_i, id_o⟩ for map, select, and filter.
type UnaryAssoc struct {
	In, Out int64
}

// BinaryAssoc is ⟨id_i1, id_i2, id_o⟩ for join and union; for union the
// absent side is -1.
type BinaryAssoc struct {
	Left, Right, Out int64
}

// FlattenAssoc is ⟨id_i, pos, id_o⟩ with the 1-based position of the
// flattened element within its collection.
type FlattenAssoc struct {
	In  int64
	Pos int
	Out int64
}

// AggAssoc is ⟨ids_i, id_o⟩; the order of Ins equals the element order of
// every nested collection the aggregation produced for this group.
type AggAssoc struct {
	Ins []int64
	Out int64
}

// SourceAssoc links a source-assigned identifier to the identifier the row
// carried in the raw input dataset.
type SourceAssoc struct {
	ID     int64
	OrigID int64
}

// Operator is the captured provenance P of one operator.
type Operator struct {
	OID  int
	Type engine.OpType
	// Inputs mirrors I: predecessor operator (or source dataset) plus the
	// accessed paths A on schema level.
	Inputs []engine.InputInfo
	// Manipulated is the schema-level manipulation mapping M.
	Manipulated []engine.Mapping
	// ManipUndefined marks M = ⊥ (map operator).
	ManipUndefined bool

	// The association bag P, in the operator-dependent layout of Tab. 6.
	// Exactly one of the following is populated (by operator type). For
	// lazily loaded runs (ReadRunLazy) the populated field stays nil until
	// first touch — read the bag through the *Assocs accessors in lazy.go,
	// which materialise on demand.
	Unary     []UnaryAssoc
	Binary    []BinaryAssoc
	Flatten   []FlattenAssoc
	Agg       []AggAssoc
	SourceIDs []SourceAssoc

	// lazy, when non-nil, defers the association columns of a lazily loaded
	// run to first touch (see lazy.go).
	lazy *lazyAssoc
}

// OpID identifies an operator within a pipeline and its captured
// provenance run. The engine's pipeline builder assigns them in plan order
// (1-based); they are stable across serialisation, so an OpID noted when
// the run was captured still addresses the same operator after reload.
type OpID int

// Run is the provenance captured during one pipeline execution.
type Run struct {
	ops   map[int]*Operator
	order []int

	// lazy is the shared backing stream of a lazily loaded run (nil for
	// eagerly built or decoded runs); hash is the FNV-1a content hash of the
	// encoded stream when the run was loaded from bytes (see ContentHash).
	lazy    *lazyStream
	hash    uint64
	hasHash bool
}

// Op returns the operator provenance for the given operator identifier.
func (r *Run) Op(oid int) (*Operator, bool) {
	op, ok := r.ops[oid]
	return op, ok
}

// OpByID returns the operator provenance addressed by the typed OpID — the
// query-side entry point for backtracing from a specific operator (see
// Captured.TraceAt and pebble.TraceFrom).
func (r *Run) OpByID(id OpID) (*Operator, bool) {
	return r.Op(int(id))
}

// ID returns the operator's typed identifier.
func (o *Operator) ID() OpID { return OpID(o.OID) }

// Operators returns the captured operators in execution order.
func (r *Run) Operators() []*Operator {
	out := make([]*Operator, 0, len(r.order))
	for _, oid := range r.order {
		out = append(out, r.ops[oid])
	}
	return out
}

// String summarises the captured provenance.
func (r *Run) String() string {
	var sb strings.Builder
	for _, op := range r.Operators() {
		fmt.Fprintf(&sb, "P%d type=%s assocs=%d\n", op.OID, op.Type, op.AssocCount())
	}
	return sb.String()
}

// AssocCount returns the number of association rows of the operator. For a
// lazily loaded operator the count comes from the load-time scan, without
// materialising the columns.
func (o *Operator) AssocCount() int {
	if o.lazy != nil {
		return o.lazy.n
	}
	switch {
	case o.Unary != nil:
		return len(o.Unary)
	case o.Binary != nil:
		return len(o.Binary)
	case o.Flatten != nil:
		return len(o.Flatten)
	case o.Agg != nil:
		return len(o.Agg)
	case o.SourceIDs != nil:
		return len(o.SourceIDs)
	}
	return 0
}

// Sizes reports the storage footprint of the captured provenance, split the
// way Fig. 8 stacks its bars: the lineage share (top-level identifier
// associations, which a Titian-style solution stores too) and the structural
// extra (flatten positions plus the schema-level path and mapping strings).
type Sizes struct {
	LineageBytes    int64
	StructuralExtra int64
}

// Total returns the combined footprint.
func (s Sizes) Total() int64 { return s.LineageBytes + s.StructuralExtra }

const idBytes = 8

// Sizes computes the storage footprint of one operator's provenance.
func (o *Operator) Sizes() Sizes {
	var s Sizes
	if o.lazy != nil {
		// Lazily loaded: the footprint model is a pure function of the row
		// and element counts the load-time scan recorded, so Sizes never
		// forces materialisation.
		switch o.lazy.tag {
		case AssocUnary:
			s.LineageBytes = int64(o.lazy.n) * 2 * idBytes
		case AssocBinary:
			s.LineageBytes = int64(o.lazy.n) * 3 * idBytes
		case AssocFlatten:
			s.LineageBytes = int64(o.lazy.n) * 2 * idBytes
			s.StructuralExtra = int64(o.lazy.n) * idBytes
		case AssocAgg:
			s.LineageBytes = int64(o.lazy.totalIns+o.lazy.n) * idBytes
		case AssocSource:
			s.LineageBytes = int64(o.lazy.n) * idBytes
		}
		return o.addStaticSizes(s)
	}
	switch {
	case o.Unary != nil:
		s.LineageBytes = int64(len(o.Unary)) * 2 * idBytes
	case o.Binary != nil:
		s.LineageBytes = int64(len(o.Binary)) * 3 * idBytes
	case o.Flatten != nil:
		s.LineageBytes = int64(len(o.Flatten)) * 2 * idBytes
		// Lineage solutions do not capture the element positions (Sec. 7.3.2).
		s.StructuralExtra = int64(len(o.Flatten)) * idBytes
	case o.Agg != nil:
		for _, a := range o.Agg {
			s.LineageBytes += int64(len(a.Ins)+1) * idBytes
		}
	case o.SourceIDs != nil:
		s.LineageBytes = int64(len(o.SourceIDs)) * idBytes
	}
	return o.addStaticSizes(s)
}

// addStaticSizes adds the schema-level paths and mappings, recorded once per
// operator.
func (o *Operator) addStaticSizes(s Sizes) Sizes {
	for _, in := range o.Inputs {
		for _, p := range in.Accessed {
			s.StructuralExtra += int64(len(p.String()))
		}
	}
	for _, m := range o.Manipulated {
		s.StructuralExtra += int64(len(m.In.String()) + len(m.Out.String()))
	}
	return s
}

// Sizes sums the per-operator footprints of the whole run.
func (r *Run) Sizes() Sizes {
	var total Sizes
	for _, op := range r.ops {
		s := op.Sizes()
		total.LineageBytes += s.LineageBytes
		total.StructuralExtra += s.StructuralExtra
	}
	return total
}
