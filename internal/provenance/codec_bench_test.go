package provenance

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"

	"pebble/internal/engine"
)

// BenchmarkCaptureSink compares the two ways an executor can talk to the
// capture sink: resolving the (operator, partition) shard on every row — the
// registry-lookup-per-append pattern the morsel handles replaced — versus
// resolving it once per morsel and appending through the handle. The row
// loop is identical; only the lookup hoisting differs.
func BenchmarkCaptureSink(b *testing.B) {
	const ops, parts, rows = 4, 8, 2000
	run := func(b *testing.B, fill func(c *Collector)) {
		b.Helper()
		c := NewCollector()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fill(c)
			b.StopTimer()
			c.Finish() // drain so shards recycle instead of growing
			b.StartTimer()
		}
	}
	appendRows := func(ps engine.PartitionSink, oid, p int) {
		for i := 0; i < rows; i++ {
			id := int64(oid*1000000 + p*10000 + i)
			ps.Unary(id, id+1)
		}
	}
	b.Run("per-row", func(b *testing.B) {
		run(b, func(c *Collector) {
			for oid := 1; oid <= ops; oid++ {
				c.StartOperator(engine.OpInfo{OID: oid, Type: engine.OpMap}, parts)
				for p := 0; p < parts; p++ {
					for i := 0; i < rows; i++ {
						id := int64(oid*1000000 + p*10000 + i)
						c.Partition(oid, p).Unary(id, id+1)
					}
				}
			}
		})
	})
	b.Run("morsel", func(b *testing.B) {
		run(b, func(c *Collector) {
			for oid := 1; oid <= ops; oid++ {
				c.StartOperator(engine.OpInfo{OID: oid, Type: engine.OpMap}, parts)
				for p := 0; p < parts; p++ {
					appendRows(c.Partition(oid, p), oid, p)
				}
			}
		})
	})
}

// benchRun builds a deterministic synthetic run with every association kind.
func benchRun() *Run {
	c := NewCollector()
	fillCollector(c, 8, 16, 500)
	return c.Finish()
}

// BenchmarkCodecV1vsV2 measures encode and decode of the same run through
// both codec versions and reports the stream sizes, the committed numbers
// behind BENCH_PR5.json's ratio gate.
func BenchmarkCodecV1vsV2(b *testing.B) {
	run := benchRun()
	for _, v := range []struct {
		name    string
		version int
	}{{"v1", codecVersionV1}, {"v2", codecVersionV2}} {
		var stream bytes.Buffer
		if _, err := run.WriteToVersion(&stream, v.version); err != nil {
			b.Fatal(err)
		}
		b.Run("encode/"+v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var w bytes.Buffer
				if _, err := run.WriteToVersion(&w, v.version); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stream.Len()), "bytes")
		})
		b.Run("decode/"+v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ReadRun(bytes.NewReader(stream.Bytes())); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stream.Len()), "bytes")
		})
	}
}

// TestCodecBenchSmoke re-executes this test binary with one benchmark
// iteration so broken benchmarks fail the test gate instead of waiting for
// the next manual `make bench-codec` run (same pattern as the root
// TestBenchSmoke).
func TestCodecBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is slow; skipped in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe,
		"-test.run=^$", "-test.bench=BenchmarkCaptureSink|BenchmarkCodecV1vsV2|BenchmarkCollectorFinish",
		"-test.benchtime=1x", "-test.timeout=5m")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("benchmark run failed: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "PASS") || strings.Contains(s, "--- FAIL") {
		t.Fatalf("benchmark run did not pass:\n%s", s)
	}
	for _, name := range []string{
		"BenchmarkCaptureSink/per-row",
		"BenchmarkCaptureSink/morsel",
		"BenchmarkCodecV1vsV2/encode/v1",
		"BenchmarkCodecV1vsV2/encode/v2",
		"BenchmarkCodecV1vsV2/decode/v1",
		"BenchmarkCodecV1vsV2/decode/v2",
		"BenchmarkCollectorFinish",
	} {
		if !strings.Contains(s, name) {
			t.Errorf("benchmark %s produced no output", name)
		}
	}
}
