package provenance_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/provenance"
	"pebble/internal/workload"
)

var update = flag.Bool("update", false, "rewrite codec golden files under testdata/")

// goldenPipelines are deterministic captures whose serialised form is
// committed under testdata/*.golden. Together they exercise every
// association layout the codec knows: SourceIDs (1), Unary (2), Binary (3),
// Flatten (4), Agg (5), and the empty tag (0) via the ⊥-annotated map.
// Committed bytes pin the on-disk format: any codec change that silently
// alters the layout of existing streams fails here before it can strand
// archived provenance (capture and audit are days apart in practice).
var goldenPipelines = []struct {
	name  string
	parts int
	build func() *engine.Pipeline
}{
	// The paper's Fig. 1 pipeline: filter, select, flatten, union, aggregate.
	{"example", 3, workload.ExamplePipeline},
	// Map (A = M = ⊥) and join (binary associations plus input schemas).
	{"map-join", 2, func() *engine.Pipeline {
		p := engine.NewPipeline()
		l := p.Source("tweets.json")
		m := p.Map(l, engine.MapFunc{Name: "wrap", Fn: func(v nested.Value) (nested.Value, error) {
			return v, nil
		}})
		sel := p.Select(m, engine.Column("a1", "text"))
		r := p.Source("tweets.json")
		sel2 := p.Select(r, engine.Column("a2", "text"))
		p.Join(sel, sel2, engine.Col("a1"), engine.Col("a2"))
		return p
	}},
	// Set/order operators: distinct, order-by, limit.
	{"ordering", 2, func() *engine.Pipeline {
		p := engine.NewPipeline()
		s := p.Source("tweets.json")
		sel := p.Select(s, engine.Column("text", "text"), engine.Column("name", "user.name"))
		d := p.Distinct(sel)
		o := p.OrderBy(d, false, engine.Col("text"))
		p.Limit(o, 3)
		return p
	}},
}

func goldenBytes(t *testing.T, parts int, build func() *engine.Pipeline) []byte {
	t.Helper()
	_, run, err := provenance.Capture(build(), workload.ExampleInput(parts),
		engine.Options{Partitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := run.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCodecGoldenFiles compares freshly captured runs against the committed
// streams byte for byte, then proves decode → re-encode reproduces the
// committed bytes exactly. Regenerate with:
//
//	go test ./internal/provenance -run TestCodecGoldenFiles -update
func TestCodecGoldenFiles(t *testing.T) {
	for _, g := range goldenPipelines {
		g := g
		t.Run(g.name, func(t *testing.T) {
			got := goldenBytes(t, g.parts, g.build)
			path := filepath.Join("testdata", g.name+".golden")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("captured stream differs from %s (%d vs %d bytes); "+
					"if the format changed intentionally, bump codecVersion and rerun with -update",
					path, len(got), len(want))
			}
			run, err := provenance.ReadRun(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("decode %s: %v", path, err)
			}
			var re bytes.Buffer
			if _, err := run.WriteTo(&re); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re.Bytes(), want) {
				t.Errorf("decode → re-encode of %s is not byte-identical (%d vs %d bytes)",
					path, re.Len(), len(want))
			}
		})
	}
}
