package provenance_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/provenance"
	"pebble/internal/workload"
)

var update = flag.Bool("update", false, "rewrite codec golden files under testdata/")

// goldenPipelines are deterministic captures whose serialised forms are
// committed under testdata/: <name>.golden holds the frozen v1 stream (a
// compatibility fixture — archived provenance written before the columnar
// codec must decode forever) and <name>.v2.golden the stream WriteTo emits
// today. Together they exercise every association layout the codec knows:
// SourceIDs (1), Unary (2), Binary (3), Flatten (4), Agg (5), and the empty
// tag (0) via the ⊥-annotated map. Committed bytes pin the on-disk format:
// any codec change that silently alters the layout of existing streams fails
// here before it can strand archived provenance (capture and audit are days
// apart in practice).
var goldenPipelines = []struct {
	name  string
	parts int
	build func() *engine.Pipeline
}{
	// The paper's Fig. 1 pipeline: filter, select, flatten, union, aggregate.
	{"example", 3, workload.ExamplePipeline},
	// Map (A = M = ⊥) and join (binary associations plus input schemas).
	{"map-join", 2, func() *engine.Pipeline {
		p := engine.NewPipeline()
		l := p.Source("tweets.json")
		m := p.Map(l, engine.MapFunc{Name: "wrap", Fn: func(v nested.Value) (nested.Value, error) {
			return v, nil
		}})
		sel := p.Select(m, engine.Column("a1", "text"))
		r := p.Source("tweets.json")
		sel2 := p.Select(r, engine.Column("a2", "text"))
		p.Join(sel, sel2, engine.Col("a1"), engine.Col("a2"))
		return p
	}},
	// Set/order operators: distinct, order-by, limit.
	{"ordering", 2, func() *engine.Pipeline {
		p := engine.NewPipeline()
		s := p.Source("tweets.json")
		sel := p.Select(s, engine.Column("text", "text"), engine.Column("name", "user.name"))
		d := p.Distinct(sel)
		o := p.OrderBy(d, false, engine.Col("text"))
		p.Limit(o, 3)
		return p
	}},
}

func goldenRun(t *testing.T, parts int, build func() *engine.Pipeline) *provenance.Run {
	t.Helper()
	_, run, err := provenance.Capture(build(), workload.ExampleInput(parts),
		engine.Options{Partitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func encodeVersion(t *testing.T, run *provenance.Run, version int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := run.WriteToVersion(&buf, version); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCodecGoldenFiles compares freshly captured runs against the committed
// streams byte for byte — the frozen v1 fixture and the current v2 stream —
// then proves decode → re-encode reproduces each committed stream exactly
// and that both versions decode to the same run. Regenerate with:
//
//	go test ./internal/provenance -run TestCodecGoldenFiles -update
func TestCodecGoldenFiles(t *testing.T) {
	for _, g := range goldenPipelines {
		g := g
		t.Run(g.name, func(t *testing.T) {
			run := goldenRun(t, g.parts, g.build)
			gotV1 := encodeVersion(t, run, 1)
			gotV2 := encodeVersion(t, run, 2)
			pathV1 := filepath.Join("testdata", g.name+".golden")
			pathV2 := filepath.Join("testdata", g.name+".v2.golden")
			if *update {
				if err := os.WriteFile(pathV1, gotV1, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(pathV2, gotV2, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantV1, err := os.ReadFile(pathV1)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			wantV2, err := os.ReadFile(pathV2)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(gotV1, wantV1) {
				t.Fatalf("v1 stream differs from frozen fixture %s (%d vs %d bytes); "+
					"the v1 encoder must stay byte-stable so archived streams keep their meaning",
					pathV1, len(gotV1), len(wantV1))
			}
			if !bytes.Equal(gotV2, wantV2) {
				t.Fatalf("captured stream differs from %s (%d vs %d bytes); "+
					"if the format changed intentionally, bump codecVersion and rerun with -update",
					pathV2, len(gotV2), len(wantV2))
			}
			// The columnar layout must actually pay for itself on every
			// committed shape.
			if len(wantV2)*10 > len(wantV1)*6 {
				t.Errorf("v2 stream is %d bytes vs %d for v1 — above the 60%% budget",
					len(wantV2), len(wantV1))
			}
			// Both committed streams decode, re-encode byte-identically, and
			// describe the same run (compared through the v1 encoding, a pure
			// function of the run's structure).
			r1, err := provenance.ReadRun(bytes.NewReader(wantV1))
			if err != nil {
				t.Fatalf("decode %s: %v", pathV1, err)
			}
			r2, err := provenance.ReadRun(bytes.NewReader(wantV2))
			if err != nil {
				t.Fatalf("decode %s: %v", pathV2, err)
			}
			if re := encodeVersion(t, r1, 1); !bytes.Equal(re, wantV1) {
				t.Errorf("decode → re-encode of %s is not byte-identical (%d vs %d bytes)",
					pathV1, len(re), len(wantV1))
			}
			if re := encodeVersion(t, r2, 2); !bytes.Equal(re, wantV2) {
				t.Errorf("decode → re-encode of %s is not byte-identical (%d vs %d bytes)",
					pathV2, len(re), len(wantV2))
			}
			if !bytes.Equal(encodeVersion(t, r2, 1), wantV1) {
				t.Errorf("v1 and v2 streams of %s decode to different runs", g.name)
			}
		})
	}
}
