package provenance_test

import (
	"testing"

	"pebble/internal/engine"
	"pebble/internal/provenance"
	"pebble/internal/workload"
)

func captureExample(t *testing.T, parts int) (*engine.Result, *provenance.Run) {
	t.Helper()
	res, run, err := provenance.Capture(workload.ExamplePipeline(), workload.ExampleInput(parts),
		engine.Options{Partitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	return res, run
}

func TestCaptureExamplePipeline(t *testing.T) {
	res, run := captureExample(t, 2)
	ops := run.Operators()
	if len(ops) != 9 {
		t.Fatalf("captured %d operators, want 9", len(ops))
	}
	// Execution order is preserved.
	for i, op := range ops {
		if op.OID != i+1 {
			t.Errorf("operator order: position %d has OID %d", i, op.OID)
		}
	}
	// Tab. 6 layouts per operator type.
	for _, op := range ops {
		switch op.Type {
		case engine.OpSource:
			if op.SourceIDs == nil || op.Unary != nil {
				t.Errorf("source %d: wrong association layout", op.OID)
			}
		case engine.OpFilter, engine.OpSelect, engine.OpMap:
			if op.Unary == nil && op.AssocCount() != 0 {
				t.Errorf("%s %d: want unary associations", op.Type, op.OID)
			}
		case engine.OpJoin, engine.OpUnion:
			if op.Binary == nil {
				t.Errorf("%s %d: want binary associations", op.Type, op.OID)
			}
		case engine.OpFlatten:
			if op.Flatten == nil {
				t.Errorf("flatten %d: want flatten associations", op.OID)
			}
		case engine.OpAggregate:
			if op.Agg == nil {
				t.Errorf("aggregate %d: want aggregation associations", op.OID)
			}
		}
	}
	// The two reads annotate 5 tweets each.
	src1, _ := run.Op(1)
	src4, _ := run.Op(4)
	if len(src1.SourceIDs) != 5 || len(src4.SourceIDs) != 5 {
		t.Errorf("source annotations: %d and %d, want 5 and 5", len(src1.SourceIDs), len(src4.SourceIDs))
	}
	// Filter keeps 4 of 5; flatten explodes 5 mentions; union merges 4+5;
	// aggregation groups into 3 users.
	counts := map[int]int{2: 4, 5: 5, 7: 9, 9: 3}
	for oid, want := range counts {
		op, ok := run.Op(oid)
		if !ok {
			t.Fatalf("operator %d missing", oid)
		}
		if got := op.AssocCount(); got != want {
			t.Errorf("operator %d associations = %d, want %d", oid, got, want)
		}
	}
	// Every output row of the sink has an aggregation association.
	agg, _ := run.Op(9)
	outIDs := map[int64]bool{}
	for _, a := range agg.Agg {
		outIDs[a.Out] = true
	}
	for _, r := range res.Output.Rows() {
		if !outIDs[r.ID] {
			t.Errorf("result row %d has no provenance association", r.ID)
		}
	}
}

func TestAssociationChainIsClosed(t *testing.T) {
	// Every input identifier recorded by an operator must be an output
	// identifier of its predecessor — the join invariant Alg. 3 relies on.
	_, run := captureExample(t, 3)
	outs := map[int]map[int64]bool{} // oid -> produced ids
	for _, op := range run.Operators() {
		ids := map[int64]bool{}
		for _, a := range op.Unary {
			ids[a.Out] = true
		}
		for _, a := range op.Binary {
			ids[a.Out] = true
		}
		for _, a := range op.Flatten {
			ids[a.Out] = true
		}
		for _, a := range op.Agg {
			ids[a.Out] = true
		}
		for _, sa := range op.SourceIDs {
			ids[sa.ID] = true
		}
		outs[op.OID] = ids
	}
	for _, op := range run.Operators() {
		if len(op.Inputs) == 0 || op.Type == engine.OpSource {
			continue
		}
		check := func(id int64, inputIdx int) {
			if id == -1 {
				return // absent union side
			}
			pred := op.Inputs[inputIdx].Pred
			if !outs[pred][id] {
				t.Errorf("operator %d consumes id %d not produced by predecessor %d", op.OID, id, pred)
			}
		}
		for _, a := range op.Unary {
			check(a.In, 0)
		}
		for _, a := range op.Binary {
			check(a.Left, 0)
			check(a.Right, 1)
		}
		for _, a := range op.Flatten {
			check(a.In, 0)
		}
		for _, a := range op.Agg {
			for _, id := range a.Ins {
				check(id, 0)
			}
		}
	}
}

func TestSizesSplitLineageVsStructural(t *testing.T) {
	_, run := captureExample(t, 2)
	total := run.Sizes()
	if total.LineageBytes <= 0 {
		t.Error("lineage bytes must be positive")
	}
	if total.StructuralExtra <= 0 {
		t.Error("structural extra must be positive (paths + flatten positions)")
	}
	if total.Total() != total.LineageBytes+total.StructuralExtra {
		t.Error("Total() inconsistent")
	}
	// The structural extra is small relative to lineage for id-heavy
	// pipelines; here paths dominate because the data is tiny, so just check
	// the flatten contribution is accounted.
	fl, _ := run.Op(5)
	s := fl.Sizes()
	if s.StructuralExtra < int64(len(fl.Flatten))*8 {
		t.Errorf("flatten structural extra %d misses position storage", s.StructuralExtra)
	}
	// Aggregation lineage grows with group sizes.
	agg, _ := run.Op(9)
	as := agg.Sizes()
	var ids int
	for _, a := range agg.Agg {
		ids += len(a.Ins) + 1
	}
	if as.LineageBytes != int64(ids)*8 {
		t.Errorf("aggregation lineage bytes = %d, want %d", as.LineageBytes, ids*8)
	}
}

func TestCollectorReuseAfterFinish(t *testing.T) {
	c := provenance.NewCollector()
	opts := engine.Options{Partitions: 1, Sink: c}
	if _, err := engine.Run(workload.ExamplePipeline(), workload.ExampleInput(1), opts); err != nil {
		t.Fatal(err)
	}
	first := c.Finish()
	if len(first.Operators()) != 9 {
		t.Fatalf("first run captured %d ops", len(first.Operators()))
	}
	// Reuse for a second run.
	if _, err := engine.Run(workload.ExamplePipeline(), workload.ExampleInput(1), opts); err != nil {
		t.Fatal(err)
	}
	second := c.Finish()
	if len(second.Operators()) != 9 {
		t.Errorf("collector not reusable after Finish: %d ops", len(second.Operators()))
	}
	// Finished runs are independent.
	if &first.Operators()[0] == &second.Operators()[0] {
		t.Error("runs share state")
	}
}

func TestRunStringAndLookup(t *testing.T) {
	_, run := captureExample(t, 1)
	if _, ok := run.Op(42); ok {
		t.Error("lookup of unknown operator should fail")
	}
	if s := run.String(); len(s) == 0 {
		t.Error("String() empty")
	}
}
