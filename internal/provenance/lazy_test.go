package provenance_test

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pebble/internal/provenance"
)

// goldenStreams loads every committed golden stream (v1 and v2) keyed by
// file name.
func goldenStreams(t *testing.T) map[string][]byte {
	t.Helper()
	streams := map[string][]byte{}
	for _, name := range []string{"example", "map-join", "ordering"} {
		for _, suffix := range []string{".golden", ".v2.golden"} {
			p := filepath.Join("testdata", name+suffix)
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatalf("missing golden stream: %v", err)
			}
			streams[name+suffix] = data
		}
	}
	return streams
}

// TestLazyEqualsEagerOnGoldens: a lazily loaded run must be indistinguishable
// from an eagerly decoded one — same operators, byte-equal association bags
// once materialised, and an identical re-encoding.
func TestLazyEqualsEagerOnGoldens(t *testing.T) {
	for name, data := range goldenStreams(t) {
		t.Run(name, func(t *testing.T) {
			eager, err := provenance.ReadRun(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("ReadRun: %v", err)
			}
			lazyr, err := provenance.ReadRunLazy(data)
			if err != nil {
				t.Fatalf("ReadRunLazy: %v", err)
			}
			eops, lops := eager.Operators(), lazyr.Operators()
			if len(eops) != len(lops) {
				t.Fatalf("operator count %d vs %d", len(lops), len(eops))
			}
			for i, eo := range eops {
				lo := lops[i]
				if eo.OID != lo.OID || eo.Type != lo.Type || eo.AssocKind() != lo.AssocKind() {
					t.Fatalf("operator %d differs: %v/%v vs %v/%v", i, lo.OID, lo.Type, eo.OID, eo.Type)
				}
				if !reflect.DeepEqual(eo.UnaryAssocs(), lo.UnaryAssocs()) ||
					!reflect.DeepEqual(eo.BinaryAssocs(), lo.BinaryAssocs()) ||
					!reflect.DeepEqual(eo.FlattenAssocs(), lo.FlattenAssocs()) ||
					!reflect.DeepEqual(eo.AggAssocs(), lo.AggAssocs()) ||
					!reflect.DeepEqual(eo.SourceAssocs(), lo.SourceAssocs()) {
					t.Fatalf("operator %d association bags differ between lazy and eager", eo.OID)
				}
			}
			var fromEager, fromLazy bytes.Buffer
			if _, err := eager.WriteTo(&fromEager); err != nil {
				t.Fatal(err)
			}
			if _, err := lazyr.WriteTo(&fromLazy); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fromEager.Bytes(), fromLazy.Bytes()) {
				t.Errorf("re-encodings differ: %d vs %d bytes", fromLazy.Len(), fromEager.Len())
			}
		})
	}
}

// TestLazyRejectsStrictPrefixes: the validating skip-scan must reject every
// truncation up front — the accessors are infallible, so nothing may load
// that could fail later.
func TestLazyRejectsStrictPrefixes(t *testing.T) {
	for name, data := range goldenStreams(t) {
		t.Run(name, func(t *testing.T) {
			for n := 0; n < len(data); n++ {
				if _, err := provenance.ReadRunLazy(data[:n]); err == nil {
					t.Fatalf("prefix of %d/%d bytes accepted", n, len(data))
				}
			}
		})
	}
}

// TestLazyRejectsCorruptHeaders: wrong magic and unknown versions error.
func TestLazyRejectsCorruptHeaders(t *testing.T) {
	data := goldenStreams(t)["example.v2.golden"]
	badMagic := append([]byte(nil), data...)
	badMagic[0] ^= 0xFF
	if _, err := provenance.ReadRunLazy(badMagic); err == nil {
		t.Error("corrupt magic accepted")
	}
	badVer := append([]byte(nil), data...)
	badVer[len(badVer)-1] = 0 // harmless; version bytes follow the magic
	badVer[4], badVer[5] = 0xFF, 0xFF
	if _, err := provenance.ReadRunLazy(badVer); err == nil {
		t.Error("unknown version accepted")
	}
}

// TestLazyDecodedBytesAccounting: nothing decodes at load, touched bags are
// charged once, and materialising everything accounts for every region.
func TestLazyDecodedBytesAccounting(t *testing.T) {
	data := goldenStreams(t)["example.v2.golden"]
	run, err := provenance.ReadRunLazy(data)
	if err != nil {
		t.Fatal(err)
	}
	total := run.AssocBytesTotal()
	if total <= 0 {
		t.Fatalf("AssocBytesTotal = %d, want > 0", total)
	}
	if got := run.AssocBytesDecoded(); got != 0 {
		t.Fatalf("decoded %d bytes before any access, want 0", got)
	}
	ops := run.Operators()
	first := ops[len(ops)-1]
	first.UnaryAssocs() // touch one operator (kind-independent: every accessor materialises)
	after := run.AssocBytesDecoded()
	if after <= 0 || after >= total {
		t.Fatalf("single-operator touch decoded %d of %d bytes, want strictly between", after, total)
	}
	if again := func() int64 { first.UnaryAssocs(); return run.AssocBytesDecoded() }(); again != after {
		t.Fatalf("second touch re-charged decode: %d then %d", after, again)
	}
	for _, op := range ops {
		op.UnaryAssocs()
	}
	if got := run.AssocBytesDecoded(); got != total {
		t.Fatalf("full materialisation decoded %d bytes, want total %d", got, total)
	}
}

// TestHashStream pins the stream fingerprint to its spec: FNV-1a folded over
// the length and 8-byte little-endian words, tail bytes individually.
func TestHashStream(t *testing.T) {
	spec := func(data []byte) uint64 {
		const offset64, prime64 = 14695981039346656037, 1099511628211
		h := (uint64(offset64) ^ uint64(len(data))) * prime64
		for len(data) >= 8 {
			h = (h ^ binary.LittleEndian.Uint64(data[:8])) * prime64
			data = data[8:]
		}
		for _, b := range data {
			h = (h ^ uint64(b)) * prime64
		}
		return h
	}
	cases := [][]byte{
		nil,
		{},
		[]byte("p"),
		[]byte("pebble!"),
		[]byte("pebble!!"), // exactly one word
		[]byte("pebble sidecar hash vector"),
		bytes.Repeat([]byte{0}, 31),
		bytes.Repeat([]byte{0}, 32),
	}
	for _, c := range cases {
		if got, want := provenance.HashStream(c), spec(c); got != want {
			t.Errorf("HashStream(%q) = %#x, want %#x", c, got, want)
		}
	}
	// Length is part of the fingerprint: zero-extended streams differ.
	if provenance.HashStream(cases[6]) == provenance.HashStream(cases[7]) {
		t.Error("hash ignores length: 31 and 32 zero bytes collide")
	}
	// And a golden stream hashes consistently with its lazy load.
	data := goldenStreams(t)["example.v2.golden"]
	run, err := provenance.ReadRunLazy(data)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := run.ContentHash()
	if !ok {
		t.Fatal("byte-loaded run has no content hash")
	}
	if h != provenance.HashStream(data) {
		t.Errorf("ContentHash %#x != HashStream %#x", h, provenance.HashStream(data))
	}
}
