package provenance

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"pebble/internal/engine"
	"pebble/internal/obs"
	"pebble/internal/path"
)

// Codec version 2: a columnar delta+varint layout. Association bags dominate
// the stream (millions of monotonically growing int64 identifiers per
// operator), so v2 stores each association field as its own column of
// zigzag-encoded deltas — consecutive identifiers differ by small amounts,
// which varints compress to one or two bytes instead of the fixed eight of
// v1. The schema-level strings (operator types, access paths, mapping paths,
// source names) repeat heavily across operators, so the stream opens with a
// string dictionary and every string position holds a varint dictionary
// reference.
//
// Layout after the shared magic "PBLP" | u16 version=2 prefix:
//
//	dict:  uvarint #strings | per string: uvarint len | bytes
//	uvarint #ops
//	per op:
//	  uvarint oid | uvarint typeRef | u8 manipUndefined
//	  uvarint #inputs | per input:
//	    uvarint pred | uvarint sourceNameRef | u8 accessUndefined
//	    uvarint #accessed | #accessed × uvarint pathRef
//	    uvarint #schema   | #schema   × uvarint strRef
//	  uvarint #mappings | per mapping:
//	    uvarint inRef ("" encodes a nil In) | uvarint outRef | u8 groupKey
//	  u8 assocTag (0 none, 1 source, 2 unary, 3 binary, 4 flatten, 5 agg)
//	  tag 1: uvarint n | n×Δ(ID)   | n×Δ(OrigID)
//	  tag 2: uvarint n | n×Δ(In)   | n×Δ(Out)
//	  tag 3: uvarint n | n×Δ(Left) | n×Δ(Right) | n×Δ(Out)
//	  tag 4: uvarint n | n×Δ(In)   | n×uvarint Pos | n×Δ(Out)
//	  tag 5: uvarint n | n×Δ(Out)  | n×uvarint len(Ins) | ΣΔ(Ins) chain
//
// Δ columns are zigzag(v − prev) uvarints with prev starting at 0 per
// column; the agg Ins chain is one continuous delta column spanning all
// groups of the operator. Everything is a pure function of the Run — the
// dictionary is built by first-occurrence order over the deterministic
// r.order walk — so the encoded bytes are identical regardless of how many
// workers produced the capture (the oracle asserts this byte-for-byte).

// encBuf wraps the pooled encode buffer; pooling pointers keeps Put from
// allocating and lets the grown backing array survive across encodes.
type encBuf struct{ b []byte }

var encPool = sync.Pool{New: func() any { return &encBuf{b: make([]byte, 0, 4096)} }}

// writeToV2 assembles the whole v2 stream in a pooled buffer and hands it to
// w in a single Write, so the returned count reflects bytes the destination
// genuinely accepted.
func (r *Run) writeToV2(w io.Writer, rec *obs.Recorder) (int64, error) {
	eb := encPool.Get().(*encBuf)
	buf := eb.b[:0]
	buf = append(buf, codecMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, codecVersionV2)

	dict, refs := r.v2Dict()
	buf = binary.AppendUvarint(buf, uint64(len(dict)))
	for _, s := range dict {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.order)))
	for _, oid := range r.order {
		op := r.ops[oid]
		start := len(buf)
		buf = appendOpV2(buf, op, refs)
		rec.Add(op.OID, 0, obs.BytesEncoded, int64(len(buf)-start))
	}

	n, err := w.Write(buf)
	eb.b = buf
	encPool.Put(eb)
	if err != nil {
		return int64(n), fmt.Errorf("provenance: writing encoded run: %w", err)
	}
	return int64(n), nil
}

// v2Dict collects every string of the run in deterministic first-occurrence
// order (the same walk the encoder performs) and returns the dictionary plus
// the string→index mapping.
func (r *Run) v2Dict() ([]string, map[string]uint64) {
	var dict []string
	refs := make(map[string]uint64)
	add := func(s string) {
		if _, ok := refs[s]; !ok {
			refs[s] = uint64(len(dict))
			dict = append(dict, s)
		}
	}
	for _, oid := range r.order {
		op := r.ops[oid]
		add(string(op.Type))
		for _, in := range op.Inputs {
			add(in.SourceName)
			for _, p := range in.Accessed {
				add(p.String())
			}
			for _, s := range in.Schema {
				add(s)
			}
		}
		for _, m := range op.Manipulated {
			add(m.In.String())
			add(m.Out.String())
		}
	}
	return dict, refs
}

func appendOpV2(buf []byte, op *Operator, refs map[string]uint64) []byte {
	op.materialize() // re-encoding a lazily loaded run reads every bag
	buf = binary.AppendUvarint(buf, uint64(op.OID))
	buf = binary.AppendUvarint(buf, refs[string(op.Type)])
	buf = appendBool(buf, op.ManipUndefined)
	buf = binary.AppendUvarint(buf, uint64(len(op.Inputs)))
	for _, in := range op.Inputs {
		buf = binary.AppendUvarint(buf, uint64(in.Pred))
		buf = binary.AppendUvarint(buf, refs[in.SourceName])
		buf = appendBool(buf, in.AccessUndefined)
		buf = binary.AppendUvarint(buf, uint64(len(in.Accessed)))
		for _, p := range in.Accessed {
			buf = binary.AppendUvarint(buf, refs[p.String()])
		}
		buf = binary.AppendUvarint(buf, uint64(len(in.Schema)))
		for _, s := range in.Schema {
			buf = binary.AppendUvarint(buf, refs[s])
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(op.Manipulated)))
	for _, m := range op.Manipulated {
		buf = binary.AppendUvarint(buf, refs[m.In.String()])
		buf = binary.AppendUvarint(buf, refs[m.Out.String()])
		buf = appendBool(buf, m.GroupKey)
	}
	switch {
	case op.SourceIDs != nil:
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(len(op.SourceIDs)))
		prev := int64(0)
		for _, a := range op.SourceIDs {
			buf = appendDelta(buf, a.ID, &prev)
		}
		prev = 0
		for _, a := range op.SourceIDs {
			buf = appendDelta(buf, a.OrigID, &prev)
		}
	case op.Unary != nil:
		buf = append(buf, 2)
		buf = binary.AppendUvarint(buf, uint64(len(op.Unary)))
		prev := int64(0)
		for _, a := range op.Unary {
			buf = appendDelta(buf, a.In, &prev)
		}
		prev = 0
		for _, a := range op.Unary {
			buf = appendDelta(buf, a.Out, &prev)
		}
	case op.Binary != nil:
		buf = append(buf, 3)
		buf = binary.AppendUvarint(buf, uint64(len(op.Binary)))
		prev := int64(0)
		for _, a := range op.Binary {
			buf = appendDelta(buf, a.Left, &prev)
		}
		prev = 0
		for _, a := range op.Binary {
			buf = appendDelta(buf, a.Right, &prev)
		}
		prev = 0
		for _, a := range op.Binary {
			buf = appendDelta(buf, a.Out, &prev)
		}
	case op.Flatten != nil:
		buf = append(buf, 4)
		buf = binary.AppendUvarint(buf, uint64(len(op.Flatten)))
		prev := int64(0)
		for _, a := range op.Flatten {
			buf = appendDelta(buf, a.In, &prev)
		}
		for _, a := range op.Flatten {
			buf = binary.AppendUvarint(buf, uint64(a.Pos))
		}
		prev = 0
		for _, a := range op.Flatten {
			buf = appendDelta(buf, a.Out, &prev)
		}
	case op.Agg != nil:
		buf = append(buf, 5)
		buf = binary.AppendUvarint(buf, uint64(len(op.Agg)))
		prev := int64(0)
		for _, a := range op.Agg {
			buf = appendDelta(buf, a.Out, &prev)
		}
		for _, a := range op.Agg {
			buf = binary.AppendUvarint(buf, uint64(len(a.Ins)))
		}
		prev = 0
		for _, a := range op.Agg {
			for _, id := range a.Ins {
				buf = appendDelta(buf, id, &prev)
			}
		}
	default:
		buf = append(buf, 0)
	}
	return buf
}

// appendDelta appends zigzag(v − *prev) as a uvarint and advances prev.
func appendDelta(buf []byte, v int64, prev *int64) []byte {
	d := v - *prev
	*prev = v
	return binary.AppendUvarint(buf, uint64(d<<1)^uint64(d>>63))
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// maxV2Count caps any single declared element count. Real runs stay far
// below it; the cap only rejects counts that cannot be backed by a genuine
// stream before the decoder commits to materialising them.
const maxV2Count = 1 << 32

// v2decoder reads varint primitives from a buffered stream, remembering the
// first error. Column reads grow element-by-element (every element consumes
// at least one byte), so a corrupt count prefix runs into io.EOF instead of
// forcing a giant allocation.
type v2decoder struct {
	r    *bufio.Reader
	dict []string
	err  error
}

func readRunV2(br *bufio.Reader) (*Run, error) {
	d := &v2decoder{r: br}
	nDict := d.count("dictionary")
	d.dict = make([]string, 0, capHint(nDict))
	for i := 0; i < nDict && d.err == nil; i++ {
		d.dict = append(d.dict, d.rawString())
	}
	nOps := d.count("operator")
	if d.err != nil {
		return nil, d.err
	}
	run := &Run{ops: make(map[int]*Operator, capHint(nOps))}
	for i := 0; i < nOps; i++ {
		op := d.readOp()
		if d.err != nil {
			return nil, d.err
		}
		run.ops[op.OID] = op
		run.order = append(run.order, op.OID)
	}
	return run, nil
}

func (d *v2decoder) readOp() *Operator {
	op := &Operator{}
	op.OID = int(d.uvarint())
	op.Type = engine.OpType(d.ref("operator type"))
	op.ManipUndefined = d.bool()
	nIn := d.count("input")
	for j := 0; j < nIn && d.err == nil; j++ {
		var in engine.InputInfo
		in.Pred = int(d.uvarint())
		in.SourceName = d.ref("source name")
		in.AccessUndefined = d.bool()
		nAcc := d.count("accessed path")
		for k := 0; k < nAcc && d.err == nil; k++ {
			in.Accessed = append(in.Accessed, d.path("accessed path"))
		}
		nSchema := d.count("schema string")
		for k := 0; k < nSchema && d.err == nil; k++ {
			in.Schema = append(in.Schema, d.ref("schema string"))
		}
		op.Inputs = append(op.Inputs, in)
	}
	nManip := d.count("mapping")
	for j := 0; j < nManip && d.err == nil; j++ {
		var m engine.Mapping
		if in := d.ref("mapping input path"); in != "" && d.err == nil {
			m.In = d.parse(in)
		}
		m.Out = d.path("mapping output path")
		m.GroupKey = d.bool()
		op.Manipulated = append(op.Manipulated, m)
	}
	d.readAssocs(op)
	return op
}

func (d *v2decoder) readAssocs(op *Operator) {
	switch tag := d.byte(); tag {
	case 0:
	case 1:
		n := d.count("source association")
		ids := d.deltaColumn(n)
		origs := d.deltaColumn(n)
		if d.err != nil {
			return
		}
		op.SourceIDs = make([]SourceAssoc, n)
		for j := range op.SourceIDs {
			op.SourceIDs[j] = SourceAssoc{ID: ids[j], OrigID: origs[j]}
		}
	case 2:
		n := d.count("unary association")
		ins := d.deltaColumn(n)
		outs := d.deltaColumn(n)
		if d.err != nil {
			return
		}
		op.Unary = make([]UnaryAssoc, n)
		for j := range op.Unary {
			op.Unary[j] = UnaryAssoc{In: ins[j], Out: outs[j]}
		}
	case 3:
		n := d.count("binary association")
		lefts := d.deltaColumn(n)
		rights := d.deltaColumn(n)
		outs := d.deltaColumn(n)
		if d.err != nil {
			return
		}
		op.Binary = make([]BinaryAssoc, n)
		for j := range op.Binary {
			op.Binary[j] = BinaryAssoc{Left: lefts[j], Right: rights[j], Out: outs[j]}
		}
	case 4:
		n := d.count("flatten association")
		ins := d.deltaColumn(n)
		poss := d.uvarintColumn(n)
		outs := d.deltaColumn(n)
		if d.err != nil {
			return
		}
		op.Flatten = make([]FlattenAssoc, n)
		for j := range op.Flatten {
			op.Flatten[j] = FlattenAssoc{In: ins[j], Pos: int(poss[j]), Out: outs[j]}
		}
	case 5:
		n := d.count("aggregate association")
		outs := d.deltaColumn(n)
		lens := d.uvarintColumn(n)
		total := 0
		for _, l := range lens {
			if d.err == nil && (l > maxV2Count || total+int(l) < total) {
				d.err = fmt.Errorf("provenance: aggregate input count %d exceeds limit", l)
			}
			total += int(l)
		}
		flat := d.deltaColumn(total)
		if d.err != nil {
			return
		}
		op.Agg = make([]AggAssoc, n)
		off := 0
		for j := range op.Agg {
			ln := int(lens[j])
			a := AggAssoc{Out: outs[j], Ins: make([]int64, 0, capHint(ln))}
			a.Ins = append(a.Ins, flat[off:off+ln]...)
			off += ln
			op.Agg[j] = a
		}
	default:
		if d.err == nil {
			d.err = fmt.Errorf("provenance: unknown association tag %d", tag)
		}
	}
}

func (d *v2decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
		return 0
	}
	return v
}

// count reads a uvarint element count and rejects absurd values before any
// loop commits to them.
func (d *v2decoder) count(what string) int {
	v := d.uvarint()
	if d.err == nil && v > maxV2Count {
		d.err = fmt.Errorf("provenance: %s count %d exceeds limit", what, v)
		return 0
	}
	return int(v)
}

func (d *v2decoder) byte() uint8 {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = err
		return 0
	}
	return b
}

func (d *v2decoder) bool() bool { return d.byte() != 0 }

// deltaColumn reads n zigzag-delta varints. Growth is append-driven with a
// bounded initial capacity: every element consumes at least one input byte,
// so a lying count prefix hits EOF rather than a huge allocation.
func (d *v2decoder) deltaColumn(n int) []int64 {
	out := make([]int64, 0, capHint(n))
	var prev int64
	for i := 0; i < n && d.err == nil; i++ {
		u := d.uvarint()
		prev += int64(u>>1) ^ -int64(u&1)
		out = append(out, prev)
	}
	return out
}

func (d *v2decoder) uvarintColumn(n int) []uint64 {
	out := make([]uint64, 0, capHint(n))
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.uvarint())
	}
	return out
}

// rawString reads a length-prefixed dictionary entry.
func (d *v2decoder) rawString() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	const maxStr = 1 << 20
	if n > maxStr {
		d.err = fmt.Errorf("provenance: string length %d exceeds limit", n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = err
		return ""
	}
	return string(buf)
}

// ref reads a dictionary reference and resolves it, rejecting out-of-range
// indexes.
func (d *v2decoder) ref(what string) string {
	i := d.uvarint()
	if d.err != nil {
		return ""
	}
	if i >= uint64(len(d.dict)) {
		d.err = fmt.Errorf("provenance: %s dictionary reference %d out of range (dictionary has %d entries)", what, i, len(d.dict))
		return ""
	}
	return d.dict[i]
}

// path resolves a dictionary reference and parses it as an access path.
func (d *v2decoder) path(what string) path.Path {
	s := d.ref(what)
	if d.err != nil {
		return nil
	}
	return d.parse(s)
}

func (d *v2decoder) parse(s string) path.Path {
	p, err := path.Parse(s)
	if err != nil && d.err == nil {
		d.err = err
	}
	return p
}
