package provenance_test

import (
	"bytes"
	"testing"

	"pebble/internal/engine"
	"pebble/internal/provenance"
	"pebble/internal/workload"
)

// fuzzSeeds returns genuine streams in both codec versions.
func fuzzSeeds(f *testing.F) (v1, v2 []byte) {
	f.Helper()
	_, run, err := provenance.Capture(workload.ExamplePipeline(), workload.ExampleInput(1),
		engine.Options{Partitions: 1})
	if err != nil {
		f.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if _, err := run.WriteToVersion(&b1, 1); err != nil {
		f.Fatal(err)
	}
	if _, err := run.WriteTo(&b2); err != nil {
		f.Fatal(err)
	}
	return b1.Bytes(), b2.Bytes()
}

// FuzzReadRun throws arbitrary bytes at the provenance decoder: it must
// never panic or over-allocate, and any accepted run must re-encode.
func FuzzReadRun(f *testing.F) {
	v1, v2 := fuzzSeeds(f)
	f.Add(v1)
	f.Add(v2)
	f.Add([]byte("PBLP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := provenance.ReadRun(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := r.WriteTo(&out); err != nil {
			t.Fatalf("accepted run failed to encode: %v", err)
		}
	})
}

// FuzzCodecVersions is the cross-version round-trip property: any run the
// decoder accepts (from either format) must survive re-encoding through the
// columnar v2 codec unchanged — decode(encodeV2(r)) describes the same run
// as r. Equality is checked through the v1 encoding, which is a pure
// function of the run's structure.
func FuzzCodecVersions(f *testing.F) {
	v1, v2 := fuzzSeeds(f)
	f.Add(v1)
	f.Add(v2)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := provenance.ReadRun(bytes.NewReader(data))
		if err != nil {
			return
		}
		var want bytes.Buffer
		if _, err := r.WriteToVersion(&want, 1); err != nil {
			t.Fatalf("accepted run failed to encode as v1: %v", err)
		}
		var enc bytes.Buffer
		if _, err := r.WriteToVersion(&enc, 2); err != nil {
			t.Fatalf("accepted run failed to encode as v2: %v", err)
		}
		back, err := provenance.ReadRun(&enc)
		if err != nil {
			t.Fatalf("v2 re-encoding of an accepted run failed to decode: %v", err)
		}
		var got bytes.Buffer
		if _, err := back.WriteToVersion(&got, 1); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("v2 round trip changed the run: v1 projections differ (%d vs %d bytes)",
				got.Len(), want.Len())
		}
	})
}
