package provenance_test

import (
	"bytes"
	"testing"

	"pebble/internal/engine"
	"pebble/internal/provenance"
	"pebble/internal/workload"
)

// FuzzReadRun throws arbitrary bytes at the provenance decoder: it must
// never panic or over-allocate, and any accepted run must re-encode.
func FuzzReadRun(f *testing.F) {
	// Seed with a genuine stream.
	_, run, err := provenance.Capture(workload.ExamplePipeline(), workload.ExampleInput(1),
		engine.Options{Partitions: 1})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := run.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("PBLP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := provenance.ReadRun(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := r.WriteTo(&out); err != nil {
			t.Fatalf("accepted run failed to encode: %v", err)
		}
	})
}
