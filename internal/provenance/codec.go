package provenance

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"pebble/internal/engine"
	"pebble/internal/obs"
	"pebble/internal/path"
)

// The on-disk format of a captured run: a small versioned binary layout so
// provenance captured during pipeline execution can be stored next to the
// result data and queried much later (the capture and query phases of the
// paper are days apart in practice — auditing queries run when a breach is
// investigated).
//
// Version 1 (still decoded, no longer written by default):
//
//	magic "PBLP" | u16 version=1 | u32 #ops | ops...
//
// with fixed-width little-endian fields; strings and slices are
// length-prefixed and association rows are stored row-major with u32/i64
// fields. Version 2 (the default write format, see codec_v2.go and
// DESIGN.md §8) shares the magic/version prefix and stores a string
// dictionary followed by per-operator columnar delta+varint association
// columns.
const (
	codecMagic     = "PBLP"
	codecVersionV1 = 1
	codecVersionV2 = 2
	// codecVersion is the version WriteTo emits.
	codecVersion = codecVersionV2
)

// WriteTo serialises the run in the current format version.
func (r *Run) WriteTo(w io.Writer) (int64, error) {
	return r.writeTo(w, nil, codecVersion)
}

// WriteToObserved serialises like WriteTo and additionally records every
// operator's encoded byte count into the recorder (obs.BytesEncoded) — the
// codec-level counterpart of the model-level ProvBytes counter.
func (r *Run) WriteToObserved(w io.Writer, rec *obs.Recorder) (int64, error) {
	return r.writeTo(w, rec, codecVersion)
}

// WriteToVersion serialises the run in an explicit format version (1 or 2).
// Old streams stay readable forever via ReadRun; writing v1 exists for the
// codec comparison experiment and for compatibility tests — new captures
// should use WriteTo.
func (r *Run) WriteToVersion(w io.Writer, version int) (int64, error) {
	return r.writeTo(w, nil, version)
}

func (r *Run) writeTo(w io.Writer, rec *obs.Recorder, version int) (int64, error) {
	switch version {
	case codecVersionV1:
		return r.writeToV1(w, rec)
	case codecVersionV2:
		return r.writeToV2(w, rec)
	}
	return 0, fmt.Errorf("provenance: cannot encode version %d", version)
}

// writeToV1 emits the fixed-width v1 layout. The counting writer sits
// *below* the bufio buffer, so the returned byte count reflects bytes that
// actually reached w — a failed flush cannot inflate it.
func (r *Run) writeToV1(w io.Writer, rec *obs.Recorder) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if err := r.encodeV1(bw, rec); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, fmt.Errorf("provenance: flushing encoded run: %w", err)
	}
	return cw.n, nil
}

// countingWriter counts the bytes its underlying writer accepted. It wraps
// the destination directly (not the buffer above it), so short writes and
// post-error flushes are reported as the bytes genuinely written.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (r *Run) encodeV1(w io.Writer, rec *obs.Recorder) error {
	e := &encoder{w: w}
	e.bytes([]byte(codecMagic))
	e.u16(codecVersionV1)
	e.u32(uint32(len(r.order)))
	for _, oid := range r.order {
		op := r.ops[oid]
		op.materialize() // re-encoding a lazily loaded run reads every bag
		opStart := e.off
		e.u32(uint32(op.OID))
		e.str(string(op.Type))
		e.bool(op.ManipUndefined)
		e.u32(uint32(len(op.Inputs)))
		for _, in := range op.Inputs {
			e.u32(uint32(in.Pred))
			e.str(in.SourceName)
			e.bool(in.AccessUndefined)
			e.u32(uint32(len(in.Accessed)))
			for _, p := range in.Accessed {
				e.str(p.String())
			}
			e.u32(uint32(len(in.Schema)))
			for _, s := range in.Schema {
				e.str(s)
			}
		}
		e.u32(uint32(len(op.Manipulated)))
		for _, m := range op.Manipulated {
			e.str(m.In.String())
			e.str(m.Out.String())
			e.bool(m.GroupKey)
		}
		// Association bag, tagged by layout.
		switch {
		case op.SourceIDs != nil:
			e.u8(1)
			e.u32(uint32(len(op.SourceIDs)))
			for _, sa := range op.SourceIDs {
				e.i64(sa.ID)
				e.i64(sa.OrigID)
			}
		case op.Unary != nil:
			e.u8(2)
			e.u32(uint32(len(op.Unary)))
			for _, a := range op.Unary {
				e.i64(a.In)
				e.i64(a.Out)
			}
		case op.Binary != nil:
			e.u8(3)
			e.u32(uint32(len(op.Binary)))
			for _, a := range op.Binary {
				e.i64(a.Left)
				e.i64(a.Right)
				e.i64(a.Out)
			}
		case op.Flatten != nil:
			e.u8(4)
			e.u32(uint32(len(op.Flatten)))
			for _, a := range op.Flatten {
				e.i64(a.In)
				e.u32(uint32(a.Pos))
				e.i64(a.Out)
			}
		case op.Agg != nil:
			e.u8(5)
			e.u32(uint32(len(op.Agg)))
			for _, a := range op.Agg {
				e.i64(a.Out)
				e.u32(uint32(len(a.Ins)))
				for _, id := range a.Ins {
					e.i64(id)
				}
			}
		default:
			e.u8(0)
		}
		if e.err != nil {
			return fmt.Errorf("provenance: encoding operator %d (%s): %w", op.OID, op.Type, e.err)
		}
		rec.Add(op.OID, 0, obs.BytesEncoded, e.off-opStart)
	}
	return e.err
}

// ReadRun deserialises a run written by any WriteTo version: streams
// persisted by the fixed-width v1 codec keep decoding forever (capture and
// audit are days apart — archived provenance must outlive codec upgrades),
// and v2 streams decode through the columnar path in codec_v2.go.
func ReadRun(r io.Reader) (*Run, error) {
	br := bufio.NewReader(r)
	d := &decoder{r: br}
	magic := d.bytes(4)
	if d.err != nil {
		return nil, d.err
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("provenance: bad magic %q", magic)
	}
	switch v := d.u16(); {
	case d.err != nil:
		return nil, d.err
	case v == codecVersionV1:
		return readRunV1(d)
	case v == codecVersionV2:
		return readRunV2(br)
	default:
		return nil, fmt.Errorf("provenance: unsupported version %d", v)
	}
}

// readRunV1 decodes the fixed-width v1 operator stream following the
// magic/version prefix.
func readRunV1(d *decoder) (*Run, error) {
	nOps := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	run := &Run{ops: make(map[int]*Operator, capHint(nOps))}
	for i := 0; i < nOps; i++ {
		op := &Operator{}
		op.OID = int(d.u32())
		op.Type = engine.OpType(d.str())
		op.ManipUndefined = d.bool()
		nIn := int(d.u32())
		for j := 0; j < nIn && d.err == nil; j++ {
			var in engine.InputInfo
			in.Pred = int(d.u32())
			in.SourceName = d.str()
			in.AccessUndefined = d.bool()
			nAcc := int(d.u32())
			for k := 0; k < nAcc && d.err == nil; k++ {
				p, err := path.Parse(d.str())
				if err != nil && d.err == nil {
					d.err = err
				}
				in.Accessed = append(in.Accessed, p)
			}
			nSchema := int(d.u32())
			for k := 0; k < nSchema && d.err == nil; k++ {
				in.Schema = append(in.Schema, d.str())
			}
			op.Inputs = append(op.Inputs, in)
		}
		nManip := int(d.u32())
		for j := 0; j < nManip && d.err == nil; j++ {
			var m engine.Mapping
			inStr := d.str()
			outStr := d.str()
			m.GroupKey = d.bool()
			if d.err == nil {
				var err error
				if inStr != "" {
					if m.In, err = path.Parse(inStr); err != nil {
						d.err = err
					}
				}
				if m.Out, err = path.Parse(outStr); err != nil && d.err == nil {
					d.err = err
				}
			}
			op.Manipulated = append(op.Manipulated, m)
		}
		switch tag := d.u8(); tag {
		case 0:
		case 1:
			n := int(d.u32())
			op.SourceIDs = make([]SourceAssoc, 0, capHint(n))
			for j := 0; j < n && d.err == nil; j++ {
				op.SourceIDs = append(op.SourceIDs, SourceAssoc{ID: d.i64(), OrigID: d.i64()})
			}
		case 2:
			n := int(d.u32())
			op.Unary = make([]UnaryAssoc, 0, capHint(n))
			for j := 0; j < n && d.err == nil; j++ {
				op.Unary = append(op.Unary, UnaryAssoc{In: d.i64(), Out: d.i64()})
			}
		case 3:
			n := int(d.u32())
			op.Binary = make([]BinaryAssoc, 0, capHint(n))
			for j := 0; j < n && d.err == nil; j++ {
				op.Binary = append(op.Binary, BinaryAssoc{Left: d.i64(), Right: d.i64(), Out: d.i64()})
			}
		case 4:
			n := int(d.u32())
			op.Flatten = make([]FlattenAssoc, 0, capHint(n))
			for j := 0; j < n && d.err == nil; j++ {
				op.Flatten = append(op.Flatten, FlattenAssoc{In: d.i64(), Pos: int(d.u32()), Out: d.i64()})
			}
		case 5:
			n := int(d.u32())
			op.Agg = make([]AggAssoc, 0, capHint(n))
			for j := 0; j < n && d.err == nil; j++ {
				a := AggAssoc{Out: d.i64()}
				nIns := int(d.u32())
				a.Ins = make([]int64, 0, capHint(nIns))
				for k := 0; k < nIns && d.err == nil; k++ {
					a.Ins = append(a.Ins, d.i64())
				}
				op.Agg = append(op.Agg, a)
			}
		default:
			if d.err == nil {
				d.err = fmt.Errorf("provenance: unknown association tag %d", tag)
			}
		}
		if d.err != nil {
			return nil, d.err
		}
		run.ops[op.OID] = op
		run.order = append(run.order, op.OID)
	}
	return run, nil
}

// capHint bounds the initial capacity of decoded slices so corrupt or
// malicious length prefixes cannot force huge allocations; slices still grow
// to any genuine size via append.
func capHint(n int) int {
	const max = 1 << 16
	if n < 0 {
		return 0
	}
	if n > max {
		return max
	}
	return n
}

// encoder writes little-endian primitives, remembering the first error and
// the logical offset (bytes handed to the writer so far — used for per-op
// size attribution, which must not depend on when the buffer above the
// counting writer flushes).
type encoder struct {
	w   io.Writer
	off int64
	err error
}

func (e *encoder) write(p []byte) {
	if e.err != nil {
		return
	}
	var n int
	n, e.err = e.w.Write(p)
	e.off += int64(n)
}

func (e *encoder) bytes(p []byte) { e.write(p) }
func (e *encoder) u8(v uint8)     { e.write([]byte{v}) }

func (e *encoder) u16(v uint16) {
	var buf [2]byte
	binary.LittleEndian.PutUint16(buf[:], v)
	e.write(buf[:])
}

func (e *encoder) u32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	e.write(buf[:])
}

func (e *encoder) i64(v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	e.write(buf[:])
}

func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.write([]byte(s))
}

// decoder reads little-endian primitives, remembering the first error.
type decoder struct {
	r   io.Reader
	err error
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	buf := make([]byte, n)
	_, d.err = io.ReadFull(d.r, buf)
	return buf
}

func (d *decoder) u8() uint8 {
	b := d.bytes(1)
	if d.err != nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.bytes(2)
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.bytes(4)
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) i64() int64 {
	b := d.bytes(8)
	if d.err != nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	const maxStr = 1 << 20
	if n > maxStr {
		d.err = fmt.Errorf("provenance: string length %d exceeds limit", n)
		return ""
	}
	return string(d.bytes(int(n)))
}
