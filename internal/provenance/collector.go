package provenance

import (
	"sync"

	"pebble/internal/engine"
)

// Collector implements engine.CaptureSink and assembles a Run. Per-row events
// append to per-partition shards without locking (each partition is owned by
// one goroutine during execution); StartOperator takes the collector lock.
type Collector struct {
	mu    sync.Mutex
	ops   map[int]*opShards
	order []int
}

type opShards struct {
	info   engine.OpInfo
	shards []shard
}

type shard struct {
	unary   []UnaryAssoc
	binary  []BinaryAssoc
	flatten []FlattenAssoc
	agg     []AggAssoc
	source  []SourceAssoc
}

// NewCollector returns an empty collector ready to be passed as
// engine.Options.Sink.
func NewCollector() *Collector {
	return &Collector{ops: make(map[int]*opShards)}
}

// StartOperator implements engine.CaptureSink.
func (c *Collector) StartOperator(info engine.OpInfo, partitions int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if partitions < 1 {
		partitions = 1
	}
	c.ops[info.OID] = &opShards{info: info, shards: make([]shard, partitions)}
	c.order = append(c.order, info.OID)
}

// SourceRow implements engine.CaptureSink.
func (c *Collector) SourceRow(oid, part int, id, origID int64) {
	s := &c.ops[oid].shards[part]
	s.source = append(s.source, SourceAssoc{ID: id, OrigID: origID})
}

// Unary implements engine.CaptureSink.
func (c *Collector) Unary(oid, part int, inID, outID int64) {
	s := &c.ops[oid].shards[part]
	s.unary = append(s.unary, UnaryAssoc{In: inID, Out: outID})
}

// Binary implements engine.CaptureSink.
func (c *Collector) Binary(oid, part int, leftID, rightID, outID int64) {
	s := &c.ops[oid].shards[part]
	s.binary = append(s.binary, BinaryAssoc{Left: leftID, Right: rightID, Out: outID})
}

// FlattenAssoc implements engine.CaptureSink.
func (c *Collector) FlattenAssoc(oid, part int, inID int64, pos int, outID int64) {
	s := &c.ops[oid].shards[part]
	s.flatten = append(s.flatten, FlattenAssoc{In: inID, Pos: pos, Out: outID})
}

// AggAssoc implements engine.CaptureSink.
func (c *Collector) AggAssoc(oid, part int, inIDs []int64, outID int64) {
	s := &c.ops[oid].shards[part]
	ids := make([]int64, len(inIDs))
	copy(ids, inIDs)
	s.agg = append(s.agg, AggAssoc{Ins: ids, Out: outID})
}

// Finish merges the shards into an immutable Run. The collector can be
// reused afterwards for a fresh capture.
func (c *Collector) Finish() *Run {
	c.mu.Lock()
	defer c.mu.Unlock()
	run := &Run{ops: make(map[int]*Operator, len(c.ops))}
	for _, oid := range c.order {
		os := c.ops[oid]
		op := &Operator{
			OID:            os.info.OID,
			Type:           os.info.Type,
			Inputs:         os.info.Inputs,
			Manipulated:    os.info.Manipulated,
			ManipUndefined: os.info.ManipUndefined,
		}
		for _, sh := range os.shards {
			op.Unary = append(op.Unary, sh.unary...)
			op.Binary = append(op.Binary, sh.binary...)
			op.Flatten = append(op.Flatten, sh.flatten...)
			op.Agg = append(op.Agg, sh.agg...)
			op.SourceIDs = append(op.SourceIDs, sh.source...)
		}
		run.ops[oid] = op
		run.order = append(run.order, oid)
	}
	c.ops = make(map[int]*opShards)
	c.order = nil
	return run
}

// Capture is a convenience wrapper: it runs the pipeline with a fresh
// collector and returns both the execution result and the captured run.
func Capture(p *engine.Pipeline, inputs map[string]*engine.Dataset, opts engine.Options) (*engine.Result, *Run, error) {
	c := NewCollector()
	opts.Sink = c
	res, err := engine.Run(p, inputs, opts)
	if err != nil {
		return nil, nil, err
	}
	return res, c.Finish(), nil
}
