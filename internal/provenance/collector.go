package provenance

import (
	"context"
	"sort"
	"sync"

	"pebble/internal/engine"
	"pebble/internal/obs"
)

// Collector implements engine.CaptureSink and assembles a Run. The executor
// requests one PartitionSink handle per partition morsel; the registry lock
// is paid once per morsel in Partition, and the handle then appends to its
// shard with zero locking and no map lookups (each morsel is owned by one
// worker during execution). StartOperator takes the write lock — the engine
// announces concurrently executing DAG branches while morsels of other
// operators still flow.
type Collector struct {
	mu    sync.RWMutex
	ops   map[int]*opShards // guarded by mu
	order []int             // guarded by mu
	// free recycles shard backing arrays across Finish/reuse cycles: the
	// merge copies every association out of the shards, so the arrays can
	// back the next capture without aliasing the returned Run.
	free [][]shard // guarded by mu

	// rec receives the Finish span and per-operator provenance-size
	// counters; set it with Observe before the run starts (not guarded —
	// written only while the collector is idle).
	rec *obs.Recorder
}

type opShards struct {
	info   engine.OpInfo
	shards []shard
}

// shard buffers the association rows of one (operator, partition) pair. It
// is the collector's engine.PartitionSink: the executor owns a shard for the
// duration of a morsel, so the append methods need no synchronisation.
type shard struct {
	unary   []UnaryAssoc
	binary  []BinaryAssoc
	flatten []FlattenAssoc
	agg     []AggAssoc
	source  []SourceAssoc
}

// SourceRow implements engine.PartitionSink.
func (s *shard) SourceRow(id, origID int64) {
	s.source = append(s.source, SourceAssoc{ID: id, OrigID: origID})
}

// Unary implements engine.PartitionSink.
func (s *shard) Unary(inID, outID int64) {
	s.unary = append(s.unary, UnaryAssoc{In: inID, Out: outID})
}

// Binary implements engine.PartitionSink.
func (s *shard) Binary(leftID, rightID, outID int64) {
	s.binary = append(s.binary, BinaryAssoc{Left: leftID, Right: rightID, Out: outID})
}

// Flatten implements engine.PartitionSink.
func (s *shard) Flatten(inID int64, pos int, outID int64) {
	s.flatten = append(s.flatten, FlattenAssoc{In: inID, Pos: pos, Out: outID})
}

// Agg implements engine.PartitionSink, taking ownership of inIDs (the
// executor materialises the slice for the sink and never reuses it).
func (s *shard) Agg(inIDs []int64, outID int64) {
	s.agg = append(s.agg, AggAssoc{Ins: inIDs, Out: outID})
}

// The bulk id-range appends below are the vectorized executor's morsel-level
// emission (one call per partition instead of one per row). The range
// slices are borrowed scratch — the loops copy every id into the shard's
// own arrays, so the rows land exactly as the equivalent per-row calls
// would, in the same order.

// SourceRows implements engine.PartitionSink.
func (s *shard) SourceRows(base int64, origIDs []int64) {
	for i, orig := range origIDs {
		s.source = append(s.source, SourceAssoc{ID: base + int64(i), OrigID: orig})
	}
}

// UnaryRange implements engine.PartitionSink.
func (s *shard) UnaryRange(inIDs []int64, base int64) {
	for i, in := range inIDs {
		s.unary = append(s.unary, UnaryAssoc{In: in, Out: base + int64(i)})
	}
}

// BinaryRange implements engine.PartitionSink.
func (s *shard) BinaryRange(leftIDs, rightIDs []int64, base int64) {
	for i := range leftIDs {
		s.binary = append(s.binary, BinaryAssoc{Left: leftIDs[i], Right: rightIDs[i], Out: base + int64(i)})
	}
}

// FlattenRange implements engine.PartitionSink.
func (s *shard) FlattenRange(inIDs []int64, positions []int, base int64) {
	for i := range inIDs {
		s.flatten = append(s.flatten, FlattenAssoc{In: inIDs[i], Pos: positions[i], Out: base + int64(i)})
	}
}

// NewCollector returns an empty collector ready to be passed as
// engine.Options.Sink.
func NewCollector() *Collector {
	return &Collector{ops: make(map[int]*opShards)}
}

// Observe attaches a recorder: Finish reports its merge time as a span and
// the per-operator provenance footprint (the deterministic Sizes model) as
// counters. Call before the capture run starts; a nil recorder is fine.
func (c *Collector) Observe(rec *obs.Recorder) { c.rec = rec }

// maxFreeShards bounds the recycled backing arrays a collector retains, so a
// one-off giant pipeline cannot pin its shard memory forever.
const maxFreeShards = 32

// StartOperator implements engine.CaptureSink.
func (c *Collector) StartOperator(info engine.OpInfo, partitions int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if partitions < 1 {
		partitions = 1
	}
	c.ops[info.OID] = &opShards{info: info, shards: c.takeShards(partitions)}
	c.order = append(c.order, info.OID)
}

// takeShards returns a zeroed-length shard slice for partitions morsels,
// reusing a recycled backing array when one is large enough. Caller holds mu.
func (c *Collector) takeShards(partitions int) []shard {
	for i, sh := range c.free {
		if cap(sh) < partitions {
			continue
		}
		c.free[i] = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
		sh = sh[:partitions]
		for j := range sh {
			s := &sh[j]
			s.unary = s.unary[:0]
			s.binary = s.binary[:0]
			s.flatten = s.flatten[:0]
			s.agg = s.agg[:0]
			s.source = s.source[:0]
		}
		return sh
	}
	return make([]shard, partitions)
}

// Partition implements engine.CaptureSink: one read-locked registry lookup
// per morsel, returning the shard the morsel owns. All subsequent appends go
// through the handle without any locking.
func (c *Collector) Partition(oid, part int) engine.PartitionSink {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return &c.ops[oid].shards[part]
}

// Finish merges the shards into an immutable Run. The collector can be
// reused afterwards for a fresh capture; the shard backing arrays are
// recycled (the merge copies every association row, so the Run never aliases
// them). Operators are ordered by id — the engine announces concurrently
// executing DAG branches in schedule order, but the serialized run must not
// depend on that schedule. Each association slice is allocated at its exact
// final size before merging, so large runs don't pay repeated append
// re-allocations.
func (c *Collector) Finish() *Run {
	defer c.rec.StartSpan(obs.SpanCollectorFinish)()
	c.mu.Lock()
	defer c.mu.Unlock()
	run := &Run{ops: make(map[int]*Operator, len(c.ops)), order: make([]int, 0, len(c.ops))}
	sort.Ints(c.order)
	for _, oid := range c.order {
		os := c.ops[oid]
		op := &Operator{
			OID:            os.info.OID,
			Type:           os.info.Type,
			Inputs:         os.info.Inputs,
			Manipulated:    os.info.Manipulated,
			ManipUndefined: os.info.ManipUndefined,
		}
		var nUnary, nBinary, nFlatten, nAgg, nSource int
		for _, sh := range os.shards {
			nUnary += len(sh.unary)
			nBinary += len(sh.binary)
			nFlatten += len(sh.flatten)
			nAgg += len(sh.agg)
			nSource += len(sh.source)
		}
		// Slices stay nil when empty (codec round-trips rely on that).
		if nUnary > 0 {
			op.Unary = make([]UnaryAssoc, 0, nUnary)
		}
		if nBinary > 0 {
			op.Binary = make([]BinaryAssoc, 0, nBinary)
		}
		if nFlatten > 0 {
			op.Flatten = make([]FlattenAssoc, 0, nFlatten)
		}
		if nAgg > 0 {
			op.Agg = make([]AggAssoc, 0, nAgg)
		}
		if nSource > 0 {
			op.SourceIDs = make([]SourceAssoc, 0, nSource)
		}
		for _, sh := range os.shards {
			op.Unary = append(op.Unary, sh.unary...)
			op.Binary = append(op.Binary, sh.binary...)
			op.Flatten = append(op.Flatten, sh.flatten...)
			op.Agg = append(op.Agg, sh.agg...)
			op.SourceIDs = append(op.SourceIDs, sh.source...)
		}
		if len(c.free) < maxFreeShards {
			c.free = append(c.free, os.shards)
		}
		run.ops[oid] = op
		run.order = append(run.order, oid)
		c.rec.Add(oid, 0, obs.ProvBytes, op.Sizes().Total())
	}
	c.ops = make(map[int]*opShards)
	c.order = nil
	return run
}

// Capture is a convenience wrapper: it runs the pipeline with a fresh
// collector and returns both the execution result and the captured run.
// When opts.Recorder is set, the collector reports its Finish span and
// per-operator provenance footprints into it.
func Capture(p *engine.Pipeline, inputs map[string]*engine.Dataset, opts engine.Options) (*engine.Result, *Run, error) {
	return CaptureContext(context.Background(), p, inputs, opts)
}

// CaptureContext is Capture with cooperative cancellation: the context is
// threaded to engine.RunContext, which checks it at morsel boundaries. A
// cancelled capture returns ctx's error and discards the partial provenance.
func CaptureContext(ctx context.Context, p *engine.Pipeline, inputs map[string]*engine.Dataset, opts engine.Options) (*engine.Result, *Run, error) {
	c := NewCollector()
	c.Observe(opts.Recorder)
	opts.Sink = c
	res, err := engine.RunContext(ctx, p, inputs, opts)
	if err != nil {
		return nil, nil, err
	}
	return res, c.Finish(), nil
}
