package provenance

import (
	"sort"
	"sync"

	"pebble/internal/engine"
	"pebble/internal/obs"
)

// Collector implements engine.CaptureSink and assembles a Run. Per-row events
// append to per-partition shards without locking (each partition morsel is
// owned by one worker during execution); StartOperator takes the write lock,
// and the per-row methods only read-lock the operator registry — the engine
// executes independent DAG branches concurrently, so StartOperator for one
// operator races with per-row events of another.
type Collector struct {
	mu    sync.RWMutex
	ops   map[int]*opShards // guarded by mu
	order []int             // guarded by mu

	// rec receives the Finish span and per-operator provenance-size
	// counters; set it with Observe before the run starts (not guarded —
	// written only while the collector is idle).
	rec *obs.Recorder
}

type opShards struct {
	info   engine.OpInfo
	shards []shard
}

type shard struct {
	unary   []UnaryAssoc
	binary  []BinaryAssoc
	flatten []FlattenAssoc
	agg     []AggAssoc
	source  []SourceAssoc
}

// NewCollector returns an empty collector ready to be passed as
// engine.Options.Sink.
func NewCollector() *Collector {
	return &Collector{ops: make(map[int]*opShards)}
}

// Observe attaches a recorder: Finish reports its merge time as a span and
// the per-operator provenance footprint (the deterministic Sizes model) as
// counters. Call before the capture run starts; a nil recorder is fine.
func (c *Collector) Observe(rec *obs.Recorder) { c.rec = rec }

// StartOperator implements engine.CaptureSink.
func (c *Collector) StartOperator(info engine.OpInfo, partitions int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if partitions < 1 {
		partitions = 1
	}
	c.ops[info.OID] = &opShards{info: info, shards: make([]shard, partitions)}
	c.order = append(c.order, info.OID)
}

// shard returns the per-partition shard of an operator. The read lock only
// protects the registry lookup; the returned shard is owned by the calling
// partition morsel, so appends to it need no lock.
func (c *Collector) shard(oid, part int) *shard {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return &c.ops[oid].shards[part]
}

// SourceRow implements engine.CaptureSink.
func (c *Collector) SourceRow(oid, part int, id, origID int64) {
	s := c.shard(oid, part)
	s.source = append(s.source, SourceAssoc{ID: id, OrigID: origID})
}

// Unary implements engine.CaptureSink.
func (c *Collector) Unary(oid, part int, inID, outID int64) {
	s := c.shard(oid, part)
	s.unary = append(s.unary, UnaryAssoc{In: inID, Out: outID})
}

// Binary implements engine.CaptureSink.
func (c *Collector) Binary(oid, part int, leftID, rightID, outID int64) {
	s := c.shard(oid, part)
	s.binary = append(s.binary, BinaryAssoc{Left: leftID, Right: rightID, Out: outID})
}

// FlattenAssoc implements engine.CaptureSink.
func (c *Collector) FlattenAssoc(oid, part int, inID int64, pos int, outID int64) {
	s := c.shard(oid, part)
	s.flatten = append(s.flatten, FlattenAssoc{In: inID, Pos: pos, Out: outID})
}

// AggAssoc implements engine.CaptureSink.
func (c *Collector) AggAssoc(oid, part int, inIDs []int64, outID int64) {
	s := c.shard(oid, part)
	ids := make([]int64, len(inIDs))
	copy(ids, inIDs)
	s.agg = append(s.agg, AggAssoc{Ins: ids, Out: outID})
}

// Finish merges the shards into an immutable Run. The collector can be
// reused afterwards for a fresh capture. Operators are ordered by id — the
// engine announces concurrently executing DAG branches in schedule order,
// but the serialized run must not depend on that schedule. Each association
// slice is allocated at its exact final size before merging, so large runs
// don't pay repeated append re-allocations.
func (c *Collector) Finish() *Run {
	defer c.rec.StartSpan(obs.SpanCollectorFinish)()
	c.mu.Lock()
	defer c.mu.Unlock()
	run := &Run{ops: make(map[int]*Operator, len(c.ops))}
	sort.Ints(c.order)
	for _, oid := range c.order {
		os := c.ops[oid]
		op := &Operator{
			OID:            os.info.OID,
			Type:           os.info.Type,
			Inputs:         os.info.Inputs,
			Manipulated:    os.info.Manipulated,
			ManipUndefined: os.info.ManipUndefined,
		}
		var nUnary, nBinary, nFlatten, nAgg, nSource int
		for _, sh := range os.shards {
			nUnary += len(sh.unary)
			nBinary += len(sh.binary)
			nFlatten += len(sh.flatten)
			nAgg += len(sh.agg)
			nSource += len(sh.source)
		}
		// Slices stay nil when empty (codec round-trips rely on that).
		if nUnary > 0 {
			op.Unary = make([]UnaryAssoc, 0, nUnary)
		}
		if nBinary > 0 {
			op.Binary = make([]BinaryAssoc, 0, nBinary)
		}
		if nFlatten > 0 {
			op.Flatten = make([]FlattenAssoc, 0, nFlatten)
		}
		if nAgg > 0 {
			op.Agg = make([]AggAssoc, 0, nAgg)
		}
		if nSource > 0 {
			op.SourceIDs = make([]SourceAssoc, 0, nSource)
		}
		for _, sh := range os.shards {
			op.Unary = append(op.Unary, sh.unary...)
			op.Binary = append(op.Binary, sh.binary...)
			op.Flatten = append(op.Flatten, sh.flatten...)
			op.Agg = append(op.Agg, sh.agg...)
			op.SourceIDs = append(op.SourceIDs, sh.source...)
		}
		run.ops[oid] = op
		run.order = append(run.order, oid)
		c.rec.Add(oid, 0, obs.ProvBytes, op.Sizes().Total())
	}
	c.ops = make(map[int]*opShards)
	c.order = nil
	return run
}

// Capture is a convenience wrapper: it runs the pipeline with a fresh
// collector and returns both the execution result and the captured run.
// When opts.Recorder is set, the collector reports its Finish span and
// per-operator provenance footprints into it.
func Capture(p *engine.Pipeline, inputs map[string]*engine.Dataset, opts engine.Options) (*engine.Result, *Run, error) {
	c := NewCollector()
	c.Observe(opts.Recorder)
	opts.Sink = c
	res, err := engine.Run(p, inputs, opts)
	if err != nil {
		return nil, nil, err
	}
	return res, c.Finish(), nil
}
