package provenance

import (
	"testing"

	"pebble/internal/engine"
)

// fillCollector populates a collector with a synthetic run: ops operators,
// each with parts shards of rowsPerShard associations of every kind. The
// shape mirrors what a mid-size capture produces, so the benchmark isolates
// exactly the merge cost of Finish.
func fillCollector(c *Collector, ops, parts, rowsPerShard int) {
	for oid := 1; oid <= ops; oid++ {
		c.StartOperator(engine.OpInfo{OID: oid, Type: engine.OpMap}, parts)
		for p := 0; p < parts; p++ {
			ps := c.Partition(oid, p)
			for i := 0; i < rowsPerShard; i++ {
				id := int64(oid*1000000 + p*10000 + i)
				ps.SourceRow(id, id)
				ps.Unary(id, id+1)
				ps.Binary(id, id+1, id+2)
				ps.Flatten(id, i, id+3)
				ps.Agg([]int64{id, id + 1}, id+4)
			}
		}
	}
}

// BenchmarkCollectorFinish measures merging the per-partition shards into an
// immutable Run. Finish pre-sizes every association slice from the summed
// shard lengths, so the merge performs one allocation per non-empty kind
// instead of O(log n) append growths.
func BenchmarkCollectorFinish(b *testing.B) {
	const ops, parts, rowsPerShard = 8, 16, 500
	c := NewCollector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fillCollector(c, ops, parts, rowsPerShard)
		b.StartTimer()
		run := c.Finish()
		if len(run.order) != ops {
			b.Fatalf("got %d operators, want %d", len(run.order), ops)
		}
	}
}
