package experiments

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"

	"pebble/internal/backtrace"
	"pebble/internal/engine"
	"pebble/internal/provenance"
	"pebble/internal/workload"
)

// QuerySweepRow is one scenario of the query-side raw-speed sweep: the same
// persisted run reloaded and traced through the cold path (eager decode, per
// operator index rebuild) and through the warm path (lazy column decode plus
// a persisted index sidecar), together with the interpreted vs compiled
// tree-pattern match times and the lazy-decode byte accounting of a
// single-operator trace.
type QuerySweepRow struct {
	Scenario     string `json:"scenario"`
	SimGB        int    `json:"sim_gb"`
	StreamBytes  int64  `json:"stream_bytes"`
	SidecarBytes int64  `json:"sidecar_bytes"`
	// Cold is reload-to-answer without any persisted help: eager ReadRun, a
	// fresh tracer rebuilding every operator index, and a first trace. Warm
	// is the same over the same bytes via ReadRunLazy plus LoadIndexes. The
	// question-answer phase proper runs on ready indexes and is identical on
	// both paths; it is reported separately as QuestionTrace.
	Cold          time.Duration `json:"cold_reload_trace_ns"`
	Warm          time.Duration `json:"warm_reload_trace_ns"`
	Speedup       float64       `json:"cold_over_warm"`
	QuestionTrace time.Duration `json:"question_trace_ns"`
	// Byte accounting of a single-operator trace on a fresh lazy run: only
	// the traced operator's association region may materialise.
	AssocBytesTotal   int64 `json:"assoc_bytes_total"`
	AssocBytesDecoded int64 `json:"assoc_bytes_decoded_single_op"`
	LazyStrictlyFewer bool  `json:"lazy_strictly_fewer"`
	// Interpreted vs compiled tree-pattern matching over the full result,
	// both as sequential per-item loops so parallelism cancels out.
	InterpMatch   time.Duration `json:"interp_match_ns"`
	CompiledMatch time.Duration `json:"compiled_match_ns"`
	MatchSpeedup  float64       `json:"interp_over_compiled"`
	Items         int           `json:"traced_items"`
	// Identical asserts the acceptance contract: the rendered backtrace
	// results of the eager, lazy, and lazy+sidecar load paths are identical.
	Identical bool `json:"identical_results"`
}

// QuerySweep measures the reload-and-trace paths for every scenario: capture
// once, persist the run (v2 stream) and its index sidecar, then answer the
// scenario's provenance question cold (eager decode + index rebuild) and
// warm (lazy decode + sidecar) over the identical bytes. The two closures
// are interleaved per round (measurePair), so allocator drift cancels out.
func QuerySweep(cfg Config, sweep Sweep) ([]QuerySweepRow, error) {
	cfg = cfg.withDefaults()
	gb := 10
	if len(sweep.SimGBs) > 0 {
		gb = sweep.SimGBs[0]
	}
	scale := ScaleFor(gb, sweep.TweetsPerGB, sweep.RecordsPerGB)
	var rows []QuerySweepRow
	for _, sc := range workload.AllScenarios() {
		row, err := querySweepScenario(cfg, sc, scale)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func querySweepScenario(cfg Config, sc workload.Scenario, scale workload.Scale) (QuerySweepRow, error) {
	inputs := sc.Input(scale, cfg.Partitions)
	pipe := sc.Build()
	res, run, err := provenance.Capture(pipe, inputs, cfg.options())
	if err != nil {
		return QuerySweepRow{}, err
	}
	sink := pipe.Sink().ID()

	// Persist the run and build its sidecar the way pebble-shell `save` does:
	// from a lazy reload of the exact bytes written (the sidecar is keyed by
	// the stream's content hash).
	var stream bytes.Buffer
	if _, err := run.WriteTo(&stream); err != nil {
		return QuerySweepRow{}, err
	}
	lazyRun, err := provenance.ReadRunLazy(stream.Bytes())
	if err != nil {
		return QuerySweepRow{}, err
	}
	var sidecar bytes.Buffer
	if _, err := backtrace.NewTracer(lazyRun).WriteIndexes(&sidecar); err != nil {
		return QuerySweepRow{}, err
	}
	row := QuerySweepRow{
		Scenario:     sc.Name,
		SimGB:        scale.SimGB,
		StreamBytes:  int64(stream.Len()),
		SidecarBytes: int64(sidecar.Len()),
	}

	// Reload-to-answer: both closures load the identical bytes, make every
	// operator index query-ready (cold rebuilds them, warm installs the
	// sidecar), and answer a first one-item trace. The walk cost of the full
	// scenario question is identical on ready indexes either way and is
	// measured separately below, so the closures isolate what the tentpole
	// changes: decode and index readiness.
	probe, probeItem, err := probeQuestion(lazyRun)
	if err != nil {
		return QuerySweepRow{}, err
	}
	cold := func() error {
		r, err := provenance.ReadRun(bytes.NewReader(stream.Bytes()))
		if err != nil {
			return err
		}
		tr := backtrace.NewTracer(r)
		tr.BuildIndexes()
		_, err = tr.Trace(probe, probeItem.Clone())
		return err
	}
	warm := func() error {
		r, err := provenance.ReadRunLazy(stream.Bytes())
		if err != nil {
			return err
		}
		tr := backtrace.NewTracer(r)
		if err := tr.LoadIndexes(sidecar.Bytes()); err != nil {
			return err
		}
		_, err = tr.Trace(probe, probeItem.Clone())
		return err
	}
	loops, err := calibrate(warm)
	if err != nil {
		return QuerySweepRow{}, err
	}
	if row.Cold, row.Warm, err = measurePair(cfg, repeat(loops, cold), repeat(loops, warm)); err != nil {
		return QuerySweepRow{}, err
	}
	row.Cold /= time.Duration(loops)
	row.Warm /= time.Duration(loops)
	if row.Warm > 0 {
		row.Speedup = float64(row.Cold) / float64(row.Warm)
	}

	// The question-answer phase on ready indexes: the scenario's full pattern
	// question against a warm tracer (this cost is shared by both paths).
	question := sc.Pattern.Match(res.Output)
	warmTracer := backtrace.NewTracer(lazyRun)
	if err := warmTracer.LoadIndexes(sidecar.Bytes()); err != nil {
		return QuerySweepRow{}, err
	}
	if row.QuestionTrace, err = timeIt(cfg, func() error {
		traced, err := warmTracer.Trace(sink, question.Clone())
		if err != nil {
			return err
		}
		row.Items = tracedItems(traced)
		return nil
	}); err != nil {
		return QuerySweepRow{}, err
	}

	// Cross-check: the three load paths must answer byte-identically.
	renders := make([]string, 0, 3)
	for _, load := range []func() (*provenance.Run, *backtrace.Tracer, error){
		func() (*provenance.Run, *backtrace.Tracer, error) {
			r, err := provenance.ReadRun(bytes.NewReader(stream.Bytes()))
			if err != nil {
				return nil, nil, err
			}
			return r, backtrace.NewTracer(r), nil
		},
		func() (*provenance.Run, *backtrace.Tracer, error) {
			r, err := provenance.ReadRunLazy(stream.Bytes())
			if err != nil {
				return nil, nil, err
			}
			return r, backtrace.NewTracer(r), nil
		},
		func() (*provenance.Run, *backtrace.Tracer, error) {
			r, err := provenance.ReadRunLazy(stream.Bytes())
			if err != nil {
				return nil, nil, err
			}
			tr := backtrace.NewTracer(r)
			if err := tr.LoadIndexes(sidecar.Bytes()); err != nil {
				return nil, nil, err
			}
			return r, tr, nil
		},
	} {
		_, tr, err := load()
		if err != nil {
			return QuerySweepRow{}, err
		}
		traced, err := tr.Trace(sink, question.Clone())
		if err != nil {
			return QuerySweepRow{}, err
		}
		renders = append(renders, RenderTraceResult(traced))
	}
	row.Identical = renders[0] == renders[1] && renders[1] == renders[2]

	// Single-operator trace on a fresh lazy run: only the probed operator's
	// association region materialises (the walk never decodes source bags),
	// so the decoded share must be strictly below the stream total.
	if row.AssocBytesDecoded, row.AssocBytesTotal, err = singleOpProbe(stream.Bytes()); err != nil {
		return QuerySweepRow{}, err
	}
	row.LazyStrictlyFewer = row.AssocBytesDecoded < row.AssocBytesTotal

	// Interpreted vs compiled matching, both as sequential per-item loops.
	compiled := sc.Pattern.Compile()
	rowsOut := res.Output.Rows()
	interp := func() error {
		for _, r := range rowsOut {
			sc.Pattern.MatchItem(r.Value)
		}
		return nil
	}
	comp := func() error {
		for _, r := range rowsOut {
			compiled.MatchItem(r.Value)
		}
		return nil
	}
	mloops, err := calibrate(comp)
	if err != nil {
		return QuerySweepRow{}, err
	}
	if row.InterpMatch, row.CompiledMatch, err = measurePair(cfg, repeat(mloops, interp), repeat(mloops, comp)); err != nil {
		return QuerySweepRow{}, err
	}
	row.InterpMatch /= time.Duration(mloops)
	row.CompiledMatch /= time.Duration(mloops)
	if row.CompiledMatch > 0 {
		row.MatchSpeedup = float64(row.InterpMatch) / float64(row.CompiledMatch)
	}
	return row, nil
}

// calibrate picks an inner iteration count that stretches one timed region of
// fn to roughly measureTarget. Sub-millisecond closures otherwise sample the
// collector's pauses instead of their own cost — the timed region must
// amortise allocation over many runs for the pair medians to converge.
func calibrate(fn func() error) (int, error) {
	if err := fn(); err != nil { // warm once before timing
		return 0, err
	}
	start := time.Now()
	if err := fn(); err != nil {
		return 0, err
	}
	once := time.Since(start)
	const measureTarget = 25 * time.Millisecond
	loops := 1
	if once > 0 {
		loops = int(measureTarget / once)
	}
	if loops < 1 {
		loops = 1
	}
	if loops > 4096 {
		loops = 4096
	}
	return loops, nil
}

// repeat wraps fn so one timed call runs it loops times.
func repeat(loops int, fn func() error) func() error {
	return func() error {
		for i := 0; i < loops; i++ {
			if err := fn(); err != nil {
				return err
			}
		}
		return nil
	}
}

// findProbe returns the first operator sitting directly above sources — the
// single-operator trace target.
func findProbe(run *provenance.Run) (*provenance.Operator, error) {
	for _, op := range run.Operators() {
		if op.Type == engine.OpSource {
			continue
		}
		aboveSources := true
		for _, in := range op.Inputs {
			if pred, ok := run.Op(in.Pred); !ok || pred.Type != engine.OpSource {
				aboveSources = false
				break
			}
		}
		if aboveSources {
			return op, nil
		}
	}
	return nil, fmt.Errorf("no operator directly above a source")
}

// probeOuts collects up to n output identifiers of the operator's captured
// associations.
func probeOuts(op *provenance.Operator, n int) []int64 {
	var out []int64
	add := func(id int64) bool {
		out = append(out, id)
		return len(out) >= n
	}
	switch op.AssocKind() {
	case provenance.AssocUnary:
		for _, a := range op.UnaryAssocs() {
			if add(a.Out) {
				break
			}
		}
	case provenance.AssocBinary:
		for _, a := range op.BinaryAssocs() {
			if add(a.Out) {
				break
			}
		}
	case provenance.AssocFlatten:
		for _, a := range op.FlattenAssocs() {
			if add(a.Out) {
				break
			}
		}
	case provenance.AssocAgg:
		for _, a := range op.AggAssocs() {
			if add(a.Out) {
				break
			}
		}
	}
	return out
}

// probeQuestion builds the one-item first-trace question of the reload
// closures: a single output of the operator directly above the sources.
func probeQuestion(run *provenance.Run) (oid int, b *backtrace.Structure, err error) {
	probe, err := findProbe(run)
	if err != nil {
		return 0, nil, err
	}
	outs := probeOuts(probe, 1)
	if len(outs) == 0 {
		return 0, nil, fmt.Errorf("operator %d captured no associations", probe.OID)
	}
	b = backtrace.NewStructure()
	b.Add(outs[0], backtrace.NewTree())
	return probe.OID, b, nil
}

// singleOpProbe traces a handful of outputs of the first operator sitting
// directly above sources on a fresh lazy run and returns the decoded vs
// total association bytes.
func singleOpProbe(stream []byte) (decoded, total int64, err error) {
	run, err := provenance.ReadRunLazy(stream)
	if err != nil {
		return 0, 0, err
	}
	probe, err := findProbe(run)
	if err != nil {
		return 0, 0, err
	}
	b := backtrace.NewStructure()
	for _, out := range probeOuts(probe, 64) {
		b.Add(out, backtrace.NewTree())
	}
	if _, err := backtrace.Trace(run, probe.OID, b); err != nil {
		return 0, 0, err
	}
	return run.AssocBytesDecoded(), run.AssocBytesTotal(), nil
}

// tracedItems counts the traced input items across all sources.
func tracedItems(r *backtrace.Result) int {
	n := 0
	for _, s := range r.BySource {
		n += s.Len()
	}
	return n
}

// RenderTraceResult renders a backtrace result deterministically (sources in
// ascending operator order, items in ascending identifier order) — the
// byte-identity yardstick of the load-path cross-checks.
func RenderTraceResult(r *backtrace.Result) string {
	var oids []int
	for oid := range r.BySource {
		oids = append(oids, oid)
	}
	sort.Ints(oids)
	var sb strings.Builder
	for _, oid := range oids {
		fmt.Fprintf(&sb, "source %d\n%s", oid, r.BySource[oid].String())
	}
	return sb.String()
}

// RenderQuerySweep renders the query sweep.
func RenderQuerySweep(title string, rows []QuerySweepRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%-4s %10s %10s %10s %10s %8s %10s %7s %10s %10s %8s %6s %5s\n",
		title, "S", "stream", "sidecar", "cold", "warm", "speedup", "qtrace", "lazy%",
		"interp", "compiled", "speedup", "items", "ident")
	for _, r := range rows {
		lazyPct := 0.0
		if r.AssocBytesTotal > 0 {
			lazyPct = 100 * float64(r.AssocBytesDecoded) / float64(r.AssocBytesTotal)
		}
		fmt.Fprintf(&sb, "%-4s %10d %10d %10s %10s %7.1fx %10s %6.1f%% %10s %10s %7.1fx %6d %5v\n",
			r.Scenario, r.StreamBytes, r.SidecarBytes, fmtDur(r.Cold), fmtDur(r.Warm),
			r.Speedup, fmtDur(r.QuestionTrace), lazyPct, fmtDur(r.InterpMatch), fmtDur(r.CompiledMatch),
			r.MatchSpeedup, r.Items, r.Identical)
	}
	return sb.String()
}
