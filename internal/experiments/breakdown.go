package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"pebble/internal/backtrace"
	"pebble/internal/engine"
	"pebble/internal/obs"
	"pebble/internal/provenance"
	"pebble/internal/workload"
)

// BreakdownRow is one operator of a per-operator capture breakdown: the
// operator's own wall time with and without provenance capture plus its
// deterministic work counters from the capture run.
type BreakdownRow struct {
	OID         int           `json:"oid"`
	Type        string        `json:"type"`
	Plain       time.Duration `json:"plain_ns"`   // per-rep operator time without capture
	Capture     time.Duration `json:"capture_ns"` // per-rep operator time with capture
	OverheadPct float64       `json:"overhead_pct"`
	RowsIn      int64         `json:"rows_in"`
	RowsOut     int64         `json:"rows_out"`
	ExprEvals   int64         `json:"expr_evals"`
	KeysHashed  int64         `json:"keys_hashed"`
	AssocRows   int64         `json:"assoc_rows"`
	ProvBytes   int64         `json:"prov_bytes"`
}

// BreakdownReport is the full per-operator breakdown of one scenario plus
// the match/backtrace split of one provenance query over the capture.
type BreakdownReport struct {
	Scenario string         `json:"scenario"`
	SimGB    int            `json:"sim_gb"`
	Ops      []BreakdownRow `json:"ops"`
	// QueryMatch and QueryBacktrace split one tree-pattern query's time into
	// its matching and backtracing phases (Sec. 7.3.3 discusses both).
	QueryMatch     time.Duration `json:"query_match_ns"`
	QueryBacktrace time.Duration `json:"query_backtrace_ns"`
}

// CaptureBreakdown attributes the capture overhead of one scenario to its
// individual operators: the pipeline runs Reps times plain and Reps times
// under capture, each with its own recorder, interleaved so allocator and
// scheduler drift cancels out. Counter totals divide exactly by Reps
// (counters are deterministic per run); timings are averaged.
func CaptureBreakdown(sc workload.Scenario, scale workload.Scale, cfg Config) (*BreakdownReport, error) {
	cfg = cfg.withDefaults()
	inputs := sc.Input(scale, cfg.Partitions)
	recPlain, recCapture := obs.NewRecorder(), obs.NewRecorder()
	optsPlain, optsCapture := cfg.options(), cfg.options()
	optsPlain.Recorder = recPlain
	optsCapture.Recorder = recCapture

	// Warm-up both paths without recorders.
	if _, err := engine.Run(sc.Build(), inputs, cfg.options()); err != nil {
		return nil, err
	}
	if _, _, err := provenance.Capture(sc.Build(), inputs, cfg.options()); err != nil {
		return nil, err
	}

	var lastRes *engine.Result
	var lastRun *provenance.Run
	var lastPipe *engine.Pipeline
	for i := 0; i < cfg.Reps; i++ {
		runtime.GC()
		if _, err := engine.Run(sc.Build(), inputs, optsPlain); err != nil {
			return nil, err
		}
		runtime.GC()
		pipe := sc.Build()
		res, run, err := provenance.Capture(pipe, inputs, optsCapture)
		if err != nil {
			return nil, err
		}
		lastRes, lastRun, lastPipe = res, run, pipe
	}

	// One observed query over the last capture for the match/backtrace split.
	b := sc.Pattern.MatchObserved(lastRes.Output, recCapture)
	if _, err := backtrace.NewTracer(lastRun).Observe(recCapture).Trace(lastPipe.Sink().ID(), b); err != nil {
		return nil, err
	}

	plain, capture := recPlain.Snapshot(), recCapture.Snapshot()
	reps := int64(cfg.Reps)
	report := &BreakdownReport{
		Scenario:       sc.Name,
		SimGB:          scale.SimGB,
		QueryMatch:     capture.SpanTotal(obs.SpanPatternMatch),
		QueryBacktrace: capture.SpanTotal(obs.SpanBacktrace),
	}
	for _, op := range capture.Ops {
		row := BreakdownRow{
			OID:        op.OID,
			Type:       op.Type,
			Capture:    op.Elapsed / time.Duration(reps),
			RowsIn:     op.Counter(obs.RowsIn) / reps,
			RowsOut:    op.Counter(obs.RowsOut) / reps,
			ExprEvals:  op.Counter(obs.ExprEvals) / reps,
			KeysHashed: op.Counter(obs.KeysHashed) / reps,
			AssocRows:  op.Counter(obs.AssocRows) / reps,
			ProvBytes:  op.Counter(obs.ProvBytes) / reps,
		}
		if p, ok := plain.Op(op.OID); ok {
			row.Plain = p.Elapsed / time.Duration(reps)
		}
		if row.Plain > 0 {
			row.OverheadPct = 100 * float64(row.Capture-row.Plain) / float64(row.Plain)
		}
		report.Ops = append(report.Ops, row)
	}
	return report, nil
}

// RenderBreakdown renders a per-operator breakdown report.
func RenderBreakdown(title string, r *BreakdownReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%-4s %-10s %12s %12s %9s %12s %12s %12s %12s\n",
		title, "op", "type", "plain", "capture", "ovh%", "rows_out", "assoc_rows", "prov_bytes", "expr_evals")
	for _, row := range r.Ops {
		fmt.Fprintf(&sb, "%-4d %-10s %12s %12s %8.1f%% %12d %12d %12d %12d\n",
			row.OID, row.Type, row.Plain.Round(time.Microsecond), row.Capture.Round(time.Microsecond),
			row.OverheadPct, row.RowsOut, row.AssocRows, row.ProvBytes, row.ExprEvals)
	}
	total := r.QueryMatch + r.QueryBacktrace
	if total > 0 {
		fmt.Fprintf(&sb, "query time: match %s (%.0f%%) + backtrace %s (%.0f%%)\n",
			r.QueryMatch.Round(time.Microsecond), 100*float64(r.QueryMatch)/float64(total),
			r.QueryBacktrace.Round(time.Microsecond), 100*float64(r.QueryBacktrace)/float64(total))
	}
	return sb.String()
}

// RecorderOverheadRow is the disabled-path cost of the observability layer:
// capture runs with a nil recorder vs with a recorder attached.
type RecorderOverheadRow struct {
	Scenario    string        `json:"scenario"`
	SimGB       int           `json:"sim_gb"`
	NilRecorder time.Duration `json:"nil_recorder_ns"`
	Attached    time.Duration `json:"attached_ns"`
	OverheadPct float64       `json:"overhead_pct"`
}

// RecorderOverhead measures what attaching a recorder costs a capture run —
// and, read the other way, confirms the nil-recorder path stays within the
// instrumentation budget (`make bench-overhead` gates on it). The recorder
// is reset between reps so its registry does not grow across measurements.
func RecorderOverhead(sc workload.Scenario, scale workload.Scale, cfg Config) (RecorderOverheadRow, error) {
	cfg = cfg.withDefaults()
	inputs := sc.Input(scale, cfg.Partitions)
	rec := obs.NewRecorder()
	attached := cfg.options()
	attached.Recorder = rec
	nilT, recT, err := measurePair(cfg,
		func() error {
			_, _, err := provenance.Capture(sc.Build(), inputs, cfg.options())
			return err
		},
		func() error {
			rec.Reset()
			_, _, err := provenance.Capture(sc.Build(), inputs, attached)
			return err
		})
	if err != nil {
		return RecorderOverheadRow{}, err
	}
	row := RecorderOverheadRow{Scenario: sc.Name, SimGB: scale.SimGB, NilRecorder: nilT, Attached: recT}
	if nilT > 0 {
		row.OverheadPct = 100 * float64(recT-nilT) / float64(nilT)
	}
	return row, nil
}
