package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"pebble/internal/engine"
	"pebble/internal/provenance"
	"pebble/internal/workload"
)

// JoinAggRow is one scenario of the join/aggregate kernel sweep (PR 10): a
// join- or aggregate-dominated pipeline executed through the vectorized
// kernels and through the scalar reference path, plain and under eager
// structural capture, with the byte-identity cross-check the executors owe
// each other.
type JoinAggRow struct {
	Scenario    string `json:"scenario"`
	Description string `json:"description"`
	SimGB       int    `json:"sim_gb"`
	// Plain execution (no capture sink attached).
	VecPlain     time.Duration `json:"vec_plain_ns"`
	RowPlain     time.Duration `json:"row_plain_ns"`
	PlainSpeedup float64       `json:"row_over_vec_plain"`
	// Eager structural capture.
	VecCapture     time.Duration `json:"vec_capture_ns"`
	RowCapture     time.Duration `json:"row_capture_ns"`
	CaptureSpeedup float64       `json:"row_over_vec_capture"`
	// Identical asserts the acceptance contract: result rows and the
	// serialized v2 provenance stream agree byte for byte across executors.
	Identical bool `json:"identical_results"`
}

// joinAggScenario is one pipeline of the sweep. Threshold pins the join
// shape: a huge threshold forces the broadcast path, a negative one forces
// the shuffle path, zero keeps the engine default (aggregate-only scenarios
// don't care).
type joinAggScenario struct {
	name      string
	desc      string
	dataset   string
	threshold int
	build     func() *engine.Pipeline
}

func joinAggScenarios() []joinAggScenario {
	return []joinAggScenario{
		{
			name:      "JB",
			desc:      "broadcast join: inproceedings probe x proceedings build",
			dataset:   "dblp",
			threshold: 1 << 30,
			build:     buildJoinAggJoin,
		},
		{
			name:      "JS",
			desc:      "shuffle join: same pipeline, both sides hash-partitioned",
			dataset:   "dblp",
			threshold: -1,
			build:     buildJoinAggJoin,
		},
		{
			name:    "AN",
			desc:    "numeric multi-aggregate: count/sum/avg/min/max per user",
			dataset: "twitter",
			build:   buildJoinAggNumeric,
		},
		{
			name:    "AC",
			desc:    "collect aggregates: list+set of tweet structs per mention",
			dataset: "twitter",
			build:   buildJoinAggCollect,
		},
		{
			name:    "AW",
			desc:    "high-cardinality count: one group per tweet id",
			dataset: "twitter",
			build:   buildJoinAggWide,
		},
		{
			name:      "JA",
			desc:      "join then multi-aggregate: papers per proceeding with author stats",
			dataset:   "dblp",
			threshold: -1,
			build:     buildJoinAggCombined,
		},
	}
}

// buildJoinAggJoin is the D1 join skeleton with the selects trimmed to the
// join columns plus one payload column per side, so probe and output
// assembly — not expression evaluation — dominate the profile.
func buildJoinAggJoin() *engine.Pipeline {
	p := engine.NewPipeline()
	readI := p.Source("dblp.json")
	inproc := p.Filter(readI, engine.Eq(engine.Col("record_type"), engine.LitString("inproceedings")))
	selI := p.Select(inproc,
		engine.Column("ikey", "key"),
		engine.Column("ititle", "title"),
		engine.Column("crossref", "crossref"),
	)
	readP := p.Source("dblp.json")
	proc := p.Filter(readP, engine.Eq(engine.Col("record_type"), engine.LitString("proceedings")))
	selP := p.Select(proc,
		engine.Column("pkey", "key"),
		engine.Column("ptitle", "title"),
	)
	p.Join(selI, selP, engine.Col("crossref"), engine.Col("pkey"))
	return p
}

// buildJoinAggNumeric drives every typed accumulator of the vectorized
// aggregate kernel over one groupBy: count, sum, avg, min, and max of the
// same integer column, grouped per authoring user.
func buildJoinAggNumeric() *engine.Pipeline {
	p := engine.NewPipeline()
	read := p.Source("tweets.json")
	sel := p.Select(read,
		engine.Column("uid", "user.id_str"),
		engine.Column("rt", "retweet_cnt"),
	)
	p.Aggregate(sel,
		[]engine.GroupKey{engine.Key("uid")},
		[]engine.AggSpec{
			engine.Agg(engine.AggCount, "rt", "n"),
			engine.Agg(engine.AggSum, "rt", "total"),
			engine.Agg(engine.AggAvg, "rt", "mean"),
			engine.Agg(engine.AggMin, "rt", "lo"),
			engine.Agg(engine.AggMax, "rt", "hi"),
		},
	)
	return p
}

// buildJoinAggCollect is the T1 shape: flatten mentions, then collect a bag
// of complex tweet structs and a set of texts per mentioned user — the
// retention-heavy side of the aggregate kernel.
func buildJoinAggCollect() *engine.Pipeline {
	p := engine.NewPipeline()
	read := p.Source("tweets.json")
	flat := p.Flatten(read, "user_mentions", "m_user")
	sel := p.Select(flat,
		engine.StructField("tweet",
			engine.Column("text", "text"),
			engine.Column("retweet_cnt", "retweet_cnt"),
		),
		engine.Column("text", "text"),
		engine.Column("m_user", "m_user"),
	)
	p.Aggregate(sel,
		[]engine.GroupKey{engine.KeyAs("user", "m_user")},
		[]engine.AggSpec{
			engine.Agg(engine.AggCollectList, "tweet", "tweets"),
			engine.Agg(engine.AggCollectSet, "text", "texts"),
		},
	)
	return p
}

// buildJoinAggWide groups by the (nearly unique) tweet id, so the kernel's
// key table carries one group per row — the build-heavy extreme.
func buildJoinAggWide() *engine.Pipeline {
	p := engine.NewPipeline()
	read := p.Source("tweets.json")
	sel := p.Select(read,
		engine.Column("tid", "id_str"),
		engine.Column("rt", "retweet_cnt"),
	)
	p.Aggregate(sel,
		[]engine.GroupKey{engine.Key("tid")},
		[]engine.AggSpec{engine.Agg(engine.AggCount, "rt", "n")},
	)
	return p
}

// buildJoinAggCombined chains a shuffle join into a multi-aggregate — the
// D4/D5 shape with a numeric aggregate next to the collected list, so both
// kernels run back to back over the same shuffled data.
func buildJoinAggCombined() *engine.Pipeline {
	p := engine.NewPipeline()
	readI := p.Source("dblp.json")
	inproc := p.Filter(readI, engine.Eq(engine.Col("record_type"), engine.LitString("inproceedings")))
	selI := p.Select(inproc,
		engine.StructField("paper",
			engine.Column("key", "key"),
			engine.Column("title", "title"),
		),
		engine.Column("year", "year"),
		engine.Column("crossref", "crossref"),
	)
	readP := p.Source("dblp.json")
	proc := p.Filter(readP, engine.Eq(engine.Col("record_type"), engine.LitString("proceedings")))
	selP := p.Select(proc,
		engine.Column("pkey", "key"),
		engine.Column("ptitle", "title"),
	)
	joined := p.Join(selI, selP, engine.Col("crossref"), engine.Col("pkey"))
	p.Aggregate(joined,
		[]engine.GroupKey{engine.Key("pkey"), engine.Key("ptitle")},
		[]engine.AggSpec{
			engine.Agg(engine.AggCollectList, "paper", "inproceedings"),
			engine.Agg(engine.AggCount, "paper", "n_papers"),
			engine.Agg(engine.AggMax, "year", "latest"),
		},
	)
	return p
}

// JoinAggSweep measures the vectorized join-probe and aggregate kernels
// against the scalar reference path for every join/aggregate-dominated
// scenario, plain and under capture. The executor pairs are interleaved per
// round and estimated by the per-round minimum (measurePairMin, ~25ms
// calibrated regions), and each scenario's runs share one generated input.
func JoinAggSweep(cfg Config, sweep Sweep) ([]JoinAggRow, error) {
	cfg = cfg.withDefaults()
	gb := 10
	if len(sweep.SimGBs) > 0 {
		gb = sweep.SimGBs[0]
	}
	scale := ScaleFor(gb, sweep.TweetsPerGB, sweep.RecordsPerGB)
	var rows []JoinAggRow
	for _, sc := range joinAggScenarios() {
		row, err := joinAggScenarioRun(cfg, sc, scale)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func joinAggScenarioRun(cfg Config, sc joinAggScenario, scale workload.Scale) (JoinAggRow, error) {
	var inputs map[string]*engine.Dataset
	if sc.dataset == "twitter" {
		inputs = workload.TwitterInput(scale, cfg.Partitions)
	} else {
		inputs = workload.DBLPInput(scale, cfg.Partitions)
	}
	vecOpts := cfg.options()
	vecOpts.BroadcastJoinThreshold = sc.threshold
	rowOpts := vecOpts
	rowOpts.ScalarFallback = true
	row := JoinAggRow{Scenario: sc.name, Description: sc.desc, SimGB: scale.SimGB}

	plain := func(opts engine.Options) func() error {
		return func() error {
			_, err := engine.Run(sc.build(), inputs, opts)
			return err
		}
	}
	capture := func(opts engine.Options) func() error {
		return func() error {
			_, _, err := provenance.Capture(sc.build(), inputs, opts)
			return err
		}
	}

	// Two temporally separated passes per pair, keeping each side's minimum
	// (see vectorScenario for the noise argument).
	for pass := 0; pass < 2; pass++ {
		vp, rp, err := measurePairMin(cfg, plain(vecOpts), plain(rowOpts))
		if err != nil {
			return JoinAggRow{}, err
		}
		vc, rc, err := measurePairMin(cfg, capture(vecOpts), capture(rowOpts))
		if err != nil {
			return JoinAggRow{}, err
		}
		if pass == 0 || vp < row.VecPlain {
			row.VecPlain = vp
		}
		if pass == 0 || rp < row.RowPlain {
			row.RowPlain = rp
		}
		if pass == 0 || vc < row.VecCapture {
			row.VecCapture = vc
		}
		if pass == 0 || rc < row.RowCapture {
			row.RowCapture = rc
		}
	}
	if row.VecPlain > 0 {
		row.PlainSpeedup = float64(row.RowPlain) / float64(row.VecPlain)
	}
	if row.VecCapture > 0 {
		row.CaptureSpeedup = float64(row.RowCapture) / float64(row.VecCapture)
	}

	// Byte-identity cross-check: one capture per executor, compared on
	// result rows (ids and values) and the serialized provenance stream.
	render := func(opts engine.Options) (string, []byte, error) {
		res, run, err := provenance.Capture(sc.build(), inputs, opts)
		if err != nil {
			return "", nil, err
		}
		var sb strings.Builder
		for _, r := range res.Output.Rows() {
			fmt.Fprintf(&sb, "%d:%s\n", r.ID, r.Value)
		}
		var stream bytes.Buffer
		if _, err := run.WriteTo(&stream); err != nil {
			return "", nil, err
		}
		return sb.String(), stream.Bytes(), nil
	}
	vecRows, vecStream, err := render(vecOpts)
	if err != nil {
		return JoinAggRow{}, err
	}
	rowRows, rowStream, err := render(rowOpts)
	if err != nil {
		return JoinAggRow{}, err
	}
	row.Identical = vecRows == rowRows && bytes.Equal(vecStream, rowStream)
	return row, nil
}

// RenderJoinAgg renders the join/aggregate kernel sweep.
func RenderJoinAgg(title string, rows []JoinAggRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%-4s %10s %10s %8s %10s %10s %8s %5s  %s\n",
		title, "S", "vec", "row", "speedup", "vec+cap", "row+cap", "speedup", "ident", "scenario")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-4s %10s %10s %7.2fx %10s %10s %7.2fx %5v  %s\n",
			r.Scenario, fmtDur(r.VecPlain), fmtDur(r.RowPlain), r.PlainSpeedup,
			fmtDur(r.VecCapture), fmtDur(r.RowCapture), r.CaptureSpeedup,
			r.Identical, r.Description)
	}
	return sb.String()
}
