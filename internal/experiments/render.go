package experiments

import (
	"fmt"
	"strings"
	"time"

	"pebble/internal/core"
	"pebble/internal/usage"
	"pebble/internal/workload"
)

// ScaleFor builds the workload scale for a simulated size, honouring
// per-dataset item densities.
func ScaleFor(simGB, tweetsPerGB, recordsPerGB int) workload.Scale {
	return workload.Scale{SimGB: simGB, TweetsPerGB: tweetsPerGB, RecordsPerGB: recordsPerGB, Seed: 42}
}

// Sweep holds the data sizes of one figure (the paper sweeps 100–500 GB).
type Sweep struct {
	SimGBs       []int
	TweetsPerGB  int
	RecordsPerGB int
}

// DefaultSweep mirrors the paper's 100..500 GB sweep at default densities.
func DefaultSweep() Sweep {
	return Sweep{SimGBs: []int{100, 200, 300, 400, 500}, TweetsPerGB: 200, RecordsPerGB: 2000}
}

// Fig6 measures the capture runtime overhead of T1–T5 over the sweep.
func Fig6(cfg Config, sweep Sweep) ([]OverheadRow, error) {
	return overheadSweep(cfg, sweep, workload.TwitterScenarios())
}

// Fig7 measures the capture runtime overhead of D1–D5 over the sweep.
func Fig7(cfg Config, sweep Sweep) ([]OverheadRow, error) {
	return overheadSweep(cfg, sweep, workload.DBLPScenarios())
}

func overheadSweep(cfg Config, sweep Sweep, scenarios []workload.Scenario) ([]OverheadRow, error) {
	var rows []OverheadRow
	for _, gb := range sweep.SimGBs {
		for _, sc := range scenarios {
			row, err := CaptureOverhead(sc, ScaleFor(gb, sweep.TweetsPerGB, sweep.RecordsPerGB), cfg)
			if err != nil {
				return nil, fmt.Errorf("%s @%dGB: %w", sc.Name, gb, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderOverhead renders Fig. 6/7 style rows.
func RenderOverhead(title string, rows []OverheadRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%-4s %6s %14s %14s %10s\n", title, "S", "simGB", "spark", "pebble", "overhead")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-4s %6d %14s %14s %9.1f%%\n",
			r.Scenario, r.SimGB, fmtDur(r.Spark), fmtDur(r.Pebble), r.OverheadPct)
	}
	return sb.String()
}

// Fig8a measures the provenance sizes of T1–T5 at the first sweep size.
func Fig8a(cfg Config, sweep Sweep) ([]SizeRow, error) {
	return sizeRows(cfg, sweep, workload.TwitterScenarios())
}

// Fig8b measures the provenance sizes of D1–D5 at the first sweep size.
func Fig8b(cfg Config, sweep Sweep) ([]SizeRow, error) {
	return sizeRows(cfg, sweep, workload.DBLPScenarios())
}

func sizeRows(cfg Config, sweep Sweep, scenarios []workload.Scenario) ([]SizeRow, error) {
	gb := 100
	if len(sweep.SimGBs) > 0 {
		gb = sweep.SimGBs[0]
	}
	var rows []SizeRow
	for _, sc := range scenarios {
		row, err := ProvenanceSize(sc, ScaleFor(gb, sweep.TweetsPerGB, sweep.RecordsPerGB), cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderSizes renders Fig. 8 style rows.
func RenderSizes(title string, rows []SizeRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%-4s %6s %14s %18s %14s\n", title, "S", "simGB", "lineage", "structural-extra", "total")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-4s %6d %14s %18s %14s\n",
			r.Scenario, r.SimGB, fmtBytes(r.LineageBytes), fmtBytes(r.StructuralExtra), fmtBytes(r.TotalBytes()))
	}
	return sb.String()
}

// Fig9a measures eager vs lazy query time for T1–T5 at the first sweep size.
func Fig9a(cfg Config, sweep Sweep) ([]QueryRow, error) {
	return queryRows(cfg, sweep, workload.TwitterScenarios())
}

// Fig9b measures eager vs lazy query time for D1–D5 at the first sweep size.
func Fig9b(cfg Config, sweep Sweep) ([]QueryRow, error) {
	return queryRows(cfg, sweep, workload.DBLPScenarios())
}

func queryRows(cfg Config, sweep Sweep, scenarios []workload.Scenario) ([]QueryRow, error) {
	gb := 100
	if len(sweep.SimGBs) > 0 {
		gb = sweep.SimGBs[0]
	}
	var rows []QueryRow
	for _, sc := range scenarios {
		row, err := QueryTimes(sc, ScaleFor(gb, sweep.TweetsPerGB, sweep.RecordsPerGB), cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderQueries renders Fig. 9 style rows.
func RenderQueries(title string, rows []QueryRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%-4s %6s %14s %14s %8s %8s\n", title, "S", "simGB", "eager", "lazy", "lazy/eag", "items")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-4s %6d %14s %14s %7.1fx %8d\n",
			r.Scenario, r.SimGB, fmtDur(r.Eager), fmtDur(r.Lazy), r.Factor, r.Items)
	}
	return sb.String()
}

// RenderTitian renders the Sec. 7.3.4 comparison.
func RenderTitian(rows []TitianRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sec 7.3.4 — Titian vs Pebble on flat data (paper: 5.89%% vs 6.98%%)\n")
	fmt.Fprintf(&sb, "%-8s %14s %14s %10s\n", "system", "w/o capture", "w capture", "overhead")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %14s %14s %9.1f%%\n", r.System, fmtDur(r.Base), fmtDur(r.WithCapture), r.OverheadPct)
	}
	return sb.String()
}

// RenderPerOperator renders the per-operator analysis of Sec. 7.3.1.
func RenderPerOperator(rows []OpOverheadRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sec 7.3.1 — per-operator capture overhead (aggregation highest)\n")
	fmt.Fprintf(&sb, "%-10s %14s %14s %10s\n", "operator", "spark", "pebble", "overhead")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %14s %14s %9.1f%%\n", r.Operator, fmtDur(r.Spark), fmtDur(r.Pebble), r.OverheadPct)
	}
	return sb.String()
}

// Fig10 runs the use-case analysis of Sec. 7.3.5 over D1–D5 and renders the
// heatmap plus audit summary.
func Fig10(cfg Config, sweep Sweep) (string, error) {
	cfg = cfg.withDefaults()
	gb := 1
	if len(sweep.SimGBs) > 0 {
		gb = sweep.SimGBs[0]
	}
	scale := ScaleFor(gb, sweep.TweetsPerGB, sweep.RecordsPerGB)
	session := core.NewSession(core.WithPartitions(cfg.Partitions))
	analysis := usage.NewAnalysis()
	for _, sc := range workload.DBLPScenarios() {
		cap, err := session.Capture(sc.Build(), sc.Input(scale, cfg.Partitions))
		if err != nil {
			return "", fmt.Errorf("%s: %w", sc.Name, err)
		}
		q, err := cap.QueryAll()
		if err != nil {
			return "", fmt.Errorf("%s: %w", sc.Name, err)
		}
		analysis.AddQuery(q, cap.Provenance)
	}
	inputs := workload.DBLPInput(scale, 1)
	var universe []int64
	for _, r := range inputs["dblp.json"].Rows() {
		rt, _ := r.Value.Get("record_type")
		if s, _ := rt.AsString(); s == "inproceedings" {
			universe = append(universe, r.ID)
		}
	}
	schema := []string{"key", "record_type", "title", "authors", "year", "crossref", "pages", "ee"}
	items := usage.SampleItems(universe, 25, 42)
	rep := analysis.Audit(universe, schema)

	var sb strings.Builder
	sb.WriteString("Fig 10 — heatmap of 25 random DBLP inproceedings after D1-D5\n")
	sb.WriteString("(cells: contribution count, ~n influence-only, . cold)\n")
	sb.WriteString(analysis.Heatmap(items, schema))
	fmt.Fprintf(&sb, "\nleaked items: %d/%d; leaked attrs: %v\ninfluencing-only attrs: %v; cold attrs: %v\n",
		len(rep.LeakedItems), len(universe), rep.LeakedAttrs, rep.InfluencingAttrs, rep.ColdAttrs)
	fmt.Fprintf(&sb, "frequent contributing attribute pairs: %v\n", analysis.TopPairs(5))
	return sb.String(), nil
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
