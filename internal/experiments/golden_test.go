package experiments_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pebble/internal/experiments"
	"pebble/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// TestRenderAnnotationsGolden pins the rendered annotation report byte for
// byte: the whole chain — example data, annotation counting, formatting —
// must be stable across runs, Go versions, and map-iteration orders. Run
// with -update-golden to regenerate after an intentional format change.
func TestRenderAnnotationsGolden(t *testing.T) {
	got := experiments.RenderAnnotations(
		"Sec 2 — annotations on the Tab. 1 tweets (paper: 35 vs 5)",
		experiments.AnnotationComparison(workload.ExampleTweets()))

	golden := filepath.Join("testdata", "annotations_example.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update-golden to create)", err)
	}
	if got != string(want) {
		t.Errorf("rendered report drifted from golden file %s\n got:\n%s\nwant:\n%s", golden, got, want)
	}

	// Byte-stability across repeated in-process runs (a map-order leak shows
	// up as run-to-run jitter long before it shows up in review).
	for i := 0; i < 5; i++ {
		again := experiments.RenderAnnotations(
			"Sec 2 — annotations on the Tab. 1 tweets (paper: 35 vs 5)",
			experiments.AnnotationComparison(workload.ExampleTweets()))
		if again != got {
			t.Fatalf("run %d produced different bytes", i)
		}
	}
}
