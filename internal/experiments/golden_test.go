package experiments_test

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"pebble/internal/core"
	"pebble/internal/experiments"
	"pebble/internal/obs"
	"pebble/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// TestRenderAnnotationsGolden pins the rendered annotation report byte for
// byte: the whole chain — example data, annotation counting, formatting —
// must be stable across runs, Go versions, and map-iteration orders. Run
// with -update-golden to regenerate after an intentional format change.
func TestRenderAnnotationsGolden(t *testing.T) {
	got := experiments.RenderAnnotations(
		"Sec 2 — annotations on the Tab. 1 tweets (paper: 35 vs 5)",
		experiments.AnnotationComparison(workload.ExampleTweets()))

	golden := filepath.Join("testdata", "annotations_example.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update-golden to create)", err)
	}
	if got != string(want) {
		t.Errorf("rendered report drifted from golden file %s\n got:\n%s\nwant:\n%s", golden, got, want)
	}

	// Byte-stability across repeated in-process runs (a map-order leak shows
	// up as run-to-run jitter long before it shows up in review).
	for i := 0; i < 5; i++ {
		again := experiments.RenderAnnotations(
			"Sec 2 — annotations on the Tab. 1 tweets (paper: 35 vs 5)",
			experiments.AnnotationComparison(workload.ExampleTweets()))
		if again != got {
			t.Fatalf("run %d produced different bytes", i)
		}
	}
}

// renderExampleStats captures the example workload with a fresh recorder,
// serialises the provenance through the observed codec, and returns the
// timing-free stats rendering — every column of which is deterministic.
func renderExampleStats(t *testing.T) string {
	t.Helper()
	rec := obs.NewRecorder()
	s := core.NewSession(core.WithPartitions(2), core.WithRecorder(rec))
	cap, err := s.Capture(workload.ExamplePipeline(), workload.ExampleInput(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cap.Provenance.WriteToObserved(io.Discard, rec); err != nil {
		t.Fatal(err)
	}
	return cap.Stats().Render(false)
}

// TestRenderStatsGolden pins the timing-free Stats rendering byte for byte:
// the whole observability chain — engine counter hooks, collector footprint
// accounting, codec byte accounting, shard merge, formatting — must produce
// identical bytes on every run. Run with -update-golden after an
// intentional format or instrumentation change.
func TestRenderStatsGolden(t *testing.T) {
	got := renderExampleStats(t)

	golden := filepath.Join("testdata", "stats_report.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update-golden to create)", err)
	}
	if got != string(want) {
		t.Errorf("stats rendering drifted from golden file %s\n got:\n%s\nwant:\n%s", golden, got, want)
	}

	for i := 0; i < 5; i++ {
		if again := renderExampleStats(t); again != got {
			t.Fatalf("run %d produced different bytes", i)
		}
	}
}
