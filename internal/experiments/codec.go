package experiments

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"time"

	"pebble/internal/provenance"
	"pebble/internal/workload"
)

// CodecRow is one scenario of the codec comparison: the same captured run
// serialised through the fixed-width v1 layout and the columnar delta+varint
// v2 layout, with encode and decode wall times for both.
type CodecRow struct {
	Scenario string        `json:"scenario"`
	SimGB    int           `json:"sim_gb"`
	V1Bytes  int64         `json:"v1_bytes"`
	V2Bytes  int64         `json:"v2_bytes"`
	Ratio    float64       `json:"v2_over_v1"` // V2Bytes / V1Bytes
	V1Encode time.Duration `json:"v1_encode_ns"`
	V2Encode time.Duration `json:"v2_encode_ns"`
	V1Decode time.Duration `json:"v1_decode_ns"`
	V2Decode time.Duration `json:"v2_decode_ns"`
}

// CodecComparison captures every scenario once and measures both codec
// versions over the identical run, so the size ratio and the encode/decode
// times compare the formats and nothing else. Encodes go to io.Discard
// (the stream is assembled in memory either way); decodes read from the
// in-memory stream.
func CodecComparison(cfg Config, sweep Sweep) ([]CodecRow, error) {
	cfg = cfg.withDefaults()
	gb := 100
	if len(sweep.SimGBs) > 0 {
		gb = sweep.SimGBs[0]
	}
	scale := ScaleFor(gb, sweep.TweetsPerGB, sweep.RecordsPerGB)
	var rows []CodecRow
	for _, sc := range workload.AllScenarios() {
		inputs := sc.Input(scale, cfg.Partitions)
		_, run, err := provenance.Capture(sc.Build(), inputs, cfg.options())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		row := CodecRow{Scenario: sc.Name, SimGB: gb}
		var v1, v2 bytes.Buffer
		if _, err := run.WriteToVersion(&v1, 1); err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		if _, err := run.WriteToVersion(&v2, 2); err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		row.V1Bytes = int64(v1.Len())
		row.V2Bytes = int64(v2.Len())
		if row.V1Bytes > 0 {
			row.Ratio = float64(row.V2Bytes) / float64(row.V1Bytes)
		}
		encode := func(version int) func() error {
			return func() error {
				_, err := run.WriteToVersion(io.Discard, version)
				return err
			}
		}
		decode := func(stream []byte) func() error {
			return func() error {
				_, err := provenance.ReadRun(bytes.NewReader(stream))
				return err
			}
		}
		if row.V1Encode, row.V2Encode, err = measurePair(cfg, encode(1), encode(2)); err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		if row.V1Decode, row.V2Decode, err = measurePair(cfg, decode(v1.Bytes()), decode(v2.Bytes())); err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderCodec renders the codec comparison.
func RenderCodec(title string, rows []CodecRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%-4s %10s %10s %7s %10s %10s %10s %10s\n",
		title, "S", "v1_bytes", "v2_bytes", "ratio", "v1_enc", "v2_enc", "v1_dec", "v2_dec")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-4s %10d %10d %6.1f%% %10s %10s %10s %10s\n",
			r.Scenario, r.V1Bytes, r.V2Bytes, 100*r.Ratio,
			fmtDur(r.V1Encode), fmtDur(r.V2Encode), fmtDur(r.V1Decode), fmtDur(r.V2Decode))
	}
	return sb.String()
}
