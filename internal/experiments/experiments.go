// Package experiments implements the evaluation harness of Sec. 7.3: one
// function per table/figure of the paper, each regenerating the same
// rows/series the paper reports. Absolute numbers differ from the paper's
// Spark cluster (this is an in-process engine over synthetic data); the
// shapes — who wins, by what factor, where overhead concentrates — are the
// reproduction target (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"pebble/internal/backtrace"
	"pebble/internal/engine"
	"pebble/internal/lazy"
	"pebble/internal/lineage"
	"pebble/internal/nested"
	"pebble/internal/provenance"
	"pebble/internal/workload"
)

// Config controls the harness.
type Config struct {
	// Partitions is the logical data parallelism (default
	// engine.DefaultPartitions). It fixes identifiers and grouping order,
	// not the physical fan-out.
	Partitions int
	// Workers is the physical worker-goroutine count (0 = NumCPU). Results
	// are identical for every value; only wall time changes.
	Workers int
	// Reps is the number of measured repetitions per data point (default 5);
	// the paper averages five runs framed by warm-up/cool-down. This harness
	// reports medians, which resist GC and scheduler spikes better at
	// sub-second runtimes.
	Reps int
	// Warmup runs one unmeasured repetition first (default true via Reps>0).
	Warmup bool
}

func (c Config) withDefaults() Config {
	if c.Partitions < 1 {
		c.Partitions = engine.DefaultPartitions
	}
	if c.Reps < 1 {
		c.Reps = 5
	}
	return c
}

func (c Config) options() engine.Options {
	return engine.Options{Partitions: c.Partitions, Workers: c.Workers}
}

// timeIt measures fn over reps repetitions (plus optional warm-up) and
// returns the average duration.
func timeIt(cfg Config, fn func() error) (time.Duration, error) {
	if cfg.Warmup {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	samples := make([]time.Duration, 0, cfg.Reps)
	for i := 0; i < cfg.Reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		samples = append(samples, time.Since(start))
	}
	return median(samples), nil
}

// median returns the middle sample (lower of the two for even counts).
func median(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[(len(samples)-1)/2]
}

// measurePair measures two alternatives interleaved per round (warm-up run
// for both first), so allocator and scheduler drift cancels out between
// them. It returns the average durations.
func measurePair(cfg Config, a, b func() error) (time.Duration, time.Duration, error) {
	if err := a(); err != nil {
		return 0, 0, err
	}
	if err := b(); err != nil {
		return 0, 0, err
	}
	sa := make([]time.Duration, 0, cfg.Reps)
	sb := make([]time.Duration, 0, cfg.Reps)
	for i := 0; i < cfg.Reps; i++ {
		runtime.GC()
		start := time.Now()
		if err := a(); err != nil {
			return 0, 0, err
		}
		sa = append(sa, time.Since(start))
		runtime.GC()
		start = time.Now()
		if err := b(); err != nil {
			return 0, 0, err
		}
		sb = append(sb, time.Since(start))
	}
	return median(sa), median(sb), nil
}

// measurePairMin is measurePair for pairs whose true difference is small
// relative to machine noise (the executor twins differ by single-digit
// percents; a shared box drifts by tens). Both closures run `loops` times
// per timed round (calibrated to the ~25ms target of query.go, so sub-ms
// runs aren't timer-noise), rounds stay interleaved, and the estimate is
// the per-round minimum — the best case each side achieved under identical
// conditions, which a background-load spike can only miss, never inflate.
func measurePairMin(cfg Config, a, b func() error) (time.Duration, time.Duration, error) {
	loops, err := calibrate(a)
	if err != nil {
		return 0, 0, err
	}
	if err := b(); err != nil { // warm b like calibrate warmed a
		return 0, 0, err
	}
	ra, rb := repeat(loops, a), repeat(loops, b)
	var bestA, bestB time.Duration
	for i := 0; i < cfg.Reps; i++ {
		runtime.GC()
		start := time.Now()
		if err := ra(); err != nil {
			return 0, 0, err
		}
		da := time.Since(start)
		runtime.GC()
		start = time.Now()
		if err := rb(); err != nil {
			return 0, 0, err
		}
		db := time.Since(start)
		if i == 0 || da < bestA {
			bestA = da
		}
		if i == 0 || db < bestB {
			bestB = db
		}
	}
	return bestA / time.Duration(loops), bestB / time.Duration(loops), nil
}

// OverheadRow is one bar pair of Figs. 6/7: plain execution vs execution
// with structural provenance capture.
type OverheadRow struct {
	Scenario    string
	SimGB       int
	Spark       time.Duration // without provenance
	Pebble      time.Duration // with structural capture
	OverheadPct float64
}

// CaptureOverhead measures the capture runtime overhead of one scenario at
// one scale (Figs. 6 and 7).
func CaptureOverhead(sc workload.Scenario, scale workload.Scale, cfg Config) (OverheadRow, error) {
	cfg = cfg.withDefaults()
	inputs := sc.Input(scale, cfg.Partitions)
	plain, withCapture, err := measurePair(cfg,
		func() error {
			_, err := engine.Run(sc.Build(), inputs, cfg.options())
			return err
		},
		func() error {
			_, _, err := provenance.Capture(sc.Build(), inputs, cfg.options())
			return err
		})
	if err != nil {
		return OverheadRow{}, err
	}
	row := OverheadRow{Scenario: sc.Name, SimGB: scale.SimGB, Spark: plain, Pebble: withCapture}
	if plain > 0 {
		row.OverheadPct = 100 * float64(withCapture-plain) / float64(plain)
	}
	return row, nil
}

// SizeRow is one stacked bar of Fig. 8: the lineage share and the structural
// extra of the captured provenance.
type SizeRow struct {
	Scenario        string
	SimGB           int
	LineageBytes    int64
	StructuralExtra int64
}

// TotalBytes returns the full provenance size.
func (r SizeRow) TotalBytes() int64 { return r.LineageBytes + r.StructuralExtra }

// ProvenanceSize measures the space captured for one scenario (Fig. 8).
func ProvenanceSize(sc workload.Scenario, scale workload.Scale, cfg Config) (SizeRow, error) {
	cfg = cfg.withDefaults()
	inputs := sc.Input(scale, cfg.Partitions)
	_, run, err := provenance.Capture(sc.Build(), inputs, cfg.options())
	if err != nil {
		return SizeRow{}, err
	}
	s := run.Sizes()
	return SizeRow{
		Scenario:        sc.Name,
		SimGB:           scale.SimGB,
		LineageBytes:    s.LineageBytes,
		StructuralExtra: s.StructuralExtra,
	}, nil
}

// QueryRow is one bar pair of Fig. 9: eager (holistic) vs fully lazy
// provenance query time.
type QueryRow struct {
	Scenario string
	SimGB    int
	Eager    time.Duration
	Lazy     time.Duration
	Factor   float64 // lazy / eager
	Items    int     // traced input items (sanity)
}

// QueryTimes measures eager vs lazy structural provenance querying for one
// scenario (Fig. 9). The eager time covers tree-pattern matching plus
// backtracing over previously captured provenance; the lazy time includes
// the per-input capture re-executions PROVision-style querying needs.
func QueryTimes(sc workload.Scenario, scale workload.Scale, cfg Config) (QueryRow, error) {
	cfg = cfg.withDefaults()
	inputs := sc.Input(scale, cfg.Partitions)
	// Eager: capture once up front (that cost belongs to Figs. 6/7).
	pipe := sc.Build()
	res, run, err := provenance.Capture(pipe, inputs, cfg.options())
	if err != nil {
		return QueryRow{}, err
	}
	items := 0
	eager, err := timeIt(cfg, func() error {
		b := sc.Pattern.Match(res.Output)
		traced, err := backtrace.Trace(run, pipe.Sink().ID(), b)
		if err != nil {
			return err
		}
		items = 0
		for _, s := range traced.BySource {
			items += s.Len()
		}
		return nil
	})
	if err != nil {
		return QueryRow{}, err
	}
	lazyT, err := timeIt(cfg, func() error {
		_, _, err := lazy.Query(sc.Build, inputs, sc.Pattern, cfg.options())
		return err
	})
	if err != nil {
		return QueryRow{}, err
	}
	row := QueryRow{Scenario: sc.Name, SimGB: scale.SimGB, Eager: eager, Lazy: lazyT, Items: items}
	if eager > 0 {
		row.Factor = float64(lazyT) / float64(eager)
	}
	return row, nil
}

// TitianRow is one system of the Sec. 7.3.4 comparison.
type TitianRow struct {
	System      string
	Base        time.Duration
	WithCapture time.Duration
	OverheadPct float64
}

// TitianComparison reproduces Sec. 7.3.4: a flat workload (DBLP records as
// single long string values; filter lines containing "2015"; union of the
// articles and inproceedings subsets) run under Titian-style lineage capture
// and under Pebble's structural capture. Both overheads are small and
// Pebble's is only marginally larger (the paper measures 5.89% vs 6.98%).
func TitianComparison(scale workload.Scale, cfg Config) ([]TitianRow, error) {
	cfg = cfg.withDefaults()
	inputs := FlatDBLPInputs(scale, cfg.Partitions)
	build := FlatPipeline

	runBase := func() error {
		_, err := engine.Run(build(), inputs, cfg.options())
		return err
	}
	runTitian := func() error {
		_, _, err := lineage.Capture(build(), inputs, cfg.options())
		return err
	}
	runPebble := func() error {
		_, _, err := provenance.Capture(build(), inputs, cfg.options())
		return err
	}
	// Warm up all three paths, then measure them interleaved per round so
	// allocator and scheduler drift cancels out across the systems.
	for _, fn := range []func() error{runBase, runTitian, runPebble} {
		if err := fn(); err != nil {
			return nil, err
		}
	}
	var sBase, sTitian, sPebble []time.Duration
	for i := 0; i < cfg.Reps; i++ {
		for _, m := range []struct {
			fn  func() error
			acc *[]time.Duration
		}{{runBase, &sBase}, {runTitian, &sTitian}, {runPebble, &sPebble}} {
			runtime.GC()
			start := time.Now()
			if err := m.fn(); err != nil {
				return nil, err
			}
			*m.acc = append(*m.acc, time.Since(start))
		}
	}
	base := median(sBase)
	titian := median(sTitian)
	pebbleT := median(sPebble)
	pct := func(d time.Duration) float64 {
		if base <= 0 {
			return 0
		}
		return 100 * float64(d-base) / float64(base)
	}
	return []TitianRow{
		{System: "Titian", Base: base, WithCapture: titian, OverheadPct: pct(titian)},
		{System: "Pebble", Base: base, WithCapture: pebbleT, OverheadPct: pct(pebbleT)},
	}, nil
}

// FlatDBLPInputs renders the DBLP articles and inproceedings as flat
// single-string records, the RDD-of-strings representation of Sec. 7.3.4.
func FlatDBLPInputs(scale workload.Scale, parts int) map[string]*engine.Dataset {
	recs := workload.GenerateDBLP(scale)
	gen := engine.NewIDGen(1)
	var artLines, inLines []nested.Value
	for _, r := range recs {
		rt, _ := r.Get("record_type")
		s, _ := rt.AsString()
		switch s {
		case "article":
			artLines = append(artLines, lineItem(r))
		case "inproceedings":
			inLines = append(inLines, lineItem(r))
		}
	}
	return map[string]*engine.Dataset{
		"articles.flat":      engine.NewDataset("articles.flat", artLines, parts, gen),
		"inproceedings.flat": engine.NewDataset("inproceedings.flat", inLines, parts, gen),
	}
}

// lineItem renders a record as one flat string attribute, mimicking reading
// raw dblp.xml lines into an RDD of strings.
func lineItem(r nested.Value) nested.Value {
	return nested.Item(nested.F("line", nested.StringVal(r.String())))
}

// identityMap is the opaque no-op UDF used by the map micro-benchmark.
func identityMap(v nested.Value) (nested.Value, error) { return v, nil }

// FlatPipeline builds the Sec. 7.3.4 comparison pipeline: filter lines
// containing "2015" on both flat inputs, then union.
func FlatPipeline() *engine.Pipeline {
	p := engine.NewPipeline()
	arts := p.Source("articles.flat")
	fa := p.Filter(arts, engine.Contains(engine.Col("line"), engine.LitString("2015")))
	ins := p.Source("inproceedings.flat")
	fi := p.Filter(ins, engine.Contains(engine.Col("line"), engine.LitString("2015")))
	p.Union(fa, fi)
	return p
}

// OpOverheadRow is one per-operator overhead measurement (the per-operator
// analysis described in Sec. 7.3.1's text).
type OpOverheadRow struct {
	Operator    string
	Spark       time.Duration
	Pebble      time.Duration
	OverheadPct float64
}

// PerOperatorOverhead measures the capture overhead of each operator in
// isolation over Twitter data. The paper's finding: constant-annotation
// operators (filter, select, union, join, flatten) stay moderate while
// aggregations — which store a collection of all contributing identifiers —
// show the highest relative overhead.
func PerOperatorOverhead(scale workload.Scale, cfg Config) ([]OpOverheadRow, error) {
	cfg = cfg.withDefaults()
	inputs := workload.TwitterInput(scale, cfg.Partitions)
	var out []OpOverheadRow
	for _, m := range MicroPipelines() {
		plain, withCapture, err := measurePair(cfg,
			func() error {
				_, err := engine.Run(m.Build(), inputs, cfg.options())
				return err
			},
			func() error {
				_, _, err := provenance.Capture(m.Build(), inputs, cfg.options())
				return err
			})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		row := OpOverheadRow{Operator: m.Name, Spark: plain, Pebble: withCapture}
		if plain > 0 {
			row.OverheadPct = 100 * float64(withCapture-plain) / float64(plain)
		}
		out = append(out, row)
	}
	return out, nil
}

// MicroPipeline is a one-operator pipeline for per-operator measurements.
type MicroPipeline struct {
	Name  string
	Build func() *engine.Pipeline
}

// MicroPipelines returns one micro pipeline per supported operator over the
// Twitter input.
func MicroPipelines() []MicroPipeline {
	return []MicroPipeline{
		{"filter", func() *engine.Pipeline {
			p := engine.NewPipeline()
			p.Filter(p.Source("tweets.json"), engine.Eq(engine.Col("retweet_cnt"), engine.LitInt(0)))
			return p
		}},
		{"select", func() *engine.Pipeline {
			p := engine.NewPipeline()
			p.Select(p.Source("tweets.json"),
				engine.Column("text", "text"), engine.Column("id", "user.id_str"))
			return p
		}},
		{"map", func() *engine.Pipeline {
			p := engine.NewPipeline()
			p.Map(p.Source("tweets.json"), engine.MapFunc{Name: "id", Fn: identityMap})
			return p
		}},
		{"flatten", func() *engine.Pipeline {
			p := engine.NewPipeline()
			p.Flatten(p.Source("tweets.json"), "user_mentions", "m_user")
			return p
		}},
		{"union", func() *engine.Pipeline {
			p := engine.NewPipeline()
			p.Union(p.Source("tweets.json"), p.Source("tweets.json"))
			return p
		}},
		{"join", func() *engine.Pipeline {
			p := engine.NewPipeline()
			l := p.Select(p.Source("tweets.json"), engine.Column("lid", "user.id_str"), engine.Column("ltext", "text"))
			r := p.Select(p.Source("tweets.json"), engine.Column("rid", "user.id_str"))
			p.Join(l, r, engine.Col("lid"), engine.Col("rid"))
			return p
		}},
		{"aggregate", func() *engine.Pipeline {
			p := engine.NewPipeline()
			p.Aggregate(p.Source("tweets.json"),
				[]engine.GroupKey{engine.KeyAs("lang", "lang")},
				[]engine.AggSpec{engine.Agg(engine.AggCollectList, "text", "texts")})
			return p
		}},
	}
}

// AnnotationRow compares annotation counts per strategy (the Sec. 2
// argument: Lipstick annotates every nested value — 35 annotations on the
// five tweets of Tab. 1 — while structural provenance annotates top-level
// items only, 5).
type AnnotationRow struct {
	Strategy    string
	Annotations int64
}

// AnnotationComparison counts the annotations each strategy would attach to
// the given dataset: one per top-level item for Pebble/Titian vs one per
// value (items, nested items, collection elements, and constants) for
// Lipstick-style models.
func AnnotationComparison(values []nested.Value) []AnnotationRow {
	var topLevel, every int64
	for _, v := range values {
		topLevel++
		every += countValues(v)
	}
	return []AnnotationRow{
		{Strategy: "Pebble/Titian (top-level only)", Annotations: topLevel},
		{Strategy: "Lipstick (every value)", Annotations: every},
	}
}

// countValues counts the annotations of one top-level item the way the
// paper's Tab. 1 superscripts do: one for the item itself plus one per
// constant anywhere inside it (35 across the five example tweets).
func countValues(v nested.Value) int64 {
	return 1 + countConstants(v)
}

func countConstants(v nested.Value) int64 {
	switch v.Kind() {
	case nested.KindItem:
		var n int64
		for _, f := range v.Fields() {
			n += countConstants(f.Value)
		}
		return n
	case nested.KindBag, nested.KindSet:
		var n int64
		for _, e := range v.Elems() {
			n += countConstants(e)
		}
		return n
	default:
		return 1
	}
}

// RenderAnnotations renders the annotation comparison.
func RenderAnnotations(title string, rows []AnnotationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%-32s %14s\n", title, "strategy", "annotations")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-32s %14d\n", r.Strategy, r.Annotations)
	}
	if len(rows) == 2 && rows[0].Annotations > 0 {
		fmt.Fprintf(&sb, "ratio: %.1fx\n", float64(rows[1].Annotations)/float64(rows[0].Annotations))
	}
	return sb.String()
}
