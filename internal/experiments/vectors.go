package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"pebble/internal/engine"
	"pebble/internal/provenance"
	"pebble/internal/workload"
)

// VectorRow is one scenario of the vectorization sweep: the same pipeline
// executed row-at-a-time and as columnar batches, plain and under eager
// structural capture, with the byte-identity cross-check the executors owe
// each other.
type VectorRow struct {
	Scenario string `json:"scenario"`
	SimGB    int    `json:"sim_gb"`
	// Plain execution (no capture sink attached).
	VecPlain     time.Duration `json:"vec_plain_ns"`
	RowPlain     time.Duration `json:"row_plain_ns"`
	PlainSpeedup float64       `json:"row_over_vec_plain"`
	// Eager structural capture.
	VecCapture     time.Duration `json:"vec_capture_ns"`
	RowCapture     time.Duration `json:"row_capture_ns"`
	CaptureSpeedup float64       `json:"row_over_vec_capture"`
	// Capture overhead relative to the same executor's plain run.
	VecOverheadPct float64 `json:"vec_capture_overhead_pct"`
	RowOverheadPct float64 `json:"row_capture_overhead_pct"`
	// Identical asserts the acceptance contract: result rows and the
	// serialized v2 provenance stream agree byte for byte across executors.
	Identical bool `json:"identical_results"`
}

// VectorSweep measures the vectorized vs row executor for every scenario of
// Tab. 7, plain and under capture. The executor pairs are interleaved per
// round and estimated by the per-round minimum (measurePairMin) — the twins
// differ by single-digit percents, which median-of-single-shots cannot
// resolve on a noisy shared machine — and each scenario's runs share one
// generated input.
func VectorSweep(cfg Config, sweep Sweep) ([]VectorRow, error) {
	cfg = cfg.withDefaults()
	gb := 10
	if len(sweep.SimGBs) > 0 {
		gb = sweep.SimGBs[0]
	}
	scale := ScaleFor(gb, sweep.TweetsPerGB, sweep.RecordsPerGB)
	var rows []VectorRow
	for _, sc := range workload.AllScenarios() {
		row, err := vectorScenario(cfg, sc, scale)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func vectorScenario(cfg Config, sc workload.Scenario, scale workload.Scale) (VectorRow, error) {
	inputs := sc.Input(scale, cfg.Partitions)
	vecOpts := cfg.options()
	rowOpts := vecOpts
	rowOpts.ScalarFallback = true
	row := VectorRow{Scenario: sc.Name, SimGB: scale.SimGB}

	plain := func(opts engine.Options) func() error {
		return func() error {
			_, err := engine.Run(sc.Build(), inputs, opts)
			return err
		}
	}
	capture := func(opts engine.Options) func() error {
		return func() error {
			_, _, err := provenance.Capture(sc.Build(), inputs, opts)
			return err
		}
	}

	// Two temporally separated passes per pair, keeping each side's minimum:
	// a background-load window long enough to swallow every round of one
	// pass (seconds on a busy shared box) still cannot bias the ratio
	// unless it also covers the second pass minutes of work later.
	for pass := 0; pass < 2; pass++ {
		vp, rp, err := measurePairMin(cfg, plain(vecOpts), plain(rowOpts))
		if err != nil {
			return VectorRow{}, err
		}
		vc, rc, err := measurePairMin(cfg, capture(vecOpts), capture(rowOpts))
		if err != nil {
			return VectorRow{}, err
		}
		if pass == 0 || vp < row.VecPlain {
			row.VecPlain = vp
		}
		if pass == 0 || rp < row.RowPlain {
			row.RowPlain = rp
		}
		if pass == 0 || vc < row.VecCapture {
			row.VecCapture = vc
		}
		if pass == 0 || rc < row.RowCapture {
			row.RowCapture = rc
		}
	}
	if row.VecPlain > 0 {
		row.PlainSpeedup = float64(row.RowPlain) / float64(row.VecPlain)
		row.VecOverheadPct = 100 * (float64(row.VecCapture)/float64(row.VecPlain) - 1)
	}
	if row.RowPlain > 0 {
		row.CaptureSpeedup = float64(row.RowCapture) / float64(row.VecCapture)
		row.RowOverheadPct = 100 * (float64(row.RowCapture)/float64(row.RowPlain) - 1)
	}

	// Byte-identity cross-check: one capture per executor, compared on
	// result rows (ids and values) and the serialized provenance stream.
	render := func(opts engine.Options) (string, []byte, error) {
		res, run, err := provenance.Capture(sc.Build(), inputs, opts)
		if err != nil {
			return "", nil, err
		}
		var sb strings.Builder
		for _, r := range res.Output.Rows() {
			fmt.Fprintf(&sb, "%d:%s\n", r.ID, r.Value)
		}
		var stream bytes.Buffer
		if _, err := run.WriteTo(&stream); err != nil {
			return "", nil, err
		}
		return sb.String(), stream.Bytes(), nil
	}
	vecRows, vecStream, err := render(vecOpts)
	if err != nil {
		return VectorRow{}, err
	}
	rowRows, rowStream, err := render(rowOpts)
	if err != nil {
		return VectorRow{}, err
	}
	row.Identical = vecRows == rowRows && bytes.Equal(vecStream, rowStream)
	return row, nil
}

// RenderVectors renders the vectorization sweep.
func RenderVectors(title string, rows []VectorRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%-4s %10s %10s %8s %10s %10s %8s %9s %9s %5s\n",
		title, "S", "vec", "row", "speedup", "vec+cap", "row+cap", "speedup", "vec-ovh", "row-ovh", "ident")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-4s %10s %10s %7.2fx %10s %10s %7.2fx %8.1f%% %8.1f%% %5v\n",
			r.Scenario, fmtDur(r.VecPlain), fmtDur(r.RowPlain), r.PlainSpeedup,
			fmtDur(r.VecCapture), fmtDur(r.RowCapture), r.CaptureSpeedup,
			r.VecOverheadPct, r.RowOverheadPct, r.Identical)
	}
	return sb.String()
}
