package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"pebble/internal/provenance"
	"pebble/internal/workload"
)

// ScalingRow is one point of the worker-scaling experiment: capture wall time
// of a scenario at a fixed logical partitioning as the physical worker count
// grows. Speedup is relative to the first (smallest) worker count measured
// for the same scenario.
type ScalingRow struct {
	Scenario string        `json:"scenario"`
	SimGB    int           `json:"sim_gb"`
	Workers  int           `json:"workers"`
	Capture  time.Duration `json:"capture_ns"`
	Speedup  float64       `json:"speedup"`
}

// Scaling measures capture wall time for the Twitter scenarios (the Fig. 6
// pipelines) across physical worker counts. Logical partitioning — and with
// it every identifier and captured association — stays fixed; only the
// morsel fan-out of schedule.go changes. On a single-core machine the sweep
// degenerates to overhead measurement of the scheduler itself.
func Scaling(cfg Config, sweep Sweep, workersList []int) ([]ScalingRow, error) {
	cfg = cfg.withDefaults()
	if len(workersList) == 0 {
		workersList = []int{1, 2, 4, runtime.NumCPU()}
	}
	gb := 100
	if len(sweep.SimGBs) > 0 {
		gb = sweep.SimGBs[0]
	}
	scale := ScaleFor(gb, sweep.TweetsPerGB, sweep.RecordsPerGB)
	var rows []ScalingRow
	for _, sc := range workload.TwitterScenarios() {
		inputs := sc.Input(scale, cfg.Partitions)
		var base time.Duration
		for i, workers := range workersList {
			opts := cfg.options()
			opts.Workers = workers
			d, err := timeIt(cfg, func() error {
				_, _, err := provenance.Capture(sc.Build(), inputs, opts)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("%s workers=%d: %w", sc.Name, workers, err)
			}
			if i == 0 {
				base = d
			}
			row := ScalingRow{Scenario: sc.Name, SimGB: gb, Workers: workers, Capture: d}
			if d > 0 {
				row.Speedup = float64(base) / float64(d)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderScaling renders the worker-scaling sweep.
func RenderScaling(title string, rows []ScalingRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (NumCPU=%d)\n%-4s %6s %8s %14s %8s\n",
		title, runtime.NumCPU(), "S", "simGB", "workers", "capture", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-4s %6d %8d %14s %7.2fx\n",
			r.Scenario, r.SimGB, r.Workers, fmtDur(r.Capture), r.Speedup)
	}
	return sb.String()
}
