package experiments_test

import (
	"strings"
	"testing"

	"pebble/internal/experiments"
	"pebble/internal/workload"
)

// tinyCfg keeps the harness tests fast; correctness of the measured systems
// is covered elsewhere, here we validate the harness itself.
var tinyCfg = experiments.Config{Partitions: 2, Reps: 1}

func tinySweep() experiments.Sweep {
	return experiments.Sweep{SimGBs: []int{1}, TweetsPerGB: 100, RecordsPerGB: 300}
}

func TestCaptureOverheadRow(t *testing.T) {
	sc, err := workload.ByName("T2")
	if err != nil {
		t.Fatal(err)
	}
	row, err := experiments.CaptureOverhead(sc, experiments.ScaleFor(1, 100, 300), tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.Scenario != "T2" || row.SimGB != 1 {
		t.Errorf("row labels wrong: %+v", row)
	}
	if row.Spark <= 0 || row.Pebble <= 0 {
		t.Errorf("durations missing: %+v", row)
	}
}

func TestFig6And7Sweeps(t *testing.T) {
	rows, err := experiments.Fig6(tinyCfg, tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("fig6 rows = %d, want 5 (one per scenario)", len(rows))
	}
	out := experiments.RenderOverhead("Fig 6", rows)
	for _, want := range []string{"T1", "T5", "overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	rows7, err := experiments.Fig7(tinyCfg, tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows7) != 5 {
		t.Fatalf("fig7 rows = %d", len(rows7))
	}
}

func TestFig8Sizes(t *testing.T) {
	rows, err := experiments.Fig8a(tinyCfg, tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.LineageBytes <= 0 || r.StructuralExtra <= 0 {
			t.Errorf("%s: sizes missing: %+v", r.Scenario, r)
		}
		if r.TotalBytes() != r.LineageBytes+r.StructuralExtra {
			t.Errorf("%s: total inconsistent", r.Scenario)
		}
	}
	rows8b, err := experiments.Fig8b(tinyCfg, tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	// The DBLP dataset has >10x more items per simulated GB than Twitter, so
	// its total provenance must be larger at the same scale — the MB-vs-GB
	// y-axis contrast of Fig. 8.
	var tTotal, dTotal int64
	for _, r := range rows {
		tTotal += r.TotalBytes()
	}
	for _, r := range rows8b {
		dTotal += r.TotalBytes()
	}
	if dTotal <= tTotal {
		t.Errorf("DBLP provenance (%d) should exceed Twitter provenance (%d)", dTotal, tTotal)
	}
	if out := experiments.RenderSizes("Fig 8", rows); !strings.Contains(out, "lineage") {
		t.Error("size rendering broken")
	}
}

func TestFig9QueryTimes(t *testing.T) {
	sc, err := workload.ByName("T3") // two inputs: lazy must rerun twice
	if err != nil {
		t.Fatal(err)
	}
	// Large enough that the lazy re-executions dominate the measurement
	// noise; reps > 1 to smooth scheduler spikes.
	cfg := experiments.Config{Partitions: 2, Reps: 3}
	row, err := experiments.QueryTimes(sc, experiments.ScaleFor(8, 100, 300), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.Eager <= 0 || row.Lazy <= 0 || row.Items <= 0 {
		t.Errorf("query row incomplete: %+v", row)
	}
	// The eager/holistic approach is always faster than lazy (Sec. 7.3.3):
	// lazy pays one full capture re-execution per input dataset.
	if row.Lazy <= row.Eager {
		t.Errorf("lazy (%v) should exceed eager (%v)", row.Lazy, row.Eager)
	}
	if out := experiments.RenderQueries("Fig 9", []experiments.QueryRow{row}); !strings.Contains(out, "lazy") {
		t.Error("query rendering broken")
	}
}

func TestTitianComparisonRows(t *testing.T) {
	rows, err := experiments.TitianComparison(experiments.ScaleFor(2, 100, 300), tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].System != "Titian" || rows[1].System != "Pebble" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Base != rows[1].Base {
		t.Error("both systems must share the same baseline")
	}
	if out := experiments.RenderTitian(rows); !strings.Contains(out, "Titian") {
		t.Error("titian rendering broken")
	}
}

func TestPerOperatorRows(t *testing.T) {
	rows, err := experiments.PerOperatorOverhead(experiments.ScaleFor(1, 100, 300), tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"filter": true, "select": true, "map": true, "flatten": true,
		"union": true, "join": true, "aggregate": true}
	for _, r := range rows {
		delete(want, r.Operator)
	}
	if len(want) != 0 {
		t.Errorf("missing operators: %v", want)
	}
	if out := experiments.RenderPerOperator(rows); !strings.Contains(out, "aggregate") {
		t.Error("per-operator rendering broken")
	}
}

func TestFig10Rendering(t *testing.T) {
	out, err := experiments.Fig10(tinyCfg, tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"heatmap", "leaked items", "influencing-only", "year"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig10 output missing %q", want)
		}
	}
}

func TestFlatWorkloadShape(t *testing.T) {
	inputs := experiments.FlatDBLPInputs(experiments.ScaleFor(1, 100, 300), 2)
	if inputs["articles.flat"].Len() == 0 || inputs["inproceedings.flat"].Len() == 0 {
		t.Fatal("flat inputs empty")
	}
	for _, r := range inputs["articles.flat"].Rows()[:3] {
		line, ok := r.Value.Get("line")
		if !ok || line.Kind().String() != "string" {
			t.Fatalf("flat record is not a single string: %s", r.Value)
		}
	}
	if err := experiments.FlatPipeline().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAnnotationComparison reproduces the Sec. 2 annotation argument: on the
// five tweets of Tab. 1 Lipstick needs 35 annotations where structural
// provenance needs 5.
func TestAnnotationComparison(t *testing.T) {
	rows := experiments.AnnotationComparison(workload.ExampleTweets())
	if rows[0].Annotations != 5 {
		t.Errorf("top-level annotations = %d, want 5", rows[0].Annotations)
	}
	if rows[1].Annotations != 35 {
		t.Errorf("Lipstick annotations = %d, want 35 (Tab. 1 superscripts)", rows[1].Annotations)
	}
	out := experiments.RenderAnnotations("Sec 2", rows)
	if !strings.Contains(out, "7.0x") {
		t.Errorf("ratio missing:\n%s", out)
	}
	// On the wide synthetic tweets the gap widens far beyond 7x.
	gen := experiments.AnnotationComparison(workload.GenerateTwitter(workload.DefaultScale(1)))
	if gen[1].Annotations < gen[0].Annotations*20 {
		t.Errorf("wide tweets should need >20x annotations: %v", gen)
	}
}
