package path

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"pebble/internal/nested"
)

func tweet102() nested.Value {
	// The result item d102 of Tab. 2 / Ex. 4.4.
	return nested.Item(
		nested.F("user", nested.Item(
			nested.F("id_str", nested.StringVal("lp")),
			nested.F("name", nested.StringVal("Lisa Paul")),
		)),
		nested.F("tweets", nested.Bag(
			nested.Item(nested.F("text", nested.StringVal("Hello @ls @jm @ls"))),
			nested.Item(nested.F("text", nested.StringVal("Hello World"))),
			nested.Item(nested.F("text", nested.StringVal("Hello World"))),
			nested.Item(nested.F("text", nested.StringVal("Hello @lp"))),
		)),
	)
}

func TestParseAndString(t *testing.T) {
	cases := []string{
		"a",
		"a.b",
		"user_mentions[1]",
		"user_mentions[1].id_str",
		"tweets[pos].text",
		"a.[2].c",
		"[3]",
	}
	for _, s := range cases {
		p, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		if got := p.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "a..b", "a[", "a[x]", "a[0]", "a[-1]", "a]b", "a[1]extra]"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad input should panic")
		}
	}()
	MustParse("a..b")
}

func TestEvalPaperExample(t *testing.T) {
	d := tweet102()
	// Ex. 4.4: d102.tweets evaluates to a list of four data items.
	tw, ok := MustParse("tweets").Eval(d)
	if !ok || tw.Len() != 4 {
		t.Fatalf("tweets eval: ok=%v len=%d", ok, tw.Len())
	}
	// d102.tweets[2].text points to the first "Hello World".
	v, ok := MustParse("tweets[2].text").Eval(d)
	if !ok {
		t.Fatal("tweets[2].text not found")
	}
	if s, _ := v.AsString(); s != "Hello World" {
		t.Errorf("tweets[2].text = %q, want Hello World", s)
	}
	if _, ok := MustParse("tweets[9].text").Eval(d); ok {
		t.Error("out-of-range position should fail")
	}
	if _, ok := MustParse("nope").Eval(d); ok {
		t.Error("missing attribute should fail")
	}
	if _, ok := MustParse("tweets[pos].text").Eval(d); ok {
		t.Error("placeholder paths are not evaluable")
	}
}

func TestEvalAllFansOut(t *testing.T) {
	d := tweet102()
	texts := MustParse("tweets.text").EvalAll(d)
	if len(texts) != 4 {
		t.Fatalf("EvalAll(tweets.text) returned %d values, want 4", len(texts))
	}
	if s, _ := texts[1].AsString(); s != "Hello World" {
		t.Errorf("texts[1] = %q", s)
	}
	pos := MustParse("tweets[pos].text").EvalAll(d)
	if len(pos) != 4 {
		t.Errorf("EvalAll with [pos] returned %d values, want 4", len(pos))
	}
	one := MustParse("tweets[3].text").EvalAll(d)
	if len(one) != 1 {
		t.Errorf("EvalAll with concrete position returned %d values", len(one))
	}
}

func TestPrefixOperations(t *testing.T) {
	p := MustParse("user_mentions[2].id_str")
	if !p.HasPrefix(MustParse("user_mentions[2]")) {
		t.Error("concrete prefix should match")
	}
	if !p.HasPrefix(MustParse("user_mentions[pos]")) {
		t.Error("[pos] prefix must match any concrete position")
	}
	if p.HasPrefix(MustParse("user_mentions[3]")) {
		t.Error("different position should not match")
	}
	if p.HasPrefix(MustParse("user_mentions")) {
		t.Error("unindexed step should not match indexed step")
	}
	got, ok := p.ReplacePrefix(MustParse("user_mentions[pos]"), MustParse("m_user"))
	if !ok || got.String() != "m_user.id_str" {
		t.Errorf("ReplacePrefix = %v, %v", got, ok)
	}
	if _, ok := p.ReplacePrefix(MustParse("zzz"), MustParse("y")); ok {
		t.Error("ReplacePrefix with non-prefix should fail")
	}
}

func TestSchemaLevel(t *testing.T) {
	p := MustParse("a[3].b.c[1]")
	if got := p.SchemaLevel().String(); got != "a[pos].b.c[pos]" {
		t.Errorf("SchemaLevel = %s", got)
	}
	if !p.SchemaLevel().HasPlaceholder() {
		t.Error("HasPlaceholder after SchemaLevel = false")
	}
	if MustParse("a.b").HasPlaceholder() {
		t.Error("plain path reports placeholder")
	}
}

func TestAppendCloneEqual(t *testing.T) {
	p := New("a", "b")
	q := p.Append(Step{Attr: "c", Index: NoIndex})
	if p.String() != "a.b" {
		t.Error("Append mutated receiver")
	}
	if q.String() != "a.b.c" {
		t.Errorf("Append = %s", q)
	}
	if !p.Clone().Equal(p) || p.Equal(q) {
		t.Error("Equal/Clone inconsistent")
	}
	if got := p.Concat(New("x", "y")).String(); got != "a.b.x.y" {
		t.Errorf("Concat = %s", got)
	}
}

func TestSet(t *testing.T) {
	s := NewSet(MustParse("a"), MustParse("a.b"))
	if !s.Add(MustParse("c")) {
		t.Error("Add new path returned false")
	}
	if s.Add(MustParse("a")) {
		t.Error("Add duplicate returned true")
	}
	if s.Len() != 3 || !s.Contains(MustParse("a.b")) || s.Contains(MustParse("zz")) {
		t.Errorf("set state wrong: %v", s.Strings())
	}
	want := []string{"a", "a.b", "c"}
	if !reflect.DeepEqual(s.Strings(), want) {
		t.Errorf("Strings = %v, want %v (insertion order)", s.Strings(), want)
	}
	var nilSet *Set
	if nilSet.Len() != 0 || nilSet.Contains(MustParse("a")) || nilSet.Paths() != nil {
		t.Error("nil Set should behave as empty")
	}
}

func TestEnumerate(t *testing.T) {
	d := nested.Item(
		nested.F("a", nested.Int(1)),
		nested.F("b", nested.Bag(
			nested.Item(nested.F("x", nested.Int(2))),
			nested.Item(nested.F("x", nested.Int(3))),
		)),
	)
	paths := Enumerate(d, 0)
	var strs []string
	for _, p := range paths {
		strs = append(strs, p.String())
	}
	joined := strings.Join(strs, ";")
	for _, want := range []string{"a", "b", "b[1]", "b[2]", "b[1].x", "b[2].x"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Enumerate missing %q in %v", want, strs)
		}
	}
	shallow := Enumerate(d, 1)
	if len(shallow) != 2 {
		t.Errorf("depth-1 Enumerate = %v", shallow)
	}
}

func TestPropertyParseStringRoundTrip(t *testing.T) {
	attrs := []string{"a", "user", "text", "user_mentions", "m_user", "id_str"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		p := make(Path, 0, n)
		for i := 0; i < n; i++ {
			s := Step{Attr: attrs[r.Intn(len(attrs))], Index: NoIndex}
			switch r.Intn(3) {
			case 1:
				s.Index = 1 + r.Intn(5)
			case 2:
				s.Index = Pos
			}
			p = append(p, s)
		}
		back, err := Parse(p.String())
		return err == nil && back.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEvalMatchesEnumerate(t *testing.T) {
	// Every enumerated path must evaluate successfully in its context.
	d := tweet102()
	for _, p := range Enumerate(d, 0) {
		if _, ok := p.Eval(d); !ok {
			t.Errorf("enumerated path %s does not evaluate", p)
		}
	}
}

func TestRedact(t *testing.T) {
	d := tweet102()
	masked := Redact(d, []Path{
		MustParse("user.id_str"),
		MustParse("tweets[2].text"),
	}, nested.StringVal("█"))
	// Targets replaced.
	if v, _ := MustParse("user.id_str").Eval(masked); func() bool { s, _ := v.AsString(); return s != "█" }() {
		t.Errorf("id_str not redacted: %s", v)
	}
	if v, _ := MustParse("tweets[2].text").Eval(masked); func() bool { s, _ := v.AsString(); return s != "█" }() {
		t.Errorf("tweets[2].text not redacted: %s", v)
	}
	// Everything else untouched.
	if v, _ := MustParse("user.name").Eval(masked); func() bool { s, _ := v.AsString(); return s != "Lisa Paul" }() {
		t.Errorf("name should be untouched: %s", v)
	}
	if v, _ := MustParse("tweets[1].text").Eval(masked); func() bool { s, _ := v.AsString(); return s == "█" }() {
		t.Error("tweets[1] wrongly redacted")
	}
	// Original unchanged.
	if v, _ := MustParse("user.id_str").Eval(d); func() bool { s, _ := v.AsString(); return s != "lp" }() {
		t.Error("Redact mutated the original")
	}
}

func TestRedactPlaceholderAndMissing(t *testing.T) {
	d := tweet102()
	// [pos] redacts every element.
	masked := Redact(d, []Path{MustParse("tweets[pos].text")}, nested.Null())
	tw, _ := masked.Get("tweets")
	for i, e := range tw.Elems() {
		txt, _ := e.Get("text")
		if !txt.IsNull() {
			t.Errorf("element %d not redacted", i+1)
		}
	}
	// Missing paths and out-of-range positions are ignored.
	same := Redact(d, []Path{MustParse("nope.deep"), MustParse("tweets[99]")}, nested.Null())
	if !nested.Equal(d, same) {
		t.Error("redacting missing paths changed the value")
	}
	// Whole-attribute redaction.
	m2 := Redact(d, []Path{MustParse("tweets")}, nested.StringVal("gone"))
	if v, _ := m2.Get("tweets"); func() bool { s, _ := v.AsString(); return s != "gone" }() {
		t.Error("whole attribute not redacted")
	}
}
