// Package path implements access paths over the nested data model
// (Def. 4.3): given a context data item d, a path p = d.p', p' = x | x.p',
// x = a | a[i] navigates attributes and positional elements of nested
// collections. Positions are 1-based, following the paper.
//
// Paths serve two roles in structural provenance:
//
//   - data-level paths with concrete positions, e.g. user_mentions[1].id_str,
//     used in backtracing trees; and
//   - schema-level paths where positions are replaced by the [pos]
//     placeholder, e.g. user_mentions[pos], used in the lightweight operator
//     provenance (Sec. 5.1).
package path

import (
	"fmt"
	"strconv"
	"strings"

	"pebble/internal/nested"
)

// Index sentinels for Step.Index.
const (
	// NoIndex marks a pure attribute step (no positional access).
	NoIndex = -1
	// Pos marks the schema-level position placeholder [pos].
	Pos = -2
)

// Step is one component x of a path: an attribute access, a positional
// access, or both (a[i] accesses position i of attribute a's collection).
// A step with an empty Attr and Index >= 1 is a bare positional step [i],
// which occurs in backtracing trees under collection attributes.
type Step struct {
	Attr  string
	Index int // 1-based position, NoIndex, or Pos
}

// String renders the step as it appears inside a path.
func (s Step) String() string {
	switch {
	case s.Index == NoIndex:
		return s.Attr
	case s.Index == Pos:
		return s.Attr + "[pos]"
	default:
		return s.Attr + "[" + strconv.Itoa(s.Index) + "]"
	}
}

// Path is a sequence of steps relative to a context data item.
type Path []Step

// New builds a path of pure attribute steps, e.g. New("user", "id_str").
func New(attrs ...string) Path {
	p := make(Path, len(attrs))
	for i, a := range attrs {
		p[i] = Step{Attr: a, Index: NoIndex}
	}
	return p
}

// Parse parses the textual form "a.b[2].c", "user_mentions[pos]" or
// "tweets.[2].text". Attribute names may contain any character except
// '.', '[' and ']'.
func Parse(s string) (Path, error) {
	if s == "" {
		return nil, fmt.Errorf("path: empty path")
	}
	var p Path
	for _, part := range strings.Split(s, ".") {
		if part == "" {
			return nil, fmt.Errorf("path: empty step in %q", s)
		}
		step, err := parseStep(part, s)
		if err != nil {
			return nil, err
		}
		p = append(p, step)
	}
	return p, nil
}

// MustParse is Parse that panics on error; for tests and literals.
func MustParse(s string) Path {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

func parseStep(part, whole string) (Step, error) {
	open := strings.IndexByte(part, '[')
	if open < 0 {
		if strings.ContainsAny(part, "]") {
			return Step{}, fmt.Errorf("path: stray ']' in step %q of %q", part, whole)
		}
		return Step{Attr: part, Index: NoIndex}, nil
	}
	if !strings.HasSuffix(part, "]") {
		return Step{}, fmt.Errorf("path: unterminated index in step %q of %q", part, whole)
	}
	attr := part[:open]
	idxStr := part[open+1 : len(part)-1]
	if idxStr == "pos" {
		return Step{Attr: attr, Index: Pos}, nil
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil || idx < 1 {
		return Step{}, fmt.Errorf("path: bad index %q in step %q of %q (want 1-based int or pos)", idxStr, part, whole)
	}
	return Step{Attr: attr, Index: idx}, nil
}

// String renders the path in its textual form.
func (p Path) String() string {
	parts := make([]string, len(p))
	for i, s := range p {
		parts[i] = s.String()
	}
	return strings.Join(parts, ".")
}

// Equal reports whether two paths are step-wise identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the path.
func (p Path) Clone() Path {
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// Append returns a new path with the steps of q appended.
func (p Path) Append(q ...Step) Path {
	out := make(Path, 0, len(p)+len(q))
	out = append(out, p...)
	return append(out, q...)
}

// Concat returns the concatenation p.q.
func (p Path) Concat(q Path) Path { return p.Append(q...) }

// HasPrefix reports whether p starts with prefix. A [pos] placeholder in the
// prefix matches any concrete position in p (and vice versa) so that
// schema-level manipulation paths match data-level tree paths.
func (p Path) HasPrefix(prefix Path) bool {
	if len(prefix) > len(p) {
		return false
	}
	for i, ps := range prefix {
		if !stepsMatch(p[i], ps) {
			return false
		}
	}
	return true
}

func stepsMatch(a, b Step) bool {
	if a.Attr != b.Attr {
		return false
	}
	if a.Index == b.Index {
		return true
	}
	// [pos] matches any concrete position but not "no index".
	if a.Index == Pos && b.Index >= 1 {
		return true
	}
	if b.Index == Pos && a.Index >= 1 {
		return true
	}
	return false
}

// ReplacePrefix returns p with the leading old steps replaced by new. It
// reports false when p does not start with old.
func (p Path) ReplacePrefix(old, new Path) (Path, bool) {
	if !p.HasPrefix(old) {
		return nil, false
	}
	out := make(Path, 0, len(new)+len(p)-len(old))
	out = append(out, new...)
	out = append(out, p[len(old):]...)
	return out, true
}

// SchemaLevel returns the path with every concrete position replaced by the
// [pos] placeholder, i.e. the representation recorded during lightweight
// capture.
func (p Path) SchemaLevel() Path {
	out := make(Path, len(p))
	for i, s := range p {
		if s.Index >= 1 {
			s.Index = Pos
		}
		out[i] = s
	}
	return out
}

// HasPlaceholder reports whether any step carries the [pos] placeholder.
func (p Path) HasPlaceholder() bool {
	for _, s := range p {
		if s.Index == Pos {
			return true
		}
	}
	return false
}

// Eval evaluates the path in the context of item d and returns the value it
// points to. Steps with NoIndex over a collection-valued attribute return
// the collection itself; positional steps select the 1-based element.
func (p Path) Eval(d nested.Value) (nested.Value, bool) {
	cur := d
	for _, s := range p {
		if s.Attr != "" {
			if cur.Kind() != nested.KindItem {
				return nested.Value{}, false
			}
			v, ok := cur.Get(s.Attr)
			if !ok {
				return nested.Value{}, false
			}
			cur = v
		}
		switch {
		case s.Index == NoIndex:
			// attribute access only
		case s.Index == Pos:
			return nested.Value{}, false // placeholders are not evaluable
		default:
			v, ok := cur.At(s.Index - 1)
			if !ok {
				return nested.Value{}, false
			}
			cur = v
		}
	}
	return cur, true
}

// EvalAll evaluates the path treating every un-indexed collection step as
// "all elements": it returns every value the path reaches. This is the
// evaluation mode used by select over nested data and by the tree-pattern
// matcher.
func (p Path) EvalAll(d nested.Value) []nested.Value {
	return evalAll(p, d)
}

func evalAll(p Path, cur nested.Value) []nested.Value {
	if len(p) == 0 {
		return []nested.Value{cur}
	}
	s := p[0]
	if s.Attr != "" {
		if cur.Kind() != nested.KindItem {
			return nil
		}
		v, ok := cur.Get(s.Attr)
		if !ok {
			return nil
		}
		cur = v
	}
	switch {
	case s.Index == NoIndex:
		if len(p) > 1 && cur.Kind().IsCollection() {
			// Fan out over all elements for the remaining steps.
			var out []nested.Value
			for _, e := range cur.Elems() {
				out = append(out, evalAll(p[1:], e)...)
			}
			return out
		}
		return evalAll(p[1:], cur)
	case s.Index == Pos:
		var out []nested.Value
		for _, e := range cur.Elems() {
			out = append(out, evalAll(p[1:], e)...)
		}
		return out
	default:
		v, ok := cur.At(s.Index - 1)
		if !ok {
			return nil
		}
		return evalAll(p[1:], v)
	}
}

// Set is an ordered, duplicate-free collection of paths keyed by their
// textual form. The zero value is ready to use.
type Set struct {
	keys  map[string]int
	paths []Path
}

// NewSet returns a Set containing the given paths.
func NewSet(paths ...Path) *Set {
	s := &Set{}
	for _, p := range paths {
		s.Add(p)
	}
	return s
}

// Add inserts the path if not already present and reports whether it was new.
func (s *Set) Add(p Path) bool {
	if s.keys == nil {
		s.keys = make(map[string]int)
	}
	k := p.String()
	if _, ok := s.keys[k]; ok {
		return false
	}
	s.keys[k] = len(s.paths)
	s.paths = append(s.paths, p)
	return true
}

// Contains reports whether the path is in the set.
func (s *Set) Contains(p Path) bool {
	if s == nil || s.keys == nil {
		return false
	}
	_, ok := s.keys[p.String()]
	return ok
}

// Len returns the number of paths.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.paths)
}

// Paths returns the paths in insertion order. The slice must not be modified.
func (s *Set) Paths() []Path {
	if s == nil {
		return nil
	}
	return s.paths
}

// Strings returns the textual forms in insertion order.
func (s *Set) Strings() []string {
	if s == nil {
		return nil
	}
	out := make([]string, len(s.paths))
	for i, p := range s.paths {
		out[i] = p.String()
	}
	return out
}

// Enumerate lists all paths that exist in context d (the path set PS_d of
// Def. 4.3), using concrete 1-based positions for collection elements.
// maxDepth <= 0 means unlimited.
func Enumerate(d nested.Value, maxDepth int) []Path {
	if maxDepth <= 0 {
		maxDepth = 1 << 30
	}
	var out []Path
	enumerate(d, nil, maxDepth, &out)
	return out
}

func enumerate(v nested.Value, prefix Path, depth int, out *[]Path) {
	if depth == 0 {
		return
	}
	switch v.Kind() {
	case nested.KindItem:
		for _, f := range v.Fields() {
			p := prefix.Append(Step{Attr: f.Name, Index: NoIndex})
			*out = append(*out, p)
			enumerate(f.Value, p, depth-1, out)
		}
	case nested.KindBag, nested.KindSet:
		for i, e := range v.Elems() {
			var p Path
			if len(prefix) == 0 {
				p = Path{Step{Index: i + 1}}
			} else {
				p = prefix.Clone()
				last := &p[len(p)-1]
				if last.Index == NoIndex {
					last.Index = i + 1
				} else {
					p = p.Append(Step{Index: i + 1})
				}
			}
			*out = append(*out, p)
			enumerate(e, p, depth-1, out)
		}
	}
}

// Redact returns a copy of d with the value at every given path replaced by
// the placeholder. Paths with the [pos] placeholder redact every element;
// paths that do not exist in d are ignored. Combined with the contributing
// cells of a provenance trace this yields attribute-precise masking: redact
// exactly what a leaked workload exposed, nothing more.
func Redact(d nested.Value, paths []Path, placeholder nested.Value) nested.Value {
	out := d
	for _, p := range paths {
		out = redactOne(out, p, placeholder)
	}
	return out
}

func redactOne(v nested.Value, p Path, placeholder nested.Value) nested.Value {
	if len(p) == 0 {
		return placeholder
	}
	s := p[0]
	cur := v
	if s.Attr != "" {
		if cur.Kind() != nested.KindItem {
			return v
		}
		attrVal, ok := cur.Get(s.Attr)
		if !ok {
			return v
		}
		var newVal nested.Value
		switch {
		case s.Index == NoIndex:
			if len(p) == 1 {
				newVal = placeholder
			} else {
				newVal = redactOne(attrVal, p[1:], placeholder)
			}
		default:
			newVal = redactPositions(attrVal, s.Index, p[1:], placeholder)
		}
		return cur.WithField(s.Attr, newVal)
	}
	// Bare positional step.
	return redactPositions(cur, s.Index, p[1:], placeholder)
}

// redactPositions redacts within a collection: idx >= 1 targets one element,
// Pos targets all.
func redactPositions(col nested.Value, idx int, rest Path, placeholder nested.Value) nested.Value {
	if !col.Kind().IsCollection() {
		return col
	}
	elems := make([]nested.Value, len(col.Elems()))
	copy(elems, col.Elems())
	apply := func(i int) {
		if len(rest) == 0 {
			elems[i] = placeholder
		} else {
			elems[i] = redactOne(elems[i], rest, placeholder)
		}
	}
	if idx == Pos {
		for i := range elems {
			apply(i)
		}
	} else if idx >= 1 && idx <= len(elems) {
		apply(idx - 1)
	}
	if col.Kind() == nested.KindSet {
		return nested.Set(elems...)
	}
	return nested.Bag(elems...)
}
