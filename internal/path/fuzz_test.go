package path

import (
	"testing"

	"pebble/internal/nested"
)

// FuzzParse: the path parser must never panic; parsed paths must round-trip
// through String and evaluate without panicking.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"a.b[2].c", "user_mentions[pos]", "[3]", "tweets.[2].text", "a",
	} {
		f.Add(seed)
	}
	ctx := nested.Item(
		nested.F("a", nested.Bag(nested.Item(nested.F("b", nested.Int(1))))),
	)
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(input)
		if err != nil {
			return
		}
		back, err := Parse(p.String())
		if err != nil || !back.Equal(p) {
			t.Fatalf("round trip failed for %q -> %q", input, p.String())
		}
		_, _ = p.Eval(ctx)
		_ = p.EvalAll(ctx)
		_ = p.SchemaLevel()
	})
}
