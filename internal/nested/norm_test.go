package nested

import (
	"bytes"
	"math"
	"testing"
)

// TestNormInjective pins the property the join/aggregate kernels rely on: no
// two structurally different values share an encoding, including the
// concatenation-ambiguous shapes Hash cannot distinguish.
func TestNormInjective(t *testing.T) {
	distinct := []Value{
		Null(),
		Int(0),
		Int(1),
		Double(1),                    // Int(1) and Double(1.0) must differ (kinds differ)
		Double(0),                    // +0.0
		Double(math.Copysign(0, -1)), // -0.0: bit-distinct, hash-distinct, byte-distinct
		StringVal(""),
		StringVal("ab"),
		Bool(false),
		Bool(true),
		// Hash-ambiguous string concatenations: ("ab","c") vs ("a","bc").
		Bag(StringVal("ab"), StringVal("c")),
		Bag(StringVal("a"), StringVal("bc")),
		// Field-name/value boundary ambiguity: <ab:"c"> vs <a:"bc">.
		Item(F("ab", StringVal("c"))),
		Item(F("a", StringVal("bc"))),
		// Bag vs set of the same elements.
		Bag(Int(1)),
		Set(Int(1)),
		// Nesting boundary: {{1},{}} vs {{},{1}} vs {{1}}.
		Bag(Bag(Int(1)), Bag()),
		Bag(Bag(), Bag(Int(1))),
		Bag(Bag(Int(1))),
	}
	encs := make([][]byte, len(distinct))
	for i, v := range distinct {
		encs[i] = v.AppendNorm(nil)
	}
	for i := range distinct {
		for j := i + 1; j < len(distinct); j++ {
			if bytes.Equal(encs[i], encs[j]) {
				t.Errorf("distinct values share an encoding: %s vs %s", distinct[i], distinct[j])
			}
		}
	}
}

// TestNormEqualValuesEncodeEqually checks the forward direction: structurally
// identical values (same bits for doubles) produce identical bytes even when
// built through different constructors.
func TestNormEqualValuesEncodeEqually(t *testing.T) {
	nan := math.NaN()
	pairs := [][2]Value{
		{Int(7), Int(7)},
		{Double(nan), Double(nan)}, // same NaN bits
		{StringVal("xy"), StringVal("xy")},
		{Item(F("a", Int(1)), F("b", Null())), Item(F("a", Int(1)), F("b", Null()))},
		{Bag(Int(1), Int(2)), Bag(Int(1), Int(2))},
		{Set(Int(1), Int(1), Int(2)), Set(Int(1), Int(2))}, // Set dedups on build
	}
	for _, p := range pairs {
		a, b := p[0].AppendNorm(nil), p[1].AppendNorm(nil)
		if !bytes.Equal(a, b) {
			t.Errorf("equal values encode differently: %s vs %s", p[0], p[1])
		}
	}
}

// TestNormHashConsistency pins the partitioning argument: whenever two values
// hash equally because their hash streams are identical (the non-collision
// case), bytes-equal must coincide with Equal — and for the coarser Equal
// cases (±0.0, distinct NaN payloads) the hashes differ, keeping the values
// in different chains under both the byte and the Equal discipline.
func TestNormHashConsistency(t *testing.T) {
	negZero := Double(math.Copysign(0, -1))
	if !Equal(Double(0), negZero) {
		t.Fatal("Equal must treat ±0.0 as equal")
	}
	if Double(0).Hash() == negZero.Hash() {
		t.Fatal("±0.0 must hash differently (Float64bits)")
	}
	if bytes.Equal(Double(0).AppendNorm(nil), negZero.AppendNorm(nil)) {
		t.Fatal("±0.0 must encode differently (Float64bits)")
	}
	// Two NaNs with different payloads: Equal, but never in one hash chain.
	nan1 := Double(math.Float64frombits(0x7ff8000000000001))
	nan2 := Double(math.Float64frombits(0x7ff8000000000002))
	if !Equal(nan1, nan2) {
		t.Fatal("Equal must treat NaNs as equal")
	}
	if nan1.Hash() == nan2.Hash() {
		t.Fatal("distinct NaN payloads must hash differently")
	}
	if bytes.Equal(nan1.AppendNorm(nil), nan2.AppendNorm(nil)) {
		t.Fatal("distinct NaN payloads must encode differently")
	}
	// Same-bits NaN: one chain, and byte-equal there.
	if nan1.Hash() != Double(math.Float64frombits(0x7ff8000000000001)).Hash() {
		t.Fatal("same NaN bits must hash equally")
	}
}

// TestNormAppend checks that AppendNorm extends dst in place.
func TestNormAppend(t *testing.T) {
	dst := []byte{0xff, 0xee}
	out := Int(3).AppendNorm(dst)
	if !bytes.Equal(out[:2], dst[:2]) {
		t.Fatalf("prefix clobbered: %x", out)
	}
	if len(out) <= 2 {
		t.Fatalf("nothing appended: %x", out)
	}
}
