package nested

import (
	"testing"
)

// FuzzParseJSON: arbitrary bytes must never panic the JSON decoder, and any
// accepted value must re-encode and re-decode to an equal value.
func FuzzParseJSON(f *testing.F) {
	for _, seed := range []string{
		`{"a": 1, "b": [true, null, "x"], "c": {"d": 2.5}}`,
		`[]`, `{}`, `"s"`, `-12`, `1e3`, `{"a":{"b":{"c":[[1],[2]]}}}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := ParseJSON(data)
		if err != nil {
			return
		}
		out, err := v.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted value failed to encode: %v", err)
		}
		back, err := ParseJSON(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v\n%s", err, out)
		}
		if !Equal(v, back) {
			t.Fatalf("round trip changed value:\n%s\n%s", v, back)
		}
		_ = v.Hash()
		_ = v.String()
	})
}
