package nested

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTweet() Value {
	return Item(
		F("text", StringVal("Hello @ls @jm @ls")),
		F("user", Item(F("id_str", StringVal("lp")), F("name", StringVal("Lisa Paul")))),
		F("user_mentions", Bag(
			Item(F("id_str", StringVal("ls")), F("name", StringVal("Lauren Smith"))),
			Item(F("id_str", StringVal("jm")), F("name", StringVal("John Miller"))),
			Item(F("id_str", StringVal("ls")), F("name", StringVal("Lauren Smith"))),
		)),
		F("retweet_cnt", Int(0)),
	)
}

func TestConstants(t *testing.T) {
	if v, ok := Int(7).AsInt(); !ok || v != 7 {
		t.Errorf("Int(7).AsInt() = %d, %v", v, ok)
	}
	if v, ok := Double(2.5).AsDouble(); !ok || v != 2.5 {
		t.Errorf("Double(2.5).AsDouble() = %g, %v", v, ok)
	}
	if v, ok := Int(7).AsDouble(); !ok || v != 7 {
		t.Errorf("Int(7).AsDouble() = %g, %v (ints widen to double)", v, ok)
	}
	if v, ok := StringVal("x").AsString(); !ok || v != "x" {
		t.Errorf("StringVal(x).AsString() = %q, %v", v, ok)
	}
	if v, ok := Bool(true).AsBool(); !ok || !v {
		t.Errorf("Bool(true).AsBool() = %v, %v", v, ok)
	}
	if !Null().IsNull() {
		t.Error("Null().IsNull() = false")
	}
	if (Value{}).IsNull() != true {
		t.Error("zero Value should report IsNull")
	}
}

func TestItemAccess(t *testing.T) {
	tw := sampleTweet()
	if got := tw.NumFields(); got != 4 {
		t.Fatalf("NumFields = %d, want 4", got)
	}
	user, ok := tw.Get("user")
	if !ok {
		t.Fatal("Get(user) missing")
	}
	id, ok := user.Get("id_str")
	if !ok {
		t.Fatal("Get(id_str) missing")
	}
	if s, _ := id.AsString(); s != "lp" {
		t.Errorf("user.id_str = %q, want lp", s)
	}
	if _, ok := tw.Get("nope"); ok {
		t.Error("Get(nope) should be absent")
	}
	names := tw.AttrNames()
	want := []string{"text", "user", "user_mentions", "retweet_cnt"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("AttrNames = %v, want %v", names, want)
	}
}

func TestNewItemRejectsDuplicates(t *testing.T) {
	if _, err := NewItem(F("a", Int(1)), F("a", Int(2))); err == nil {
		t.Error("NewItem with duplicate attribute should fail")
	}
	if _, err := NewItem(F("a", Int(1)), F("b", Int(2))); err != nil {
		t.Errorf("NewItem unique attrs failed: %v", err)
	}
}

func TestCollectionAccess(t *testing.T) {
	b := Bag(Int(1), Int(2), Int(2))
	if b.Len() != 3 {
		t.Errorf("bag Len = %d, want 3", b.Len())
	}
	if v, ok := b.At(1); !ok || mustInt(t, v) != 2 {
		t.Errorf("bag At(1) = %v, %v", v, ok)
	}
	if _, ok := b.At(3); ok {
		t.Error("bag At(3) should be out of range")
	}
	s := Set(Int(1), Int(2), Int(2))
	if s.Len() != 2 {
		t.Errorf("set Len = %d, want 2 (dedup)", s.Len())
	}
	s2 := s.Append(Int(2))
	if s2.Len() != 2 {
		t.Errorf("set Append dup Len = %d, want 2", s2.Len())
	}
	s3 := s.Append(Int(3))
	if s3.Len() != 3 {
		t.Errorf("set Append new Len = %d, want 3", s3.Len())
	}
	b2 := b.Append(Int(2))
	if b2.Len() != 4 {
		t.Errorf("bag Append Len = %d, want 4 (bags keep duplicates)", b2.Len())
	}
}

func TestWithFieldWithoutField(t *testing.T) {
	it := Item(F("a", Int(1)), F("b", Int(2)))
	up := it.WithField("b", Int(9))
	if v, _ := up.Get("b"); mustInt(t, v) != 9 {
		t.Errorf("WithField replace: b = %v", v)
	}
	add := it.WithField("c", Int(3))
	if add.NumFields() != 3 {
		t.Errorf("WithField append: NumFields = %d", add.NumFields())
	}
	del := it.WithoutField("a")
	if _, ok := del.Get("a"); ok || del.NumFields() != 1 {
		t.Errorf("WithoutField: %v", del)
	}
	// original untouched
	if v, _ := it.Get("b"); mustInt(t, v) != 2 {
		t.Error("WithField mutated original")
	}
}

func TestEqualAndCompare(t *testing.T) {
	a := sampleTweet()
	b := sampleTweet()
	if !Equal(a, b) {
		t.Error("identical tweets not Equal")
	}
	c := b.WithField("retweet_cnt", Int(1))
	if Equal(a, c) {
		t.Error("different tweets Equal")
	}
	if Compare(a, a) != 0 {
		t.Error("Compare(a,a) != 0")
	}
	if Compare(Int(1), Int(2)) >= 0 || Compare(Int(2), Int(1)) <= 0 {
		t.Error("int Compare ordering broken")
	}
	if Compare(Int(1), StringVal("a")) == 0 {
		t.Error("cross-kind Compare should not be 0")
	}
	// order of attributes matters for equality
	x := Item(F("a", Int(1)), F("b", Int(2)))
	y := Item(F("b", Int(2)), F("a", Int(1)))
	if Equal(x, y) {
		t.Error("items with different attribute order should not be Equal")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := sampleTweet()
	c := a.Clone()
	if !Equal(a, c) {
		t.Fatal("clone differs")
	}
	// Mutating the clone's internals must not affect the original.
	mentions, _ := c.Get("user_mentions")
	elems := mentions.Elems()
	elems[0] = Item(F("id_str", StringVal("zz")))
	orig, _ := a.Get("user_mentions")
	first, _ := orig.At(0)
	if s, _ := mustGet(t, first, "id_str").AsString(); s != "ls" {
		t.Error("clone shares element storage with original")
	}
}

func TestHashConsistency(t *testing.T) {
	a := sampleTweet()
	b := sampleTweet()
	if a.Hash() != b.Hash() {
		t.Error("equal values must hash equally")
	}
	c := a.WithField("retweet_cnt", Int(5))
	if a.Hash() == c.Hash() {
		t.Error("hash collision on trivially different values (suspicious)")
	}
	// Field names participate in the hash.
	x := Item(F("a", Int(1)))
	y := Item(F("b", Int(1)))
	if x.Hash() == y.Hash() {
		t.Error("hash ignores attribute names")
	}
}

func TestStringRendering(t *testing.T) {
	v := Item(F("a", Int(1)), F("b", Bag(StringVal("x"))))
	got := v.String()
	want := `{a: 1, b: ["x"]}`
	if got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
}

func TestSortElems(t *testing.T) {
	b := Bag(Int(3), Int(1), Int(2))
	s := b.SortElems()
	var got []int64
	for _, e := range s.Elems() {
		got = append(got, mustInt(t, e))
	}
	if !reflect.DeepEqual(got, []int64{1, 2, 3}) {
		t.Errorf("SortElems = %v", got)
	}
	if mustInt(t, b.Elems()[0]) != 3 {
		t.Error("SortElems mutated receiver")
	}
}

func TestSizeBytes(t *testing.T) {
	small := Int(1)
	big := sampleTweet()
	if small.SizeBytes() >= big.SizeBytes() {
		t.Errorf("SizeBytes not monotone: %d vs %d", small.SizeBytes(), big.SizeBytes())
	}
	if Bag().SizeBytes() <= 0 {
		t.Error("empty bag should still have positive footprint")
	}
}

// randomValue builds a random value of bounded depth for property tests.
func randomValue(r *rand.Rand, depth int) Value {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return Int(r.Int63n(1000))
		case 1:
			return Double(float64(r.Intn(100)) / 4)
		case 2:
			return StringVal(randomWord(r))
		default:
			return Bool(r.Intn(2) == 0)
		}
	}
	switch r.Intn(6) {
	case 0:
		return Int(r.Int63n(1000))
	case 1:
		return StringVal(randomWord(r))
	case 2:
		return Bool(r.Intn(2) == 0)
	case 3: // item
		n := 1 + r.Intn(3)
		fields := make([]Field, 0, n)
		for i := 0; i < n; i++ {
			fields = append(fields, F(string(rune('a'+i)), randomValue(r, depth-1)))
		}
		return Item(fields...)
	default: // bag of homogeneous scalars to respect the data model
		n := r.Intn(4)
		elems := make([]Value, 0, n)
		for i := 0; i < n; i++ {
			elems = append(elems, Int(r.Int63n(50)))
		}
		return Bag(elems...)
	}
}

func randomWord(r *rand.Rand) string {
	words := []string{"hello", "world", "good", "BTS", "@jm", "@lp", "x"}
	return words[r.Intn(len(words))]
}

func TestPropertyEqualImpliesEqualHash(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		v := randomValue(rr, 3)
		c := v.Clone()
		return Equal(v, c) && v.Hash() == c.Hash() && Compare(v, c) == 0
	}
	cfg := &quick.Config{MaxCount: 200, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyCompareAntisymmetric(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a := randomValue(rand.New(rand.NewSource(s1)), 3)
		b := randomValue(rand.New(rand.NewSource(s2)), 3)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func mustInt(t *testing.T, v Value) int64 {
	t.Helper()
	i, ok := v.AsInt()
	if !ok {
		t.Fatalf("value %s is not an int", v)
	}
	return i
}

func mustGet(t *testing.T, v Value, name string) Value {
	t.Helper()
	out, ok := v.Get(name)
	if !ok {
		t.Fatalf("attribute %q missing in %s", name, v)
	}
	return out
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindInvalid: "invalid", KindNull: "null", KindInt: "int",
		KindDouble: "double", KindString: "string", KindBool: "bool",
		KindItem: "item", KindBag: "bag", KindSet: "set",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Error("unknown kind should print its number")
	}
}
