package nested

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Hash returns a 64-bit FNV-1a hash of the value. Equal values hash equally;
// the hash is used for hash joins, group-by shuffles, and set semantics.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	v.hashInto(h)
	return h.Sum64()
}

type hasher interface {
	Write(p []byte) (n int, err error)
}

func (v Value) hashInto(h hasher) {
	var kindBuf [1]byte
	kindBuf[0] = byte(v.kind)
	h.Write(kindBuf[:])
	var buf [8]byte
	switch v.kind {
	case KindInt:
		binary.LittleEndian.PutUint64(buf[:], uint64(v.i))
		h.Write(buf[:])
	case KindDouble:
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.f))
		h.Write(buf[:])
	case KindString:
		h.Write([]byte(v.s))
	case KindBool:
		if v.b {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	case KindItem:
		for _, f := range v.fields {
			h.Write([]byte(f.Name))
			f.Value.hashInto(h)
		}
	case KindBag, KindSet:
		for _, e := range v.elems {
			e.hashInto(h)
		}
	}
}

// SizeBytes estimates the in-memory footprint of the value in bytes. The
// evaluation harness uses it to report dataset and provenance sizes in the
// same "simulated GB" unit as the workload generators.
func (v Value) SizeBytes() int {
	const valueHeader = 64 // approximate struct overhead
	size := valueHeader
	switch v.kind {
	case KindString:
		size += len(v.s)
	case KindItem:
		for _, f := range v.fields {
			size += len(f.Name) + f.Value.SizeBytes()
		}
	case KindBag, KindSet:
		for _, e := range v.elems {
			size += e.SizeBytes()
		}
	}
	return size
}
