// Package nested implements the nested data model of Diestelkämper &
// Herschel (EDBT 2020), Sec. 4.1: datasets are ordered collections of typed
// nested data items built from constants, items (ordered attribute/value
// lists), bags (ordered lists with duplicates), and sets (ordered lists
// without duplicates).
//
// A Value is a small variant record rather than an interface hierarchy so
// that constants do not allocate and values copy cheaply. Values are treated
// as immutable once shared: operators build new values instead of mutating
// inputs.
package nested

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the building blocks of the data model (Tab. 4 in the
// paper): constants (Int, Double, String, Bool), data items, bags, and sets.
// Null represents an absent value (e.g. the undefined side of a union).
type Kind uint8

// The kinds of a Value.
const (
	KindInvalid Kind = iota
	KindNull
	KindInt
	KindDouble
	KindString
	KindBool
	KindItem
	KindBag
	KindSet
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInvalid:
		return "invalid"
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindDouble:
		return "double"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindItem:
		return "item"
	case KindBag:
		return "bag"
	case KindSet:
		return "set"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsConstant reports whether the kind is one of the constant kinds.
func (k Kind) IsConstant() bool {
	switch k {
	case KindInt, KindDouble, KindString, KindBool:
		return true
	}
	return false
}

// IsCollection reports whether the kind is a bag or a set.
func (k Kind) IsCollection() bool { return k == KindBag || k == KindSet }

// Field is one attribute/value pair of a data item. Attribute names are
// unique within an item and the field order is significant (Def. 4.1).
type Field struct {
	Name  string
	Value Value
}

// Value is one nested value: a constant, a data item, a bag, or a set.
// The zero Value has KindInvalid; use Null() for an explicit null.
type Value struct {
	kind   Kind
	i      int64
	f      float64
	s      string
	b      bool
	fields []Field
	elems  []Value
}

// Null returns the null value.
func Null() Value { return Value{kind: KindNull} }

// Int returns an integer constant.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Double returns a floating-point constant.
func Double(v float64) Value { return Value{kind: KindDouble, f: v} }

// String returns a string constant.
func StringVal(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean constant.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Item returns a data item with the given fields, in order. Duplicate
// attribute names are not checked here; use NewItem for checked construction.
func Item(fields ...Field) Value {
	return Value{kind: KindItem, fields: fields}
}

// NewItem returns a data item and verifies that attribute names are unique.
func NewItem(fields ...Field) (Value, error) {
	seen := make(map[string]struct{}, len(fields))
	for _, f := range fields {
		if _, dup := seen[f.Name]; dup {
			return Value{}, fmt.Errorf("nested: duplicate attribute %q in item", f.Name)
		}
		seen[f.Name] = struct{}{}
	}
	return Item(fields...), nil
}

// F is shorthand for constructing a Field.
func F(name string, v Value) Field { return Field{Name: name, Value: v} }

// Bag returns an ordered collection that may contain duplicates.
func Bag(elems ...Value) Value {
	return Value{kind: KindBag, elems: elems}
}

// Set returns an ordered collection without duplicates. Duplicates in elems
// are dropped, keeping the first occurrence.
func Set(elems ...Value) Value {
	out := make([]Value, 0, len(elems))
	for _, e := range elems {
		dup := false
		for _, o := range out {
			if Equal(o, e) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, e)
		}
	}
	return Value{kind: KindSet, elems: out}
}

// Kind returns the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null or invalid.
func (v Value) IsNull() bool { return v.kind == KindNull || v.kind == KindInvalid }

// AsInt returns the integer constant and whether the value is an int.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsDouble returns the numeric value as float64 for int and double kinds.
func (v Value) AsDouble() (float64, bool) {
	switch v.kind {
	case KindDouble:
		return v.f, true
	case KindInt:
		return float64(v.i), true
	}
	return 0, false
}

// AsString returns the string constant and whether the value is a string.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsBool returns the boolean constant and whether the value is a bool.
func (v Value) AsBool() (bool, bool) { return v.b, v.kind == KindBool }

// NumFields returns the number of attributes of an item, or 0 otherwise.
func (v Value) NumFields() int { return len(v.fields) }

// FieldAt returns the i-th field of an item.
func (v Value) FieldAt(i int) Field { return v.fields[i] }

// Fields returns the item's fields. The returned slice must not be modified.
func (v Value) Fields() []Field { return v.fields }

// Get returns the value of the named attribute of an item.
func (v Value) Get(name string) (Value, bool) {
	for _, f := range v.fields {
		if f.Name == name {
			return f.Value, true
		}
	}
	return Value{}, false
}

// AttrNames returns the attribute names of an item, in order.
func (v Value) AttrNames() []string {
	names := make([]string, len(v.fields))
	for i, f := range v.fields {
		names[i] = f.Name
	}
	return names
}

// Len returns the number of elements of a bag or set, or 0 otherwise.
func (v Value) Len() int { return len(v.elems) }

// At returns the element at position i (0-based) of a bag or set.
func (v Value) At(i int) (Value, bool) {
	if !v.kind.IsCollection() || i < 0 || i >= len(v.elems) {
		return Value{}, false
	}
	return v.elems[i], true
}

// Elems returns the collection's elements. The returned slice must not be
// modified.
func (v Value) Elems() []Value { return v.elems }

// WithField returns a copy of the item with the named attribute set to val,
// appending the attribute if absent.
func (v Value) WithField(name string, val Value) Value {
	fields := make([]Field, 0, len(v.fields)+1)
	replaced := false
	for _, f := range v.fields {
		if f.Name == name {
			fields = append(fields, Field{Name: name, Value: val})
			replaced = true
		} else {
			fields = append(fields, f)
		}
	}
	if !replaced {
		fields = append(fields, Field{Name: name, Value: val})
	}
	return Item(fields...)
}

// WithoutField returns a copy of the item with the named attribute removed.
func (v Value) WithoutField(name string) Value {
	fields := make([]Field, 0, len(v.fields))
	for _, f := range v.fields {
		if f.Name != name {
			fields = append(fields, f)
		}
	}
	return Item(fields...)
}

// Append returns a copy of the collection with e appended. For sets the
// element is dropped when already present.
func (v Value) Append(e Value) Value {
	if v.kind == KindSet {
		for _, o := range v.elems {
			if Equal(o, e) {
				return v
			}
		}
	}
	elems := make([]Value, len(v.elems), len(v.elems)+1)
	copy(elems, v.elems)
	return Value{kind: v.kind, elems: append(elems, e)}
}

// Clone returns a deep copy of the value.
func (v Value) Clone() Value {
	switch v.kind {
	case KindItem:
		fields := make([]Field, len(v.fields))
		for i, f := range v.fields {
			fields[i] = Field{Name: f.Name, Value: f.Value.Clone()}
		}
		return Value{kind: KindItem, fields: fields}
	case KindBag, KindSet:
		elems := make([]Value, len(v.elems))
		for i, e := range v.elems {
			elems[i] = e.Clone()
		}
		return Value{kind: v.kind, elems: elems}
	default:
		return v
	}
}

// Equal reports deep structural equality. Items are equal when they have the
// same attributes with equal values in the same order; collections when they
// have equal elements in the same order.
func Equal(a, b Value) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindNull, KindInvalid:
		return true
	case KindInt:
		return a.i == b.i
	case KindDouble:
		return a.f == b.f || (math.IsNaN(a.f) && math.IsNaN(b.f))
	case KindString:
		return a.s == b.s
	case KindBool:
		return a.b == b.b
	case KindItem:
		if len(a.fields) != len(b.fields) {
			return false
		}
		for i := range a.fields {
			if a.fields[i].Name != b.fields[i].Name || !Equal(a.fields[i].Value, b.fields[i].Value) {
				return false
			}
		}
		return true
	case KindBag, KindSet:
		if len(a.elems) != len(b.elems) {
			return false
		}
		for i := range a.elems {
			if !Equal(a.elems[i], b.elems[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Compare orders values totally: first by kind, then by content. It is used
// for deterministic sorting of groups and set canonicalisation.
func Compare(a, b Value) int {
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindNull, KindInvalid:
		return 0
	case KindInt:
		return cmpInt64(a.i, b.i)
	case KindDouble:
		switch {
		case a.f < b.f:
			return -1
		case a.f > b.f:
			return 1
		}
		return 0
	case KindString:
		return strings.Compare(a.s, b.s)
	case KindBool:
		switch {
		case !a.b && b.b:
			return -1
		case a.b && !b.b:
			return 1
		}
		return 0
	case KindItem:
		for i := 0; i < len(a.fields) && i < len(b.fields); i++ {
			if c := strings.Compare(a.fields[i].Name, b.fields[i].Name); c != 0 {
				return c
			}
			if c := Compare(a.fields[i].Value, b.fields[i].Value); c != 0 {
				return c
			}
		}
		return cmpInt64(int64(len(a.fields)), int64(len(b.fields)))
	case KindBag, KindSet:
		for i := 0; i < len(a.elems) && i < len(b.elems); i++ {
			if c := Compare(a.elems[i], b.elems[i]); c != 0 {
				return c
			}
		}
		return cmpInt64(int64(len(a.elems)), int64(len(b.elems)))
	}
	return 0
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// SortElems returns a copy of the collection with elements sorted by Compare.
// Non-collections are returned unchanged.
func (v Value) SortElems() Value {
	if !v.kind.IsCollection() {
		return v
	}
	elems := make([]Value, len(v.elems))
	copy(elems, v.elems)
	sort.Slice(elems, func(i, j int) bool { return Compare(elems[i], elems[j]) < 0 })
	return Value{kind: v.kind, elems: elems}
}

// String renders the value in a compact JSON-like syntax with items as
// {a: v, ...} and collections as [v, ...].
func (v Value) String() string {
	var sb strings.Builder
	v.writeString(&sb)
	return sb.String()
}

func (v Value) writeString(sb *strings.Builder) {
	switch v.kind {
	case KindNull, KindInvalid:
		sb.WriteString("null")
	case KindInt:
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case KindDouble:
		sb.WriteString(strconv.FormatFloat(v.f, 'g', -1, 64))
	case KindString:
		sb.WriteString(strconv.Quote(v.s))
	case KindBool:
		sb.WriteString(strconv.FormatBool(v.b))
	case KindItem:
		sb.WriteByte('{')
		for i, f := range v.fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.Name)
			sb.WriteString(": ")
			f.Value.writeString(sb)
		}
		sb.WriteByte('}')
	case KindBag, KindSet:
		sb.WriteByte('[')
		for i, e := range v.elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			e.writeString(sb)
		}
		sb.WriteByte(']')
	}
}
