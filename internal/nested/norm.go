package nested

import (
	"encoding/binary"
	"math"
)

// AppendNorm appends an unambiguous binary encoding of the value to dst and
// returns the extended slice. The encoding is the hash-table key format of
// the engine's vectorized join/aggregate kernels: values are compared by
// normalized bytes instead of walking two nested structures per probe.
//
// Properties the kernels rely on:
//
//   - Injective: every component is kind-tagged and length-prefixed, so no
//     two structurally different values share an encoding (unlike hashInto,
//     whose string and collection payloads concatenate ambiguously —
//     acceptable for a hash, not for a key).
//   - Doubles encode their raw IEEE bits. Encodings are therefore equal
//     exactly when the values are structurally identical *up to float bit
//     identity*: Equal is slightly coarser (+0.0 ≡ -0.0, any NaN ≡ any NaN).
//     That gap cannot surface through the kernels, because Hash also feeds
//     on Float64bits: values that are Equal but bit-different never share a
//     hash, so the row-wise reference semantics (hash chain, then Equal)
//     and the kernel semantics (hash, then bytes) partition rows
//     identically — modulo 64-bit FNV collisions, which both paths already
//     accept.
//
// The encoding, per kind: a kind byte, then Int as 8 little-endian bytes,
// Double as Float64bits likewise, Bool as one byte, String as uvarint length
// plus bytes, Item as uvarint field count then per field a uvarint-length
// name and the encoded value, Bag/Set as uvarint element count then the
// encoded elements. Null is the kind byte alone.
func (v Value) AppendNorm(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindInt:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.i))
	case KindDouble:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.f))
	case KindBool:
		if v.b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case KindItem:
		dst = binary.AppendUvarint(dst, uint64(len(v.fields)))
		for _, f := range v.fields {
			dst = binary.AppendUvarint(dst, uint64(len(f.Name)))
			dst = append(dst, f.Name...)
			dst = f.Value.AppendNorm(dst)
		}
	case KindBag, KindSet:
		dst = binary.AppendUvarint(dst, uint64(len(v.elems)))
		for _, e := range v.elems {
			dst = e.AppendNorm(dst)
		}
	}
	return dst
}
