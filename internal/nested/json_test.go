package nested

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseJSONPreservesAttributeOrder(t *testing.T) {
	// Keys deliberately in non-alphabetical order.
	data := []byte(`{"zeta": 1, "alpha": {"y": 2, "x": 3}, "mid": [1, 2]}`)
	v, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	names := v.AttrNames()
	if names[0] != "zeta" || names[1] != "alpha" || names[2] != "mid" {
		t.Errorf("attribute order lost: %v", names)
	}
	inner, _ := v.Get("alpha")
	if got := inner.AttrNames(); got[0] != "y" || got[1] != "x" {
		t.Errorf("nested attribute order lost: %v", got)
	}
}

func TestParseJSONTypes(t *testing.T) {
	v, err := ParseJSON([]byte(`{"i": 42, "d": 1.5, "s": "x", "b": true, "n": null, "l": [1]}`))
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := mustGet(t, v, "i").AsInt(); f != 42 {
		t.Error("int lost")
	}
	if f, _ := mustGet(t, v, "d").AsDouble(); f != 1.5 {
		t.Error("double lost")
	}
	if mustGet(t, v, "n").Kind() != KindNull {
		t.Error("null lost")
	}
	if mustGet(t, v, "l").Kind() != KindBag {
		t.Error("array should decode to bag")
	}
}

func TestParseJSONErrors(t *testing.T) {
	for _, bad := range []string{``, `{`, `{"a": }`, `[1,]`, `{"a":1} trailing`} {
		if _, err := ParseJSON([]byte(bad)); err == nil {
			t.Errorf("ParseJSON(%q) should fail", bad)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := sampleTweet()
	data, err := orig.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(orig, back) {
		t.Errorf("round trip changed value:\n %s\n %s", orig, back)
	}
}

func TestJSONLinesRoundTrip(t *testing.T) {
	vals := []Value{sampleTweet(), Item(F("a", Int(1)))}
	var buf bytes.Buffer
	if err := EncodeJSONLines(&buf, vals); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Errorf("want 2 lines, got %d", got)
	}
	back, err := ParseJSONLines(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || !Equal(back[0], vals[0]) || !Equal(back[1], vals[1]) {
		t.Error("JSON-lines round trip mismatch")
	}
	// blank lines are skipped
	back2, err := ParseJSONLines([]byte("\n" + buf.String() + "\n\n"))
	if err != nil || len(back2) != 2 {
		t.Errorf("blank-line handling: %v, %d values", err, len(back2))
	}
	if _, err := ParseJSONLines([]byte("{}\nnot json\n")); err == nil {
		t.Error("bad line should fail with line number")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should cite line 2: %v", err)
	}
}

func TestPropertyJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		v := randomValue(rand.New(rand.NewSource(seed)), 3)
		data, err := v.MarshalJSON()
		if err != nil {
			return false
		}
		back, err := ParseJSON(data)
		if err != nil {
			return false
		}
		// Sets encode as arrays and decode as bags; the random generator only
		// builds bags, so equality must hold exactly.
		return Equal(v, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
