package nested

import (
	"strings"
	"testing"
)

func TestTypeOfRunningExampleResult(t *testing.T) {
	// The result data of Tab. 2 has type
	// {{<user:<id_str:String, name:String>, tweets:{{<text:String>}}>}}  (Ex. 4.2)
	result := Bag(
		Item(
			F("user", Item(F("id_str", StringVal("lp")), F("name", StringVal("Lisa Paul")))),
			F("tweets", Bag(Item(F("text", StringVal("Hello World"))))),
		),
	)
	got := TypeOf(result).String()
	want := "{{<user:<id_str:string, name:string>, tweets:{{<text:string>}}>}}"
	if got != want {
		t.Errorf("TypeOf = %s\nwant      %s", got, want)
	}
}

func TestTypeEquality(t *testing.T) {
	a := TypeOf(Item(F("a", Int(1)), F("b", Bag(StringVal("x")))))
	b := TypeOf(Item(F("a", Int(2)), F("b", Bag(StringVal("y")))))
	if !EqualType(a, b) {
		t.Error("types of same-shaped items must be equal")
	}
	c := TypeOf(Item(F("a", Int(1))))
	if EqualType(a, c) {
		t.Error("types with different attributes must differ")
	}
	// attribute order matters
	d := TypeOf(Item(F("b", Bag(StringVal("x"))), F("a", Int(1))))
	if EqualType(a, d) {
		t.Error("attribute order is part of the type")
	}
}

func TestTypeCompatibility(t *testing.T) {
	full := TypeOf(Bag(Int(1)))
	empty := TypeOf(Bag())
	if EqualType(full, empty) {
		t.Error("EqualType must distinguish known and unknown element types")
	}
	if !Compatible(full, empty) {
		t.Error("empty bag must be union-compatible with any bag")
	}
	if !Compatible(TypeOf(Int(1)), TypeOf(Double(1.5))) {
		t.Error("int and double should unify")
	}
	if Compatible(TypeOf(Int(1)), TypeOf(StringVal("x"))) {
		t.Error("int and string must not unify")
	}
	if !Compatible(TypeOf(Null()), TypeOf(Item())) {
		t.Error("null is compatible with anything")
	}
	nestedA := TypeOf(Item(F("u", Item(F("id", StringVal("x"))))))
	nestedB := TypeOf(Item(F("u", Item(F("id", StringVal("y"))))))
	if !Compatible(nestedA, nestedB) {
		t.Error("recursively equal item types must be compatible")
	}
}

func TestCheckHomogeneous(t *testing.T) {
	good := Bag(Item(F("a", Int(1))), Item(F("a", Int(2))))
	if err := CheckHomogeneous(good); err != nil {
		t.Errorf("homogeneous bag rejected: %v", err)
	}
	bad := Bag(Int(1), StringVal("x"))
	if err := CheckHomogeneous(bad); err == nil {
		t.Error("heterogeneous bag accepted")
	}
	deepBad := Item(F("outer", Bag(Bag(Int(1)), Bag(StringVal("x")))))
	if err := CheckHomogeneous(deepBad); err == nil {
		t.Error("nested heterogeneous collection accepted")
	} else if !strings.Contains(err.Error(), "outer") {
		t.Errorf("error should name the offending attribute: %v", err)
	}
}

func TestTypeGetAndStringForms(t *testing.T) {
	ty := TypeOf(sampleTweet())
	u, ok := ty.Get("user")
	if !ok || u.Kind != KindItem {
		t.Fatalf("type Get(user) = %v, %v", u, ok)
	}
	if _, ok := ty.Get("nope"); ok {
		t.Error("type Get(nope) should fail")
	}
	if got := TypeOf(Set(Int(1))).String(); got != "{int}" {
		t.Errorf("set type = %s, want {int}", got)
	}
	if got := TypeOf(Bag()).String(); got != "{{?}}" {
		t.Errorf("empty bag type = %s, want {{?}}", got)
	}
}
