package nested

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParseJSON decodes one JSON document into a Value, preserving the attribute
// order of objects (which encoding/json's map decoding would lose). Objects
// become items, arrays become bags, numbers become ints when they have no
// fractional part and doubles otherwise.
func ParseJSON(data []byte) (Value, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	v, err := decodeValue(dec)
	if err != nil {
		return Value{}, err
	}
	// Reject trailing garbage.
	if _, err := dec.Token(); err != io.EOF {
		return Value{}, fmt.Errorf("nested: trailing data after JSON value")
	}
	return v, nil
}

// ParseJSONLines decodes newline-delimited JSON (one top-level item per
// line), the format produced by EncodeJSONLines and by cmd/datagen.
func ParseJSONLines(data []byte) ([]Value, error) {
	var out []Value
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		v, err := ParseJSON([]byte(line))
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func decodeValue(dec *json.Decoder) (Value, error) {
	tok, err := dec.Token()
	if err != nil {
		return Value{}, err
	}
	return decodeFromToken(dec, tok)
}

func decodeFromToken(dec *json.Decoder, tok json.Token) (Value, error) {
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '{':
			var fields []Field
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return Value{}, err
				}
				key, ok := keyTok.(string)
				if !ok {
					return Value{}, fmt.Errorf("nested: object key is not a string: %v", keyTok)
				}
				val, err := decodeValue(dec)
				if err != nil {
					return Value{}, err
				}
				fields = append(fields, Field{Name: key, Value: val})
			}
			if _, err := dec.Token(); err != nil { // consume '}'
				return Value{}, err
			}
			return Item(fields...), nil
		case '[':
			var elems []Value
			for dec.More() {
				val, err := decodeValue(dec)
				if err != nil {
					return Value{}, err
				}
				elems = append(elems, val)
			}
			if _, err := dec.Token(); err != nil { // consume ']'
				return Value{}, err
			}
			return Bag(elems...), nil
		}
		return Value{}, fmt.Errorf("nested: unexpected delimiter %v", t)
	case json.Number:
		if i, err := strconv.ParseInt(t.String(), 10, 64); err == nil {
			return Int(i), nil
		}
		f, err := t.Float64()
		if err != nil {
			return Value{}, fmt.Errorf("nested: bad number %q: %w", t.String(), err)
		}
		return Double(f), nil
	case string:
		return StringVal(t), nil
	case bool:
		return Bool(t), nil
	case nil:
		return Null(), nil
	}
	return Value{}, fmt.Errorf("nested: unexpected token %v", tok)
}

// MarshalJSON encodes the value as JSON, keeping item attribute order. Sets
// and bags both encode as arrays (JSON has no set syntax); the distinction
// is only recoverable through the schema.
func (v Value) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	if err := v.encodeJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (v Value) encodeJSON(buf *bytes.Buffer) error {
	switch v.kind {
	case KindNull, KindInvalid:
		buf.WriteString("null")
	case KindInt:
		buf.WriteString(strconv.FormatInt(v.i, 10))
	case KindDouble:
		if math.IsInf(v.f, 0) || math.IsNaN(v.f) {
			return fmt.Errorf("nested: cannot encode non-finite double %g", v.f)
		}
		s := strconv.FormatFloat(v.f, 'g', -1, 64)
		// Keep integral doubles recognisable as doubles across a round trip.
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		buf.WriteString(s)
	case KindString:
		b, err := json.Marshal(v.s)
		if err != nil {
			return err
		}
		buf.Write(b)
	case KindBool:
		buf.WriteString(strconv.FormatBool(v.b))
	case KindItem:
		buf.WriteByte('{')
		for i, f := range v.fields {
			if i > 0 {
				buf.WriteByte(',')
			}
			nb, err := json.Marshal(f.Name)
			if err != nil {
				return err
			}
			buf.Write(nb)
			buf.WriteByte(':')
			if err := f.Value.encodeJSON(buf); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	case KindBag, KindSet:
		buf.WriteByte('[')
		for i, e := range v.elems {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := e.encodeJSON(buf); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	}
	return nil
}

// EncodeJSONLines writes one JSON document per value, newline-delimited.
func EncodeJSONLines(w io.Writer, values []Value) error {
	var buf bytes.Buffer
	for _, v := range values {
		buf.Reset()
		if err := v.encodeJSON(&buf); err != nil {
			return err
		}
		buf.WriteByte('\n')
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}
