package nested

import (
	"fmt"
	"strings"
)

// Type describes the recursive type τ(·) of a value (Tab. 4): constants have
// scalar types, items have an ordered attribute/type list, and collections
// have a homogeneous element type.
//
// An empty collection has Elem == nil ("unknown element type"); it is
// compatible with any collection of the same kind.
type Type struct {
	Kind   Kind
	Fields []FieldType // for KindItem
	Elem   *Type       // for KindBag / KindSet
}

// FieldType is the declared type of one item attribute.
type FieldType struct {
	Name string
	Type Type
}

// TypeOf infers the type of a value. For collections the element type is the
// type of the first element; the data model requires homogeneous collections
// (CheckHomogeneous verifies this).
func TypeOf(v Value) Type {
	switch v.kind {
	case KindItem:
		fields := make([]FieldType, len(v.fields))
		for i, f := range v.fields {
			fields[i] = FieldType{Name: f.Name, Type: TypeOf(f.Value)}
		}
		return Type{Kind: KindItem, Fields: fields}
	case KindBag, KindSet:
		t := Type{Kind: v.kind}
		if len(v.elems) > 0 {
			elem := TypeOf(v.elems[0])
			t.Elem = &elem
		}
		return t
	default:
		return Type{Kind: v.kind}
	}
}

// Type returns the inferred type of the value.
func (v Value) Type() Type { return TypeOf(v) }

// Get returns the type of the named attribute of an item type.
func (t Type) Get(name string) (Type, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f.Type, true
		}
	}
	return Type{}, false
}

// EqualType reports deep equality of two types. A nil collection element
// type only equals another nil element type; use Compatible for the laxer
// check used by union.
func EqualType(a, b Type) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindItem:
		if len(a.Fields) != len(b.Fields) {
			return false
		}
		for i := range a.Fields {
			if a.Fields[i].Name != b.Fields[i].Name || !EqualType(a.Fields[i].Type, b.Fields[i].Type) {
				return false
			}
		}
		return true
	case KindBag, KindSet:
		if (a.Elem == nil) != (b.Elem == nil) {
			return false
		}
		if a.Elem == nil {
			return true
		}
		return EqualType(*a.Elem, *b.Elem)
	default:
		return true
	}
}

// Compatible reports whether two types are compatible in the sense of the
// union precondition τ(I1) = τ(I2): equal up to unknown (nil) collection
// element types and up to null values, which are compatible with anything.
func Compatible(a, b Type) bool {
	if a.Kind == KindNull || b.Kind == KindNull {
		return true
	}
	// Int and double unify to double, mirroring numeric widening in DISC
	// systems' schema merge.
	if (a.Kind == KindInt || a.Kind == KindDouble) && (b.Kind == KindInt || b.Kind == KindDouble) {
		return true
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindItem:
		if len(a.Fields) != len(b.Fields) {
			return false
		}
		for i := range a.Fields {
			if a.Fields[i].Name != b.Fields[i].Name || !Compatible(a.Fields[i].Type, b.Fields[i].Type) {
				return false
			}
		}
		return true
	case KindBag, KindSet:
		if a.Elem == nil || b.Elem == nil {
			return true
		}
		return Compatible(*a.Elem, *b.Elem)
	default:
		return true
	}
}

// CheckHomogeneous verifies the data-model restriction that all elements of
// every (transitively) contained collection have compatible types.
func CheckHomogeneous(v Value) error {
	switch v.kind {
	case KindItem:
		for _, f := range v.fields {
			if err := CheckHomogeneous(f.Value); err != nil {
				return fmt.Errorf("attribute %s: %w", f.Name, err)
			}
		}
	case KindBag, KindSet:
		if len(v.elems) == 0 {
			return nil
		}
		first := TypeOf(v.elems[0])
		for i, e := range v.elems {
			if !Compatible(first, TypeOf(e)) {
				return fmt.Errorf("nested: heterogeneous collection: element %d has type %s, want %s",
					i, TypeOf(e), first)
			}
			if err := CheckHomogeneous(e); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
	}
	return nil
}

// String renders the type in the paper's notation: scalars by name, items as
// ⟨a:T, ...⟩ written as <a:T, ...>, bags as {{T}} and sets as {T}.
func (t Type) String() string {
	var sb strings.Builder
	t.writeString(&sb)
	return sb.String()
}

func (t Type) writeString(sb *strings.Builder) {
	switch t.Kind {
	case KindItem:
		sb.WriteByte('<')
		for i, f := range t.Fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.Name)
			sb.WriteByte(':')
			f.Type.writeString(sb)
		}
		sb.WriteByte('>')
	case KindBag:
		sb.WriteString("{{")
		if t.Elem != nil {
			t.Elem.writeString(sb)
		} else {
			sb.WriteByte('?')
		}
		sb.WriteString("}}")
	case KindSet:
		sb.WriteByte('{')
		if t.Elem != nil {
			t.Elem.writeString(sb)
		} else {
			sb.WriteByte('?')
		}
		sb.WriteByte('}')
	default:
		sb.WriteString(t.Kind.String())
	}
}
