package shell

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"pebble/pkg/sdk"
)

// Remote is the shell's daemon-backed mode: the same question-answer loop as
// Shell, but every tree-pattern question becomes an asynchronous trace job
// submitted to a pebbled daemon through the SDK, run against the persisted
// provenance of a completed pipeline job. The daemon reloads that artifact
// lazily (sidecar indexes included), so an interactive explorer can attach
// to any capture the service ever ran — long after the capturing process
// exited — and the reports are byte-identical to local execution.
type Remote struct {
	c       *sdk.Client
	session string
	job     string
	out     io.Writer

	// Timeout bounds each remote round trip (submit + wait + fetch).
	Timeout time.Duration
}

// NewRemote returns a shell over the completed pipeline job `job` in
// `session` on the daemon behind c, writing to out.
func NewRemote(c *sdk.Client, session, job string, out io.Writer) *Remote {
	return &Remote{c: c, session: session, job: job, out: out, Timeout: 2 * time.Minute}
}

// Run reads commands from in until EOF or "quit", mirroring Shell.Run.
func (r *Remote) Run(in io.Reader) error {
	fmt.Fprintf(r.out, "pebble provenance shell (remote) — session %q, job %s\n", r.session, r.job)
	fmt.Fprintln(r.out, `enter a tree-pattern (e.g. //id_str == "hotuser"), or a command: help, jobs, use <job-id>, events, stats, json <pattern>, quit`)
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(r.out, "> ")
		if !scanner.Scan() {
			fmt.Fprintln(r.out)
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := r.dispatch(line); err != nil {
			fmt.Fprintf(r.out, "error: %v\n", err)
		}
	}
}

// Exec runs a single shell line; it backs Run and is handy for scripting
// and tests.
func (r *Remote) Exec(line string) error { return r.dispatch(strings.TrimSpace(line)) }

func (r *Remote) dispatch(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	switch fields[0] {
	case "help":
		r.help()
		return nil
	case "jobs":
		return r.printJobs()
	case "use":
		if len(fields) != 2 {
			return fmt.Errorf("usage: use <job-id>")
		}
		return r.use(fields[1])
	case "events":
		return r.printEvents()
	case "stats", ":stats":
		return r.printStats()
	case "json":
		rest := strings.TrimSpace(strings.TrimPrefix(line, "json"))
		if rest == "" {
			return fmt.Errorf("usage: json <tree-pattern>")
		}
		out, err := r.trace(rest)
		if err != nil {
			return err
		}
		fmt.Fprintln(r.out, string(out.Result))
		return nil
	default:
		out, err := r.trace(line)
		if err != nil {
			return err
		}
		fmt.Fprint(r.out, out.Report)
		return nil
	}
}

func (r *Remote) help() {
	fmt.Fprintln(r.out, `commands (remote mode):
  help                     this help
  jobs                     list this session's jobs on the daemon
  use <job-id>             switch questions to another completed pipeline job
  events                   replay the target job's progress event stream
  json <pattern>           answer a pattern question as JSON
  stats                    daemon gauges and this session's aggregates
  quit                     leave the shell
anything else is parsed as a tree-pattern provenance question and submitted
to the daemon as a trace job against the target pipeline job, e.g.
  //id_str == "hotuser", tweets(text)`)
}

// trace submits one textual pattern question as a trace job and waits for
// its result.
func (r *Remote) trace(patternText string) (sdk.TraceOutput, error) {
	ctx, cancel := r.ctx()
	defer cancel()
	j, err := r.c.SubmitJob(ctx, r.session, sdk.SubmitJobRequest{
		Kind: sdk.KindTrace, TargetJob: r.job, PatternText: patternText,
	})
	if err != nil {
		return sdk.TraceOutput{}, err
	}
	info, err := r.c.WaitJob(ctx, r.session, j.ID)
	if err != nil {
		return sdk.TraceOutput{}, err
	}
	if info.Status != sdk.StatusDone {
		return sdk.TraceOutput{}, fmt.Errorf("trace job %s: %s (%s)", j.ID, info.Status, info.Error)
	}
	return r.c.TraceResult(ctx, r.session, j.ID)
}

func (r *Remote) use(id string) error {
	ctx, cancel := r.ctx()
	defer cancel()
	info, err := r.c.GetJob(ctx, r.session, id)
	if err != nil {
		return err
	}
	if info.Kind != sdk.KindPipeline || info.Status != sdk.StatusDone {
		return fmt.Errorf("job %s is %s/%s; questions need a completed pipeline job", id, info.Kind, info.Status)
	}
	r.job = id
	fmt.Fprintf(r.out, "tracing against job %s (%d result rows, %d provenance bytes)\n",
		id, info.ResultRows, info.ProvBytes)
	return nil
}

func (r *Remote) printJobs() error {
	ctx, cancel := r.ctx()
	defer cancel()
	jobs, err := r.c.ListJobs(ctx, r.session)
	if err != nil {
		return err
	}
	for _, j := range jobs {
		mark := " "
		if j.ID == r.job {
			mark = "*"
		}
		extra := ""
		switch {
		case j.Error != "":
			extra = " — " + j.Error
		case j.Kind == sdk.KindPipeline && j.Status == sdk.StatusDone:
			extra = fmt.Sprintf(" — %d rows, %d prov bytes", j.ResultRows, j.ProvBytes)
		case j.Kind == sdk.KindTrace && j.Status == sdk.StatusDone:
			extra = fmt.Sprintf(" — %d matched", j.Matched)
		}
		fmt.Fprintf(r.out, "%s %-4s %-8s %-9s%s\n", mark, j.ID, j.Kind, j.Status, extra)
	}
	return nil
}

// printEvents replays the target job's progress stream; on a finished job
// the daemon drains the recorded events and closes.
func (r *Remote) printEvents() error {
	ctx, cancel := r.ctx()
	defer cancel()
	return r.c.StreamEvents(ctx, r.session, r.job, func(e sdk.JobEvent) error {
		switch e.Kind {
		case "status":
			fmt.Fprintf(r.out, "%3d status     %s\n", e.Seq, e.Status)
		case "phase_end":
			fmt.Fprintf(r.out, "%3d phase      %-16s %.2fms\n", e.Seq, e.Span, e.ElapsedMS)
		case "phase_start":
			// The matching phase_end carries the duration; skip the opener.
		case "op":
			fmt.Fprintf(r.out, "%3d op         P%-3d %s\n", e.Seq, e.OID, e.OpType)
		default:
			fmt.Fprintf(r.out, "%3d %-10s %s\n", e.Seq, e.Kind, e.Message)
		}
		return nil
	})
}

func (r *Remote) printStats() error {
	ctx, cancel := r.ctx()
	defer cancel()
	st, err := r.c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.out, "daemon: up %.1fs, queued %d, running %d (queue depth %d, session cap %d)\n",
		st.UptimeSeconds, st.Queued, st.Running, st.QueueDepth, st.SessionCap)
	for _, s := range st.Sessions {
		if s.Name != r.session {
			continue
		}
		var statuses []string
		for k := range s.Jobs {
			statuses = append(statuses, k)
		}
		sort.Strings(statuses)
		parts := make([]string, 0, len(statuses))
		for _, k := range statuses {
			parts = append(parts, fmt.Sprintf("%s %d", k, s.Jobs[k]))
		}
		fmt.Fprintf(r.out, "session %q: %d dataset(s); jobs: %s\n", s.Name, s.Datasets, strings.Join(parts, ", "))
		var names []string
		for k := range s.Counters {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Fprintf(r.out, "  %-12s %d\n", k, s.Counters[k])
		}
	}
	return nil
}

func (r *Remote) ctx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), r.Timeout)
}
