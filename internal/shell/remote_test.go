package shell_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pebble/internal/core"
	"pebble/internal/server"
	"pebble/internal/shell"
	"pebble/internal/treepattern"
	"pebble/internal/workload"
	"pebble/pkg/sdk"
)

// newRemoteShell boots a daemon, runs scenario T3 through it as a pipeline
// job, and returns a remote shell attached to that job.
func newRemoteShell(t *testing.T) (*shell.Remote, *bytes.Buffer, *sdk.Client) {
	t.Helper()
	srv, err := server.New(server.Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { srv.Close(); ts.Close() })
	c := sdk.New(ts.URL)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := c.CreateSession(ctx, sdk.SessionSpec{Name: "sh"}); err != nil {
		t.Fatal(err)
	}
	j, err := c.SubmitJob(ctx, "sh", sdk.SubmitJobRequest{Kind: sdk.KindPipeline, Scenario: "T3", SimGB: 1})
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.WaitJob(ctx, "sh", j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != sdk.StatusDone {
		t.Fatalf("pipeline job: %s (%s)", info.Status, info.Error)
	}
	var out bytes.Buffer
	return shell.NewRemote(c, "sh", j.ID, &out), &out, c
}

// TestRemoteShellQuery pins the remote shell's core promise: a textual
// pattern question answered through the daemon prints the same report a
// local library execution produces.
func TestRemoteShellQuery(t *testing.T) {
	r, out, _ := newRemoteShell(t)

	sc, err := workload.ByName("T3")
	if err != nil {
		t.Fatal(err)
	}
	lib := core.NewSession()
	cap, err := lib.Capture(sc.Build(), sc.Input(workload.DefaultScale(1), lib.ResolvePartitions(0)))
	if err != nil {
		t.Fatal(err)
	}
	question := `//id_str == "hotuser", tweets(text)`
	pat, err := treepattern.Parse(question)
	if err != nil {
		t.Fatal(err)
	}
	q, err := cap.Query(pat)
	if err != nil {
		t.Fatal(err)
	}

	if err := r.Exec(question); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != q.Report() {
		t.Errorf("remote report differs from library:\n-- remote --\n%s\n-- library --\n%s", got, q.Report())
	}
}

// TestRemoteShellCommands smoke-tests the command surface: jobs, use,
// events, stats, json.
func TestRemoteShellCommands(t *testing.T) {
	r, out, _ := newRemoteShell(t)

	if err := r.Exec("jobs"); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "pipeline") || !strings.Contains(got, "done") {
		t.Errorf("jobs output missing pipeline/done:\n%s", got)
	}
	if !strings.Contains(out.String(), "* j1") {
		t.Errorf("jobs output does not mark the target job:\n%s", out.String())
	}

	out.Reset()
	if err := r.Exec("use j1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "tracing against job j1") {
		t.Errorf("use output: %s", out.String())
	}
	if err := r.Exec("use nope"); err == nil {
		t.Error("use with unknown job id succeeded")
	}

	out.Reset()
	if err := r.Exec("events"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"status     queued", "status     done", "phase      schedule"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("events output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := r.Exec(`json //id_str == "hotuser", tweets(text)`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"matched"`) {
		t.Errorf("json output not JSON-shaped:\n%s", out.String())
	}

	out.Reset()
	if err := r.Exec("stats"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"daemon: up", `session "sh"`, "rows_in"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, out.String())
		}
	}
}
