package shell_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"pebble/internal/core"
	"pebble/internal/shell"
	"pebble/internal/workload"
)

func newShell(t *testing.T) (*shell.Shell, *bytes.Buffer, *core.Captured) {
	t.Helper()
	session := core.Session{Partitions: 2}
	cap, err := session.Capture(workload.ExamplePipeline(), workload.ExampleInput(2))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	return shell.New(cap, &out), &out, cap
}

func TestShellPatternQuery(t *testing.T) {
	sh, out, _ := newShell(t)
	if err := sh.Exec(`//id_str == "lp", tweets(text == "Hello World" #[2,2])`); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"matched 1 result item", "Hello World", "retweet_cnt (influencing)", "cells contributing from source 1"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestShellCommands(t *testing.T) {
	sh, out, cap := newShell(t)
	for _, cmd := range []string{"help", "plan", "result 2", "provenance"} {
		out.Reset()
		if err := sh.Exec(cmd); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s produced no output", cmd)
		}
	}
	out.Reset()
	if err := sh.Exec("plan"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "9:aggregate") {
		t.Errorf("plan output wrong:\n%s", out)
	}
	// result truncation
	out.Reset()
	if err := sh.Exec("result 1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "more rows") {
		t.Errorf("result truncation missing:\n%s", out)
	}
	// impact
	srcRow := cap.Result.Sources[1].Rows()[1] // a Hello World tweet or similar
	out.Reset()
	if err := sh.Exec(strings.Join([]string{"impact", "1", strconv.FormatInt(srcRow.ID, 10)}, " ")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "affects") {
		t.Errorf("impact output wrong:\n%s", out)
	}
}

func TestShellErrors(t *testing.T) {
	sh, _, _ := newShell(t)
	if err := sh.Exec("== broken pattern"); err == nil {
		t.Error("bad pattern accepted")
	}
	if err := sh.Exec("impact nope"); err == nil {
		t.Error("bad impact args accepted")
	}
	if err := sh.Exec("impact a b"); err == nil {
		t.Error("non-numeric impact args accepted")
	}
	if err := sh.Exec("result -3"); err == nil {
		t.Error("negative result count accepted")
	}
}

func TestShellRunLoop(t *testing.T) {
	sh, out, _ := newShell(t)
	in := strings.NewReader("help\nresult 1\n//id_str == \"lp\"\nquit\nresult 1\n")
	if err := sh.Run(in); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "commands:") || !strings.Contains(got, "matched") {
		t.Errorf("run loop output wrong:\n%s", got)
	}
	// The line after quit must not execute.
	if strings.Count(got, "more rows") != 1 {
		t.Errorf("commands after quit executed:\n%s", got)
	}
}

func TestShellSchema(t *testing.T) {
	sh, out, _ := newShell(t)
	if err := sh.Exec("schema"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "tweets:{{<text:string>}}") {
		t.Errorf("schema output missing aggregate type:\n%s", got)
	}
}

func TestShellJSON(t *testing.T) {
	sh, out, _ := newShell(t)
	if err := sh.Exec(`json //id_str == "lp", tweets(text == "Hello World" #[2,2])`); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{`"matched": 1`, `"contributing": true`, `"tweets.json"`} {
		if !strings.Contains(got, want) {
			t.Errorf("json output missing %q:\n%s", want, got)
		}
	}
	if err := sh.Exec("json"); err == nil {
		t.Error("bare json accepted")
	}
}
