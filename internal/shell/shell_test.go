package shell_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"pebble/internal/core"
	"pebble/internal/shell"
	"pebble/internal/workload"
)

func newShell(t *testing.T) (*shell.Shell, *bytes.Buffer, *core.Captured) {
	t.Helper()
	session := core.Session{Partitions: 2}
	cap, err := session.Capture(workload.ExamplePipeline(), workload.ExampleInput(2))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	return shell.New(cap, &out), &out, cap
}

func TestShellPatternQuery(t *testing.T) {
	sh, out, _ := newShell(t)
	if err := sh.Exec(`//id_str == "lp", tweets(text == "Hello World" #[2,2])`); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"matched 1 result item", "Hello World", "retweet_cnt (influencing)", "cells contributing from source 1"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestShellCommands(t *testing.T) {
	sh, out, cap := newShell(t)
	for _, cmd := range []string{"help", "plan", "result 2", "provenance"} {
		out.Reset()
		if err := sh.Exec(cmd); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s produced no output", cmd)
		}
	}
	out.Reset()
	if err := sh.Exec("plan"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "9:aggregate") {
		t.Errorf("plan output wrong:\n%s", out)
	}
	// result truncation
	out.Reset()
	if err := sh.Exec("result 1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "more rows") {
		t.Errorf("result truncation missing:\n%s", out)
	}
	// impact
	srcRow := cap.Result.Sources[1].Rows()[1] // a Hello World tweet or similar
	out.Reset()
	if err := sh.Exec(strings.Join([]string{"impact", "1", strconv.FormatInt(srcRow.ID, 10)}, " ")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "affects") {
		t.Errorf("impact output wrong:\n%s", out)
	}
}

func TestShellErrors(t *testing.T) {
	sh, _, _ := newShell(t)
	if err := sh.Exec("== broken pattern"); err == nil {
		t.Error("bad pattern accepted")
	}
	if err := sh.Exec("impact nope"); err == nil {
		t.Error("bad impact args accepted")
	}
	if err := sh.Exec("impact a b"); err == nil {
		t.Error("non-numeric impact args accepted")
	}
	if err := sh.Exec("result -3"); err == nil {
		t.Error("negative result count accepted")
	}
}

func TestShellRunLoop(t *testing.T) {
	sh, out, _ := newShell(t)
	in := strings.NewReader("help\nresult 1\n//id_str == \"lp\"\nquit\nresult 1\n")
	if err := sh.Run(in); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "commands:") || !strings.Contains(got, "matched") {
		t.Errorf("run loop output wrong:\n%s", got)
	}
	// The line after quit must not execute.
	if strings.Count(got, "more rows") != 1 {
		t.Errorf("commands after quit executed:\n%s", got)
	}
}

func TestShellSaveLoad(t *testing.T) {
	sh, out, _ := newShell(t)
	path := filepath.Join(t.TempDir(), "run.pbl")

	if err := sh.Exec("save " + path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "saved provenance") {
		t.Errorf("save output wrong:\n%s", out)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("run stream not written: %v", err)
	}
	if _, err := os.Stat(path + ".idx"); err != nil {
		t.Fatalf("index sidecar not written: %v", err)
	}

	// A fresh shell answers the pattern query from the persisted run+sidecar
	// exactly like the capturing shell did.
	want := func(s *shell.Shell, buf *bytes.Buffer) string {
		buf.Reset()
		if err := s.Exec(`//id_str == "lp", tweets(text == "Hello World" #[2,2])`); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}(sh, out)

	sh2, out2, _ := newShell(t)
	if err := sh2.Exec("load " + path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.String(), "index sidecar installed") {
		t.Errorf("load did not install the sidecar:\n%s", out2)
	}
	got := func(s *shell.Shell, buf *bytes.Buffer) string {
		buf.Reset()
		if err := s.Exec(`//id_str == "lp", tweets(text == "Hello World" #[2,2])`); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}(sh2, out2)
	if got != want {
		t.Errorf("loaded shell answers differ:\n%s\nwant\n%s", got, want)
	}

	// A corrupt sidecar is rejected with a warning, and the query still works.
	idx, err := os.ReadFile(path + ".idx")
	if err != nil {
		t.Fatal(err)
	}
	idx[len(idx)-1] ^= 0x40
	if err := os.WriteFile(path+".idx", idx, 0o644); err != nil {
		t.Fatal(err)
	}
	sh3, out3, _ := newShell(t)
	if err := sh3.Exec("load " + path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out3.String(), "index sidecar rejected") {
		t.Errorf("corrupt sidecar not reported:\n%s", out3)
	}
	if got := func(s *shell.Shell, buf *bytes.Buffer) string {
		buf.Reset()
		if err := s.Exec(`//id_str == "lp", tweets(text == "Hello World" #[2,2])`); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}(sh3, out3); got != want {
		t.Errorf("rebuild-after-rejection answers differ:\n%s\nwant\n%s", got, want)
	}

	// Error paths: missing args and unreadable files.
	if err := sh3.Exec("save"); err == nil {
		t.Error("bare save accepted")
	}
	if err := sh3.Exec("load"); err == nil {
		t.Error("bare load accepted")
	}
	if err := sh3.Exec("load " + filepath.Join(t.TempDir(), "missing.pbl")); err == nil {
		t.Error("load of a missing file accepted")
	}
}

func TestShellSchema(t *testing.T) {
	sh, out, _ := newShell(t)
	if err := sh.Exec("schema"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "tweets:{{<text:string>}}") {
		t.Errorf("schema output missing aggregate type:\n%s", got)
	}
}

func TestShellJSON(t *testing.T) {
	sh, out, _ := newShell(t)
	if err := sh.Exec(`json //id_str == "lp", tweets(text == "Hello World" #[2,2])`); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{`"matched": 1`, `"contributing": true`, `"tweets.json"`} {
		if !strings.Contains(got, want) {
			t.Errorf("json output missing %q:\n%s", want, got)
		}
	}
	if err := sh.Exec("json"); err == nil {
		t.Error("bare json accepted")
	}
}
