// Package shell implements an interactive provenance explorer — the
// user-friendly front-end the paper lists as future work. A session wraps a
// captured pipeline run; the REPL accepts textual tree-pattern questions
// (treepattern.Parse syntax) and a handful of commands to inspect the plan,
// the result, the captured provenance, and forward impact.
package shell

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"pebble/internal/backtrace"
	"pebble/internal/core"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/provenance"
	"pebble/internal/treepattern"
)

// Shell drives one interactive session over a captured run.
type Shell struct {
	cap *core.Captured
	out io.Writer
}

// New returns a shell over the captured run, writing to out.
func New(cap *core.Captured, out io.Writer) *Shell {
	return &Shell{cap: cap, out: out}
}

// Run reads commands from in until EOF or "quit". Every non-command line is
// parsed as a tree-pattern question and answered with a provenance report.
func (s *Shell) Run(in io.Reader) error {
	fmt.Fprintln(s.out, `pebble provenance shell — enter a tree-pattern (e.g. //id_str == "lp"),`)
	fmt.Fprintln(s.out, `or a command: help, plan, schema, result [n], provenance, stats, save <path>, load <path>, impact <source-oid> <id>, quit`)
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(s.out, "> ")
		if !scanner.Scan() {
			fmt.Fprintln(s.out)
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := s.dispatch(line); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
		}
	}
}

// Exec runs a single shell line and returns its output; it backs Run and is
// handy for scripting and tests.
func (s *Shell) Exec(line string) error { return s.dispatch(strings.TrimSpace(line)) }

func (s *Shell) dispatch(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	switch fields[0] {
	case "help":
		s.help()
		return nil
	case "plan":
		fmt.Fprintln(s.out, s.cap.Pipeline.String())
		return nil
	case "result":
		n := 10
		if len(fields) > 1 {
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 1 {
				return fmt.Errorf("result wants a positive row count, got %q", fields[1])
			}
			n = v
		}
		s.printResult(n)
		return nil
	case "provenance":
		s.printProvenance()
		return nil
	case "stats", ":stats":
		fmt.Fprint(s.out, s.cap.Stats().Render(true))
		return nil
	case "schema":
		return s.printSchemas()
	case "json":
		rest := strings.TrimSpace(strings.TrimPrefix(line, "json"))
		if rest == "" {
			return fmt.Errorf("usage: json <tree-pattern>")
		}
		pattern, err := treepattern.Parse(rest)
		if err != nil {
			return err
		}
		q, err := s.cap.Query(pattern)
		if err != nil {
			return err
		}
		data, err := q.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, string(data))
		return nil
	case "save":
		if len(fields) != 2 {
			return fmt.Errorf("usage: save <path>")
		}
		return s.save(fields[1])
	case "load":
		if len(fields) != 2 {
			return fmt.Errorf("usage: load <path>")
		}
		return s.load(fields[1])
	case "impact":
		if len(fields) != 3 {
			return fmt.Errorf("usage: impact <source-oid> <input-id>")
		}
		oid, err1 := strconv.Atoi(fields[1])
		id, err2 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("impact wants numeric arguments")
		}
		return s.impact(oid, id)
	default:
		return s.query(line)
	}
}

func (s *Shell) help() {
	fmt.Fprintln(s.out, `commands:
  help                     this help
  plan                     print the pipeline plan
  schema                   print per-operator output schemas
  json <pattern>           answer a pattern question as JSON
  result [n]               print the first n result rows (default 10)
  provenance               per-operator association counts and sizes
  stats                    per-operator execution metrics and query timings
                           (incl. run_load / index_build / pattern_compile phases)
  save <path>              persist the captured provenance + index sidecar
  load <path>              reload provenance via the fast path (lazy decode +
                           sidecar indexes; rebuilds on a stale/corrupt sidecar)
  impact <src-oid> <id>    forward-trace one input item to the results
  quit                     leave the shell
anything else is parsed as a tree-pattern provenance question, e.g.
  //id_str == "lp", tweets(text == "Hello World" #[2,2])`)
}

func (s *Shell) printResult(n int) {
	rows := s.cap.Result.Output.Rows()
	for i, r := range rows {
		if i >= n {
			fmt.Fprintf(s.out, "... (%d more rows)\n", len(rows)-n)
			return
		}
		fmt.Fprintf(s.out, "[id %d] %s\n", r.ID, r.Value)
	}
}

func (s *Shell) printProvenance() {
	sizes := s.cap.Provenance.Sizes()
	fmt.Fprintf(s.out, "captured provenance: lineage %dB + structural extra %dB\n",
		sizes.LineageBytes, sizes.StructuralExtra)
	for _, op := range s.cap.Provenance.Operators() {
		fmt.Fprintf(s.out, "  P%-3d %-10s assocs=%d\n", op.OID, op.Type, op.AssocCount())
	}
}

// save persists the captured provenance to path and writes the matching
// index sidecar to path+".idx", so a later `load` (or any reader) gets the
// fast path: lazy decode plus prebuilt trace indexes.
func (s *Shell) save(path string) error {
	var buf bytes.Buffer
	if _, err := s.cap.Provenance.WriteTo(&buf); err != nil {
		return err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return err
	}
	// The sidecar is keyed by the stream's content hash, so build it from a
	// lazy reload of the exact bytes just written.
	run, err := provenance.ReadRunLazy(buf.Bytes())
	if err != nil {
		return err
	}
	var idx bytes.Buffer
	if _, err := backtrace.NewTracer(run).WriteIndexes(&idx); err != nil {
		return err
	}
	if err := os.WriteFile(path+".idx", idx.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "saved provenance (%d B) to %s and index sidecar (%d B) to %s.idx\n",
		buf.Len(), path, idx.Len(), path)
	return nil
}

// load reloads persisted provenance through the fast path — lazy column
// decode plus sidecar indexes when a valid path+".idx" is present — and
// attaches it to the session, so later queries run against the reloaded run.
func (s *Shell) load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rec := s.cap.Recorder()
	run, err := provenance.ReadRunLazyObserved(data, rec)
	if err != nil {
		return err
	}
	tr := backtrace.NewTracer(run).Observe(rec)
	if sidecar, err := os.ReadFile(path + ".idx"); err == nil {
		if lerr := tr.LoadIndexes(sidecar); lerr != nil {
			fmt.Fprintf(s.out, "index sidecar rejected (%v); indexes will rebuild lazily\n", lerr)
		} else {
			fmt.Fprintf(s.out, "index sidecar installed (%d B)\n", len(sidecar))
		}
	}
	s.cap.AttachProvenance(run, tr)
	fmt.Fprintf(s.out, "loaded provenance from %s: %d operator(s), %d association bytes deferred\n",
		path, len(run.Operators()), run.AssocBytesTotal())
	return nil
}

func (s *Shell) impact(oid int, id int64) error {
	fwd, err := backtrace.TraceForward(s.cap.Provenance, oid, []int64{id})
	if err != nil {
		return err
	}
	affected := fwd.AffectedIDs(s.cap.Pipeline.Sink().ID())
	if len(affected) == 0 {
		fmt.Fprintf(s.out, "input %d/%d affects no result items\n", oid, id)
		return nil
	}
	fmt.Fprintf(s.out, "input %d/%d affects %d result item(s):\n", oid, id, len(affected))
	for _, rid := range affected {
		if row, ok := s.cap.Result.Output.FindByID(rid); ok {
			fmt.Fprintf(s.out, "  [id %d] %s\n", rid, row.Value)
		}
	}
	return nil
}

func (s *Shell) query(line string) error {
	pattern, err := treepattern.Parse(line)
	if err != nil {
		return err
	}
	q, err := s.cap.Query(pattern)
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, q.Report())
	if q.Matched.Len() > 0 && len(q.Items()) == 0 {
		fmt.Fprintln(s.out, "(hint: a question addressing only grouping attributes traces to no inputs,")
		fmt.Fprintln(s.out, " per the paper's Alg. 4 — include a nested or aggregated value in the pattern)")
	}
	// Summarise the where-provenance cells per source for quick scanning.
	var oids []int
	for oid := range q.Traced.BySource {
		oids = append(oids, oid)
	}
	sort.Ints(oids)
	for _, oid := range oids {
		cells := q.Traced.BySource[oid].ContributingPaths()
		uniq := map[string]bool{}
		for _, ps := range cells {
			for _, p := range ps {
				uniq[p] = true
			}
		}
		if len(uniq) == 0 {
			continue
		}
		var list []string
		for p := range uniq {
			list = append(list, p)
		}
		sort.Strings(list)
		fmt.Fprintf(s.out, "cells contributing from source %d: %s\n", oid, strings.Join(list, ", "))
	}
	return nil
}

// printSchemas analyzes the captured pipeline against its source schemas and
// prints per-operator output types.
func (s *Shell) printSchemas() error {
	inputTypes := map[string]nested.Type{}
	for _, op := range s.cap.Pipeline.Ops() {
		if op.Type() != engine.OpSource {
			continue
		}
		src, ok := s.cap.Result.Sources[op.ID()]
		if !ok {
			continue
		}
		inputTypes[src.Name] = mergeSourceType(src)
	}
	schemas, err := engine.Analyze(s.cap.Pipeline, inputTypes)
	if err != nil {
		return err
	}
	for _, op := range s.cap.Pipeline.Ops() {
		if t, ok := schemas[op.ID()]; ok {
			fmt.Fprintf(s.out, "  %-3d %s\n", op.ID(), t)
		} else {
			fmt.Fprintf(s.out, "  %-3d (unknown: below a map)\n", op.ID())
		}
	}
	return nil
}

// mergeSourceType infers the source's item type from its rows.
func mergeSourceType(d *engine.Dataset) nested.Type {
	types := engine.InferInputTypes(map[string]*engine.Dataset{"x": d})
	return types["x"]
}
