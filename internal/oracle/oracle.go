// Package oracle differentially tests the provenance stack: every corpus
// pipeline is executed under all four capture modes — none, eager structural
// provenance, Titian-style lineage, and PROVision-style lazy recomputation —
// across several worker counts, and the runs are cross-checked for result
// equality, backtrace agreement (modulo each model's documented granularity),
// and forward/backward tracing consistency. The independent recomputation
// paths act as each other's ground truth, in the spirit of how ProvSQL
// validates provenance engines; after the logical/physical split of PR 1,
// agreement across schedules is the strongest correctness signal available.
//
// On disagreement, Shrink reduces the failing spec to a minimal reproducer
// (greedy operator-dropping, then ddmin-style row-dropping) and WriteRepro
// renders it as a seed file plus a runnable Go snippet.
package oracle

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"pebble/internal/backtrace"
	"pebble/internal/core"
	"pebble/internal/corpus"
	"pebble/internal/engine"
	"pebble/internal/lazy"
	"pebble/internal/lineage"
	"pebble/internal/provenance"
	"pebble/internal/treepattern"
)

// Disagreement kinds, ordered by the sequence in which CheckSpec tests them.
// Shrinking preserves the kind so a reduction never wanders onto a different
// bug.
const (
	KindBuild       = "build-error"
	KindRun         = "run-error"
	KindResult      = "result-mismatch"
	KindProvBytes   = "provenance-bytes-differ"
	KindLineageDet  = "lineage-nondeterministic"
	KindLazyDet     = "lazy-nondeterministic"
	KindEagerExtra  = "eager-exceeds-lineage"
	KindEagerMissed = "eager-misses-lineage"
	KindLazyVsEager = "lazy-vs-eager-pattern"
	KindPatternSub  = "pattern-not-subset-of-full"
	KindForward     = "forward-backward-inconsistent"
	KindLoadPath    = "load-path-divergence"
	KindExecPath    = "exec-path-divergence"
)

// Config tunes a differential check.
type Config struct {
	// Partitions is the logical parallelism; it must stay fixed across the
	// compared runs (it determines ids). Default 4.
	Partitions int
	// Workers lists the physical worker counts to cross-check. Default
	// {1, 2, NumCPU}.
	Workers []int
	// WrapSink, when set, wraps the eager provenance collector before the
	// capture run — the fault-injection hook the oracle's own tests use to
	// prove disagreements are caught and shrunk.
	WrapSink func(engine.CaptureSink) engine.CaptureSink
}

func (c Config) withDefaults() Config {
	if c.Partitions == 0 {
		c.Partitions = 4
	}
	if len(c.Workers) == 0 {
		c.Workers = DefaultWorkers()
	}
	return c
}

// DefaultWorkers returns the worker counts the oracle cross-checks by
// default: 1, 2, and NumCPU.
func DefaultWorkers() []int {
	return []int{1, 2, runtime.NumCPU()}
}

// Disagreement describes one oracle failure: which check tripped and a
// human-readable detail. It implements error.
type Disagreement struct {
	Kind    string
	Detail  string
	Workers int // worker count of the failing run (0 when cross-mode)
	Seed    int64
}

func (d *Disagreement) Error() string {
	return fmt.Sprintf("oracle: seed %d: %s (workers=%d): %s", d.Seed, d.Kind, d.Workers, d.Detail)
}

// artifacts holds everything one worker count produced that must agree with
// the other worker counts and capture modes.
type artifacts struct {
	rows      []string // sink rows as "id:value", in output order
	provBytes []byte
	res       *engine.Result
	run       *provenance.Run
	lineageBy map[int][]int64 // source OID -> run-space contributing ids
	lineageFP string
	lazyRes   *lazy.Result
	lazyFP    string
}

// CheckSpec runs the full differential check for one corpus spec and returns
// the first disagreement found, or nil when every mode and schedule agrees.
func CheckSpec(s *corpus.Spec, cfg Config) *Disagreement {
	cfg = cfg.withDefaults()
	fail := func(kind, detail string, workers int) *Disagreement {
		return &Disagreement{Kind: kind, Detail: detail, Workers: workers, Seed: s.Seed}
	}
	pipe, err := s.Build()
	if err != nil {
		return fail(KindBuild, err.Error(), 0)
	}
	inputs := s.Inputs(cfg.Partitions)
	pattern := s.BuildPattern()

	var base *artifacts
	for _, w := range cfg.Workers {
		a, d := runModes(s, pipe, inputs, pattern, cfg, w, false)
		if d != nil {
			return d
		}
		// Executor twin (PR 7): the legacy row-at-a-time path must produce
		// byte-identical artifacts under every capture mode — results, the
		// serialized provenance stream, and both trace fingerprints.
		rowA, d := runModes(s, pipe, inputs, pattern, cfg, w, true)
		if d != nil {
			return d
		}
		if d := compareExecPaths(a, rowA, s.Seed, w); d != nil {
			return d
		}
		if base == nil {
			base = a
			continue
		}
		// Cross-schedule agreement: the worker count must change nothing.
		if diff := firstDiff(base.rows, a.rows); diff != "" {
			return fail(KindResult, fmt.Sprintf("vs workers=%d: %s", cfg.Workers[0], diff), w)
		}
		if !bytes.Equal(base.provBytes, a.provBytes) {
			return fail(KindProvBytes, fmt.Sprintf("serialized run differs from workers=%d (%d vs %d bytes)",
				cfg.Workers[0], len(a.provBytes), len(base.provBytes)), w)
		}
		if base.lineageFP != a.lineageFP {
			return fail(KindLineageDet, fmt.Sprintf("lineage trace differs from workers=%d", cfg.Workers[0]), w)
		}
		if base.lazyFP != a.lazyFP {
			return fail(KindLazyDet, fmt.Sprintf("lazy query differs from workers=%d", cfg.Workers[0]), w)
		}
	}
	return crossMode(s, pipe, pattern, base)
}

// runModes executes the pipeline once per capture mode at one worker count
// and checks that the modes produced identical results.
func runModes(s *corpus.Spec, pipe *engine.Pipeline, inputs map[string]*engine.Dataset,
	pattern *treepattern.Pattern, cfg Config, workers int, rowExec bool) (*artifacts, *Disagreement) {

	fail := func(kind, detail string) (*artifacts, *Disagreement) {
		return nil, &Disagreement{Kind: kind, Detail: detail, Workers: workers, Seed: s.Seed}
	}
	opts := s.ExecOptions(engine.Options{Partitions: cfg.Partitions, Workers: workers, ScalarFallback: rowExec})

	// Mode 1: no capture — the plain run is the result baseline.
	resNone, err := engine.Run(pipe, inputs, opts)
	if err != nil {
		return fail(KindRun, "none: "+err.Error())
	}
	a := &artifacts{rows: rowStrings(resNone.Output)}

	// Mode 2: eager structural provenance. The collector is wired manually
	// (rather than through provenance.Capture) so WrapSink can interpose.
	col := provenance.NewCollector()
	var sink engine.CaptureSink = col
	if cfg.WrapSink != nil {
		sink = cfg.WrapSink(col)
	}
	eagerOpts := opts
	eagerOpts.Sink = sink
	resEager, err := engine.Run(pipe, inputs, eagerOpts)
	if err != nil {
		return fail(KindRun, "eager: "+err.Error())
	}
	a.res = resEager
	a.run = col.Finish()
	if diff := firstDiff(a.rows, rowStrings(resEager.Output)); diff != "" {
		return fail(KindResult, "eager capture changed the result: "+diff)
	}
	var buf bytes.Buffer
	if _, err := a.run.WriteTo(&buf); err != nil {
		return fail(KindRun, "serialize provenance: "+err.Error())
	}
	a.provBytes = buf.Bytes()

	// Mode 3: Titian-style lineage, fingerprinted by a full-result trace.
	resLin, lrun, err := lineage.Capture(pipe, inputs, opts)
	if err != nil {
		return fail(KindRun, "lineage: "+err.Error())
	}
	if diff := firstDiff(a.rows, rowStrings(resLin.Output)); diff != "" {
		return fail(KindResult, "lineage capture changed the result: "+diff)
	}
	outIDs := make([]int64, 0, len(resLin.Output.Rows()))
	for _, row := range resLin.Output.Rows() {
		outIDs = append(outIDs, row.ID)
	}
	a.lineageBy, err = lrun.Trace(pipe.Sink().ID(), outIDs)
	if err != nil {
		return fail(KindRun, "lineage trace: "+err.Error())
	}
	a.lineageFP = fmtIDMap(a.lineageBy)

	// Mode 4: PROVision-style lazy recomputation of the pattern question,
	// fingerprinted in raw-input id space (each rerun assigns fresh ids).
	lres, _, err := lazy.Query(func() *engine.Pipeline {
		p, _ := s.Build() // s already built once; rebuilding cannot fail
		return p
	}, inputs, pattern, opts)
	if err != nil {
		return fail(KindRun, "lazy: "+err.Error())
	}
	a.lazyRes = lres
	a.lazyFP = fmtIDMap(lazyOrigSets(lres))
	return a, nil
}

// crossMode checks trace agreement between the capture modes using the
// first worker count's artifacts.
//
// Agreement semantics (see DESIGN.md):
//   - Eager full-value backtraces must never reach an input row lineage does
//     not contain: lineage is complete row-level provenance, so an eager
//     extra is always a bug (KindEagerExtra).
//   - For full-value backtracing trees the two models coincide row-wise —
//     structural pruning removes attributes *within* trees (join sides keep
//     their rows through the accessed join key), so eager full traces and
//     lineage must be equal as row sets (KindEagerMissed) — provided every
//     aggregate output survives into the sink values. When a downstream
//     projection drops an aggregate output, the query addresses only the
//     grouping key and Alg. 4 marks no group member relevant (Ex. 6.6):
//     structural provenance is then legitimately finer than lineage and
//     only the subset direction is checked
//     (corpus.Spec.AggOutputsReachSink decides which regime applies).
//     Other granularity differences only appear for pattern-shaped trees,
//     which are compared against lazy recomputation instead.
//   - Lazy recomputation answers the same pattern question by rerunning
//     with capture, so its per-source raw-input id sets must equal the
//     eager pattern trace exactly (KindLazyVsEager).
//   - A pattern trace addresses a subset of the full result value, so per
//     source it must be a subset of the full-value trace (KindPatternSub).
//   - Forward tracing the full-trace contributors must cover exactly the
//     result rows with non-empty structural provenance (KindForward).
func crossMode(s *corpus.Spec, pipe *engine.Pipeline, pattern *treepattern.Pattern, a *artifacts) *Disagreement {
	fail := func(kind, detail string) *Disagreement {
		return &Disagreement{Kind: kind, Detail: detail, Seed: s.Seed}
	}
	sinkOID := pipe.Sink().ID()

	// Full-value backtrace of every result row.
	full := backtrace.NewStructure()
	for _, row := range a.res.Output.Rows() {
		full.Add(row.ID, core.TreeFromValue(row.Value))
	}
	tracedFull, err := backtrace.Trace(a.run, sinkOID, full)
	if err != nil {
		return fail(KindRun, "full trace: "+err.Error())
	}
	fullBy := make(map[int][]int64, len(tracedFull.BySource))
	for oid, st := range tracedFull.BySource {
		fullBy[oid] = sortedIDs(st.IDs())
	}

	// Load-path equivalence (PR 6): reloading the serialized run through the
	// eager decoder, the lazy decoder, and the lazy decoder with a persisted
	// index sidecar must answer the full-value backtrace byte-identically to
	// the in-memory capture. The decode and index strategies may differ;
	// answers may not.
	if d := checkLoadPaths(s, a, sinkOID, full, renderResult(tracedFull)); d != nil {
		return d
	}

	// Eager vs lineage, in run-space ids (identical across sinks because id
	// assignment is capture-independent). Equality is only owed when every
	// aggregate output is addressed by the full-value trees; otherwise
	// structural provenance is finer (Alg. 4, Ex. 6.6) and only ⊆ holds.
	strictEager := s.AggOutputsReachSink()
	lineageBy := a.lineageBy
	for _, oid := range unionKeys(fullBy, lineageBy) {
		eagerSet, linSet := toSet(fullBy[oid]), toSet(lineageBy[oid])
		for _, id := range fullBy[oid] {
			if !linSet[id] {
				return fail(KindEagerExtra,
					fmt.Sprintf("source %d: eager traced id %d that lineage did not", oid, id))
			}
		}
		if !strictEager {
			continue
		}
		for _, id := range lineageBy[oid] {
			if !eagerSet[id] {
				return fail(KindEagerMissed,
					fmt.Sprintf("source %d: lineage traced id %d that eager did not", oid, id))
			}
		}
	}

	// Eager pattern trace vs lazy recomputation, in raw-input id space.
	b := pattern.Match(a.res.Output)
	tracedPat, err := backtrace.Trace(a.run, sinkOID, b)
	if err != nil {
		return fail(KindRun, "pattern trace: "+err.Error())
	}
	patBy := make(map[int][]int64, len(tracedPat.BySource))
	patOrig := make(map[int][]int64, len(tracedPat.BySource))
	for _, oid := range sortedOIDs(tracedPat.BySource) {
		st := tracedPat.BySource[oid]
		ids := sortedIDs(st.IDs())
		patBy[oid] = ids
		orig, err := toOrigIDs(a.run, oid, ids)
		if err != nil {
			return fail(KindRun, err.Error())
		}
		patOrig[oid] = orig
	}
	lazyBy := lazyOrigSets(a.lazyRes)
	for _, oid := range unionKeys(patOrig, lazyBy) {
		if df := firstDiff(fmtIDs(patOrig[oid]), fmtIDs(lazyBy[oid])); df != "" {
			return fail(KindLazyVsEager, fmt.Sprintf("source %d: eager pattern trace vs lazy: %s", oid, df))
		}
	}

	// Pattern trace ⊆ full trace, per source.
	for _, oid := range sortedOIDs(patBy) {
		ids := patBy[oid]
		fullSet := toSet(fullBy[oid])
		for _, id := range ids {
			if !fullSet[id] {
				return fail(KindPatternSub,
					fmt.Sprintf("source %d: pattern trace reached id %d outside the full trace", oid, id))
			}
		}
	}

	// Forward/backward consistency: tracing the full-trace contributors
	// forward must reach every result row, except rows whose own structural
	// provenance is empty (then nothing points at them).
	reached := map[int64]bool{}
	for _, oid := range sortedOIDs(fullBy) {
		ids := fullBy[oid]
		if len(ids) == 0 {
			continue
		}
		fwd, err := backtrace.TraceForward(a.run, oid, ids)
		if err != nil {
			return fail(KindRun, fmt.Sprintf("forward trace from source %d: %v", oid, err))
		}
		for _, id := range fwd.AffectedIDs(sinkOID) {
			reached[id] = true
		}
	}
	outIDs := map[int64]bool{}
	for _, row := range a.res.Output.Rows() {
		outIDs[row.ID] = true
	}
	for _, id := range sortedIDSet(reached) {
		if !outIDs[id] {
			return fail(KindForward, fmt.Sprintf("forward trace reached id %d that is not a result row", id))
		}
	}
	for _, row := range a.res.Output.Rows() {
		if reached[row.ID] {
			continue
		}
		one := backtrace.NewStructure()
		one.Add(row.ID, core.TreeFromValue(row.Value))
		tr, err := backtrace.Trace(a.run, sinkOID, one)
		if err != nil {
			return fail(KindRun, "row trace: "+err.Error())
		}
		for _, oid := range sortedOIDs(tr.BySource) {
			st := tr.BySource[oid]
			if st.Len() > 0 {
				return fail(KindForward, fmt.Sprintf(
					"result row %d has provenance in source %d but no forward path reaches it", row.ID, oid))
			}
		}
	}
	return nil
}

// checkLoadPaths reloads the serialized run through every load path — eager
// decode, lazy decode, lazy decode plus a freshly written index sidecar —
// and requires each to render the full-value backtrace exactly as the
// in-memory capture did (want).
func checkLoadPaths(s *corpus.Spec, a *artifacts, sinkOID int, q *backtrace.Structure, want string) *Disagreement {
	fail := func(kind, detail string) *Disagreement {
		return &Disagreement{Kind: kind, Detail: detail, Seed: s.Seed}
	}
	sidecarRun, err := provenance.ReadRunLazy(a.provBytes)
	if err != nil {
		return fail(KindRun, "lazy reload: "+err.Error())
	}
	var sidecar bytes.Buffer
	if _, err := backtrace.NewTracer(sidecarRun).WriteIndexes(&sidecar); err != nil {
		return fail(KindRun, "write sidecar: "+err.Error())
	}
	paths := []struct {
		name string
		load func() (*backtrace.Tracer, error)
	}{
		{"eager", func() (*backtrace.Tracer, error) {
			r, err := provenance.ReadRun(bytes.NewReader(a.provBytes))
			if err != nil {
				return nil, err
			}
			return backtrace.NewTracer(r), nil
		}},
		{"lazy", func() (*backtrace.Tracer, error) {
			r, err := provenance.ReadRunLazy(a.provBytes)
			if err != nil {
				return nil, err
			}
			return backtrace.NewTracer(r), nil
		}},
		{"lazy+sidecar", func() (*backtrace.Tracer, error) {
			r, err := provenance.ReadRunLazy(a.provBytes)
			if err != nil {
				return nil, err
			}
			tr := backtrace.NewTracer(r)
			if err := tr.LoadIndexes(sidecar.Bytes()); err != nil {
				return nil, err
			}
			return tr, nil
		}},
	}
	for _, p := range paths {
		tr, err := p.load()
		if err != nil {
			return fail(KindRun, p.name+" reload: "+err.Error())
		}
		traced, err := tr.Trace(sinkOID, q.Clone())
		if err != nil {
			return fail(KindRun, p.name+" reload trace: "+err.Error())
		}
		if got := renderResult(traced); got != want {
			return fail(KindLoadPath, fmt.Sprintf("%s load path answered differently:\n got %q\nwant %q", p.name, got, want))
		}
	}
	return nil
}

// renderResult renders a backtrace result deterministically for byte-level
// comparison across load paths.
func renderResult(r *backtrace.Result) string {
	var sb strings.Builder
	for _, oid := range sortedOIDs(r.BySource) {
		fmt.Fprintf(&sb, "source %d\n%s", oid, r.BySource[oid].String())
	}
	return sb.String()
}

// lazyOrigSets flattens a lazy result to sorted raw-input id lists per
// source operator.
func lazyOrigSets(r *lazy.Result) map[int][]int64 {
	out := make(map[int][]int64, len(r.BySource))
	for oid, st := range r.BySource {
		ids := st.IDs()
		orig := make([]int64, 0, len(ids))
		for _, id := range ids {
			orig = append(orig, r.OrigIDs[oid][id])
		}
		out[oid] = sortedIDs(orig)
	}
	return out
}

// toOrigIDs translates run-space source ids to raw-input ids using the
// eager run's source associations.
func toOrigIDs(run *provenance.Run, oid int, ids []int64) ([]int64, error) {
	op, ok := run.Op(oid)
	if !ok {
		return nil, fmt.Errorf("no captured operator %d", oid)
	}
	m := make(map[int64]int64, len(op.SourceIDs))
	for _, sa := range op.SourceIDs {
		m[sa.ID] = sa.OrigID
	}
	out := make([]int64, 0, len(ids))
	for _, id := range ids {
		orig, ok := m[id]
		if !ok {
			return nil, fmt.Errorf("source %d: traced id %d has no source association", oid, id)
		}
		out = append(out, orig)
	}
	return sortedIDs(out), nil
}

func rowStrings(d *engine.Dataset) []string {
	rows := d.Rows()
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%d:%s", r.ID, r.Value))
	}
	return out
}

func firstDiff(a, b []string) string {
	if len(a) != len(b) {
		return fmt.Sprintf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("entry %d: %q vs %q", i, a[i], b[i])
		}
	}
	return ""
}

func sortedIDs(ids []int64) []int64 {
	out := append([]int64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Trace results may contain duplicates (merged structures); the oracle
	// compares sets.
	dedup := out[:0]
	for _, id := range out {
		if len(dedup) > 0 && id == dedup[len(dedup)-1] {
			continue
		}
		dedup = append(dedup, id)
	}
	return dedup
}

// sortedOIDs returns the keys of a per-operator map in ascending order, so
// oracle checks visit sources deterministically and a disagreement always
// produces the same first-failure message.
func sortedOIDs[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for oid := range m {
		out = append(out, oid)
	}
	sort.Ints(out)
	return out
}

// sortedIDSet flattens an id set to an ascending slice.
func sortedIDSet(m map[int64]bool) []int64 {
	out := make([]int64, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func toSet(ids []int64) map[int64]bool {
	m := make(map[int64]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func unionKeys(ms ...map[int][]int64) []int {
	seen := map[int]bool{}
	for _, m := range ms {
		for k := range m {
			seen[k] = true
		}
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func fmtIDs(ids []int64) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, fmt.Sprintf("%d", id))
	}
	return out
}

// fmtIDMap renders a per-operator id-set map canonically for fingerprint
// comparison across worker counts.
func fmtIDMap(m map[int][]int64) string {
	oids := make([]int, 0, len(m))
	for oid := range m {
		oids = append(oids, oid)
	}
	sort.Ints(oids)
	var b strings.Builder
	for _, oid := range oids {
		fmt.Fprintf(&b, "%d:[", oid)
		for i, id := range sortedIDs(m[oid]) {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", id)
		}
		b.WriteString("] ")
	}
	return b.String()
}
