package oracle

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"pebble/internal/corpus"
)

// WriteRepro persists a (typically shrunk) failing spec under dir as two
// files: seed-<seed>.json, the replayable spec, and seed-<seed>.go.txt, a
// self-contained Go snippet rebuilding the pipeline with the plain builder
// API. It returns the two paths. The disagreement is embedded as a header
// comment in the snippet and a sibling field in the JSON envelope.
func WriteRepro(dir string, s *corpus.Spec, d *Disagreement) (jsonPath, goPath string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", err
	}
	envelope := struct {
		Kind   string       `json:"kind,omitempty"`
		Detail string       `json:"detail,omitempty"`
		Spec   *corpus.Spec `json:"spec"`
	}{Spec: s}
	if d != nil {
		envelope.Kind, envelope.Detail = d.Kind, d.Detail
	}
	data, err := json.MarshalIndent(envelope, "", "  ")
	if err != nil {
		return "", "", err
	}
	jsonPath = filepath.Join(dir, fmt.Sprintf("seed-%d.json", s.Seed))
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return "", "", err
	}
	snippet := corpus.GoSnippet(s)
	if d != nil {
		snippet = fmt.Sprintf("// Disagreement: %s: %s\n%s", d.Kind, d.Detail, snippet)
	}
	goPath = filepath.Join(dir, fmt.Sprintf("seed-%d.go.txt", s.Seed))
	if err := os.WriteFile(goPath, []byte(snippet), 0o644); err != nil {
		return "", "", err
	}
	return jsonPath, goPath, nil
}

// ReadRepro loads a spec written by WriteRepro (the JSON form).
func ReadRepro(path string) (*corpus.Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var envelope struct {
		Spec *corpus.Spec `json:"spec"`
	}
	if err := json.Unmarshal(data, &envelope); err != nil {
		return nil, err
	}
	if envelope.Spec == nil {
		return nil, fmt.Errorf("oracle: %s: no spec in envelope", path)
	}
	return envelope.Spec, nil
}
