package oracle

import (
	"bytes"
	"fmt"

	"pebble/internal/engine"
	"pebble/internal/lineage"
	"pebble/internal/provenance"
)

// This file implements the executor twin of the differential oracle (PR 7):
// the vectorized (columnar batch) executor and the legacy row-at-a-time
// executor must be observationally indistinguishable. compareExecPaths is
// the corpus-level check CheckSpec applies per worker count; CheckExecPath
// is the exported pipeline-level entry the workload-scenario tests and
// external harnesses drive directly.

// compareExecPaths requires the row-executor artifacts to match the
// vectorized artifacts byte for byte: result rows (ids and values),
// serialized v2 provenance stream, and the lineage and lazy trace
// fingerprints.
func compareExecPaths(vec, row *artifacts, seed int64, workers int) *Disagreement {
	fail := func(detail string) *Disagreement {
		return &Disagreement{Kind: KindExecPath, Detail: detail, Workers: workers, Seed: seed}
	}
	if diff := firstDiff(vec.rows, row.rows); diff != "" {
		return fail("row executor changed the result: " + diff)
	}
	if !bytes.Equal(vec.provBytes, row.provBytes) {
		return fail(fmt.Sprintf("row executor changed the serialized provenance (%d vs %d bytes)",
			len(row.provBytes), len(vec.provBytes)))
	}
	if vec.lineageFP != row.lineageFP {
		return fail("row executor changed the lineage trace fingerprint")
	}
	if vec.lazyFP != row.lazyFP {
		return fail("row executor changed the lazy trace fingerprint")
	}
	return nil
}

// CheckExecPath runs one pipeline under both executors for every configured
// worker count and returns the first divergence in result rows or serialized
// provenance, or nil when the executors agree everywhere. build must return
// a fresh equivalent pipeline on every call (plans are single-use); the
// same inputs are shared by all runs. Scenario-level tests drive the ten
// workload pipelines through this entry, complementing the corpus specs
// CheckSpec covers.
func CheckExecPath(build func() *engine.Pipeline, inputs map[string]*engine.Dataset, cfg Config) *Disagreement {
	cfg = cfg.withDefaults()
	fail := func(kind, detail string, workers int) *Disagreement {
		return &Disagreement{Kind: kind, Detail: detail, Workers: workers}
	}
	for _, w := range cfg.Workers {
		var twin [2]struct {
			rows      []string
			provBytes []byte
			lineageFP string
		}
		for i, rowExec := range []bool{false, true} {
			opts := engine.Options{Partitions: cfg.Partitions, Workers: w, ScalarFallback: rowExec}
			res, run, err := provenance.Capture(build(), inputs, opts)
			if err != nil {
				return fail(KindRun, fmt.Sprintf("rowExec=%v: %v", rowExec, err), w)
			}
			twin[i].rows = rowStrings(res.Output)
			var buf bytes.Buffer
			if _, err := run.WriteTo(&buf); err != nil {
				return fail(KindRun, "serialize provenance: "+err.Error(), w)
			}
			twin[i].provBytes = buf.Bytes()
			linPipe := build()
			resLin, lrun, err := lineage.Capture(linPipe, inputs, opts)
			if err != nil {
				return fail(KindRun, fmt.Sprintf("rowExec=%v lineage: %v", rowExec, err), w)
			}
			outIDs := make([]int64, 0, len(resLin.Output.Rows()))
			for _, r := range resLin.Output.Rows() {
				outIDs = append(outIDs, r.ID)
			}
			by, err := lrun.Trace(linPipe.Sink().ID(), outIDs)
			if err != nil {
				return fail(KindRun, "lineage trace: "+err.Error(), w)
			}
			twin[i].lineageFP = fmtIDMap(by)
		}
		vec, row := twin[0], twin[1]
		if diff := firstDiff(vec.rows, row.rows); diff != "" {
			return fail(KindExecPath, "row executor changed the result: "+diff, w)
		}
		if !bytes.Equal(vec.provBytes, row.provBytes) {
			return fail(KindExecPath, fmt.Sprintf("row executor changed the serialized provenance (%d vs %d bytes)",
				len(row.provBytes), len(vec.provBytes)), w)
		}
		if vec.lineageFP != row.lineageFP {
			return fail(KindExecPath, "row executor changed the lineage trace fingerprint", w)
		}
	}
	return nil
}
