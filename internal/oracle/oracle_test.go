package oracle

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"pebble/internal/corpus"
	"pebble/internal/engine"
)

// testConfig is the deterministic corpus configuration: all four capture
// modes × Workers ∈ {1, 2, NumCPU}.
func testConfig() Config {
	return Config{Partitions: 4, Workers: []int{1, 2, runtime.NumCPU()}}
}

// TestCorpusAgreement is the tier-1 differential gate: a deterministic
// corpus of generated pipelines must show full agreement across capture
// modes and worker counts.
func TestCorpusAgreement(t *testing.T) {
	n := int64(200)
	if testing.Short() {
		n = 50
	}
	cfg := testConfig()
	for seed := int64(0); seed < n; seed++ {
		if d := CheckSpec(corpus.Generate(seed), cfg); d != nil {
			t.Fatalf("%v", d)
		}
	}
}

// TestReplayCommittedRepros re-runs every spec committed under testdata/;
// these are regression seeds that once exposed interesting shapes (joins,
// aggregates behind flattens, ...). All must agree.
func TestReplayCommittedRepros(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "seed-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed repro specs under testdata/")
	}
	cfg := testConfig()
	for _, p := range paths {
		spec, err := ReadRepro(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if d := CheckSpec(spec, cfg); d != nil {
			t.Errorf("%s: %v", p, d)
		}
	}
}

// TestAggregateKeyOnlyGranularity pins the one place structural provenance
// is legitimately finer than lineage, found by the soak runner (seed 881,
// shrunk): a projection after an aggregate drops the aggregate output, so a
// full-value query addresses only the grouping key and Alg. 4 marks no
// group member relevant (Ex. 6.6). The oracle must classify such specs as
// non-strict and settle for eager ⊆ lineage rather than flag a
// disagreement.
func TestAggregateKeyOnlyGranularity(t *testing.T) {
	spec, err := ReadRepro(filepath.Join("testdata", "seed-881.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !spec.HasStep(corpus.StepAggregate) || !spec.HasStep(corpus.StepSelect) {
		t.Fatalf("committed granularity spec lost its shape: %+v", spec.Steps)
	}
	if spec.AggOutputsReachSink() {
		t.Fatal("spec drops the aggregate output but is classified strict")
	}
	if d := CheckSpec(spec, testConfig()); d != nil {
		t.Fatalf("documented granularity difference flagged as disagreement: %v", d)
	}
	// The flip side: the generator still produces non-strict specs (seed 881
	// is one), so the relaxed path keeps being exercised by the soak.
	strict, relaxed := 0, 0
	for seed := int64(0); seed < 1000; seed++ {
		if corpus.Generate(seed).AggOutputsReachSink() {
			strict++
		} else {
			relaxed++
		}
	}
	if strict == 0 || relaxed == 0 {
		t.Errorf("corpus regime split strict=%d relaxed=%d; both must occur", strict, relaxed)
	}
}

// droppingSink wraps a capture sink and suppresses unary associations whose
// input id is congruent to 3 mod 7 — a deterministic "lost association"
// fault that is independent of scheduling, so it models a collector shard
// losing writes without tripping the cross-worker checks first. It
// interposes on the morsel handles: Partition wraps the inner sink's
// PartitionSink, so the drop applies on the lock-free append path the
// engine actually uses.
type droppingSink struct {
	engine.CaptureSink
}

func (d *droppingSink) Partition(oid, part int) engine.PartitionSink {
	return &droppingPartition{PartitionSink: d.CaptureSink.Partition(oid, part)}
}

type droppingPartition struct {
	engine.PartitionSink
}

func (d *droppingPartition) Unary(inID, outID int64) {
	if inID%7 == 3 {
		return
	}
	d.PartitionSink.Unary(inID, outID)
}

// UnaryRange must intercept the vectorized bulk form too — embedding would
// otherwise forward the whole range unfiltered and the injected fault would
// silently vanish under the columnar executor.
func (d *droppingPartition) UnaryRange(inIDs []int64, base int64) {
	for i, in := range inIDs {
		d.Unary(in, base+int64(i))
	}
}

// TestInjectedFaultIsCaughtAndShrunk proves the oracle end to end: dropping
// associations in the eager collector must be detected as a disagreement
// with lineage, and the shrinker must reduce the failing pipeline to at
// most 3 operators while preserving the disagreement kind. The reproducer
// is then emitted and replayed from its JSON form.
func TestInjectedFaultIsCaughtAndShrunk(t *testing.T) {
	cfg := testConfig()
	cfg.WrapSink = func(s engine.CaptureSink) engine.CaptureSink { return &droppingSink{CaptureSink: s} }

	var spec *corpus.Spec
	var d *Disagreement
	for seed := int64(0); seed < 50; seed++ {
		s := corpus.Generate(seed)
		if got := CheckSpec(s, cfg); got != nil {
			spec, d = s, got
			break
		}
	}
	if spec == nil {
		t.Fatal("injected fault was not detected on any of 50 seeds")
	}
	if d.Kind != KindEagerMissed && d.Kind != KindForward {
		t.Fatalf("unexpected disagreement kind %q: %v", d.Kind, d)
	}

	shrunk, sd := Shrink(spec, cfg)
	if sd == nil {
		t.Fatal("shrunk spec no longer fails")
	}
	if sd.Kind != d.Kind {
		t.Fatalf("shrinking changed the kind: %q -> %q", d.Kind, sd.Kind)
	}
	if shrunk.NumOps() > 3 {
		t.Fatalf("shrunk reproducer has %d operators, want <= 3\nsteps: %+v", shrunk.NumOps(), shrunk.Steps)
	}
	if len(shrunk.Rows) >= len(spec.Rows) && len(spec.Rows) > 1 {
		t.Errorf("row shrinking removed nothing: %d rows before and after", len(spec.Rows))
	}

	dir := t.TempDir()
	jsonPath, goPath, err := WriteRepro(dir, shrunk, sd)
	if err != nil {
		t.Fatal(err)
	}
	snippet, err := os.ReadFile(goPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(snippet), "Disagreement: "+sd.Kind) ||
		!strings.Contains(string(snippet), "package main") {
		t.Errorf("snippet missing header or body:\n%s", snippet)
	}
	back, err := ReadRepro(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	rd := CheckSpec(back, cfg)
	if rd == nil || rd.Kind != sd.Kind {
		t.Fatalf("replayed reproducer does not fail the same way: %v", rd)
	}
	// Without the fault the reproducer must be clean.
	if clean := CheckSpec(back, testConfig()); clean != nil {
		t.Fatalf("reproducer fails without the injected fault: %v", clean)
	}
}

// TestShrinkIsNoOpOnAgreeingSpec: shrinking a healthy spec returns it
// unchanged with no disagreement.
func TestShrinkIsNoOpOnAgreeingSpec(t *testing.T) {
	s := corpus.Generate(1)
	out, d := Shrink(s, testConfig())
	if d != nil {
		t.Fatalf("healthy spec reported %v", d)
	}
	if out != s {
		t.Error("healthy spec was modified by Shrink")
	}
}
