package oracle

import (
	"testing"

	"pebble/internal/workload"
)

// TestExecPathScenarios drives all ten workload scenarios (Tab. 7) through
// the exported executor-twin check: vectorized vs row execution must agree
// on result rows, serialized provenance bytes, and lineage fingerprints for
// Workers {1, 2, NumCPU}. The DBLP scenarios put ~500 rows per partition
// through the engine, so every morsel crosses the 256-row batch boundary.
func TestExecPathScenarios(t *testing.T) {
	scale := workload.DefaultScale(1)
	cfg := testConfig()
	for _, sc := range workload.AllScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			if testing.Short() && sc.Dataset == "dblp" {
				t.Skip("short mode: twitter scenarios cover the executor twin")
			}
			inputs := sc.Input(scale, cfg.Partitions)
			if d := CheckExecPath(sc.Build, inputs, cfg); d != nil {
				t.Fatalf("executor divergence: %v", d)
			}
		})
	}
}
