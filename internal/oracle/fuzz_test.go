package oracle

import (
	"encoding/json"
	"testing"

	"pebble/internal/corpus"
	"pebble/internal/engine"
)

// fuzzConfig keeps per-input cost low: the fuzzer explores many seeds, so
// two worker counts suffice (the deterministic corpus covers NumCPU).
func fuzzConfig() Config {
	return Config{Partitions: 3, Workers: []int{1, 2}}
}

// FuzzCheckSpec drives the full differential oracle from a fuzzed seed:
// any disagreement between the four capture modes across worker counts is
// a crash. Seeded from the committed corpus range.
func FuzzCheckSpec(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if d := CheckSpec(corpus.Generate(seed), fuzzConfig()); d != nil {
			t.Fatalf("%v", d)
		}
	})
}

// FuzzSpecJSON feeds arbitrary bytes through the spec codec: inputs that
// parse must round-trip, rebuild, and execute without panicking; parse
// failures must be reported as errors, never as crashes.
func FuzzSpecJSON(f *testing.F) {
	for _, seed := range []int64{0, 2, 3, 6, 7} {
		data, err := json.Marshal(corpus.Generate(seed))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var s corpus.Spec
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		// Bound the work per input: chained self-unions double multiplicity
		// per step, so unconstrained fuzzed plans can explode exponentially.
		if len(s.Steps) > 8 || len(s.Rows) > 100 || len(s.Aux) > 100 {
			return
		}
		p, err := s.Build()
		if err != nil {
			return
		}
		if _, err := engine.Run(p, s.Inputs(2), s.ExecOptions(engine.Options{Partitions: 2})); err != nil {
			return
		}
		again, err := json.Marshal(&s)
		if err != nil {
			t.Fatalf("re-marshal of parsed spec failed: %v", err)
		}
		var back corpus.Spec
		if err := json.Unmarshal(again, &back); err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
	})
}
