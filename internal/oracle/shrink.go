package oracle

import (
	"pebble/internal/nested"

	"pebble/internal/corpus"
)

// Shrink reduces a disagreeing spec to a smaller one that still fails with
// the same disagreement kind, testing/quick-style: first greedily drop
// pipeline operators (rewiring consumers past the dropped step), then drop
// input rows with a ddmin-style halving pass over both datasets. It returns
// the reduced spec and its disagreement; when the input spec does not fail
// at all, it is returned unchanged with a nil disagreement.
func Shrink(s *corpus.Spec, cfg Config) (*corpus.Spec, *Disagreement) {
	d := CheckSpec(s, cfg)
	if d == nil {
		return s, nil
	}
	kind := d.Kind
	cur := s
	// Phase 1: operator dropping to a fixpoint. Dropping a step rewires its
	// consumers to its input and prunes steps that become unreachable, so
	// each successful drop strictly shrinks the plan.
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Steps); i++ {
			c, ok := cur.DropStep(i)
			if !ok {
				continue
			}
			if d2 := CheckSpec(c, cfg); d2 != nil && d2.Kind == kind {
				cur, d, changed = c, d2, true
				break
			}
		}
	}
	// Phase 2: row dropping on the main dataset, then the aux dataset.
	cur, d = shrinkRows(cur, d, kind, cfg, func(c *corpus.Spec) *[]nested.Value { return &c.Rows })
	cur, d = shrinkRows(cur, d, kind, cfg, func(c *corpus.Spec) *[]nested.Value { return &c.Aux })
	return cur, d
}

// shrinkRows removes chunks of rows (halving the chunk size down to one row)
// while the disagreement kind is preserved.
func shrinkRows(s *corpus.Spec, d *Disagreement, kind string, cfg Config,
	rows func(*corpus.Spec) *[]nested.Value) (*corpus.Spec, *Disagreement) {

	for chunk := len(*rows(s)) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start < len(*rows(s)); {
			c := s.Clone()
			r := rows(c)
			end := start + chunk
			if end > len(*r) {
				end = len(*r)
			}
			*r = append(append([]nested.Value(nil), (*r)[:start]...), (*r)[end:]...)
			if d2 := CheckSpec(c, cfg); d2 != nil && d2.Kind == kind {
				s, d = c, d2 // keep the removal; retry the same offset
				continue
			}
			start += chunk
		}
	}
	return s, d
}
