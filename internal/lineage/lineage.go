// Package lineage reimplements the capture and tracing strategy of Titian
// (Interlandi et al., PVLDB 2015), the state-of-the-art lineage solution the
// paper compares against (Sec. 7.3.4): per operator only the top-level
// ⟨input id, output id⟩ associations are captured — no access paths, no
// manipulation mappings, no positions of nested elements — and backtracing
// is a pure sequence of id joins. The result of a lineage query is therefore
// the set of whole input items (full tuples) that contribute to a queried
// output item, without attribute-level precision.
//
// Running the same engine under this collector isolates exactly the extra
// cost of structural provenance, mirroring the paper's Titian comparison.
package lineage

import (
	"fmt"
	"sort"
	"sync"

	"pebble/internal/engine"
)

// Assoc layouts.
type unaryAssoc struct{ in, out int64 }
type binaryAssoc struct{ left, right, out int64 }
type aggAssoc struct {
	ins []int64
	out int64
}

// operator holds one operator's associations.
type operator struct {
	oid    int
	typ    engine.OpType
	preds  []int
	source []int64
	unary  []unaryAssoc
	binary []binaryAssoc
	agg    []aggAssoc
}

// Run is the lineage captured during one execution.
type Run struct {
	ops   map[int]*operator
	order []int
}

// Collector implements engine.CaptureSink, capturing lineage only. As with
// the structural collector, Partition read-locks the operator registry once
// per morsel (the engine starts concurrently executing operators while
// morsels of others still flow) and the returned handle appends to its
// morsel-owned shard without locking.
type Collector struct {
	mu    sync.RWMutex
	ops   map[int]*opShards
	order []int
}

type opShards struct {
	oid    int
	typ    engine.OpType
	preds  []int
	shards []shard
}

// shard is the collector's engine.PartitionSink: single-goroutine appends
// for one (operator, partition) morsel.
type shard struct {
	source []int64
	unary  []unaryAssoc
	binary []binaryAssoc
	agg    []aggAssoc
}

// NewCollector returns an empty lineage collector.
func NewCollector() *Collector { return &Collector{ops: make(map[int]*opShards)} }

// StartOperator implements engine.CaptureSink. Unlike the structural
// collector it drops the accessed-path and manipulation information.
func (c *Collector) StartOperator(info engine.OpInfo, partitions int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if partitions < 1 {
		partitions = 1
	}
	preds := make([]int, len(info.Inputs))
	for i, in := range info.Inputs {
		preds[i] = in.Pred
	}
	c.ops[info.OID] = &opShards{oid: info.OID, typ: info.Type, preds: preds, shards: make([]shard, partitions)}
	c.order = append(c.order, info.OID)
}

// Partition implements engine.CaptureSink; the read lock only covers the
// registry lookup, appends through the returned handle are morsel-owned.
func (c *Collector) Partition(oid, part int) engine.PartitionSink {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return &c.ops[oid].shards[part]
}

// SourceRow implements engine.PartitionSink.
func (s *shard) SourceRow(id, origID int64) {
	s.source = append(s.source, id)
}

// Unary implements engine.PartitionSink.
func (s *shard) Unary(inID, outID int64) {
	s.unary = append(s.unary, unaryAssoc{in: inID, out: outID})
}

// Binary implements engine.PartitionSink.
func (s *shard) Binary(leftID, rightID, outID int64) {
	s.binary = append(s.binary, binaryAssoc{left: leftID, right: rightID, out: outID})
}

// Flatten implements engine.PartitionSink. Titian has no flatten notion;
// the position is dropped and only the id pair retained (Sec. 7.3.2: "the
// overhead can increase when flatten operators store positions that lineage
// solutions do not capture").
func (s *shard) Flatten(inID int64, pos int, outID int64) {
	s.unary = append(s.unary, unaryAssoc{in: inID, out: outID})
}

// Agg implements engine.PartitionSink, taking ownership of inIDs per the
// PartitionSink contract (the executor never reuses the slice).
func (s *shard) Agg(inIDs []int64, outID int64) {
	s.agg = append(s.agg, aggAssoc{ins: inIDs, out: outID})
}

// SourceRows implements engine.PartitionSink: the bulk id-range form of
// SourceRow. The slices are borrowed; every id is copied out.
func (s *shard) SourceRows(base int64, origIDs []int64) {
	for i := range origIDs {
		s.source = append(s.source, base+int64(i))
	}
}

// UnaryRange implements engine.PartitionSink.
func (s *shard) UnaryRange(inIDs []int64, base int64) {
	for i, in := range inIDs {
		s.unary = append(s.unary, unaryAssoc{in: in, out: base + int64(i)})
	}
}

// BinaryRange implements engine.PartitionSink.
func (s *shard) BinaryRange(leftIDs, rightIDs []int64, base int64) {
	for i := range leftIDs {
		s.binary = append(s.binary, binaryAssoc{left: leftIDs[i], right: rightIDs[i], out: base + int64(i)})
	}
}

// FlattenRange implements engine.PartitionSink; positions are dropped like
// Flatten drops them.
func (s *shard) FlattenRange(inIDs []int64, positions []int, base int64) {
	for i, in := range inIDs {
		s.unary = append(s.unary, unaryAssoc{in: in, out: base + int64(i)})
	}
}

// Finish merges the shards into an immutable Run; the collector is reusable
// afterwards. Operators are ordered by id so the run is independent of the
// engine's physical schedule.
func (c *Collector) Finish() *Run {
	c.mu.Lock()
	defer c.mu.Unlock()
	run := &Run{ops: make(map[int]*operator, len(c.ops))}
	sort.Ints(c.order)
	for _, oid := range c.order {
		os := c.ops[oid]
		o := &operator{oid: os.oid, typ: os.typ, preds: os.preds}
		for _, sh := range os.shards {
			o.source = append(o.source, sh.source...)
			o.unary = append(o.unary, sh.unary...)
			o.binary = append(o.binary, sh.binary...)
			o.agg = append(o.agg, sh.agg...)
		}
		run.ops[oid] = o
		run.order = append(run.order, oid)
	}
	c.ops = make(map[int]*opShards)
	c.order = nil
	return run
}

// SizeBytes estimates the storage footprint of the captured lineage.
func (r *Run) SizeBytes() int64 {
	const idBytes = 8
	var n int64
	for _, o := range r.ops {
		n += int64(len(o.source)) * idBytes
		n += int64(len(o.unary)) * 2 * idBytes
		n += int64(len(o.binary)) * 3 * idBytes
		for _, a := range o.agg {
			n += int64(len(a.ins)+1) * idBytes
		}
	}
	return n
}

// Trace traces the given output identifiers of operator startOID back to the
// sources by joining ids against the per-operator associations (the
// backtracing join that Titian, RAMP, and Newt apply, Sec. 6.3). It returns
// the contributing input-item ids per source operator.
func (r *Run) Trace(startOID int, outIDs []int64) (map[int][]int64, error) {
	result := make(map[int]map[int64]bool)
	if err := r.trace(startOID, outIDs, result); err != nil {
		return nil, err
	}
	out := make(map[int][]int64, len(result))
	for oid, ids := range result {
		flat := make([]int64, 0, len(ids))
		for id := range ids {
			flat = append(flat, id)
		}
		sort.Slice(flat, func(i, j int) bool { return flat[i] < flat[j] })
		out[oid] = flat
	}
	return out, nil
}

func (r *Run) trace(oid int, ids []int64, result map[int]map[int64]bool) error {
	if len(ids) == 0 {
		return nil
	}
	o, ok := r.ops[oid]
	if !ok {
		return fmt.Errorf("lineage: no captured lineage for operator %d", oid)
	}
	want := make(map[int64]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	switch {
	case o.typ == engine.OpSource:
		set := result[oid]
		if set == nil {
			set = make(map[int64]bool)
			result[oid] = set
		}
		for _, id := range ids {
			set[id] = true
		}
		return nil
	case len(o.unary) > 0 || (len(o.binary) == 0 && len(o.agg) == 0 && len(o.source) == 0):
		var next []int64
		for _, a := range o.unary {
			if want[a.out] {
				next = append(next, a.in)
			}
		}
		return r.trace(o.preds[0], dedup(next), result)
	case len(o.binary) > 0:
		var left, right []int64
		for _, a := range o.binary {
			if want[a.out] {
				if a.left != -1 {
					left = append(left, a.left)
				}
				if a.right != -1 {
					right = append(right, a.right)
				}
			}
		}
		if err := r.trace(o.preds[0], dedup(left), result); err != nil {
			return err
		}
		return r.trace(o.preds[1], dedup(right), result)
	case len(o.agg) > 0:
		var next []int64
		for _, a := range o.agg {
			if want[a.out] {
				next = append(next, a.ins...)
			}
		}
		return r.trace(o.preds[0], dedup(next), result)
	}
	return nil
}

func dedup(ids []int64) []int64 {
	seen := make(map[int64]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// Capture runs the pipeline under lineage capture.
func Capture(p *engine.Pipeline, inputs map[string]*engine.Dataset, opts engine.Options) (*engine.Result, *Run, error) {
	c := NewCollector()
	opts.Sink = c
	res, err := engine.Run(p, inputs, opts)
	if err != nil {
		return nil, nil, err
	}
	return res, c.Finish(), nil
}
