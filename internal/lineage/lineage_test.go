package lineage_test

import (
	"testing"

	"pebble/internal/backtrace"
	"pebble/internal/engine"
	"pebble/internal/lineage"
	"pebble/internal/provenance"
	"pebble/internal/workload"
)

func captureBoth(t *testing.T) (*engine.Result, *lineage.Run, *engine.Result, *provenance.Run) {
	t.Helper()
	lres, lrun, err := lineage.Capture(workload.ExamplePipeline(), workload.ExampleInput(2),
		engine.Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	sres, srun, err := provenance.Capture(workload.ExamplePipeline(), workload.ExampleInput(2),
		engine.Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	return lres, lrun, sres, srun
}

func lpRowID(t *testing.T, res *engine.Result) int64 {
	t.Helper()
	for _, r := range res.Output.Rows() {
		u, _ := r.Value.Get("user")
		id, _ := u.Get("id_str")
		if s, _ := id.AsString(); s == "lp" {
			return r.ID
		}
	}
	t.Fatal("lp row missing")
	return 0
}

// TestLineageReturnsWholeTweets reproduces the paper's Sec. 2 observation:
// lineage solutions return all input tweets containing user lp (the
// light-grey items of Tab. 1), masking the two tweets causing the duplicate.
func TestLineageReturnsWholeTweets(t *testing.T) {
	lres, lrun, _, _ := captureBoth(t)
	traced, err := lrun.Trace(9, []int64{lpRowID(t, lres)})
	if err != nil {
		t.Fatal(err)
	}
	// Upper branch: lp authored 3 tweets with retweet_cnt 0; lower branch:
	// lp mentioned once.
	if got := len(traced[1]); got != 3 {
		t.Errorf("upper-branch lineage items = %d, want 3", got)
	}
	if got := len(traced[4]); got != 1 {
		t.Errorf("lower-branch lineage items = %d, want 1", got)
	}
	for oid, ids := range traced {
		src := lres.Sources[oid]
		for _, id := range ids {
			if _, ok := src.FindByID(id); !ok {
				t.Errorf("lineage id %d missing in source %d", id, oid)
			}
		}
	}
}

// TestLineageIsSupersetOfStructural: the whole-item lineage of a query must
// contain every item structural provenance identifies as contributing —
// lineage is coarser, never smaller.
func TestLineageIsSupersetOfStructural(t *testing.T) {
	scale := workload.DefaultScale(1)
	for _, name := range []string{"T1", "T5", "D1", "D4"} {
		sc, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pipe := sc.Build()
		res, srun, err := provenance.Capture(pipe, sc.Input(scale, 4), engine.Options{Partitions: 4})
		if err != nil {
			t.Fatal(err)
		}
		b := sc.Pattern.Match(res.Output)
		if b.Len() == 0 {
			t.Fatalf("%s: no matches", name)
		}
		straced, err := backtrace.Trace(srun, pipe.Sink().ID(), b)
		if err != nil {
			t.Fatal(err)
		}
		// Lineage over the same run: rerun under the lineage collector is
		// not comparable id-wise, so trace the structural run's association
		// ids through a lineage-equivalent join — here we simply rerun with
		// lineage capture and compare per-source counts instead of raw ids.
		lres, lrun, err := lineage.Capture(sc.Build(), sc.Input(scale, 4), engine.Options{Partitions: 4})
		if err != nil {
			t.Fatal(err)
		}
		lb := sc.Pattern.Match(lres.Output)
		var outIDs []int64
		for _, it := range lb.Items {
			outIDs = append(outIDs, it.ID)
		}
		ltraced, err := lrun.Trace(sc.Build().Sink().ID(), outIDs)
		if err != nil {
			t.Fatal(err)
		}
		var lineageTotal, structTotal int
		for _, ids := range ltraced {
			lineageTotal += len(ids)
		}
		for _, s := range straced.BySource {
			structTotal += s.Len()
		}
		if lineageTotal < structTotal {
			t.Errorf("%s: lineage item count %d < structural %d", name, lineageTotal, structTotal)
		}
	}
}

// TestLineageSizeVsStructural: lineage is the dark bar of Fig. 8; the
// structural extra on top stays small relative to id-heavy lineage.
func TestLineageSizeVsStructural(t *testing.T) {
	sc, _ := workload.ByName("T2")
	scale := workload.DefaultScale(2)
	_, lrun, err := lineage.Capture(sc.Build(), sc.Input(scale, 4), engine.Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, srun, err := provenance.Capture(sc.Build(), sc.Input(scale, 4), engine.Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	lsize := lrun.SizeBytes()
	ssize := srun.Sizes()
	if lsize <= 0 {
		t.Fatal("lineage size must be positive")
	}
	// The lineage share of the structural capture matches the dedicated
	// lineage run (same pipeline, same data, same association counts).
	if ssize.LineageBytes != lsize {
		t.Errorf("structural lineage share %d != lineage size %d", ssize.LineageBytes, lsize)
	}
	if ssize.StructuralExtra <= 0 {
		t.Error("structural extra missing")
	}
}

func TestLineageTraceErrors(t *testing.T) {
	_, lrun, _, _ := captureBoth(t)
	if _, err := lrun.Trace(42, []int64{1}); err == nil {
		t.Error("unknown operator should error")
	}
	empty, err := lrun.Trace(9, nil)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty trace: %v, %v", empty, err)
	}
}

func TestLineageDeterministicOrder(t *testing.T) {
	lres, lrun, _, _ := captureBoth(t)
	a, _ := lrun.Trace(9, []int64{lpRowID(t, lres)})
	b, _ := lrun.Trace(9, []int64{lpRowID(t, lres)})
	for oid := range a {
		if len(a[oid]) != len(b[oid]) {
			t.Fatal("nondeterministic trace")
		}
		for i := range a[oid] {
			if a[oid][i] != b[oid][i] {
				t.Error("trace ids not sorted deterministically")
			}
		}
	}
}
