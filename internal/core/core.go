// Package core is the "Pebble Core" module of the system architecture
// (Fig. 5): it ties the capture submodule (running pipelines under
// structural provenance capture) to the query submodule (tree-pattern
// matching followed by backtracing), realising the paper's holistic
// meet-in-the-middle approach — eager lightweight capture during execution,
// succinct backtracing at query time.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"pebble/internal/backtrace"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/obs"
	"pebble/internal/path"
	"pebble/internal/provenance"
	"pebble/internal/treepattern"
)

// Session configures capture and query executions.
type Session struct {
	// Partitions is the logical data parallelism of pipeline runs (default
	// engine.DefaultPartitions). It fixes identifiers and result order, not
	// the goroutine count.
	Partitions int
	// Workers is the physical worker-goroutine count (0 = NumCPU). Results
	// are byte-identical for every value; only wall time changes.
	Workers int
	// Sequential disables goroutine parallelism (equivalent to Workers=1).
	Sequential bool
	// AnalyzeFirst type-checks the plan against the input schemas before
	// executing, failing fast on unknown columns and type errors.
	AnalyzeFirst bool
	// Recorder, when non-nil, receives per-operator execution metrics and
	// query-side timing spans for every run of this session. Nil (the
	// default) disables observability at near-zero cost.
	Recorder *obs.Recorder
}

// Option configures a Session built with NewSession.
type Option func(*Session)

// WithPartitions sets the logical data parallelism (identifier assignment
// and result order); values < 1 keep the engine default.
func WithPartitions(n int) Option { return func(s *Session) { s.Partitions = n } }

// WithWorkers sets the physical worker-goroutine count (0 = NumCPU).
func WithWorkers(n int) Option { return func(s *Session) { s.Workers = n } }

// WithSequential disables goroutine parallelism.
func WithSequential() Option { return func(s *Session) { s.Sequential = true } }

// WithAnalyzeFirst enables plan type-checking before every execution.
func WithAnalyzeFirst() Option { return func(s *Session) { s.AnalyzeFirst = true } }

// WithRecorder attaches an observability recorder to the session.
func WithRecorder(rec *obs.Recorder) Option { return func(s *Session) { s.Recorder = rec } }

// NewSession builds a session from functional options; a bare
// NewSession() is a ready-to-use default session. The zero Session struct
// literal remains equivalent and supported.
func NewSession(opts ...Option) Session {
	var s Session
	for _, o := range opts {
		o(&s)
	}
	return s
}

// ResolvePartitions is the single partition-precedence rule of the system:
// an explicit positive count wins, then the session's positive Partitions,
// then the engine default. Every partition decision — Session.options,
// Session.NewDataset, pebble.NewDataset — routes through it, so a session
// and the datasets built for it can never disagree regardless of which
// other options (WithSequential, WithWorkers, …) the session was built
// with. Pinned by TestPartitionPrecedence.
func (s Session) ResolvePartitions(explicit int) int {
	if explicit > 0 {
		return explicit
	}
	if s.Partitions > 0 {
		return s.Partitions
	}
	return engine.DefaultPartitions
}

func (s Session) options() engine.Options {
	return engine.Options{Partitions: s.ResolvePartitions(0), Workers: s.Workers, Sequential: s.Sequential, Recorder: s.Recorder}
}

// NewDataset partitions values into the session's logical partition count,
// assigning each row a unique provenance identifier. parts <= 0 inherits
// Session.Partitions (which itself defaults to engine.DefaultPartitions);
// an explicit positive parts overrides the session (precedence: explicit >
// session > engine default, see ResolvePartitions). Datasets and sessions
// must agree on the partition count for byte-identical reproducible runs,
// so prefer this over hand-picking counts per dataset.
func (s Session) NewDataset(name string, values []nested.Value, parts int) *engine.Dataset {
	return engine.NewDataset(name, values, s.ResolvePartitions(parts), engine.NewIDGen(1))
}

// Captured is a pipeline execution with its structural provenance, ready for
// provenance queries.
type Captured struct {
	Pipeline   *engine.Pipeline
	Result     *engine.Result
	Provenance *provenance.Run

	tracerMu sync.Mutex
	tracer   *backtrace.Tracer // guarded by tracerMu

	// rec is the session recorder active when the capture ran; queries on
	// this capture report their match and backtrace spans into it.
	rec *obs.Recorder
}

// Tracer returns the query tracer over the captured provenance; its
// association indexes are built lazily and shared across all queries on this
// capture (until AttachProvenance swaps in a reloaded run).
func (c *Captured) Tracer() *backtrace.Tracer {
	c.tracerMu.Lock()
	defer c.tracerMu.Unlock()
	if c.tracer == nil {
		c.tracer = backtrace.NewTracer(c.Provenance).Observe(c.rec)
	}
	return c.tracer
}

// AttachProvenance swaps in a (typically reloaded) provenance run, replacing
// the capture's in-memory run for every later query. tr, when non-nil, is a
// prepared tracer over that run — e.g. one whose indexes were installed from
// a persisted sidecar; nil builds a fresh tracer. The session recorder is
// (re)attached either way, so query spans keep reporting.
func (c *Captured) AttachProvenance(run *provenance.Run, tr *backtrace.Tracer) {
	if tr == nil {
		tr = backtrace.NewTracer(run)
	}
	c.tracerMu.Lock()
	defer c.tracerMu.Unlock()
	c.Provenance = run
	c.tracer = tr.Observe(c.rec)
}

// Recorder returns the session recorder attached when the capture ran (nil
// when the session had none) — reload paths report their load and
// index-install phases into it.
func (c *Captured) Recorder() *obs.Recorder { return c.rec }

// Reattached assembles a query-capable Captured from reloaded pieces — the
// daemon/service reload path: the pipeline and execution result of the
// original run, a provenance run reloaded from persisted bytes, and
// optionally a tracer prepared over that run (e.g. with sidecar indexes
// installed). rec, when non-nil, observes every query on the capture, same
// as a session recorder would.
func Reattached(p *engine.Pipeline, res *engine.Result, run *provenance.Run, tr *backtrace.Tracer, rec *obs.Recorder) *Captured {
	c := &Captured{Pipeline: p, Result: res, Provenance: run, rec: rec}
	if tr != nil {
		c.tracer = tr.Observe(rec)
	}
	return c
}

// Stats returns the observability snapshot for this capture. With a session
// recorder attached it is the full per-operator counter and span report —
// every counter of the obs taxonomy plus the phase spans, accumulated across
// every run and query the recorder observed.
//
// Without a recorder, Stats synthesises a reduced fallback view from what
// the engine and collector retain anyway, so it never returns nil. The
// fallback covers exactly rows_out (from the engine's per-operator row
// counts), assoc_rows, and prov_bytes (from the captured run), plus
// per-operator elapsed times; rows_in, expr_evals, keys_hashed, enc_bytes,
// and all spans read as zero, and the view is per-capture rather than
// session-cumulative. Callers needing the full taxonomy must attach a
// recorder (pebble.WithRecorder) before running.
func (c *Captured) Stats() *obs.Stats {
	if c.rec != nil {
		return c.rec.Snapshot()
	}
	st := &obs.Stats{}
	for _, os := range c.Result.Stats {
		op := obs.OpStat{OID: os.OID, Type: string(os.Type), Elapsed: os.Elapsed}
		op.Counters[obs.RowsOut] = int64(os.Rows)
		if c.Provenance != nil {
			if pop, ok := c.Provenance.Op(os.OID); ok {
				op.Counters[obs.AssocRows] = int64(pop.AssocCount())
				op.Counters[obs.ProvBytes] = pop.Sizes().Total()
			}
		}
		st.Ops = append(st.Ops, op)
	}
	return st
}

// Run executes the pipeline without provenance capture (plain Spark
// semantics, the baseline bars of Figs. 6 and 7). It is RunContext with a
// background context.
func (s Session) Run(p *engine.Pipeline, inputs map[string]*engine.Dataset) (*engine.Result, error) {
	return s.RunContext(context.Background(), p, inputs)
}

// RunContext is Run with cooperative cancellation: the engine checks the
// context at every morsel boundary, so cancelling ctx stops the run from
// scheduling new work promptly (see engine.RunContext).
func (s Session) RunContext(ctx context.Context, p *engine.Pipeline, inputs map[string]*engine.Dataset) (*engine.Result, error) {
	if err := s.maybeAnalyze(p, inputs); err != nil {
		return nil, err
	}
	return engine.RunContext(ctx, p, inputs, s.options())
}

func (s Session) maybeAnalyze(p *engine.Pipeline, inputs map[string]*engine.Dataset) error {
	if !s.AnalyzeFirst {
		return nil
	}
	_, err := engine.Analyze(p, engine.InferInputTypes(inputs))
	return err
}

// Capture executes the pipeline with structural provenance capture. It is
// CaptureContext with a background context.
func (s Session) Capture(p *engine.Pipeline, inputs map[string]*engine.Dataset) (*Captured, error) {
	return s.CaptureContext(context.Background(), p, inputs)
}

// CaptureContext is Capture with cooperative cancellation: the engine checks
// the context at every morsel boundary, so a cancelled capture stops
// scheduling new morsels promptly and discards its partial provenance. This
// is the execution entry point pebbled's async jobs run through.
func (s Session) CaptureContext(ctx context.Context, p *engine.Pipeline, inputs map[string]*engine.Dataset) (*Captured, error) {
	if err := s.maybeAnalyze(p, inputs); err != nil {
		return nil, err
	}
	res, run, err := provenance.CaptureContext(ctx, p, inputs, s.options())
	if err != nil {
		return nil, err
	}
	return &Captured{Pipeline: p, Result: res, Provenance: run, rec: s.Recorder}, nil
}

// QueryResult is the answer to one structural provenance question.
type QueryResult struct {
	// Matched is the backtracing structure the tree-pattern produced on the
	// result data (the right tree of Fig. 2, per matched item).
	Matched *backtrace.Structure
	// Traced maps each source operator to its backtracing structure on the
	// input (the left trees of Fig. 2).
	Traced *backtrace.Result
	// Sources resolves provenance identifiers to the annotated source rows.
	Sources map[int]*engine.Dataset
}

// Query matches the tree-pattern against the captured result and backtraces
// the matches to the inputs (Alg. 1 over the captured operator provenance).
func (c *Captured) Query(pattern *treepattern.Pattern) (*QueryResult, error) {
	matched := pattern.MatchObserved(c.Result.Output, c.rec)
	return c.QueryStructure(matched)
}

// QueryStructure backtraces an explicitly built backtracing structure.
func (c *Captured) QueryStructure(b *backtrace.Structure) (*QueryResult, error) {
	sink, ok := c.Provenance.OpByID(provenance.OpID(c.Pipeline.Sink().ID()))
	if !ok {
		return nil, fmt.Errorf("core: sink operator %d missing from captured provenance", c.Pipeline.Sink().ID())
	}
	return c.TraceAt(sink, b)
}

// TraceAt backtraces a structure from a specific captured operator — the
// typed replacement for the free Trace(run, startOID, b) helper. Resolve
// the operator with c.Provenance.OpByID (or Operators()); tracing from an
// intermediate operator answers "which inputs fed *this* stage" instead of
// the sink's full result.
func (c *Captured) TraceAt(op *provenance.Operator, b *backtrace.Structure) (*QueryResult, error) {
	return c.TraceAtContext(context.Background(), op, b)
}

// TraceAtContext is TraceAt with cooperative cancellation: the context is
// checked at every operator step of the backtracing walk, so a cancelled
// query (e.g. a pebbled trace job whose submitter went away) stops before
// building further association indexes.
func (c *Captured) TraceAtContext(ctx context.Context, op *provenance.Operator, b *backtrace.Structure) (*QueryResult, error) {
	if op == nil {
		return nil, fmt.Errorf("core: TraceAt on nil operator")
	}
	traced, err := c.Tracer().TraceContext(ctx, op.OID, b)
	if err != nil {
		return nil, err
	}
	return &QueryResult{Matched: b, Traced: traced, Sources: c.Result.Sources}, nil
}

// QueryAll builds a full-coverage query: every result item with all its
// leaves contributing. Use-case analyses (auditing, data-usage patterns)
// merge such full queries across a workload.
func (c *Captured) QueryAll() (*QueryResult, error) {
	b := backtrace.NewStructure()
	for _, row := range c.Result.Output.Rows() {
		b.Add(row.ID, TreeFromValue(row.Value))
	}
	return c.QueryStructure(b)
}

// TreeFromValue builds a backtracing tree covering every path of the value,
// all contributing.
func TreeFromValue(v nested.Value) *backtrace.Tree {
	t := backtrace.NewTree()
	for _, p := range path.Enumerate(v, 0) {
		t.EnsureContributing(p)
	}
	return t
}

// SourceItem pairs a traced input item with its data.
type SourceItem struct {
	SourceOID int
	Item      *backtrace.Item
	Row       engine.Row
	Found     bool
}

// Items resolves every traced item against the source datasets, ordered by
// source operator and identifier.
func (q *QueryResult) Items() []SourceItem {
	var oids []int
	for oid := range q.Traced.BySource {
		oids = append(oids, oid)
	}
	sort.Ints(oids)
	var out []SourceItem
	for _, oid := range oids {
		src := q.Sources[oid]
		items := append([]*backtrace.Item(nil), q.Traced.BySource[oid].Items...)
		sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
		for _, it := range items {
			si := SourceItem{SourceOID: oid, Item: it}
			if src != nil {
				si.Row, si.Found = src.FindByID(it.ID)
			}
			out = append(out, si)
		}
	}
	return out
}

// Report renders the query result for humans: per source, the contributing
// input items with their backtracing trees (contributing vs influencing
// attributes and the operators that accessed/manipulated them).
func (q *QueryResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query matched %d result item(s)\n", q.Matched.Len())
	items := q.Items()
	if len(items) == 0 {
		sb.WriteString("no contributing input items\n")
		return sb.String()
	}
	lastOID := -1
	for _, si := range items {
		if si.SourceOID != lastOID {
			name := "?"
			if src := q.Sources[si.SourceOID]; src != nil {
				name = src.Name
			}
			fmt.Fprintf(&sb, "source operator %d (%s):\n", si.SourceOID, name)
			lastOID = si.SourceOID
		}
		fmt.Fprintf(&sb, "  input item %d", si.Item.ID)
		if si.Found {
			fmt.Fprintf(&sb, ": %s", truncate(si.Row.Value.String(), 120))
		}
		sb.WriteByte('\n')
		for _, line := range strings.Split(strings.TrimRight(si.Item.Tree.String(), "\n"), "\n") {
			if line != "" {
				sb.WriteString("    " + line + "\n")
			}
		}
	}
	return sb.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// jsonItem is the serialisable view of one traced input item.
type jsonItem struct {
	ID   int64           `json:"id"`
	Row  json.RawMessage `json:"row,omitempty"`
	Tree *backtrace.Tree `json:"tree"`
}

type jsonSource struct {
	SourceOID int        `json:"source_oid"`
	Dataset   string     `json:"dataset,omitempty"`
	Items     []jsonItem `json:"items"`
}

// JSON encodes the query result for machine consumption: the matched result
// count and, per source, the traced input items with their row data and
// backtracing trees. This is the exchange format a provenance front-end
// would consume.
func (q *QueryResult) JSON() ([]byte, error) {
	out := struct {
		Matched int          `json:"matched"`
		Sources []jsonSource `json:"sources"`
	}{Matched: q.Matched.Len()}
	var oids []int
	for oid := range q.Traced.BySource {
		oids = append(oids, oid)
	}
	sort.Ints(oids)
	for _, oid := range oids {
		src := jsonSource{SourceOID: oid}
		if ds := q.Sources[oid]; ds != nil {
			src.Dataset = ds.Name
		}
		items := append([]*backtrace.Item(nil), q.Traced.BySource[oid].Items...)
		sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
		for _, it := range items {
			ji := jsonItem{ID: it.ID, Tree: it.Tree}
			if ds := q.Sources[oid]; ds != nil {
				if row, ok := ds.FindByID(it.ID); ok {
					if data, err := row.Value.MarshalJSON(); err == nil {
						ji.Row = data
					}
				}
			}
			src.Items = append(src.Items, ji)
		}
		out.Sources = append(out.Sources, src)
	}
	return json.MarshalIndent(out, "", "  ")
}
