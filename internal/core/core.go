// Package core is the "Pebble Core" module of the system architecture
// (Fig. 5): it ties the capture submodule (running pipelines under
// structural provenance capture) to the query submodule (tree-pattern
// matching followed by backtracing), realising the paper's holistic
// meet-in-the-middle approach — eager lightweight capture during execution,
// succinct backtracing at query time.
package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"pebble/internal/backtrace"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/path"
	"pebble/internal/provenance"
	"pebble/internal/treepattern"
)

// Session configures capture and query executions.
type Session struct {
	// Partitions is the logical data parallelism of pipeline runs (default
	// engine.DefaultPartitions). It fixes identifiers and result order, not
	// the goroutine count.
	Partitions int
	// Workers is the physical worker-goroutine count (0 = NumCPU). Results
	// are byte-identical for every value; only wall time changes.
	Workers int
	// Sequential disables goroutine parallelism (equivalent to Workers=1).
	Sequential bool
	// AnalyzeFirst type-checks the plan against the input schemas before
	// executing, failing fast on unknown columns and type errors.
	AnalyzeFirst bool
}

func (s Session) options() engine.Options {
	parts := s.Partitions
	if parts < 1 {
		parts = engine.DefaultPartitions
	}
	return engine.Options{Partitions: parts, Workers: s.Workers, Sequential: s.Sequential}
}

// Captured is a pipeline execution with its structural provenance, ready for
// provenance queries.
type Captured struct {
	Pipeline   *engine.Pipeline
	Result     *engine.Result
	Provenance *provenance.Run

	tracerOnce sync.Once
	tracer     *backtrace.Tracer
}

// Tracer returns the query tracer over the captured provenance; its
// association indexes are built lazily and shared across all queries on this
// capture.
func (c *Captured) Tracer() *backtrace.Tracer {
	c.tracerOnce.Do(func() { c.tracer = backtrace.NewTracer(c.Provenance) })
	return c.tracer
}

// Run executes the pipeline without provenance capture (plain Spark
// semantics, the baseline bars of Figs. 6 and 7).
func (s Session) Run(p *engine.Pipeline, inputs map[string]*engine.Dataset) (*engine.Result, error) {
	if err := s.maybeAnalyze(p, inputs); err != nil {
		return nil, err
	}
	return engine.Run(p, inputs, s.options())
}

func (s Session) maybeAnalyze(p *engine.Pipeline, inputs map[string]*engine.Dataset) error {
	if !s.AnalyzeFirst {
		return nil
	}
	_, err := engine.Analyze(p, engine.InferInputTypes(inputs))
	return err
}

// Capture executes the pipeline with structural provenance capture.
func (s Session) Capture(p *engine.Pipeline, inputs map[string]*engine.Dataset) (*Captured, error) {
	if err := s.maybeAnalyze(p, inputs); err != nil {
		return nil, err
	}
	res, run, err := provenance.Capture(p, inputs, s.options())
	if err != nil {
		return nil, err
	}
	return &Captured{Pipeline: p, Result: res, Provenance: run}, nil
}

// QueryResult is the answer to one structural provenance question.
type QueryResult struct {
	// Matched is the backtracing structure the tree-pattern produced on the
	// result data (the right tree of Fig. 2, per matched item).
	Matched *backtrace.Structure
	// Traced maps each source operator to its backtracing structure on the
	// input (the left trees of Fig. 2).
	Traced *backtrace.Result
	// Sources resolves provenance identifiers to the annotated source rows.
	Sources map[int]*engine.Dataset
}

// Query matches the tree-pattern against the captured result and backtraces
// the matches to the inputs (Alg. 1 over the captured operator provenance).
func (c *Captured) Query(pattern *treepattern.Pattern) (*QueryResult, error) {
	matched := pattern.Match(c.Result.Output)
	return c.QueryStructure(matched)
}

// QueryStructure backtraces an explicitly built backtracing structure.
func (c *Captured) QueryStructure(b *backtrace.Structure) (*QueryResult, error) {
	traced, err := c.Tracer().Trace(c.Pipeline.Sink().ID(), b)
	if err != nil {
		return nil, err
	}
	return &QueryResult{Matched: b, Traced: traced, Sources: c.Result.Sources}, nil
}

// QueryAll builds a full-coverage query: every result item with all its
// leaves contributing. Use-case analyses (auditing, data-usage patterns)
// merge such full queries across a workload.
func (c *Captured) QueryAll() (*QueryResult, error) {
	b := backtrace.NewStructure()
	for _, row := range c.Result.Output.Rows() {
		b.Add(row.ID, TreeFromValue(row.Value))
	}
	return c.QueryStructure(b)
}

// TreeFromValue builds a backtracing tree covering every path of the value,
// all contributing.
func TreeFromValue(v nested.Value) *backtrace.Tree {
	t := backtrace.NewTree()
	for _, p := range path.Enumerate(v, 0) {
		t.EnsureContributing(p)
	}
	return t
}

// SourceItem pairs a traced input item with its data.
type SourceItem struct {
	SourceOID int
	Item      *backtrace.Item
	Row       engine.Row
	Found     bool
}

// Items resolves every traced item against the source datasets, ordered by
// source operator and identifier.
func (q *QueryResult) Items() []SourceItem {
	var oids []int
	for oid := range q.Traced.BySource {
		oids = append(oids, oid)
	}
	sort.Ints(oids)
	var out []SourceItem
	for _, oid := range oids {
		src := q.Sources[oid]
		items := append([]*backtrace.Item(nil), q.Traced.BySource[oid].Items...)
		sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
		for _, it := range items {
			si := SourceItem{SourceOID: oid, Item: it}
			if src != nil {
				si.Row, si.Found = src.FindByID(it.ID)
			}
			out = append(out, si)
		}
	}
	return out
}

// Report renders the query result for humans: per source, the contributing
// input items with their backtracing trees (contributing vs influencing
// attributes and the operators that accessed/manipulated them).
func (q *QueryResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query matched %d result item(s)\n", q.Matched.Len())
	items := q.Items()
	if len(items) == 0 {
		sb.WriteString("no contributing input items\n")
		return sb.String()
	}
	lastOID := -1
	for _, si := range items {
		if si.SourceOID != lastOID {
			name := "?"
			if src := q.Sources[si.SourceOID]; src != nil {
				name = src.Name
			}
			fmt.Fprintf(&sb, "source operator %d (%s):\n", si.SourceOID, name)
			lastOID = si.SourceOID
		}
		fmt.Fprintf(&sb, "  input item %d", si.Item.ID)
		if si.Found {
			fmt.Fprintf(&sb, ": %s", truncate(si.Row.Value.String(), 120))
		}
		sb.WriteByte('\n')
		for _, line := range strings.Split(strings.TrimRight(si.Item.Tree.String(), "\n"), "\n") {
			if line != "" {
				sb.WriteString("    " + line + "\n")
			}
		}
	}
	return sb.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// jsonItem is the serialisable view of one traced input item.
type jsonItem struct {
	ID   int64           `json:"id"`
	Row  json.RawMessage `json:"row,omitempty"`
	Tree *backtrace.Tree `json:"tree"`
}

type jsonSource struct {
	SourceOID int        `json:"source_oid"`
	Dataset   string     `json:"dataset,omitempty"`
	Items     []jsonItem `json:"items"`
}

// JSON encodes the query result for machine consumption: the matched result
// count and, per source, the traced input items with their row data and
// backtracing trees. This is the exchange format a provenance front-end
// would consume.
func (q *QueryResult) JSON() ([]byte, error) {
	out := struct {
		Matched int          `json:"matched"`
		Sources []jsonSource `json:"sources"`
	}{Matched: q.Matched.Len()}
	var oids []int
	for oid := range q.Traced.BySource {
		oids = append(oids, oid)
	}
	sort.Ints(oids)
	for _, oid := range oids {
		src := jsonSource{SourceOID: oid}
		if ds := q.Sources[oid]; ds != nil {
			src.Dataset = ds.Name
		}
		items := append([]*backtrace.Item(nil), q.Traced.BySource[oid].Items...)
		sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
		for _, it := range items {
			ji := jsonItem{ID: it.ID, Tree: it.Tree}
			if ds := q.Sources[oid]; ds != nil {
				if row, ok := ds.FindByID(it.ID); ok {
					if data, err := row.Value.MarshalJSON(); err == nil {
						ji.Row = data
					}
				}
			}
			src.Items = append(src.Items, ji)
		}
		out.Sources = append(out.Sources, src)
	}
	return json.MarshalIndent(out, "", "  ")
}
