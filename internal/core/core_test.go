package core_test

import (
	"encoding/json"
	"strings"
	"testing"

	"pebble/internal/core"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/path"
	"pebble/internal/treepattern"
	"pebble/internal/workload"
)

func TestSessionCaptureAndQuery(t *testing.T) {
	s := core.Session{Partitions: 2}
	cap, err := s.Capture(workload.ExamplePipeline(), workload.ExampleInput(2))
	if err != nil {
		t.Fatal(err)
	}
	if cap.Result.Output.Len() != 3 {
		t.Fatalf("result rows = %d, want 3", cap.Result.Output.Len())
	}
	pattern := treepattern.New(
		treepattern.Desc("id_str").WithEq(nested.StringVal("lp")),
		treepattern.Child("tweets",
			treepattern.Child("text").WithEq(nested.StringVal("Hello World")).WithCount(2, 2),
		),
	)
	q, err := cap.Query(pattern)
	if err != nil {
		t.Fatal(err)
	}
	if q.Matched.Len() != 1 {
		t.Fatalf("matched = %d, want 1", q.Matched.Len())
	}
	items := q.Items()
	if len(items) != 2 {
		t.Fatalf("traced items = %d, want 2", len(items))
	}
	for _, si := range items {
		if !si.Found {
			t.Error("traced item not resolved against source")
		}
		text, _ := si.Row.Value.Get("text")
		if s, _ := text.AsString(); s != "Hello World" {
			t.Errorf("resolved wrong tweet %q", s)
		}
	}
	rep := q.Report()
	for _, want := range []string{"matched 1 result item", "Hello World", "retweet_cnt (influencing)", "contributing"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestSessionRunWithoutCapture(t *testing.T) {
	s := core.Session{Partitions: 2}
	res, err := s.Run(workload.ExamplePipeline(), workload.ExampleInput(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Len() != 3 {
		t.Errorf("rows = %d", res.Output.Len())
	}
}

func TestQueryAllCoversEverySourceItemInUse(t *testing.T) {
	s := core.Session{Partitions: 2}
	cap, err := s.Capture(workload.ExamplePipeline(), workload.ExampleInput(2))
	if err != nil {
		t.Fatal(err)
	}
	q, err := cap.QueryAll()
	if err != nil {
		t.Fatal(err)
	}
	// Upper branch contributes the 4 tweets with retweet_cnt 0; lower branch
	// the 3 tweets with at least one mention.
	if got := q.Traced.Structure(1).Len(); got != 4 {
		t.Errorf("upper branch items = %d, want 4", got)
	}
	if got := q.Traced.Structure(4).Len(); got != 3 {
		t.Errorf("lower branch items = %d, want 3", got)
	}
}

func TestTreeFromValue(t *testing.T) {
	v := nested.Item(
		nested.F("a", nested.Int(1)),
		nested.F("b", nested.Bag(nested.Item(nested.F("x", nested.Int(2))))),
	)
	tr := core.TreeFromValue(v)
	for _, p := range []string{"a", "b", "b[1].x"} {
		nodes := tr.Find(path.MustParse(p))
		if len(nodes) != 1 || !nodes[0].Contributing {
			t.Errorf("TreeFromValue missing contributing %s:\n%s", p, tr)
		}
	}
}

func TestEmptyQueryReport(t *testing.T) {
	s := core.Session{Partitions: 1}
	cap, err := s.Capture(workload.ExamplePipeline(), workload.ExampleInput(1))
	if err != nil {
		t.Fatal(err)
	}
	pattern := treepattern.New(treepattern.Desc("id_str").WithEq(nested.StringVal("nobody")))
	q, err := cap.Query(pattern)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.Report(), "no contributing input items") {
		t.Errorf("empty report wrong:\n%s", q.Report())
	}
}

func TestQueryResultJSON(t *testing.T) {
	s := core.Session{Partitions: 2}
	cap, err := s.Capture(workload.ExamplePipeline(), workload.ExampleInput(2))
	if err != nil {
		t.Fatal(err)
	}
	q, err := cap.Query(treepattern.New(
		treepattern.Desc("id_str").WithEq(nested.StringVal("lp")),
		treepattern.Child("tweets",
			treepattern.Child("text").WithEq(nested.StringVal("Hello World")).WithCount(2, 2)),
	))
	if err != nil {
		t.Fatal(err)
	}
	data, err := q.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Matched int `json:"matched"`
		Sources []struct {
			SourceOID int    `json:"source_oid"`
			Dataset   string `json:"dataset"`
			Items     []struct {
				ID   int64           `json:"id"`
				Row  json.RawMessage `json:"row"`
				Tree struct {
					Children []struct {
						Name         string `json:"name"`
						Contributing bool   `json:"contributing"`
					} `json:"children"`
				} `json:"tree"`
			} `json:"items"`
		} `json:"sources"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if decoded.Matched != 1 || len(decoded.Sources) != 1 {
		t.Fatalf("structure wrong: %s", data)
	}
	src := decoded.Sources[0]
	if src.Dataset != "tweets.json" || len(src.Items) != 2 {
		t.Fatalf("source wrong: %s", data)
	}
	names := map[string]bool{}
	for _, c := range src.Items[0].Tree.Children {
		names[c.Name] = true
	}
	for _, want := range []string{"text", "user", "retweet_cnt"} {
		if !names[want] {
			t.Errorf("tree JSON missing %q:\n%s", want, data)
		}
	}
	if len(src.Items[0].Row) == 0 {
		t.Error("row data missing")
	}
}

func TestSessionAnalyzeFirst(t *testing.T) {
	bad := core.Session{Partitions: 1, AnalyzeFirst: true}
	p := workload.ExamplePipeline()
	// Valid plan passes.
	if _, err := bad.Capture(p, workload.ExampleInput(1)); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	// Invalid plan fails before executing.
	broken := core.Session{Partitions: 1, AnalyzeFirst: true}
	p2 := pipelineWithTypo()
	if _, err := broken.Run(p2, workload.ExampleInput(1)); err == nil {
		t.Error("typo plan accepted with AnalyzeFirst")
	}
	// Without AnalyzeFirst the engine runs it (missing columns are null).
	lax := core.Session{Partitions: 1}
	if _, err := lax.Run(pipelineWithTypo(), workload.ExampleInput(1)); err != nil {
		t.Errorf("lax session rejected runnable plan: %v", err)
	}
}

func pipelineWithTypo() *engine.Pipeline {
	p := engine.NewPipeline()
	p.Select(p.Source("tweets.json"), engine.Column("x", "text_typo"))
	return p
}
