package core_test

import (
	"io"
	"runtime"
	"strings"
	"testing"

	"pebble/internal/core"
	"pebble/internal/obs"
	"pebble/internal/workload"
)

// captureRendered runs the example workload under capture with a fresh
// recorder at the given worker count, serialises the provenance through the
// observed codec path, and returns the timing-free stats rendering.
func captureRendered(t *testing.T, workers int) string {
	t.Helper()
	rec := obs.NewRecorder()
	s := core.NewSession(
		core.WithPartitions(4),
		core.WithWorkers(workers),
		core.WithRecorder(rec),
	)
	cap, err := s.Capture(workload.ExamplePipeline(), workload.ExampleInput(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cap.Provenance.WriteToObserved(io.Discard, rec); err != nil {
		t.Fatal(err)
	}
	return rec.Snapshot().Render(false)
}

// TestCounterTotalsDeterministicAcrossWorkers is the observability
// determinism regression: every counter total (rows, expression evals,
// hashed keys, association rows, provenance and codec bytes) must be
// byte-identical for Workers 1, 2, and NumCPU. Timings are wall-clock and
// excluded via Render(false).
func TestCounterTotalsDeterministicAcrossWorkers(t *testing.T) {
	want := captureRendered(t, 1)
	for _, w := range []int{2, runtime.NumCPU()} {
		if got := captureRendered(t, w); got != want {
			t.Errorf("counter totals differ between Workers=1 and Workers=%d:\n--- w=1\n%s\n--- w=%d\n%s", w, want, w, got)
		}
	}
	// The render must carry real data, not an empty table.
	if !strings.Contains(want, "aggregate") || !strings.Contains(want, "prov_bytes") {
		t.Fatalf("unexpected stats rendering:\n%s", want)
	}
}

// TestCapturedStatsWithAndWithoutRecorder covers both Stats paths: the full
// recorder snapshot and the reduced synthesis from engine row counts.
func TestCapturedStatsWithAndWithoutRecorder(t *testing.T) {
	rec := obs.NewRecorder()
	withRec, err := core.NewSession(core.WithPartitions(2), core.WithRecorder(rec)).
		Capture(workload.ExamplePipeline(), workload.ExampleInput(2))
	if err != nil {
		t.Fatal(err)
	}
	st := withRec.Stats()
	if len(st.Ops) == 0 || st.Total(obs.RowsIn) == 0 {
		t.Fatalf("recorder-backed stats empty: %+v", st)
	}
	if st.SpanTotal(obs.SpanSchedule) <= 0 {
		t.Error("schedule span missing from recorder-backed stats")
	}

	plain, err := core.NewSession(core.WithPartitions(2)).
		Capture(workload.ExamplePipeline(), workload.ExampleInput(2))
	if err != nil {
		t.Fatal(err)
	}
	syn := plain.Stats()
	if len(syn.Ops) != len(st.Ops) {
		t.Fatalf("synthesised stats cover %d ops, recorder %d", len(syn.Ops), len(st.Ops))
	}
	for i, op := range syn.Ops {
		if op.Counter(obs.RowsOut) != st.Ops[i].Counter(obs.RowsOut) {
			t.Errorf("op %d rows_out: synthesised %d != recorded %d",
				op.OID, op.Counter(obs.RowsOut), st.Ops[i].Counter(obs.RowsOut))
		}
		if op.Counter(obs.ProvBytes) != st.Ops[i].Counter(obs.ProvBytes) {
			t.Errorf("op %d prov_bytes: synthesised %d != recorded %d",
				op.OID, op.Counter(obs.ProvBytes), st.Ops[i].Counter(obs.ProvBytes))
		}
	}
}

// TestTraceAtIntermediateOperator traces from a non-sink operator through
// the typed OpByID/TraceAt path.
func TestTraceAtIntermediateOperator(t *testing.T) {
	s := core.NewSession(core.WithPartitions(2))
	cap, err := s.Capture(workload.ExamplePipeline(), workload.ExampleInput(2))
	if err != nil {
		t.Fatal(err)
	}
	// Full query through the sink first, as reference.
	ref, err := cap.QueryAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Items()) == 0 {
		t.Fatal("reference query traced nothing")
	}
	// The same sink resolved explicitly.
	sink, ok := cap.Provenance.OpByID(cap.Provenance.Operators()[len(cap.Provenance.Operators())-1].ID())
	if !ok {
		t.Fatal("OpByID failed for an operator listed by Operators()")
	}
	q, err := cap.TraceAt(sink, ref.Matched)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items()) != len(ref.Items()) {
		t.Errorf("TraceAt(sink) traced %d items, QueryAll %d", len(q.Items()), len(ref.Items()))
	}
	if _, err := cap.TraceAt(nil, ref.Matched); err == nil {
		t.Error("TraceAt(nil) should fail")
	}
}

// TestSessionNewDatasetInheritance pins the partition-precedence contract:
// explicit positive parts > session partitions > engine default.
func TestSessionNewDatasetInheritance(t *testing.T) {
	vals := workload.ExampleTweets()
	s := core.NewSession(core.WithPartitions(3))
	if got := len(s.NewDataset("x", vals, 0).Partitions); got != 3 {
		t.Errorf("parts=0 under a 3-partition session: %d partitions, want 3", got)
	}
	if got := len(s.NewDataset("x", vals, 2).Partitions); got != 2 {
		t.Errorf("explicit parts=2: %d partitions, want 2", got)
	}
	def := core.NewSession()
	// The engine clamps to len(values) when there are fewer rows than
	// partitions; the example data has 5 tweets.
	if got := len(def.NewDataset("x", vals, 0).Partitions); got != len(vals) {
		t.Errorf("default session parts=0: %d partitions, want %d (clamped)", got, len(vals))
	}
}
