package core

import (
	"context"
	"errors"
	"testing"

	"pebble/internal/engine"
	"pebble/internal/nested"
)

// TestPartitionPrecedence pins the single precedence rule — explicit >
// session > engine default — across every way a session can be built,
// including the WithSequential form that historically resolved dataset
// partitions through a different code path than execution partitions.
// Session.NewDataset and Session.options must always agree.
func TestPartitionPrecedence(t *testing.T) {
	cases := []struct {
		name     string
		session  Session
		explicit int
		want     int
	}{
		{"all-defaults", NewSession(), 0, engine.DefaultPartitions},
		{"explicit-wins-over-default", NewSession(), 3, 3},
		{"session-wins-over-default", NewSession(WithPartitions(5)), 0, 5},
		{"explicit-wins-over-session", NewSession(WithPartitions(5)), 7, 7},
		{"negative-explicit-falls-through", NewSession(WithPartitions(5)), -2, 5},
		{"sequential-inherits-default", NewSession(WithSequential()), 0, engine.DefaultPartitions},
		{"sequential-with-session-parts", NewSession(WithSequential(), WithPartitions(4)), 0, 4},
		{"sequential-explicit", NewSession(WithSequential()), 2, 2},
		{"workers-do-not-leak-into-parts", NewSession(WithWorkers(9)), 0, engine.DefaultPartitions},
		{"zero-session-parts-is-default", Session{Partitions: 0, Sequential: true}, 0, engine.DefaultPartitions},
		{"negative-session-parts-is-default", Session{Partitions: -4}, 0, engine.DefaultPartitions},
	}
	// Enough values that engine.NewDataset's parts-capped-at-len clamp never
	// interferes with the precedence being tested.
	vals := make([]nested.Value, 64)
	for i := range vals {
		vals[i] = nested.Item(nested.F("n", nested.Int(int64(i))))
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.session.ResolvePartitions(tc.explicit); got != tc.want {
				t.Errorf("ResolvePartitions(%d) = %d, want %d", tc.explicit, got, tc.want)
			}
			ds := tc.session.NewDataset("d", vals, tc.explicit)
			if got := len(ds.Partitions); got != tc.want {
				t.Errorf("NewDataset parts = %d, want %d", got, tc.want)
			}
			// The execution options must agree with a parts<=0 dataset: a
			// session can never run with a partition count different from
			// the datasets it built (when parts was inherited).
			if tc.explicit <= 0 {
				if got := tc.session.options().Partitions; got != tc.want {
					t.Errorf("options().Partitions = %d, want %d (disagrees with NewDataset)", got, tc.want)
				}
			}
		})
	}
}

// TestSessionContextEntryPoints covers RunContext/CaptureContext delegation
// and cancellation surfacing through the Session layer.
func TestSessionContextEntryPoints(t *testing.T) {
	vals := []nested.Value{
		nested.Item(nested.F("n", nested.Int(1))),
		nested.Item(nested.F("n", nested.Int(2))),
	}
	s := NewSession(WithPartitions(2))
	inputs := map[string]*engine.Dataset{"in": s.NewDataset("in", vals, 0)}
	p := engine.NewPipeline()
	p.Filter(p.Source("in"), engine.Gt(engine.Col("n"), engine.LitInt(1)))

	if _, err := s.RunContext(context.Background(), p, inputs); err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	cap, err := s.CaptureContext(context.Background(), p, inputs)
	if err != nil {
		t.Fatalf("CaptureContext: %v", err)
	}
	if cap.Result.Output.Len() != 1 {
		t.Errorf("rows = %d, want 1", cap.Result.Output.Len())
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(cancelled, p, inputs); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext(cancelled) = %v, want context.Canceled", err)
	}
	if _, err := s.CaptureContext(cancelled, p, inputs); !errors.Is(err, context.Canceled) {
		t.Errorf("CaptureContext(cancelled) = %v, want context.Canceled", err)
	}
}
