// Package obs is the execution observability layer: per-operator counters
// and monotonic span timings recorded during pipeline runs and provenance
// queries. The paper's whole evaluation (Sec. 7.3) is about overheads —
// capture time over baseline, provenance size, backtracing latency — and
// this package lets the system attribute those costs to individual
// operators from the inside instead of wrapping wall clocks around whole
// runs.
//
// Design constraints, in order:
//
//   - A nil *Recorder is the fast path: every method nil-checks its
//     receiver, so instrumented code calls unconditionally and a session
//     without a recorder pays one predictable branch per call site. Call
//     sites in the engine are bulk — once per partition morsel, never per
//     row — which keeps the disabled path well under the 2% budget
//     enforced by `make bench-overhead`.
//   - Counter totals are deterministic: they count data-dependent facts
//     (rows, association rows, bytes) that are byte-identical for every
//     Workers setting, and merging shards sums order-insensitively. Span
//     and per-operator timings are wall-clock and explicitly excluded from
//     determinism guarantees (Stats.Render(false) omits them).
//   - Lock-cheap recording: the operator registry is a map guarded by an
//     RWMutex (write-locked only when an operator registers), and the
//     counter cells are per-partition shards bumped with atomics — distinct
//     morsels hit distinct cache lines in the common case, and the atomics
//     keep rare shard collisions (an operator touching more partition
//     indexes than it announced) safe instead of racy. Shards are merged
//     into totals only at Snapshot time.
//
// The package depends on the standard library only and is imported by the
// engine, so it must not import any pebble package.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter enumerates the per-operator counters — the taxonomy of DESIGN.md
// §7. All counters are data-dependent and deterministic across worker
// counts.
type Counter uint8

const (
	// RowsIn counts the rows an operator consumed from its input(s).
	RowsIn Counter = iota
	// RowsOut counts the rows an operator produced.
	RowsOut
	// ExprEvals counts expression-node evaluations (static node count per
	// row, see engine.EvalOps — an upper bound under short-circuiting).
	ExprEvals
	// KeysHashed counts shuffle keys hashed (join, aggregate, distinct).
	KeysHashed
	// AssocRows counts provenance association rows written to the capture
	// sink (zero when capture is off).
	AssocRows
	// ProvBytes is the storage footprint of the captured provenance per
	// operator (the deterministic Sizes model of Fig. 8), recorded at
	// collector Finish.
	ProvBytes
	// BytesEncoded counts serialised codec bytes per operator, recorded
	// when a run is persisted through WriteToObserved.
	BytesEncoded

	// NumCounters is the number of counters (array size, not a counter).
	NumCounters
)

var counterNames = [NumCounters]string{
	"rows_in", "rows_out", "expr_evals", "keys_hashed",
	"assoc_rows", "prov_bytes", "enc_bytes",
}

// String returns the snake_case column name of the counter.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "counter?"
}

// Span enumerates the global phase timings recorded around whole stages
// rather than per operator.
type Span uint8

const (
	// SpanSchedule is one pipeline execution end to end (wave scheduling
	// plus all operator evals).
	SpanSchedule Span = iota
	// SpanCollectorFinish is the provenance collector's shard merge.
	SpanCollectorFinish
	// SpanPatternMatch is the tree-pattern matching phase of a query.
	SpanPatternMatch
	// SpanBacktrace is the backtracing walk of a query (Alg. 1).
	SpanBacktrace
	// SpanRunLoad is the deserialisation of a persisted provenance run
	// (eager or lazy load, recorded by the Observed read variants).
	SpanRunLoad
	// SpanIndexBuild is per-operator association index construction (or the
	// sidecar load that replaces it) inside the tracer.
	SpanIndexBuild
	// SpanPatternCompile is the one-time compilation of a tree pattern into
	// its instruction form.
	SpanPatternCompile

	// NumSpans is the number of spans (array size, not a span).
	NumSpans
)

var spanNames = [NumSpans]string{
	"schedule", "collector_finish", "pattern_match", "backtrace",
	"run_load", "index_build", "pattern_compile",
}

// String returns the snake_case name of the span.
func (s Span) String() string {
	if int(s) < len(spanNames) {
		return spanNames[s]
	}
	return "span?"
}

// opShard is one partition's counter cells. Distinct morsels write distinct
// shards in the common case; atomics make the exceptions safe.
type opShard struct {
	ctr [NumCounters]atomic.Int64
}

// opRec is one operator's recorded state.
type opRec struct {
	typ     string // operator type; written only under Recorder.mu
	shards  []opShard
	elapsed atomic.Int64 // summed operator wall time, ns
}

// spanCell accumulates one span's total duration and entry count.
type spanCell struct {
	ns    atomic.Int64
	count atomic.Int64
}

// Event is one observability happening, pushed synchronously to the
// recorder's Tap as it occurs: a phase span opening or closing, or an
// operator announcing itself before execution. Events exist for live
// progress reporting (pebbled streams them to job watchers); the counter
// and span totals remain the source of truth for measurements.
type Event struct {
	// Kind is "span_start", "span_end", or "op".
	Kind string
	// Span is the phase name for span events ("" for op events).
	Span string
	// OID and Type identify the operator for op events.
	OID  int
	Type string
	// Elapsed is the span duration; set on span_end only.
	Elapsed time.Duration
}

// Tap receives events synchronously from the recording goroutine. A tap
// must be fast and must not call back into the recorder; fan-out and
// buffering are the tap's job (see internal/server's job event log).
type Tap func(Event)

// Recorder collects execution metrics. The zero value is not usable — use
// NewRecorder. A nil *Recorder is valid on every method and does nothing.
//
// A Recorder accumulates across runs and queries until Reset; attach a
// fresh one per measurement when isolation matters. Concurrent use within
// one run/query is safe; sharing one recorder between concurrently
// executing runs is not supported (operator registration may race with the
// other run's recording).
type Recorder struct {
	mu    sync.RWMutex
	ops   map[int]*opRec // guarded by mu
	spans [NumSpans]spanCell

	// tap, when set, receives an Event for every span start/end and
	// operator registration. Stored atomically so the hot paths pay one
	// load; SetTap before sharing the recorder with a run.
	tap atomic.Value // of Tap
}

// SetTap installs the event tap (nil clears it). Install before the run
// starts; events already in flight may or may not reach a tap swapped
// mid-run.
func (r *Recorder) SetTap(tap Tap) {
	if r == nil {
		return
	}
	r.tap.Store(tap)
}

// emit pushes an event to the tap, if any.
func (r *Recorder) emit(ev Event) {
	if t, ok := r.tap.Load().(Tap); ok && t != nil {
		t(ev)
	}
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{ops: make(map[int]*opRec)}
}

// StartOp registers an operator before its counters are bumped. typ may be
// empty (a later StartOp fills it in); parts sizes the shard array. Calling
// StartOp again for the same operator keeps the accumulated counts and
// grows the shard array if needed — callers must not record concurrently
// with a growing StartOp of the same operator.
func (r *Recorder) StartOp(oid int, typ string, parts int) {
	if r == nil {
		return
	}
	r.ensure(oid, typ, parts)
	r.emit(Event{Kind: "op", OID: oid, Type: typ})
}

func (r *Recorder) ensure(oid int, typ string, parts int) *opRec {
	if parts < 1 {
		parts = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	op := r.ops[oid]
	if op == nil {
		op = &opRec{typ: typ, shards: make([]opShard, parts)}
		r.ops[oid] = op
		return op
	}
	if op.typ == "" {
		op.typ = typ
	}
	if parts > len(op.shards) {
		grown := make([]opShard, parts)
		for i := range op.shards {
			for c := range grown[i].ctr {
				grown[i].ctr[c].Store(op.shards[i].ctr[c].Load())
			}
		}
		op.shards = grown
	}
	return op
}

// get returns the operator's record, registering it on first use (a query
// over a reloaded run has no StartOp to announce operators).
func (r *Recorder) get(oid int) *opRec {
	r.mu.RLock()
	op := r.ops[oid]
	r.mu.RUnlock()
	if op == nil {
		op = r.ensure(oid, "", 1)
	}
	return op
}

// Add bumps a counter for (operator, partition) by n. Call it in bulk —
// once per partition morsel — not per row.
func (r *Recorder) Add(oid, part int, c Counter, n int64) {
	if r == nil || n == 0 {
		return
	}
	op := r.get(oid)
	if part < 0 {
		part = 0
	}
	op.shards[part%len(op.shards)].ctr[c].Add(n)
}

// AddOpTime adds wall time to an operator's elapsed total. Timings are
// wall-clock and excluded from determinism guarantees.
func (r *Recorder) AddOpTime(oid int, d time.Duration) {
	if r == nil {
		return
	}
	r.get(oid).elapsed.Add(int64(d))
}

// StartSpan begins timing a span and returns the stop function. The clock
// calls live here so instrumented packages under the determinism analyzer
// never call time.Now themselves:
//
//	defer rec.StartSpan(obs.SpanBacktrace)()
func (r *Recorder) StartSpan(s Span) func() {
	if r == nil {
		return func() {}
	}
	r.emit(Event{Kind: "span_start", Span: s.String()})
	start := time.Now()
	return func() {
		elapsed := time.Since(start)
		cell := &r.spans[s]
		cell.ns.Add(elapsed.Nanoseconds())
		cell.count.Add(1)
		r.emit(Event{Kind: "span_end", Span: s.String(), Elapsed: elapsed})
	}
}

// Reset clears all recorded state, keeping the recorder usable.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ops = make(map[int]*opRec)
	r.mu.Unlock()
	for i := range r.spans {
		r.spans[i].ns.Store(0)
		r.spans[i].count.Store(0)
	}
}

// OpStat is one operator's merged totals.
type OpStat struct {
	OID      int
	Type     string
	Counters [NumCounters]int64
	Elapsed  time.Duration
}

// Counter returns one merged counter total.
func (o OpStat) Counter(c Counter) int64 { return o.Counters[c] }

// SpanStat is one span's merged totals.
type SpanStat struct {
	Span  Span
	Total time.Duration
	Count int64
}

// Stats is an immutable snapshot of a recorder.
type Stats struct {
	// Ops lists per-operator totals ordered by operator id.
	Ops []OpStat
	// Spans lists the spans that were entered at least once, in Span order.
	Spans []SpanStat
}

// Snapshot merges the shards into totals. The recorder keeps recording;
// the snapshot is a consistent-enough view for reporting (counters still
// being bumped concurrently may or may not be included).
func (r *Recorder) Snapshot() *Stats {
	s := &Stats{}
	if r == nil {
		return s
	}
	r.mu.RLock()
	oids := make([]int, 0, len(r.ops))
	for oid := range r.ops {
		oids = append(oids, oid)
	}
	sort.Ints(oids)
	for _, oid := range oids {
		op := r.ops[oid]
		st := OpStat{OID: oid, Type: op.typ, Elapsed: time.Duration(op.elapsed.Load())}
		for i := range op.shards {
			for c := range st.Counters {
				st.Counters[c] += op.shards[i].ctr[c].Load()
			}
		}
		s.Ops = append(s.Ops, st)
	}
	r.mu.RUnlock()
	for i := range r.spans {
		n := r.spans[i].count.Load()
		if n == 0 {
			continue
		}
		s.Spans = append(s.Spans, SpanStat{
			Span:  Span(i),
			Total: time.Duration(r.spans[i].ns.Load()),
			Count: n,
		})
	}
	return s
}

// Op returns the stat of one operator.
func (s *Stats) Op(oid int) (OpStat, bool) {
	for _, st := range s.Ops {
		if st.OID == oid {
			return st, true
		}
	}
	return OpStat{}, false
}

// SpanTotal returns the accumulated duration of one span (0 when never
// entered).
func (s *Stats) SpanTotal(sp Span) time.Duration {
	for _, st := range s.Spans {
		if st.Span == sp {
			return st.Total
		}
	}
	return 0
}

// Total sums one counter across all operators.
func (s *Stats) Total(c Counter) int64 {
	var n int64
	for _, st := range s.Ops {
		n += st.Counters[c]
	}
	return n
}
