package obs

import (
	"fmt"
	"strings"
)

// Render formats the snapshot as the paper-style per-operator table. With
// withTimings the wall-clock columns (per-operator elapsed, span totals)
// are included; without, the output contains only deterministic counters
// and is byte-identical for every Workers setting — the form golden and
// determinism tests pin.
func (s *Stats) Render(withTimings bool) string {
	var sb strings.Builder
	sb.WriteString("per-operator execution metrics\n")
	fmt.Fprintf(&sb, "%-4s %-10s %12s %12s %12s %12s %12s %12s %12s",
		"op", "type",
		RowsIn, RowsOut, ExprEvals, KeysHashed, AssocRows, ProvBytes, BytesEncoded)
	if withTimings {
		fmt.Fprintf(&sb, " %14s", "elapsed")
	}
	sb.WriteByte('\n')
	for _, op := range s.Ops {
		typ := op.Type
		if typ == "" {
			typ = "?"
		}
		fmt.Fprintf(&sb, "%-4d %-10s", op.OID, typ)
		for c := Counter(0); c < NumCounters; c++ {
			fmt.Fprintf(&sb, " %12d", op.Counters[c])
		}
		if withTimings {
			fmt.Fprintf(&sb, " %14s", op.Elapsed)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "totals: rows_out=%d assoc_rows=%d prov_bytes=%d\n",
		s.Total(RowsOut), s.Total(AssocRows), s.Total(ProvBytes))
	if withTimings && len(s.Spans) > 0 {
		parts := make([]string, 0, len(s.Spans))
		for _, sp := range s.Spans {
			parts = append(parts, fmt.Sprintf("%s=%s/%d", sp.Span, sp.Total, sp.Count))
		}
		sb.WriteString("spans: " + strings.Join(parts, " ") + "\n")
		match, bt := s.SpanTotal(SpanPatternMatch), s.SpanTotal(SpanBacktrace)
		if q := match + bt; q > 0 {
			fmt.Fprintf(&sb, "query time: match %s (%.1f%%) + backtrace %s (%.1f%%)\n",
				match, 100*float64(match)/float64(q), bt, 100*float64(bt)/float64(q))
		}
		// Reload-path phases (lazy run load, index build/sidecar install,
		// pattern compilation) — the query-side split of the PR 6 fast path.
		load, idx, comp := s.SpanTotal(SpanRunLoad), s.SpanTotal(SpanIndexBuild), s.SpanTotal(SpanPatternCompile)
		if load+idx+comp > 0 {
			fmt.Fprintf(&sb, "query phases: run_load %s + index_build %s + pattern_compile %s\n",
				load, idx, comp)
		}
	}
	return sb.String()
}
