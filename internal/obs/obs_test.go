package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.StartOp(1, "filter", 4)
	r.Add(1, 0, RowsIn, 10)
	r.AddOpTime(1, time.Millisecond)
	r.StartSpan(SpanSchedule)()
	r.Reset()
	s := r.Snapshot()
	if len(s.Ops) != 0 || len(s.Spans) != 0 {
		t.Fatalf("nil recorder snapshot not empty: %+v", s)
	}
	if s.Render(true) == "" {
		t.Fatal("empty render")
	}
}

func TestCountersMergeAcrossShards(t *testing.T) {
	r := NewRecorder()
	r.StartOp(3, "join", 4)
	for part := 0; part < 4; part++ {
		r.Add(3, part, RowsIn, int64(10*(part+1)))
	}
	r.Add(3, 2, KeysHashed, 7)
	s := r.Snapshot()
	op, ok := s.Op(3)
	if !ok {
		t.Fatal("op 3 missing from snapshot")
	}
	if got := op.Counter(RowsIn); got != 100 {
		t.Fatalf("RowsIn = %d, want 100", got)
	}
	if got := op.Counter(KeysHashed); got != 7 {
		t.Fatalf("KeysHashed = %d, want 7", got)
	}
	if op.Type != "join" {
		t.Fatalf("Type = %q, want join", op.Type)
	}
}

// TestAddAutoRegisters covers query-side recording over reloaded runs,
// where no StartOp announces the operators.
func TestAddAutoRegisters(t *testing.T) {
	r := NewRecorder()
	r.Add(9, 5, RowsOut, 3) // part out of range of the 1-shard default
	s := r.Snapshot()
	if op, ok := s.Op(9); !ok || op.Counter(RowsOut) != 3 {
		t.Fatalf("auto-registered op: %+v ok=%v", s.Ops, ok)
	}
	// A later StartOp fills in the type and keeps the counts.
	r.StartOp(9, "select", 8)
	if op, _ := r.Snapshot().Op(9); op.Type != "select" || op.Counter(RowsOut) != 3 {
		t.Fatalf("after StartOp: %+v", op)
	}
}

func TestConcurrentAdds(t *testing.T) {
	r := NewRecorder()
	r.StartOp(1, "filter", 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add(1, g, RowsIn, 1)
				// Deliberately collide on shard 0 as well.
				r.Add(1, 0, RowsOut, 1)
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	op, _ := s.Op(1)
	if op.Counter(RowsIn) != 8000 || op.Counter(RowsOut) != 8000 {
		t.Fatalf("lost updates: %+v", op.Counters)
	}
}

func TestSpans(t *testing.T) {
	r := NewRecorder()
	stop := r.StartSpan(SpanBacktrace)
	time.Sleep(time.Millisecond)
	stop()
	r.StartSpan(SpanBacktrace)()
	s := r.Snapshot()
	if len(s.Spans) != 1 {
		t.Fatalf("spans = %+v, want one entry", s.Spans)
	}
	sp := s.Spans[0]
	if sp.Span != SpanBacktrace || sp.Count != 2 || sp.Total <= 0 {
		t.Fatalf("span stat = %+v", sp)
	}
	if s.SpanTotal(SpanPatternMatch) != 0 {
		t.Fatal("never-entered span should total 0")
	}
}

func TestRenderDeterministicWithoutTimings(t *testing.T) {
	build := func() *Stats {
		r := NewRecorder()
		r.StartOp(2, "filter", 2)
		r.StartOp(1, "source", 2)
		r.Add(2, 1, RowsIn, 5)
		r.Add(1, 0, RowsOut, 5)
		r.AddOpTime(2, 123*time.Microsecond) // must not leak into Render(false)
		r.StartSpan(SpanSchedule)()
		return r.Snapshot()
	}
	first := build().Render(false)
	for i := 0; i < 5; i++ {
		if got := build().Render(false); got != first {
			t.Fatalf("render drifted between identical recorders:\n%s\nvs\n%s", first, got)
		}
	}
	if strings.Contains(first, "elapsed") || strings.Contains(first, "spans:") {
		t.Fatalf("Render(false) leaked timing columns:\n%s", first)
	}
	// Operators appear sorted by id even though registered out of order.
	if strings.Index(first, "1    source") > strings.Index(first, "2    filter") {
		t.Fatalf("ops not sorted by id:\n%s", first)
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder()
	r.Add(1, 0, RowsIn, 5)
	r.StartSpan(SpanSchedule)()
	r.Reset()
	s := r.Snapshot()
	if len(s.Ops) != 0 || len(s.Spans) != 0 {
		t.Fatalf("reset left state: %+v", s)
	}
}
