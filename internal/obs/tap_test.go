package obs

import (
	"sync"
	"testing"
)

// TestTapReceivesSpanAndOpEvents pins the event-tap contract: every span
// start/end and operator registration reaches the tap, in order per
// goroutine, with the elapsed duration only on span_end.
func TestTapReceivesSpanAndOpEvents(t *testing.T) {
	rec := NewRecorder()
	var mu sync.Mutex
	var got []Event
	rec.SetTap(func(ev Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})

	rec.StartOp(3, "filter", 2)
	stop := rec.StartSpan(SpanSchedule)
	stop()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(got), got)
	}
	if got[0].Kind != "op" || got[0].OID != 3 || got[0].Type != "filter" {
		t.Errorf("op event = %+v", got[0])
	}
	if got[1].Kind != "span_start" || got[1].Span != "schedule" || got[1].Elapsed != 0 {
		t.Errorf("span_start event = %+v", got[1])
	}
	if got[2].Kind != "span_end" || got[2].Span != "schedule" || got[2].Elapsed <= 0 {
		t.Errorf("span_end event = %+v", got[2])
	}
}

// TestTapNilSafety: a nil recorder ignores SetTap; clearing the tap stops
// delivery; recording without a tap works.
func TestTapNilSafety(t *testing.T) {
	var nilRec *Recorder
	nilRec.SetTap(func(Event) { t.Error("tap on nil recorder fired") })
	nilRec.StartOp(1, "x", 1)

	rec := NewRecorder()
	rec.StartOp(1, "filter", 1) // no tap: must not panic
	n := 0
	rec.SetTap(func(Event) { n++ })
	rec.StartOp(2, "select", 1)
	rec.SetTap(nil)
	rec.StartOp(3, "map", 1)
	if n != 1 {
		t.Errorf("tap fired %d times, want exactly 1 (after clear it must stop)", n)
	}
}
