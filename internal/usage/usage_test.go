package usage_test

import (
	"strings"
	"sync"
	"testing"

	"pebble/internal/core"
	"pebble/internal/usage"
	"pebble/internal/workload"
)

// inproceedingsSchema is the top-level schema of DBLP inproceedings records.
var inproceedingsSchema = []string{
	"key", "record_type", "title", "authors", "year", "crossref", "pages", "ee",
}

var (
	analyzeOnce     sync.Once
	cachedAnalysis  *usage.Analysis
	cachedUniverse  []int64
	analyzeFailures string
)

// analyzeD reproduces the Fig. 10 setup in miniature: run D1–D5 over the
// same DBLP input, query the full results, and merge the provenance. The
// result is computed once and shared across tests (full-result tracing is
// the most expensive operation in the suite).
func analyzeD(t *testing.T) (*usage.Analysis, []int64) {
	t.Helper()
	analyzeOnce.Do(func() {
		scale := workload.Scale{SimGB: 1, RecordsPerGB: 400, Seed: 42}
		session := core.Session{Partitions: 4}
		analysis := usage.NewAnalysis()
		for _, sc := range workload.DBLPScenarios() {
			cap, err := session.Capture(sc.Build(), sc.Input(scale, 4))
			if err != nil {
				analyzeFailures = sc.Name + ": " + err.Error()
				return
			}
			q, err := cap.QueryAll()
			if err != nil {
				analyzeFailures = sc.Name + ": " + err.Error()
				return
			}
			analysis.AddQuery(q, cap.Provenance)
		}
		// Universe: the raw-input ids of the inproceedings records (Fig. 10
		// analyses the DBLP inproceedings dataset).
		inputs := workload.DBLPInput(scale, 1)
		for _, r := range inputs["dblp.json"].Rows() {
			rt, _ := r.Value.Get("record_type")
			if s, _ := rt.AsString(); s == "inproceedings" {
				cachedUniverse = append(cachedUniverse, r.ID)
			}
		}
		cachedAnalysis = analysis
	})
	if analyzeFailures != "" {
		t.Fatal(analyzeFailures)
	}
	return cachedAnalysis, cachedUniverse
}

func TestUsagePatternsMatchPaperNarrative(t *testing.T) {
	analysis, universe := analyzeD(t)
	if analysis.Queries != 5 {
		t.Fatalf("merged %d queries, want 5", analysis.Queries)
	}
	rep := analysis.Audit(universe, inproceedingsSchema)
	// Most inproceedings contribute to at least one of D1–D5 (D4 nests every
	// inproceedings under its proceedings).
	if len(rep.LeakedItems) < len(universe)/2 {
		t.Errorf("leaked items = %d of %d, expected the majority", len(rep.LeakedItems), len(universe))
	}
	leaked := strings.Join(rep.LeakedAttrs, ",")
	for _, want := range []string{"key", "title"} {
		if !strings.Contains(leaked, want) {
			t.Errorf("attribute %s should be leaked, got %v", want, rep.LeakedAttrs)
		}
	}
	// year is the paper's reconstruction-attack example: accessed by the D1
	// and D3 filters but never part of a result built from inproceedings.
	foundYear := false
	for _, a := range rep.InfluencingAttrs {
		if a == "year" {
			foundYear = true
		}
	}
	if !foundYear {
		t.Errorf("year should be influencing-only, got influencing=%v leaked=%v",
			rep.InfluencingAttrs, rep.LeakedAttrs)
	}
	// pages and ee are never touched by D1–D5: cold attributes.
	cold := strings.Join(rep.ColdAttrs, ",")
	for _, want := range []string{"pages", "ee"} {
		if !strings.Contains(cold, want) {
			t.Errorf("attribute %s should be cold, got %v", want, rep.ColdAttrs)
		}
	}
}

func TestHeatmapRendering(t *testing.T) {
	analysis, universe := analyzeD(t)
	items := usage.SampleItems(universe, 25, 42)
	if len(items) != 25 {
		t.Fatalf("sampled %d items, want 25", len(items))
	}
	// Deterministic sampling.
	again := usage.SampleItems(universe, 25, 42)
	for i := range items {
		if items[i] != again[i] {
			t.Fatal("sampling not deterministic")
		}
	}
	hm := analysis.Heatmap(items, inproceedingsSchema)
	lines := strings.Split(strings.TrimSpace(hm), "\n")
	if len(lines) != 26 { // header + 25 rows
		t.Fatalf("heatmap rows = %d, want 26:\n%s", len(lines), hm)
	}
	if !strings.Contains(lines[0], "tuple") || !strings.Contains(lines[0], "year") {
		t.Errorf("heatmap header wrong: %s", lines[0])
	}
	// Cold cells render as dots (pages/ee columns).
	if !strings.Contains(hm, ".") {
		t.Error("expected cold cells in heatmap")
	}
}

func TestTopPairs(t *testing.T) {
	analysis, _ := analyzeD(t)
	pairs := analysis.TopPairs(3)
	if len(pairs) == 0 {
		t.Fatal("no attribute pairs recorded")
	}
	// key and title are selected together by D1, D4, D5.
	if !strings.Contains(strings.Join(pairs, ";"), "key+title") {
		t.Errorf("key+title should be a frequent pair, got %v", pairs)
	}
}

func TestAnalysisCountsInfluenceOnlyItems(t *testing.T) {
	// An analysis where an item only ever influences results must classify
	// it as influenced, not leaked.
	a := usage.NewAnalysis()
	if a.Queries != 0 {
		t.Fatal("fresh analysis not empty")
	}
	rep := a.Audit([]int64{1, 2}, []string{"x"})
	if len(rep.ColdItems) != 2 || len(rep.ColdAttrs) != 1 {
		t.Errorf("empty analysis audit wrong: %+v", rep)
	}
}

func TestSuggestColumnGroups(t *testing.T) {
	analysis, universe := analyzeD(t)
	groups := analysis.SuggestColumnGroups(universe, inproceedingsSchema)
	if len(groups) < 2 {
		t.Fatalf("groups = %v", groups)
	}
	// key and title co-occur most often: same hot group.
	var keyGroup, titleGroup, coldGroup int = -1, -1, -1
	for i, g := range groups {
		for _, a := range g.Attrs {
			switch a {
			case "key":
				keyGroup = i
			case "title":
				titleGroup = i
			case "pages":
				coldGroup = i
			}
		}
	}
	if keyGroup != titleGroup || keyGroup < 0 {
		t.Errorf("key and title should share a group: %v", groups)
	}
	if coldGroup < 0 || groups[coldGroup].Hot {
		t.Errorf("pages should be in the cold group: %v", groups)
	}
	// Every schema attribute lands in exactly one group.
	seen := map[string]int{}
	for _, g := range groups {
		for _, a := range g.Attrs {
			seen[a]++
		}
	}
	for _, a := range inproceedingsSchema {
		if seen[a] != 1 {
			t.Errorf("attribute %s appears %d times across groups", a, seen[a])
		}
	}
}
