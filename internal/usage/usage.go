// Package usage implements the use-case analyses of Sec. 7.3.5: data-usage
// patterns (the hot/cold heatmap of Fig. 10, driving horizontal and vertical
// partitioning decisions) and GDPR-style auditing (which items and which of
// their attributes are leaked by a query workload, and which attributes
// merely influenced results — the reconstruction-attack signal).
//
// Both analyses merge the structural provenance of full-result queries over
// a workload (the paper merges scenarios D1–D5) and aggregate contribution
// and influence counts per input item and per top-level attribute.
package usage

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"pebble/internal/backtrace"
	"pebble/internal/core"
	"pebble/internal/provenance"
)

// AttrStats counts how often a top-level attribute contributed to and how
// often it merely influenced query results across the analysed workload.
type AttrStats struct {
	Contributing int
	Influencing  int
}

// Used reports whether the attribute was touched at all.
func (s AttrStats) Used() bool { return s.Contributing > 0 || s.Influencing > 0 }

// Analysis accumulates merged provenance over a workload. Items are keyed by
// their identifier in the raw input dataset, so multiple reads of the same
// input aggregate onto the same item.
type Analysis struct {
	// ItemContrib counts, per input item, the traced result items it
	// contributed to (the leftmost column of Fig. 10).
	ItemContrib map[int64]int
	// ItemInflu counts pure influence occurrences (accessed but not needed).
	ItemInflu map[int64]int
	// Attr aggregates per top-level attribute name.
	Attr map[string]*AttrStats
	// AttrPerItem aggregates per (item, attribute): the cells of Fig. 10.
	AttrPerItem map[int64]map[string]*AttrStats
	// Pairs counts attribute pairs that contributed together to the same
	// traced item ("author and title are frequently processed together").
	Pairs map[string]int
	// Queries is the number of merged queries.
	Queries int
}

// NewAnalysis returns an empty analysis.
func NewAnalysis() *Analysis {
	return &Analysis{
		ItemContrib: make(map[int64]int),
		ItemInflu:   make(map[int64]int),
		Attr:        make(map[string]*AttrStats),
		AttrPerItem: make(map[int64]map[string]*AttrStats),
		Pairs:       make(map[string]int),
	}
}

func (a *Analysis) attr(name string) *AttrStats {
	s, ok := a.Attr[name]
	if !ok {
		s = &AttrStats{}
		a.Attr[name] = s
	}
	return s
}

func (a *Analysis) attrPerItem(item int64, name string) *AttrStats {
	m, ok := a.AttrPerItem[item]
	if !ok {
		m = make(map[string]*AttrStats)
		a.AttrPerItem[item] = m
	}
	s, ok := m[name]
	if !ok {
		s = &AttrStats{}
		m[name] = s
	}
	return s
}

// AddQuery merges one query result into the analysis. The provenance run is
// needed to map the per-read source identifiers back to the raw input items.
func (a *Analysis) AddQuery(q *core.QueryResult, run *provenance.Run) {
	a.Queries++
	oids := make([]int, 0, len(q.Traced.BySource))
	for oid := range q.Traced.BySource {
		oids = append(oids, oid)
	}
	sort.Ints(oids)
	for _, oid := range oids {
		s := q.Traced.BySource[oid]
		op, ok := run.Op(oid)
		if !ok {
			continue
		}
		toOrig := make(map[int64]int64, len(op.SourceIDs))
		for _, sa := range op.SourceIDs {
			toOrig[sa.ID] = sa.OrigID
		}
		for _, it := range s.Items {
			orig, ok := toOrig[it.ID]
			if !ok {
				continue
			}
			a.addItem(orig, it.Tree)
		}
	}
}

func (a *Analysis) addItem(orig int64, tree *backtrace.Tree) {
	contributed := false
	var contribAttrs []string
	for _, c := range tree.Root.Children {
		st := a.attr(c.Name)
		pi := a.attrPerItem(orig, c.Name)
		if subtreeContributes(c) {
			st.Contributing++
			pi.Contributing++
			contributed = true
			contribAttrs = append(contribAttrs, c.Name)
		} else {
			st.Influencing++
			pi.Influencing++
		}
	}
	if contributed {
		a.ItemContrib[orig]++
	} else {
		a.ItemInflu[orig]++
	}
	sort.Strings(contribAttrs)
	for i := 0; i < len(contribAttrs); i++ {
		for j := i + 1; j < len(contribAttrs); j++ {
			a.Pairs[contribAttrs[i]+"+"+contribAttrs[j]]++
		}
	}
}

// subtreeContributes reports whether the node or any descendant contributes.
func subtreeContributes(n *backtrace.Node) bool {
	if n.Contributing {
		return true
	}
	for _, c := range n.Children {
		if subtreeContributes(c) {
			return true
		}
	}
	return false
}

// SampleItems picks n items from the universe deterministically (Fig. 10
// shows 25 randomly selected items).
func SampleItems(universe []int64, n int, seed int64) []int64 {
	ids := append([]int64(nil), universe...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	if n > len(ids) {
		n = len(ids)
	}
	out := ids[:n]
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Heatmap renders the Fig. 10 view: one row per item, the leftmost column
// holding the item (tuple) contribution count, the remaining columns per
// top-level attribute. Cells show the contribution count; influence-only
// cells show ~n; untouched cells show a dot (cold).
func (a *Analysis) Heatmap(items []int64, attrs []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %6s", "item", "tuple")
	for _, attr := range attrs {
		fmt.Fprintf(&sb, " %10s", truncate(attr, 10))
	}
	sb.WriteByte('\n')
	for _, id := range items {
		fmt.Fprintf(&sb, "%-8d %6s", id, cell(a.ItemContrib[id], a.ItemInflu[id]))
		for _, attr := range attrs {
			var c, i int
			if m, ok := a.AttrPerItem[id]; ok {
				if s, ok := m[attr]; ok {
					c, i = s.Contributing, s.Influencing
				}
			}
			fmt.Fprintf(&sb, " %10s", cell(c, i))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func cell(contrib, influ int) string {
	switch {
	case contrib > 0:
		return fmt.Sprintf("%d", contrib)
	case influ > 0:
		return fmt.Sprintf("~%d", influ)
	default:
		return "."
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// AuditReport classifies items and attributes for the auditing use-case.
type AuditReport struct {
	// LeakedItems contributed to at least one result (count > 0 in Fig. 10).
	LeakedItems []int64
	// InfluencedItems were accessed but never contributed.
	InfluencedItems []int64
	// ColdItems never influenced any result (blue in Fig. 10).
	ColdItems []int64
	// LeakedAttrs contributed to at least one result.
	LeakedAttrs []string
	// InfluencingAttrs were accessed but never contributed — exposed to
	// reconstruction attacks (the year attribute in the paper's example)
	// although their values are not in any result.
	InfluencingAttrs []string
	// ColdAttrs were never touched (no new credit cards needed).
	ColdAttrs []string
}

// Audit classifies the given item universe and attribute schema. Attribute
// classification is restricted to the universe's items, so datasets sharing
// a source (e.g. DBLP record types split out of one file) are analysed
// independently, as Fig. 10 does for the inproceedings records.
func (a *Analysis) Audit(universe []int64, schema []string) AuditReport {
	var rep AuditReport
	attrTotals := make(map[string]AttrStats, len(schema))
	for _, id := range universe {
		switch {
		case a.ItemContrib[id] > 0:
			rep.LeakedItems = append(rep.LeakedItems, id)
		case a.ItemInflu[id] > 0:
			rep.InfluencedItems = append(rep.InfluencedItems, id)
		default:
			rep.ColdItems = append(rep.ColdItems, id)
		}
		for attr, s := range a.AttrPerItem[id] {
			t := attrTotals[attr]
			t.Contributing += s.Contributing
			t.Influencing += s.Influencing
			attrTotals[attr] = t
		}
	}
	for _, attr := range schema {
		s := attrTotals[attr]
		switch {
		case s.Contributing > 0:
			rep.LeakedAttrs = append(rep.LeakedAttrs, attr)
		case s.Influencing > 0:
			rep.InfluencingAttrs = append(rep.InfluencingAttrs, attr)
		default:
			rep.ColdAttrs = append(rep.ColdAttrs, attr)
		}
	}
	return rep
}

// TopPairs returns the most frequent contributing attribute pairs, for data
// layout decisions ("store author and title next to each other").
func (a *Analysis) TopPairs(n int) []string {
	type pc struct {
		pair  string
		count int
	}
	var pairs []pc
	for p, c := range a.Pairs {
		pairs = append(pairs, pc{p, c})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].count != pairs[j].count {
			return pairs[i].count > pairs[j].count
		}
		return pairs[i].pair < pairs[j].pair
	})
	if n > len(pairs) {
		n = len(pairs)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = fmt.Sprintf("%s (%d)", pairs[i].pair, pairs[i].count)
	}
	return out
}

// ColumnGroup is one suggested vertical partition: attributes that should be
// stored together.
type ColumnGroup struct {
	Attrs []string
	// Hot groups carry contributing attributes; the cold group collects
	// attributes no query in the workload touched.
	Hot bool
}

// SuggestColumnGroups turns the merged provenance into a vertical
// partitioning proposal (the data-layout optimization of Sec. 7.3.5): hot
// attributes are greedily clustered by how often they contribute together
// (union-find over the pair counts, strongest pairs first), influencing-only
// attributes join the hot section as their own group (they are read by
// queries), and untouched attributes form the cold partition.
func (a *Analysis) SuggestColumnGroups(universe []int64, schema []string) []ColumnGroup {
	rep := a.Audit(universe, schema)
	hot := map[string]bool{}
	for _, attr := range rep.LeakedAttrs {
		hot[attr] = true
	}
	// Union-find over hot attributes.
	parent := map[string]string{}
	var find func(x string) string
	find = func(x string) string {
		if parent[x] == x {
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	for attr := range hot {
		parent[attr] = attr
	}
	type pc struct {
		a, b  string
		count int
	}
	var pairs []pc
	for p, c := range a.Pairs {
		parts := strings.SplitN(p, "+", 2)
		if len(parts) != 2 || !hot[parts[0]] || !hot[parts[1]] {
			continue
		}
		pairs = append(pairs, pc{a: parts[0], b: parts[1], count: c})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].count != pairs[j].count {
			return pairs[i].count > pairs[j].count
		}
		return pairs[i].a+pairs[i].b < pairs[j].a+pairs[j].b
	})
	// Merge pairs that co-occur at least half as often as the strongest pair.
	if len(pairs) > 0 {
		threshold := pairs[0].count / 2
		if threshold < 1 {
			threshold = 1
		}
		for _, p := range pairs {
			if p.count < threshold {
				break
			}
			parent[find(p.a)] = find(p.b)
		}
	}
	groupsByRoot := map[string][]string{}
	for attr := range hot {
		root := find(attr)
		groupsByRoot[root] = append(groupsByRoot[root], attr)
	}
	var out []ColumnGroup
	var roots []string
	for root := range groupsByRoot {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	for _, root := range roots {
		attrs := groupsByRoot[root]
		sort.Strings(attrs)
		out = append(out, ColumnGroup{Attrs: attrs, Hot: true})
	}
	if len(rep.InfluencingAttrs) > 0 {
		influ := append([]string(nil), rep.InfluencingAttrs...)
		sort.Strings(influ)
		out = append(out, ColumnGroup{Attrs: influ, Hot: true})
	}
	if len(rep.ColdAttrs) > 0 {
		cold := append([]string(nil), rep.ColdAttrs...)
		sort.Strings(cold)
		out = append(out, ColumnGroup{Attrs: cold, Hot: false})
	}
	return out
}
