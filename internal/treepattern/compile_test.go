package treepattern_test

import (
	"fmt"
	"sync"
	"testing"

	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/treepattern"
	"pebble/internal/workload"
)

// The compiled matcher (compile.go) must be observationally identical to the
// reference AST interpreter: same match verdict and the same backtracing
// tree, item by item, over every pattern shape the parser and the workload
// scenarios produce. These tests are the oracle that pins that equivalence.

// oracleItems is a small corpus of nested values exercising every value
// kind, nesting through items, bags, and repeated attributes at depth.
func oracleItems() []nested.Value {
	return []nested.Value{
		nested.Item(
			nested.F("i", nested.Int(5)),
			nested.F("f", nested.Double(2.5)),
			nested.F("neg", nested.Int(-3)),
			nested.F("b", nested.Bool(true)),
			nested.F("s", nested.StringVal("say \"hi\"\nthere")),
		),
		nested.Item(
			nested.F("id", nested.Int(1)),
			nested.F("tags", nested.Bag(
				nested.StringVal("go"), nested.StringVal("db"), nested.StringVal("go"))),
		),
		nested.Item(
			nested.F("user", nested.Item(
				nested.F("name", nested.StringVal("ada")),
				nested.F("sub", nested.Item(nested.F("name", nested.StringVal("deep")))),
			)),
			nested.F("tweets", nested.Bag(
				nested.Item(nested.F("text", nested.StringVal("Hello World")), nested.F("n", nested.Int(1))),
				nested.Item(nested.F("text", nested.StringVal("Hello Again")), nested.F("n", nested.Int(2))),
			)),
		),
		nested.Item(nested.F("tags", nested.Bag())),
		nested.Item(nested.F("other", nested.Int(9))),
	}
}

// oracleQueries covers edges, conditions, counts, and sibling conjunction in
// parser syntax; each is matched compiled and interpreted over oracleItems.
var oracleQueries = []string{
	`i == 5`,
	`i == 6`,
	`i > 4.5`,
	`neg == -3`,
	`b == true`,
	`s ~= "hi"`,
	`i == 5, f > 2`,
	`//name == "deep"`,
	`/user(name == "ada")`,
	`user(sub(name))`,
	`tweets(text ~= "Hello" #[2,2])`,
	`tweets(text ~= "World" #[2,2])`,
	`//text ~= "Hello"`,
	`tags #[1,0]`,
	`//tags`,
	`//n > 1`,
	`//id_str == "lp", tweets(text == "Hello World" #[2,2])`,
}

func TestCompiledMatchesInterpreterOnCorpus(t *testing.T) {
	for _, q := range oracleQueries {
		p, err := treepattern.Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		c := p.Compile()
		for i, d := range oracleItems() {
			wantTree, wantOK := p.MatchItem(d)
			gotTree, gotOK := c.MatchItem(d)
			if wantOK != gotOK {
				t.Errorf("%q on item %d: compiled ok=%v, interpreter ok=%v", q, i, gotOK, wantOK)
				continue
			}
			if !wantOK {
				continue
			}
			if got, want := gotTree.String(), wantTree.String(); got != want {
				t.Errorf("%q on item %d: compiled tree\n%s\nwant\n%s", q, i, got, want)
			}
		}
	}
}

// TestCompiledMatchesInterpreterOnScenarios runs every workload scenario at
// a tiny scale and compares the compiled and interpreted dataset matches on
// the real output shapes — rendered structures must be byte-identical.
func TestCompiledMatchesInterpreterOnScenarios(t *testing.T) {
	scale := workload.Scale{SimGB: 5, TweetsPerGB: 40, RecordsPerGB: 400, Seed: 42}
	for _, sc := range workload.AllScenarios() {
		res, err := engine.Run(sc.Build(), sc.Input(scale, 4), engine.Options{Partitions: 4})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		want := sc.Pattern.Match(res.Output)
		got := sc.Pattern.Compile().Match(res.Output)
		if got.String() != want.String() {
			t.Errorf("%s: compiled dataset match differs from interpreter:\n%s\nwant\n%s",
				sc.Name, got, want)
		}
		if want.Len() == 0 {
			t.Errorf("%s: scenario pattern matched nothing — oracle is vacuous", sc.Name)
		}
	}
}

// TestCompiledCountBounds pins MinCount/MaxCount against the interpreter and
// against first-principles expectations at the boundaries.
func TestCompiledCountBounds(t *testing.T) {
	item := func(n int) nested.Value {
		elems := make([]nested.Value, n)
		for i := range elems {
			elems[i] = nested.Item(nested.F("t", nested.StringVal(fmt.Sprintf("v%d", i))))
		}
		return nested.Item(nested.F("tags", nested.Bag(elems...)))
	}
	cases := []struct {
		min, max int
		occs     int
		want     bool
	}{
		{0, 0, 0, false}, // zero occurrences never match
		{0, 0, 1, true},  // unbounded
		{1, 1, 1, true},
		{1, 1, 2, false}, // above exact max
		{2, 2, 1, false}, // below exact min
		{2, 2, 2, true},
		{2, 0, 5, true}, // min only, unbounded max
		{2, 0, 1, false},
		{0, 3, 3, true}, // max only
		{0, 3, 4, false},
		{3, 5, 4, true},
		{3, 5, 6, false},
	}
	for _, tc := range cases {
		p := treepattern.New(treepattern.Desc("t").WithCount(tc.min, tc.max))
		c := p.Compile()
		d := item(tc.occs)
		_, wantOK := p.MatchItem(d)
		_, gotOK := c.MatchItem(d)
		if wantOK != tc.want {
			t.Errorf("interpreter #[%d,%d] with %d occurrences = %v, want %v",
				tc.min, tc.max, tc.occs, wantOK, tc.want)
		}
		if gotOK != tc.want {
			t.Errorf("compiled #[%d,%d] with %d occurrences = %v, want %v",
				tc.min, tc.max, tc.occs, gotOK, tc.want)
		}
	}
}

// TestCompiledCountOnNestedCollections: count constraints apply within the
// nearest enclosing collection, also below a descendant edge.
func TestCompiledCountOnNestedCollections(t *testing.T) {
	d := nested.Item(nested.F("groups", nested.Bag(
		nested.Item(nested.F("sub", nested.Bag(nested.StringVal("a"), nested.StringVal("b")))),
		nested.Item(nested.F("sub", nested.Bag(nested.StringVal("c")))),
	)))
	for _, q := range []string{`//sub #[1,1]`, `//sub #[2,2]`, `//sub #[2,0]`, `groups(sub #[1,2])`} {
		p := treepattern.MustParse(q)
		wantTree, wantOK := p.MatchItem(d)
		gotTree, gotOK := p.Compile().MatchItem(d)
		if wantOK != gotOK {
			t.Fatalf("%q: compiled ok=%v, interpreter ok=%v", q, gotOK, wantOK)
		}
		if wantOK && gotTree.String() != wantTree.String() {
			t.Errorf("%q: compiled tree\n%s\nwant\n%s", q, gotTree, wantTree)
		}
	}
}

// BenchmarkMatchItem compares the reference interpreter against the compiled
// program on real scenario outputs (the benchmark twin of the `-exp query`
// sweep's match columns). T3 is the running example — deep nested outputs
// under a descendant edge; T4 is a flat aggregate — many small rows.
func BenchmarkMatchItem(b *testing.B) {
	scale := workload.Scale{SimGB: 5, TweetsPerGB: 40, RecordsPerGB: 400, Seed: 42}
	for _, name := range []string{"T3", "T4"} {
		sc, err := workload.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		res, err := engine.Run(sc.Build(), sc.Input(scale, 4), engine.Options{Partitions: 4, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		rows := res.Output.Rows()
		compiled := sc.Pattern.Compile()
		b.Run(name+"/interp", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, r := range rows {
					sc.Pattern.MatchItem(r.Value)
				}
			}
		})
		b.Run(name+"/compiled", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, r := range rows {
					compiled.MatchItem(r.Value)
				}
			}
		})
	}
}

// TestCompiledMatchConcurrent shares one compiled pattern across concurrent
// dataset matches (each itself fanning out per partition) — the race
// detector must stay silent and every result must agree.
func TestCompiledMatchConcurrent(t *testing.T) {
	scale := workload.Scale{SimGB: 2, TweetsPerGB: 40, RecordsPerGB: 400, Seed: 7}
	sc, err := workload.ByName("T2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(sc.Build(), sc.Input(scale, 4), engine.Options{Partitions: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := sc.Pattern.Compile()
	want := c.Match(res.Output).String()
	var wg sync.WaitGroup
	results := make([]string, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Match(res.Output).String()
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if got != want {
			t.Errorf("concurrent match %d diverged", i)
		}
	}
}
