package treepattern

import (
	"encoding/json"
	"fmt"

	"pebble/internal/nested"
)

// This file is the wire format of tree patterns: a JSON codec covering the
// full constraint set (equality, containment, range bounds, occurrence
// counts, nested children with child/descendant edges). The textual grammar
// (parser.go) stays the human entry point; the JSON form is what pebbled's
// trace jobs and the Go SDK ship across HTTP, because it round-trips every
// pattern a program can build — including multi-node scenario patterns the
// single-line grammar renders awkwardly.

// nodeJSON is the serialised form of one pattern node. Value constraints
// marshal as native JSON values through the nested codec, so `{"eq": "lp"}`
// and `{"gt": 3}` read exactly like the data they constrain.
type nodeJSON struct {
	Attr     string            `json:"attr"`
	Desc     bool              `json:"desc,omitempty"`
	Eq       json.RawMessage   `json:"eq,omitempty"`
	Contains string            `json:"contains,omitempty"`
	Lt       json.RawMessage   `json:"lt,omitempty"`
	Gt       json.RawMessage   `json:"gt,omitempty"`
	MinCount int               `json:"min_count,omitempty"`
	MaxCount int               `json:"max_count,omitempty"`
	Children []json.RawMessage `json:"children,omitempty"`
}

// MarshalJSON serialises the node with its full subtree.
func (n *Node) MarshalJSON() ([]byte, error) {
	if n == nil {
		return nil, fmt.Errorf("treepattern: marshal nil node")
	}
	nj := nodeJSON{
		Attr:     n.Attr,
		Desc:     n.Edge == DescendantEdge,
		Contains: n.Contains,
		MinCount: n.MinCount,
		MaxCount: n.MaxCount,
	}
	enc := func(v *nested.Value) (json.RawMessage, error) {
		if v == nil {
			return nil, nil
		}
		return v.MarshalJSON()
	}
	var err error
	if nj.Eq, err = enc(n.Eq); err != nil {
		return nil, err
	}
	if nj.Lt, err = enc(n.Lt); err != nil {
		return nil, err
	}
	if nj.Gt, err = enc(n.Gt); err != nil {
		return nil, err
	}
	for _, c := range n.Children {
		raw, err := c.MarshalJSON()
		if err != nil {
			return nil, err
		}
		nj.Children = append(nj.Children, raw)
	}
	return json.Marshal(nj)
}

// UnmarshalJSON restores a node serialised by MarshalJSON.
func (n *Node) UnmarshalJSON(data []byte) error {
	var nj nodeJSON
	if err := json.Unmarshal(data, &nj); err != nil {
		return err
	}
	if nj.Attr == "" {
		return fmt.Errorf("treepattern: pattern node without attr")
	}
	dec := func(raw json.RawMessage) (*nested.Value, error) {
		if len(raw) == 0 {
			return nil, nil
		}
		v, err := nested.ParseJSON(raw)
		if err != nil {
			return nil, err
		}
		return &v, nil
	}
	edge := ChildEdge
	if nj.Desc {
		edge = DescendantEdge
	}
	out := Node{
		Attr:     nj.Attr,
		Edge:     edge,
		Contains: nj.Contains,
		MinCount: nj.MinCount,
		MaxCount: nj.MaxCount,
	}
	var err error
	if out.Eq, err = dec(nj.Eq); err != nil {
		return err
	}
	if out.Lt, err = dec(nj.Lt); err != nil {
		return err
	}
	if out.Gt, err = dec(nj.Gt); err != nil {
		return err
	}
	for _, raw := range nj.Children {
		c := &Node{}
		if err := c.UnmarshalJSON(raw); err != nil {
			return err
		}
		out.Children = append(out.Children, c)
	}
	*n = out
	return nil
}

// MarshalJSON serialises the pattern as the array of its root children. The
// compiled-form cache is not serialised; a restored pattern recompiles on
// first match.
func (p *Pattern) MarshalJSON() ([]byte, error) {
	nodes := p.Children
	if nodes == nil {
		nodes = []*Node{}
	}
	return json.Marshal(nodes)
}

// UnmarshalJSON restores a pattern serialised by MarshalJSON. Unmarshal
// into a fresh Pattern only: the compiled-form cache of a previously matched
// pattern is not invalidated.
func (p *Pattern) UnmarshalJSON(data []byte) error {
	var children []*Node
	if err := json.Unmarshal(data, &children); err != nil {
		return err
	}
	p.Children = children
	return nil
}
