package treepattern

import (
	"encoding/json"
	"testing"

	"pebble/internal/nested"
)

// roundTrip marshals the pattern, restores it, and returns the restored
// form.
func roundTrip(t *testing.T, p *Pattern) *Pattern {
	t.Helper()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got := &Pattern{}
	if err := json.Unmarshal(data, got); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	return got
}

func TestPatternJSONRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		p    *Pattern
	}{
		{"empty", New()},
		{"eq-string", New(Desc("id_str").WithEq(nested.StringVal("lp")))},
		{"contains-and-count", New(
			Child("tweets", Child("text").WithContains("Hello")).WithCount(2, 2),
		)},
		{"range-bounds", New(
			Child("n").WithLt(nested.Int(10)).WithGt(nested.Int(2)),
		)},
		{"multi-node-nested", New(
			Desc("id_str").WithEq(nested.StringVal("lp")),
			Child("tweets", Child("text").WithEq(nested.StringVal("Hello World")).WithCount(2, 2)),
		)},
		{"eq-double", New(Child("score").WithEq(nested.Double(2.5)))},
		{"eq-bool", New(Child("flag").WithEq(nested.Bool(true)))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := roundTrip(t, tc.p)
			// The diagnostic render covers every field the matcher reads, so
			// equal renders mean semantically equal patterns.
			if got.String() != tc.p.String() {
				t.Errorf("round trip changed pattern:\nbefore: %s\nafter:  %s", tc.p, got)
			}
		})
	}
}

// TestPatternJSONMatchesEqually runs original and restored patterns over
// the same items and demands identical match outcomes.
func TestPatternJSONMatchesEqually(t *testing.T) {
	item := nested.Item(
		nested.F("id_str", nested.StringVal("lp")),
		nested.Field{Name: "tweets", Value: nested.Bag(
			nested.Item(nested.F("text", nested.StringVal("Hello World"))),
			nested.Item(nested.F("text", nested.StringVal("Hello World"))),
		)},
	)
	p := New(
		Desc("id_str").WithEq(nested.StringVal("lp")),
		Child("tweets", Child("text").WithContains("Hello")),
	)
	got := roundTrip(t, p)
	_, okOrig := p.MatchItem(item)
	_, okGot := got.MatchItem(item)
	if okOrig != okGot {
		t.Errorf("restored pattern match = %v, original = %v", okGot, okOrig)
	}
	if !okGot {
		t.Error("restored pattern should match the sample item")
	}
}

func TestPatternJSONRejectsMalformed(t *testing.T) {
	bad := []string{
		`[{"desc":true}]`,        // node without attr
		`[{"attr":"x","eq":}]`,   // invalid JSON
		`{"attr":"x"}`,           // pattern must be an array
		`[{"attr":"x","lt":{}}]`, // empty item is fine actually? keep: lt of object parses
	}
	for _, s := range bad[:3] {
		p := &Pattern{}
		if err := json.Unmarshal([]byte(s), p); err == nil {
			t.Errorf("accepted malformed pattern %s", s)
		}
	}
}
