package treepattern

import (
	"strings"
	"sync"

	"pebble/internal/backtrace"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/obs"
	"pebble/internal/path"
)

// Compiled patterns: Compile flattens the pattern AST into a preorder
// instruction array. Each instruction holds the node's attribute, edge kind,
// a single pre-resolved constraint thunk (the Eq/Contains/Lt/Gt checks fused
// into one closure at compile time instead of re-dispatched per candidate),
// the count bounds, and the indexes of its child instructions. Matching
// executes instructions against each candidate with a fused locate+bind walk
// — the interpreter's intermediate per-node location slice is gone — while
// preserving the interpreter's traversal order and semantics exactly (the
// oracle tests pin this).
//
// A Compiled is immutable after construction: matching keeps all per-row
// state on the stack, so one compiled pattern is safely shared by the
// parallel per-partition Match goroutines and by concurrent queries.

// cnode is one compiled pattern instruction.
type cnode struct {
	attr     string
	desc     bool // ancestor-descendant edge
	check    func(nested.Value) bool
	minCount int
	maxCount int
	children []int32
}

// Compiled is the executable form of a Pattern; build it with
// Pattern.Compile. It matches exactly like the pattern it was compiled from.
type Compiled struct {
	prog  []cnode
	roots []int32
}

// Compile returns the pattern's compiled form, building it on first use and
// caching it on the pattern — repeated Match calls and all partition
// goroutines share one program.
func (p *Pattern) Compile() *Compiled {
	p.compileOnce.Do(func() { p.compiled = compile(p) })
	return p.compiled
}

// compileObserved is Compile with the one-time build reported as
// obs.SpanPatternCompile.
func (p *Pattern) compileObserved(rec *obs.Recorder) *Compiled {
	p.compileOnce.Do(func() {
		defer rec.StartSpan(obs.SpanPatternCompile)()
		p.compiled = compile(p)
	})
	return p.compiled
}

// compile lays the pattern nodes out in preorder and pre-resolves each
// node's constraint thunk.
func compile(p *Pattern) *Compiled {
	c := &Compiled{}
	var emit func(n *Node) int32
	emit = func(n *Node) int32 {
		idx := int32(len(c.prog))
		c.prog = append(c.prog, cnode{
			attr:     n.Attr,
			desc:     n.Edge == DescendantEdge,
			check:    compileCheck(n),
			minCount: n.MinCount,
			maxCount: n.MaxCount,
		})
		var kids []int32
		for _, ch := range n.Children {
			kids = append(kids, emit(ch))
		}
		c.prog[idx].children = kids
		return idx
	}
	for _, ch := range p.Children {
		c.roots = append(c.roots, emit(ch))
	}
	return c
}

// compileCheck fuses a node's value constraints into one thunk (nil when the
// node is unconstrained). The constant operands are captured once here
// instead of re-read per candidate.
func compileCheck(n *Node) func(nested.Value) bool {
	var checks []func(nested.Value) bool
	if n.Eq != nil {
		want := *n.Eq
		checks = append(checks, func(v nested.Value) bool { return nested.Equal(v, want) })
	}
	if n.Contains != "" {
		sub := n.Contains
		checks = append(checks, func(v nested.Value) bool {
			s, ok := v.AsString()
			return ok && strings.Contains(s, sub)
		})
	}
	if n.Lt != nil {
		want := *n.Lt
		checks = append(checks, func(v nested.Value) bool { return compareWidened(v, want) < 0 })
	}
	if n.Gt != nil {
		want := *n.Gt
		checks = append(checks, func(v nested.Value) bool { return compareWidened(v, want) > 0 })
	}
	switch len(checks) {
	case 0:
		return nil
	case 1:
		return checks[0]
	}
	all := checks
	return func(v nested.Value) bool {
		for _, c := range all {
			if !c(v) {
				return false
			}
		}
		return true
	}
}

// MatchItem matches one data item with the compiled program; semantics are
// identical to Pattern.MatchItem.
func (c *Compiled) MatchItem(d nested.Value) (*backtrace.Tree, bool) {
	var all []binding
	for _, r := range c.roots {
		bs := c.matchNode(r, d, nil)
		if bs == nil {
			return nil, false
		}
		all = append(all, bs...)
	}
	return bindingsTree(all), true
}

// Match matches the compiled pattern against every row of the dataset in
// parallel, one goroutine per partition.
func (c *Compiled) Match(d *engine.Dataset) *backtrace.Structure {
	return c.MatchObserved(d, nil)
}

// MatchObserved matches like Match and reports the matching phase as
// obs.SpanPatternMatch.
func (c *Compiled) MatchObserved(d *engine.Dataset, rec *obs.Recorder) *backtrace.Structure {
	defer rec.StartSpan(obs.SpanPatternMatch)()
	partResults := make([][]*backtrace.Item, len(d.Partitions))
	var wg sync.WaitGroup
	for pi := range d.Partitions {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			var items []*backtrace.Item
			for _, row := range d.Partitions[pi] {
				if tree, ok := c.MatchItem(row.Value); ok {
					items = append(items, &backtrace.Item{ID: row.ID, Tree: tree})
				}
			}
			partResults[pi] = items
		}(pi)
	}
	wg.Wait()
	out := backtrace.NewStructure()
	for _, items := range partResults {
		out.Items = append(out.Items, items...)
	}
	return out
}

// matchNode executes instruction i against context value ctx: all bindings,
// or nil when the node does not match (including count violations) — the
// compiled counterpart of the interpreter's matchNode.
func (c *Compiled) matchNode(i int32, ctx nested.Value, prefix path.Path) []binding {
	n := &c.prog[i]
	out := c.collect(n, ctx, prefix, nil)
	if len(out) == 0 {
		return nil
	}
	if n.minCount > 0 && len(out) < n.minCount {
		return nil
	}
	if n.maxCount > 0 && len(out) > n.maxCount {
		return nil
	}
	return out
}

// collect fuses the interpreter's locate and bindAt passes: occurrences are
// bound as they are discovered, in the same traversal order locate produced,
// without materialising the intermediate location slice.
func (c *Compiled) collect(n *cnode, ctx nested.Value, prefix path.Path, out []binding) []binding {
	switch ctx.Kind() {
	case nested.KindItem:
		for _, f := range ctx.Fields() {
			p := prefix.Append(path.Step{Attr: f.Name, Index: path.NoIndex})
			if f.Name == n.attr {
				if b, ok := c.bindAt(n, f.Value, p); ok {
					out = append(out, b)
				}
				if !n.desc {
					continue
				}
			}
			if n.desc {
				out = c.collect(n, f.Value, p, out)
			}
		}
	case nested.KindBag, nested.KindSet:
		for i, e := range ctx.Elems() {
			p := prefix.Append(path.Step{Index: i + 1})
			out = c.collect(n, e, p, out)
		}
	}
	return out
}

// bindAt applies the node's constraint thunk and child instructions at one
// occurrence.
func (c *Compiled) bindAt(n *cnode, val nested.Value, p path.Path) (binding, bool) {
	if n.check != nil && !n.check(val) {
		return binding{}, false
	}
	b := binding{path: p}
	for _, ci := range n.children {
		cb := c.matchNode(ci, val, p)
		if cb == nil {
			return binding{}, false
		}
		b.children = append(b.children, cb...)
	}
	return b, true
}
