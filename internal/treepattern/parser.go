package treepattern

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"pebble/internal/nested"
)

// Parse builds a tree pattern from its textual form — the user-facing query
// syntax of the CLI (the paper lists a user-friendly provenance front-end as
// future work). The grammar:
//
//	pattern  := clause (',' clause)*
//	clause   := edge? name cond* children?
//	edge     := '/'            parent-child (default)
//	          | '//'           ancestor-descendant
//	name     := attribute name ([A-Za-z0-9_]+)
//	cond     := '==' literal   value equality
//	          | '~=' string    substring containment
//	          | '<'  literal | '>' literal
//	          | '#[' int ',' int ']'   occurrence bounds (0 = unbounded)
//	children := '(' pattern ')'
//	literal  := "string" | int | float | true | false
//
// Example (the paper's Fig. 4):
//
//	//id_str == "lp", tweets(text == "Hello World" #[2,2])
func Parse(input string) (*Pattern, error) {
	p := &parser{in: input}
	children, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, p.errf("trailing input")
	}
	if len(children) == 0 {
		return nil, fmt.Errorf("treepattern: empty pattern")
	}
	return &Pattern{Children: children}, nil
}

// MustParse is Parse that panics on error, for tests and literals.
func MustParse(input string) *Pattern {
	p, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	in  string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.in) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.in[p.pos]
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("treepattern: %s at offset %d in %q", fmt.Sprintf(format, args...), p.pos, p.in)
}

func (p *parser) skipSpace() {
	for !p.eof() && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) consume(s string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.in[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) parsePattern() ([]*Node, error) {
	var out []*Node
	for {
		n, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		out = append(out, n)
		if !p.consume(",") {
			return out, nil
		}
	}
}

func (p *parser) parseClause() (*Node, error) {
	p.skipSpace()
	edge := ChildEdge
	if p.consume("//") {
		edge = DescendantEdge
	} else {
		p.consume("/")
	}
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	n := &Node{Attr: name, Edge: edge}
	for {
		switch {
		case p.consume("=="):
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			n.Eq = &v
		case p.consume("~="):
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			s, ok := v.AsString()
			if !ok {
				return nil, p.errf("~= needs a string literal")
			}
			n.Contains = s
		case p.consume("#["):
			min, max, err := p.parseBounds()
			if err != nil {
				return nil, err
			}
			n.MinCount, n.MaxCount = min, max
		case p.consume("<"):
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			n.Lt = &v
		case p.consume(">"):
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			n.Gt = &v
		case p.consume("("):
			children, err := p.parsePattern()
			if err != nil {
				return nil, err
			}
			if !p.consume(")") {
				return nil, p.errf("expected ')'")
			}
			n.Children = children
			return n, nil
		default:
			return n, nil
		}
	}
}

func (p *parser) parseName() (string, error) {
	p.skipSpace()
	start := p.pos
	for !p.eof() {
		c := rune(p.in[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected attribute name")
	}
	return p.in[start:p.pos], nil
}

func (p *parser) parseBounds() (int, int, error) {
	min, err := p.parseInt()
	if err != nil {
		return 0, 0, err
	}
	if !p.consume(",") {
		return 0, 0, p.errf("expected ',' in count bounds")
	}
	max, err := p.parseInt()
	if err != nil {
		return 0, 0, err
	}
	if !p.consume("]") {
		return 0, 0, p.errf("expected ']' after count bounds")
	}
	if min < 0 || max < 0 || (max > 0 && min > max) {
		return 0, 0, p.errf("invalid count bounds [%d,%d]", min, max)
	}
	return min, max, nil
}

func (p *parser) parseInt() (int, error) {
	p.skipSpace()
	start := p.pos
	for !p.eof() && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, p.errf("expected integer")
	}
	v, err := strconv.Atoi(p.in[start:p.pos])
	if err != nil {
		return 0, p.errf("bad integer: %v", err)
	}
	return v, nil
}

func (p *parser) parseLiteral() (nested.Value, error) {
	p.skipSpace()
	if p.eof() {
		return nested.Value{}, p.errf("expected literal")
	}
	switch c := p.peek(); {
	case c == '"':
		return p.parseString()
	case c == '-' || (c >= '0' && c <= '9'):
		return p.parseNumber()
	default:
		if p.consume("true") {
			return nested.Bool(true), nil
		}
		if p.consume("false") {
			return nested.Bool(false), nil
		}
		if p.consume("null") {
			return nested.Null(), nil
		}
		return nested.Value{}, p.errf("expected literal")
	}
}

func (p *parser) parseString() (nested.Value, error) {
	p.pos++ // opening quote
	var sb strings.Builder
	for !p.eof() {
		c := p.in[p.pos]
		switch c {
		case '"':
			p.pos++
			return nested.StringVal(sb.String()), nil
		case '\\':
			p.pos++
			if p.eof() {
				return nested.Value{}, p.errf("unterminated escape")
			}
			esc := p.in[p.pos]
			switch esc {
			case '"', '\\':
				sb.WriteByte(esc)
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				return nested.Value{}, p.errf("unsupported escape \\%c", esc)
			}
			p.pos++
		default:
			sb.WriteByte(c)
			p.pos++
		}
	}
	return nested.Value{}, p.errf("unterminated string")
}

func (p *parser) parseNumber() (nested.Value, error) {
	start := p.pos
	if p.peek() == '-' {
		p.pos++
	}
	isFloat := false
	for !p.eof() {
		c := p.peek()
		if c >= '0' && c <= '9' {
			p.pos++
			continue
		}
		if c == '.' && !isFloat {
			isFloat = true
			p.pos++
			continue
		}
		break
	}
	tok := p.in[start:p.pos]
	if tok == "" || tok == "-" {
		return nested.Value{}, p.errf("expected number")
	}
	if isFloat {
		f, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nested.Value{}, p.errf("bad float %q", tok)
		}
		return nested.Double(f), nil
	}
	i, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return nested.Value{}, p.errf("bad int %q", tok)
	}
	return nested.Int(i), nil
}
