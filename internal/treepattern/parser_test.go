package treepattern_test

import (
	"strings"
	"testing"

	"pebble/internal/nested"
	"pebble/internal/treepattern"
)

func TestParseFigure4(t *testing.T) {
	p, err := treepattern.Parse(`//id_str == "lp", tweets(text == "Hello World" #[2,2])`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Children) != 2 {
		t.Fatalf("root children = %d", len(p.Children))
	}
	id := p.Children[0]
	if id.Attr != "id_str" || id.Edge != treepattern.DescendantEdge || id.Eq == nil {
		t.Errorf("id_str clause wrong: %+v", id)
	}
	if s, _ := id.Eq.AsString(); s != "lp" {
		t.Errorf("id_str eq = %q", s)
	}
	tw := p.Children[1]
	if tw.Attr != "tweets" || tw.Edge != treepattern.ChildEdge || len(tw.Children) != 1 {
		t.Fatalf("tweets clause wrong: %+v", tw)
	}
	txt := tw.Children[0]
	if txt.MinCount != 2 || txt.MaxCount != 2 || txt.Eq == nil {
		t.Errorf("text clause wrong: %+v", txt)
	}
	// Parsed and built patterns match the same data.
	res, _ := exampleResult(t)
	if got := p.Match(res.Output).Len(); got != 1 {
		t.Errorf("parsed Fig. 4 pattern matched %d items, want 1", got)
	}
	built := figure4()
	if p.Match(res.Output).IDs()[0] != built.Match(res.Output).IDs()[0] {
		t.Error("parsed and built patterns disagree")
	}
}

func TestParseLiteralsAndConditions(t *testing.T) {
	d := nested.Item(
		nested.F("i", nested.Int(5)),
		nested.F("f", nested.Double(2.5)),
		nested.F("neg", nested.Int(-3)),
		nested.F("b", nested.Bool(true)),
		nested.F("s", nested.StringVal("say \"hi\"\nthere")),
	)
	match := func(q string) bool {
		t.Helper()
		p, err := treepattern.Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		_, ok := p.MatchItem(d)
		return ok
	}
	cases := map[string]bool{
		`i == 5`:                   true,
		`i == 6`:                   false,
		`i > 4`:                    true,
		`i < 4`:                    false,
		`i > 4.5`:                  true, // widening
		`f == 2.5`:                 true,
		`neg == -3`:                true,
		`b == true`:                true,
		`b == false`:               false,
		`s ~= "hi"`:                true,
		`s == "say \"hi\"\nthere"`: true,
		`i == 5, f > 2`:            true,
		`i == 5, f > 9`:            false,
		`/i == 5`:                  true, // explicit child edge
		`//i == 5`:                 true,
	}
	for q, want := range cases {
		if got := match(q); got != want {
			t.Errorf("%q matched %v, want %v", q, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`   `,
		`a ==`,
		`a == 'x'`,
		`a(b`,
		`a #[2]`,
		`a #[3,2]`,
		`a == "unterminated`,
		`a == "bad \q escape"`,
		`a, `,
		`a) trailing`,
		`==5`,
		`a ~= 5`,
	}
	for _, q := range bad {
		if _, err := treepattern.Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	treepattern.MustParse(`==`)
}

func TestParseRoundTripThroughString(t *testing.T) {
	// The String rendering is for humans, but the key pieces must appear.
	p := treepattern.MustParse(`//user(id_str == "lp"), tweets(text ~= "Hello" #[1,0])`)
	s := p.String()
	for _, want := range []string{"//user", "id_str", `contains "Hello"`, "[1,0]"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestParseNestedChildren(t *testing.T) {
	p := treepattern.MustParse(`a(b(c == 1), d)`)
	if len(p.Children) != 1 || len(p.Children[0].Children) != 2 {
		t.Fatalf("nested structure wrong: %s", p)
	}
	if p.Children[0].Children[0].Children[0].Attr != "c" {
		t.Error("deep child missing")
	}
}
