package treepattern_test

import (
	"testing"

	"pebble/internal/nested"
	"pebble/internal/treepattern"
)

// FuzzParse feeds arbitrary strings to the pattern parser: it must never
// panic, and on success the pattern must render and match without panicking.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`//id_str == "lp", tweets(text == "Hello World" #[2,2])`,
		`a(b(c == 1), d ~= "x")`,
		`a > 1.5, b < -3`,
		`a == true, b == null`,
		`a #[1,0]`,
		`//deep`,
		`a == "esc \" \n \t"`,
	} {
		f.Add(seed)
	}
	item := nested.Item(
		nested.F("a", nested.Int(1)),
		nested.F("b", nested.Bag(nested.Item(nested.F("c", nested.StringVal("x"))))),
	)
	f.Fuzz(func(t *testing.T, input string) {
		p, err := treepattern.Parse(input)
		if err != nil {
			return
		}
		_ = p.String()
		_, _ = p.MatchItem(item)
	})
}
