package treepattern_test

import (
	"testing"

	"pebble/internal/nested"
	"pebble/internal/path"
	"pebble/internal/treepattern"
)

// Edge-case behaviour of tree-pattern matching: empty collections, missing
// attributes, degenerate count ranges, and non-ASCII string constraints.
// These pin semantics the corpus generator relies on when it attaches random
// patterns to generated pipelines.

// itemWithTags builds ⟨id, tags: {{...}}⟩.
func itemWithTags(tags ...string) nested.Value {
	elems := make([]nested.Value, len(tags))
	for i, s := range tags {
		elems[i] = nested.StringVal(s)
	}
	return nested.Item(
		nested.F("id", nested.Int(1)),
		nested.F("tags", nested.Bag(elems...)),
	)
}

func TestMatchEmptyBag(t *testing.T) {
	empty := itemWithTags()

	// A node naming the bag attribute itself matches: the (empty) bag value
	// exists as an attribute of the item.
	tree, ok := treepattern.New(treepattern.Child("tags")).MatchItem(empty)
	if !ok {
		t.Fatal("pattern naming the empty bag attribute must match")
	}
	if got := len(tree.Find(path.MustParse("tags"))); got != 1 {
		t.Errorf("tags nodes = %d, want 1:\n%s", got, tree)
	}

	// Any pattern that needs an element of the empty bag cannot bind.
	if _, ok := treepattern.New(
		treepattern.Child("tags", treepattern.Child("tag")),
	).MatchItem(empty); ok {
		t.Error("child pattern bound inside an empty bag")
	}
	if _, ok := treepattern.New(
		treepattern.Desc("tag"),
	).MatchItem(empty); ok {
		t.Error("descendant pattern bound inside an empty bag")
	}

	// Sanity: the same descendant pattern matches once the bag has elements
	// named via nested items.
	full := nested.Item(nested.F("tags", nested.Bag(
		nested.Item(nested.F("tag", nested.StringVal("x"))),
	)))
	if _, ok := treepattern.New(treepattern.Desc("tag")).MatchItem(full); !ok {
		t.Error("descendant pattern missed a populated bag")
	}
}

func TestMatchMissingAttribute(t *testing.T) {
	d := itemWithTags("x", "y")
	for _, p := range []*treepattern.Pattern{
		treepattern.New(treepattern.Child("nope")),
		treepattern.New(treepattern.Desc("nope")),
		// Present attribute with an absent grandchild.
		treepattern.New(treepattern.Child("id", treepattern.Child("nope"))),
	} {
		if _, ok := p.MatchItem(d); ok {
			t.Errorf("pattern over missing attribute matched:\n%s", p)
		}
	}
	// The conjunction of a present and a missing attribute fails as a whole.
	if _, ok := treepattern.New(
		treepattern.Child("id"),
		treepattern.Child("nope"),
	).MatchItem(d); ok {
		t.Error("conjunction with missing attribute matched")
	}
}

// TestMatchCountExact: a [k,k] range (min == max) is an exact-occurrence
// constraint — one fewer or one more occurrence must both fail.
func TestMatchCountExact(t *testing.T) {
	d := itemWithTags("a", "b", "c")
	pat := func(k int) *treepattern.Pattern {
		// Desc reaches the string elements of the bag through their parent
		// attribute name.
		return treepattern.New(treepattern.Child("tags").WithCount(k, k))
	}
	// The tags attribute occurs once at item level.
	if _, ok := pat(1).MatchItem(d); !ok {
		t.Error("[1,1] on a single occurrence must match")
	}
	if _, ok := pat(2).MatchItem(d); ok {
		t.Error("[2,2] on a single occurrence must fail")
	}

	inner := func(k int) *treepattern.Pattern {
		return treepattern.New(treepattern.Desc("sub").WithCount(k, k))
	}
	three := nested.Item(nested.F("subs", nested.Bag(
		nested.Item(nested.F("sub", nested.StringVal("v"))),
		nested.Item(nested.F("sub", nested.StringVal("v"))),
		nested.Item(nested.F("sub", nested.StringVal("v"))),
	)))
	if _, ok := inner(3).MatchItem(three); !ok {
		t.Error("[3,3] on exactly three occurrences must match")
	}
	if _, ok := inner(2).MatchItem(three); ok {
		t.Error("[2,2] on three occurrences must fail (too many)")
	}
	if _, ok := inner(4).MatchItem(three); ok {
		t.Error("[4,4] on three occurrences must fail (too few)")
	}
}

// TestMatchUTF8Strings: equality, substring, and range constraints operate
// on full UTF-8 strings — multi-byte runes are never split and ordering is
// bytewise lexicographic, so any multi-byte rune sorts after all ASCII.
func TestMatchUTF8Strings(t *testing.T) {
	d := nested.Item(
		nested.F("name", nested.StringVal("héllo wörld")),
		nested.F("lang", nested.StringVal("日本語")),
	)
	match := func(p *treepattern.Pattern) bool {
		_, ok := p.MatchItem(d)
		return ok
	}
	if !match(treepattern.New(treepattern.Child("lang").WithEq(nested.StringVal("日本語")))) {
		t.Error("equality on a multi-byte string failed")
	}
	if match(treepattern.New(treepattern.Child("lang").WithEq(nested.StringVal("日本")))) {
		t.Error("equality matched a strict prefix of a multi-byte string")
	}
	if !match(treepattern.New(treepattern.Child("name").WithContains("ö"))) {
		t.Error("contains failed on a multi-byte rune")
	}
	if !match(treepattern.New(treepattern.Child("lang").WithContains("本語"))) {
		t.Error("contains failed on a multi-byte substring")
	}
	if match(treepattern.New(treepattern.Child("name").WithContains("日"))) {
		t.Error("contains matched an absent multi-byte rune")
	}
	// Bytewise order: "日本語" > "日本" (strict prefix) and "é" > "z"
	// (0xC3... > 0x7A), the documented total order for mixed scripts.
	if !match(treepattern.New(treepattern.Child("lang").WithGt(nested.StringVal("日本")))) {
		t.Error("Gt failed against a strict prefix")
	}
	if !match(treepattern.New(treepattern.Child("lang").WithLt(nested.StringVal("日本꿈")))) {
		t.Error("Lt failed against a larger multi-byte string")
	}
	if !match(treepattern.New(treepattern.Child("lang").WithGt(nested.StringVal("z")))) {
		t.Error("leading multi-byte rune must sort after ASCII in bytewise order")
	}
}
