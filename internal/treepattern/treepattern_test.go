package treepattern_test

import (
	"strings"
	"testing"

	"pebble/internal/backtrace"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/path"
	"pebble/internal/provenance"
	"pebble/internal/treepattern"
	"pebble/internal/workload"
)

// figure4 builds the tree-pattern of Fig. 4: an ancestor-descendant edge to
// id_str == "lp" and a child path tweets/text == "Hello World" occurring
// exactly twice.
func figure4() *treepattern.Pattern {
	return treepattern.New(
		treepattern.Desc("id_str").WithEq(nested.StringVal("lp")),
		treepattern.Child("tweets",
			treepattern.Child("text").
				WithEq(nested.StringVal("Hello World")).
				WithCount(2, 2),
		),
	)
}

func exampleResult(t *testing.T) (*engine.Result, *provenance.Run) {
	t.Helper()
	res, run, err := provenance.Capture(workload.ExamplePipeline(), workload.ExampleInput(2),
		engine.Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	return res, run
}

func TestFigure4PatternMatchesOnlyUser102(t *testing.T) {
	res, _ := exampleResult(t)
	b := figure4().Match(res.Output)
	if b.Len() != 1 {
		t.Fatalf("pattern matched %d items, want 1 (user lp):\n%s", b.Len(), b)
	}
	it := b.Items[0]
	row, ok := res.Output.FindByID(it.ID)
	if !ok {
		t.Fatal("matched id not in result")
	}
	u, _ := row.Value.Get("user")
	if id, _ := mustGet(t, u, "id_str").AsString(); id != "lp" {
		t.Errorf("matched user %q, want lp", id)
	}
	// The tree encodes user.id_str and the two Hello World positions; name
	// is absent since it is not pertinent to the query (Sec. 2).
	if got := len(it.Tree.Find(path.MustParse("user.id_str"))); got != 1 {
		t.Errorf("user.id_str nodes = %d:\n%s", got, it.Tree)
	}
	if got := len(it.Tree.Find(path.MustParse("tweets[pos].text"))); got != 2 {
		t.Errorf("matched text positions = %d, want 2:\n%s", got, it.Tree)
	}
	if got := len(it.Tree.Find(path.MustParse("user.name"))); got != 0 {
		t.Errorf("name must not be part of the query tree")
	}
}

func TestPatternCountBounds(t *testing.T) {
	res, _ := exampleResult(t)
	// Exactly three occurrences never happen.
	p3 := treepattern.New(
		treepattern.Child("tweets",
			treepattern.Child("text").WithEq(nested.StringVal("Hello World")).WithCount(3, 3),
		),
	)
	if got := p3.Match(res.Output).Len(); got != 0 {
		t.Errorf("[3,3] matched %d items, want 0", got)
	}
	// At least one occurrence: only lp has Hello World tweets.
	p1 := treepattern.New(
		treepattern.Child("tweets",
			treepattern.Child("text").WithEq(nested.StringVal("Hello World")),
		),
	)
	if got := p1.Match(res.Output).Len(); got != 1 {
		t.Errorf("unbounded matched %d items, want 1", got)
	}
}

func TestPatternDescendantVsChild(t *testing.T) {
	res, _ := exampleResult(t)
	// id_str is nested under user: a child edge from the root cannot reach it...
	pc := treepattern.New(treepattern.Child("id_str").WithEq(nested.StringVal("lp")))
	if got := pc.Match(res.Output).Len(); got != 0 {
		t.Errorf("child edge matched %d items, want 0", got)
	}
	// ...but a descendant edge can.
	pd := treepattern.New(treepattern.Desc("id_str").WithEq(nested.StringVal("lp")))
	if got := pd.Match(res.Output).Len(); got != 1 {
		t.Errorf("descendant edge matched %d items, want 1", got)
	}
}

func TestPatternContains(t *testing.T) {
	res, _ := exampleResult(t)
	p := treepattern.New(
		treepattern.Child("tweets", treepattern.Child("text").WithContains("@lp")),
	)
	if got := p.Match(res.Output).Len(); got != 1 {
		t.Errorf("contains matched %d items, want 1 (lp was mentioned once)", got)
	}
	none := treepattern.New(
		treepattern.Child("tweets", treepattern.Child("text").WithContains("zzz")),
	)
	if got := none.Match(res.Output).Len(); got != 0 {
		t.Errorf("contains(zzz) matched %d items", got)
	}
}

func TestPatternConjunctionFails(t *testing.T) {
	res, _ := exampleResult(t)
	// Both conditions must hold for the same item: jm has no Hello World.
	p := treepattern.New(
		treepattern.Desc("id_str").WithEq(nested.StringVal("jm")),
		treepattern.Child("tweets",
			treepattern.Child("text").WithEq(nested.StringVal("Hello World")),
		),
	)
	if got := p.Match(res.Output).Len(); got != 0 {
		t.Errorf("conjunctive pattern matched %d items, want 0", got)
	}
}

func TestPatternString(t *testing.T) {
	s := figure4().String()
	for _, want := range []string{"//id_str", "tweets", "[2,2]", "Hello World"} {
		if !strings.Contains(s, want) {
			t.Errorf("pattern rendering missing %q:\n%s", want, s)
		}
	}
}

// TestEndToEndQuery runs the complete provenance question of Sec. 2: match
// the Fig. 4 pattern on the result, backtrace it, and arrive at exactly the
// two Hello World input tweets.
func TestEndToEndQuery(t *testing.T) {
	res, run := exampleResult(t)
	b := figure4().Match(res.Output)
	traced, err := backtrace.Trace(run, 9, b)
	if err != nil {
		t.Fatal(err)
	}
	upper := traced.Structure(1)
	if upper.Len() != 2 {
		t.Fatalf("traced %d input tweets, want 2:\n%s", upper.Len(), upper)
	}
	for _, it := range upper.Items {
		row, _ := res.Sources[1].FindByID(it.ID)
		if s, _ := mustGet(t, row.Value, "text").AsString(); s != "Hello World" {
			t.Errorf("traced tweet %q", s)
		}
	}
}

func mustGet(t *testing.T, v nested.Value, name string) nested.Value {
	t.Helper()
	out, ok := v.Get(name)
	if !ok {
		t.Fatalf("attribute %q missing in %s", name, v)
	}
	return out
}

func TestPatternRangeConstraints(t *testing.T) {
	res, _ := exampleResult(t)
	// All result users have between 2 and 4 nested tweets; constrain on a
	// numeric attribute via the running example's inputs instead: build a
	// small dataset inline.
	rows := res.Output

	// Every tweets bag has >= 2 elements, so a Gt(1)-style count query via
	// WithCount is covered elsewhere; here exercise Lt/Gt on values.
	pGt := treepattern.New(
		treepattern.Desc("id_str").WithGt(nested.StringVal("k")), // "lp", "ls" > "k"
	)
	if got := pGt.Match(rows).Len(); got != 2 {
		t.Errorf("WithGt matched %d items, want 2 (lp and ls sort above k)", got)
	}
	pLt := treepattern.New(
		treepattern.Desc("id_str").WithLt(nested.StringVal("k")), // only "jm"
	)
	if got := pLt.Match(rows).Len(); got != 1 {
		t.Errorf("WithLt matched %d items, want 1", got)
	}
	// Numeric widening: int value vs double bound.
	d := engine.NewDataset("d", []nested.Value{
		nested.Item(nested.F("v", nested.Int(3))),
		nested.Item(nested.F("v", nested.Int(7))),
	}, 1, engine.NewIDGen(1))
	pNum := treepattern.New(treepattern.Child("v").WithGt(nested.Double(3.5)))
	if got := pNum.Match(d).Len(); got != 1 {
		t.Errorf("numeric WithGt matched %d, want 1", got)
	}
	s := treepattern.New(
		treepattern.Child("v").WithLt(nested.Int(9)).WithGt(nested.Int(1)),
	).String()
	if !strings.Contains(s, "< 9") || !strings.Contains(s, "> 1") {
		t.Errorf("range rendering missing: %s", s)
	}
}

func TestMatchItemDirect(t *testing.T) {
	item := nested.Item(nested.F("a", nested.Int(1)))
	p := treepattern.New(treepattern.Child("a"))
	tree, ok := p.MatchItem(item)
	if !ok || tree.IsEmpty() {
		t.Fatal("MatchItem failed on direct attribute")
	}
	if _, ok := treepattern.New(treepattern.Child("zz")).MatchItem(item); ok {
		t.Error("MatchItem matched absent attribute")
	}
}
