// Package treepattern implements the tree-pattern provenance queries of
// Sec. 6.1: structural queries over nested result data in which nodes
// reference attributes, edges are parent-child or ancestor-descendant
// relationships, and nodes may carry value-equality and occurrence-count
// constraints (Fig. 4). Matching a pattern against a dataset identifies the
// data items for which provenance is requested and returns them as a
// backtracing structure (Def. 6.2) ready for the backtracing algorithm.
package treepattern

import (
	"fmt"
	"strings"
	"sync"

	"pebble/internal/backtrace"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/obs"
	"pebble/internal/path"
)

// Edge is the relationship between a pattern node and its parent.
type Edge uint8

// Edge kinds: parent-child or ancestor-descendant.
const (
	ChildEdge Edge = iota
	DescendantEdge
)

// Node is one tree-pattern node: it matches attributes with the given name
// reachable via its edge type, optionally constrained to a constant value
// and an occurrence count within the nearest enclosing collection.
type Node struct {
	Attr     string
	Edge     Edge
	Eq       *nested.Value
	Contains string        // substring constraint on string values ("" = none)
	Lt, Gt   *nested.Value // open range bounds on the total value order
	MinCount int           // 0 = no lower bound beyond "matches at least once"
	MaxCount int           // 0 = no upper bound
	Children []*Node
}

// Child returns a parent-child pattern node.
func Child(attr string, children ...*Node) *Node {
	return &Node{Attr: attr, Edge: ChildEdge, Children: children}
}

// Desc returns an ancestor-descendant pattern node.
func Desc(attr string, children ...*Node) *Node {
	return &Node{Attr: attr, Edge: DescendantEdge, Children: children}
}

// WithEq constrains the node's value to equal v.
func (n *Node) WithEq(v nested.Value) *Node {
	n.Eq = &v
	return n
}

// WithContains constrains the node's string value to contain the substring.
func (n *Node) WithContains(s string) *Node {
	n.Contains = s
	return n
}

// WithLt constrains the node's value to be strictly less than v (numeric
// comparisons widen int/double).
func (n *Node) WithLt(v nested.Value) *Node {
	n.Lt = &v
	return n
}

// WithGt constrains the node's value to be strictly greater than v.
func (n *Node) WithGt(v nested.Value) *Node {
	n.Gt = &v
	return n
}

// WithCount constrains how often the node may match within the nearest
// enclosing collection: [min, max] occurrences, max 0 meaning unbounded.
func (n *Node) WithCount(min, max int) *Node {
	n.MinCount, n.MaxCount = min, max
	return n
}

// Pattern is a tree pattern whose implicit root is the top-level data item.
// Do not copy a Pattern by value once it has matched — it caches its
// compiled form (see compile.go).
type Pattern struct {
	Children []*Node

	// compileOnce/compiled cache the one-time Compile() result shared by
	// every Match on this pattern.
	compileOnce sync.Once
	compiled    *Compiled
}

// New returns a pattern with the given root children.
func New(children ...*Node) *Pattern {
	return &Pattern{Children: children}
}

// String renders the pattern for diagnostics.
func (p *Pattern) String() string {
	var sb strings.Builder
	sb.WriteString("root")
	var render func(n *Node, depth int)
	render = func(n *Node, depth int) {
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("  ", depth))
		if n.Edge == DescendantEdge {
			sb.WriteString("//")
		}
		sb.WriteString(n.Attr)
		if n.Eq != nil {
			fmt.Fprintf(&sb, " == %s", *n.Eq)
		}
		if n.Contains != "" {
			fmt.Fprintf(&sb, " contains %q", n.Contains)
		}
		if n.Lt != nil {
			fmt.Fprintf(&sb, " < %s", *n.Lt)
		}
		if n.Gt != nil {
			fmt.Fprintf(&sb, " > %s", *n.Gt)
		}
		if n.MinCount > 0 || n.MaxCount > 0 {
			fmt.Fprintf(&sb, " [%d,%d]", n.MinCount, n.MaxCount)
		}
		for _, c := range n.Children {
			render(c, depth+1)
		}
	}
	for _, c := range p.Children {
		render(c, 1)
	}
	return sb.String()
}

// binding is one concrete match of a pattern node: the path where it matched
// plus the bindings of its pattern children.
type binding struct {
	path     path.Path
	children []binding
}

// MatchItem matches the pattern against one data item and returns the
// backtracing tree of matched paths, or ok == false when the item does not
// satisfy the pattern. This is the reference AST interpreter; the dataset
// Match path runs the compiled form (compile.go) and is pinned against this
// one by the oracle tests.
func (p *Pattern) MatchItem(d nested.Value) (*backtrace.Tree, bool) {
	var all []binding
	for _, c := range p.Children {
		bs := matchNode(c, d, nil)
		if bs == nil {
			return nil, false
		}
		all = append(all, bs...)
	}
	return bindingsTree(all), true
}

// bindingsTree folds the matched bindings into a backtracing tree of
// contributing paths.
func bindingsTree(all []binding) *backtrace.Tree {
	t := backtrace.NewTree()
	var addBindings func(bs []binding)
	addBindings = func(bs []binding) {
		for _, b := range bs {
			t.EnsureContributing(b.path)
			addBindings(b.children)
		}
	}
	addBindings(all)
	return t
}

// Match matches the pattern against every row of the dataset in parallel
// (one goroutine per partition) and returns the backtracing structure over
// the matching rows — the distributed tree-pattern matching step that feeds
// Alg. 1.
func (p *Pattern) Match(d *engine.Dataset) *backtrace.Structure {
	return p.MatchObserved(d, nil)
}

// MatchObserved matches like Match and reports the matching phase's
// duration into the recorder as obs.SpanPatternMatch (a nil recorder is
// fine) — together with the tracer's backtrace span this splits query time
// into its match and walk shares. The pattern is compiled once (reported as
// obs.SpanPatternCompile on first use) and the compiled form — immutable and
// race-clean — is shared by every partition goroutine and every later Match.
func (p *Pattern) MatchObserved(d *engine.Dataset, rec *obs.Recorder) *backtrace.Structure {
	return p.compileObserved(rec).MatchObserved(d, rec)
}

// matchNode returns all bindings of pattern node n within context value ctx
// (addressed by prefix), or nil when the node does not match (including
// count-constraint violations).
func matchNode(n *Node, ctx nested.Value, prefix path.Path) []binding {
	locs := locate(n, ctx, prefix)
	var out []binding
	for _, loc := range locs {
		b, ok := bindAt(n, loc.val, loc.p)
		if ok {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		return nil
	}
	if n.MinCount > 0 && len(out) < n.MinCount {
		return nil
	}
	if n.MaxCount > 0 && len(out) > n.MaxCount {
		return nil
	}
	return out
}

// bindAt checks the node's value conditions and child patterns at one
// location.
func bindAt(n *Node, val nested.Value, p path.Path) (binding, bool) {
	if n.Eq != nil && !nested.Equal(val, *n.Eq) {
		return binding{}, false
	}
	if n.Contains != "" {
		s, ok := val.AsString()
		if !ok || !strings.Contains(s, n.Contains) {
			return binding{}, false
		}
	}
	if n.Lt != nil && !(compareWidened(val, *n.Lt) < 0) {
		return binding{}, false
	}
	if n.Gt != nil && !(compareWidened(val, *n.Gt) > 0) {
		return binding{}, false
	}
	b := binding{path: p}
	for _, c := range n.Children {
		cb := matchNode(c, val, p)
		if cb == nil {
			return binding{}, false
		}
		b.children = append(b.children, cb...)
	}
	return b, true
}

type location struct {
	val nested.Value
	p   path.Path
}

// locate finds the attribute occurrences the node's edge can reach from ctx:
// direct attributes (fanning through collection elements) for child edges,
// any depth for descendant edges.
func locate(n *Node, ctx nested.Value, prefix path.Path) []location {
	var out []location
	switch ctx.Kind() {
	case nested.KindItem:
		for _, f := range ctx.Fields() {
			p := prefix.Append(path.Step{Attr: f.Name, Index: path.NoIndex})
			if f.Name == n.Attr {
				out = append(out, location{val: f.Value, p: p})
				if n.Edge == ChildEdge {
					continue
				}
			}
			if n.Edge == DescendantEdge {
				out = append(out, locate(n, f.Value, p)...)
			}
		}
	case nested.KindBag, nested.KindSet:
		for i, e := range ctx.Elems() {
			p := prefix.Append(path.Step{Index: i + 1})
			out = append(out, locate(n, e, p)...)
		}
	}
	return out
}

// compareWidened compares two values, widening int/double pairs.
func compareWidened(a, b nested.Value) int {
	if a.Kind() != b.Kind() {
		af, aok := a.AsDouble()
		bf, bok := b.AsDouble()
		if aok && bok {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			}
			return 0
		}
	}
	return nested.Compare(a, b)
}
