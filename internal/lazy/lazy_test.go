package lazy_test

import (
	"sort"
	"testing"

	"pebble/internal/core"
	"pebble/internal/engine"
	"pebble/internal/lazy"
	"pebble/internal/workload"
)

// origIDsOf translates a traced structure to sorted raw-input identifiers.
func origIDsOf(items []int64, trans map[int64]int64) []int64 {
	out := make([]int64, 0, len(items))
	for _, id := range items {
		out = append(out, trans[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestLazyMatchesEager: the lazy (PROVision-style) query must return the
// same input items as the eager/holistic query, per source, modulo the fresh
// identifiers every rerun assigns.
func TestLazyMatchesEager(t *testing.T) {
	scale := workload.DefaultScale(1)
	for _, name := range []string{"T3", "T5", "D1"} {
		sc, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		inputs := sc.Input(scale, 4)
		opts := engine.Options{Partitions: 4}

		// Eager: capture once, query from the captured provenance.
		session := core.Session{Partitions: 4}
		cap, err := session.Capture(sc.Build(), inputs)
		if err != nil {
			t.Fatal(err)
		}
		eager, err := cap.Query(sc.Pattern)
		if err != nil {
			t.Fatal(err)
		}

		// Lazy: no prior capture; rerun per input at query time.
		lz, stats, err := lazy.Query(sc.Build, inputs, sc.Pattern, opts)
		if err != nil {
			t.Fatal(err)
		}
		wantReruns := 0
		for _, op := range sc.Build().Ops() {
			if op.Type() == engine.OpSource {
				wantReruns++
			}
		}
		if stats.Reruns != wantReruns {
			t.Errorf("%s: reruns = %d, want %d", name, stats.Reruns, wantReruns)
		}
		if stats.Elapsed <= 0 {
			t.Errorf("%s: elapsed not recorded", name)
		}

		// Compare per-source raw-input id sets.
		for oid, ls := range lz.BySource {
			eagerStruct := eager.Traced.Structure(oid)
			eagerOp, _ := cap.Provenance.Op(oid)
			eagerTrans := make(map[int64]int64)
			for _, sa := range eagerOp.SourceIDs {
				eagerTrans[sa.ID] = sa.OrigID
			}
			lazyIDs := origIDsOf(ls.IDs(), lz.OrigIDs[oid])
			eagerIDs := origIDsOf(eagerStruct.IDs(), eagerTrans)
			if len(lazyIDs) != len(eagerIDs) {
				t.Fatalf("%s source %d: lazy %d items, eager %d", name, oid, len(lazyIDs), len(eagerIDs))
			}
			for i := range lazyIDs {
				if lazyIDs[i] != eagerIDs[i] {
					t.Errorf("%s source %d: item %d differs (%d vs %d)", name, oid, i, lazyIDs[i], eagerIDs[i])
				}
			}
		}
	}
}

// TestLazyRerunsScaleWithInputs: multi-input pipelines pay one rerun per
// input dataset — the structural reason the paper's Fig. 9 shows 4–7×
// slowdowns on T3, T5, D3.
func TestLazyRerunsScaleWithInputs(t *testing.T) {
	scale := workload.DefaultScale(1)
	single, _ := workload.ByName("T1") // one read
	double, _ := workload.ByName("T3") // two reads
	_, s1, err := lazy.Query(single.Build, single.Input(scale, 2), single.Pattern, engine.Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := lazy.Query(double.Build, double.Input(scale, 2), double.Pattern, engine.Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Reruns != 1 || s2.Reruns != 2 {
		t.Errorf("reruns = %d and %d, want 1 and 2", s1.Reruns, s2.Reruns)
	}
}
