// Package lazy implements a fully lazy provenance querying approach in the
// style of PROVision (Zheng et al., ICDE 2019), the comparison point of
// Sec. 7.3.3: no provenance is captured during the normal pipeline run;
// when a provenance question arrives, the pipeline is re-executed with
// capture — once per input dataset — and each re-execution is traced for
// that input only. The cost therefore multiplies with the number of input
// datasets and grows with pipeline depth, which is exactly the effect
// Fig. 9 reports (the eager/holistic approach is always faster, by 4–7× on
// the multi-input, deep scenarios T3, T5, D3).
package lazy

import (
	"time"

	"pebble/internal/backtrace"
	"pebble/internal/engine"
	"pebble/internal/provenance"
	"pebble/internal/treepattern"
)

// QueryStats reports the cost of a lazy query.
type QueryStats struct {
	// Reruns is the number of capture re-executions (= distinct source
	// operators of the pipeline).
	Reruns int
	// Elapsed is the total wall time of the lazy query.
	Elapsed time.Duration
}

// Result is the outcome of a lazy query. Because every rerun assigns fresh
// provenance identifiers, OrigIDs additionally translates each source's
// identifiers back to the raw input rows so results can be compared across
// runs.
type Result struct {
	BySource map[int]*backtrace.Structure
	OrigIDs  map[int]map[int64]int64
}

// Query answers a structural provenance question lazily: build is invoked to
// (re)construct the pipeline for each capture re-execution, inputs supplies
// the raw datasets, and pattern selects the queried result items. The
// returned result maps source operators to their backtraced structures, like
// the eager path does.
func Query(build func() *engine.Pipeline, inputs map[string]*engine.Dataset,
	pattern *treepattern.Pattern, opts engine.Options) (*Result, QueryStats, error) {

	start := time.Now()
	// Determine the source operators needing independent traces.
	probe := build()
	var sourceOIDs []int
	for _, op := range probe.Ops() {
		if op.Type() == engine.OpSource {
			sourceOIDs = append(sourceOIDs, op.ID())
		}
	}
	out := &Result{
		BySource: make(map[int]*backtrace.Structure),
		OrigIDs:  make(map[int]map[int64]int64),
	}
	stats := QueryStats{Reruns: len(sourceOIDs)}
	// One capture re-execution per input dataset: PROVision traces result
	// items back for each input independently (Sec. 7.3.3).
	for _, sourceOID := range sourceOIDs {
		pipe := build()
		res, run, err := provenance.Capture(pipe, inputs, opts)
		if err != nil {
			return nil, stats, err
		}
		b := pattern.Match(res.Output)
		traced, err := backtrace.Trace(run, pipe.Sink().ID(), b)
		if err != nil {
			return nil, stats, err
		}
		if s, ok := traced.BySource[sourceOID]; ok {
			out.BySource[sourceOID] = s
			if op, ok := run.Op(sourceOID); ok {
				m := make(map[int64]int64, len(op.SourceIDs))
				for _, sa := range op.SourceIDs {
					m[sa.ID] = sa.OrigID
				}
				out.OrigIDs[sourceOID] = m
			}
		}
	}
	stats.Elapsed = time.Since(start)
	return out, stats, nil
}
