package engine

import (
	"strings"
	"testing"

	"pebble/internal/nested"
)

func evalBool(t *testing.T, e Expr, d nested.Value) bool {
	t.Helper()
	v, err := e.Eval(d)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	b, ok := v.AsBool()
	if !ok {
		t.Fatalf("Eval(%s) = %s, not bool", e, v)
	}
	return b
}

func exprItem() nested.Value {
	return nested.Item(
		nested.F("text", nested.StringVal("Hello World")),
		nested.F("retweet_cnt", nested.Int(0)),
		nested.F("score", nested.Double(1.5)),
		nested.F("user", nested.Item(nested.F("id_str", nested.StringVal("lp")))),
		nested.F("tags", nested.Bag(nested.StringVal("a"), nested.StringVal("b"))),
	)
}

func TestColAndLit(t *testing.T) {
	d := exprItem()
	v, err := Col("user.id_str").Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := v.AsString(); s != "lp" {
		t.Errorf("Col(user.id_str) = %s", v)
	}
	miss, err := Col("no.such").Eval(d)
	if err != nil || !miss.IsNull() {
		t.Errorf("missing column should be null, got %s, %v", miss, err)
	}
	if got := Col("user.id_str").Paths()[0].String(); got != "user.id_str" {
		t.Errorf("Col paths = %s", got)
	}
	lv, _ := LitInt(5).Eval(d)
	if i, _ := lv.AsInt(); i != 5 {
		t.Error("LitInt broken")
	}
	if LitString("x").Paths() != nil {
		t.Error("literals access no paths")
	}
}

func TestComparisons(t *testing.T) {
	d := exprItem()
	cases := []struct {
		e    Expr
		want bool
	}{
		{Eq(Col("retweet_cnt"), LitInt(0)), true},
		{Eq(Col("retweet_cnt"), LitInt(1)), false},
		{Ne(Col("retweet_cnt"), LitInt(1)), true},
		{Lt(Col("retweet_cnt"), LitInt(1)), true},
		{Le(Col("retweet_cnt"), LitInt(0)), true},
		{Gt(Col("score"), LitInt(1)), true}, // double vs int widening
		{Ge(Col("score"), LitDouble(1.5)), true},
		{Eq(Col("score"), LitDouble(1.5)), true},
		{Eq(Col("text"), LitString("Hello World")), true},
		{Eq(Col("missing"), LitInt(0)), false},       // null comparisons are false
		{Ne(Col("missing"), LitInt(0)), true},        // except != non-null
		{Ne(Col("missing"), Col("missing2")), false}, // null != null is false
	}
	for _, c := range cases {
		if got := evalBool(t, c.e, d); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestBoolOps(t *testing.T) {
	d := exprItem()
	tr := Eq(Col("retweet_cnt"), LitInt(0))
	fa := Eq(Col("retweet_cnt"), LitInt(1))
	if !evalBool(t, And(tr, tr), d) || evalBool(t, And(tr, fa), d) {
		t.Error("And broken")
	}
	if !evalBool(t, Or(fa, tr), d) || evalBool(t, Or(fa, fa), d) {
		t.Error("Or broken")
	}
	if !evalBool(t, Not(fa), d) || evalBool(t, Not(tr), d) {
		t.Error("Not broken")
	}
	if !evalBool(t, And(), d) || evalBool(t, Or(), d) {
		t.Error("empty And/Or identities broken")
	}
	if _, err := And(Col("text")).Eval(d); err == nil {
		t.Error("And over non-boolean should error")
	}
	if _, err := Not(Col("text")).Eval(d); err == nil {
		t.Error("Not over non-boolean should error")
	}
}

func TestContainsLenIsNull(t *testing.T) {
	d := exprItem()
	if !evalBool(t, Contains(Col("text"), LitString("World")), d) {
		t.Error("Contains positive broken")
	}
	if evalBool(t, Contains(Col("text"), LitString("BTS")), d) {
		t.Error("Contains negative broken")
	}
	if evalBool(t, Contains(Col("retweet_cnt"), LitString("0")), d) {
		t.Error("Contains over non-string should be false")
	}
	if !evalBool(t, IsNull(Col("missing")), d) || evalBool(t, IsNull(Col("text")), d) {
		t.Error("IsNull broken")
	}
	lv, _ := Len(Col("tags")).Eval(d)
	if n, _ := lv.AsInt(); n != 2 {
		t.Errorf("Len(tags) = %d", n)
	}
	lv2, _ := Len(Col("text")).Eval(d)
	if n, _ := lv2.AsInt(); n != 0 {
		t.Errorf("Len(non-collection) = %d, want 0", n)
	}
}

func TestExprPathsAndString(t *testing.T) {
	e := And(Eq(Col("user.id_str"), LitString("lp")), Contains(Col("text"), LitString("x")))
	var ps []string
	for _, p := range e.Paths() {
		ps = append(ps, p.String())
	}
	if len(ps) != 2 || ps[0] != "user.id_str" || ps[1] != "text" {
		t.Errorf("Paths = %v", ps)
	}
	s := e.String()
	for _, want := range []string{"user.id_str", "==", "&&", "contains"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %s missing %q", s, want)
		}
	}
	if got := Not(IsNull(Col("a"))).String(); got != "!isnull(a)" {
		t.Errorf("Not/IsNull String = %s", got)
	}
	if got := Len(Col("a")).Paths(); len(got) != 1 {
		t.Errorf("Len paths = %v", got)
	}
}
