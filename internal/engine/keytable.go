package engine

import (
	"bytes"
	"sync"

	"pebble/internal/nested"
)

// keyTable is the flat open-addressing hash table shared by the vectorized
// join and aggregate kernels (DESIGN.md §13). Rows are clustered by key in
// two steps: the key's hash (cached by the shuffle, so no rehash per row)
// selects a slot run, and the key's normalized byte encoding
// (nested.Value.AppendNorm) decides equality. Compared with the row path's
// map[uint64][]keyedRow + per-candidate structural comparison, the table
// keeps all per-group state in parallel int32 arrays and all key bytes in a
// single arena, so building and probing allocate nothing in steady state
// (the table and its arrays are pooled).
//
// Semantics contract: within one hash value, byte equality coincides exactly
// with the row path's match disciplines — compareWidened(a,b)==0 for joins,
// nested.Equal for aggregate grouping. The cases where those predicates are
// coarser than byte equality (±0.0, NaNs of any payload, int/double widening)
// all hash differently (Hash feeds on the kind tag and raw Float64bits), so
// they never meet inside one hash chain under either executor. The residual
// difference is a 64-bit FNV collision between structurally different keys,
// which both executors already accept as a non-match source of error.
//
// Group indexes are dense and assigned in first-seen row order — the same
// order the row path's chain insertion produces — and each group's rows are
// chained through next in insertion (= sequence) order, so walking a group
// reproduces the row path's match and grouping order exactly.
type keyTable struct {
	slots []int32 // group index + 1; 0 marks an empty slot
	mask  uint64

	// Per-group parallel arrays, indexed by dense group id.
	hash   []uint64
	keyOff []int32
	keyLen []int32
	head   []int32
	tail   []int32
	count  []int32
	fields []int32        // join build: Σ NumFields() over the group's rows
	keys   []nested.Value // aggregate: first-seen key value per group

	next  []int32 // per inserted row: next row index of the same group, -1 ends
	arena []byte  // normalized key bytes of all groups
}

// reset prepares the table for up to n insertions: power-of-two slot count at
// load factor ≤ 1/2, so the probe loops never need a mid-build rehash.
func (t *keyTable) reset(n int) {
	capSlots := 16
	for capSlots < 2*n {
		capSlots *= 2
	}
	if cap(t.slots) < capSlots {
		t.slots = make([]int32, capSlots)
	} else {
		t.slots = t.slots[:capSlots]
		clear(t.slots)
	}
	t.mask = uint64(capSlots - 1)
	t.hash = t.hash[:0]
	t.keyOff, t.keyLen = t.keyOff[:0], t.keyLen[:0]
	t.head, t.tail, t.count, t.fields = t.head[:0], t.tail[:0], t.count[:0], t.fields[:0]
	t.keys = t.keys[:0]
	if cap(t.next) < n {
		t.next = make([]int32, 0, n)
	} else {
		t.next = t.next[:0]
	}
	t.arena = t.arena[:0]
}

// groups returns the number of distinct keys inserted.
func (t *keyTable) groups() int { return len(t.hash) }

// keyBytes returns the stored normalized encoding of group g.
func (t *keyTable) keyBytes(g int32) []byte {
	return t.arena[t.keyOff[g] : t.keyOff[g]+t.keyLen[g]]
}

// insert adds row index ri (rows must be inserted with consecutive indexes
// starting at 0) under key k with cached hash h, and returns the row's dense
// group index. nFields accumulates into the group's field sum (join output
// sizing); keepKey retains the first-seen key value per group (aggregate
// output keys).
func (t *keyTable) insert(h uint64, k nested.Value, ri int32, nFields int32, keepKey bool) int32 {
	start := len(t.arena)
	t.arena = k.AppendNorm(t.arena)
	kb := t.arena[start:]
	i := h & t.mask
	for {
		s := t.slots[i]
		if s == 0 {
			g := int32(len(t.hash))
			t.slots[i] = g + 1
			t.hash = append(t.hash, h)
			t.keyOff = append(t.keyOff, int32(start))
			t.keyLen = append(t.keyLen, int32(len(kb)))
			t.head = append(t.head, ri)
			t.tail = append(t.tail, ri)
			t.count = append(t.count, 1)
			t.fields = append(t.fields, nFields)
			if keepKey {
				t.keys = append(t.keys, k)
			}
			t.next = append(t.next, -1)
			return g
		}
		g := s - 1
		if t.hash[g] == h && bytes.Equal(t.keyBytes(g), kb) {
			t.arena = t.arena[:start]
			t.next = append(t.next, -1)
			t.next[t.tail[g]] = ri
			t.tail[g] = ri
			t.count[g]++
			t.fields[g] += nFields
			return g
		}
		i = (i + 1) & t.mask
	}
}

// lookup returns the group index for (h, kb), or -1. Read-only: safe for
// concurrent probes once the build is complete (the broadcast join probes one
// shared table from all partition workers).
func (t *keyTable) lookup(h uint64, kb []byte) int32 {
	i := h & t.mask
	for {
		s := t.slots[i]
		if s == 0 {
			return -1
		}
		g := s - 1
		if t.hash[g] == h && bytes.Equal(t.keyBytes(g), kb) {
			return g
		}
		i = (i + 1) & t.mask
	}
}

// keyTablePool recycles tables with their slot, group, chain, and arena
// storage across morsels and workers. Pooled slices keep stale contents
// (including key Values in keys) until overwritten, bounded by the largest
// morsel and released when the GC clears the pool; reset trims lengths, not
// memory. Outputs never alias the table: group walks read ids and boxed
// values out of it, so putting a table back cannot mutate operator results
// (pinned by TestJoinAggScratchPoolsDoNotAliasResults).
var keyTablePool = sync.Pool{
	New: func() any { return new(keyTable) },
}

func getKeyTable(n int) *keyTable {
	t := keyTablePool.Get().(*keyTable)
	t.reset(n)
	return t
}

func putKeyTable(t *keyTable) { keyTablePool.Put(t) }

// groupScratchPool recycles the per-row group-index buffers of the join
// probe and aggregate accumulation passes.
var groupScratchPool = sync.Pool{
	New: func() any {
		s := make([]int32, 0, batchSize)
		return &s
	},
}

func getGroupScratch(n int) []int32 {
	p := groupScratchPool.Get().(*[]int32)
	s := *p
	if cap(s) < n {
		s = make([]int32, n)
	}
	return s[:n]
}

func putGroupScratch(s []int32) {
	s = s[:0]
	groupScratchPool.Put(&s)
}
