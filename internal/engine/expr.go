package engine

import (
	"fmt"
	"strings"

	"pebble/internal/nested"
	"pebble/internal/path"
)

// Expr is a side-effect-free expression evaluated over one data item. Besides
// evaluation, every expression reports the access paths it reads — this is
// what lets operators populate the accessed-path set A of the structural
// provenance model (Def. 4.10) without inspecting opaque code.
type Expr interface {
	// Eval evaluates the expression in the context of item d. Missing
	// attributes evaluate to null rather than failing, mirroring
	// SQL-on-nested-data semantics.
	Eval(d nested.Value) (nested.Value, error)
	// Paths returns the access paths the expression reads, on schema level.
	Paths() []path.Path
	// String renders the expression for plans and error messages.
	String() string
}

// colExpr reads the value at an access path.
type colExpr struct{ p path.Path }

// Col returns an expression reading the given access path, e.g.
// Col("user.id_str"). It panics on malformed paths (construction-time error).
func Col(p string) Expr { return colExpr{p: path.MustParse(p)} }

// ColPath returns an expression reading a pre-parsed access path.
func ColPath(p path.Path) Expr { return colExpr{p: p} }

func (c colExpr) Eval(d nested.Value) (nested.Value, error) {
	v, ok := c.p.Eval(d)
	if !ok {
		return nested.Null(), nil
	}
	return v, nil
}

func (c colExpr) Paths() []path.Path { return []path.Path{c.p.SchemaLevel()} }
func (c colExpr) String() string     { return c.p.String() }

// litExpr is a constant.
type litExpr struct{ v nested.Value }

// Lit returns a constant expression.
func Lit(v nested.Value) Expr { return litExpr{v: v} }

// LitInt, LitString and LitBool are shorthands for common literals.
func LitInt(v int64) Expr      { return litExpr{v: nested.Int(v)} }
func LitString(v string) Expr  { return litExpr{v: nested.StringVal(v)} }
func LitBool(v bool) Expr      { return litExpr{v: nested.Bool(v)} }
func LitDouble(v float64) Expr { return litExpr{v: nested.Double(v)} }

func (l litExpr) Eval(nested.Value) (nested.Value, error) { return l.v, nil }
func (l litExpr) Paths() []path.Path                      { return nil }
func (l litExpr) String() string                          { return l.v.String() }

// cmpOp enumerates comparison operators.
type cmpOp uint8

const (
	opEq cmpOp = iota
	opNe
	opLt
	opLe
	opGt
	opGe
)

var cmpNames = map[cmpOp]string{
	opEq: "==", opNe: "!=", opLt: "<", opLe: "<=", opGt: ">", opGe: ">=",
}

type cmpExpr struct {
	op   cmpOp
	l, r Expr
}

// Eq returns l == r. Comparisons involving null evaluate to false (except Ne,
// which is the negation).
func Eq(l, r Expr) Expr { return cmpExpr{op: opEq, l: l, r: r} }

// Ne returns l != r.
func Ne(l, r Expr) Expr { return cmpExpr{op: opNe, l: l, r: r} }

// Lt returns l < r using the total order of nested.Compare with numeric
// widening.
func Lt(l, r Expr) Expr { return cmpExpr{op: opLt, l: l, r: r} }

// Le returns l <= r.
func Le(l, r Expr) Expr { return cmpExpr{op: opLe, l: l, r: r} }

// Gt returns l > r.
func Gt(l, r Expr) Expr { return cmpExpr{op: opGt, l: l, r: r} }

// Ge returns l >= r.
func Ge(l, r Expr) Expr { return cmpExpr{op: opGe, l: l, r: r} }

func (c cmpExpr) Eval(d nested.Value) (nested.Value, error) {
	lv, err := c.l.Eval(d)
	if err != nil {
		return nested.Value{}, err
	}
	rv, err := c.r.Eval(d)
	if err != nil {
		return nested.Value{}, err
	}
	return c.apply(lv, rv), nil
}

// apply is the scalar comparison kernel, shared verbatim between the row
// engine (Eval) and the vectorized executor's generic comparison loop —
// null handling first, then the widened three-way compare.
func (c cmpExpr) apply(lv, rv nested.Value) nested.Value {
	if lv.IsNull() || rv.IsNull() {
		return nested.Bool(c.op == opNe && !(lv.IsNull() && rv.IsNull()))
	}
	return nested.Bool(c.op.truth(compareWidened(lv, rv)))
}

// truth maps a three-way comparison result to the operator's truth value.
func (op cmpOp) truth(cmp int) bool {
	switch op {
	case opEq:
		return cmp == 0
	case opNe:
		return cmp != 0
	case opLt:
		return cmp < 0
	case opLe:
		return cmp <= 0
	case opGt:
		return cmp > 0
	case opGe:
		return cmp >= 0
	}
	return false
}

// compareWidened compares two values, widening int/double pairs so that
// Int(1) == Double(1.0).
func compareWidened(a, b nested.Value) int {
	if a.Kind() != b.Kind() {
		af, aok := a.AsDouble()
		bf, bok := b.AsDouble()
		if aok && bok {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			}
			return 0
		}
	}
	return nested.Compare(a, b)
}

func (c cmpExpr) Paths() []path.Path { return append(c.l.Paths(), c.r.Paths()...) }
func (c cmpExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", c.l, cmpNames[c.op], c.r)
}

type boolExpr struct {
	and      bool
	operands []Expr
}

// And returns the conjunction of the operands.
func And(operands ...Expr) Expr { return boolExpr{and: true, operands: operands} }

// Or returns the disjunction of the operands.
func Or(operands ...Expr) Expr { return boolExpr{and: false, operands: operands} }

func (b boolExpr) Eval(d nested.Value) (nested.Value, error) {
	for _, e := range b.operands {
		v, err := e.Eval(d)
		if err != nil {
			return nested.Value{}, err
		}
		truth, ok := v.AsBool()
		if !ok {
			return nested.Value{}, fmt.Errorf("engine: non-boolean operand %s in %s", v, b)
		}
		if b.and && !truth {
			return nested.Bool(false), nil
		}
		if !b.and && truth {
			return nested.Bool(true), nil
		}
	}
	return nested.Bool(b.and), nil
}

func (b boolExpr) Paths() []path.Path {
	var out []path.Path
	for _, e := range b.operands {
		out = append(out, e.Paths()...)
	}
	return out
}

func (b boolExpr) String() string {
	op := " || "
	if b.and {
		op = " && "
	}
	parts := make([]string, len(b.operands))
	for i, e := range b.operands {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, op) + ")"
}

type notExpr struct{ e Expr }

// Not returns the negation of a boolean expression.
func Not(e Expr) Expr { return notExpr{e: e} }

func (n notExpr) Eval(d nested.Value) (nested.Value, error) {
	v, err := n.e.Eval(d)
	if err != nil {
		return nested.Value{}, err
	}
	truth, ok := v.AsBool()
	if !ok {
		return nested.Value{}, fmt.Errorf("engine: non-boolean operand %s in !", v)
	}
	return nested.Bool(!truth), nil
}

func (n notExpr) Paths() []path.Path { return n.e.Paths() }
func (n notExpr) String() string     { return "!" + n.e.String() }

type containsExpr struct{ str, substr Expr }

// Contains returns true when the string value of str contains the string
// value of substr. Null or non-string operands evaluate to false.
func Contains(str, substr Expr) Expr { return containsExpr{str: str, substr: substr} }

func (c containsExpr) Eval(d nested.Value) (nested.Value, error) {
	sv, err := c.str.Eval(d)
	if err != nil {
		return nested.Value{}, err
	}
	subv, err := c.substr.Eval(d)
	if err != nil {
		return nested.Value{}, err
	}
	return c.apply(sv, subv), nil
}

// apply is the scalar containment kernel shared with the vectorized
// executor; null or non-string operands evaluate to false.
func (c containsExpr) apply(sv, subv nested.Value) nested.Value {
	s, ok1 := sv.AsString()
	sub, ok2 := subv.AsString()
	return nested.Bool(ok1 && ok2 && strings.Contains(s, sub))
}

func (c containsExpr) Paths() []path.Path { return append(c.str.Paths(), c.substr.Paths()...) }
func (c containsExpr) String() string {
	return fmt.Sprintf("contains(%s, %s)", c.str, c.substr)
}

type isNullExpr struct{ e Expr }

// IsNull reports whether the operand evaluates to null.
func IsNull(e Expr) Expr { return isNullExpr{e: e} }

func (i isNullExpr) Eval(d nested.Value) (nested.Value, error) {
	v, err := i.e.Eval(d)
	if err != nil {
		return nested.Value{}, err
	}
	return nested.Bool(v.IsNull()), nil
}

func (i isNullExpr) Paths() []path.Path { return i.e.Paths() }
func (i isNullExpr) String() string     { return fmt.Sprintf("isnull(%s)", i.e) }

type lenExpr struct{ e Expr }

// Len returns the number of elements of a collection-valued operand (0 for
// anything else).
func Len(e Expr) Expr { return lenExpr{e: e} }

func (l lenExpr) Eval(d nested.Value) (nested.Value, error) {
	v, err := l.e.Eval(d)
	if err != nil {
		return nested.Value{}, err
	}
	return nested.Int(int64(v.Len())), nil
}

func (l lenExpr) Paths() []path.Path { return l.e.Paths() }
func (l lenExpr) String() string     { return fmt.Sprintf("len(%s)", l.e) }

// EvalOps reports the static node count of an expression — how many
// expression nodes one Eval visits, ignoring short-circuiting (so it is an
// upper bound for And/Or). The executor multiplies it by the row count to
// attribute bulk expression-evaluation work to operators in the recorder
// (obs.ExprEvals) without touching the per-row hot path. Unknown
// (externally implemented) expressions count as one node.
func EvalOps(e Expr) int {
	switch x := e.(type) {
	case colExpr, litExpr:
		return 1
	case cmpExpr:
		return 1 + EvalOps(x.l) + EvalOps(x.r)
	case boolExpr:
		n := 1
		for _, op := range x.operands {
			n += EvalOps(op)
		}
		return n
	case notExpr:
		return 1 + EvalOps(x.e)
	case containsExpr:
		return 1 + EvalOps(x.str) + EvalOps(x.substr)
	case isNullExpr:
		return 1 + EvalOps(x.e)
	case lenExpr:
		return 1 + EvalOps(x.e)
	}
	return 1
}
