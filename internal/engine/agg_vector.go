package engine

import (
	"sort"
	"sync"

	"pebble/internal/nested"
)

// Vectorized aggregate state (DESIGN.md §13). One pass over the bucket fills
// the keyTable (dense group ids in first-seen order, reusing the hashes the
// shuffle cached) and records each row's group index; accumulation then runs
// per 256-row chunk, decoding each spec's input path into a column once and
// updating per-group typed accumulator arrays — sum/count as int64/float64
// columns, collect as CSR offset lists — instead of buffering every group's
// rows and re-walking them per spec. Contributing-identifier lists for
// capture are CSR subslices of one bucket-sized arena (ownership of each
// group's subslice transfers to the sink via ps.Agg, so the arena is a plain
// allocation, never pooled). Float sums accumulate in bucket (= sequence)
// order — the same order computeAgg visits a group's rows — so results are
// bit-identical.
//
// Fallback contract: any shape the kernel cannot reproduce exactly — an
// aggregate missing its input path, an unknown function, a non-numeric value
// under sum/avg — returns ok=false and the bucket re-runs through the scalar
// body, which reports the row engine's exact error in its exact order
// (errors surface at the first group in key-sorted order, not accumulation
// order).

// aggAccum is one spec's pooled accumulator state, indexed by dense group id.
type aggAccum struct {
	n      []int64        // count / sum / avg: non-null values seen
	sumF   []float64      // sum / avg: float accumulation (row order)
	sumI   []int64        // sum: integer accumulation while allInt
	allInt []bool         // sum: no double seen yet
	best   []nested.Value // min / max: current winner
	found  []bool         // min / max: any non-null seen
	cursor []int32        // collect: per-group fill cursor into the CSR arena
	setBuf []nested.Value // collect_set staging; pooled (nested.Set copies)
}

var aggAccumPool = sync.Pool{
	New: func() any { return new(aggAccum) },
}

// grown returns s resized to n, reusing capacity; contents are unspecified.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

func getAggAccum(nG, bucketLen int, fn AggFunc) *aggAccum {
	a := aggAccumPool.Get().(*aggAccum)
	switch fn {
	case AggCount:
		a.n = grown(a.n, nG)
		clear(a.n)
	case AggSum, AggAvg:
		a.n = grown(a.n, nG)
		clear(a.n)
		a.sumF = grown(a.sumF, nG)
		clear(a.sumF)
		a.sumI = grown(a.sumI, nG)
		clear(a.sumI)
		a.allInt = grown(a.allInt, nG)
		for i := range a.allInt {
			a.allInt[i] = true
		}
	case AggMax, AggMin:
		a.best = grown(a.best, nG)
		a.found = grown(a.found, nG)
		clear(a.found)
	case AggCollectList:
		a.cursor = grown(a.cursor, nG)
		clear(a.cursor)
	case AggCollectSet:
		a.cursor = grown(a.cursor, nG)
		clear(a.cursor)
		a.setBuf = grown(a.setBuf, bucketLen)
	}
	return a
}

func putAggAccum(a *aggAccum) { aggAccumPool.Put(a) }

// aggScratch is the pooled per-bucket scratch of the vectorized aggregate:
// per-row group indexes, CSR offsets and id cursors, the group sort order,
// and the row buffer batches are decoded from.
type aggScratch struct {
	groupOf []int32
	offsets []int32
	idCur   []int32
	order   []int
	rows    []Row
}

var aggScratchPool = sync.Pool{
	New: func() any { return &aggScratch{rows: make([]Row, batchSize)} },
}

func getAggScratch(n int) *aggScratch {
	s := aggScratchPool.Get().(*aggScratch)
	s.groupOf = grown(s.groupOf, n)
	return s
}

// sizeGroups prepares the per-group arrays once the group count is known.
func (s *aggScratch) sizeGroups(nG int) {
	s.offsets = grown(s.offsets, nG)
	s.idCur = grown(s.idCur, nG)
	clear(s.idCur)
	s.order = grown(s.order, nG)
}

func putAggScratch(s *aggScratch) { aggScratchPool.Put(s) }

// aggBucketMorsel aggregates one shuffle bucket: the vectorized kernel
// first, the scalar reference body on fallback (or under
// Options.ScalarFallback).
func (e *executor) aggBucketMorsel(o *Op, bucket []keyedRow) ([]pending, error) {
	if e.vectorized() {
		if out, ok := e.aggBucketVec(o, bucket); ok {
			return out, nil
		}
	}
	return e.aggBucketScalar(o, bucket)
}

// aggBucketScalar is the row-at-a-time reference body: hash-chain grouping by
// nested.Equal, then computeAgg per (group, spec) over the buffered rows.
func (e *executor) aggBucketScalar(o *Op, bucket []keyedRow) ([]pending, error) {
	// Group rows within the bucket by full key equality.
	type group struct {
		key  nested.Value
		rows []keyedRow
	}
	groups := make(map[uint64][]*group)
	var order []*group
	for _, kr := range bucket {
		h := kr.hash // cached by the shuffle; no rehash per row
		var g *group
		for _, cand := range groups[h] {
			if nested.Equal(cand.key, kr.key) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &group{key: kr.key} //pebblevet:ignore hotalloc -- one allocation per distinct group, not per row
			groups[h] = append(groups[h], g)
			order = append(order, g) //pebblevet:ignore hotalloc -- grows once per distinct group; group count is data-dependent
		}
		g.rows = append(g.rows, kr)
	}
	// Deterministic output: groups ordered by key, rows by sequence.
	sort.Slice(order, func(i, j int) bool { return nested.Compare(order[i].key, order[j].key) < 0 })
	var out []pending
	for _, g := range order {
		sort.Slice(g.rows, func(i, j int) bool { return g.rows[i].seq < g.rows[j].seq })
		fields := make([]nested.Field, 0, len(o.groupBy)+len(o.aggs))
		fields = append(fields, g.key.Fields()...)
		for _, spec := range o.aggs {
			av, err := computeAgg(spec, g.rows)
			if err != nil {
				return nil, err
			}
			fields = append(fields, nested.F(spec.Out, av))
		}
		// The contributing-identifier collection is only materialised
		// when provenance is captured — it is the dominant share of the
		// aggregation's capture cost (Sec. 7.3.1).
		var ids []int64
		if e.opts.Sink != nil {
			ids = make([]int64, len(g.rows))
			for i, kr := range g.rows {
				ids[i] = kr.row.ID
			}
		}
		out = append(out, pending{value: nested.Item(fields...), inIDs: ids})
	}
	return out, nil
}

// aggBucketVec is the vectorized bucket body.
func (e *executor) aggBucketVec(o *Op, bucket []keyedRow) ([]pending, bool) {
	if len(bucket) == 0 {
		return nil, true
	}
	for _, spec := range o.aggs {
		switch spec.Func {
		case AggCount: // input path optional
		case AggSum, AggAvg, AggMax, AggMin, AggCollectList, AggCollectSet:
			if len(spec.In) == 0 {
				return nil, false // scalar body reports "needs an input path"
			}
		default:
			return nil, false // scalar body reports the unknown function
		}
	}
	t := getKeyTable(len(bucket))
	defer putKeyTable(t)
	s := getAggScratch(len(bucket))
	defer putAggScratch(s)
	for i, kr := range bucket {
		s.groupOf[i] = t.insert(kr.hash, kr.key, int32(i), 0, true)
	}
	nG := t.groups()
	s.sizeGroups(nG)
	// CSR offsets by dense group id; arena layout order is irrelevant, the
	// per-group subslices just have to be disjoint and sized to the group.
	off := int32(0)
	for g := 0; g < nG; g++ {
		s.offsets[g] = off
		off += t.count[g]
	}
	accums := make([]*aggAccum, len(o.aggs))
	defer func() {
		for _, a := range accums {
			if a != nil {
				putAggAccum(a)
			}
		}
	}()
	var listVals [][]nested.Value
	for si, spec := range o.aggs {
		accums[si] = getAggAccum(nG, len(bucket), spec.Func) //pebblevet:ignore poolescape -- function-local registry of borrowed accumulators; the deferred loop releases every element before return and aggResult copies values out

		if spec.Func == AggCollectList {
			if listVals == nil {
				listVals = make([][]nested.Value, len(o.aggs))
			}
			// Retained by the output bags (nested.Bag keeps the subslices),
			// so this arena is a plain allocation, never pooled.
			listVals[si] = make([]nested.Value, len(bucket))
		}
	}
	var idsArena []int64
	if e.opts.Sink != nil {
		// Ownership of each group's subslice transfers to the sink (ps.Agg);
		// plain allocation, never pooled.
		idsArena = make([]int64, len(bucket))
	}
	// Accumulation strategy per spec: decoding a column costs one eval plus
	// one copy per value, so it only pays off when at least two specs share
	// the input path (the batch cache then dedups the decode and each spec
	// runs a typed branch-free pass). A path read by a single spec skips the
	// column — the same single-read bypass as flattenMorselVec — and
	// accumulates straight off the row values.
	shared := make([]bool, len(o.aggs))
	needBatch := false
	for si, spec := range o.aggs {
		if len(spec.In) == 0 {
			continue
		}
		for sj, other := range o.aggs {
			if sj != si && len(other.In) > 0 && other.In.String() == spec.In.String() {
				shared[si] = true
				needBatch = true
				break
			}
		}
	}
	for start := 0; start < len(bucket); start += batchSize {
		end := min(start+batchSize, len(bucket))
		chunk := bucket[start:end]
		gix := s.groupOf[start:end]
		var b *batch
		if needBatch {
			rows := s.rows[:len(chunk)]
			for i, kr := range chunk {
				rows[i] = kr.row
			}
			b = getBatch(rows)
		}
		for si, spec := range o.aggs {
			if len(spec.In) == 0 {
				continue // plain count: group sizes come from the table
			}
			var lv []nested.Value
			if listVals != nil {
				lv = listVals[si]
			}
			ok := false
			if shared[si] {
				ok = accumulateCol(spec.Func, accums[si], b.column(spec.In), gix, s.offsets, lv)
			} else {
				ok = accumulateDirect(spec, accums[si], chunk, gix, s.offsets, lv)
			}
			if !ok {
				if b != nil {
					putBatch(b)
				}
				return nil, false
			}
		}
		if idsArena != nil {
			for i, kr := range chunk {
				g := gix[i]
				idsArena[s.offsets[g]+s.idCur[g]] = kr.row.ID
				s.idCur[g]++
			}
		}
		if b != nil {
			putBatch(b)
		}
	}
	// Emit groups sorted by key: same comparator over the same initial
	// permutation (first-seen order) as the scalar body's sort, so even
	// Compare-equal distinct keys order identically.
	order := s.order[:nG]
	for g := range order {
		order[g] = g
	}
	sort.Slice(order, func(i, j int) bool { return nested.Compare(t.keys[order[i]], t.keys[order[j]]) < 0 })
	out := make([]pending, 0, nG)
	for _, g := range order {
		fields := make([]nested.Field, 0, len(o.groupBy)+len(o.aggs))
		fields = append(fields, t.keys[g].Fields()...)
		for si, spec := range o.aggs {
			var lv []nested.Value
			if listVals != nil {
				lv = listVals[si]
			}
			fields = append(fields, nested.F(spec.Out, aggResult(spec, accums[si], int32(g), t.count[g], s.offsets[g], lv)))
		}
		var ids []int64
		if idsArena != nil {
			o0 := s.offsets[g]
			ids = idsArena[o0 : o0+t.count[g] : o0+t.count[g]]
		}
		out = append(out, pending{value: nested.Item(fields...), inIDs: ids})
	}
	return out, true
}

// accumulateCol folds one decoded column chunk into a spec's accumulators.
// Returns false when a value the row path would reject is seen — the bucket
// then falls back wholesale so the scalar body reproduces the exact error.
func accumulateCol(fn AggFunc, a *aggAccum, c *colVec, groupOf []int32, offsets []int32, list []nested.Value) bool {
	n := len(groupOf)
	switch fn {
	case AggCount:
		for i := 0; i < n; i++ {
			if !c.isNull(i) {
				a.n[groupOf[i]]++
			}
		}
	case AggSum, AggAvg:
		switch c.kind {
		case nested.KindInt:
			for i := 0; i < n; i++ {
				if c.valid != nil && !c.valid.get(i) {
					continue
				}
				g := groupOf[i]
				v := c.ints[c.phys(i)]
				a.sumI[g] += v
				a.sumF[g] += float64(v)
				a.n[g]++
			}
		case nested.KindDouble:
			for i := 0; i < n; i++ {
				if c.valid != nil && !c.valid.get(i) {
					continue
				}
				g := groupOf[i]
				a.allInt[g] = false
				a.sumF[g] += c.dbls[c.phys(i)]
				a.n[g]++
			}
		case nested.KindInvalid:
			for i := 0; i < n; i++ {
				v := c.vals[c.phys(i)]
				if v.IsNull() {
					continue
				}
				f, ok := v.AsDouble()
				if !ok {
					return false // non-numeric: scalar body reports it
				}
				g := groupOf[i]
				if iv, isInt := v.AsInt(); isInt {
					a.sumI[g] += iv
				} else {
					a.allInt[g] = false
				}
				a.sumF[g] += f
				a.n[g]++
			}
		default:
			// A string/bool column always holds at least one non-null value
			// of that kind, which the row path rejects as non-numeric.
			return false
		}
	case AggMax, AggMin:
		for i := 0; i < n; i++ {
			v := c.at(i)
			if v.IsNull() {
				continue
			}
			g := groupOf[i]
			if !a.found[g] {
				a.best[g], a.found[g] = v, true
				continue
			}
			// Strictly-better replaces: ties and NaN comparisons (which
			// compare as 0) keep the incumbent, like computeAgg.
			cr := compareWidened(v, a.best[g])
			if (fn == AggMax && cr > 0) || (fn == AggMin && cr < 0) {
				a.best[g] = v
			}
		}
	case AggCollectList:
		// Nulls are kept so element positions stay aligned with the recorded
		// input-identifier order (the invariant Alg. 4 relies on).
		for i := 0; i < n; i++ {
			g := groupOf[i]
			list[offsets[g]+a.cursor[g]] = c.at(i)
			a.cursor[g]++
		}
	case AggCollectSet:
		for i := 0; i < n; i++ {
			v := c.at(i)
			if v.IsNull() {
				continue
			}
			g := groupOf[i]
			a.setBuf[offsets[g]+a.cursor[g]] = v
			a.cursor[g]++
		}
	}
	return true
}

// accumulateDirect folds one chunk into a spec's accumulators by evaluating
// the input path per row, for paths no other spec shares (decoding a column
// would add a copy over this single read). Same value semantics and fallback
// contract as accumulateCol; absent paths evaluate as null, like computeAgg.
func accumulateDirect(spec AggSpec, a *aggAccum, chunk []keyedRow, groupOf []int32, offsets []int32, list []nested.Value) bool {
	for i := range chunk {
		v, ok := spec.In.Eval(chunk[i].row.Value)
		if !ok {
			v = nested.Null()
		}
		g := groupOf[i]
		switch spec.Func {
		case AggCount:
			if !v.IsNull() {
				a.n[g]++
			}
		case AggSum, AggAvg:
			if v.IsNull() {
				continue
			}
			f, ok := v.AsDouble()
			if !ok {
				return false // non-numeric: scalar body reports it
			}
			if iv, isInt := v.AsInt(); isInt {
				a.sumI[g] += iv
			} else {
				a.allInt[g] = false
			}
			a.sumF[g] += f
			a.n[g]++
		case AggMax, AggMin:
			if v.IsNull() {
				continue
			}
			if !a.found[g] {
				a.best[g], a.found[g] = v, true
				continue
			}
			cr := compareWidened(v, a.best[g])
			if (spec.Func == AggMax && cr > 0) || (spec.Func == AggMin && cr < 0) {
				a.best[g] = v
			}
		case AggCollectList:
			// Nulls are kept so element positions stay aligned with the
			// recorded input-identifier order (the invariant Alg. 4 relies on).
			list[offsets[g]+a.cursor[g]] = v
			a.cursor[g]++
		case AggCollectSet:
			if v.IsNull() {
				continue
			}
			a.setBuf[offsets[g]+a.cursor[g]] = v
			a.cursor[g]++
		}
	}
	return true
}

// aggResult materialises one spec's final value for group g — the same
// results computeAgg produces from a buffered group.
func aggResult(spec AggSpec, a *aggAccum, g, size int32, off int32, list []nested.Value) nested.Value {
	switch spec.Func {
	case AggCount:
		if len(spec.In) == 0 {
			return nested.Int(int64(size))
		}
		return nested.Int(a.n[g])
	case AggSum:
		if a.allInt[g] {
			return nested.Int(a.sumI[g])
		}
		return nested.Double(a.sumF[g])
	case AggAvg:
		if a.n[g] == 0 {
			return nested.Null()
		}
		return nested.Double(a.sumF[g] / float64(a.n[g]))
	case AggMax, AggMin:
		if !a.found[g] {
			return nested.Null()
		}
		return a.best[g]
	case AggCollectList:
		end := off + size
		return nested.Bag(list[off:end:end]...)
	case AggCollectSet:
		return nested.Set(a.setBuf[off : off+a.cursor[g]]...)
	}
	return nested.Value{} // unreachable: the precheck rejected unknown funcs
}
