package engine

import (
	"sort"

	"pebble/internal/nested"
	"pebble/internal/obs"
)

// This file implements the extension operators beyond the paper's Sec. 5
// set: distinct, orderBy, and limit. They reuse the unary ⟨id_i, id_o⟩
// association layout; distinct records one association per collapsed
// duplicate so that every witness contributes.

func (e *executor) execDistinct(o *Op) (*Dataset, error) {
	in := e.in(o, 0)
	e.startOperator(o, e.opts.Partitions, nil, nil, nested.Null())
	buckets, err := e.shuffle(in, o.id, identityShuffleKey(), e.opts.Partitions, true)
	if err != nil {
		return nil, err
	}
	parts := make([][]pending, e.opts.Partitions)
	err = e.forEachPartition(e.opts.Partitions, func(part int) error {
		type entry struct {
			value nested.Value
			seq   int
			ids   []int64
		}
		byHash := make(map[uint64][]*entry)
		var order []*entry
		for _, kr := range buckets[part] {
			h := kr.hash // cached by the shuffle; no rehash per row
			var found *entry
			for _, cand := range byHash[h] {
				if nested.Equal(cand.value, kr.row.Value) {
					found = cand
					break
				}
			}
			if found == nil {
				found = &entry{value: kr.row.Value, seq: kr.seq} //pebblevet:ignore hotalloc -- one allocation per distinct value, not per row
				byHash[h] = append(byHash[h], found)
				order = append(order, found) //pebblevet:ignore hotalloc -- grows once per distinct value; distinct count is data-dependent
			}
			if kr.seq < found.seq {
				found.seq = kr.seq
			}
			found.ids = append(found.ids, kr.row.ID)
		}
		sort.Slice(order, func(i, j int) bool { return order[i].seq < order[j].seq })
		out := make([]pending, 0, len(order))
		for _, en := range order {
			sort.Slice(en.ids, func(i, j int) bool { return en.ids[i] < en.ids[j] })
			out = append(out, pending{value: en.value, inIDs: en.ids})
		}
		parts[part] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return e.finalize(o.id, parts, assocMultiUnary)
}

func (e *executor) execOrderBy(o *Op) (*Dataset, error) {
	in := e.in(o, 0)
	e.startOperator(o, e.opts.Partitions, nil, nil, nested.Null())
	type keyedSortRow struct {
		row  Row
		keys []nested.Value
		seq  int
	}
	rows := in.Rows()
	if rec := e.opts.Recorder; rec != nil {
		sortOps := 0
		for _, k := range o.sortKeys {
			sortOps += EvalOps(k)
		}
		rec.Add(o.id, 0, obs.RowsIn, int64(len(rows)))
		rec.Add(o.id, 0, obs.ExprEvals, int64(len(rows))*int64(sortOps))
	}
	allKeys, err := e.sortKeysMorsel(o.sortKeys, rows)
	if err != nil {
		return nil, err
	}
	sorted := make([]keyedSortRow, len(rows))
	for i, r := range rows {
		sorted[i] = keyedSortRow{row: r, keys: allKeys[i], seq: i}
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		for k := range sorted[i].keys {
			c := compareWidened(sorted[i].keys[k], sorted[j].keys[k])
			if c != 0 {
				if o.sortDesc {
					return c > 0
				}
				return c < 0
			}
		}
		return sorted[i].seq < sorted[j].seq // stable on ties
	})
	// A total order is a single logical partition; chunk it contiguously so
	// partition-major iteration preserves the order.
	out := make([]pending, len(sorted))
	for i, sr := range sorted {
		out[i] = pending{value: sr.row.Value, in1: sr.row.ID}
	}
	return e.finalize(o.id, chunkContiguous(out, e.opts.Partitions), assocUnary)
}

func (e *executor) execLimit(o *Op) (*Dataset, error) {
	in := e.in(o, 0)
	e.startOperator(o, e.opts.Partitions, nil, nil, nested.Null())
	rows := in.Rows()
	e.opts.Recorder.Add(o.id, 0, obs.RowsIn, int64(len(rows)))
	n := o.limit
	if n < 0 {
		n = 0
	}
	if n > len(rows) {
		n = len(rows)
	}
	out := make([]pending, n)
	for i := 0; i < n; i++ {
		out[i] = pending{value: rows[i].Value, in1: rows[i].ID}
	}
	return e.finalize(o.id, chunkContiguous(out, e.opts.Partitions), assocUnary)
}

// chunkContiguous splits rows into at most parts contiguous chunks so that
// partition-major iteration preserves the slice order.
func chunkContiguous(rows []pending, parts int) [][]pending {
	if parts < 1 {
		parts = 1
	}
	if parts > len(rows) && len(rows) > 0 {
		parts = len(rows)
	}
	if len(rows) == 0 {
		return [][]pending{nil}
	}
	out := make([][]pending, 0, parts)
	chunk := (len(rows) + parts - 1) / parts
	for start := 0; start < len(rows); start += chunk {
		end := start + chunk
		if end > len(rows) {
			end = len(rows)
		}
		out = append(out, rows[start:end])
	}
	return out
}
