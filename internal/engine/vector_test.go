package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"pebble/internal/nested"
)

// This file proves the vectorized executor byte-identical to the row
// executor at the batch boundaries that matter: partition sizes straddling
// batchSize, empty partitions, all-null and kind-shifting columns, and
// deeply nested bags whose flattened output crosses chunk edges. Each case
// runs the same pipeline under both executors and compares the result rows
// (ids and values) and the full capture-sink stream.

// genRows builds n deterministic rows shaped like the corpus base schema,
// with every vectorization hazard mixed in: missing attributes (decoded as
// Null), explicit nulls, kind switches within a column (int → string), and
// nested bags of items with sub-bags.
func genRows(seed int64, n int) []nested.Value {
	r := rand.New(rand.NewSource(seed))
	rows := make([]nested.Value, 0, n)
	words := []string{"x", "y", "z", "w"}
	for i := 0; i < n; i++ {
		fields := []nested.Field{
			nested.F("id", nested.Int(int64(i))),
		}
		switch r.Intn(5) {
		case 0: // missing val entirely
		case 1:
			fields = append(fields, nested.F("val", nested.Null()))
		case 2: // kind switch: string where ints usually live
			fields = append(fields, nested.F("val", nested.StringVal(words[r.Intn(4)])))
		default:
			fields = append(fields, nested.F("val", nested.Int(int64(r.Intn(20)))))
		}
		if r.Intn(4) > 0 {
			fields = append(fields, nested.F("cat", nested.StringVal(words[r.Intn(4)])))
		}
		nm := r.Intn(4)
		ms := make([]nested.Value, 0, nm)
		for j := 0; j < nm; j++ {
			nt := r.Intn(3)
			tags := make([]nested.Value, 0, nt)
			for k := 0; k < nt; k++ {
				tags = append(tags, nested.StringVal(words[r.Intn(4)]))
			}
			ms = append(ms, nested.Item(
				nested.F("k", nested.StringVal(words[r.Intn(4)])),
				nested.F("tags", nested.Bag(tags...)),
			))
		}
		fields = append(fields, nested.F("subs", nested.Bag(ms...)))
		rows = append(rows, nested.Item(fields...))
	}
	return rows
}

// boundaryPipeline exercises every vectorized operator path: filter with
// short-circuit booleans, select with computed and nested fields, flatten
// (twice, through nested bags), aggregate, orderBy, and distinct.
func boundaryPipeline() *Pipeline {
	p := NewPipeline()
	src := p.Source("in")
	filt := p.Filter(src, Or(IsNull(Col("val")), And(Gt(Col("id"), LitInt(-1)), Not(Eq(Col("cat"), LitString("q"))))))
	flat := p.Flatten(filt, "subs", "sub")
	flat2 := p.Flatten(flat, "sub.tags", "tag")
	sel := p.Select(flat2,
		Column("id", "id"),
		Column("k", "sub.k"),
		Column("tag", "tag"),
		Computed("has_x", Contains(Col("tag"), LitString("x"))),
	)
	agg := p.Aggregate(sel, []GroupKey{Key("k")}, []AggSpec{
		Agg(AggCount, "", "n"),
		Agg(AggCollectList, "id", "ids"),
	})
	ord := p.OrderBy(agg, false, Col("k"))
	p.SetSink(p.Distinct(ord))
	return p
}

// runBoth executes the pipeline fresh under the vectorized and the row
// executor with recording sinks and returns both (rows, sink stream)
// renderings.
func runBoth(t *testing.T, build func() *Pipeline, values []nested.Value, parts int, opts Options) (vec, row [2]string) {
	t.Helper()
	for i, rowExec := range []bool{false, true} {
		sink := newRecordingSink()
		o := opts
		o.Partitions = parts
		o.ScalarFallback = rowExec
		o.Sink = sink
		inputs := map[string]*Dataset{"in": dataset(t, "in", values, parts)}
		res := runPipeline(t, build(), inputs, o)
		var sb strings.Builder
		for _, r := range res.Output.Rows() {
			fmt.Fprintf(&sb, "%d:%s\n", r.ID, r.Value)
		}
		out := [2]string{sb.String(), sink.stream()}
		if i == 0 {
			vec = out
		} else {
			row = out
		}
	}
	return vec, row
}

// stream renders every recorded capture event deterministically.
func (s *recordingSink) stream() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sb strings.Builder
	for _, id := range s.sources {
		fmt.Fprintf(&sb, "src %d\n", id)
	}
	for _, u := range s.unaries {
		fmt.Fprintf(&sb, "u %d %d->%d\n", u.oid, u.in, u.out)
	}
	for _, b := range s.binaries {
		fmt.Fprintf(&sb, "b %d %d,%d->%d\n", b.oid, b.l, b.r, b.out)
	}
	for _, f := range s.flattens {
		fmt.Fprintf(&sb, "f %d %d[%d]->%d\n", f.oid, f.in, f.pos, f.out)
	}
	for _, a := range s.aggs {
		fmt.Fprintf(&sb, "a %d %v->%d\n", a.oid, a.ins, a.out)
	}
	return sb.String()
}

func TestRowVsVectorAtBatchBoundaries(t *testing.T) {
	sizes := []int{1, batchSize - 1, batchSize, batchSize + 1, 2*batchSize + 1}
	for _, n := range sizes {
		n := n
		t.Run(fmt.Sprintf("rows=%d", n), func(t *testing.T) {
			vec, row := runBoth(t, boundaryPipeline, genRows(int64(n), n), 1, Options{Workers: 1})
			if vec[0] != row[0] {
				t.Errorf("results diverge at %d rows:\nvec: %s\nrow: %s", n, head(vec[0]), head(row[0]))
			}
			if vec[1] != row[1] {
				t.Errorf("capture streams diverge at %d rows:\nvec: %s\nrow: %s", n, head(vec[1]), head(row[1]))
			}
		})
	}
}

func TestRowVsVectorEmptyPartitions(t *testing.T) {
	// 3 rows over 8 partitions: most morsels are empty, several hold one row.
	// Workers stays 1 so the recorded event stream has one canonical order
	// (cross-worker agreement is the oracle's job, on serialized runs).
	vec, row := runBoth(t, boundaryPipeline, genRows(7, 3), 8, Options{Workers: 1})
	if vec[0] != row[0] || vec[1] != row[1] {
		t.Errorf("executors diverge on mostly-empty partitions:\nvec: %s\nrow: %s", head(vec[0]), head(row[0]))
	}
}

// TestRowVsVectorAllNullColumn pins the validity-bitmap edge cases: a column
// that is entirely absent, one that is explicitly null everywhere, and one
// that switches kind exactly at the batch boundary (forcing the all-null
// prefix backfill and the typed→generic demotion paths in decodeColumn).
func TestRowVsVectorAllNullColumn(t *testing.T) {
	n := batchSize + 37
	rows := make([]nested.Value, 0, n)
	for i := 0; i < n; i++ {
		fields := []nested.Field{nested.F("id", nested.Int(int64(i))), nested.F("exp", nested.Null())}
		// "late" is null for the whole first batch, then becomes an int.
		if i >= batchSize {
			fields = append(fields, nested.F("late", nested.Int(int64(i))))
		}
		// "shift" changes kind mid-batch: int, then string.
		if i < n/2 {
			fields = append(fields, nested.F("shift", nested.Int(int64(i%5))))
		} else {
			fields = append(fields, nested.F("shift", nested.StringVal("s")))
		}
		rows = append(rows, nested.Item(fields...))
	}
	build := func() *Pipeline {
		p := NewPipeline()
		src := p.Source("in")
		filt := p.Filter(src, Or(IsNull(Col("missing")), IsNull(Col("exp"))))
		sel := p.Select(filt,
			Column("id", "id"),
			Column("m", "missing"),
			Column("e", "exp"),
			Column("l", "late"),
			Column("s", "shift"),
			Computed("ln", Len(Col("shift"))),
		)
		p.SetSink(p.OrderBy(sel, true, Col("id")))
		return p
	}
	vec, row := runBoth(t, build, rows, 1, Options{Workers: 1})
	if vec[0] != row[0] {
		t.Errorf("results diverge:\nvec: %s\nrow: %s", head(vec[0]), head(row[0]))
	}
	if vec[1] != row[1] {
		t.Errorf("capture streams diverge:\nvec: %s\nrow: %s", head(vec[1]), head(row[1]))
	}
}

// TestRowVsVectorDeepBagsAcrossBoundaries explodes nested bags so the
// flatten output of one input chunk lands across several output batch
// chunks, at sizes chosen so bags straddle the 256-row edges.
func TestRowVsVectorDeepBagsAcrossBoundaries(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	n := batchSize + 11
	rows := make([]nested.Value, 0, n)
	for i := 0; i < n; i++ {
		nb := r.Intn(5) // 0..4 elements: output crosses chunk edges unpredictably
		elems := make([]nested.Value, 0, nb)
		for j := 0; j < nb; j++ {
			inner := make([]nested.Value, 0, j)
			for k := 0; k < j; k++ {
				inner = append(inner, nested.Int(int64(k)))
			}
			elems = append(elems, nested.Item(
				nested.F("j", nested.Int(int64(j))),
				nested.F("inner", nested.Bag(inner...)),
			))
		}
		rows = append(rows, nested.Item(
			nested.F("id", nested.Int(int64(i))),
			nested.F("bag", nested.Bag(elems...)),
		))
	}
	build := func() *Pipeline {
		p := NewPipeline()
		src := p.Source("in")
		f1 := p.Flatten(src, "bag", "el")
		f2 := p.Flatten(f1, "el.inner", "iv")
		p.SetSink(p.Select(f2, Column("id", "id"), Column("j", "el.j"), Column("iv", "iv")))
		return p
	}
	vec, row := runBoth(t, build, rows, 2, Options{Workers: 1})
	if vec[0] != row[0] {
		t.Errorf("results diverge:\nvec: %s\nrow: %s", head(vec[0]), head(row[0]))
	}
	if vec[1] != row[1] {
		t.Errorf("capture streams diverge:\nvec: %s\nrow: %s", head(vec[1]), head(row[1]))
	}
}

// TestBatchPoolsDoNotAliasResults proves the sync.Pool recycling never lets
// a later run's batches overwrite values an earlier result still references:
// the first result is rendered, several further pipelines churn the pools,
// and the first result must render identically afterwards.
func TestBatchPoolsDoNotAliasResults(t *testing.T) {
	values := genRows(5, batchSize+19)
	inputs := map[string]*Dataset{"in": dataset(t, "in", values, 2)}
	res := runPipeline(t, boundaryPipeline(), inputs, Options{Partitions: 2, Workers: 1})
	before := make([]string, 0, len(res.Output.Rows()))
	for _, r := range res.Output.Rows() {
		before = append(before, fmt.Sprintf("%d:%s", r.ID, r.Value))
	}
	for i := 0; i < 4; i++ {
		churn := map[string]*Dataset{"in": dataset(t, "in", genRows(int64(100+i), batchSize+7), 2)}
		runPipeline(t, boundaryPipeline(), churn, Options{Partitions: 2, Workers: 2})
	}
	for i, r := range res.Output.Rows() {
		if got := fmt.Sprintf("%d:%s", r.ID, r.Value); got != before[i] {
			t.Fatalf("row %d mutated by pool recycling:\nbefore %s\nafter  %s", i, before[i], got)
		}
	}
}

// TestVectorSharedPoolsRace drives the vectorized path with the full worker
// fan-out over the shared batch/scratch pools, including two engines running
// concurrently in one process. The -race run of the suite is the assertion.
func TestVectorSharedPoolsRace(t *testing.T) {
	values := genRows(11, 4*batchSize+13)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inputs := map[string]*Dataset{"in": NewDataset("in", values, DefaultPartitions, NewIDGen(1000))}
			sink := newRecordingSink()
			if _, err := Run(boundaryPipeline(), inputs, Options{
				Partitions: DefaultPartitions, Workers: runtime.NumCPU(), Sink: sink,
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

func head(s string) string {
	if len(s) > 400 {
		return s[:400] + "..."
	}
	return s
}
