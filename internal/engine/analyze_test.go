package engine

import (
	"testing"

	"pebble/internal/nested"
)

func analyzeExample(t *testing.T, p *Pipeline) (map[int]nested.Type, error) {
	t.Helper()
	inputs := map[string]*Dataset{"tweets.json": dataset(t, "tweets.json", tab1(), 2)}
	return Analyze(p, InferInputTypes(inputs))
}

func TestAnalyzeFigure1(t *testing.T) {
	schemas, err := analyzeExample(t, figure1())
	if err != nil {
		t.Fatal(err)
	}
	// The sink's schema is Tab. 2's type (Ex. 4.2, up to bag-of-items).
	sink := schemas[9]
	if sink.Kind != nested.KindItem {
		t.Fatalf("sink type = %s", sink)
	}
	user, ok := sink.Get("user")
	if !ok || user.Kind != nested.KindItem {
		t.Errorf("user type = %v, %v", user, ok)
	}
	tweets, ok := sink.Get("tweets")
	if !ok || tweets.Kind != nested.KindBag || tweets.Elem == nil || tweets.Elem.Kind != nested.KindItem {
		t.Errorf("tweets type = %v", tweets)
	}
	// The flatten output (op 5) adds m_user with the mention item type.
	fl := schemas[5]
	m, ok := fl.Get("m_user")
	if !ok || m.Kind != nested.KindItem {
		t.Errorf("m_user type = %v, %v", m, ok)
	}
}

func TestAnalyzeCatchesUnknownColumns(t *testing.T) {
	cases := map[string]func() *Pipeline{
		"filter-typo": func() *Pipeline {
			p := NewPipeline()
			p.Filter(p.Source("tweets.json"), Eq(Col("retweet_cnt_typo"), LitInt(0)))
			return p
		},
		"select-typo": func() *Pipeline {
			p := NewPipeline()
			p.Select(p.Source("tweets.json"), Column("x", "user.id_str_typo"))
			return p
		},
		"flatten-scalar": func() *Pipeline {
			p := NewPipeline()
			p.Flatten(p.Source("tweets.json"), "text", "x")
			return p
		},
		"flatten-collision": func() *Pipeline {
			p := NewPipeline()
			p.Flatten(p.Source("tweets.json"), "user_mentions", "text")
			return p
		},
		"sum-over-string": func() *Pipeline {
			p := NewPipeline()
			p.Aggregate(p.Source("tweets.json"),
				[]GroupKey{Key("user.id_str")},
				[]AggSpec{Agg(AggSum, "text", "s")})
			return p
		},
		"agg-duplicate-out": func() *Pipeline {
			p := NewPipeline()
			p.Aggregate(p.Source("tweets.json"),
				[]GroupKey{Key("text")},
				[]AggSpec{Agg(AggCount, "", "text")})
			return p
		},
		"sort-typo": func() *Pipeline {
			p := NewPipeline()
			p.OrderBy(p.Source("tweets.json"), false, Col("nope"))
			return p
		},
		"join-collision": func() *Pipeline {
			p := NewPipeline()
			p.Join(p.Source("tweets.json"), p.Source("tweets.json"), Col("text"), Col("text"))
			return p
		},
	}
	for name, build := range cases {
		if _, err := analyzeExample(t, build()); err == nil {
			t.Errorf("%s: analyzer accepted an invalid plan", name)
		}
	}
}

func TestAnalyzeUnionCompatibility(t *testing.T) {
	good := NewPipeline()
	a := good.Select(good.Source("tweets.json"), Column("t", "text"))
	b := good.Select(good.Source("tweets.json"), Column("t", "text"))
	good.Union(a, b)
	if _, err := analyzeExample(t, good); err != nil {
		t.Errorf("compatible union rejected: %v", err)
	}
	bad := NewPipeline()
	c := bad.Select(bad.Source("tweets.json"), Column("t", "text"))
	d := bad.Select(bad.Source("tweets.json"), Column("t", "retweet_cnt"))
	bad.Union(c, d)
	if _, err := analyzeExample(t, bad); err == nil {
		t.Error("string/int union accepted")
	}
}

func TestAnalyzeSuspendsBelowMap(t *testing.T) {
	p := NewPipeline()
	src := p.Source("tweets.json")
	m := p.Map(src, MapFunc{Name: "opaque", Fn: func(v nested.Value) (nested.Value, error) { return v, nil }})
	// This column does not exist, but below a map nothing is checked.
	p.Filter(m, Eq(Col("made_up"), LitInt(1)))
	schemas, err := analyzeExample(t, p)
	if err != nil {
		t.Fatalf("analysis below map must be suspended: %v", err)
	}
	if _, ok := schemas[m.ID()]; ok {
		t.Error("map output schema should be unknown")
	}
}

func TestAnalyzeHeterogeneousInput(t *testing.T) {
	// Records with disjoint attributes (the DBLP situation): the merged
	// schema carries the union, so type-correct plans over either subset
	// pass and genuinely unknown columns still fail.
	values := []nested.Value{
		nested.Item(nested.F("key", nested.StringVal("a")), nested.F("crossref", nested.StringVal("c1"))),
		nested.Item(nested.F("key", nested.StringVal("b")), nested.F("booktitle", nested.StringVal("EDBT"))),
	}
	inputs := map[string]*Dataset{"recs": dataset(t, "recs", values, 1)}
	types := InferInputTypes(inputs)
	rt := types["recs"]
	if _, ok := rt.Get("crossref"); !ok {
		t.Fatalf("merged schema misses crossref: %s", rt)
	}
	if _, ok := rt.Get("booktitle"); !ok {
		t.Fatalf("merged schema misses booktitle: %s", rt)
	}
	p := NewPipeline()
	p.Select(p.Source("recs"), Column("c", "crossref"), Column("b", "booktitle"))
	if _, err := Analyze(p, types); err != nil {
		t.Errorf("union-schema plan rejected: %v", err)
	}
	bad := NewPipeline()
	bad.Select(bad.Source("recs"), Column("z", "zzz"))
	if _, err := Analyze(bad, types); err == nil {
		t.Error("unknown column accepted on heterogeneous input")
	}
}

func TestAnalyzeAllScenariosPass(t *testing.T) {
	// Analysis against the generated workloads must accept every Tab. 7
	// scenario (scenarios are the analyzer's regression corpus).
	// The workload package depends on engine, so rebuild the inputs here via
	// the tab1 fixture for T-scenario shape; full-scenario analysis runs in
	// the workload package tests.
	if _, err := analyzeExample(t, figure1()); err != nil {
		t.Fatal(err)
	}
}

func TestMergeTypes(t *testing.T) {
	intT := nested.Type{Kind: nested.KindInt}
	dblT := nested.Type{Kind: nested.KindDouble}
	strT := nested.Type{Kind: nested.KindString}
	if got := mergeTypes(intT, dblT); got.Kind != nested.KindDouble {
		t.Errorf("int+double = %s", got)
	}
	if got := mergeTypes(intT, strT); got.Kind != nested.KindNull {
		t.Errorf("int+string = %s (want unknown)", got)
	}
	bagInt := nested.Type{Kind: nested.KindBag, Elem: &intT}
	bagNil := nested.Type{Kind: nested.KindBag}
	if got := mergeTypes(bagNil, bagInt); got.Elem == nil || got.Elem.Kind != nested.KindInt {
		t.Errorf("bag merge = %s", got)
	}
}
