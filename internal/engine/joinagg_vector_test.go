package engine

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// joinAggPipeline joins two inputs on a sometimes-missing string key (null
// keys exercise the skip paths) and aggregates the matches with one spec per
// accumulator family, so one run churns the keyTable, joinScratch, aggAccum,
// and aggScratch pools together.
func joinAggPipeline() *Pipeline {
	p := NewPipeline()
	l := p.Source("l")
	r := p.Source("r")
	sl := p.Select(l, Column("lcat", "cat"), Column("lval", "val"), Column("lid", "id"))
	sr := p.Select(r, Column("rcat", "cat"), Column("rval", "val"))
	j := p.Join(sl, sr, Col("lcat"), Col("rcat"))
	p.Aggregate(j,
		[]GroupKey{Key("lcat")},
		[]AggSpec{
			Agg(AggCount, "lval", "n"),
			Agg(AggSum, "lid", "total"),
			Agg(AggMin, "rval", "lo"),
			Agg(AggCollectList, "lval", "vals"),
		},
	)
	return p
}

// TestJoinAggScratchPoolsDoNotAliasResults proves the join/aggregate kernel
// pools (keyTable, joinScratch, aggAccum/aggScratch, group scratch) never
// let a later run overwrite values an earlier result still references: the
// first result is rendered, several further join+aggregate pipelines churn
// the pools under both join shapes, and the first result must render
// identically afterwards.
func TestJoinAggScratchPoolsDoNotAliasResults(t *testing.T) {
	inputs := map[string]*Dataset{
		"l": dataset(t, "l", genRows(21, batchSize+31), 3),
		"r": dataset(t, "r", genRows(22, batchSize+17), 3),
	}
	res := runPipeline(t, joinAggPipeline(), inputs, Options{Partitions: 3, Workers: 1, BroadcastJoinThreshold: -1})
	before := make([]string, 0, len(res.Output.Rows()))
	for _, r := range res.Output.Rows() {
		before = append(before, fmt.Sprintf("%d:%s", r.ID, r.Value))
	}
	for i := 0; i < 4; i++ {
		churn := map[string]*Dataset{
			"l": dataset(t, "l", genRows(int64(300+i), batchSize+23), 3),
			"r": dataset(t, "r", genRows(int64(400+i), batchSize+11), 3),
		}
		threshold := -1
		if i%2 == 1 {
			threshold = 1 << 30 // broadcast shape churns the shared-table path
		}
		runPipeline(t, joinAggPipeline(), churn, Options{Partitions: 3, Workers: 2, BroadcastJoinThreshold: threshold})
	}
	for i, r := range res.Output.Rows() {
		if got := fmt.Sprintf("%d:%s", r.ID, r.Value); got != before[i] {
			t.Fatalf("row %d mutated by pool recycling:\nbefore %s\nafter  %s", i, before[i], got)
		}
	}
}

// TestJoinAggSharedPoolsRace drives the join and aggregate kernels with the
// full worker fan-out over the shared pools, two engines in one process and
// both join shapes (the broadcast probe reads one shared keyTable from every
// partition worker). The -race run of the suite is the assertion.
func TestJoinAggSharedPoolsRace(t *testing.T) {
	lvals := genRows(31, 4*batchSize+29)
	rvals := genRows(32, 4*batchSize+37)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		threshold := -1
		if g == 1 {
			threshold = 1 << 30
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			inputs := map[string]*Dataset{
				"l": NewDataset("l", lvals, DefaultPartitions, NewIDGen(1000)),
				"r": NewDataset("r", rvals, DefaultPartitions, NewIDGen(100000)),
			}
			sink := newRecordingSink()
			if _, err := Run(joinAggPipeline(), inputs, Options{
				Partitions: DefaultPartitions, Workers: runtime.NumCPU(),
				BroadcastJoinThreshold: threshold, Sink: sink,
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestJoinAggVecMatchesScalar pins the vectorized join and aggregate kernels
// against the scalar reference body on the same byte-identity contract the
// oracle enforces, across both join shapes.
func TestJoinAggVecMatchesScalar(t *testing.T) {
	for _, threshold := range []int{-1, 1 << 30} {
		lvals := genRows(41, 2*batchSize+13)
		rvals := genRows(42, 2*batchSize+7)
		render := func(scalar bool) string {
			inputs := map[string]*Dataset{
				"l": dataset(t, "l", lvals, 3),
				"r": dataset(t, "r", rvals, 3),
			}
			// Workers: 1 — the recordingSink logs events in arrival order,
			// which only the single-worker schedule makes deterministic
			// (real capture merges per-partition sinks order-independently).
			sink := newRecordingSink()
			res := runPipeline(t, joinAggPipeline(), inputs, Options{
				Partitions: 3, Workers: 1, BroadcastJoinThreshold: threshold,
				ScalarFallback: scalar, Sink: sink,
			})
			var sb []byte
			for _, r := range res.Output.Rows() {
				sb = fmt.Appendf(sb, "%d:%s\n", r.ID, r.Value)
			}
			return string(sb) + "\n--sink--\n" + sink.stream()
		}
		vec, scalar := render(false), render(true)
		if vec != scalar {
			t.Fatalf("threshold %d: vectorized and scalar executions disagree:\nvec:\n%s\nscalar:\n%s", threshold, vec, scalar)
		}
	}
}
