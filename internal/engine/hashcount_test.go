package engine

import (
	"fmt"
	"sync/atomic"
	"testing"

	"pebble/internal/nested"
)

// TestAggregateHashesKeyOncePerRow swaps the valueHash hook for a counting
// double and asserts that an aggregation hashes each input row's group key
// exactly once: the shuffle computes and caches the hash in keyedRow, and the
// grouping loop reuses the cached value instead of rehashing. The count must
// not depend on the physical worker count.
func TestAggregateHashesKeyOncePerRow(t *testing.T) {
	var calls atomic.Int64
	orig := valueHash
	valueHash = func(v nested.Value) uint64 {
		calls.Add(1)
		return orig(v)
	}
	defer func() { valueHash = orig }()

	values := tab1() // 5 rows
	build := func() *Pipeline {
		p := NewPipeline()
		src := p.Source("tweets.json")
		p.Aggregate(src,
			[]GroupKey{Key("user")},
			[]AggSpec{Agg(AggCollectList, "text", "texts")},
		)
		return p
	}
	for _, opt := range []Options{
		{Partitions: 4, Sequential: true},
		{Partitions: 4, Workers: 2},
	} {
		t.Run(fmt.Sprintf("seq=%v workers=%d", opt.Sequential, opt.Workers), func(t *testing.T) {
			calls.Store(0)
			inputs := map[string]*Dataset{"tweets.json": dataset(t, "tweets.json", values, 2)}
			res := runPipeline(t, build(), inputs, opt)
			if res.Output.Len() != 2 { // users lp and jm
				t.Fatalf("got %d groups, want 2", res.Output.Len())
			}
			if got := calls.Load(); got != int64(len(values)) {
				t.Errorf("group keys hashed %d times for %d input rows; want exactly one hash per row",
					got, len(values))
			}
		})
	}
}
