package engine

import (
	"errors"
	"strings"

	"pebble/internal/nested"
)

// Vectorized expression evaluation: evalVec runs one expression node over a
// whole batch and returns a column. Typed fast paths (int/double/string/bool
// comparisons over decoded scalar columns) avoid materialising nested.Value
// per row; everything else falls through to the shared scalar kernels of
// expr.go applied column-wise, so both executors compute through the same
// code for the same (row, node) pair.
//
// Error contract: a non-nil error from evalVec does NOT surface to the user.
// Vectorized evaluation visits a superset of the (row, node) pairs the row
// engine visits (And/Or evaluate every operand column before the row-order
// truth scan short-circuits), so it can trip over a type error on a row the
// row engine would have skipped. The caller must therefore discard the
// vector attempt and re-run the whole partition morsel through the
// row-at-a-time path, which reproduces the row engine's exact first error —
// or its exact success, when short-circuiting would have avoided the error.
// Every row-engine error also trips the vector path (same kernels, superset
// of pairs), so a successful vector evaluation is always byte-identical to a
// successful row evaluation.
var errFallback = errors.New("engine: vectorized evaluation fell back to the row path")

// evalVec evaluates e over every row of the batch.
func evalVec(e Expr, b *batch) (*colVec, error) {
	n := b.n()
	switch x := e.(type) {
	case colExpr:
		return b.column(x.p), nil
	case litExpr:
		return constCol(x.v, n), nil
	case cmpExpr:
		l, err := evalVec(x.l, b)
		if err != nil {
			return nil, err
		}
		r, err := evalVec(x.r, b)
		if err != nil {
			return nil, err
		}
		return cmpVec(x, l, r, n), nil
	case boolExpr:
		return boolVec(x, b)
	case notExpr:
		c, err := evalVec(x.e, b)
		if err != nil {
			return nil, err
		}
		out := make([]bool, n)
		for i := 0; i < n; i++ {
			truth, ok := asBoolAt(c, i)
			if !ok {
				return nil, errFallback
			}
			out[i] = !truth
		}
		return boolCol(out), nil
	case containsExpr:
		s, err := evalVec(x.str, b)
		if err != nil {
			return nil, err
		}
		sub, err := evalVec(x.substr, b)
		if err != nil {
			return nil, err
		}
		return containsVec(x, s, sub, n), nil
	case isNullExpr:
		c, err := evalVec(x.e, b)
		if err != nil {
			return nil, err
		}
		out := make([]bool, n)
		for i := 0; i < n; i++ {
			out[i] = c.isNull(i)
		}
		return boolCol(out), nil
	case lenExpr:
		c, err := evalVec(x.e, b)
		if err != nil {
			return nil, err
		}
		return lenVec(c, n), nil
	}
	// Externally implemented expression: evaluate row-wise into a generic
	// column (the node itself is opaque, but sibling nodes still vectorize).
	vals := make([]nested.Value, n)
	for i := 0; i < n; i++ {
		v, err := e.Eval(b.rows[i].Value)
		if err != nil {
			return nil, errFallback
		}
		vals[i] = v
	}
	return &colVec{n: n, kind: nested.KindInvalid, vals: vals}, nil
}

// asBoolAt extracts the boolean truth of row i with the same semantics as
// Value.AsBool: only a valid KindBool slot is ok.
func asBoolAt(c *colVec, i int) (bool, bool) {
	if c.kind == nested.KindBool {
		p := c.phys(i)
		if c.valid != nil && !c.valid.get(p) {
			return false, false
		}
		return c.bools[p], true
	}
	if c.kind != nested.KindInvalid {
		return false, false
	}
	return c.vals[c.phys(i)].AsBool()
}

// cmpVec compares two columns element-wise. The typed arms replicate the
// scalar kernel exactly: null rows use the null formula of cmpExpr.apply,
// int/int pairs order by cmpInt64 (compareWidened → nested.Compare), any
// numeric mix widens to float64 (compareWidened's AsDouble arm, NaN compares
// equal to everything it is not ordered against), strings and bools order as
// nested.Compare does. Every other column shape goes through the shared
// kernel itself.
func cmpVec(c cmpExpr, l, r *colVec, n int) *colVec {
	out := make([]bool, n)
	lk, rk := l.kind, r.kind
	numeric := func(k nested.Kind) bool { return k == nested.KindInt || k == nested.KindDouble }
	switch {
	case lk == nested.KindInt && rk == nested.KindInt:
		for i := 0; i < n; i++ {
			ln, rn := l.isNull(i), r.isNull(i)
			if ln || rn {
				out[i] = c.op == opNe && !(ln && rn)
				continue
			}
			out[i] = c.op.truth(cmpInt64Ord(l.ints[l.phys(i)], r.ints[r.phys(i)]))
		}
	case numeric(lk) && numeric(rk):
		for i := 0; i < n; i++ {
			ln, rn := l.isNull(i), r.isNull(i)
			if ln || rn {
				out[i] = c.op == opNe && !(ln && rn)
				continue
			}
			out[i] = c.op.truth(cmpFloat64Ord(l.floatAt(i), r.floatAt(i)))
		}
	case lk == nested.KindString && rk == nested.KindString:
		for i := 0; i < n; i++ {
			ln, rn := l.isNull(i), r.isNull(i)
			if ln || rn {
				out[i] = c.op == opNe && !(ln && rn)
				continue
			}
			ls, rs := l.strs[l.phys(i)], r.strs[r.phys(i)]
			switch {
			case ls < rs:
				out[i] = c.op.truth(-1)
			case ls > rs:
				out[i] = c.op.truth(1)
			default:
				out[i] = c.op.truth(0)
			}
		}
	case lk == nested.KindBool && rk == nested.KindBool:
		for i := 0; i < n; i++ {
			ln, rn := l.isNull(i), r.isNull(i)
			if ln || rn {
				out[i] = c.op == opNe && !(ln && rn)
				continue
			}
			lb, rb := l.bools[l.phys(i)], r.bools[r.phys(i)]
			switch {
			case !lb && rb:
				out[i] = c.op.truth(-1)
			case lb && !rb:
				out[i] = c.op.truth(1)
			default:
				out[i] = c.op.truth(0)
			}
		}
	default:
		for i := 0; i < n; i++ {
			v := c.apply(l.at(i), r.at(i))
			out[i], _ = v.AsBool()
		}
	}
	return boolCol(out)
}

// floatAt reads a numeric column slot as float64 (the widened view).
func (c *colVec) floatAt(i int) float64 {
	i = c.phys(i)
	if c.kind == nested.KindInt {
		return float64(c.ints[i])
	}
	return c.dbls[i]
}

func cmpInt64Ord(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// cmpFloat64Ord matches the float arms of compareWidened and nested.Compare:
// NaN is neither smaller nor greater, so it compares as 0.
func cmpFloat64Ord(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// boolVec evaluates And/Or: every operand is evaluated as a column, then a
// row-order truth scan applies the row engine's short-circuit rule per row.
// The scan checks operands in declaration order and stops at the deciding
// one, so a non-boolean operand only forces the row fallback when the row
// engine would have inspected it too.
func boolVec(x boolExpr, b *batch) (*colVec, error) {
	n := b.n()
	cols := make([]*colVec, len(x.operands))
	for i, op := range x.operands {
		c, err := evalVec(op, b)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		res := x.and
		for _, c := range cols {
			truth, ok := asBoolAt(c, i)
			if !ok {
				return nil, errFallback
			}
			if x.and && !truth {
				res = false
				break
			}
			if !x.and && truth {
				res = true
				break
			}
		}
		out[i] = res
	}
	return boolCol(out), nil
}

// containsVec applies the containment kernel column-wise, with a typed fast
// path for string/string columns.
func containsVec(c containsExpr, s, sub *colVec, n int) *colVec {
	out := make([]bool, n)
	if s.kind == nested.KindString && sub.kind == nested.KindString {
		for i := 0; i < n; i++ {
			if s.isNull(i) || sub.isNull(i) {
				continue // null operand: false, like AsString failing
			}
			out[i] = strings.Contains(s.strs[s.phys(i)], sub.strs[sub.phys(i)])
		}
		return boolCol(out)
	}
	for i := 0; i < n; i++ {
		v := c.apply(s.at(i), sub.at(i))
		out[i], _ = v.AsBool()
	}
	return boolCol(out)
}

// lenVec maps a column to element counts. Typed columns hold scalars, whose
// Len is always 0, so they reduce to a broadcast zero.
func lenVec(c *colVec, n int) *colVec {
	if c.kind != nested.KindInvalid {
		return &colVec{n: n, kind: nested.KindInt, bcast: true, ints: []int64{0}}
	}
	ints := make([]int64, n)
	for i := 0; i < n; i++ {
		ints[i] = int64(c.vals[c.phys(i)].Len())
	}
	return &colVec{n: n, kind: nested.KindInt, ints: ints}
}
