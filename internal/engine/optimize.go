package engine

import (
	"fmt"

	"pebble/internal/path"
)

// Optimize applies provenance-safe rule-based rewrites to the pipeline and
// returns the rewritten plan together with a log of the applied rules. It
// mirrors the basic rewrites of Spark's Catalyst optimizer that the paper's
// query processing benefits from ("It becomes part of Spark's execution plan
// and undergoes optimizations such as filter push down", Sec. 7.3.3):
//
//   - merge adjacent filters into one conjunctive filter;
//   - push filters below selects when every predicate column maps to a
//     preserved input column (the predicate is rewritten through the
//     select's manipulation mapping);
//   - push filters below flattens when the predicate does not read the
//     exploded attribute;
//   - push filters below unions (into both branches).
//
// All rewrites preserve result multisets and, because structural provenance
// is captured on whatever plan executes, they change the captured operator
// set but never the backtraced input items.
func Optimize(p *Pipeline) (*Pipeline, []string, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	st := clonePlan(p)
	var log []string
	for changed := true; changed; {
		changed = false
		for _, n := range st.nodes {
			if rule, ok := st.tryRewrite(n); ok {
				log = append(log, rule)
				changed = true
				break
			}
		}
	}
	out := rebuild(st)
	return out, log, nil
}

// planState is the optimizer's working plan: all nodes plus the sink.
type planState struct {
	nodes []*planNode
	sink  *planNode
}

// planNode is the mutable optimizer IR: one node per operator with direct
// input pointers.
type planNode struct {
	typ    OpType
	inputs []*planNode

	sourceName string
	pred       Expr
	fields     []SelectField
	mapFn      MapFunc
	leftKey    Expr
	rightKey   Expr
	flattenCol path.Path
	flattenNew string
	groupBy    []GroupKey
	aggs       []AggSpec
	sortKeys   []Expr
	sortDesc   bool
	limit      int

	removed bool
}

func clonePlan(p *Pipeline) *planState {
	byOp := make(map[*Op]*planNode, len(p.ops))
	nodes := make([]*planNode, 0, len(p.ops))
	for _, o := range p.ops {
		n := &planNode{
			typ:        o.typ,
			sourceName: o.sourceName,
			pred:       o.pred,
			fields:     o.fields,
			mapFn:      o.mapFn,
			leftKey:    o.leftKey,
			rightKey:   o.rightKey,
			flattenCol: o.flattenCol,
			flattenNew: o.flattenNew,
			groupBy:    o.groupBy,
			aggs:       o.aggs,
			sortKeys:   o.sortKeys,
			sortDesc:   o.sortDesc,
			limit:      o.limit,
		}
		for _, in := range o.inputs {
			n.inputs = append(n.inputs, byOp[in])
		}
		byOp[o] = n
		nodes = append(nodes, n)
	}
	return &planState{nodes: nodes, sink: byOp[p.sink]}
}

// consumers counts how many live nodes consume n.
func (st *planState) consumers(n *planNode) int {
	c := 0
	for _, o := range st.nodes {
		if o.removed {
			continue
		}
		for _, in := range o.inputs {
			if in == n {
				c++
			}
		}
	}
	return c
}

// tryRewrite attempts one rewrite rooted at n; it reports the applied rule.
func (st *planState) tryRewrite(n *planNode) (string, bool) {
	if n.removed || n.typ != OpFilter {
		return "", false
	}
	child := n.inputs[0]
	if child.removed || st.consumers(child) != 1 {
		return "", false
	}
	switch child.typ {
	case OpFilter:
		// filter(filter(x, p1), p2) -> filter(x, p1 && p2)
		n.pred = And(child.pred, n.pred)
		n.inputs[0] = child.inputs[0]
		child.removed = true
		return "merge-filters", true
	case OpSelect:
		rewritten, ok := rewriteThroughSelect(n.pred, child.fields)
		if !ok {
			return "", false
		}
		// filter(select(x), p) -> select(filter(x, p'))
		st.swapUnary(n, child)
		n.pred = rewritten
		return "pushdown-filter-below-select", true
	case OpFlatten:
		// Safe when the predicate never reads the exploded attribute.
		for _, pp := range n.pred.Paths() {
			if len(pp) > 0 && pp[0].Attr == child.flattenNew {
				return "", false
			}
		}
		st.swapUnary(n, child)
		return "pushdown-filter-below-flatten", true
	case OpUnion:
		// filter(union(a, b), p) -> union(filter(a, p), filter(b, p))
		left := &planNode{typ: OpFilter, pred: n.pred, inputs: []*planNode{child.inputs[0]}}
		right := &planNode{typ: OpFilter, pred: n.pred, inputs: []*planNode{child.inputs[1]}}
		child.inputs = []*planNode{left, right}
		st.replaceConsumer(n, child)
		n.removed = true
		st.nodes = append(st.nodes, left, right)
		return "pushdown-filter-below-union", true
	}
	return "", false
}

// swapUnary rewires filter n below its unary child: x -> child -> n -> ...
// becomes x -> n -> child -> ...
func (st *planState) swapUnary(n, child *planNode) {
	grand := child.inputs[0]
	st.replaceConsumer(n, child)
	child.inputs = []*planNode{n}
	n.inputs = []*planNode{grand}
}

// replaceConsumer redirects every consumer of old to new and keeps the sink
// pointer current when the replaced node was the sink.
func (st *planState) replaceConsumer(old, new *planNode) {
	for _, o := range st.nodes {
		if o == new {
			continue
		}
		for i, in := range o.inputs {
			if in == old {
				o.inputs[i] = new
			}
		}
	}
	if st.sink == old {
		st.sink = new
	}
}

// rewriteThroughSelect maps a predicate over a select's output schema to one
// over its input schema, or reports false when any accessed path has no
// plain column mapping.
func rewriteThroughSelect(pred Expr, fields []SelectField) (Expr, bool) {
	var mappings []Mapping
	var accessed []path.Path
	collectSelect(fields, nil, &accessed, &mappings)
	rewrite := func(p path.Path) (path.Path, bool) {
		for _, m := range mappings {
			if out, ok := p.ReplacePrefix(m.Out, m.In); ok {
				return out, true
			}
		}
		return nil, false
	}
	return rewriteExpr(pred, rewrite)
}

// rewriteExpr rebuilds an expression with every column path passed through
// f; it reports false when any path cannot be rewritten or the expression
// contains an unknown node type.
func rewriteExpr(e Expr, f func(path.Path) (path.Path, bool)) (Expr, bool) {
	switch x := e.(type) {
	case colExpr:
		p, ok := f(x.p)
		if !ok {
			return nil, false
		}
		return ColPath(p), true
	case litExpr:
		return x, true
	case cmpExpr:
		l, ok := rewriteExpr(x.l, f)
		if !ok {
			return nil, false
		}
		r, ok := rewriteExpr(x.r, f)
		if !ok {
			return nil, false
		}
		return cmpExpr{op: x.op, l: l, r: r}, true
	case boolExpr:
		ops := make([]Expr, len(x.operands))
		for i, o := range x.operands {
			ro, ok := rewriteExpr(o, f)
			if !ok {
				return nil, false
			}
			ops[i] = ro
		}
		return boolExpr{and: x.and, operands: ops}, true
	case notExpr:
		inner, ok := rewriteExpr(x.e, f)
		if !ok {
			return nil, false
		}
		return notExpr{e: inner}, true
	case containsExpr:
		s, ok := rewriteExpr(x.str, f)
		if !ok {
			return nil, false
		}
		sub, ok := rewriteExpr(x.substr, f)
		if !ok {
			return nil, false
		}
		return containsExpr{str: s, substr: sub}, true
	case isNullExpr:
		inner, ok := rewriteExpr(x.e, f)
		if !ok {
			return nil, false
		}
		return isNullExpr{e: inner}, true
	case lenExpr:
		inner, ok := rewriteExpr(x.e, f)
		if !ok {
			return nil, false
		}
		return lenExpr{e: inner}, true
	}
	return nil, false
}

// rebuild emits a fresh Pipeline from the optimized IR in dependency order.
func rebuild(st *planState) *Pipeline {
	p := NewPipeline()
	built := make(map[*planNode]*Op)
	var build func(n *planNode) *Op
	build = func(n *planNode) *Op {
		if op, ok := built[n]; ok {
			return op
		}
		ins := make([]*Op, len(n.inputs))
		for i, in := range n.inputs {
			ins[i] = build(in)
		}
		var op *Op
		switch n.typ {
		case OpSource:
			op = p.Source(n.sourceName)
		case OpFilter:
			op = p.Filter(ins[0], n.pred)
		case OpSelect:
			op = p.Select(ins[0], n.fields...)
		case OpMap:
			op = p.Map(ins[0], n.mapFn)
		case OpJoin:
			op = p.Join(ins[0], ins[1], n.leftKey, n.rightKey)
		case OpUnion:
			op = p.Union(ins[0], ins[1])
		case OpFlatten:
			op = p.Flatten(ins[0], n.flattenCol.String(), n.flattenNew)
		case OpAggregate:
			op = p.Aggregate(ins[0], n.groupBy, n.aggs)
		case OpDistinct:
			op = p.Distinct(ins[0])
		case OpOrderBy:
			op = p.OrderBy(ins[0], n.sortDesc, n.sortKeys...)
		case OpLimit:
			op = p.Limit(ins[0], n.limit)
		default:
			panic(fmt.Sprintf("engine: optimizer cannot rebuild %q", n.typ))
		}
		built[n] = op
		return op
	}
	sinkOp := build(st.sink)
	p.SetSink(sinkOp)
	return p
}
