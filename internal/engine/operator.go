package engine

import (
	"fmt"
	"strings"

	"pebble/internal/nested"
	"pebble/internal/path"
)

// OpType enumerates the supported operators (Sec. 5: filter, select, map,
// join, union, flatten, grouping and aggregation; grouping+aggregation form
// one pipeline node as in Fig. 1's operator 9).
type OpType string

// The operator types.
const (
	OpSource    OpType = "source"
	OpFilter    OpType = "filter"
	OpSelect    OpType = "select"
	OpMap       OpType = "map"
	OpJoin      OpType = "join"
	OpUnion     OpType = "union"
	OpFlatten   OpType = "flatten"
	OpAggregate OpType = "aggregate"

	// Extension operators beyond the paper's Sec. 5 set. They follow the
	// same capture model: distinct records one association per duplicate
	// (all witnesses contribute), orderBy and limit are identity
	// transformations whose sort keys are accessed paths.
	OpDistinct OpType = "distinct"
	OpOrderBy  OpType = "orderby"
	OpLimit    OpType = "limit"
)

// SelectField is one projection of a select operator: either a column (an
// access path, possibly nested such as user.id_str), a struct constructed
// from further fields (the <id_str,name> → user form of Fig. 1's operator 8),
// or a computed expression. Exactly one of Col, Struct, Expr is set.
type SelectField struct {
	Name   string
	Col    path.Path
	Struct []SelectField
	Expr   Expr
}

// Column returns a projection of an access path under the given output name.
func Column(name, col string) SelectField {
	return SelectField{Name: name, Col: path.MustParse(col)}
}

// StructField returns a projection constructing a nested item from fields.
func StructField(name string, fields ...SelectField) SelectField {
	return SelectField{Name: name, Struct: fields}
}

// Computed returns a projection evaluating an expression. Its provenance
// records the expression's paths as accessed but no manipulation mapping
// (the internals of the computation are opaque).
func Computed(name string, e Expr) SelectField {
	return SelectField{Name: name, Expr: e}
}

// AggFunc enumerates aggregation functions. Count, Sum, Max, Min, Avg return
// constants (the paper's A_c); CollectList and CollectSet return nested
// collections (A_B).
type AggFunc string

// The aggregation functions.
const (
	AggCount       AggFunc = "count"
	AggSum         AggFunc = "sum"
	AggMax         AggFunc = "max"
	AggMin         AggFunc = "min"
	AggAvg         AggFunc = "avg"
	AggCollectList AggFunc = "collect_list"
	AggCollectSet  AggFunc = "collect_set"
)

// ReturnsCollection reports whether the function is a bag/set-returning
// nesting function (A_B) rather than a constant-returning one (A_c).
func (f AggFunc) ReturnsCollection() bool {
	return f == AggCollectList || f == AggCollectSet
}

// AggSpec is one aggregation: Func applied to the values at In, stored in
// the output attribute Out. In may be empty for AggCount (count of items).
type AggSpec struct {
	Func AggFunc
	In   path.Path
	Out  string
}

// GroupKey is one grouping attribute: the value at Path becomes output
// attribute Name.
type GroupKey struct {
	Name string
	Path path.Path
}

// MapFunc is an opaque user-defined transformation for the map operator. The
// function must return a data item (τ(λ(i)) ⇒ ⟨...⟩). Name identifies the
// function in plans.
type MapFunc struct {
	Name string
	Fn   func(nested.Value) (nested.Value, error)
}

// Op is one node of the operator DAG. Construct operators through the
// Pipeline builder methods, which assign identifiers and wire edges.
type Op struct {
	id     int
	typ    OpType
	inputs []*Op

	// Parameters, by type.
	sourceName string // source
	pred       Expr   // filter
	fields     []SelectField
	mapFn      MapFunc
	leftKey    Expr // join
	rightKey   Expr
	leftOuter  bool
	flattenCol path.Path // flatten
	flattenNew string
	groupBy    []GroupKey // aggregate
	aggs       []AggSpec
	sortKeys   []Expr // orderBy
	sortDesc   bool
	limit      int // limit
}

// ID returns the operator's unique identifier within its pipeline.
func (o *Op) ID() int { return o.id }

// Type returns the operator type.
func (o *Op) Type() OpType { return o.typ }

// Inputs returns the operator's input operators.
func (o *Op) Inputs() []*Op { return o.inputs }

// String renders the operator like the labels in Fig. 1.
func (o *Op) String() string {
	switch o.typ {
	case OpSource:
		return fmt.Sprintf("%d:source(%s)", o.id, o.sourceName)
	case OpFilter:
		return fmt.Sprintf("%d:filter[%s]", o.id, o.pred)
	case OpSelect:
		names := make([]string, len(o.fields))
		for i, f := range o.fields {
			names[i] = f.Name
		}
		return fmt.Sprintf("%d:select(%s)", o.id, strings.Join(names, ", "))
	case OpMap:
		return fmt.Sprintf("%d:map[%s]", o.id, o.mapFn.Name)
	case OpJoin:
		kind := "join"
		if o.leftOuter {
			kind = "leftjoin"
		}
		return fmt.Sprintf("%d:%s[%s == %s]", o.id, kind, o.leftKey, o.rightKey)
	case OpUnion:
		return fmt.Sprintf("%d:union", o.id)
	case OpFlatten:
		return fmt.Sprintf("%d:flatten(%s -> %s)", o.id, o.flattenCol, o.flattenNew)
	case OpDistinct:
		return fmt.Sprintf("%d:distinct", o.id)
	case OpOrderBy:
		dir := "asc"
		if o.sortDesc {
			dir = "desc"
		}
		keys := make([]string, len(o.sortKeys))
		for i, k := range o.sortKeys {
			keys[i] = k.String()
		}
		return fmt.Sprintf("%d:orderBy(%s %s)", o.id, strings.Join(keys, ","), dir)
	case OpLimit:
		return fmt.Sprintf("%d:limit(%d)", o.id, o.limit)
	case OpAggregate:
		keys := make([]string, len(o.groupBy))
		for i, g := range o.groupBy {
			keys[i] = g.Name
		}
		aggs := make([]string, len(o.aggs))
		for i, a := range o.aggs {
			aggs[i] = fmt.Sprintf("%s(%s)->%s", a.Func, a.In, a.Out)
		}
		return fmt.Sprintf("%d:aggregate[groupBy(%s), %s]", o.id, strings.Join(keys, ","), strings.Join(aggs, ","))
	}
	return fmt.Sprintf("%d:%s", o.id, o.typ)
}

// Pipeline is a DAG of operators with a single sink (Def. 4.6). Operators
// are created through the builder methods; the last operator added is the
// sink unless SetSink overrides it.
type Pipeline struct {
	ops  []*Op
	sink *Op
}

// NewPipeline returns an empty pipeline.
func NewPipeline() *Pipeline { return &Pipeline{} }

// Ops returns all operators in creation order.
func (p *Pipeline) Ops() []*Op { return p.ops }

// Op returns the operator with the given identifier.
func (p *Pipeline) Op(id int) (*Op, bool) {
	for _, o := range p.ops {
		if o.id == id {
			return o, true
		}
	}
	return nil, false
}

// Sink returns the pipeline's sink operator.
func (p *Pipeline) Sink() *Op { return p.sink }

// SetSink overrides the sink operator (by default the last added operator).
func (p *Pipeline) SetSink(o *Op) { p.sink = o }

func (p *Pipeline) add(o *Op) *Op {
	o.id = len(p.ops) + 1
	p.ops = append(p.ops, o)
	p.sink = o
	return o
}

// Source adds a source operator reading the named input dataset.
func (p *Pipeline) Source(name string) *Op {
	return p.add(&Op{typ: OpSource, sourceName: name})
}

// Filter adds a filter keeping items for which pred evaluates to true.
func (p *Pipeline) Filter(in *Op, pred Expr) *Op {
	return p.add(&Op{typ: OpFilter, inputs: []*Op{in}, pred: pred})
}

// Select adds a projection to the given fields.
func (p *Pipeline) Select(in *Op, fields ...SelectField) *Op {
	return p.add(&Op{typ: OpSelect, inputs: []*Op{in}, fields: fields})
}

// Map adds a map operator applying the opaque function fn to each item.
func (p *Pipeline) Map(in *Op, fn MapFunc) *Op {
	return p.add(&Op{typ: OpMap, inputs: []*Op{in}, mapFn: fn})
}

// Join adds an equi-join associating items of left and right whose key
// expressions are equal; the result item concatenates the attributes of both
// sides (r = ⟨i, j⟩).
func (p *Pipeline) Join(left, right *Op, leftKey, rightKey Expr) *Op {
	return p.add(&Op{typ: OpJoin, inputs: []*Op{left, right}, leftKey: leftKey, rightKey: rightKey})
}

// LeftJoin adds a left outer equi-join: every left item appears in the
// result; unmatched left items carry null values for the right side's
// attributes and their provenance records the absent side as -1 (like
// union's absent side). Extension beyond the paper's operator set.
func (p *Pipeline) LeftJoin(left, right *Op, leftKey, rightKey Expr) *Op {
	return p.add(&Op{typ: OpJoin, inputs: []*Op{left, right}, leftKey: leftKey, rightKey: rightKey, leftOuter: true})
}

// Union adds a bag union of two inputs with compatible types.
func (p *Pipeline) Union(left, right *Op) *Op {
	return p.add(&Op{typ: OpUnion, inputs: []*Op{left, right}})
}

// Flatten adds a flatten (explode) of the collection at col: each result
// item extends the input item with attribute newAttr holding one element of
// the collection. Items whose collection is empty produce no output.
func (p *Pipeline) Flatten(in *Op, col, newAttr string) *Op {
	return p.add(&Op{typ: OpFlatten, inputs: []*Op{in}, flattenCol: path.MustParse(col), flattenNew: newAttr})
}

// Distinct adds a duplicate-elimination operator: equal items collapse to
// one result item whose provenance lists every duplicate as contributing
// (all witnesses, why-provenance style). Extension beyond the paper's
// operator set.
func (p *Pipeline) Distinct(in *Op) *Op {
	return p.add(&Op{typ: OpDistinct, inputs: []*Op{in}})
}

// OrderBy adds a total sort of the dataset by the given key expressions.
// Extension beyond the paper's operator set.
func (p *Pipeline) OrderBy(in *Op, desc bool, keys ...Expr) *Op {
	return p.add(&Op{typ: OpOrderBy, inputs: []*Op{in}, sortKeys: keys, sortDesc: desc})
}

// Limit adds an operator keeping the first n items (in partition-major
// order; combine with OrderBy for a deterministic top-n). Extension beyond
// the paper's operator set.
func (p *Pipeline) Limit(in *Op, n int) *Op {
	return p.add(&Op{typ: OpLimit, inputs: []*Op{in}, limit: n})
}

// Aggregate adds a grouping followed by aggregations: items are grouped by
// the key paths and each group is reduced to one item carrying the group
// keys and the aggregate results. This is the combined grouping+aggregation
// node of Fig. 1 (operator 9).
func (p *Pipeline) Aggregate(in *Op, keys []GroupKey, aggs []AggSpec) *Op {
	return p.add(&Op{typ: OpAggregate, inputs: []*Op{in}, groupBy: keys, aggs: aggs})
}

// Key returns a GroupKey grouping by the given access path under the output
// name of the path's last attribute.
func Key(col string) GroupKey {
	pp := path.MustParse(col)
	return GroupKey{Name: pp[len(pp)-1].Attr, Path: pp}
}

// KeyAs returns a GroupKey with an explicit output name.
func KeyAs(name, col string) GroupKey {
	return GroupKey{Name: name, Path: path.MustParse(col)}
}

// Agg returns an AggSpec for fn over the values at col, output as out.
func Agg(fn AggFunc, col, out string) AggSpec {
	var pp path.Path
	if col != "" {
		pp = path.MustParse(col)
	}
	return AggSpec{Func: fn, In: pp, Out: out}
}

// Validate checks structural well-formedness: every non-source operator has
// the right number of inputs, all inputs belong to the pipeline, the DAG has
// exactly one sink, and no operator precedes its inputs.
func (p *Pipeline) Validate() error {
	if len(p.ops) == 0 {
		return fmt.Errorf("engine: empty pipeline")
	}
	index := make(map[*Op]int, len(p.ops))
	for i, o := range p.ops {
		index[o] = i
	}
	consumed := make(map[*Op]int)
	for i, o := range p.ops {
		wantInputs := 1
		switch o.typ {
		case OpSource:
			wantInputs = 0
		case OpJoin, OpUnion:
			wantInputs = 2
		}
		if len(o.inputs) != wantInputs {
			return fmt.Errorf("engine: operator %s has %d inputs, want %d", o, len(o.inputs), wantInputs)
		}
		for _, in := range o.inputs {
			j, ok := index[in]
			if !ok {
				return fmt.Errorf("engine: operator %s has input from another pipeline", o)
			}
			if j >= i {
				return fmt.Errorf("engine: operator %s consumes later operator %s", o, in)
			}
			consumed[in]++
		}
	}
	if p.sink == nil {
		return fmt.Errorf("engine: pipeline has no sink")
	}
	if consumed[p.sink] != 0 {
		return fmt.Errorf("engine: sink %s is consumed by another operator", p.sink)
	}
	return nil
}

// String renders the pipeline plan, one operator per line.
func (p *Pipeline) String() string {
	lines := make([]string, 0, len(p.ops))
	for _, o := range p.ops {
		ins := make([]string, len(o.inputs))
		for i, in := range o.inputs {
			ins[i] = fmt.Sprintf("%d", in.id)
		}
		line := o.String()
		if len(ins) > 0 {
			line += " <- [" + strings.Join(ins, ",") + "]"
		}
		lines = append(lines, line)
	}
	return strings.Join(lines, "\n")
}

// shuffleKey declaratively describes the key of a shuffle so the executor
// can evaluate it either row-at-a-time (eval) or column-at-a-time over a
// batch (the vectorized shuffle map phase). Exactly one of the three shapes
// is set: an expression key (join sides), a grouping-attribute key
// (aggregate), or the identity key (distinct, which shuffles whole rows).
type shuffleKey struct {
	expr     Expr
	groupBy  []GroupKey
	identity bool
}

// exprShuffleKey wraps a join-side key expression.
func exprShuffleKey(e Expr) shuffleKey { return shuffleKey{expr: e} }

// groupShuffleKey wraps an aggregate's grouping attributes; the key value is
// the item ⟨Name: value-at-Path, ...⟩ with absent paths as null.
func groupShuffleKey(gs []GroupKey) shuffleKey { return shuffleKey{groupBy: gs} }

// identityShuffleKey keys every row by its own value (distinct).
func identityShuffleKey() shuffleKey { return shuffleKey{identity: true} }

// eval is the row-at-a-time key function; the canonical semantics the
// vectorized map phase must reproduce byte for byte.
func (k shuffleKey) eval(v nested.Value) (nested.Value, error) {
	switch {
	case k.identity:
		return v, nil
	case k.expr != nil:
		return k.expr.Eval(v)
	}
	fields := make([]nested.Field, len(k.groupBy))
	for i, g := range k.groupBy {
		gv, ok := g.Path.Eval(v)
		if !ok {
			gv = nested.Null()
		}
		fields[i] = nested.F(g.Name, gv)
	}
	return nested.Item(fields...), nil
}

// evalOps is the static per-row expression cost of the key (see EvalOps).
func (k shuffleKey) evalOps() int {
	switch {
	case k.identity:
		return 0
	case k.expr != nil:
		return EvalOps(k.expr)
	}
	return len(k.groupBy)
}
