package engine

import (
	"fmt"
	"sync"
	"time"
)

// This file implements the physical execution layer that decouples logical
// partitioning from hardware parallelism:
//
//   - workerPool: a bounded pool of Options.Workers goroutines executing
//     logical partitions as morsels, so Partitions can rise (default 16)
//     without unbounded goroutine fan-out;
//   - reserveGate: serialises identifier reservation in plan order, so the
//     identifiers an operator assigns are byte-identical no matter how many
//     workers race through the DAG;
//   - runDAG: a topological-wavefront scheduler that executes independent
//     DAG branches (both join/union inputs, disconnected subplans)
//     concurrently with per-operator completion tracking.
//
// Determinism argument: every operator's *content* (row values, row order,
// per-partition layout) is a pure function of its inputs, and every
// operator's *identifiers* depend only on (a) the id-space position reserved
// for it and (b) the deterministic partition-major assignment inside
// finalize. The gate pins (a) to plan order — exactly the order the
// sequential executor reserves in — so results, ids, grouping order, and
// captured provenance are identical for every Workers setting.

// workerPool executes morsels (one logical partition of one operator) on a
// fixed set of goroutines. Submission blocks while all workers are busy,
// bounding both goroutine count and queue growth; morsels never spawn
// sub-morsels, so the pool cannot deadlock.
type workerPool struct {
	tasks chan func()
	wg    sync.WaitGroup
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{tasks: make(chan func())}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				t()
			}
		}()
	}
	return p
}

func (p *workerPool) close() {
	close(p.tasks)
	p.wg.Wait()
}

// forEach runs f for every morsel index and returns the first error (by
// index, for determinism).
func (p *workerPool) forEach(n int, f func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		p.tasks <- func() {
			defer wg.Done()
			errs[i] = f(i)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forEachPartition runs f for every logical partition index as morsels on
// the worker pool (inline when sequential) and returns the first error.
// Under the vectorized executor each morsel internally chunks its rows into
// column batches (batch.go) drawn from pools shared across all workers;
// the morsel is still the unit of scheduling and of capture-sink handles.
//
// This is the engine's cancellation checkpoint: a morsel only starts while
// the executor's context is live, so a cancelled job stops scheduling new
// morsels here (in-flight morsels run to completion — they are small by
// construction).
func (e *executor) forEachPartition(n int, f func(part int) error) error {
	g := func(part int) error {
		if err := e.ctx.Err(); err != nil {
			return err
		}
		return f(part)
	}
	if e.pool == nil || n <= 1 {
		for i := 0; i < n; i++ {
			if err := g(i); err != nil {
				return err
			}
		}
		return nil
	}
	return e.pool.forEach(n, g)
}

// reserveGate orders IDGen reservations by operator id (= plan order).
// Operators compute their pending rows fully in parallel and only queue here
// for the brief Reserve call, so the gate costs no meaningful parallelism
// while making the assigned id ranges independent of scheduling order.
type reserveGate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	done    []bool // 1-based: done[oid] = this operator has taken its turn; guarded by mu
	next    int    // smallest oid that has not taken its turn; guarded by mu
	aborted bool   // guarded by mu
}

func newReserveGate(nops int) *reserveGate {
	g := &reserveGate{done: make([]bool, nops+1), next: 1}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// reserve blocks until every operator with a smaller id has reserved (or the
// gate is aborted), then reserves n identifiers for oid.
func (g *reserveGate) reserve(gen *IDGen, oid int, n int64) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	for !g.aborted && g.next != oid {
		g.cond.Wait()
	}
	base := gen.Reserve(n)
	g.releaseLocked(oid)
	return base
}

// release marks an operator's turn as taken without reserving; the scheduler
// calls it for operators that fail before reaching their Reserve, so
// later operators do not wait forever. Idempotent.
func (g *reserveGate) release(oid int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.releaseLocked(oid)
}

func (g *reserveGate) releaseLocked(oid int) {
	if oid < 1 || oid >= len(g.done) || g.done[oid] {
		return
	}
	g.done[oid] = true
	for g.next < len(g.done) && g.done[g.next] {
		g.next++
	}
	g.cond.Broadcast()
}

// abort unblocks every waiter; used once execution is known to fail, when id
// determinism no longer matters.
func (g *reserveGate) abort() {
	g.mu.Lock()
	g.aborted = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// runSequential executes the operators one at a time in plan order — the
// Workers == 1 path, and the canonical order every parallel schedule must
// reproduce byte for byte.
func (e *executor) runSequential(p *Pipeline, res *Result) error {
	for i, o := range p.Ops() {
		if err := e.ctx.Err(); err != nil {
			return fmt.Errorf("engine: operator %s: %w", o, err)
		}
		//pebblevet:ignore determinism -- per-op wall-clock stats; never enters results or identifiers
		start := time.Now()
		out, err := e.exec(o)
		if err != nil {
			return fmt.Errorf("engine: operator %s: %w", o, err)
		}
		e.setOutput(o.id, out)
		e.recordResult(res, i, o, out, time.Since(start))
	}
	return nil
}

// runDAG executes the operator DAG in topological wavefronts: an operator is
// launched as soon as all its inputs completed, so independent branches (the
// two sides of a join or union, disconnected subplans) run concurrently.
// Partition-level work inside each operator is further spread over the
// worker pool.
func (e *executor) runDAG(p *Pipeline, res *Result) error {
	ops := p.Ops()
	planIdx := make(map[int]int, len(ops))
	waiting := make(map[int]int, len(ops))     // oid -> unfinished input edges
	consumers := make(map[int][]*Op, len(ops)) // oid -> ops consuming it
	for i, o := range ops {
		planIdx[o.id] = i
		waiting[o.id] = len(o.inputs)
		for _, in := range o.inputs {
			consumers[in.id] = append(consumers[in.id], o)
		}
	}
	res.Stats = make([]OpStats, len(ops))

	type opDone struct {
		o       *Op
		out     *Dataset
		elapsed time.Duration
		err     error
	}
	done := make(chan opDone)
	launch := func(o *Op) {
		go func() {
			//pebblevet:ignore determinism -- per-op wall-clock stats; never enters results or identifiers
			start := time.Now()
			var out *Dataset
			err := e.ctx.Err()
			if err == nil {
				out, err = o.execBy(e)
			}
			done <- opDone{o: o, out: out, elapsed: time.Since(start), err: err}
		}()
	}

	running := 0
	for _, o := range ops {
		if waiting[o.id] == 0 {
			launch(o)
			running++
		}
	}
	var firstErr error
	firstErrOID := 0
	for running > 0 {
		d := <-done
		running--
		if d.err != nil {
			// Report the failure of the earliest operator in plan order, the
			// one the sequential executor would have surfaced.
			if firstErr == nil || d.o.id < firstErrOID {
				firstErr = fmt.Errorf("engine: operator %s: %w", d.o, d.err)
				firstErrOID = d.o.id
			}
			// Unblock id reservations: this operator may have failed before
			// its turn, and its consumers will never run.
			e.gate.abort()
			continue
		}
		e.setOutput(d.o.id, d.out)
		e.recordResult(res, planIdx[d.o.id], d.o, d.out, d.elapsed)
		if firstErr != nil {
			continue // stop scheduling new work, drain in-flight operators
		}
		for _, c := range consumers[d.o.id] {
			waiting[c.id]--
			if waiting[c.id] == 0 {
				launch(c)
				running++
			}
		}
	}
	return firstErr
}

// execBy runs the operator through the executor (hook point for the
// scheduler goroutine).
func (o *Op) execBy(e *executor) (*Dataset, error) { return e.exec(o) }

// recordResult files an operator's output under the result bookkeeping.
// Stats are indexed by plan position, so their order is deterministic no
// matter which schedule produced them.
func (e *executor) recordResult(res *Result, planPos int, o *Op, out *Dataset, elapsed time.Duration) {
	e.opts.Recorder.AddOpTime(o.id, elapsed)
	e.resMu.Lock()
	defer e.resMu.Unlock()
	if res.Stats == nil || len(res.Stats) <= planPos {
		// Sequential path appends in plan order.
		res.Stats = append(res.Stats, OpStats{OID: o.id, Type: o.typ, Rows: out.Len(), Elapsed: elapsed})
	} else {
		res.Stats[planPos] = OpStats{OID: o.id, Type: o.typ, Rows: out.Len(), Elapsed: elapsed}
	}
	if o.typ == OpSource {
		res.Sources[o.id] = out
	}
	if res.Intermediates != nil {
		res.Intermediates[o.id] = out
	}
}
