package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"pebble/internal/nested"
	"pebble/internal/obs"
)

// slowInput builds n single-field rows.
func slowInput(n, parts int) map[string]*Dataset {
	vals := make([]nested.Value, n)
	for i := range vals {
		vals[i] = nested.Item(nested.F("n", nested.Int(int64(i))))
	}
	return map[string]*Dataset{"in": NewDataset("in", vals, parts, NewIDGen(1))}
}

// gatedPipeline maps rows through a function that signals on first call and
// then blocks until release is closed, so tests can cancel with the run
// provably mid-flight.
func gatedPipeline(entered chan<- struct{}, release <-chan struct{}) *Pipeline {
	var once atomic.Bool
	p := NewPipeline()
	src := p.Source("in")
	p.Map(src, MapFunc{Name: "gate", Fn: func(v nested.Value) (nested.Value, error) {
		if once.CompareAndSwap(false, true) {
			close(entered)
		}
		<-release
		return v, nil
	}})
	return p
}

// TestRunContextCancelStopsNewMorsels cancels a run while its first morsel
// is provably executing and asserts (a) the run fails with context.Canceled
// and (b) the scheduler stopped feeding morsels: the rows_in recorded for
// the gated operator stay below the full input, observed via obs counters.
func TestRunContextCancelStopsNewMorsels(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const rows, parts = 64, 16
			entered := make(chan struct{})
			release := make(chan struct{})
			rec := obs.NewRecorder()
			ctx, cancel := context.WithCancel(context.Background())
			errCh := make(chan error, 1)
			go func() {
				_, err := RunContext(ctx, gatedPipeline(entered, release),
					slowInput(rows, parts),
					Options{Partitions: parts, Workers: workers, Recorder: rec})
				errCh <- err
			}()
			<-entered // a morsel of the gated map is executing
			cancel()  // … and every not-yet-started morsel must now stay unscheduled
			close(release)
			err := <-errCh
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("RunContext returned %v, want context.Canceled", err)
			}
			// The gated map saw at most the in-flight morsels' rows, never
			// the whole input: cancellation stopped morsel scheduling.
			mapOID := 2
			st, ok := rec.Snapshot().Op(mapOID)
			if !ok {
				t.Fatalf("no recorded stats for map operator %d", mapOID)
			}
			if got := st.Counters[obs.RowsIn]; got >= rows {
				t.Errorf("map consumed %d rows after cancellation, want < %d", got, rows)
			}
		})
	}
}

// TestRunContextPreCancelled: an already-cancelled context fails fast
// without executing any operator.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := NewPipeline()
	src := p.Source("in")
	p.Filter(src, Col("n"))
	rec := obs.NewRecorder()
	_, err := RunContext(ctx, p, slowInput(8, 4), Options{Partitions: 4, Recorder: rec})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if total := rec.Snapshot().Total(obs.RowsIn); total != 0 {
		t.Errorf("pre-cancelled run still consumed %d rows", total)
	}
}

// TestRunNilContextBehavesAsBackground guards the nil-ctx convenience.
func TestRunNilContextBehavesAsBackground(t *testing.T) {
	p := NewPipeline()
	src := p.Source("in")
	p.Filter(src, Gt(Col("n"), LitInt(3)))
	//lint:ignore SA1012 deliberate nil-context robustness check
	res, err := RunContext(nil, p, slowInput(8, 2), Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Len() != 4 {
		t.Errorf("rows = %d, want 4", res.Output.Len())
	}
}
