// Package engine implements the program execution model of Sec. 4.2: a
// directed acyclic graph of operators (filter, select, map, join, union,
// flatten, grouping/aggregation) over partitioned datasets of nested data
// items. It stands in for the Apache Spark substrate of the paper's Pebble
// system: independent DAG branches execute concurrently, every operator
// processes its logical partitions as morsels on a bounded worker pool
// (Options.Workers goroutines), and join/aggregation shuffle by key hash.
// Logical partitioning is decoupled from physical parallelism: results,
// identifiers, and captured provenance are byte-identical for every Workers
// setting (see schedule.go).
//
// Provenance capture is decoupled through the CaptureSink interface so the
// same execution path runs with no capture, Titian-style lineage capture, or
// structural provenance capture.
package engine

import (
	"fmt"
	"sync/atomic"

	"pebble/internal/nested"
)

// Row is one top-level data item together with its unique provenance
// identifier — the only annotation structural provenance attaches to data
// (Sec. 5.1: "recording a unique identifier suffices to identify each
// top-level item").
type Row struct {
	ID    int64
	Value nested.Value
}

// Dataset is a partitioned, ordered collection of rows.
type Dataset struct {
	Name       string
	Partitions [][]Row
}

// IDGen hands out unique top-level item identifiers for one run. It is safe
// for concurrent use.
type IDGen struct {
	next atomic.Int64
}

// NewIDGen returns a generator whose first ID is start.
func NewIDGen(start int64) *IDGen {
	g := &IDGen{}
	g.next.Store(start)
	return g
}

// Next returns a fresh identifier.
func (g *IDGen) Next() int64 { return g.next.Add(1) - 1 }

// Reserve returns the first of n consecutive fresh identifiers.
func (g *IDGen) Reserve(n int64) int64 { return g.next.Add(n) - n }

// NewDataset partitions values round-robin into parts partitions and assigns
// each row an identifier from gen. parts < 1 defaults to 1.
func NewDataset(name string, values []nested.Value, parts int, gen *IDGen) *Dataset {
	if parts < 1 {
		parts = 1
	}
	if parts > len(values) && len(values) > 0 {
		parts = len(values)
	}
	partitions := make([][]Row, parts)
	base := gen.Reserve(int64(len(values)))
	for i, v := range values {
		p := i % parts
		partitions[p] = append(partitions[p], Row{ID: base + int64(i), Value: v})
	}
	return &Dataset{Name: name, Partitions: partitions}
}

// FromRows builds a single-partition dataset from pre-identified rows; used
// by tests and by backtracing intermediates.
func FromRows(name string, rows []Row) *Dataset {
	return &Dataset{Name: name, Partitions: [][]Row{rows}}
}

// Len returns the total number of rows.
func (d *Dataset) Len() int {
	n := 0
	for _, p := range d.Partitions {
		n += len(p)
	}
	return n
}

// Rows returns all rows, partition by partition. The result is a fresh
// slice; mutating it does not affect the dataset.
func (d *Dataset) Rows() []Row {
	out := make([]Row, 0, d.Len())
	for _, p := range d.Partitions {
		out = append(out, p...)
	}
	return out
}

// Values returns all values in row order.
func (d *Dataset) Values() []nested.Value {
	out := make([]nested.Value, 0, d.Len())
	for _, p := range d.Partitions {
		for _, r := range p {
			out = append(out, r.Value)
		}
	}
	return out
}

// FindByID returns the row with the given provenance identifier.
func (d *Dataset) FindByID(id int64) (Row, bool) {
	for _, p := range d.Partitions {
		for _, r := range p {
			if r.ID == id {
				return r, true
			}
		}
	}
	return Row{}, false
}

// SizeBytes estimates the dataset's in-memory footprint.
func (d *Dataset) SizeBytes() int64 {
	var n int64
	for _, p := range d.Partitions {
		for _, r := range p {
			n += 8 + int64(r.Value.SizeBytes())
		}
	}
	return n
}

// Repartition redistributes the rows round-robin over parts partitions.
func (d *Dataset) Repartition(parts int) *Dataset {
	if parts < 1 {
		parts = 1
	}
	partitions := make([][]Row, parts)
	i := 0
	for _, p := range d.Partitions {
		for _, r := range p {
			partitions[i%parts] = append(partitions[i%parts], r)
			i++
		}
	}
	return &Dataset{Name: d.Name, Partitions: partitions}
}

// String summarises the dataset.
func (d *Dataset) String() string {
	return fmt.Sprintf("dataset %q: %d rows in %d partitions", d.Name, d.Len(), len(d.Partitions))
}
