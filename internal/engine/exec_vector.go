package engine

import (
	"fmt"
	"sync"

	"pebble/internal/nested"
	"pebble/internal/path"
)

// Vectorized morsel bodies. Each exec* operator keeps a single shared shell
// (startOperator, forEachPartition, recorder bulk adds, finalize) and
// dispatches the per-partition work here: the vectorized body chunks the
// morsel into batches of batchSize rows, evaluates expressions column-wise,
// and gathers outputs; when vectorized evaluation signals a fallback (see
// evalVec's error contract) the whole partition re-runs through the scalar
// fallback body (*MorselScalar), reproducing the reference semantics' exact
// error or output. Options.ScalarFallback skips the vector attempt entirely
// — that is how the differential oracle and the kernel benchmarks pin the
// vectorized executor against the reference.

// vectorized reports whether this run uses the columnar executor.
func (e *executor) vectorized() bool { return !e.opts.ScalarFallback }

// ---- filter ----

func (e *executor) filterMorsel(o *Op, rows []Row) ([]pending, error) {
	if e.vectorized() {
		if out, ok := filterMorselVec(o.pred, rows); ok {
			return out, nil
		}
	}
	return filterMorselScalar(o, rows)
}

func filterMorselScalar(o *Op, rows []Row) ([]pending, error) {
	out := make([]pending, 0, len(rows))
	for _, r := range rows {
		v, err := o.pred.Eval(r.Value)
		if err != nil {
			return nil, err
		}
		keep, ok := v.AsBool()
		if !ok {
			return nil, fmt.Errorf("filter predicate %s returned non-boolean %s", o.pred, v)
		}
		if keep {
			out = append(out, pending{value: r.Value, in1: r.ID})
		}
	}
	return out, nil
}

func filterMorselVec(pred Expr, rows []Row) ([]pending, bool) {
	var out []pending
	for start := 0; start < len(rows); start += batchSize {
		chunk := rows[start:min(start+batchSize, len(rows))]
		b := getBatch(chunk)
		c, err := evalVec(pred, b)
		if err != nil {
			putBatch(b)
			return nil, false
		}
		// The predicate must be boolean on every row (filter does not
		// short-circuit); count survivors first for an exact-size gather.
		// Predicate kernels produce an all-valid bool column (boolCol), so
		// the common case scans the raw truth array without per-row dispatch.
		if c.kind == nested.KindBool && c.valid == nil && !c.bcast {
			keep := 0
			for _, t := range c.bools {
				if t {
					keep++
				}
			}
			if out == nil && keep > 0 {
				out = make([]pending, 0, keep+(len(rows)-start-len(chunk)))
			}
			for i, t := range c.bools {
				if t {
					out = append(out, pending{value: chunk[i].Value, in1: chunk[i].ID})
				}
			}
			putBatch(b)
			continue
		}
		keep := 0
		for i := range chunk {
			truth, ok := asBoolAt(c, i)
			if !ok {
				putBatch(b)
				return nil, false
			}
			if truth {
				keep++
			}
		}
		if out == nil && keep > 0 {
			out = make([]pending, 0, keep+(len(rows)-start-len(chunk)))
		}
		for i := range chunk {
			if truth, _ := asBoolAt(c, i); truth {
				out = append(out, pending{value: chunk[i].Value, in1: chunk[i].ID})
			}
		}
		putBatch(b)
	}
	return out, true
}

// ---- select ----

func (e *executor) selectMorsel(o *Op, rows []Row) ([]pending, error) {
	if e.vectorized() {
		if out, ok := selectMorselVec(o.fields, rows); ok {
			return out, nil
		}
	}
	return selectMorselScalar(o, rows)
}

func selectMorselScalar(o *Op, rows []Row) ([]pending, error) {
	out := make([]pending, 0, len(rows))
	for _, r := range rows {
		item, err := evalSelect(o.fields, r.Value)
		if err != nil {
			return nil, err
		}
		out = append(out, pending{value: item, in1: r.ID})
	}
	return out, nil
}

// selCol holds the evaluated columns of one select field for a chunk:
// exactly one of col (passthrough column read), sub (nested struct), or expr
// (computed field) is set, mirroring SelectField. Passthrough fields keep
// the access path instead of a decoded column: assembly reads each exactly
// once and boxes the value per output row regardless, so the columnar
// decode would copy every value into the column just for at() to copy it
// straight back out (same single-read bypass as evalKeysVec). Computed
// fields still evaluate column-wise — they are where the typed kernels win,
// and any column they share stays deduplicated through the batch cache.
type selCol struct {
	col  path.Path
	sub  []selCol
	expr *colVec
}

func prepSelectCols(fields []SelectField, b *batch) ([]selCol, error) {
	out := make([]selCol, len(fields))
	for i, f := range fields {
		switch {
		case len(f.Col) > 0:
			out[i].col = f.Col
		case len(f.Struct) > 0:
			sub, err := prepSelectCols(f.Struct, b)
			if err != nil {
				return nil, err
			}
			out[i].sub = sub
		case f.Expr != nil:
			c, err := evalVec(f.Expr, b)
			if err != nil {
				return nil, err
			}
			out[i].expr = c
		default:
			// The row path reports this as an error on the first row; let it.
			return nil, errFallback
		}
	}
	return out, nil
}

// assembleSelect builds row i's output item from the prepared columns —
// field order and null coercion identical to evalSelect.
func assembleSelect(fields []SelectField, cols []selCol, i int, row nested.Value) nested.Value {
	out := make([]nested.Field, 0, len(fields))
	for j, f := range fields {
		switch {
		case cols[j].col != nil:
			out = append(out, nested.F(f.Name, evalColDirect(cols[j].col, row)))
		case cols[j].sub != nil:
			out = append(out, nested.F(f.Name, assembleSelect(f.Struct, cols[j].sub, i, row)))
		default:
			out = append(out, nested.F(f.Name, cols[j].expr.at(i)))
		}
	}
	return nested.Item(out...)
}

func selectMorselVec(fields []SelectField, rows []Row) ([]pending, bool) {
	out := make([]pending, 0, len(rows))
	for start := 0; start < len(rows); start += batchSize {
		chunk := rows[start:min(start+batchSize, len(rows))]
		b := getBatch(chunk)
		cols, err := prepSelectCols(fields, b)
		if err != nil {
			putBatch(b)
			return nil, false
		}
		for i := range chunk {
			out = append(out, pending{value: assembleSelect(fields, cols, i, chunk[i].Value), in1: chunk[i].ID})
		}
		putBatch(b)
	}
	return out, true
}

// ---- flatten ----

func (e *executor) flattenMorsel(o *Op, rows []Row) ([]pending, error) {
	if e.vectorized() {
		if out, ok := flattenMorselVec(o, rows); ok {
			return out, nil
		}
	}
	return flattenMorselScalar(o, rows)
}

func flattenMorselScalar(o *Op, rows []Row) ([]pending, error) {
	// Floor capacity: flatten usually emits at least one row per input row.
	out := make([]pending, 0, len(rows))
	for _, r := range rows {
		col, ok := o.flattenCol.Eval(r.Value)
		if !ok || col.IsNull() {
			continue // no collection to explode
		}
		if !col.Kind().IsCollection() {
			return nil, fmt.Errorf("flatten: %s is %s, want bag or set", o.flattenCol, col.Kind())
		}
		for idx, elem := range col.Elems() {
			v := r.Value.WithField(o.flattenNew, elem)
			out = append(out, pending{value: v, in1: r.ID, pos: idx + 1})
		}
	}
	return out, nil
}

func flattenMorselVec(o *Op, rows []Row) ([]pending, bool) {
	// Bags are never scalar, so a decoded column would be generic storage —
	// decodeColumn would evaluate the path per row and copy each bag value
	// into the column just for this loop to read it back once. The kernel
	// bypasses the batch machinery entirely (the same single-read bypass as
	// evalKeysVec): it evaluates the path directly into a pooled per-chunk
	// buffer and operates on the bag offsets — Elems() borrows the nested
	// collection's backing array, so no element is materialised until the
	// output row is built.
	//
	// Floor capacity; the per-chunk pre-growth below extends it exactly.
	out := make([]pending, 0, len(rows))
	buf := getFlattenScratch()
	defer putFlattenScratch(buf)
	for start := 0; start < len(rows); start += batchSize {
		chunk := rows[start:min(start+batchSize, len(rows))]
		vals := buf[:len(chunk)]
		// Offsets pass: validate kinds and pre-size the exploded output
		// exactly before building a single row.
		total := 0
		for i := range chunk {
			v := evalColDirect(o.flattenCol, chunk[i].Value)
			vals[i] = v
			if v.IsNull() {
				continue
			}
			if !v.Kind().IsCollection() {
				return nil, false // row path reproduces the type error
			}
			total += v.Len()
		}
		if total > 0 && cap(out)-len(out) < total {
			bigger := make([]pending, len(out), len(out)+total)
			copy(bigger, out)
			out = bigger
		}
		for i := range chunk {
			if vals[i].IsNull() {
				continue
			}
			for idx, elem := range vals[i].Elems() {
				out = append(out, pending{value: chunk[i].Value.WithField(o.flattenNew, elem), in1: chunk[i].ID, pos: idx + 1})
			}
		}
	}
	return out, true
}

// flattenScratchPool recycles the per-chunk flatten column buffers. Pooled
// buffers keep stale Values until overwritten (bounded by batchSize);
// outputs never alias the buffer — WithField copies the fields it keeps.
var flattenScratchPool = sync.Pool{
	New: func() any {
		s := make([]nested.Value, batchSize)
		return &s
	},
}

func getFlattenScratch() []nested.Value { return *flattenScratchPool.Get().(*[]nested.Value) }

func putFlattenScratch(s []nested.Value) { flattenScratchPool.Put(&s) }

// ---- shuffle keys ----

// evalKeysVec evaluates a shuffle key over a whole morsel, one batch at a
// time, materialising the per-row key values. ok is false when the morsel
// must fall back to row-at-a-time key evaluation (identity keys always do —
// the key is the row itself and decoding it would only copy).
//
// Columnar decode only pays when a column feeds a typed kernel or is read
// more than once. Key materialisation reads each column exactly once and
// boxes the value per row regardless, so pure column keys (a colExpr key, or
// a groupBy list — the overwhelmingly common aggregate/join shape) bypass
// the batch machinery: the decode would copy every value into the column
// just for at() to copy it straight back out. The bypass produces the exact
// value decodeColumn would have stored — p.Eval's result, or nested.Null()
// for an absent path — so both routes are byte-identical by construction.
func evalKeysVec(k shuffleKey, rows []Row) ([]nested.Value, bool) {
	if k.identity || len(rows) == 0 {
		return nil, false
	}
	if k.expr == nil {
		keys := make([]nested.Value, len(rows))
		// One flat backing array for every row's field slice; each row gets a
		// distinct full-capacity subslice because nested.Item retains it.
		width := len(k.groupBy)
		flat := make([]nested.Field, len(rows)*width)
		for i, r := range rows {
			fields := flat[i*width : (i+1)*width : (i+1)*width]
			for gi, g := range k.groupBy {
				fields[gi] = nested.F(g.Name, evalColDirect(g.Path, r.Value))
			}
			keys[i] = nested.Item(fields...)
		}
		return keys, true
	}
	if ce, ok := k.expr.(colExpr); ok {
		keys := make([]nested.Value, len(rows))
		for i, r := range rows {
			keys[i] = evalColDirect(ce.p, r.Value)
		}
		return keys, true
	}
	keys := make([]nested.Value, 0, len(rows))
	for start := 0; start < len(rows); start += batchSize {
		chunk := rows[start:min(start+batchSize, len(rows))]
		b := getBatch(chunk)
		c, err := evalVec(k.expr, b)
		if err != nil {
			putBatch(b)
			return nil, false
		}
		for i := range chunk {
			keys = append(keys, c.at(i))
		}
		putBatch(b)
	}
	return keys, true
}

// sortKeysMorsel evaluates orderBy's sort keys for a run of rows, vectorized
// when enabled; the fallback is the row engine's nested Eval loop.
func (e *executor) sortKeysMorsel(sortKeys []Expr, rows []Row) ([][]nested.Value, error) {
	if e.vectorized() {
		if keys, ok := sortKeysVec(sortKeys, rows); ok {
			return keys, nil
		}
	}
	keys := make([][]nested.Value, len(rows))
	// One flat backing array; each row keeps a distinct full-cap subslice.
	width := len(sortKeys)
	flat := make([]nested.Value, len(rows)*width)
	for i, r := range rows {
		ks := flat[i*width : (i+1)*width : (i+1)*width]
		for j, k := range sortKeys {
			v, err := k.Eval(r.Value)
			if err != nil {
				return nil, err
			}
			ks[j] = v
		}
		keys[i] = ks
	}
	return keys, nil
}

func sortKeysVec(sortKeys []Expr, rows []Row) ([][]nested.Value, bool) {
	// Pure column keys take the same single-read bypass as evalKeysVec: each
	// key value is read once and boxed into the per-row key slice either
	// way, so the columnar detour would only add copies.
	allCols := true
	for _, k := range sortKeys {
		if _, ok := k.(colExpr); !ok {
			allCols = false
			break
		}
	}
	width := len(sortKeys)
	keys := make([][]nested.Value, len(rows))
	// One flat backing array; each row keeps a distinct full-cap subslice.
	flat := make([]nested.Value, len(rows)*width)
	if allCols {
		for i, r := range rows {
			ks := flat[i*width : (i+1)*width : (i+1)*width]
			for j, k := range sortKeys {
				ks[j] = evalColDirect(k.(colExpr).p, r.Value)
			}
			keys[i] = ks
		}
		return keys, true
	}
	for start := 0; start < len(rows); start += batchSize {
		chunk := rows[start:min(start+batchSize, len(rows))]
		b := getBatch(chunk)
		cols := make([]*colVec, len(sortKeys))
		for j, k := range sortKeys {
			c, err := evalVec(k, b)
			if err != nil {
				putBatch(b)
				return nil, false
			}
			cols[j] = c
		}
		for i := range chunk {
			ks := flat[(start+i)*width : (start+i+1)*width : (start+i+1)*width]
			for j := range sortKeys {
				ks[j] = cols[j].at(i)
			}
			keys[start+i] = ks
		}
		putBatch(b)
	}
	return keys, true
}

// probeKeysMorsel evaluates a broadcast join's probe-side key per partition,
// vectorized when enabled; nil values mark rows whose key errored — they
// cannot occur (an erroring key falls back to the row loop instead).
func (e *executor) probeKeysMorsel(key Expr, rows []Row) ([]nested.Value, bool) {
	if !e.vectorized() {
		return nil, false
	}
	return evalKeysVec(exprShuffleKey(key), rows)
}

// evalColDirect is the single-row equivalent of a decode-then-at round trip:
// the value a decoded column's at() would return for this row — p.Eval's
// result with absent paths and explicit nulls both normalised to the
// canonical null, exactly like decodeColumn.
func evalColDirect(p path.Path, row nested.Value) nested.Value {
	v, ok := p.Eval(row)
	if !ok || v.Kind() == nested.KindNull {
		return nested.Null()
	}
	return v
}
