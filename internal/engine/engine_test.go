package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"pebble/internal/nested"
	"pebble/internal/path"
)

// mkTweet builds a Tab. 1 style tweet.
func mkTweet(text, userID, userName string, retweet int64, mentions ...[2]string) nested.Value {
	ms := make([]nested.Value, len(mentions))
	for i, m := range mentions {
		ms[i] = nested.Item(nested.F("id_str", nested.StringVal(m[0])), nested.F("name", nested.StringVal(m[1])))
	}
	return nested.Item(
		nested.F("text", nested.StringVal(text)),
		nested.F("user", nested.Item(nested.F("id_str", nested.StringVal(userID)), nested.F("name", nested.StringVal(userName)))),
		nested.F("user_mentions", nested.Bag(ms...)),
		nested.F("retweet_cnt", nested.Int(retweet)),
	)
}

// tab1 returns the example input data of Tab. 1.
func tab1() []nested.Value {
	return []nested.Value{
		mkTweet("Hello @ls @jm @ls", "lp", "Lisa Paul", 0,
			[2]string{"ls", "Lauren Smith"}, [2]string{"jm", "John Miller"}, [2]string{"ls", "Lauren Smith"}),
		mkTweet("Hello World", "lp", "Lisa Paul", 0),
		mkTweet("Hello World", "lp", "Lisa Paul", 0),
		mkTweet("This is me @jm", "jm", "John Miller", 0, [2]string{"jm", "John Miller"}),
		mkTweet("Hello @lp", "jm", "John Miller", 1, [2]string{"lp", "Lisa Paul"}),
	}
}

func dataset(t *testing.T, name string, values []nested.Value, parts int) *Dataset {
	t.Helper()
	return NewDataset(name, values, parts, NewIDGen(1000))
}

func runPipeline(t *testing.T, p *Pipeline, inputs map[string]*Dataset, opts Options) *Result {
	t.Helper()
	res, err := Run(p, inputs, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// figure1 builds the running-example pipeline of Fig. 1.
func figure1() *Pipeline {
	p := NewPipeline()
	read1 := p.Source("tweets.json")                           // 1
	filt := p.Filter(read1, Eq(Col("retweet_cnt"), LitInt(0))) // 2
	sel1 := p.Select(filt,                                     // 3
		Column("text", "text"),
		Column("id_str", "user.id_str"),
		Column("name", "user.name"),
	)
	read2 := p.Source("tweets.json")                    // 4
	flat := p.Flatten(read2, "user_mentions", "m_user") // 5
	sel2 := p.Select(flat,                              // 6
		Column("text", "text"),
		Column("id_str", "m_user.id_str"),
		Column("name", "m_user.name"),
	)
	uni := p.Union(sel1, sel2) // 7
	sel3 := p.Select(uni,      // 8
		// text → tweet as a one-attribute item, so the nested result keeps
		// the text attribute (Tab. 2 / the tweets.2.text path of Fig. 2).
		StructField("tweet", Column("text", "text")),
		StructField("user", Column("id_str", "id_str"), Column("name", "name")),
	)
	p.Aggregate(sel3, // 9
		[]GroupKey{Key("user")},
		[]AggSpec{Agg(AggCollectList, "tweet", "tweets")},
	)
	return p
}

func TestFigure1PipelineProducesTab2(t *testing.T) {
	for _, parts := range []int{1, 3} {
		for _, seq := range []bool{true, false} {
			name := fmt.Sprintf("parts=%d seq=%v", parts, seq)
			inputs := map[string]*Dataset{"tweets.json": dataset(t, "tweets.json", tab1(), parts)}
			res := runPipeline(t, figure1(), inputs, Options{Partitions: parts, Sequential: seq})
			got := make(map[string][]string) // user id -> sorted tweet texts
			users := make(map[string]string)
			for _, r := range res.Output.Rows() {
				u, _ := r.Value.Get("user")
				id, _ := mustAttr(t, u, "id_str").AsString()
				nm, _ := mustAttr(t, u, "name").AsString()
				users[id] = nm
				tw, _ := r.Value.Get("tweets")
				var texts []string
				for _, e := range tw.Elems() {
					s, _ := mustAttr(t, e, "text").AsString()
					texts = append(texts, s)
				}
				sort.Strings(texts)
				got[id] = texts
			}
			want := map[string][]string{ // Tab. 2 (as multisets)
				"ls": {"Hello @ls @jm @ls", "Hello @ls @jm @ls"},
				"lp": {"Hello @lp", "Hello @ls @jm @ls", "Hello World", "Hello World"},
				"jm": {"Hello @ls @jm @ls", "This is me @jm", "This is me @jm"},
			}
			if len(got) != len(want) {
				t.Fatalf("%s: got %d result users, want %d: %v", name, len(got), len(want), got)
			}
			for id, texts := range want {
				if strings.Join(got[id], "|") != strings.Join(texts, "|") {
					t.Errorf("%s: user %s tweets = %v, want %v", name, id, got[id], texts)
				}
			}
			if users["lp"] != "Lisa Paul" || users["jm"] != "John Miller" || users["ls"] != "Lauren Smith" {
				t.Errorf("%s: user names wrong: %v", name, users)
			}
		}
	}
}

func mustAttr(t *testing.T, v nested.Value, name string) nested.Value {
	t.Helper()
	out, ok := v.Get(name)
	if !ok {
		t.Fatalf("attribute %q missing in %s", name, v)
	}
	return out
}

func TestFilterKeepsMatchingRowsOnly(t *testing.T) {
	p := NewPipeline()
	src := p.Source("in")
	p.Filter(src, Eq(Col("retweet_cnt"), LitInt(0)))
	inputs := map[string]*Dataset{"in": dataset(t, "in", tab1(), 2)}
	res := runPipeline(t, p, inputs, Options{Partitions: 2})
	if res.Output.Len() != 4 {
		t.Errorf("filter kept %d rows, want 4", res.Output.Len())
	}
	for _, r := range res.Output.Rows() {
		if c, _ := mustAttr(t, r.Value, "retweet_cnt").AsInt(); c != 0 {
			t.Errorf("row with retweet_cnt=%d survived", c)
		}
	}
}

func TestSelectProjectionsAndStructs(t *testing.T) {
	p := NewPipeline()
	src := p.Source("in")
	p.Select(src,
		Column("t", "text"),
		StructField("who", Column("id", "user.id_str")),
		Computed("mlen", Len(Col("user_mentions"))),
	)
	inputs := map[string]*Dataset{"in": dataset(t, "in", tab1(), 1)}
	res := runPipeline(t, p, inputs, Options{Partitions: 1})
	first := res.Output.Rows()[0].Value
	if got := first.AttrNames(); strings.Join(got, ",") != "t,who,mlen" {
		t.Fatalf("select output attrs = %v", got)
	}
	who := mustAttr(t, first, "who")
	if s, _ := mustAttr(t, who, "id").AsString(); s != "lp" {
		t.Errorf("struct field = %q", s)
	}
	if n, _ := mustAttr(t, first, "mlen").AsInt(); n != 3 {
		t.Errorf("computed field = %d, want 3", n)
	}
}

func TestSelectMissingPathYieldsNull(t *testing.T) {
	p := NewPipeline()
	src := p.Source("in")
	p.Select(src, Column("x", "does.not.exist"))
	inputs := map[string]*Dataset{"in": dataset(t, "in", tab1()[:1], 1)}
	res := runPipeline(t, p, inputs, Options{})
	if !mustAttr(t, res.Output.Rows()[0].Value, "x").IsNull() {
		t.Error("missing projection should be null")
	}
}

func TestMapAppliesFunctionAndValidatesReturn(t *testing.T) {
	p := NewPipeline()
	src := p.Source("in")
	p.Map(src, MapFunc{Name: "addFlag", Fn: func(d nested.Value) (nested.Value, error) {
		return d.WithField("flag", nested.Bool(true)), nil
	}})
	inputs := map[string]*Dataset{"in": dataset(t, "in", tab1(), 2)}
	res := runPipeline(t, p, inputs, Options{Partitions: 2})
	for _, r := range res.Output.Rows() {
		if f, ok := r.Value.Get("flag"); !ok || f.Kind() != nested.KindBool {
			t.Fatal("map did not apply")
		}
	}

	bad := NewPipeline()
	s2 := bad.Source("in")
	bad.Map(s2, MapFunc{Name: "broken", Fn: func(nested.Value) (nested.Value, error) {
		return nested.Int(1), nil // not an item
	}})
	if _, err := Run(bad, inputs, Options{}); err == nil {
		t.Error("map returning non-item must fail (τ(λ(i)) ⇒ ⟨...⟩)")
	}
}

func TestFlattenExplodesWithPositions(t *testing.T) {
	p := NewPipeline()
	src := p.Source("in")
	p.Flatten(src, "user_mentions", "m_user")
	inputs := map[string]*Dataset{"in": dataset(t, "in", tab1(), 2)}
	sink := newRecordingSink()
	res := runPipeline(t, p, inputs, Options{Partitions: 2, Sink: sink})
	// tweets with 3, 0, 0, 1, 1 mentions -> 5 output rows
	if res.Output.Len() != 5 {
		t.Fatalf("flatten produced %d rows, want 5", res.Output.Len())
	}
	for _, r := range res.Output.Rows() {
		m := mustAttr(t, r.Value, "m_user")
		if m.Kind() != nested.KindItem {
			t.Errorf("m_user kind = %s", m.Kind())
		}
		if _, ok := r.Value.Get("user_mentions"); !ok {
			t.Error("flatten must keep the original attributes (r = <i, a_new: j>)")
		}
	}
	// Position bookkeeping: tweet 1 contributes positions 1,2,3.
	var positions []int
	for _, a := range sink.flattens {
		positions = append(positions, a.pos)
	}
	sort.Ints(positions)
	if fmt.Sprint(positions) != "[1 1 1 2 3]" {
		t.Errorf("flatten positions = %v", positions)
	}
}

func TestFlattenRejectsNonCollection(t *testing.T) {
	p := NewPipeline()
	src := p.Source("in")
	p.Flatten(src, "text", "x")
	inputs := map[string]*Dataset{"in": dataset(t, "in", tab1(), 1)}
	if _, err := Run(p, inputs, Options{}); err == nil {
		t.Error("flatten of a scalar must fail")
	}
}

func TestUnionTypeCheckAndConcat(t *testing.T) {
	a := []nested.Value{nested.Item(nested.F("x", nested.Int(1)))}
	b := []nested.Value{nested.Item(nested.F("x", nested.Int(2)))}
	p := NewPipeline()
	s1, s2 := p.Source("a"), p.Source("b")
	p.Union(s1, s2)
	gen := NewIDGen(1)
	inputs := map[string]*Dataset{
		"a": NewDataset("a", a, 1, gen),
		"b": NewDataset("b", b, 1, gen),
	}
	res := runPipeline(t, p, inputs, Options{})
	if res.Output.Len() != 2 {
		t.Errorf("union size = %d", res.Output.Len())
	}

	bad := []nested.Value{nested.Item(nested.F("x", nested.StringVal("s")))}
	p2 := NewPipeline()
	t1, t2 := p2.Source("a"), p2.Source("b")
	p2.Union(t1, t2)
	inputs2 := map[string]*Dataset{
		"a": NewDataset("a", a, 1, gen),
		"b": NewDataset("b", bad, 1, gen),
	}
	if _, err := Run(p2, inputs2, Options{}); err == nil {
		t.Error("union with incompatible types must fail (τ(I1) = τ(I2))")
	}
}

func TestJoinEquiJoin(t *testing.T) {
	users := []nested.Value{
		nested.Item(nested.F("uid", nested.StringVal("lp")), nested.F("uname", nested.StringVal("Lisa"))),
		nested.Item(nested.F("uid", nested.StringVal("jm")), nested.F("uname", nested.StringVal("John"))),
	}
	tweets := []nested.Value{
		nested.Item(nested.F("author", nested.StringVal("lp")), nested.F("txt", nested.StringVal("a"))),
		nested.Item(nested.F("author", nested.StringVal("lp")), nested.F("txt", nested.StringVal("b"))),
		nested.Item(nested.F("author", nested.StringVal("zz")), nested.F("txt", nested.StringVal("c"))),
	}
	p := NewPipeline()
	l, r := p.Source("users"), p.Source("tweets")
	p.Join(l, r, Col("uid"), Col("author"))
	gen := NewIDGen(1)
	inputs := map[string]*Dataset{
		"users":  NewDataset("users", users, 2, gen),
		"tweets": NewDataset("tweets", tweets, 2, gen),
	}
	res := runPipeline(t, p, inputs, Options{Partitions: 3})
	if res.Output.Len() != 2 {
		t.Fatalf("join produced %d rows, want 2", res.Output.Len())
	}
	for _, row := range res.Output.Rows() {
		if s, _ := mustAttr(t, row.Value, "uid").AsString(); s != "lp" {
			t.Errorf("join row uid = %q", s)
		}
		if row.Value.NumFields() != 4 {
			t.Errorf("join result should concat attributes, got %v", row.Value)
		}
	}
}

func TestJoinRejectsAttributeCollision(t *testing.T) {
	vals := []nested.Value{nested.Item(nested.F("k", nested.Int(1)))}
	p := NewPipeline()
	l, r := p.Source("a"), p.Source("b")
	p.Join(l, r, Col("k"), Col("k"))
	gen := NewIDGen(1)
	inputs := map[string]*Dataset{
		"a": NewDataset("a", vals, 1, gen),
		"b": NewDataset("b", vals, 1, gen),
	}
	if _, err := Run(p, inputs, Options{}); err == nil {
		t.Error("join with colliding attribute names must fail")
	}
}

func TestAggregateFunctions(t *testing.T) {
	rows := []nested.Value{
		nested.Item(nested.F("g", nested.StringVal("a")), nested.F("v", nested.Int(1))),
		nested.Item(nested.F("g", nested.StringVal("a")), nested.F("v", nested.Int(3))),
		nested.Item(nested.F("g", nested.StringVal("b")), nested.F("v", nested.Int(5))),
		nested.Item(nested.F("g", nested.StringVal("a")), nested.F("v", nested.Int(1))),
	}
	p := NewPipeline()
	src := p.Source("in")
	p.Aggregate(src, []GroupKey{Key("g")}, []AggSpec{
		Agg(AggCount, "", "n"),
		Agg(AggSum, "v", "sum"),
		Agg(AggMin, "v", "min"),
		Agg(AggMax, "v", "max"),
		Agg(AggAvg, "v", "avg"),
		Agg(AggCollectList, "v", "list"),
		Agg(AggCollectSet, "v", "set"),
	})
	inputs := map[string]*Dataset{"in": dataset(t, "in", rows, 2)}
	res := runPipeline(t, p, inputs, Options{Partitions: 2})
	if res.Output.Len() != 2 {
		t.Fatalf("aggregate produced %d groups, want 2", res.Output.Len())
	}
	byG := map[string]nested.Value{}
	for _, r := range res.Output.Rows() {
		g, _ := mustAttr(t, r.Value, "g").AsString()
		byG[g] = r.Value
	}
	a := byG["a"]
	checks := map[string]int64{"n": 3, "sum": 5, "min": 1, "max": 3}
	for attr, want := range checks {
		if got, _ := mustAttr(t, a, attr).AsInt(); got != want {
			t.Errorf("group a %s = %d, want %d", attr, got, want)
		}
	}
	if avg, _ := mustAttr(t, a, "avg").AsDouble(); avg < 1.66 || avg > 1.67 {
		t.Errorf("group a avg = %g", avg)
	}
	if l := mustAttr(t, a, "list"); l.Len() != 3 {
		t.Errorf("collect_list len = %d, want 3 (keeps duplicates)", l.Len())
	}
	if s := mustAttr(t, a, "set"); s.Len() != 2 {
		t.Errorf("collect_set len = %d, want 2 (dedups)", s.Len())
	}
}

func TestAggregateGroupsDeterministically(t *testing.T) {
	inputs := map[string]*Dataset{"in": dataset(t, "in", tab1(), 3)}
	build := func() *Pipeline {
		p := NewPipeline()
		src := p.Source("in")
		p.Aggregate(src, []GroupKey{KeyAs("author", "user.id_str")},
			[]AggSpec{Agg(AggCollectList, "text", "texts")})
		return p
	}
	r1 := runPipeline(t, build(), inputs, Options{Partitions: 3})
	r2 := runPipeline(t, build(), inputs, Options{Partitions: 3})
	v1, v2 := r1.Output.Values(), r2.Output.Values()
	if len(v1) != len(v2) {
		t.Fatal("nondeterministic group count")
	}
	for i := range v1 {
		if !nested.Equal(v1[i], v2[i]) {
			t.Errorf("group %d differs across runs:\n%s\n%s", i, v1[i], v2[i])
		}
	}
}

func TestValidateCatchesBadPipelines(t *testing.T) {
	empty := NewPipeline()
	if err := empty.Validate(); err == nil {
		t.Error("empty pipeline must not validate")
	}
	// Input from another pipeline.
	p1 := NewPipeline()
	s1 := p1.Source("a")
	p2 := NewPipeline()
	p2.Filter(s1, LitBool(true))
	if err := p2.Validate(); err == nil {
		t.Error("cross-pipeline input must not validate")
	}
	// Consumed sink.
	p3 := NewPipeline()
	s3 := p3.Source("a")
	f3 := p3.Filter(s3, LitBool(true))
	p3.Filter(f3, LitBool(true))
	p3.SetSink(f3)
	if err := p3.Validate(); err == nil {
		t.Error("consumed sink must not validate")
	}
}

func TestRunMissingInputFails(t *testing.T) {
	p := NewPipeline()
	p.Source("ghost")
	if _, err := Run(p, map[string]*Dataset{}, Options{}); err == nil {
		t.Error("missing input dataset must fail")
	}
}

func TestSourceAnnotatesFreshIDsPerRead(t *testing.T) {
	// Reading the same dataset through two source operators must assign two
	// disjoint sets of identifiers (the T3 double-annotation effect).
	p := NewPipeline()
	s1 := p.Source("in")
	s2 := p.Source("in")
	p.Union(s1, s2)
	inputs := map[string]*Dataset{"in": dataset(t, "in", tab1(), 1)}
	res := runPipeline(t, p, inputs, Options{Partitions: 1})
	ids := map[int64]bool{}
	for _, src := range res.Sources {
		for _, r := range src.Rows() {
			if ids[r.ID] {
				t.Fatalf("identifier %d reused across reads", r.ID)
			}
			ids[r.ID] = true
		}
	}
	if len(ids) != 10 {
		t.Errorf("want 10 distinct source ids, got %d", len(ids))
	}
}

func TestStatsAndIntermediates(t *testing.T) {
	inputs := map[string]*Dataset{"tweets.json": dataset(t, "tweets.json", tab1(), 2)}
	res := runPipeline(t, figure1(), inputs, Options{Partitions: 2, KeepIntermediates: true})
	if len(res.Stats) != 9 {
		t.Errorf("stats for %d ops, want 9", len(res.Stats))
	}
	if res.TotalElapsed() <= 0 {
		t.Error("TotalElapsed should be positive")
	}
	if len(res.Intermediates) != 9 {
		t.Errorf("intermediates for %d ops, want 9", len(res.Intermediates))
	}
	if len(res.Sources) != 2 {
		t.Errorf("sources = %d, want 2", len(res.Sources))
	}
	// union output = filtered upper (4) + flattened lower (5)
	if got := res.Intermediates[7].Len(); got != 9 {
		t.Errorf("union rows = %d, want 9", got)
	}
}

// recordingSink captures all events for assertions.
type recordingSink struct {
	mu      sync.Mutex
	infos   []OpInfo
	sources []int64
	unaries []struct {
		oid     int
		in, out int64
	}
	binaries []struct {
		oid       int
		l, r, out int64
	}
	flattens []struct {
		oid int
		in  int64
		pos int
		out int64
	}
	aggs []struct {
		oid int
		ins []int64
		out int64
	}
}

func newRecordingSink() *recordingSink { return &recordingSink{} }

func (s *recordingSink) StartOperator(info OpInfo, parts int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.infos = append(s.infos, info)
}

// Partition implements CaptureSink; the recording handle locks per append
// (this sink asserts content, not the hot path).
func (s *recordingSink) Partition(oid, part int) PartitionSink {
	return &recordingPartition{s: s, oid: oid}
}

type recordingPartition struct {
	s   *recordingSink
	oid int
}

func (p *recordingPartition) SourceRow(id, origID int64) {
	p.s.mu.Lock()
	defer p.s.mu.Unlock()
	p.s.sources = append(p.s.sources, id)
}
func (p *recordingPartition) Unary(in, out int64) {
	p.s.mu.Lock()
	defer p.s.mu.Unlock()
	p.s.unaries = append(p.s.unaries, struct {
		oid     int
		in, out int64
	}{p.oid, in, out})
}
func (p *recordingPartition) Binary(l, r, out int64) {
	p.s.mu.Lock()
	defer p.s.mu.Unlock()
	p.s.binaries = append(p.s.binaries, struct {
		oid       int
		l, r, out int64
	}{p.oid, l, r, out})
}
func (p *recordingPartition) Flatten(in int64, pos int, out int64) {
	p.s.mu.Lock()
	defer p.s.mu.Unlock()
	p.s.flattens = append(p.s.flattens, struct {
		oid int
		in  int64
		pos int
		out int64
	}{p.oid, in, pos, out})
}
func (p *recordingPartition) Agg(ins []int64, out int64) {
	p.s.mu.Lock()
	defer p.s.mu.Unlock()
	p.s.aggs = append(p.s.aggs, struct {
		oid int
		ins []int64
		out int64
	}{p.oid, ins, out})
}

// Bulk range forms: expand into the same records as the per-row calls so the
// assertions below cover both executors.
func (p *recordingPartition) SourceRows(base int64, origIDs []int64) {
	for i, orig := range origIDs {
		p.SourceRow(base+int64(i), orig)
	}
}
func (p *recordingPartition) UnaryRange(inIDs []int64, base int64) {
	for i, in := range inIDs {
		p.Unary(in, base+int64(i))
	}
}
func (p *recordingPartition) BinaryRange(leftIDs, rightIDs []int64, base int64) {
	for i := range leftIDs {
		p.Binary(leftIDs[i], rightIDs[i], base+int64(i))
	}
}
func (p *recordingPartition) FlattenRange(inIDs []int64, positions []int, base int64) {
	for i := range inIDs {
		p.Flatten(inIDs[i], positions[i], base+int64(i))
	}
}

func TestCaptureEventsFigure1(t *testing.T) {
	inputs := map[string]*Dataset{"tweets.json": dataset(t, "tweets.json", tab1(), 2)}
	sink := newRecordingSink()
	runPipeline(t, figure1(), inputs, Options{Partitions: 2, Sink: sink})
	if len(sink.infos) != 9 {
		t.Fatalf("StartOperator for %d ops, want 9", len(sink.infos))
	}
	byOID := map[int]OpInfo{}
	for _, info := range sink.infos {
		byOID[info.OID] = info
	}
	// Filter (op 2): A = {retweet_cnt}, M = ∅.
	f := byOID[2]
	if len(f.Inputs) != 1 || len(f.Inputs[0].Accessed) != 1 || f.Inputs[0].Accessed[0].String() != "retweet_cnt" {
		t.Errorf("filter OpInfo = %+v", f)
	}
	if len(f.Manipulated) != 0 || f.ManipUndefined {
		t.Errorf("filter must have M = ∅: %+v", f)
	}
	// Flatten (op 5): A = {user_mentions[pos]}, M = {user_mentions[pos] -> m_user}.
	fl := byOID[5]
	if fl.Inputs[0].Accessed[0].String() != "user_mentions[pos]" {
		t.Errorf("flatten A = %v", fl.Inputs[0].Accessed)
	}
	if len(fl.Manipulated) != 1 || fl.Manipulated[0].In.String() != "user_mentions[pos]" ||
		fl.Manipulated[0].Out.String() != "m_user" {
		t.Errorf("flatten M = %+v", fl.Manipulated)
	}
	// Select 8: struct mapping id_str -> user.id_str.
	s8 := byOID[8]
	var hasStructMapping bool
	for _, m := range s8.Manipulated {
		if m.In.String() == "id_str" && m.Out.String() == "user.id_str" {
			hasStructMapping = true
		}
	}
	if !hasStructMapping {
		t.Errorf("select 8 M = %+v, missing id_str -> user.id_str", s8.Manipulated)
	}
	// Aggregate 9: A covers user and tweet; M maps tweet -> tweets[pos].
	a9 := byOID[9]
	acc := strings.Join(pathsToStrings(a9.Inputs[0].Accessed), ";")
	if !strings.Contains(acc, "user") || !strings.Contains(acc, "tweet") {
		t.Errorf("aggregate A = %v", acc)
	}
	var hasNestMapping bool
	for _, m := range a9.Manipulated {
		if m.In.String() == "tweet" && m.Out.String() == "tweets[pos]" {
			hasNestMapping = true
		}
	}
	if !hasNestMapping {
		t.Errorf("aggregate M = %+v, missing tweet -> tweets[pos]", a9.Manipulated)
	}
	// Union (op 7) records one side as -1.
	for _, b := range sink.binaries {
		if b.oid == 7 && b.l != -1 && b.r != -1 {
			t.Errorf("union association has both sides set: %+v", b)
		}
	}
	// Aggregation associations: one per group, ids count = group size.
	var aggTotal int
	for _, a := range sink.aggs {
		aggTotal += len(a.ins)
	}
	if len(sink.aggs) != 3 || aggTotal != 9 {
		t.Errorf("aggregate associations: %d groups, %d ids (want 3, 9)", len(sink.aggs), aggTotal)
	}
	// Map A/M undefined.
	mp := NewPipeline()
	src := mp.Source("tweets.json")
	mp.Map(src, MapFunc{Name: "id", Fn: func(v nested.Value) (nested.Value, error) { return v, nil }})
	sink2 := newRecordingSink()
	runPipeline(t, mp, inputs, Options{Sink: sink2})
	mi := sink2.infos[1]
	if !mi.Inputs[0].AccessUndefined || !mi.ManipUndefined {
		t.Errorf("map must capture A = M = ⊥: %+v", mi)
	}
}

func pathsToStrings(ps []path.Path) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.String()
	}
	return out
}
