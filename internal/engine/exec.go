package engine

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"pebble/internal/nested"
	"pebble/internal/obs"
)

// DefaultPartitions is the default logical-partition count. Logical
// partitioning is fixed and seed-deterministic — it decides identifier
// assignment, shuffle layout, and grouping order — while the number of
// goroutines actually executing those partitions is the independent,
// hardware-sized Options.Workers. A constant comfortably above typical core
// counts keeps morsels small enough for the worker pool to balance.
const DefaultPartitions = 16

// Options configures one pipeline execution.
type Options struct {
	// Partitions is the degree of *logical* data parallelism (default
	// DefaultPartitions). It determines partition layout, shuffle bucketing,
	// and identifier assignment, and therefore must be held fixed for
	// reproducible runs.
	Partitions int
	// Workers bounds the *physical* parallelism: the number of goroutines
	// executing partition morsels and DAG branches (default
	// runtime.NumCPU()). Any value yields byte-identical results, ids, and
	// captured provenance; Sequential forces 1.
	Workers int
	// Sequential disables goroutine parallelism; useful for debugging and
	// for single-threaded benchmarking.
	Sequential bool
	// Sink receives provenance capture events; nil disables capture.
	Sink CaptureSink
	// IDGen supplies top-level identifiers. When nil a fresh generator
	// starting at 1 is used.
	IDGen *IDGen
	// KeepIntermediates retains every operator's output dataset in the
	// result (source outputs are always retained).
	KeepIntermediates bool
	// BroadcastJoinThreshold is the build-side row count up to which joins
	// broadcast the smaller side instead of shuffling both. 0 uses the
	// default (2000); negative disables broadcast joins.
	BroadcastJoinThreshold int
	// Recorder, when non-nil, collects per-operator execution metrics and
	// phase spans (see internal/obs). nil disables observability; the
	// recording call sites are bulk (per partition morsel), so the disabled
	// path costs only predictable nil checks.
	Recorder *obs.Recorder
	// ScalarFallback skips the vectorized kernels and runs every operator
	// through its scalar fallback body — the row-at-a-time reference
	// semantics the kernels fall back to on shapes they cannot reproduce
	// exactly. Results, identifiers, and captured provenance are
	// byte-identical either way; the differential oracle and the kernel
	// benchmarks diff the two executions directly (DESIGN.md §10, §13).
	// Engine-internal: the public API always runs vectorized.
	ScalarFallback bool
}

// OpStats reports per-operator execution metrics.
type OpStats struct {
	OID     int
	Type    OpType
	Rows    int
	Elapsed time.Duration
}

// Result is the outcome of a pipeline execution.
type Result struct {
	// Output is the sink operator's dataset.
	Output *Dataset
	// Sources maps source operator ids to their (freshly annotated) output
	// datasets; backtracing resolves provenance identifiers against these.
	Sources map[int]*Dataset
	// Intermediates maps every operator id to its output when
	// Options.KeepIntermediates is set.
	Intermediates map[int]*Dataset
	// Stats lists per-operator metrics in execution order.
	Stats []OpStats
}

// TotalElapsed sums the per-operator execution times.
func (r *Result) TotalElapsed() time.Duration {
	var total time.Duration
	for _, s := range r.Stats {
		total += s.Elapsed
	}
	return total
}

// Run executes the pipeline over the named input datasets and returns the
// sink's output. Each source operator annotates its input with fresh
// top-level identifiers (so a dataset read twice is annotated twice, as in
// the paper's scenario T3). Run never cancels; it is RunContext with a
// background context.
func Run(p *Pipeline, inputs map[string]*Dataset, opts Options) (*Result, error) {
	return RunContext(context.Background(), p, inputs, opts)
}

// RunContext is Run with cooperative cancellation: the scheduler checks
// ctx.Err() at every morsel boundary (before each logical partition of each
// operator) and before launching DAG operators, so a cancelled context stops
// scheduling new work promptly without interrupting a morsel mid-flight.
// The partial execution's datasets and identifiers are discarded; the error
// wraps ctx.Err(). A nil ctx behaves like context.Background().
func RunContext(ctx context.Context, p *Pipeline, inputs map[string]*Dataset, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.Partitions < 1 {
		opts.Partitions = DefaultPartitions
	}
	workers := opts.Workers
	if opts.Sequential {
		workers = 1
	}
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	gen := opts.IDGen
	if gen == nil {
		gen = NewIDGen(1)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	defer opts.Recorder.StartSpan(obs.SpanSchedule)()
	ex := &executor{ctx: ctx, opts: opts, gen: gen, inputs: inputs, outputs: make(map[int]*Dataset, len(p.Ops()))}
	res := &Result{Sources: make(map[int]*Dataset)}
	if opts.KeepIntermediates {
		res.Intermediates = make(map[int]*Dataset)
	}
	if workers <= 1 {
		if err := ex.runSequential(p, res); err != nil {
			return nil, err
		}
	} else {
		ex.pool = newWorkerPool(workers)
		defer ex.pool.close()
		ex.gate = newReserveGate(len(p.Ops()))
		if err := ex.runDAG(p, res); err != nil {
			return nil, err
		}
	}
	res.Output = ex.outputs[p.Sink().id]
	// Free non-sink intermediates unless requested (sources stay reachable
	// through res.Sources).
	return res, nil
}

type executor struct {
	// ctx carries cooperative cancellation; checked at morsel boundaries
	// (never nil — RunContext substitutes context.Background).
	ctx    context.Context
	opts   Options
	gen    *IDGen
	inputs map[string]*Dataset

	// pool executes partition morsels when physical parallelism is on; nil
	// means fully sequential execution. gate serialises id reservation in
	// plan order under the DAG scheduler (nil when sequential — the plan
	// loop already reserves in that order).
	pool *workerPool
	gate *reserveGate

	outMu   sync.RWMutex     // guards outputs under concurrent DAG branches
	outputs map[int]*Dataset // guarded by outMu; access via in/setOutput
	resMu   sync.Mutex       // guards Result bookkeeping in recordResult
}

// valueHash computes a shuffle key's hash. Indirect so tests can install a
// counting double and assert that grouping/joining reuse the hash cached
// during the shuffle instead of recomputing it per row.
var valueHash = nested.Value.Hash

func (e *executor) exec(o *Op) (*Dataset, error) {
	switch o.typ {
	case OpSource:
		return e.execSource(o)
	case OpFilter:
		return e.execFilter(o)
	case OpSelect:
		return e.execSelect(o)
	case OpMap:
		return e.execMap(o)
	case OpJoin:
		return e.execJoin(o)
	case OpUnion:
		return e.execUnion(o)
	case OpFlatten:
		return e.execFlatten(o)
	case OpAggregate:
		return e.execAggregate(o)
	case OpDistinct:
		return e.execDistinct(o)
	case OpOrderBy:
		return e.execOrderBy(o)
	case OpLimit:
		return e.execLimit(o)
	}
	return nil, fmt.Errorf("unknown operator type %q", o.typ)
}

func (e *executor) in(o *Op, i int) *Dataset {
	if e.pool == nil {
		return e.outputs[o.inputs[i].id]
	}
	e.outMu.RLock()
	defer e.outMu.RUnlock()
	return e.outputs[o.inputs[i].id]
}

func (e *executor) setOutput(oid int, d *Dataset) {
	if e.pool == nil {
		e.outputs[oid] = d
		return
	}
	e.outMu.Lock()
	e.outputs[oid] = d
	e.outMu.Unlock()
}

// reserve hands out n consecutive identifiers for operator oid. Under the
// DAG scheduler the reservation is serialised in plan order (see
// reserveGate), so ids are independent of the physical schedule.
func (e *executor) reserve(oid int, n int64) int64 {
	if e.gate == nil {
		return e.gen.Reserve(n)
	}
	return e.gate.reserve(e.gen, oid, n)
}

// pending is a produced row awaiting its identifier, carrying the
// association data the capture sink needs.
type pending struct {
	value nested.Value
	in1   int64
	in2   int64
	pos   int
	inIDs []int64
}

type assocKind uint8

const (
	assocNone assocKind = iota
	assocUnary
	assocBinary
	assocFlatten
	assocAgg
	// assocMultiUnary emits one unary association per id in inIDs (distinct:
	// every collapsed duplicate contributes to the output item).
	assocMultiUnary
)

// finalize assigns identifiers to the pending rows of every partition
// (deterministically: partition-major order) and emits the associations to
// the sink.
func (e *executor) finalize(oid int, parts [][]pending, kind assocKind) (*Dataset, error) {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	base := e.reserve(oid, int64(total))
	offsets := make([]int64, len(parts))
	off := base
	for i, p := range parts {
		offsets[i] = off
		off += int64(len(p))
	}
	partitions := make([][]Row, len(parts))
	err := e.forEachPartition(len(parts), func(part int) error {
		rows := make([]Row, len(parts[part]))
		// One registry lookup per morsel: the handle appends lock-free.
		var ps PartitionSink
		if e.opts.Sink != nil && len(parts[part]) > 0 {
			ps = e.opts.Sink.Partition(oid, part)
		}
		id := offsets[part]
		for i, pr := range parts[part] {
			rows[i] = Row{ID: id, Value: pr.value}
			id++
		}
		if ps != nil {
			e.emitAssocs(ps, parts[part], kind, offsets[part])
		}
		partitions[part] = rows
		if rec := e.opts.Recorder; rec != nil {
			rec.Add(oid, part, obs.RowsOut, int64(len(parts[part])))
			if e.opts.Sink != nil {
				rec.Add(oid, part, obs.AssocRows, assocRowCount(parts[part], kind))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{Partitions: partitions}, nil
}

// emitAssocs appends one partition morsel's associations to its sink
// handle. The vectorized executor emits the whole morsel as one contiguous
// id-range call (the output ids are base..base+len-1 by construction of
// finalize), gathering the input ids into pooled scratch that the sink
// copies out of; the row executor — and the per-row association layouts
// (aggregate's variable-length id lists, distinct's multi-unary fan-out) —
// append row by row. Both forms produce identical sink state in the same
// append order.
func (e *executor) emitAssocs(ps PartitionSink, prs []pending, kind assocKind, base int64) {
	if e.vectorized() {
		switch kind {
		case assocUnary:
			ids := getIDScratch(len(prs))
			for i := range prs {
				ids[i] = prs[i].in1
			}
			ps.UnaryRange(ids, base)
			putIDScratch(ids)
			return
		case assocBinary:
			l, r := getIDScratch(len(prs)), getIDScratch(len(prs))
			for i := range prs {
				l[i], r[i] = prs[i].in1, prs[i].in2
			}
			ps.BinaryRange(l, r, base)
			putIDScratch(l)
			putIDScratch(r)
			return
		case assocFlatten:
			ids, pos := getIDScratch(len(prs)), getPosScratch(len(prs))
			for i := range prs {
				ids[i], pos[i] = prs[i].in1, prs[i].pos
			}
			ps.FlattenRange(ids, pos, base)
			putIDScratch(ids)
			putPosScratch(pos)
			return
		}
	}
	id := base
	for _, pr := range prs {
		switch kind {
		case assocUnary:
			ps.Unary(pr.in1, id)
		case assocBinary:
			ps.Binary(pr.in1, pr.in2, id)
		case assocFlatten:
			ps.Flatten(pr.in1, pr.pos, id)
		case assocAgg:
			// The pending slice was built for the sink (see execAggregate);
			// ownership transfers, no copy.
			ps.Agg(pr.inIDs, id)
		case assocMultiUnary:
			for _, in := range pr.inIDs {
				ps.Unary(in, id)
			}
		}
		id++
	}
}

// assocRowCount counts the association rows finalize emits for one
// partition: one per pending row, except the multi-unary layout (distinct),
// which emits one unary association per collapsed input id.
func assocRowCount(rows []pending, kind assocKind) int64 {
	if kind != assocMultiUnary {
		return int64(len(rows))
	}
	var n int64
	for _, pr := range rows {
		n += int64(len(pr.inIDs))
	}
	return n
}

func (e *executor) startOperator(o *Op, parts int, leftSchema, rightSchema []string, sample nested.Value) {
	e.opts.Recorder.StartOp(o.id, string(o.typ), parts)
	if e.opts.Sink != nil {
		e.opts.Sink.StartOperator(opInfo(o, leftSchema, rightSchema, sample), parts)
	}
}

// sampleRow returns the first row value of a dataset, or null when empty.
func sampleRow(d *Dataset) nested.Value {
	for _, p := range d.Partitions {
		if len(p) > 0 {
			return p[0].Value
		}
	}
	return nested.Null()
}

func (e *executor) execSource(o *Op) (*Dataset, error) {
	src, ok := e.inputs[o.sourceName]
	if !ok {
		return nil, fmt.Errorf("no input dataset named %q", o.sourceName)
	}
	in := src.Repartition(e.opts.Partitions)
	e.startOperator(o, len(in.Partitions), nil, nil, nested.Null())
	// Reading annotates every top-level item with a fresh identifier.
	total := in.Len()
	base := e.reserve(o.id, int64(total))
	offsets := make([]int64, len(in.Partitions))
	off := base
	for i, p := range in.Partitions {
		offsets[i] = off
		off += int64(len(p))
	}
	partitions := make([][]Row, len(in.Partitions))
	err := e.forEachPartition(len(in.Partitions), func(part int) error {
		rows := make([]Row, len(in.Partitions[part]))
		var ps PartitionSink
		if e.opts.Sink != nil && len(in.Partitions[part]) > 0 {
			ps = e.opts.Sink.Partition(o.id, part)
		}
		id := offsets[part]
		for i, r := range in.Partitions[part] {
			rows[i] = Row{ID: id, Value: r.Value}
			id++
		}
		if ps != nil {
			if e.vectorized() {
				orig := getIDScratch(len(in.Partitions[part]))
				for i, r := range in.Partitions[part] {
					orig[i] = r.ID
				}
				ps.SourceRows(offsets[part], orig)
				putIDScratch(orig)
			} else {
				id = offsets[part]
				for _, r := range in.Partitions[part] {
					ps.SourceRow(id, r.ID)
					id++
				}
			}
		}
		partitions[part] = rows
		if rec := e.opts.Recorder; rec != nil {
			n := int64(len(in.Partitions[part]))
			rec.Add(o.id, part, obs.RowsIn, n)
			rec.Add(o.id, part, obs.RowsOut, n)
			if e.opts.Sink != nil {
				rec.Add(o.id, part, obs.AssocRows, n)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: o.sourceName, Partitions: partitions}, nil
}

func (e *executor) execFilter(o *Op) (*Dataset, error) {
	in := e.in(o, 0)
	e.startOperator(o, len(in.Partitions), nil, nil, nested.Null())
	parts := make([][]pending, len(in.Partitions))
	err := e.forEachPartition(len(in.Partitions), func(part int) error {
		out, err := e.filterMorsel(o, in.Partitions[part])
		if err != nil {
			return err
		}
		parts[part] = out
		if rec := e.opts.Recorder; rec != nil {
			n := int64(len(in.Partitions[part]))
			rec.Add(o.id, part, obs.RowsIn, n)
			rec.Add(o.id, part, obs.ExprEvals, n*int64(EvalOps(o.pred)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return e.finalize(o.id, parts, assocUnary)
}

func (e *executor) execSelect(o *Op) (*Dataset, error) {
	in := e.in(o, 0)
	e.startOperator(o, len(in.Partitions), nil, nil, nested.Null())
	parts := make([][]pending, len(in.Partitions))
	err := e.forEachPartition(len(in.Partitions), func(part int) error {
		out, err := e.selectMorsel(o, in.Partitions[part])
		if err != nil {
			return err
		}
		parts[part] = out
		if rec := e.opts.Recorder; rec != nil {
			n := int64(len(in.Partitions[part]))
			rec.Add(o.id, part, obs.RowsIn, n)
			rec.Add(o.id, part, obs.ExprEvals, n*int64(selectEvalOps(o.fields)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return e.finalize(o.id, parts, assocUnary)
}

// selectEvalOps is the static per-row expression cost of a select: one node
// per column read, the full node count of computed expressions, recursing
// into nested struct fields.
func selectEvalOps(fields []SelectField) int {
	n := 0
	for _, f := range fields {
		switch {
		case len(f.Col) > 0:
			n++
		case len(f.Struct) > 0:
			n += selectEvalOps(f.Struct)
		case f.Expr != nil:
			n += EvalOps(f.Expr)
		}
	}
	return n
}

func evalSelect(fields []SelectField, d nested.Value) (nested.Value, error) {
	out := make([]nested.Field, 0, len(fields))
	for _, f := range fields {
		switch {
		case len(f.Col) > 0:
			v, ok := f.Col.Eval(d)
			if !ok {
				v = nested.Null()
			}
			out = append(out, nested.F(f.Name, v))
		case len(f.Struct) > 0:
			v, err := evalSelect(f.Struct, d)
			if err != nil {
				return nested.Value{}, err
			}
			out = append(out, nested.F(f.Name, v))
		case f.Expr != nil:
			v, err := f.Expr.Eval(d)
			if err != nil {
				return nested.Value{}, err
			}
			out = append(out, nested.F(f.Name, v))
		default:
			return nested.Value{}, fmt.Errorf("select field %q has no column, struct, or expression", f.Name)
		}
	}
	return nested.Item(out...), nil
}

func (e *executor) execMap(o *Op) (*Dataset, error) {
	in := e.in(o, 0)
	e.startOperator(o, len(in.Partitions), nil, nil, nested.Null())
	parts := make([][]pending, len(in.Partitions))
	err := e.forEachPartition(len(in.Partitions), func(part int) error {
		out := make([]pending, 0, len(in.Partitions[part]))
		for _, r := range in.Partitions[part] {
			v, err := o.mapFn.Fn(r.Value)
			if err != nil {
				return fmt.Errorf("map %s: %w", o.mapFn.Name, err)
			}
			if v.Kind() != nested.KindItem {
				return fmt.Errorf("map %s returned %s, want a data item (τ(λ(i)) ⇒ ⟨...⟩)", o.mapFn.Name, v.Kind())
			}
			out = append(out, pending{value: v, in1: r.ID})
		}
		parts[part] = out
		if rec := e.opts.Recorder; rec != nil {
			rec.Add(o.id, part, obs.RowsIn, int64(len(in.Partitions[part])))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return e.finalize(o.id, parts, assocUnary)
}

func (e *executor) execFlatten(o *Op) (*Dataset, error) {
	in := e.in(o, 0)
	e.startOperator(o, len(in.Partitions), nil, nil, nested.Null())
	parts := make([][]pending, len(in.Partitions))
	err := e.forEachPartition(len(in.Partitions), func(part int) error {
		out, err := e.flattenMorsel(o, in.Partitions[part])
		if err != nil {
			return err
		}
		parts[part] = out
		if rec := e.opts.Recorder; rec != nil {
			n := int64(len(in.Partitions[part]))
			rec.Add(o.id, part, obs.RowsIn, n)
			rec.Add(o.id, part, obs.ExprEvals, n) // one path eval per row
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return e.finalize(o.id, parts, assocFlatten)
}

func (e *executor) execUnion(o *Op) (*Dataset, error) {
	left, right := e.in(o, 0), e.in(o, 1)
	lt, lok := schemaType(left)
	rt, rok := schemaType(right)
	if lok && rok && !nested.Compatible(lt, rt) {
		return nil, fmt.Errorf("union: incompatible input types %s and %s", lt, rt)
	}
	e.startOperator(o, len(left.Partitions)+len(right.Partitions), topLevelSchema(left), topLevelSchema(right), nested.Null())
	parts := make([][]pending, len(left.Partitions)+len(right.Partitions))
	nl := len(left.Partitions)
	err := e.forEachPartition(len(parts), func(part int) error {
		var src []Row
		isLeft := part < nl
		if isLeft {
			src = left.Partitions[part]
		} else {
			src = right.Partitions[part-nl]
		}
		out := make([]pending, 0, len(src))
		for _, r := range src {
			p := pending{value: r.Value, in1: -1, in2: -1}
			if isLeft {
				p.in1 = r.ID
			} else {
				p.in2 = r.ID
			}
			out = append(out, p)
		}
		parts[part] = out
		if rec := e.opts.Recorder; rec != nil {
			rec.Add(o.id, part, obs.RowsIn, int64(len(src)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return e.finalize(o.id, parts, assocBinary)
}

// keyedRow is a row shuffled to a bucket with its evaluated key, the key's
// cached hash (computed once during the shuffle, reused by join probing and
// group clustering), and a global sequence number that keeps grouping
// deterministic.
type keyedRow struct {
	row  Row
	key  nested.Value
	hash uint64
	seq  int
}

// shuffle hash-partitions the dataset's rows into buckets by shuffle key,
// in two phases: a map phase evaluating and hashing keys per input
// partition, and a merge phase concatenating the per-partition bucket runs
// in parallel, one exactly-sized output bucket per morsel. The merge keeps
// partition-major order inside every bucket, so the bucket contents are
// byte-identical to a sequential merge.
//
// The map phase evaluates keys column-wise under the vectorized executor
// (evalKeysVec decodes each key path once per batch); the hashed key values
// are identical to the row path's, so bucket layout, cached hashes, and
// sequence numbers do not depend on the executor.
//
// Rows with null keys are dropped (they can never match an equi-join and
// SQL group-by treats them as their own group — callers that need null
// groups pass keepNull).
//
// oid feeds the recorder: rows in, keys hashed, and the static per-row
// expression cost of the key.
func (e *executor) shuffle(d *Dataset, oid int, sk shuffleKey, buckets int, keepNull bool) ([][]keyedRow, error) {
	keyOps := sk.evalOps()
	perPart := make([][][]keyedRow, len(d.Partitions))
	// Global sequence numbers: partition-major.
	starts := make([]int, len(d.Partitions))
	n := 0
	for i, p := range d.Partitions {
		starts[i] = n
		n += len(p)
	}
	err := e.forEachPartition(len(d.Partitions), func(part int) error {
		local := make([][]keyedRow, buckets)
		hashed := 0
		rows := d.Partitions[part]
		var keys []nested.Value
		if e.vectorized() {
			keys, _ = evalKeysVec(sk, rows)
		}
		for i, r := range rows {
			var k nested.Value
			if keys != nil {
				k = keys[i]
			} else {
				var err error
				k, err = sk.eval(r.Value)
				if err != nil {
					return err
				}
			}
			if k.IsNull() && !keepNull {
				continue
			}
			h := valueHash(k)
			hashed++
			b := int(h % uint64(buckets))
			local[b] = append(local[b], keyedRow{row: r, key: k, hash: h, seq: starts[part] + i})
		}
		perPart[part] = local
		if rec := e.opts.Recorder; rec != nil {
			n := int64(len(rows))
			rec.Add(oid, part, obs.RowsIn, n)
			rec.Add(oid, part, obs.KeysHashed, int64(hashed))
			rec.Add(oid, part, obs.ExprEvals, n*int64(keyOps))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Merge phase: size every output bucket exactly from the per-partition
	// counts and concatenate the runs, one bucket per morsel.
	out := make([][]keyedRow, buckets)
	err = e.forEachPartition(buckets, func(b int) error {
		total := 0
		for _, local := range perPart {
			total += len(local[b])
		}
		if total == 0 {
			return nil
		}
		merged := make([]keyedRow, 0, total)
		for _, local := range perPart {
			merged = append(merged, local[b]...)
		}
		out[b] = merged
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// defaultBroadcastThreshold is the build-side row count up to which the
// join broadcasts the small side instead of shuffling both (Spark's
// broadcast hash join heuristic).
const defaultBroadcastThreshold = 2000

func (e *executor) execJoin(o *Op) (*Dataset, error) {
	left, right := e.in(o, 0), e.in(o, 1)
	threshold := e.opts.BroadcastJoinThreshold
	if threshold == 0 {
		threshold = defaultBroadcastThreshold
	}
	// Left outer joins always take the shuffle path (the broadcast probe
	// cannot track unmatched build rows without cross-partition state).
	if !o.leftOuter && threshold > 0 && (left.Len() <= threshold || right.Len() <= threshold) {
		return e.execBroadcastJoin(o, left, right)
	}
	nParts := e.opts.Partitions
	if o.leftOuter {
		// Null-key left rows are emitted in extra per-left-partition chunks.
		nParts += len(left.Partitions)
	}
	e.startOperator(o, nParts, topLevelSchema(left), topLevelSchema(right), nested.Null())
	lb, err := e.shuffle(left, o.id, exprShuffleKey(o.leftKey), e.opts.Partitions, false)
	if err != nil {
		return nil, err
	}
	rb, err := e.shuffle(right, o.id, exprShuffleKey(o.rightKey), e.opts.Partitions, false)
	if err != nil {
		return nil, err
	}
	rightSchema := topLevelSchema(right)
	parts := make([][]pending, e.opts.Partitions)
	err = e.forEachPartition(e.opts.Partitions, func(part int) error {
		out, err := e.joinBucketMorsel(o, lb[part], rb[part], rightSchema)
		if err != nil {
			return err
		}
		parts[part] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	if o.leftOuter {
		// Left rows with null join keys were dropped by the shuffle but must
		// survive a left outer join.
		nullParts := make([][]pending, len(left.Partitions))
		err = e.forEachPartition(len(left.Partitions), func(part int) error {
			var out []pending
			for _, r := range left.Partitions[part] {
				k, err := o.leftKey.Eval(r.Value)
				if err != nil {
					return err
				}
				if !k.IsNull() {
					continue
				}
				item, err := concatWithNulls(r.Value, rightSchema)
				if err != nil {
					return err
				}
				out = append(out, pending{value: item, in1: r.ID, in2: -1}) //pebblevet:ignore hotalloc -- null-key rows are rare; pre-sizing to the partition length would waste the common case
			}
			nullParts[part] = out
			return nil
		})
		if err != nil {
			return nil, err
		}
		parts = append(parts, nullParts...)
	}
	return e.finalize(o.id, parts, assocBinary)
}

// concatWithNulls extends a left item with null values for the right side's
// top-level attributes (the unmatched row of a left outer join).
func concatWithNulls(l nested.Value, rightSchema []string) (nested.Value, error) {
	if l.Kind() != nested.KindItem {
		return nested.Value{}, fmt.Errorf("join: inputs must be data items, got %s", l.Kind())
	}
	fields := make([]nested.Field, 0, l.NumFields()+len(rightSchema))
	fields = append(fields, l.Fields()...)
	for _, a := range rightSchema {
		if _, dup := l.Get(a); dup {
			return nested.Value{}, fmt.Errorf("join: attribute %q exists on both sides; project inputs to disjoint names", a)
		}
		fields = append(fields, nested.F(a, nested.Null()))
	}
	return nested.Item(fields...), nil
}

// execBroadcastJoin hash-joins by building the smaller side once and probing
// the larger side within its existing partitions, avoiding the shuffle of
// the probe side entirely — the broadcast hash join of distributed engines.
// Results are identical to the shuffle join up to row order.
func (e *executor) execBroadcastJoin(o *Op, left, right *Dataset) (*Dataset, error) {
	buildLeft := left.Len() <= right.Len()
	buildDS, probeDS := left, right
	buildKey, probeKey := o.leftKey, o.rightKey
	if !buildLeft {
		buildDS, probeDS = right, left
		buildKey, probeKey = o.rightKey, o.leftKey
	}
	e.startOperator(o, len(probeDS.Partitions), topLevelSchema(left), topLevelSchema(right), nested.Null())
	if e.vectorized() {
		return e.execBroadcastJoinVec(o, buildDS, probeDS, buildKey, probeKey, buildLeft)
	}
	// Build once, sequentially (the build side is small by construction).
	build := make(map[uint64][]keyedRow)
	buildHashed := 0
	for _, p := range buildDS.Partitions {
		for _, r := range p {
			k, err := buildKey.Eval(r.Value)
			if err != nil {
				return nil, err
			}
			if k.IsNull() {
				continue
			}
			h := valueHash(k)
			buildHashed++
			build[h] = append(build[h], keyedRow{row: r, key: k, hash: h})
		}
	}
	if rec := e.opts.Recorder; rec != nil {
		n := int64(buildDS.Len())
		rec.Add(o.id, 0, obs.RowsIn, n)
		rec.Add(o.id, 0, obs.KeysHashed, int64(buildHashed))
		rec.Add(o.id, 0, obs.ExprEvals, n*int64(EvalOps(buildKey)))
	}
	probeKeyOps := EvalOps(probeKey)
	parts := make([][]pending, len(probeDS.Partitions))
	err := e.forEachPartition(len(probeDS.Partitions), func(part int) error {
		// The probe side's keys come pre-evaluated only under the vectorized
		// executor; here probeKeysMorsel declines and the loop evaluates.
		keys, _ := e.probeKeysMorsel(probeKey, probeDS.Partitions[part])
		out, probeHashed, err := broadcastProbePart(probeKey, build, probeDS.Partitions[part], keys, buildLeft)
		if err != nil {
			return err
		}
		parts[part] = out
		if rec := e.opts.Recorder; rec != nil {
			n := int64(len(probeDS.Partitions[part]))
			rec.Add(o.id, part, obs.RowsIn, n)
			rec.Add(o.id, part, obs.KeysHashed, int64(probeHashed))
			rec.Add(o.id, part, obs.ExprEvals, n*int64(probeKeyOps))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return e.finalize(o.id, parts, assocBinary)
}

// concatItems builds the join result r = ⟨i, j⟩ by concatenating the
// attributes of both items; attribute names must be disjoint.
func concatItems(l, r nested.Value) (nested.Value, error) {
	if l.Kind() != nested.KindItem || r.Kind() != nested.KindItem {
		return nested.Value{}, fmt.Errorf("join: inputs must be data items, got %s and %s", l.Kind(), r.Kind())
	}
	fields := make([]nested.Field, 0, l.NumFields()+r.NumFields())
	fields = append(fields, l.Fields()...)
	for _, f := range r.Fields() {
		if _, dup := l.Get(f.Name); dup {
			return nested.Value{}, fmt.Errorf("join: attribute %q exists on both sides; project inputs to disjoint names", f.Name)
		}
		fields = append(fields, f)
	}
	return nested.Item(fields...), nil
}

func (e *executor) execAggregate(o *Op) (*Dataset, error) {
	in := e.in(o, 0)
	e.startOperator(o, e.opts.Partitions, nil, nil, sampleRow(in))
	buckets, err := e.shuffle(in, o.id, groupShuffleKey(o.groupBy), e.opts.Partitions, true)
	if err != nil {
		return nil, err
	}
	parts := make([][]pending, e.opts.Partitions)
	err = e.forEachPartition(e.opts.Partitions, func(part int) error {
		out, err := e.aggBucketMorsel(o, buckets[part])
		if err != nil {
			return err
		}
		parts[part] = out
		if rec := e.opts.Recorder; rec != nil {
			// Each aggregation spec with an input path evaluates it once per
			// grouped row.
			nIns := 0
			for _, spec := range o.aggs {
				if len(spec.In) > 0 {
					nIns++
				}
			}
			rec.Add(o.id, part, obs.ExprEvals, int64(len(buckets[part]))*int64(nIns))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return e.finalize(o.id, parts, assocAgg)
}

// computeAgg evaluates one aggregation over the rows of a group. The order
// of collected elements matches the row order, which in turn matches the
// order of the recorded input identifiers — the invariant Alg. 4's position
// substitution relies on.
func computeAgg(spec AggSpec, rows []keyedRow) (nested.Value, error) {
	if spec.Func == AggCount && len(spec.In) == 0 {
		return nested.Int(int64(len(rows))), nil
	}
	if len(spec.In) == 0 {
		return nested.Value{}, fmt.Errorf("aggregate %s needs an input path", spec.Func)
	}
	values := make([]nested.Value, 0, len(rows))
	for _, kr := range rows {
		v, ok := spec.In.Eval(kr.row.Value)
		if !ok {
			v = nested.Null()
		}
		values = append(values, v)
	}
	switch spec.Func {
	case AggCount:
		n := int64(0)
		for _, v := range values {
			if !v.IsNull() {
				n++
			}
		}
		return nested.Int(n), nil
	case AggSum, AggAvg:
		var sum float64
		var sumI int64
		allInt := true
		n := 0
		for _, v := range values {
			if v.IsNull() {
				continue
			}
			f, ok := v.AsDouble()
			if !ok {
				return nested.Value{}, fmt.Errorf("aggregate %s over non-numeric %s", spec.Func, v.Kind())
			}
			if i, isInt := v.AsInt(); isInt {
				sumI += i
			} else {
				allInt = false
			}
			sum += f
			n++
		}
		if spec.Func == AggAvg {
			if n == 0 {
				return nested.Null(), nil
			}
			return nested.Double(sum / float64(n)), nil
		}
		if allInt {
			return nested.Int(sumI), nil
		}
		return nested.Double(sum), nil
	case AggMax, AggMin:
		var best nested.Value
		found := false
		for _, v := range values {
			if v.IsNull() {
				continue
			}
			if !found {
				best = v
				found = true
				continue
			}
			c := compareWidened(v, best)
			if (spec.Func == AggMax && c > 0) || (spec.Func == AggMin && c < 0) {
				best = v
			}
		}
		if !found {
			return nested.Null(), nil
		}
		return best, nil
	case AggCollectList:
		// Nulls are kept so that element positions stay aligned with the
		// recorded input-identifier order (the invariant Alg. 4 relies on).
		return nested.Bag(values...), nil
	case AggCollectSet:
		elems := make([]nested.Value, 0, len(values))
		for _, v := range values {
			if !v.IsNull() {
				elems = append(elems, v)
			}
		}
		return nested.Set(elems...), nil
	}
	return nested.Value{}, fmt.Errorf("unknown aggregate function %q", spec.Func)
}

// Explain renders the execution statistics as a table: one line per
// operator with its output row count and wall time.
func (r *Result) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %-10s %10s %14s\n", "op", "type", "rows", "elapsed")
	for _, s := range r.Stats {
		fmt.Fprintf(&sb, "%-4d %-10s %10d %14s\n", s.OID, s.Type, s.Rows, s.Elapsed)
	}
	fmt.Fprintf(&sb, "total: %d rows, %s\n", r.Output.Len(), r.TotalElapsed())
	return sb.String()
}
