package engine

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"testing"

	"pebble/internal/nested"
)

// TestEmptyDatasetThroughAllOperators: every operator must handle empty
// inputs without errors or phantom rows.
func TestEmptyDatasetThroughAllOperators(t *testing.T) {
	empty := map[string]*Dataset{"in": dataset(t, "in", nil, 2)}
	builds := map[string]func() *Pipeline{
		"filter": func() *Pipeline {
			p := NewPipeline()
			p.Filter(p.Source("in"), LitBool(true))
			return p
		},
		"select": func() *Pipeline {
			p := NewPipeline()
			p.Select(p.Source("in"), Column("x", "text"))
			return p
		},
		"map": func() *Pipeline {
			p := NewPipeline()
			p.Map(p.Source("in"), MapFunc{Name: "id", Fn: func(v nested.Value) (nested.Value, error) { return v, nil }})
			return p
		},
		"flatten": func() *Pipeline {
			p := NewPipeline()
			p.Flatten(p.Source("in"), "user_mentions", "m")
			return p
		},
		"union": func() *Pipeline {
			p := NewPipeline()
			p.Union(p.Source("in"), p.Source("in"))
			return p
		},
		"join": func() *Pipeline {
			p := NewPipeline()
			p.Join(p.Source("in"), p.Source("in"), Col("a"), Col("b"))
			return p
		},
		"aggregate": func() *Pipeline {
			p := NewPipeline()
			p.Aggregate(p.Source("in"), []GroupKey{Key("text")}, []AggSpec{Agg(AggCount, "", "n")})
			return p
		},
		"distinct": func() *Pipeline {
			p := NewPipeline()
			p.Distinct(p.Source("in"))
			return p
		},
		"orderby": func() *Pipeline {
			p := NewPipeline()
			p.OrderBy(p.Source("in"), false, Col("text"))
			return p
		},
		"limit": func() *Pipeline {
			p := NewPipeline()
			p.Limit(p.Source("in"), 5)
			return p
		},
	}
	for name, build := range builds {
		res, err := Run(build(), empty, Options{Partitions: 2, Sink: newRecordingSink()})
		if err != nil {
			t.Errorf("%s over empty input: %v", name, err)
			continue
		}
		if res.Output.Len() != 0 {
			t.Errorf("%s over empty input produced %d rows", name, res.Output.Len())
		}
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	left := []nested.Value{
		nested.Item(nested.F("k", nested.Null()), nested.F("l", nested.Int(1))),
		nested.Item(nested.F("k", nested.StringVal("x")), nested.F("l", nested.Int(2))),
	}
	right := []nested.Value{
		nested.Item(nested.F("j", nested.Null()), nested.F("r", nested.Int(3))),
		nested.Item(nested.F("j", nested.StringVal("x")), nested.F("r", nested.Int(4))),
	}
	p := NewPipeline()
	l, r := p.Source("l"), p.Source("r")
	p.Join(l, r, Col("k"), Col("j"))
	gen := NewIDGen(1)
	inputs := map[string]*Dataset{
		"l": NewDataset("l", left, 1, gen),
		"r": NewDataset("r", right, 1, gen),
	}
	res := runPipeline(t, p, inputs, Options{Partitions: 2})
	if res.Output.Len() != 1 {
		t.Errorf("null keys must not join: got %d rows", res.Output.Len())
	}
}

func TestAggregateNullGroupKeyFormsOwnGroup(t *testing.T) {
	values := []nested.Value{
		nested.Item(nested.F("g", nested.StringVal("a")), nested.F("v", nested.Int(1))),
		nested.Item(nested.F("v", nested.Int(2))), // g missing -> null group
		nested.Item(nested.F("v", nested.Int(3))),
	}
	p := NewPipeline()
	p.Aggregate(p.Source("in"), []GroupKey{Key("g")}, []AggSpec{Agg(AggSum, "v", "s")})
	inputs := map[string]*Dataset{"in": dataset(t, "in", values, 2)}
	res := runPipeline(t, p, inputs, Options{Partitions: 2})
	if res.Output.Len() != 2 {
		t.Fatalf("groups = %d, want 2 (a and null)", res.Output.Len())
	}
	var nullSum int64 = -1
	for _, r := range res.Output.Rows() {
		g := mustAttr(t, r.Value, "g")
		if g.IsNull() {
			nullSum, _ = mustAttr(t, r.Value, "s").AsInt()
		}
	}
	if nullSum != 5 {
		t.Errorf("null group sum = %d, want 5", nullSum)
	}
}

func TestAggregateMultipleGroupKeys(t *testing.T) {
	values := []nested.Value{
		nested.Item(nested.F("a", nested.StringVal("x")), nested.F("b", nested.Int(1)), nested.F("v", nested.Int(10))),
		nested.Item(nested.F("a", nested.StringVal("x")), nested.F("b", nested.Int(2)), nested.F("v", nested.Int(20))),
		nested.Item(nested.F("a", nested.StringVal("x")), nested.F("b", nested.Int(1)), nested.F("v", nested.Int(30))),
	}
	p := NewPipeline()
	p.Aggregate(p.Source("in"), []GroupKey{Key("a"), Key("b")}, []AggSpec{Agg(AggSum, "v", "s")})
	inputs := map[string]*Dataset{"in": dataset(t, "in", values, 1)}
	res := runPipeline(t, p, inputs, Options{Partitions: 2})
	if res.Output.Len() != 2 {
		t.Fatalf("composite groups = %d, want 2", res.Output.Len())
	}
}

func TestAggregateErrorsOnMissingInputPath(t *testing.T) {
	p := NewPipeline()
	p.Aggregate(p.Source("in"), []GroupKey{Key("text")}, []AggSpec{Agg(AggSum, "", "s")})
	inputs := map[string]*Dataset{"in": dataset(t, "in", tab1(), 1)}
	if _, err := Run(p, inputs, Options{}); err == nil {
		t.Error("sum without input path must fail")
	}
	p2 := NewPipeline()
	p2.Aggregate(p2.Source("in"), []GroupKey{Key("user.id_str")}, []AggSpec{Agg(AggSum, "text", "s")})
	if _, err := Run(p2, inputs, Options{}); err == nil {
		t.Error("sum over strings must fail")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	p := NewPipeline()
	p.Map(p.Source("in"), MapFunc{Name: "boom", Fn: func(v nested.Value) (nested.Value, error) {
		return nested.Value{}, errors.New("kaput")
	}})
	inputs := map[string]*Dataset{"in": dataset(t, "in", tab1(), 3)}
	_, err := Run(p, inputs, Options{Partitions: 3})
	if err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Errorf("map error lost: %v", err)
	}
}

func TestFilterNonBooleanPredicateFails(t *testing.T) {
	p := NewPipeline()
	p.Filter(p.Source("in"), Col("text"))
	inputs := map[string]*Dataset{"in": dataset(t, "in", tab1(), 1)}
	if _, err := Run(p, inputs, Options{}); err == nil {
		t.Error("non-boolean filter predicate must fail")
	}
}

func TestFlattenOfSetAndNullCollection(t *testing.T) {
	values := []nested.Value{
		nested.Item(nested.F("s", nested.Set(nested.Int(1), nested.Int(2), nested.Int(2)))),
		nested.Item(nested.F("x", nested.Int(9))), // s missing -> skipped
	}
	p := NewPipeline()
	p.Flatten(p.Source("in"), "s", "e")
	inputs := map[string]*Dataset{"in": dataset(t, "in", values, 1)}
	res := runPipeline(t, p, inputs, Options{Partitions: 1})
	if res.Output.Len() != 2 {
		t.Errorf("flatten of {1,2} produced %d rows, want 2", res.Output.Len())
	}
}

func TestDatasetHelpers(t *testing.T) {
	d := dataset(t, "in", tab1(), 2)
	if d.Len() != 5 {
		t.Errorf("Len = %d", d.Len())
	}
	if got := len(d.Rows()); got != 5 {
		t.Errorf("Rows = %d", got)
	}
	if got := len(d.Values()); got != 5 {
		t.Errorf("Values = %d", got)
	}
	first := d.Rows()[0]
	row, ok := d.FindByID(first.ID)
	if !ok || !nested.Equal(row.Value, first.Value) {
		t.Error("FindByID broken")
	}
	if _, ok := d.FindByID(-99); ok {
		t.Error("FindByID of unknown id should fail")
	}
	if d.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
	r3 := d.Repartition(3)
	if len(r3.Partitions) != 3 || r3.Len() != 5 {
		t.Errorf("Repartition: %d partitions, %d rows", len(r3.Partitions), r3.Len())
	}
	if !strings.Contains(d.String(), "5 rows") {
		t.Errorf("String = %s", d)
	}
	fr := FromRows("x", d.Rows())
	if fr.Len() != 5 || len(fr.Partitions) != 1 {
		t.Error("FromRows broken")
	}
}

func TestIDGenConcurrency(t *testing.T) {
	gen := NewIDGen(100)
	const goroutines, perG = 8, 1000
	seen := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]int64, perG)
			for i := range ids {
				ids[i] = gen.Next()
			}
			seen[g] = ids
		}(g)
	}
	wg.Wait()
	all := map[int64]bool{}
	for _, ids := range seen {
		for _, id := range ids {
			if id < 100 {
				t.Fatalf("id %d below start", id)
			}
			if all[id] {
				t.Fatalf("duplicate id %d", id)
			}
			all[id] = true
		}
	}
	base := gen.Reserve(10)
	if next := gen.Next(); next != base+10 {
		t.Errorf("Reserve did not advance: base=%d next=%d", base, next)
	}
}

func TestPipelinePlanString(t *testing.T) {
	plan := figure1().String()
	for _, want := range []string{"1:source(tweets.json)", "2:filter", "5:flatten(user_mentions -> m_user)", "9:aggregate", "<- [7]"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	p := NewPipeline()
	p.OrderBy(p.Filter(p.Source("in"), LitBool(true)), true, Col("v"))
	if !strings.Contains(p.String(), "orderBy(v desc)") {
		t.Errorf("extension op plan rendering: %s", p)
	}
}

// TestBroadcastJoinMatchesShuffleJoin: both strategies produce the same
// multiset of rows and equivalent provenance associations.
func TestBroadcastJoinMatchesShuffleJoin(t *testing.T) {
	var users, tweets []nested.Value
	for i := 0; i < 30; i++ {
		users = append(users, nested.Item(
			nested.F("uid", nested.StringVal(string(rune('a'+i%7)))),
			nested.F("uname", nested.Int(int64(i))),
		))
	}
	for i := 0; i < 200; i++ {
		tweets = append(tweets, nested.Item(
			nested.F("author", nested.StringVal(string(rune('a'+i%9)))),
			nested.F("txt", nested.Int(int64(i))),
		))
	}
	build := func() *Pipeline {
		p := NewPipeline()
		l, r := p.Source("users"), p.Source("tweets")
		p.Join(l, r, Col("uid"), Col("author"))
		return p
	}
	mkInputs := func() map[string]*Dataset {
		gen := NewIDGen(1)
		return map[string]*Dataset{
			"users":  NewDataset("users", users, 3, gen),
			"tweets": NewDataset("tweets", tweets, 3, gen),
		}
	}
	run := func(threshold int) []nested.Value {
		sink := newRecordingSink()
		res, err := Run(build(), mkInputs(), Options{Partitions: 3, Sink: sink, BroadcastJoinThreshold: threshold})
		if err != nil {
			t.Fatal(err)
		}
		// Every output row has a binary association.
		joinAssocs := 0
		for _, b := range sink.binaries {
			if b.oid == 3 {
				joinAssocs++
			}
		}
		if joinAssocs != res.Output.Len() {
			t.Fatalf("threshold=%d: %d associations for %d rows", threshold, joinAssocs, res.Output.Len())
		}
		vals := res.Output.Values()
		sort.Slice(vals, func(i, j int) bool { return nested.Compare(vals[i], vals[j]) < 0 })
		return vals
	}
	broadcast := run(0) // default threshold: users side (30 rows) broadcasts
	shuffle := run(-1)  // broadcast disabled
	if len(broadcast) != len(shuffle) {
		t.Fatalf("row counts differ: %d vs %d", len(broadcast), len(shuffle))
	}
	for i := range broadcast {
		if !nested.Equal(broadcast[i], shuffle[i]) {
			t.Fatalf("row %d differs:\n%s\n%s", i, broadcast[i], shuffle[i])
		}
	}
}

// TestBroadcastJoinBacktrace: provenance captured under a broadcast join
// traces identically.
func TestBroadcastJoinBacktrace(t *testing.T) {
	// Reuse the T5 scenario shape at a scale below the broadcast threshold.
	p := NewPipeline()
	l := p.Select(p.Source("in"), Column("author_id", "user.id_str"))
	r := p.Select(p.Source("in"), Column("mentioned_id", "user.id_str"), Column("t2", "text"))
	p.Join(l, r, Col("author_id"), Col("mentioned_id"))
	inputs := map[string]*Dataset{"in": dataset(t, "in", tab1(), 2)}
	sink := newRecordingSink()
	res := runPipeline(t, p, inputs, Options{Partitions: 2, Sink: sink})
	if res.Output.Len() == 0 {
		t.Fatal("self join empty")
	}
	// The join OpInfo still records both schemas for side pruning.
	var joinInfo OpInfo
	for _, info := range sink.infos {
		if info.Type == OpJoin {
			joinInfo = info
		}
	}
	if len(joinInfo.Inputs[0].Schema) == 0 || len(joinInfo.Inputs[1].Schema) == 0 {
		t.Errorf("broadcast join lost schemas: %+v", joinInfo)
	}
}

// TestLeftJoinKeepsUnmatchedRows covers the left outer join extension.
func TestLeftJoinKeepsUnmatchedRows(t *testing.T) {
	left := []nested.Value{
		nested.Item(nested.F("k", nested.StringVal("x")), nested.F("l", nested.Int(1))),
		nested.Item(nested.F("k", nested.StringVal("y")), nested.F("l", nested.Int(2))), // unmatched
		nested.Item(nested.F("k", nested.Null()), nested.F("l", nested.Int(3))),         // null key
	}
	right := []nested.Value{
		nested.Item(nested.F("j", nested.StringVal("x")), nested.F("r", nested.Int(10))),
		nested.Item(nested.F("j", nested.StringVal("x")), nested.F("r", nested.Int(11))),
	}
	p := NewPipeline()
	l, r := p.Source("l"), p.Source("r")
	p.LeftJoin(l, r, Col("k"), Col("j"))
	gen := NewIDGen(1)
	inputs := map[string]*Dataset{
		"l": NewDataset("l", left, 2, gen),
		"r": NewDataset("r", right, 1, gen),
	}
	sink := newRecordingSink()
	res := runPipeline(t, p, inputs, Options{Partitions: 2, Sink: sink})
	// x matches twice; y and the null-key row survive unmatched: 4 rows.
	if res.Output.Len() != 4 {
		t.Fatalf("left join rows = %d, want 4:\n%v", res.Output.Len(), res.Output.Values())
	}
	nullRights := 0
	for _, row := range res.Output.Rows() {
		rv := mustAttr(t, row.Value, "r")
		jv := mustAttr(t, row.Value, "j")
		if rv.IsNull() != jv.IsNull() {
			t.Errorf("half-null right side: %s", row.Value)
		}
		if rv.IsNull() {
			nullRights++
		}
	}
	if nullRights != 2 {
		t.Errorf("unmatched rows = %d, want 2", nullRights)
	}
	// Unmatched associations carry -1 on the right.
	minusOne := 0
	for _, b := range sink.binaries {
		if b.oid == 3 && b.r == -1 {
			minusOne++
		}
	}
	if minusOne != 2 {
		t.Errorf("-1 associations = %d, want 2", minusOne)
	}
}

// TestLeftJoinBacktrace: tracing an unmatched result row reaches only the
// left input.
func TestLeftJoinBacktrace(t *testing.T) {
	left := []nested.Value{nested.Item(nested.F("k", nested.StringVal("solo")), nested.F("l", nested.Int(1)))}
	right := []nested.Value{nested.Item(nested.F("j", nested.StringVal("other")), nested.F("r", nested.Int(2)))}
	p := NewPipeline()
	lsrc, rsrc := p.Source("l"), p.Source("r")
	p.LeftJoin(lsrc, rsrc, Col("k"), Col("j"))
	gen := NewIDGen(1)
	inputs := map[string]*Dataset{
		"l": NewDataset("l", left, 1, gen),
		"r": NewDataset("r", right, 1, gen),
	}
	sink := newRecordingSink()
	res := runPipeline(t, p, inputs, Options{Partitions: 2, Sink: sink})
	if res.Output.Len() != 1 {
		t.Fatalf("rows = %d", res.Output.Len())
	}
	// One binary association with right = -1; lineage-style forward check
	// through the recorded assoc suffices here (full backtrace covered in
	// the backtrace package).
	for _, b := range sink.binaries {
		if b.oid == 3 && (b.l == -1 || b.r != -1) {
			t.Errorf("unexpected association %+v", b)
		}
	}
}

func TestExplain(t *testing.T) {
	inputs := map[string]*Dataset{"tweets.json": dataset(t, "tweets.json", tab1(), 2)}
	res := runPipeline(t, figure1(), inputs, Options{Partitions: 2})
	out := res.Explain()
	for _, want := range []string{"op", "aggregate", "total: 3 rows"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}
