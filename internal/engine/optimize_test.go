package engine

import (
	"sort"
	"strings"
	"testing"

	"pebble/internal/nested"
)

func optimizeOK(t *testing.T, p *Pipeline) (*Pipeline, []string) {
	t.Helper()
	out, log, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("optimized plan invalid: %v\n%s", err, out)
	}
	return out, log
}

// sortedValues runs the pipeline and returns its output values in a
// canonical order for plan-equivalence checks.
func sortedValues(t *testing.T, p *Pipeline, inputs map[string]*Dataset) []nested.Value {
	t.Helper()
	res := runPipeline(t, p, inputs, Options{Partitions: 3})
	vals := res.Output.Values()
	sort.Slice(vals, func(i, j int) bool { return nested.Compare(vals[i], vals[j]) < 0 })
	return vals
}

func assertEquivalent(t *testing.T, a, b *Pipeline, inputs map[string]*Dataset) {
	t.Helper()
	va := sortedValues(t, a, inputs)
	vb := sortedValues(t, b, inputs)
	if len(va) != len(vb) {
		t.Fatalf("row counts differ: %d vs %d\noriginal:\n%s\noptimized:\n%s", len(va), len(vb), a, b)
	}
	for i := range va {
		if !nested.Equal(va[i], vb[i]) {
			t.Fatalf("row %d differs:\n%s\n%s", i, va[i], vb[i])
		}
	}
}

func TestOptimizeMergesFilters(t *testing.T) {
	build := func() *Pipeline {
		p := NewPipeline()
		src := p.Source("in")
		f1 := p.Filter(src, Eq(Col("retweet_cnt"), LitInt(0)))
		p.Filter(f1, Contains(Col("text"), LitString("Hello")))
		return p
	}
	opt, log := optimizeOK(t, build())
	if len(log) != 1 || log[0] != "merge-filters" {
		t.Fatalf("log = %v", log)
	}
	nFilters := 0
	for _, o := range opt.Ops() {
		if o.Type() == OpFilter {
			nFilters++
		}
	}
	if nFilters != 1 {
		t.Errorf("optimized plan has %d filters, want 1:\n%s", nFilters, opt)
	}
	inputs := map[string]*Dataset{"in": dataset(t, "in", tab1(), 2)}
	assertEquivalent(t, build(), opt, inputs)
}

func TestOptimizePushesFilterBelowSelect(t *testing.T) {
	build := func() *Pipeline {
		p := NewPipeline()
		src := p.Source("in")
		sel := p.Select(src,
			Column("t", "text"),
			Column("uid", "user.id_str"),
		)
		p.Filter(sel, Eq(Col("uid"), LitString("lp")))
		return p
	}
	opt, log := optimizeOK(t, build())
	if len(log) != 1 || log[0] != "pushdown-filter-below-select" {
		t.Fatalf("log = %v\n%s", log, opt)
	}
	// The filter now precedes the select and reads the input-side path.
	plan := opt.String()
	if !strings.Contains(plan, "filter[(user.id_str ==") {
		t.Errorf("predicate not rewritten to input schema:\n%s", plan)
	}
	ops := opt.Ops()
	var filterIdx, selectIdx int
	for i, o := range ops {
		switch o.Type() {
		case OpFilter:
			filterIdx = i
		case OpSelect:
			selectIdx = i
		}
	}
	if filterIdx > selectIdx {
		t.Errorf("filter not pushed below select:\n%s", plan)
	}
	inputs := map[string]*Dataset{"in": dataset(t, "in", tab1(), 2)}
	assertEquivalent(t, build(), opt, inputs)
}

func TestOptimizeSkipsUnmappableSelectPredicate(t *testing.T) {
	p := NewPipeline()
	src := p.Source("in")
	sel := p.Select(src, Computed("n", Len(Col("user_mentions"))))
	p.Filter(sel, Gt(Col("n"), LitInt(1)))
	_, log := optimizeOK(t, p)
	if len(log) != 0 {
		t.Errorf("computed column predicate must not be pushed: %v", log)
	}
}

func TestOptimizePushesFilterBelowFlatten(t *testing.T) {
	build := func() *Pipeline {
		p := NewPipeline()
		src := p.Source("in")
		fl := p.Flatten(src, "user_mentions", "m_user")
		p.Filter(fl, Eq(Col("retweet_cnt"), LitInt(0)))
		return p
	}
	opt, log := optimizeOK(t, build())
	if len(log) != 1 || log[0] != "pushdown-filter-below-flatten" {
		t.Fatalf("log = %v", log)
	}
	inputs := map[string]*Dataset{"in": dataset(t, "in", tab1(), 2)}
	assertEquivalent(t, build(), opt, inputs)
}

func TestOptimizeKeepsFilterOnExplodedAttr(t *testing.T) {
	p := NewPipeline()
	src := p.Source("in")
	fl := p.Flatten(src, "user_mentions", "m_user")
	p.Filter(fl, Eq(Col("m_user.id_str"), LitString("lp")))
	_, log := optimizeOK(t, p)
	if len(log) != 0 {
		t.Errorf("filter on exploded attribute must stay above flatten: %v", log)
	}
}

func TestOptimizePushesFilterBelowUnion(t *testing.T) {
	build := func() *Pipeline {
		p := NewPipeline()
		a := p.Source("in")
		b := p.Source("in")
		u := p.Union(a, b)
		p.Filter(u, Eq(Col("retweet_cnt"), LitInt(0)))
		return p
	}
	opt, log := optimizeOK(t, build())
	if len(log) != 1 || log[0] != "pushdown-filter-below-union" {
		t.Fatalf("log = %v", log)
	}
	if opt.Sink().Type() != OpUnion {
		t.Errorf("union should be the sink after pushdown:\n%s", opt)
	}
	nFilters := 0
	for _, o := range opt.Ops() {
		if o.Type() == OpFilter {
			nFilters++
		}
	}
	if nFilters != 2 {
		t.Errorf("want a filter per branch, got %d:\n%s", nFilters, opt)
	}
	inputs := map[string]*Dataset{"in": dataset(t, "in", tab1(), 2)}
	assertEquivalent(t, build(), opt, inputs)
}

// TestOptimizeFigure1Equivalence optimizes the running example and checks
// result equivalence plus that rules fired (the upper-branch filter can
// merge nothing, but nothing must break either).
func TestOptimizeFigure1Equivalence(t *testing.T) {
	opt, _ := optimizeOK(t, figure1())
	inputs := map[string]*Dataset{"tweets.json": dataset(t, "tweets.json", tab1(), 2)}
	// Aggregated bags are order-sensitive per partition layout; compare the
	// user sets and bag sizes instead of raw values.
	summarize := func(p *Pipeline) map[string]int {
		res := runPipeline(t, p, inputs, Options{Partitions: 2})
		out := map[string]int{}
		for _, r := range res.Output.Rows() {
			u, _ := r.Value.Get("user")
			id, _ := mustAttr(t, u, "id_str").AsString()
			tw, _ := r.Value.Get("tweets")
			out[id] = tw.Len()
		}
		return out
	}
	a, b := summarize(figure1()), summarize(opt)
	if len(a) != len(b) {
		t.Fatalf("user sets differ: %v vs %v", a, b)
	}
	for id, n := range a {
		if b[id] != n {
			t.Errorf("user %s: %d vs %d tweets", id, n, b[id])
		}
	}
}

// TestOptimizeChainReachesFixpoint: filter over select over filter collapses
// into a single pushed, merged filter.
func TestOptimizeChainReachesFixpoint(t *testing.T) {
	p := NewPipeline()
	src := p.Source("in")
	f1 := p.Filter(src, Eq(Col("retweet_cnt"), LitInt(0)))
	sel := p.Select(f1, Column("text", "text"), Column("retweet_cnt", "retweet_cnt"))
	p.Filter(sel, Contains(Col("text"), LitString("Hello")))
	opt, log := optimizeOK(t, p)
	if len(log) < 2 {
		t.Fatalf("expected pushdown then merge, log = %v", log)
	}
	nFilters := 0
	for _, o := range opt.Ops() {
		if o.Type() == OpFilter {
			nFilters++
		}
	}
	if nFilters != 1 {
		t.Errorf("fixpoint not reached, %d filters:\n%s", nFilters, opt)
	}
	inputs := map[string]*Dataset{"in": dataset(t, "in", tab1(), 2)}
	assertEquivalent(t, p, opt, inputs)
}
