package engine

import (
	"testing"

	"pebble/internal/nested"
)

func kv(k string, v int64) nested.Value {
	return nested.Item(nested.F("k", nested.StringVal(k)), nested.F("v", nested.Int(v)))
}

func TestDistinctCollapsesDuplicates(t *testing.T) {
	values := []nested.Value{kv("a", 1), kv("b", 2), kv("a", 1), kv("a", 1), kv("c", 3), kv("b", 2)}
	p := NewPipeline()
	p.Distinct(p.Source("in"))
	inputs := map[string]*Dataset{"in": dataset(t, "in", values, 3)}
	sink := newRecordingSink()
	res := runPipeline(t, p, inputs, Options{Partitions: 3, Sink: sink})
	if res.Output.Len() != 3 {
		t.Fatalf("distinct kept %d rows, want 3", res.Output.Len())
	}
	// Every duplicate contributes: 6 unary associations to 3 outputs.
	perOut := map[int64]int{}
	for _, u := range sink.unaries {
		if u.oid == 2 {
			perOut[u.out]++
		}
	}
	total := 0
	for _, n := range perOut {
		total += n
	}
	if len(perOut) != 3 || total != 6 {
		t.Errorf("distinct associations: %d outputs, %d total (want 3, 6)", len(perOut), total)
	}
}

func TestDistinctDeterministic(t *testing.T) {
	values := []nested.Value{kv("x", 1), kv("y", 2), kv("x", 1), kv("z", 3)}
	inputs := map[string]*Dataset{"in": dataset(t, "in", values, 2)}
	build := func() *Pipeline {
		p := NewPipeline()
		p.Distinct(p.Source("in"))
		return p
	}
	a := runPipeline(t, build(), inputs, Options{Partitions: 2}).Output.Values()
	b := runPipeline(t, build(), inputs, Options{Partitions: 2}).Output.Values()
	if len(a) != len(b) {
		t.Fatal("nondeterministic distinct")
	}
	for i := range a {
		if !nested.Equal(a[i], b[i]) {
			t.Errorf("row %d differs", i)
		}
	}
}

func TestOrderBySortsTotally(t *testing.T) {
	values := []nested.Value{kv("c", 3), kv("a", 1), kv("d", 4), kv("b", 2)}
	p := NewPipeline()
	p.OrderBy(p.Source("in"), false, Col("v"))
	inputs := map[string]*Dataset{"in": dataset(t, "in", values, 3)}
	res := runPipeline(t, p, inputs, Options{Partitions: 3})
	var got []int64
	for _, r := range res.Output.Rows() {
		v, _ := mustAttr(t, r.Value, "v").AsInt()
		got = append(got, v)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("ascending order violated: %v", got)
		}
	}
	// Descending.
	p2 := NewPipeline()
	p2.OrderBy(p2.Source("in"), true, Col("v"))
	res2 := runPipeline(t, p2, inputs, Options{Partitions: 3})
	first, _ := mustAttr(t, res2.Output.Rows()[0].Value, "v").AsInt()
	if first != 4 {
		t.Errorf("descending first = %d, want 4", first)
	}
}

func TestOrderByStableOnTies(t *testing.T) {
	values := []nested.Value{kv("a", 1), kv("b", 1), kv("c", 1)}
	p := NewPipeline()
	p.OrderBy(p.Source("in"), false, Col("v"))
	inputs := map[string]*Dataset{"in": dataset(t, "in", values, 1)}
	res := runPipeline(t, p, inputs, Options{Partitions: 1})
	var ks []string
	for _, r := range res.Output.Rows() {
		k, _ := mustAttr(t, r.Value, "k").AsString()
		ks = append(ks, k)
	}
	if ks[0] != "a" || ks[1] != "b" || ks[2] != "c" {
		t.Errorf("tie order not stable: %v", ks)
	}
}

func TestLimitTakesPrefix(t *testing.T) {
	values := []nested.Value{kv("a", 1), kv("b", 2), kv("c", 3), kv("d", 4)}
	p := NewPipeline()
	ord := p.OrderBy(p.Source("in"), true, Col("v"))
	p.Limit(ord, 2)
	inputs := map[string]*Dataset{"in": dataset(t, "in", values, 2)}
	res := runPipeline(t, p, inputs, Options{Partitions: 2})
	if res.Output.Len() != 2 {
		t.Fatalf("limit kept %d rows", res.Output.Len())
	}
	top, _ := mustAttr(t, res.Output.Rows()[0].Value, "v").AsInt()
	if top != 4 {
		t.Errorf("top-2 first element = %d, want 4 (orderBy desc + limit)", top)
	}
	// Limit beyond the dataset size keeps everything.
	p2 := NewPipeline()
	p2.Limit(p2.Source("in"), 99)
	if got := runPipeline(t, p2, inputs, Options{Partitions: 2}).Output.Len(); got != 4 {
		t.Errorf("oversized limit kept %d rows", got)
	}
	// Limit 0 keeps nothing.
	p3 := NewPipeline()
	p3.Limit(p3.Source("in"), 0)
	if got := runPipeline(t, p3, inputs, Options{Partitions: 2}).Output.Len(); got != 0 {
		t.Errorf("limit 0 kept %d rows", got)
	}
}

func TestOrderByCaptureRecordsSortKeys(t *testing.T) {
	values := []nested.Value{kv("a", 2), kv("b", 1)}
	p := NewPipeline()
	p.OrderBy(p.Source("in"), false, Col("v"))
	inputs := map[string]*Dataset{"in": dataset(t, "in", values, 1)}
	sink := newRecordingSink()
	runPipeline(t, p, inputs, Options{Partitions: 1, Sink: sink})
	info := sink.infos[1]
	if len(info.Inputs[0].Accessed) != 1 || info.Inputs[0].Accessed[0].String() != "v" {
		t.Errorf("orderBy accessed paths = %v, want [v]", info.Inputs[0].Accessed)
	}
	if len(info.Manipulated) != 0 {
		t.Errorf("orderBy must not manipulate structure")
	}
}
