package engine

import (
	"pebble/internal/nested"
	"pebble/internal/path"
)

// Mapping is one structural manipulation ⟨p_in, p_out⟩ ∈ M: the operator
// copies/moves the data reachable at the input path to the output path
// (Def. 4.9). Paths are on schema level; positions appear as the [pos]
// placeholder.
type Mapping struct {
	In  path.Path
	Out path.Path
	// GroupKey marks the grouping-attribute mappings of an aggregation
	// (⟨g_i, g_r⟩ in Tab. 5). Backtracing treats them specially: they
	// transform paths but never decide by themselves whether an input item
	// remains in the provenance (cf. Ex. 6.6, where group members at other
	// positions are removed).
	GroupKey bool
}

// InputInfo describes one input of an operator for provenance capture: which
// operator (or source dataset) produced it and which paths the operator
// accesses on it (the set A of Def. 4.10, on schema level).
type InputInfo struct {
	// Pred is the identifier of the preceding operator, or 0 when the input
	// is a raw source dataset.
	Pred int
	// SourceName names the source dataset when Pred == 0.
	SourceName string
	// Accessed lists the accessed paths. Nil with AccessUndefined unset
	// means A = ∅ (e.g. union); AccessUndefined set means A = ⊥ (map).
	Accessed []path.Path
	// AccessUndefined marks A = ⊥, used for opaque map functions.
	AccessUndefined bool
	// Schema lists the input's top-level attribute names for operators whose
	// backtracing needs them: join (to prune the other side's attributes)
	// and union (for symmetry).
	Schema []string
}

// OpInfo is the static, data-item-independent part of the lightweight
// operator provenance P = ⟨oid, type, I, M, P⟩ (Def. 5.1): everything but
// the per-item association bag P, which the sink collects row by row.
type OpInfo struct {
	OID    int
	Type   OpType
	Inputs []InputInfo
	// Manipulated is the schema-level manipulation mapping M. Nil with
	// ManipUndefined unset means M = ∅; ManipUndefined set means M = ⊥.
	Manipulated    []Mapping
	ManipUndefined bool
}

// CaptureSink receives provenance during execution. StartOperator is called
// once per operator before its rows flow; the executor then requests one
// PartitionSink per partition morsel and appends every association of that
// morsel through it. StartOperator for one operator may race with Partition
// calls and per-row appends of another (the engine executes independent DAG
// branches concurrently), so the registry behind Partition must be
// synchronised — but each returned PartitionSink is used by exactly one
// goroutine at a time and can append without locking. A nil sink disables
// capture entirely.
type CaptureSink interface {
	// StartOperator announces an operator and its static provenance.
	StartOperator(info OpInfo, partitions int)
	// Partition returns the morsel-scoped sink for one partition of an
	// announced operator. The executor calls it once per morsel — any
	// registry lookup or locking is paid here, once, instead of once per
	// row. The handle must not be shared across partitions or retained
	// after the operator finishes.
	Partition(oid, part int) PartitionSink
}

// PartitionSink appends the association rows of one partition morsel. All
// methods are single-goroutine: the executor owns the morsel for the
// duration of the handle, so implementations append without locking.
//
// The *Range methods are the bulk form the vectorized executor emits: one
// call per partition morsel covering a contiguous run of output
// identifiers, equivalent to the matching per-row calls in slice order. A
// sink must produce identical state from either form — the differential
// oracle asserts the serialized provenance bytes agree. Unlike Agg, the
// range slices are borrowed scratch buffers: implementations must copy what
// they keep, and the caller may recycle the slices as soon as the call
// returns.
type PartitionSink interface {
	// SourceRow records a top-level identifier assigned to a source row,
	// together with the identifier the row carried in the raw input dataset
	// (so analyses can correlate multiple reads of the same input).
	SourceRow(id, origID int64)
	// SourceRows bulk-records a contiguous run of source rows: origIDs[i]
	// was assigned identifier base+i.
	SourceRows(base int64, origIDs []int64)
	// Unary records ⟨id_i, id_o⟩ for map, select, filter.
	Unary(inID, outID int64)
	// UnaryRange bulk-records ⟨inIDs[i], base+i⟩ for every i.
	UnaryRange(inIDs []int64, base int64)
	// Binary records ⟨id_i1, id_i2, id_o⟩ for join and union; for union the
	// absent side is -1.
	Binary(leftID, rightID, outID int64)
	// BinaryRange bulk-records ⟨leftIDs[i], rightIDs[i], base+i⟩ for every i.
	BinaryRange(leftIDs, rightIDs []int64, base int64)
	// Flatten records ⟨id_i, pos, id_o⟩ with the 1-based position of the
	// flattened element.
	Flatten(inID int64, pos int, outID int64)
	// FlattenRange bulk-records ⟨inIDs[i], positions[i], base+i⟩ for every i.
	FlattenRange(inIDs []int64, positions []int, base int64)
	// Agg records ⟨ids_i, id_o⟩; the order of inIDs matches the element
	// order of every nested collection the aggregation produced. The sink
	// takes ownership of the slice — the caller must not reuse it.
	Agg(inIDs []int64, outID int64)
}

// opInfo derives the static provenance of an operator per the inference
// rules of Tab. 5. Join and union need the input schemas (for the identity
// mapping over all top-level attributes and for side pruning), and
// aggregation needs a sample input item to expand struct-valued group keys
// into their leaf paths; the executor supplies these from the data.
func opInfo(o *Op, leftSchema, rightSchema []string, sample nested.Value) OpInfo {
	info := OpInfo{OID: o.id, Type: o.typ}
	for _, in := range o.inputs {
		info.Inputs = append(info.Inputs, InputInfo{Pred: in.id})
	}
	switch o.typ {
	case OpSource:
		info.Inputs = []InputInfo{{Pred: 0, SourceName: o.sourceName}}
	case OpFilter:
		// A = paths of φ(i); M = ∅ (the item's structure is kept entirely).
		info.Inputs[0].Accessed = dedupPaths(o.pred.Paths())
	case OpSelect:
		var accessed []path.Path
		var manip []Mapping
		collectSelect(o.fields, nil, &accessed, &manip)
		info.Inputs[0].Accessed = dedupPaths(accessed)
		info.Manipulated = manip
	case OpMap:
		// A = ⊥ and M = ⊥: the internals of λ are unknown (Sec. 5.0.1).
		info.Inputs[0].AccessUndefined = true
		info.ManipUndefined = true
	case OpJoin:
		info.Inputs[0].Accessed = dedupPaths(o.leftKey.Paths())
		info.Inputs[1].Accessed = dedupPaths(o.rightKey.Paths())
		info.Inputs[0].Schema = leftSchema
		info.Inputs[1].Schema = rightSchema
		// M: every top-level attribute of either schema maps identically
		// into the result item r = ⟨i, j⟩.
		for _, a := range leftSchema {
			info.Manipulated = append(info.Manipulated, Mapping{In: path.New(a), Out: path.New(a)})
		}
		for _, a := range rightSchema {
			info.Manipulated = append(info.Manipulated, Mapping{In: path.New(a), Out: path.New(a)})
		}
	case OpUnion:
		// A = ∅ (schema comparison only) and M = ∅.
		info.Inputs[0].Schema = leftSchema
		info.Inputs[1].Schema = rightSchema
	case OpDistinct, OpLimit:
		// Identity structure; distinct compares whole items and limit reads
		// nothing, so both leave A = ∅ and M = ∅.
	case OpOrderBy:
		var accessed []path.Path
		for _, k := range o.sortKeys {
			accessed = append(accessed, k.Paths()...)
		}
		info.Inputs[0].Accessed = dedupPaths(accessed)
	case OpFlatten:
		// The accessed/manipulated path is a_col[pos]: the pos-th element of
		// the flattened collection.
		colPos := o.flattenCol.SchemaLevel().Clone()
		colPos[len(colPos)-1].Index = path.Pos
		info.Inputs[0].Accessed = []path.Path{colPos}
		info.Manipulated = []Mapping{{In: colPos, Out: path.New(o.flattenNew)}}
	case OpAggregate:
		var accessed []path.Path
		var manip []Mapping
		for _, g := range o.groupBy {
			// Grouping by a struct-valued key compares every leaf of the
			// struct, so all its leaf attributes are accessed (Ex. 6.6 marks
			// user and its children).
			accessed = append(accessed, expandLeaves(g.Path.SchemaLevel(), sample)...)
			manip = append(manip, Mapping{In: g.Path.SchemaLevel(), Out: path.New(g.Name), GroupKey: true})
		}
		for _, a := range o.aggs {
			if len(a.In) > 0 {
				accessed = append(accessed, a.In.SchemaLevel())
			}
			out := path.New(a.Out)
			if a.Func == AggCollectList {
				// Bag nesting: the aggregated value lands at out[pos], the
				// position matching the input id's position in ids_i (Alg. 4).
				// collect_set deduplicates and so loses the id↔position
				// alignment; its mapping targets the whole collection, which
				// is conservative but sound.
				out[len(out)-1].Index = path.Pos
			}
			in := a.In.SchemaLevel()
			if len(in) == 0 {
				in = nil
			}
			manip = append(manip, Mapping{In: in, Out: out})
		}
		info.Inputs[0].Accessed = dedupPaths(accessed)
		info.Manipulated = manip
	}
	return info
}

// collectSelect walks select fields, accumulating accessed paths and
// manipulation mappings. outPrefix is the output path of the enclosing
// struct fields.
func collectSelect(fields []SelectField, outPrefix path.Path, accessed *[]path.Path, manip *[]Mapping) {
	for _, f := range fields {
		out := outPrefix.Append(path.Step{Attr: f.Name, Index: path.NoIndex})
		switch {
		case len(f.Col) > 0:
			in := f.Col.SchemaLevel()
			*accessed = append(*accessed, in)
			*manip = append(*manip, Mapping{In: in, Out: out})
		case len(f.Struct) > 0:
			collectSelect(f.Struct, out, accessed, manip)
		case f.Expr != nil:
			// Computed field: accessed paths are known, the mapping is not.
			*accessed = append(*accessed, f.Expr.Paths()...)
		}
	}
}

// expandLeaves expands a path whose value is a struct (data item) into the
// paths of all its leaf attributes, using a sample item to discover the
// schema. Non-struct values yield the path itself.
func expandLeaves(p path.Path, sample nested.Value) []path.Path {
	if sample.IsNull() {
		return []path.Path{p}
	}
	v, ok := p.Eval(sample)
	if !ok || v.Kind() != nested.KindItem {
		return []path.Path{p}
	}
	var out []path.Path
	for _, f := range v.Fields() {
		out = append(out, expandLeaves(p.Append(path.Step{Attr: f.Name, Index: path.NoIndex}), sample)...)
	}
	if len(out) == 0 {
		return []path.Path{p}
	}
	return out
}

func dedupPaths(paths []path.Path) []path.Path {
	s := path.NewSet(paths...)
	return s.Paths()
}

// topLevelSchema returns the top-level attribute names of a dataset,
// inferred from its first row; empty datasets yield nil.
func topLevelSchema(d *Dataset) []string {
	for _, part := range d.Partitions {
		if len(part) > 0 {
			return part[0].Value.AttrNames()
		}
	}
	return nil
}

// schemaType returns the item type of the dataset's rows, for union's type
// precondition; ok is false for empty datasets.
func schemaType(d *Dataset) (nested.Type, bool) {
	for _, part := range d.Partitions {
		if len(part) > 0 {
			return nested.TypeOf(part[0].Value), true
		}
	}
	return nested.Type{}, false
}
