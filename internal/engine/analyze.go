package engine

import (
	"fmt"
	"sort"

	"pebble/internal/nested"
	"pebble/internal/path"
)

// Analyze type-checks the pipeline against the declared input item types,
// propagating schemas operator by operator like Spark's analyzer: unknown
// columns in predicates and projections, flattening non-collections, union
// type mismatches, join attribute collisions, and ill-typed aggregations are
// reported at plan time instead of failing mid-execution.
//
// Map functions are opaque; their output schema is unknown, so checking is
// suspended downstream of a map until an operator re-establishes a schema
// (none can, so everything below a map is accepted).
//
// The returned map holds each operator's output item type (absent for
// operators below a map).
func Analyze(p *Pipeline, inputTypes map[string]nested.Type) (map[int]nested.Type, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := make(map[int]nested.Type, len(p.ops))
	known := make(map[int]bool, len(p.ops))
	for _, o := range p.ops {
		t, ok, err := analyzeOp(o, inputTypes, out, known)
		if err != nil {
			return nil, fmt.Errorf("engine: analyze %s: %w", o, err)
		}
		known[o.id] = ok
		if ok {
			out[o.id] = t
		}
	}
	return out, nil
}

// InferInputTypes derives declared input types from the datasets by merging
// the types of up to inferSampleRows rows per input: semi-structured inputs
// (like the DBLP dataset, whose record types carry different attributes)
// yield the union of their attributes, with conflicting attribute kinds
// recorded as unknown (null, compatible with anything).
func InferInputTypes(inputs map[string]*Dataset) map[string]nested.Type {
	const inferSampleRows = 200
	out := make(map[string]nested.Type, len(inputs))
	names := make([]string, 0, len(inputs))
	for name := range inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := inputs[name]
		var merged nested.Type
		have := false
		n := 0
		for _, p := range d.Partitions {
			for _, r := range p {
				if n >= inferSampleRows {
					break
				}
				n++
				t := nested.TypeOf(r.Value)
				if !have {
					merged = t
					have = true
				} else {
					merged = mergeTypes(merged, t)
				}
			}
		}
		if have {
			out[name] = merged
		}
	}
	return out
}

// mergeTypes unifies two types: items merge field-wise (union of
// attributes), collections merge element types, equal kinds keep themselves,
// int/double widen to double, and conflicts become unknown (null).
func mergeTypes(a, b nested.Type) nested.Type {
	if a.Kind == nested.KindNull {
		return b
	}
	if b.Kind == nested.KindNull {
		return a
	}
	if a.Kind != b.Kind {
		if (a.Kind == nested.KindInt || a.Kind == nested.KindDouble) &&
			(b.Kind == nested.KindInt || b.Kind == nested.KindDouble) {
			return nested.Type{Kind: nested.KindDouble}
		}
		return nested.Type{Kind: nested.KindNull}
	}
	switch a.Kind {
	case nested.KindItem:
		var fields []nested.FieldType
		index := map[string]int{}
		for _, f := range a.Fields {
			index[f.Name] = len(fields)
			fields = append(fields, f)
		}
		for _, f := range b.Fields {
			if i, ok := index[f.Name]; ok {
				fields[i] = nested.FieldType{Name: f.Name, Type: mergeTypes(fields[i].Type, f.Type)}
			} else {
				fields = append(fields, f)
			}
		}
		return nested.Type{Kind: nested.KindItem, Fields: fields}
	case nested.KindBag, nested.KindSet:
		switch {
		case a.Elem == nil:
			return b
		case b.Elem == nil:
			return a
		default:
			elem := mergeTypes(*a.Elem, *b.Elem)
			return nested.Type{Kind: a.Kind, Elem: &elem}
		}
	default:
		return a
	}
}

func analyzeOp(o *Op, inputTypes map[string]nested.Type, schemas map[int]nested.Type, known map[int]bool) (nested.Type, bool, error) {
	in := func(i int) (nested.Type, bool) {
		id := o.inputs[i].id
		return schemas[id], known[id]
	}
	switch o.typ {
	case OpSource:
		t, ok := inputTypes[o.sourceName]
		if !ok {
			// Undeclared inputs are legal (e.g. empty datasets); checking is
			// suspended downstream.
			return nested.Type{}, false, nil
		}
		if t.Kind != nested.KindItem {
			return nested.Type{}, false, fmt.Errorf("input %q is %s, want an item type", o.sourceName, t.Kind)
		}
		return t, true, nil
	case OpFilter:
		t, ok := in(0)
		if !ok {
			return nested.Type{}, false, nil
		}
		if err := checkExprPaths(o.pred, t); err != nil {
			return nested.Type{}, false, err
		}
		return t, true, nil
	case OpSelect:
		t, ok := in(0)
		if !ok {
			return nested.Type{}, false, nil
		}
		outT, err := selectType(o.fields, t)
		if err != nil {
			return nested.Type{}, false, err
		}
		return outT, true, nil
	case OpMap:
		// Opaque: schema unknown downstream.
		return nested.Type{}, false, nil
	case OpJoin:
		lt, lok := in(0)
		rt, rok := in(1)
		if !lok || !rok {
			return nested.Type{}, false, nil
		}
		if err := checkExprPaths(o.leftKey, lt); err != nil {
			return nested.Type{}, false, fmt.Errorf("left key: %w", err)
		}
		if err := checkExprPaths(o.rightKey, rt); err != nil {
			return nested.Type{}, false, fmt.Errorf("right key: %w", err)
		}
		fields := append([]nested.FieldType(nil), lt.Fields...)
		for _, f := range rt.Fields {
			for _, lf := range lt.Fields {
				if lf.Name == f.Name {
					return nested.Type{}, false, fmt.Errorf("attribute %q exists on both sides", f.Name)
				}
			}
			fields = append(fields, f)
		}
		return nested.Type{Kind: nested.KindItem, Fields: fields}, true, nil
	case OpUnion:
		lt, lok := in(0)
		rt, rok := in(1)
		if !lok || !rok {
			return nested.Type{}, false, nil
		}
		if !nested.Compatible(lt, rt) {
			return nested.Type{}, false, fmt.Errorf("incompatible input types %s and %s", lt, rt)
		}
		return lt, true, nil
	case OpFlatten:
		t, ok := in(0)
		if !ok {
			return nested.Type{}, false, nil
		}
		colT, err := typeAt(t, o.flattenCol)
		if err != nil {
			return nested.Type{}, false, err
		}
		if !colT.Kind.IsCollection() {
			return nested.Type{}, false, fmt.Errorf("%s is %s, want bag or set", o.flattenCol, colT.Kind)
		}
		var elemT nested.Type
		if colT.Elem != nil {
			elemT = *colT.Elem
		} else {
			elemT = nested.Type{Kind: nested.KindNull}
		}
		for _, f := range t.Fields {
			if f.Name == o.flattenNew {
				return nested.Type{}, false, fmt.Errorf("flatten output attribute %q already exists", o.flattenNew)
			}
		}
		fields := append(append([]nested.FieldType(nil), t.Fields...),
			nested.FieldType{Name: o.flattenNew, Type: elemT})
		return nested.Type{Kind: nested.KindItem, Fields: fields}, true, nil
	case OpAggregate:
		t, ok := in(0)
		if !ok {
			return nested.Type{}, false, nil
		}
		var fields []nested.FieldType
		seen := map[string]bool{}
		addField := func(name string, ft nested.Type) error {
			if seen[name] {
				return fmt.Errorf("duplicate output attribute %q", name)
			}
			seen[name] = true
			fields = append(fields, nested.FieldType{Name: name, Type: ft})
			return nil
		}
		for _, g := range o.groupBy {
			gt, err := typeAt(t, g.Path)
			if err != nil {
				return nested.Type{}, false, fmt.Errorf("group key %s: %w", g.Path, err)
			}
			if err := addField(g.Name, gt); err != nil {
				return nested.Type{}, false, err
			}
		}
		for _, a := range o.aggs {
			at, err := aggType(a, t)
			if err != nil {
				return nested.Type{}, false, err
			}
			if err := addField(a.Out, at); err != nil {
				return nested.Type{}, false, err
			}
		}
		return nested.Type{Kind: nested.KindItem, Fields: fields}, true, nil
	case OpDistinct, OpLimit:
		t, ok := in(0)
		return t, ok, nil
	case OpOrderBy:
		t, ok := in(0)
		if !ok {
			return nested.Type{}, false, nil
		}
		for _, k := range o.sortKeys {
			if err := checkExprPaths(k, t); err != nil {
				return nested.Type{}, false, fmt.Errorf("sort key: %w", err)
			}
		}
		return t, true, nil
	}
	return nested.Type{}, false, fmt.Errorf("unknown operator type %q", o.typ)
}

// typeAt resolves an access path against an item type, descending through
// collection element types for positional or un-indexed collection steps.
func typeAt(t nested.Type, p path.Path) (nested.Type, error) {
	cur := t
	for _, s := range p {
		if cur.Kind == nested.KindNull {
			// Unknown (merged-conflict) type: anything below it is accepted
			// and stays unknown.
			return nested.Type{Kind: nested.KindNull}, nil
		}
		if s.Attr != "" {
			if cur.Kind != nested.KindItem {
				return nested.Type{}, fmt.Errorf("path %s: %s is not an item", p, cur)
			}
			next, ok := cur.Get(s.Attr)
			if !ok {
				return nested.Type{}, fmt.Errorf("unknown column %q (path %s) in %s", s.Attr, p, cur)
			}
			cur = next
		}
		if s.Index != path.NoIndex {
			if !cur.Kind.IsCollection() {
				return nested.Type{}, fmt.Errorf("path %s: positional access into %s", p, cur.Kind)
			}
			if cur.Elem == nil {
				return nested.Type{Kind: nested.KindNull}, nil
			}
			cur = *cur.Elem
		}
	}
	return cur, nil
}

// checkExprPaths verifies every column an expression reads exists in the
// schema.
func checkExprPaths(e Expr, t nested.Type) error {
	for _, p := range e.Paths() {
		if _, err := typeAt(t, p); err != nil {
			return err
		}
	}
	return nil
}

func selectType(fields []SelectField, in nested.Type) (nested.Type, error) {
	var out []nested.FieldType
	seen := map[string]bool{}
	for _, f := range fields {
		if seen[f.Name] {
			return nested.Type{}, fmt.Errorf("duplicate output attribute %q", f.Name)
		}
		seen[f.Name] = true
		switch {
		case len(f.Col) > 0:
			ft, err := typeAt(in, f.Col)
			if err != nil {
				return nested.Type{}, err
			}
			out = append(out, nested.FieldType{Name: f.Name, Type: ft})
		case len(f.Struct) > 0:
			st, err := selectType(f.Struct, in)
			if err != nil {
				return nested.Type{}, err
			}
			out = append(out, nested.FieldType{Name: f.Name, Type: st})
		case f.Expr != nil:
			if err := checkExprPaths(f.Expr, in); err != nil {
				return nested.Type{}, err
			}
			// The expression's result type is unknown statically; record it
			// as null (compatible with anything).
			out = append(out, nested.FieldType{Name: f.Name, Type: nested.Type{Kind: nested.KindNull}})
		default:
			return nested.Type{}, fmt.Errorf("select field %q has no column, struct, or expression", f.Name)
		}
	}
	return nested.Type{Kind: nested.KindItem, Fields: out}, nil
}

// aggType derives the output type of one aggregation.
func aggType(a AggSpec, in nested.Type) (nested.Type, error) {
	var inT nested.Type
	if len(a.In) > 0 {
		t, err := typeAt(in, a.In)
		if err != nil {
			return nested.Type{}, fmt.Errorf("aggregate input %s: %w", a.In, err)
		}
		inT = t
	}
	switch a.Func {
	case AggCount:
		return nested.Type{Kind: nested.KindInt}, nil
	case AggSum, AggMax, AggMin:
		if len(a.In) == 0 {
			return nested.Type{}, fmt.Errorf("aggregate %s needs an input path", a.Func)
		}
		switch inT.Kind {
		case nested.KindInt, nested.KindDouble, nested.KindNull:
			return inT, nil
		case nested.KindString, nested.KindBool:
			if a.Func == AggSum {
				return nested.Type{}, fmt.Errorf("sum over %s", inT.Kind)
			}
			return inT, nil // max/min are defined on the total order
		default:
			return nested.Type{}, fmt.Errorf("aggregate %s over %s", a.Func, inT.Kind)
		}
	case AggAvg:
		if inT.Kind != nested.KindInt && inT.Kind != nested.KindDouble && inT.Kind != nested.KindNull {
			return nested.Type{}, fmt.Errorf("avg over %s", inT.Kind)
		}
		return nested.Type{Kind: nested.KindDouble}, nil
	case AggCollectList:
		return nested.Type{Kind: nested.KindBag, Elem: &inT}, nil
	case AggCollectSet:
		return nested.Type{Kind: nested.KindSet, Elem: &inT}, nil
	}
	return nested.Type{}, fmt.Errorf("unknown aggregate function %q", a.Func)
}
