package engine

import (
	"math/bits"
	"sync"

	"pebble/internal/nested"
	"pebble/internal/path"
)

// This file implements the columnar morsel representation of the vectorized
// executor (DESIGN.md §10). A logical partition is processed in chunks of at
// most batchSize rows; each chunk is wrapped in a batch that lazily decodes
// the access paths the operator's expressions read into colVec columns —
// scalar columns carry typed arrays plus a validity bitmap, everything else
// (nested bags, items, mixed-kind attributes) stays as a generic value
// column. Batches and the id-gather scratch buffers used by bulk capture
// emission are recycled through sync.Pools shared by all workers.
//
// Correctness contract: a colVec must reproduce the row engine's view of the
// data exactly. For every row i, at(i) returns a value equal (as a Go struct)
// to what colExpr.Eval would have produced: the stored value itself, or
// nested.Null() when the path was absent. Typed storage is only used when
// every non-null value of the chunk has the same scalar kind — mixed or
// structured columns fall back to generic storage so no value is ever
// re-encoded lossily.

// batchSize is the maximum rows per column batch. Small enough that a
// chunk's columns stay cache-resident and pooled allocations stay bounded,
// large enough to amortise per-batch setup; partitions smaller than one
// batch (the common case at DefaultPartitions) form a single chunk.
const batchSize = 256

// validity is a little-endian bitmap with one bit per row; a set bit means
// the row's value is non-null. A nil validity means every row is valid.
type validity []uint64

func newValidity(n int) validity { return make(validity, (n+63)/64) }

func (b validity) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b validity) get(i int) bool { return b[i>>6]>>(uint(i)&63)&1 == 1 }

// count returns the number of set bits.
func (b validity) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// colVec is one decoded column of a batch: the values of one expression (or
// access path) across every row of the chunk.
//
// Representation, by kind:
//   - KindInt/KindDouble/KindString/KindBool: the matching typed slice holds
//     the non-null values (null slots are zero), valid marks the non-null
//     rows (nil = no nulls);
//   - KindInvalid: generic storage — vals holds the exact per-row values.
//
// bcast marks a broadcast column (a literal): physical slot 0 applies to
// every logical row.
type colVec struct {
	n     int
	kind  nested.Kind
	bcast bool
	valid validity
	ints  []int64
	dbls  []float64
	strs  []string
	bools []bool
	vals  []nested.Value
}

// phys maps a logical row index to the physical slot.
func (c *colVec) phys(i int) int {
	if c.bcast {
		return 0
	}
	return i
}

// isNull reports whether row i holds a null (absent or explicit).
func (c *colVec) isNull(i int) bool {
	i = c.phys(i)
	if c.kind == nested.KindInvalid {
		return c.vals[i].IsNull()
	}
	return c.valid != nil && !c.valid.get(i)
}

// at materialises row i as the exact value the row engine would see.
func (c *colVec) at(i int) nested.Value {
	i = c.phys(i)
	if c.kind == nested.KindInvalid {
		return c.vals[i]
	}
	if c.valid != nil && !c.valid.get(i) {
		return nested.Null()
	}
	switch c.kind {
	case nested.KindInt:
		return nested.Int(c.ints[i])
	case nested.KindDouble:
		return nested.Double(c.dbls[i])
	case nested.KindString:
		return nested.StringVal(c.strs[i])
	case nested.KindBool:
		return nested.Bool(c.bools[i])
	}
	return nested.Null()
}

// constCol builds a broadcast column for a literal value.
func constCol(v nested.Value, n int) *colVec {
	c := &colVec{n: n, bcast: true}
	switch v.Kind() {
	case nested.KindInt:
		i, _ := v.AsInt()
		c.kind, c.ints = nested.KindInt, []int64{i}
	case nested.KindDouble:
		f, _ := v.AsDouble()
		c.kind, c.dbls = nested.KindDouble, []float64{f}
	case nested.KindString:
		s, _ := v.AsString()
		c.kind, c.strs = nested.KindString, []string{s}
	case nested.KindBool:
		b, _ := v.AsBool()
		c.kind, c.bools = nested.KindBool, []bool{b}
	default:
		c.kind, c.vals = nested.KindInvalid, []nested.Value{v}
	}
	return c
}

// boolCol wraps an all-valid boolean result column (the output of vectorized
// predicates and comparisons).
func boolCol(truth []bool) *colVec {
	return &colVec{n: len(truth), kind: nested.KindBool, bools: truth}
}

// batch wraps one chunk of a partition morsel with a lazily populated column
// cache. The rows slice is borrowed (read-only); cols is keyed by the
// rendered access path so every expression node sharing a path decodes it
// once per chunk.
type batch struct {
	rows []Row
	cols map[string]*colVec
}

func (b *batch) n() int { return len(b.rows) }

// column returns the decoded column for an access path, decoding on first
// use and caching for the rest of the chunk.
func (b *batch) column(p path.Path) *colVec {
	key := p.String()
	if c, ok := b.cols[key]; ok {
		return c
	}
	c := decodeColumn(p, b.rows)
	b.cols[key] = c
	return c
}

// decodeColumn evaluates an access path over every row of the chunk. The
// column comes out typed when all non-null values share one scalar kind;
// otherwise generic. Absent paths decode as null, exactly like colExpr.Eval.
func decodeColumn(p path.Path, rows []Row) *colVec {
	n := len(rows)
	c := getCol(n)
	valid := newValidity(n)
	nulls := 0
	for i, r := range rows {
		v, ok := p.Eval(r.Value)
		if !ok {
			v = nested.Null()
		}
		k := v.Kind()
		if k == nested.KindNull {
			nulls++
			if c.kind != nested.KindInvalid {
				c.appendZero()
			} else {
				c.appendVal(nested.Null())
			}
			continue
		}
		if c.kind == nested.KindInvalid && i == nulls && k.IsConstant() {
			// Column start (only nulls so far): adopt the scalar kind and
			// promote the null prefix to typed zero slots.
			c.adoptKind(k, i)
		}
		if c.kind != nested.KindInvalid {
			if k == c.kind {
				valid.set(i)
				c.appendTyped(v)
				continue
			}
			// Mixed kinds: demote everything decoded so far to generic.
			c.demote(valid, i)
		}
		c.appendVal(v)
	}
	if c.kind != nested.KindInvalid {
		if nulls > 0 {
			c.valid = valid
		}
		c.vals = c.vals[:0]
	}
	return c
}

// adoptKind switches a so-far-all-null column to typed storage of kind k,
// backfilling i zero slots for the null prefix. The typed slice is sized for
// the whole chunk up front so the decode loop never regrows it.
func (c *colVec) adoptKind(k nested.Kind, i int) {
	c.kind = k
	c.vals = c.vals[:0]
	switch k {
	case nested.KindInt:
		if cap(c.ints) < c.n {
			c.ints = make([]int64, 0, c.n)
		}
	case nested.KindDouble:
		if cap(c.dbls) < c.n {
			c.dbls = make([]float64, 0, c.n)
		}
	case nested.KindString:
		if cap(c.strs) < c.n {
			c.strs = make([]string, 0, c.n)
		}
	case nested.KindBool:
		if cap(c.bools) < c.n {
			c.bools = make([]bool, 0, c.n)
		}
	}
	for j := 0; j < i; j++ {
		c.appendZero()
	}
}

func (c *colVec) appendZero() {
	switch c.kind {
	case nested.KindInt:
		c.ints = append(c.ints, 0)
	case nested.KindDouble:
		c.dbls = append(c.dbls, 0)
	case nested.KindString:
		c.strs = append(c.strs, "")
	case nested.KindBool:
		c.bools = append(c.bools, false)
	}
}

func (c *colVec) appendTyped(v nested.Value) {
	switch c.kind {
	case nested.KindInt:
		i, _ := v.AsInt()
		c.ints = append(c.ints, i)
	case nested.KindDouble:
		f, _ := v.AsDouble()
		c.dbls = append(c.dbls, f)
	case nested.KindString:
		s, _ := v.AsString()
		c.strs = append(c.strs, s)
	case nested.KindBool:
		b, _ := v.AsBool()
		c.bools = append(c.bools, b)
	}
}

// demote rewrites the first i typed slots as generic values and switches the
// column to generic storage (a later row broke the single-kind assumption).
func (c *colVec) demote(valid validity, i int) {
	vals := c.vals[:0]
	if cap(vals) < c.n {
		vals = make([]nested.Value, 0, c.n)
	}
	for j := 0; j < i; j++ {
		if !valid.get(j) {
			vals = append(vals, nested.Null())
			continue
		}
		switch c.kind {
		case nested.KindInt:
			vals = append(vals, nested.Int(c.ints[j]))
		case nested.KindDouble:
			vals = append(vals, nested.Double(c.dbls[j]))
		case nested.KindString:
			vals = append(vals, nested.StringVal(c.strs[j]))
		case nested.KindBool:
			vals = append(vals, nested.Bool(c.bools[j]))
		}
	}
	c.kind = nested.KindInvalid
	c.ints, c.dbls, c.strs, c.bools = c.ints[:0], c.dbls[:0], c.strs[:0], c.bools[:0]
	c.vals = vals
}

// batchPool recycles batch headers and their column-cache maps across
// morsels and workers. Decoded columns are recycled too (colPool): every
// consumer materialises values out of a column before putBatch — at() and the
// typed kernels return copies, never slice references — so recycling the
// backing arrays cannot alias operator output (pinned by
// TestBatchPoolsDoNotAliasResults).
var batchPool = sync.Pool{
	New: func() any { return &batch{cols: make(map[string]*colVec, 8)} },
}

// colPool recycles decoded colVec columns together with their backing
// arrays, so steady-state decoding allocates nothing beyond the validity
// bitmap. Pooled slices keep their previous contents until overwritten
// (bounded by batchSize rows and released whenever the GC clears the pool);
// getCol resets lengths, not memory.
var colPool = sync.Pool{
	New: func() any { return new(colVec) },
}

// getCol returns a column ready for decoding an n-row chunk: generic kind
// and empty slices with retained capacity. The generic value buffer is NOT
// pre-sized here — typed columns (the common case) only touch it for their
// null prefix, and a chunk-sized []nested.Value is a large zeroed
// allocation that would recur every time the GC drains the pool; appendVal
// grows it to full chunk size in one step the first time a column actually
// goes generic.
func getCol(n int) *colVec {
	c := colPool.Get().(*colVec)
	c.n, c.kind, c.bcast, c.valid = n, nested.KindInvalid, false, nil
	c.ints, c.dbls, c.strs, c.bools = c.ints[:0], c.dbls[:0], c.strs[:0], c.bools[:0]
	c.vals = c.vals[:0]
	return c
}

// appendVal appends to the generic value buffer, growing it to the full
// chunk size in a single allocation on first need.
func (c *colVec) appendVal(v nested.Value) {
	if len(c.vals) == cap(c.vals) && cap(c.vals) < c.n {
		grown := make([]nested.Value, len(c.vals), c.n)
		copy(grown, c.vals)
		c.vals = grown
	}
	c.vals = append(c.vals, v)
}

// getBatch wraps a row chunk in a pooled batch.
func getBatch(rows []Row) *batch {
	b := batchPool.Get().(*batch)
	b.rows = rows
	return b
}

// putBatch returns a batch to the pool, recycling its decoded columns and
// dropping the row reference so the next morsel starts clean. Only columns
// that went through the cache are recycled: evalVec result columns (boolCol,
// cmpVec, constCol, …) are plain allocations and stay off the pool, so a
// column can never be put back twice.
func putBatch(b *batch) {
	b.rows = nil
	for k, c := range b.cols {
		delete(b.cols, k)
		colPool.Put(c)
	}
	batchPool.Put(b)
}

// idScratchPool recycles the id-gather buffers finalize uses for bulk
// id-range capture emission. Sinks copy out of the slices (see
// PartitionSink), so returning a buffer to the pool cannot alias captured
// provenance.
var idScratchPool = sync.Pool{
	New: func() any {
		s := make([]int64, 0, batchSize)
		return &s
	},
}

func getIDScratch(n int) []int64 {
	p := idScratchPool.Get().(*[]int64)
	s := *p
	if cap(s) < n {
		s = make([]int64, n)
	}
	return s[:n]
}

func putIDScratch(s []int64) {
	s = s[:0]
	idScratchPool.Put(&s)
}

// posScratchPool recycles the flatten-position buffers of bulk emission.
var posScratchPool = sync.Pool{
	New: func() any {
		s := make([]int, 0, batchSize)
		return &s
	},
}

func getPosScratch(n int) []int {
	p := posScratchPool.Get().(*[]int)
	s := *p
	if cap(s) < n {
		s = make([]int, n)
	}
	return s[:n]
}

func putPosScratch(s []int) {
	s = s[:0]
	posScratchPool.Put(&s)
}
