package engine

import (
	"sort"
	"sync"

	"pebble/internal/nested"
	"pebble/internal/obs"
)

// Vectorized hash-join build/probe (DESIGN.md §13). The build side fills a
// keyTable — flat open addressing on (cached shuffle hash, normalized key
// bytes) — and probing runs in two passes per morsel: pass 1 resolves each
// probe row's group once and sizes the output exactly (match count and total
// stitched fields, from the per-group row and field sums maintained at build
// time); pass 2 emits matches in probe-major, chain-insertion order,
// stitching left/right fields into one flat field arena instead of a
// per-match concatItems allocation. The arena is allocated exactly once per
// morsel and retained by the output items (nested.Item keeps the slice), so
// it is never pooled; each match takes a capacity-limited subslice.
//
// Fallback contract: the kernel only handles the clean shape — item rows,
// disjoint attribute names. Anything else (a non-item row that has a match, a
// duplicate attribute, a probe-key morsel evalKeysVec cannot produce) returns
// ok=false and the bucket re-runs through the scalar body, reproducing the
// row engine's exact first error or output (same contract as errFallback).

// joinScratch is the pooled per-morsel probe state: the per-row group index
// cache, the probe-key encoding buffer, and the build-side matched flags of
// left outer joins.
type joinScratch struct {
	groupOf []int32
	keyBuf  []byte
	matched []bool
}

var joinScratchPool = sync.Pool{
	New: func() any { return new(joinScratch) },
}

func getJoinScratch(n int) *joinScratch {
	s := joinScratchPool.Get().(*joinScratch)
	if cap(s.groupOf) < n {
		s.groupOf = make([]int32, n)
	} else {
		s.groupOf = s.groupOf[:n]
	}
	return s
}

// matchedFor returns the matched-flag array sized and cleared for n build
// rows.
func (s *joinScratch) matchedFor(n int) []bool {
	if cap(s.matched) < n {
		s.matched = make([]bool, n)
	} else {
		s.matched = s.matched[:n]
		clear(s.matched)
	}
	return s.matched
}

func putJoinScratch(s *joinScratch) { joinScratchPool.Put(s) }

// joinBucketMorsel joins one shuffle bucket: the vectorized kernel first,
// the scalar reference body on fallback (or under Options.ScalarFallback).
func (e *executor) joinBucketMorsel(o *Op, lrows, rrows []keyedRow, rightSchema []string) ([]pending, error) {
	if e.vectorized() {
		if out, ok := joinBucketVec(lrows, rrows, o.leftOuter, rightSchema); ok {
			return out, nil
		}
	}
	return joinBucketScalar(o, lrows, rrows, rightSchema)
}

// joinBucketScalar is the row-at-a-time reference body: build a hash-chain map
// on the left, probe with the right in sequence order, concatenate per match.
func joinBucketScalar(o *Op, lrows, rrows []keyedRow, rightSchema []string) ([]pending, error) {
	// Build on the left, probe with the right; outputs ordered by
	// (right seq, left seq) for determinism. Hashes were cached by the
	// shuffle, so neither side rehashes its keys here.
	build := make(map[uint64][]keyedRow, len(lrows))
	for _, kr := range lrows {
		build[kr.hash] = append(build[kr.hash], kr)
	}
	matched := make(map[int64]bool)
	// Floor capacity: most joins emit about one row per probe row, and
	// unmatched left rows reuse whatever headroom is left.
	out := make([]pending, 0, len(rrows))
	probe := make([]keyedRow, len(rrows))
	copy(probe, rrows)
	sort.Slice(probe, func(i, j int) bool { return probe[i].seq < probe[j].seq })
	for _, rkr := range probe {
		for _, lkr := range build[rkr.hash] {
			if compareWidened(lkr.key, rkr.key) != 0 {
				continue
			}
			item, err := concatItems(lkr.row.Value, rkr.row.Value)
			if err != nil {
				return nil, err
			}
			matched[lkr.row.ID] = true
			out = append(out, pending{value: item, in1: lkr.row.ID, in2: rkr.row.ID})
		}
	}
	if o.leftOuter {
		// Unmatched left rows survive with null right attributes; rows
		// whose key is null never reached this bucket, so they are
		// handled by execJoin per left partition — here only keyed rows.
		unmatched := make([]keyedRow, 0, len(lrows))
		for _, kr := range lrows {
			if !matched[kr.row.ID] {
				unmatched = append(unmatched, kr)
			}
		}
		sort.Slice(unmatched, func(i, j int) bool { return unmatched[i].seq < unmatched[j].seq })
		for _, kr := range unmatched {
			item, err := concatWithNulls(kr.row.Value, rightSchema)
			if err != nil {
				return nil, err
			}
			out = append(out, pending{value: item, in1: kr.row.ID, in2: -1})
		}
	}
	return out, nil
}

// joinBucketVec is the vectorized bucket body. Bucket contents arrive in
// sequence order (the shuffle merge is partition-major), so neither side
// needs the row path's defensive sort, and chain order equals left sequence
// order by construction.
func joinBucketVec(lrows, rrows []keyedRow, leftOuter bool, rightSchema []string) ([]pending, bool) {
	t := getKeyTable(len(lrows))
	defer putKeyTable(t)
	for i, kr := range lrows {
		t.insert(kr.hash, kr.key, int32(i), int32(kr.row.Value.NumFields()), false)
	}
	s := getJoinScratch(len(rrows))
	defer putJoinScratch(s)
	var matched []bool
	if leftOuter {
		matched = s.matchedFor(len(lrows))
	}
	matches, totalFields := 0, 0
	for i, kr := range rrows {
		s.keyBuf = kr.key.AppendNorm(s.keyBuf[:0])
		g := t.lookup(kr.hash, s.keyBuf)
		s.groupOf[i] = g
		if g < 0 {
			continue
		}
		if kr.row.Value.Kind() != nested.KindItem {
			return nil, false
		}
		matches += int(t.count[g])
		totalFields += int(t.fields[g]) + int(t.count[g])*kr.row.Value.NumFields()
	}
	out := make([]pending, 0, matches)
	arena := make([]nested.Field, totalFields) // retained by the output items
	ai := 0
	for i, rkr := range rrows {
		g := s.groupOf[i]
		if g < 0 {
			continue
		}
		rf := rkr.row.Value.Fields()
		for bi := t.head[g]; bi >= 0; bi = t.next[bi] {
			lkr := lrows[bi]
			if lkr.row.Value.Kind() != nested.KindItem {
				return nil, false
			}
			lf := lkr.row.Value.Fields()
			n := len(lf) + len(rf)
			dst := arena[ai : ai : ai+n]
			dst = append(dst, lf...)
			for _, f := range rf {
				for _, lfd := range lf {
					if lfd.Name == f.Name {
						return nil, false // duplicate attribute: scalar body reports it
					}
				}
				dst = append(dst, f)
			}
			ai += n
			if matched != nil {
				matched[bi] = true
			}
			out = append(out, pending{value: nested.Item(dst...), in1: lkr.row.ID, in2: rkr.row.ID})
		}
	}
	if leftOuter {
		for bi, kr := range lrows {
			if matched[bi] {
				continue
			}
			item, err := concatWithNulls(kr.row.Value, rightSchema)
			if err != nil {
				return nil, false
			}
			out = append(out, pending{value: item, in1: kr.row.ID, in2: -1})
		}
	}
	return out, true
}

// ---- broadcast join ----

// execBroadcastJoinVec is the vectorized broadcast hash join: one shared
// keyTable built sequentially over the small side, probed concurrently (the
// table is read-only after the build) by every probe partition. A partition
// whose shape the kernel cannot stitch falls back to the row-at-a-time probe
// against a lazily built hash-chain map — constructed at most once, from the
// already keyed-and-hashed build rows, so the fallback recomputes no hashes
// on the build side.
func (e *executor) execBroadcastJoinVec(o *Op, buildDS, probeDS *Dataset, buildKey, probeKey Expr, buildLeft bool) (*Dataset, error) {
	buildRows := make([]keyedRow, 0, buildDS.Len())
	t := getKeyTable(buildDS.Len())
	defer putKeyTable(t)
	buildHashed := 0
	for _, p := range buildDS.Partitions {
		keys, vecOK := evalKeysVec(exprShuffleKey(buildKey), p)
		for ri, r := range p {
			var k nested.Value
			if vecOK {
				k = keys[ri]
			} else {
				var err error
				k, err = buildKey.Eval(r.Value)
				if err != nil {
					return nil, err
				}
			}
			if k.IsNull() {
				continue
			}
			h := valueHash(k)
			buildHashed++
			t.insert(h, k, int32(len(buildRows)), int32(r.Value.NumFields()), false)
			buildRows = append(buildRows, keyedRow{row: r, key: k, hash: h})
		}
	}
	if rec := e.opts.Recorder; rec != nil {
		n := int64(buildDS.Len())
		rec.Add(o.id, 0, obs.RowsIn, n)
		rec.Add(o.id, 0, obs.KeysHashed, int64(buildHashed))
		rec.Add(o.id, 0, obs.ExprEvals, n*int64(EvalOps(buildKey)))
	}
	// Lazy row-path build map for fallback partitions; hashes and keys come
	// from the cached build rows, so no key is re-evaluated or rehashed.
	var rowBuildOnce sync.Once
	var rowBuild map[uint64][]keyedRow
	getRowBuild := func() map[uint64][]keyedRow {
		rowBuildOnce.Do(func() {
			rowBuild = make(map[uint64][]keyedRow, len(buildRows))
			for _, kr := range buildRows {
				rowBuild[kr.hash] = append(rowBuild[kr.hash], kr)
			}
		})
		return rowBuild
	}
	probeKeyOps := EvalOps(probeKey)
	parts := make([][]pending, len(probeDS.Partitions))
	err := e.forEachPartition(len(probeDS.Partitions), func(part int) error {
		rows := probeDS.Partitions[part]
		keys, _ := e.probeKeysMorsel(probeKey, rows)
		var out []pending
		var probeHashed int
		ok := false
		if keys != nil {
			out, probeHashed, ok = broadcastProbeVec(t, buildRows, rows, keys, buildLeft)
		}
		if !ok {
			var err error
			out, probeHashed, err = broadcastProbePart(probeKey, getRowBuild(), rows, keys, buildLeft)
			if err != nil {
				return err
			}
		}
		parts[part] = out
		if rec := e.opts.Recorder; rec != nil {
			n := int64(len(rows))
			rec.Add(o.id, part, obs.RowsIn, n)
			rec.Add(o.id, part, obs.KeysHashed, int64(probeHashed))
			rec.Add(o.id, part, obs.ExprEvals, n*int64(probeKeyOps))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return e.finalize(o.id, parts, assocBinary)
}

// broadcastProbeVec probes the shared build table with one probe partition.
// Same two-pass shape as joinBucketVec, with the left/right orientation of
// output rows decided by which side was built. valueHash is called exactly
// once per non-null probe key, like the row path.
func broadcastProbeVec(t *keyTable, buildRows []keyedRow, rows []Row, keys []nested.Value, buildLeft bool) ([]pending, int, bool) {
	s := getJoinScratch(len(rows))
	defer putJoinScratch(s)
	hashed := 0
	matches, totalFields := 0, 0
	for i := range rows {
		k := keys[i]
		if k.IsNull() {
			s.groupOf[i] = -1
			continue
		}
		hashed++
		s.keyBuf = k.AppendNorm(s.keyBuf[:0])
		g := t.lookup(valueHash(k), s.keyBuf)
		s.groupOf[i] = g
		if g < 0 {
			continue
		}
		if rows[i].Value.Kind() != nested.KindItem {
			return nil, 0, false
		}
		matches += int(t.count[g])
		totalFields += int(t.fields[g]) + int(t.count[g])*rows[i].Value.NumFields()
	}
	out := make([]pending, 0, matches)
	arena := make([]nested.Field, totalFields) // retained by the output items
	ai := 0
	for i := range rows {
		g := s.groupOf[i]
		if g < 0 {
			continue
		}
		pv := rows[i].Value
		for bi := t.head[g]; bi >= 0; bi = t.next[bi] {
			bkr := buildRows[bi]
			if bkr.row.Value.Kind() != nested.KindItem {
				return nil, 0, false
			}
			lv, rv := bkr.row.Value, pv
			lid, rid := bkr.row.ID, rows[i].ID
			if !buildLeft {
				lv, rv = pv, bkr.row.Value
				lid, rid = rows[i].ID, bkr.row.ID
			}
			lf, rf := lv.Fields(), rv.Fields()
			n := len(lf) + len(rf)
			dst := arena[ai : ai : ai+n]
			dst = append(dst, lf...)
			for _, f := range rf {
				for _, lfd := range lf {
					if lfd.Name == f.Name {
						return nil, 0, false // duplicate attribute: scalar body reports it
					}
				}
				dst = append(dst, f)
			}
			ai += n
			out = append(out, pending{value: nested.Item(dst...), in1: lid, in2: rid})
		}
	}
	return out, hashed, true
}

// broadcastProbePart is the row-at-a-time probe body over one partition —
// the reference semantics, and the per-partition fallback of the vectorized
// probe. keys carries pre-evaluated probe keys (nil entries cannot occur;
// a nil slice means evaluate per row).
func broadcastProbePart(probeKey Expr, build map[uint64][]keyedRow, rows []Row, keys []nested.Value, buildLeft bool) ([]pending, int, error) {
	// Floor capacity: most joins emit about one row per probe row.
	out := make([]pending, 0, len(rows))
	probeHashed := 0
	for ri, r := range rows {
		var k nested.Value
		if keys != nil {
			k = keys[ri]
		} else {
			var err error
			k, err = probeKey.Eval(r.Value)
			if err != nil {
				return nil, 0, err
			}
		}
		if k.IsNull() {
			continue
		}
		probeHashed++
		for _, bkr := range build[valueHash(k)] {
			if compareWidened(bkr.key, k) != 0 {
				continue
			}
			lRow, rRow := bkr.row, r
			if !buildLeft {
				lRow, rRow = r, bkr.row
			}
			item, err := concatItems(lRow.Value, rRow.Value)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, pending{value: item, in1: lRow.ID, in2: rRow.ID})
		}
	}
	return out, probeHashed, nil
}
