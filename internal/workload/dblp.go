package workload

import (
	"fmt"
	"math/rand"

	"pebble/internal/engine"
	"pebble/internal/nested"
)

// Sentinels the DBLP generator plants deterministically.
const (
	// HotProceedingKey is a proceedings record that many inproceedings
	// crossref (scenario D1/D4/D5 queries).
	HotProceedingKey = "conf/pebble/2015"
	// HotAuthorID is an author that publishes under several alias spellings
	// (scenario D3 queries).
	HotAuthorID = "a00000"
)

// dblpRecordTypes and their approximate mix. The real dblp.xml has ten
// record types; the evaluation scenarios touch articles, inproceedings and
// proceedings, so those dominate the mix like they do in the original.
var dblpTypeMix = []struct {
	rtype  string
	weight int
}{
	{"inproceedings", 45},
	{"article", 30},
	{"proceedings", 10},
	{"www", 6},
	{"incollection", 4},
	{"phdthesis", 2},
	{"mastersthesis", 1},
	{"book", 2},
}

var dblpTitleWords = []string{
	"Provenance", "Nested", "Structural", "Scalable", "Tracing", "Query",
	"Processing", "Distributed", "Data", "Systems", "Efficient", "Adaptive",
	"Streams", "Graphs", "Learning", "Indexes",
}

var dblpVenues = []string{"EDBT", "VLDB", "SIGMOD", "ICDE", "CIKM", "BTW"}

var dblpAuthorAliases = [][]string{
	{"Ralf Diest", "R. Diest"},
	{"Melanie Hersch", "M. Hersch"},
	{"Lauren Smith", "L. Smith"},
	{"John Miller", "J. Miller", "Jon Miller"},
	{"Ada Chen", "A. Chen"},
	{"Omar Khan", "O. Khan"},
	{"Ines Rossi", "I. Rossi"},
	{"Sven Larsen", "S. Larsen"},
}

// dblpAuthor is one author of the deterministic pool: a stable id plus alias
// spellings (real DBLP disambiguates authors whose names are spelled
// differently across records — scenario D3 collects those aliases).
type dblpAuthor struct {
	id      string
	aliases []string
}

func dblpAuthorPool(r *rand.Rand, n int) []dblpAuthor {
	pool := make([]dblpAuthor, 0, n)
	for i := 0; i < n; i++ {
		base := dblpAuthorAliases[i%len(dblpAuthorAliases)]
		aliases := make([]string, len(base))
		for j, a := range base {
			aliases[j] = fmt.Sprintf("%s %03d", a, i/len(dblpAuthorAliases))
		}
		pool = append(pool, dblpAuthor{id: fmt.Sprintf("a%05d", i), aliases: aliases})
	}
	// Author 0 keeps the sentinel id.
	pool[0].id = HotAuthorID
	return pool
}

// GenerateDBLP builds the DBLP dataset at the given scale: one record per
// top-level item with a record_type attribute, narrow schemas (<50
// attributes, Sec. 7.3.2) and preserved characteristics such as the average
// number of inproceedings per proceedings record. Deterministic in the seed.
func GenerateDBLP(s Scale) []nested.Value {
	s = s.withDefaults()
	r := rand.New(rand.NewSource(s.Seed + 1))
	n := s.Records()
	authors := dblpAuthorPool(r, max(8, n/30))

	// Proceedings keys are generated first so inproceedings can crossref
	// them; roughly 10% of records are proceedings.
	nProcs := max(1, n/10)
	procKeys := make([]string, nProcs)
	procKeys[0] = HotProceedingKey
	for i := 1; i < nProcs; i++ {
		procKeys[i] = fmt.Sprintf("conf/%s/%d-%d",
			dblpVenues[r.Intn(len(dblpVenues))], 2010+r.Intn(10), i)
	}

	var totalWeight int
	for _, m := range dblpTypeMix {
		totalWeight += m.weight
	}
	out := make([]nested.Value, 0, n)
	procIdx := 0
	for i := 0; i < n; i++ {
		w := r.Intn(totalWeight)
		rtype := dblpTypeMix[len(dblpTypeMix)-1].rtype
		for _, m := range dblpTypeMix {
			if w < m.weight {
				rtype = m.rtype
				break
			}
			w -= m.weight
		}
		// Emit each proceedings record exactly once.
		if rtype == "proceedings" && procIdx >= nProcs {
			rtype = "inproceedings"
		}
		switch rtype {
		case "proceedings":
			out = append(out, genProceedings(r, procKeys[procIdx]))
			procIdx++
		case "inproceedings":
			out = append(out, genInproceedings(r, i, authors, procKeys))
		case "article":
			out = append(out, genArticle(r, i, authors))
		default:
			out = append(out, genMiscRecord(r, i, rtype, authors))
		}
	}
	// Emit any proceedings the mix did not reach, preserving the average
	// inproceedings-per-proceedings characteristic.
	for ; procIdx < nProcs; procIdx++ {
		out = append(out, genProceedings(r, procKeys[procIdx]))
	}
	return out
}

func dblpTitle(r *rand.Rand) string {
	n := 3 + r.Intn(4)
	title := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			title += " "
		}
		title += dblpTitleWords[r.Intn(len(dblpTitleWords))]
	}
	return title
}

func authorBag(r *rand.Rand, authors []dblpAuthor, n int, forceHot bool) nested.Value {
	items := make([]nested.Value, 0, n)
	seen := map[string]bool{}
	if forceHot {
		a := authors[0]
		items = append(items, nested.Item(
			nested.F("id", nested.StringVal(a.id)),
			nested.F("name", nested.StringVal(a.aliases[r.Intn(len(a.aliases))])),
		))
		seen[a.id] = true
	}
	for len(items) < n {
		a := authors[r.Intn(len(authors))]
		if seen[a.id] {
			continue
		}
		seen[a.id] = true
		items = append(items, nested.Item(
			nested.F("id", nested.StringVal(a.id)),
			nested.F("name", nested.StringVal(a.aliases[r.Intn(len(a.aliases))])),
		))
	}
	return nested.Bag(items...)
}

func genInproceedings(r *rand.Rand, seq int, authors []dblpAuthor, procKeys []string) nested.Value {
	crossref := procKeys[r.Intn(len(procKeys))]
	// Every 9th inproceedings belongs to the hot proceedings and year 2015.
	year := int64(2010 + r.Intn(10))
	if seq%9 == 0 {
		crossref = HotProceedingKey
		year = 2015
	}
	return nested.Item(
		nested.F("key", nested.StringVal(fmt.Sprintf("conf/p%d", seq))),
		nested.F("record_type", nested.StringVal("inproceedings")),
		nested.F("title", nested.StringVal(dblpTitle(r))),
		nested.F("authors", authorBag(r, authors, 1+r.Intn(4), seq%12 == 0)),
		nested.F("year", nested.Int(year)),
		nested.F("crossref", nested.StringVal(crossref)),
		nested.F("pages", nested.StringVal(fmt.Sprintf("%d-%d", r.Intn(400), r.Intn(400)+400))),
		nested.F("ee", nested.StringVal(fmt.Sprintf("https://doi.example/%d", seq))),
	)
}

func genProceedings(r *rand.Rand, key string) nested.Value {
	year := int64(2010 + r.Intn(10))
	if key == HotProceedingKey {
		year = 2015
	}
	return nested.Item(
		nested.F("key", nested.StringVal(key)),
		nested.F("record_type", nested.StringVal("proceedings")),
		nested.F("title", nested.StringVal("Proceedings of "+dblpTitle(r))),
		nested.F("booktitle", nested.StringVal(dblpVenues[r.Intn(len(dblpVenues))])),
		nested.F("year", nested.Int(year)),
		nested.F("publisher", nested.StringVal("OpenProceedings")),
	)
}

func genArticle(r *rand.Rand, seq int, authors []dblpAuthor) nested.Value {
	year := int64(2005 + r.Intn(15))
	if seq%11 == 0 {
		year = 2015
	}
	return nested.Item(
		nested.F("key", nested.StringVal(fmt.Sprintf("journals/a%d", seq))),
		nested.F("record_type", nested.StringVal("article")),
		nested.F("title", nested.StringVal(dblpTitle(r))),
		nested.F("authors", authorBag(r, authors, 1+r.Intn(3), seq%12 == 0)),
		nested.F("year", nested.Int(year)),
		nested.F("journal", nested.StringVal("J. "+dblpTitleWords[r.Intn(len(dblpTitleWords))])),
		nested.F("volume", nested.Int(int64(1+r.Intn(40)))),
	)
}

func genMiscRecord(r *rand.Rand, seq int, rtype string, authors []dblpAuthor) nested.Value {
	return nested.Item(
		nested.F("key", nested.StringVal(fmt.Sprintf("%s/m%d", rtype, seq))),
		nested.F("record_type", nested.StringVal(rtype)),
		nested.F("title", nested.StringVal(dblpTitle(r))),
		nested.F("authors", authorBag(r, authors, 1, false)),
		nested.F("year", nested.Int(int64(2000+r.Intn(20)))),
	)
}

// DBLPInput wraps the generated records as the named input the DBLP
// scenarios read ("dblp.json"), partitioned for the engine.
func DBLPInput(s Scale, partitions int) map[string]*engine.Dataset {
	gen := engine.NewIDGen(1)
	return map[string]*engine.Dataset{
		"dblp.json": engine.NewDataset("dblp.json", GenerateDBLP(s), partitions, gen),
	}
}
