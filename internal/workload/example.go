// Package workload provides the datasets and processing pipelines of the
// paper's evaluation (Sec. 7.2): the running example of Sec. 2, deterministic
// synthetic generators for the nested Twitter and DBLP datasets, and the ten
// test scenarios T1–T5 and D1–D5 of Tab. 7, each paired with the structural
// provenance query its description implies.
package workload

import (
	"pebble/internal/engine"
	"pebble/internal/nested"
)

// Tweet builds one Tab. 1 style tweet item. Mentions are (id_str, name)
// pairs.
func Tweet(text, userID, userName string, retweetCnt int64, mentions ...[2]string) nested.Value {
	ms := make([]nested.Value, len(mentions))
	for i, m := range mentions {
		ms[i] = nested.Item(
			nested.F("id_str", nested.StringVal(m[0])),
			nested.F("name", nested.StringVal(m[1])),
		)
	}
	return nested.Item(
		nested.F("text", nested.StringVal(text)),
		nested.F("user", nested.Item(
			nested.F("id_str", nested.StringVal(userID)),
			nested.F("name", nested.StringVal(userName)),
		)),
		nested.F("user_mentions", nested.Bag(ms...)),
		nested.F("retweet_cnt", nested.Int(retweetCnt)),
	)
}

// ExampleTweets returns the five input tweets of Tab. 1, in order. Their
// row indices 0..4 correspond to the paper's annotations p1, p12, p17, p22,
// p29.
func ExampleTweets() []nested.Value {
	return []nested.Value{
		Tweet("Hello @ls @jm @ls", "lp", "Lisa Paul", 0,
			[2]string{"ls", "Lauren Smith"},
			[2]string{"jm", "John Miller"},
			[2]string{"ls", "Lauren Smith"}),
		Tweet("Hello World", "lp", "Lisa Paul", 0),
		Tweet("Hello World", "lp", "Lisa Paul", 0),
		Tweet("This is me @jm", "jm", "John Miller", 0,
			[2]string{"jm", "John Miller"}),
		Tweet("Hello @lp", "jm", "John Miller", 1,
			[2]string{"lp", "Lisa Paul"}),
	}
}

// ExamplePipeline builds the processing pipeline of Fig. 1 over the input
// dataset named "tweets.json". Operator identifiers match the figure:
//
//	1 read   2 filter   3 select       (upper branch: authoring users)
//	4 read   5 flatten  6 select       (lower branch: mentioned users)
//	7 union  8 select   9 aggregate
func ExamplePipeline() *engine.Pipeline {
	p := engine.NewPipeline()
	read1 := p.Source("tweets.json")                                                // 1
	filt := p.Filter(read1, engine.Eq(engine.Col("retweet_cnt"), engine.LitInt(0))) // 2
	sel1 := p.Select(filt,                                                          // 3
		engine.Column("text", "text"),
		engine.Column("id_str", "user.id_str"),
		engine.Column("name", "user.name"),
	)
	read2 := p.Source("tweets.json")                    // 4
	flat := p.Flatten(read2, "user_mentions", "m_user") // 5
	sel2 := p.Select(flat,                              // 6
		engine.Column("text", "text"),
		engine.Column("id_str", "m_user.id_str"),
		engine.Column("name", "m_user.name"),
	)
	uni := p.Union(sel1, sel2) // 7
	sel3 := p.Select(uni,      // 8
		// text → tweet as a one-attribute item so the nested result keeps the
		// text attribute (Tab. 2 shows items ⟨text⟩; Fig. 2's tree addresses
		// tweets.2.text).
		engine.StructField("tweet", engine.Column("text", "text")),
		engine.StructField("user",
			engine.Column("id_str", "id_str"),
			engine.Column("name", "name"),
		),
	)
	p.Aggregate(sel3, // 9
		[]engine.GroupKey{engine.Key("user")},
		[]engine.AggSpec{engine.Agg(engine.AggCollectList, "tweet", "tweets")},
	)
	return p
}

// ExampleInput wraps the Tab. 1 tweets as the input map ExamplePipeline
// expects.
func ExampleInput(parts int) map[string]*engine.Dataset {
	gen := engine.NewIDGen(1)
	return map[string]*engine.Dataset{
		"tweets.json": engine.NewDataset("tweets.json", ExampleTweets(), parts, gen),
	}
}
