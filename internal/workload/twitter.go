package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"pebble/internal/engine"
	"pebble/internal/nested"
)

// Sentinel values the Twitter generator plants deterministically so that the
// scenario provenance queries always have matching result items.
const (
	// HotUserID is a user that authors and is mentioned in many tweets.
	HotUserID   = "hotuser"
	HotUserName = "Holly Otter"
	// BTSHashtag appears in a stable fraction of tweets (scenario T5).
	BTSHashtag = "BTS"
	// GoodWord appears in a stable fraction of tweet texts (scenario T1).
	GoodWord = "good"
)

var (
	twitterWords = []string{
		"hello", "world", "today", "just", "really", GoodWord, "morning",
		"coffee", "music", "show", "love", "game", "news", "photo", "live",
		"stream", "album", "tour", "win", "vote",
	}
	twitterFirstNames = []string{
		"Lisa", "Lauren", "John", "Holly", "Maria", "Ken", "Ada", "Noor",
		"Sven", "Yuki", "Omar", "Ines", "Paul", "Tara", "Leo", "Mina",
	}
	twitterLastNames = []string{
		"Paul", "Smith", "Miller", "Otter", "Garcia", "Tanaka", "Khan",
		"Larsen", "Weber", "Rossi", "Novak", "Silva", "Chen", "Dubois",
	}
	twitterHashtags = []string{
		BTSHashtag, "news", "music", "love", "win", "goals", "art", "food",
		"travel", "tech",
	}
	twitterLangs = []string{"en", "de", "ja", "es", "fr"}
)

// twitterUser is one entry of the deterministic user pool.
type twitterUser struct {
	id   string
	name string
}

func twitterUserPool(r *rand.Rand, n int) []twitterUser {
	pool := make([]twitterUser, 0, n+1)
	pool = append(pool, twitterUser{id: HotUserID, name: HotUserName})
	for i := 1; i <= n; i++ {
		name := twitterFirstNames[r.Intn(len(twitterFirstNames))] + " " +
			twitterLastNames[r.Intn(len(twitterLastNames))]
		pool = append(pool, twitterUser{id: fmt.Sprintf("u%05d", i), name: name})
	}
	return pool
}

func userItem(u twitterUser) nested.Value {
	return nested.Item(
		nested.F("id_str", nested.StringVal(u.id)),
		nested.F("name", nested.StringVal(u.name)),
	)
}

// GenerateTwitter builds the nested Twitter dataset at the given scale. Every
// tweet has the schema of the running example (text, user, user_mentions,
// retweet_cnt) plus hashtags, media, and a wide block of further attributes
// standing in for the ~1000 attributes of real tweets (Sec. 7.2). Generation
// is fully deterministic in the scale's seed.
func GenerateTwitter(s Scale) []nested.Value {
	s = s.withDefaults()
	r := rand.New(rand.NewSource(s.Seed))
	n := s.Tweets()
	users := twitterUserPool(r, max(16, n/20))
	out := make([]nested.Value, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, genTweet(r, i, users))
	}
	return out
}

func genTweet(r *rand.Rand, seq int, users []twitterUser) nested.Value {
	author := users[r.Intn(len(users))]
	// Every 10th tweet is authored by the hot user, making it a reliable
	// target for scenario queries.
	if seq%10 == 0 {
		author = users[0]
	}
	// Mentions: 0–4 users; every 7th tweet mentions the hot user.
	nMentions := r.Intn(5)
	mentions := make([]nested.Value, 0, nMentions+1)
	var handles []string
	if seq%7 == 0 {
		mentions = append(mentions, userItem(users[0]))
		handles = append(handles, "@"+HotUserID)
	}
	for len(mentions) < nMentions {
		u := users[r.Intn(len(users))]
		mentions = append(mentions, userItem(u))
		handles = append(handles, "@"+u.id)
	}
	// Hashtags: 0–3; every 5th tweet carries #BTS.
	nTags := r.Intn(4)
	tags := make([]nested.Value, 0, nTags+1)
	var tagWords []string
	if seq%5 == 0 {
		tags = append(tags, nested.Item(nested.F("text", nested.StringVal(BTSHashtag))))
		tagWords = append(tagWords, "#"+BTSHashtag)
	}
	for len(tags) < nTags {
		tag := twitterHashtags[r.Intn(len(twitterHashtags))]
		tags = append(tags, nested.Item(nested.F("text", nested.StringVal(tag))))
		tagWords = append(tagWords, "#"+tag)
	}
	// Media: 0–2 entries.
	nMedia := r.Intn(3)
	media := make([]nested.Value, 0, nMedia)
	for m := 0; m < nMedia; m++ {
		media = append(media, nested.Item(
			nested.F("media_url", nested.StringVal(fmt.Sprintf("https://pic.example/%d-%d.jpg", seq, m))),
			nested.F("type", nested.StringVal("photo")),
		))
	}
	// Text: 3–7 words plus handles and hashtags.
	nWords := 3 + r.Intn(5)
	words := make([]string, 0, nWords+len(handles)+len(tagWords))
	for w := 0; w < nWords; w++ {
		words = append(words, twitterWords[r.Intn(len(twitterWords))])
	}
	words = append(words, handles...)
	words = append(words, tagWords...)
	text := strings.Join(words, " ")

	return nested.Item(
		nested.F("text", nested.StringVal(text)),
		nested.F("user", userItem(author)),
		nested.F("user_mentions", nested.Bag(mentions...)),
		nested.F("retweet_cnt", nested.Int(int64(r.Intn(5)))),
		nested.F("hashtags", nested.Bag(tags...)),
		nested.F("media", nested.Bag(media...)),
		nested.F("created_at", nested.StringVal(fmt.Sprintf("2019-%02d-%02dT%02d:00:00Z",
			1+r.Intn(12), 1+r.Intn(28), r.Intn(24)))),
		nested.F("lang", nested.StringVal(twitterLangs[r.Intn(len(twitterLangs))])),
		nested.F("favorite_count", nested.Int(int64(r.Intn(100)))),
		nested.F("possibly_sensitive", nested.Bool(r.Intn(20) == 0)),
		nested.F("source", nested.StringVal("web")),
		nested.F("meta", tweetMeta(r, seq)),
	)
}

// tweetMeta is a wide nested block standing in for the long tail of tweet
// attributes (place, entities, counters, flags, ...) that real tweets carry.
func tweetMeta(r *rand.Rand, seq int) nested.Value {
	fields := []nested.Field{
		nested.F("place", nested.Item(
			nested.F("country", nested.StringVal("wonderland")),
			nested.F("city", nested.StringVal(fmt.Sprintf("city%02d", r.Intn(40)))),
			nested.F("coordinates", nested.Bag(
				nested.Double(float64(r.Intn(360))-180),
				nested.Double(float64(r.Intn(180))-90),
			)),
		)),
		nested.F("quote_count", nested.Int(int64(r.Intn(10)))),
		nested.F("reply_count", nested.Int(int64(r.Intn(10)))),
		nested.F("truncated", nested.Bool(false)),
		nested.F("seq", nested.Int(int64(seq))),
	}
	for i := 0; i < 12; i++ {
		fields = append(fields, nested.F(fmt.Sprintf("attr_%02d", i), nested.Int(int64(r.Intn(1000)))))
	}
	return nested.Item(fields...)
}

// TwitterInput wraps the generated tweets as the named input the Twitter
// scenarios read ("tweets.json"), partitioned for the engine.
func TwitterInput(s Scale, partitions int) map[string]*engine.Dataset {
	gen := engine.NewIDGen(1)
	return map[string]*engine.Dataset{
		"tweets.json": engine.NewDataset("tweets.json", GenerateTwitter(s), partitions, gen),
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
