package workload

import (
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/treepattern"
)

// ExtensionScenarios returns scenarios beyond the paper's Tab. 7 that
// exercise the extension operators (distinct, orderBy, limit, left outer
// join) under capture and backtracing. They are not part of AllScenarios —
// the paper's evaluation stays the ten originals — but share the same
// generators and query machinery.
func ExtensionScenarios() []Scenario {
	return []Scenario{
		{
			Name:        "X1",
			Description: "top-5 most mentioned users (flatten, count, orderBy desc, limit)",
			Dataset:     "twitter",
			Build:       buildX1,
			Pattern: treepattern.New(
				treepattern.Child("mid").WithEq(nested.StringVal(HotUserID)),
				treepattern.Child("mentions"),
			),
		},
		{
			Name:        "X2",
			Description: "proceedings with their distinct inproceedings counts, including proceedings without any (left outer join)",
			Dataset:     "dblp",
			Build:       buildX2,
			Pattern: treepattern.New(
				treepattern.Child("pkey").WithEq(nested.StringVal(HotProceedingKey)),
				treepattern.Child("n_papers"),
			),
		},
	}
}

// buildX1: every 7th tweet mentions the hot user, so it always tops the
// ranking and the pattern query has a stable target.
func buildX1() *engine.Pipeline {
	p := engine.NewPipeline()
	read := p.Source("tweets.json")
	flat := p.Flatten(read, "user_mentions", "m_user")
	sel := p.Select(flat,
		engine.Column("mid", "m_user.id_str"),
		engine.Column("mname", "m_user.name"),
	)
	agg := p.Aggregate(sel,
		[]engine.GroupKey{engine.Key("mid"), engine.Key("mname")},
		[]engine.AggSpec{engine.Agg(engine.AggCount, "mid", "mentions")},
	)
	ord := p.OrderBy(agg, true, engine.Col("mentions"))
	p.Limit(ord, 5)
	return p
}

// buildX2: a left outer join keeps proceedings that no inproceedings ever
// crossrefs (their n_papers is null) — the completeness check an auditor
// runs before trusting D4's per-proceedings nesting.
func buildX2() *engine.Pipeline {
	p := engine.NewPipeline()
	readP := p.Source("dblp.json")
	procs := p.Filter(readP, engine.Eq(engine.Col("record_type"), engine.LitString("proceedings")))
	selP := p.Select(procs,
		engine.Column("pkey", "key"),
		engine.Column("ptitle", "title"),
	)
	readI := p.Source("dblp.json")
	inproc := p.Filter(readI, engine.Eq(engine.Col("record_type"), engine.LitString("inproceedings")))
	distinctI := p.Distinct(p.Select(inproc,
		engine.Column("ikey", "key"),
		engine.Column("cref", "crossref"),
	))
	counts := p.Aggregate(distinctI,
		[]engine.GroupKey{engine.Key("cref")},
		[]engine.AggSpec{engine.Agg(engine.AggCount, "ikey", "n_papers")},
	)
	p.LeftJoin(selP, counts, engine.Col("pkey"), engine.Col("cref"))
	return p
}
