package workload

// Scale calibrates the synthetic datasets to the paper's evaluation sizes.
// The paper processes 100–500 GB of real data; this reproduction uses a
// "simulated GB" unit with a configurable number of top-level items per GB.
//
// The calibration preserves the two dataset properties the evaluation
// depends on (Sec. 7.3.2): the 500 GB Twitter dataset holds up to 130
// million wide, deeply nested tweets (~0.26 M items/GB), whereas the 500 GB
// DBLP dataset holds 1.5 billion narrow records (~3 M items/GB) — more than
// ten times as many top-level items per GB. The defaults keep that ratio
// (200 vs 2 000 items per simulated GB) at laptop-friendly absolute sizes.
type Scale struct {
	// SimGB is the simulated dataset size in GB (the paper sweeps 100–500).
	SimGB int
	// TweetsPerGB is the number of tweets per simulated GB (default 200).
	TweetsPerGB int
	// RecordsPerGB is the number of DBLP records per simulated GB
	// (default 2000).
	RecordsPerGB int
	// Seed makes generation deterministic (default 42).
	Seed int64
}

// DefaultScale returns the default calibration for the given simulated size.
func DefaultScale(simGB int) Scale {
	return Scale{SimGB: simGB, TweetsPerGB: 200, RecordsPerGB: 2000, Seed: 42}
}

func (s Scale) withDefaults() Scale {
	if s.TweetsPerGB <= 0 {
		s.TweetsPerGB = 200
	}
	if s.RecordsPerGB <= 0 {
		s.RecordsPerGB = 2000
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.SimGB <= 0 {
		s.SimGB = 1
	}
	return s
}

// Tweets returns the total number of tweets at this scale.
func (s Scale) Tweets() int {
	s = s.withDefaults()
	return s.SimGB * s.TweetsPerGB
}

// Records returns the total number of DBLP records at this scale.
func (s Scale) Records() int {
	s = s.withDefaults()
	return s.SimGB * s.RecordsPerGB
}
