package workload

import (
	"fmt"

	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/treepattern"
)

// Scenario is one evaluation scenario of Tab. 7: a Spark-style program to be
// executed with and without provenance capture, plus the corresponding
// structural provenance query (Sec. 7.2). Each supported operator occurs in
// at least one scenario.
type Scenario struct {
	// Name is the paper's scenario identifier, T1–T5 or D1–D5.
	Name string
	// Description is the informal description from Tab. 7.
	Description string
	// Dataset is "twitter" or "dblp".
	Dataset string
	// Build constructs the scenario's pipeline (fresh for every run).
	Build func() *engine.Pipeline
	// Pattern is the scenario's tree-pattern provenance question, phrased
	// against sentinel values the generators always produce.
	Pattern *treepattern.Pattern
}

// Input generates the scenario's input datasets at the given scale.
func (s Scenario) Input(scale Scale, partitions int) map[string]*engine.Dataset {
	if s.Dataset == "twitter" {
		return TwitterInput(scale, partitions)
	}
	return DBLPInput(scale, partitions)
}

// ByName returns the scenario with the given name (T1–T5, D1–D5).
func ByName(name string) (Scenario, error) {
	for _, s := range AllScenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("workload: unknown scenario %q", name)
}

// AllScenarios returns the ten scenarios of Tab. 7.
func AllScenarios() []Scenario {
	return append(TwitterScenarios(), DBLPScenarios()...)
}

// TwitterScenarios returns T1–T5.
func TwitterScenarios() []Scenario {
	return []Scenario{
		{
			Name:        "T1",
			Description: "filters tweets containing the text good, flattens and groups by the mentioned users to collect a bag of complex tweet objects",
			Dataset:     "twitter",
			Build:       buildT1,
			Pattern: treepattern.New(
				treepattern.Desc("id_str").WithEq(nested.StringVal(HotUserID)),
				treepattern.Child("tweets", treepattern.Child("text").WithContains(GoodWord)),
			),
		},
		{
			Name:        "T2",
			Description: "flattens the nested lists hashtags, media, user mentions",
			Dataset:     "twitter",
			Build:       buildT2,
			Pattern: treepattern.New(
				treepattern.Child("tag").WithEq(nested.StringVal(BTSHashtag)),
			),
		},
		{
			Name:        "T3",
			Description: "running example",
			Dataset:     "twitter",
			Build:       ExamplePipeline,
			Pattern: treepattern.New(
				treepattern.Desc("id_str").WithEq(nested.StringVal(HotUserID)),
				treepattern.Child("tweets", treepattern.Child("text")),
			),
		},
		{
			Name:        "T4",
			Description: "associates all occurring hashtags with the authoring and mentioned users",
			Dataset:     "twitter",
			Build:       buildT4,
			Pattern: treepattern.New(
				treepattern.Child("tag").WithEq(nested.StringVal(BTSHashtag)),
				treepattern.Child("users"),
			),
		},
		{
			Name:        "T5",
			Description: "finds all users that tweet about BTS, and are mentioned in a BTS tweet",
			Dataset:     "twitter",
			Build:       buildT5,
			Pattern: treepattern.New(
				treepattern.Child("author_id").WithEq(nested.StringVal(HotUserID)),
			),
		},
	}
}

// DBLPScenarios returns D1–D5.
func DBLPScenarios() []Scenario {
	return []Scenario{
		{
			Name:        "D1",
			Description: "associates inproceedings from 2015 with the their according proceeding(s)",
			Dataset:     "dblp",
			Build:       buildD1,
			Pattern: treepattern.New(
				treepattern.Child("pkey").WithEq(nested.StringVal(HotProceedingKey)),
			),
		},
		{
			Name:        "D2",
			Description: "unites and restructures conference proceedings and articles",
			Dataset:     "dblp",
			Build:       buildD2,
			Pattern: treepattern.New(
				treepattern.Desc("key").WithEq(nested.StringVal(HotProceedingKey)),
			),
		},
		{
			Name:        "D3",
			Description: "computes nested list for aliase, co-authors, and works per author",
			Dataset:     "dblp",
			Build:       buildD3,
			Pattern: treepattern.New(
				treepattern.Child("aid").WithEq(nested.StringVal(HotAuthorID)),
				treepattern.Child("works"),
			),
		},
		{
			Name:        "D4",
			Description: "computes nested list of all associated inproceedings for each proceeding",
			Dataset:     "dblp",
			Build:       buildD4,
			Pattern: treepattern.New(
				treepattern.Child("pkey").WithEq(nested.StringVal(HotProceedingKey)),
				treepattern.Child("inproceedings"),
			),
		},
		{
			Name:        "D5",
			Description: "is D4 extended with a UDF in map that returns the number of authors per proceeding",
			Dataset:     "dblp",
			Build:       buildD5,
			Pattern: treepattern.New(
				treepattern.Child("pkey").WithEq(nested.StringVal(HotProceedingKey)),
				treepattern.Child("inproceedings"),
			),
		},
	}
}

func buildT1() *engine.Pipeline {
	p := engine.NewPipeline()
	read := p.Source("tweets.json")
	filt := p.Filter(read, engine.Contains(engine.Col("text"), engine.LitString(GoodWord)))
	flat := p.Flatten(filt, "user_mentions", "m_user")
	sel := p.Select(flat,
		engine.StructField("tweet",
			engine.Column("text", "text"),
			engine.Column("retweet_cnt", "retweet_cnt"),
		),
		engine.Column("m_user", "m_user"),
	)
	p.Aggregate(sel,
		[]engine.GroupKey{engine.KeyAs("user", "m_user")},
		[]engine.AggSpec{engine.Agg(engine.AggCollectList, "tweet", "tweets")},
	)
	return p
}

func buildT2() *engine.Pipeline {
	p := engine.NewPipeline()
	read := p.Source("tweets.json")
	ft := p.Flatten(read, "hashtags", "htag")
	fm := p.Flatten(ft, "media", "med")
	fu := p.Flatten(fm, "user_mentions", "m_user")
	p.Select(fu,
		engine.Column("text", "text"),
		engine.Column("tag", "htag.text"),
		engine.Column("url", "med.media_url"),
		engine.Column("mid", "m_user.id_str"),
		engine.Column("mname", "m_user.name"),
	)
	return p
}

func buildT4() *engine.Pipeline {
	p := engine.NewPipeline()
	// Authoring users per hashtag.
	readA := p.Source("tweets.json")
	flatA := p.Flatten(readA, "hashtags", "htag")
	selA := p.Select(flatA,
		engine.Column("tag", "htag.text"),
		engine.Column("uid", "user.id_str"),
	)
	// Mentioned users per hashtag.
	readB := p.Source("tweets.json")
	flatB1 := p.Flatten(readB, "hashtags", "htag")
	flatB2 := p.Flatten(flatB1, "user_mentions", "m_user")
	selB := p.Select(flatB2,
		engine.Column("tag", "htag.text"),
		engine.Column("uid", "m_user.id_str"),
	)
	uni := p.Union(selA, selB)
	p.Aggregate(uni,
		[]engine.GroupKey{engine.Key("tag")},
		[]engine.AggSpec{engine.Agg(engine.AggCollectSet, "uid", "users")},
	)
	return p
}

func buildT5() *engine.Pipeline {
	p := engine.NewPipeline()
	// Users tweeting about BTS.
	readA := p.Source("tweets.json")
	filtA := p.Filter(readA, engine.Contains(engine.Col("text"), engine.LitString(BTSHashtag)))
	selA := p.Select(filtA,
		engine.Column("author_id", "user.id_str"),
		engine.Column("author_name", "user.name"),
	)
	// Users mentioned in BTS tweets.
	readB := p.Source("tweets.json")
	filtB := p.Filter(readB, engine.Contains(engine.Col("text"), engine.LitString(BTSHashtag)))
	flatB := p.Flatten(filtB, "user_mentions", "m_user")
	selB := p.Select(flatB,
		engine.Column("mentioned_id", "m_user.id_str"),
		engine.Column("mention_text", "text"),
	)
	p.Join(selA, selB, engine.Col("author_id"), engine.Col("mentioned_id"))
	return p
}

func buildD1() *engine.Pipeline {
	p := engine.NewPipeline()
	readI := p.Source("dblp.json")
	inproc := p.Filter(readI, engine.And(
		engine.Eq(engine.Col("record_type"), engine.LitString("inproceedings")),
		engine.Eq(engine.Col("year"), engine.LitInt(2015)),
	))
	selI := p.Select(inproc,
		engine.Column("ikey", "key"),
		engine.Column("ititle", "title"),
		engine.Column("iauthors", "authors"),
		engine.Column("crossref", "crossref"),
	)
	readP := p.Source("dblp.json")
	proc := p.Filter(readP, engine.Eq(engine.Col("record_type"), engine.LitString("proceedings")))
	selP := p.Select(proc,
		engine.Column("pkey", "key"),
		engine.Column("ptitle", "title"),
		engine.Column("booktitle", "booktitle"),
	)
	p.Join(selI, selP, engine.Col("crossref"), engine.Col("pkey"))
	return p
}

func buildD2() *engine.Pipeline {
	p := engine.NewPipeline()
	readP := p.Source("dblp.json")
	proc := p.Filter(readP, engine.Eq(engine.Col("record_type"), engine.LitString("proceedings")))
	selP := p.Select(proc,
		engine.StructField("pub",
			engine.Column("key", "key"),
			engine.Column("title", "title"),
		),
		engine.Column("year", "year"),
		engine.Column("venue", "booktitle"),
	)
	readA := p.Source("dblp.json")
	art := p.Filter(readA, engine.Eq(engine.Col("record_type"), engine.LitString("article")))
	selA := p.Select(art,
		engine.StructField("pub",
			engine.Column("key", "key"),
			engine.Column("title", "title"),
		),
		engine.Column("year", "year"),
		engine.Column("venue", "journal"),
	)
	p.Union(selP, selA)
	return p
}

func buildD3() *engine.Pipeline {
	p := engine.NewPipeline()
	// Works and aliases per author: flatten early, then nest per author.
	readA := p.Source("dblp.json")
	pubs := p.Filter(readA, engine.Or(
		engine.Eq(engine.Col("record_type"), engine.LitString("article")),
		engine.Eq(engine.Col("record_type"), engine.LitString("inproceedings")),
	))
	flatA := p.Flatten(pubs, "authors", "a")
	selA := p.Select(flatA,
		engine.Column("aid", "a.id"),
		engine.Column("aname", "a.name"),
		engine.Column("title", "title"),
	)
	aggA := p.Aggregate(selA,
		[]engine.GroupKey{engine.Key("aid")},
		[]engine.AggSpec{
			engine.Agg(engine.AggCollectSet, "aname", "aliases"),
			engine.Agg(engine.AggCollectList, "title", "works"),
		},
	)
	// Co-authors per author from inproceedings: a double flatten builds the
	// co-author pairs, nested per author.
	readB := p.Source("dblp.json")
	inproc := p.Filter(readB, engine.Eq(engine.Col("record_type"), engine.LitString("inproceedings")))
	flatB1 := p.Flatten(inproc, "authors", "a1")
	flatB2 := p.Flatten(flatB1, "authors", "a2")
	pairs := p.Filter(flatB2, engine.Ne(engine.Col("a1.id"), engine.Col("a2.id")))
	selB := p.Select(pairs,
		engine.Column("caid", "a1.id"),
		engine.Column("coname", "a2.name"),
	)
	aggB := p.Aggregate(selB,
		[]engine.GroupKey{engine.Key("caid")},
		[]engine.AggSpec{engine.Agg(engine.AggCollectSet, "coname", "coauthors")},
	)
	// One row per author on both sides: the very selective join the paper's
	// D3 discussion refers to (Sec. 7.3.2).
	p.Join(aggA, aggB, engine.Col("aid"), engine.Col("caid"))
	return p
}

func buildD4() *engine.Pipeline {
	p := engine.NewPipeline()
	readI := p.Source("dblp.json")
	inproc := p.Filter(readI, engine.Eq(engine.Col("record_type"), engine.LitString("inproceedings")))
	selI := p.Select(inproc,
		engine.StructField("paper",
			engine.Column("key", "key"),
			engine.Column("title", "title"),
		),
		engine.Column("crossref", "crossref"),
	)
	readP := p.Source("dblp.json")
	proc := p.Filter(readP, engine.Eq(engine.Col("record_type"), engine.LitString("proceedings")))
	selP := p.Select(proc,
		engine.Column("pkey", "key"),
		engine.Column("ptitle", "title"),
	)
	joined := p.Join(selI, selP, engine.Col("crossref"), engine.Col("pkey"))
	p.Aggregate(joined,
		[]engine.GroupKey{engine.Key("pkey"), engine.Key("ptitle")},
		[]engine.AggSpec{engine.Agg(engine.AggCollectList, "paper", "inproceedings")},
	)
	return p
}

func buildD5() *engine.Pipeline {
	p := engine.NewPipeline()
	readI := p.Source("dblp.json")
	inproc := p.Filter(readI, engine.Eq(engine.Col("record_type"), engine.LitString("inproceedings")))
	selI := p.Select(inproc,
		engine.StructField("paper",
			engine.Column("key", "key"),
			engine.Column("title", "title"),
		),
		engine.Column("authors", "authors"),
		engine.Column("crossref", "crossref"),
	)
	// UDF: count the paper's authors (opaque map, Tab. 7's D5).
	counted := p.Map(selI, engine.MapFunc{
		Name: "countAuthors",
		Fn: func(d nested.Value) (nested.Value, error) {
			authors, _ := d.Get("authors")
			out := d.WithoutField("authors")
			return out.WithField("n_authors", nested.Int(int64(authors.Len()))), nil
		},
	})
	readP := p.Source("dblp.json")
	proc := p.Filter(readP, engine.Eq(engine.Col("record_type"), engine.LitString("proceedings")))
	selP := p.Select(proc,
		engine.Column("pkey", "key"),
		engine.Column("ptitle", "title"),
	)
	joined := p.Join(counted, selP, engine.Col("crossref"), engine.Col("pkey"))
	p.Aggregate(joined,
		[]engine.GroupKey{engine.Key("pkey"), engine.Key("ptitle")},
		[]engine.AggSpec{
			engine.Agg(engine.AggCollectList, "paper", "inproceedings"),
			engine.Agg(engine.AggSum, "n_authors", "total_authors"),
		},
	)
	return p
}
